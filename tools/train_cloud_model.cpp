// Trains and serializes the canonical cloud (big) network.
//
// Produces the weights file `cloud_stub --scorer=network --weights=...`
// and `bench_serving --cloud=network --weights=...` load: the canonical
// serve::cloud_model architecture (ResNet cloud family at bench
// geometry), trained briefly on a synthetic preset and saved in
// trainable (unfolded) form via nn/serialize. Both loaders rebuild the
// identical architecture from the same spec, so the load is
// name-and-shape checked end to end. CI's loopback-uds job uses this to
// put a real trained model behind the socket.
//
// Run:  ./train_cloud_model --out=/tmp/big.apnw
//       [--preset=cifar10] [--epochs=2] [--seed=7] [--init_seed=0xB16]
//       [--family=resnet] [--depth=2] [--width=1.0] [--image_size=16]
//       [--classes=10]
#include <cstdio>
#include <string>

#include "core/joint_trainer.hpp"
#include "data/presets.hpp"
#include "nn/serialize.hpp"
#include "serve/cloud_model.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace appeal;
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(util::log_level::info);

  const std::string out = args.get_string_or("out", "");
  APPEAL_CHECK(!out.empty(), "--out=<path> is required");

  serve::cloud_model_config cfg;
  cfg.spec.family = models::parse_family(args.get_string_or("family", "resnet"));
  cfg.spec.depth = static_cast<std::size_t>(args.get_int_or("depth", 2));
  cfg.spec.width = static_cast<float>(args.get_double_or("width", 1.0));
  cfg.spec.image_size =
      static_cast<std::size_t>(args.get_int_or("image_size", 16));
  cfg.spec.num_classes =
      static_cast<std::size_t>(args.get_int_or("classes", 10));
  cfg.init_seed =
      static_cast<std::uint64_t>(args.get_int_or("init_seed", 0xB16));
  cfg.fold = false;  // keep batchnorm unfolded: this model is trained

  std::unique_ptr<nn::sequential> net = serve::make_cloud_model(cfg);

  const data::dataset_bundle bundle = data::make_small_bundle(
      data::parse_preset(args.get_string_or("preset", "cifar10")),
      static_cast<std::uint64_t>(args.get_int_or("seed", 7)));
  APPEAL_CHECK(bundle.train->num_classes() == cfg.spec.num_classes &&
                   bundle.train->config().image_size == cfg.spec.image_size,
               "preset geometry must match the model spec");

  core::trainer_config train_cfg;
  train_cfg.epochs = static_cast<std::size_t>(args.get_int_or("epochs", 2));
  train_cfg.verbose = true;
  const core::training_log log =
      core::train_classifier(*net, *bundle.train, bundle.val.get(), train_cfg);

  nn::save_model(*net, out);
  std::printf("trained %s for %zu epochs (val accuracy %.2f%%), saved to %s\n",
              cfg.spec.canonical().c_str(), train_cfg.epochs,
              log.val_accuracy * 100.0, out.c_str());
  return 0;
}
