// Per-stage latency waterfall from a trace JSONL file.
//
// Input: one obs::trace_collector::span_json line per sampled request
// (bench_serving --trace=FILE writes one). Output: a waterfall of
// p50/p95/p99 per stage — edge stages on the edge steady clock, cloud
// stages from cloud-stamped durations — plus the end-to-end quantiles,
// and a reconciliation check: per span, the stamped stages must sum to
// the measured end-to-end latency within --tolerance (default 5%). A
// waterfall whose stages do not add up means a stamping bug (a stage
// counted twice, a boundary missed), so the check failing is a nonzero
// exit for CI.
//
// Usage:
//   trace_report [--tolerance=0.05] [--json=OUT.json] FILE.jsonl
//
// The parser is tailored to span_json's fixed field order and falls back
// to key lookup, so hand-edited fixtures still load; lines that do not
// parse are counted and reported, not silently dropped.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace {

using appeal::obs::kNumStages;
using appeal::obs::stage;
using appeal::obs::stage_name;

struct parsed_span {
  bool appealed = false;
  bool expired = false;
  double total_ms = 0.0;
  double stage_ms[kNumStages] = {};
  double stage_sum() const {
    double s = 0.0;
    for (double v : stage_ms) s += v;
    return s;
  }
};

/// Finds `"key":` in `line` and parses the number (or true/false) after
/// it. Returns false when the key is absent.
bool find_number(const std::string& line, const char* key, double* out) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const char* p = line.c_str() + at + needle.size();
  char* end = nullptr;
  const double v = std::strtod(p, &end);
  if (end == p) return false;
  *out = v;
  return true;
}

bool find_bool(const std::string& line, const char* key, bool* out) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  *out = line.compare(at + needle.size(), 4, "true") == 0;
  return true;
}

bool parse_span(const std::string& line, parsed_span* out) {
  if (!find_number(line, "total_ms", &out->total_ms)) return false;
  find_bool(line, "appealed", &out->appealed);
  find_bool(line, "expired", &out->expired);
  for (std::size_t i = 0; i < kNumStages; ++i) {
    if (!find_number(line, stage_name(static_cast<stage>(i)),
                     &out->stage_ms[i])) {
      return false;
    }
  }
  return true;
}

/// Exact quantile over a sorted sample (offline tool: no need for the
/// registry's fixed-bin approximation).
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

struct stage_stats {
  std::vector<double> samples;
  double sum = 0.0;
  void add(double v) {
    samples.push_back(v);
    sum += v;
  }
  void finish() { std::sort(samples.begin(), samples.end()); }
  double mean() const {
    return samples.empty() ? 0.0
                           : sum / static_cast<double>(samples.size());
  }
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--tolerance=FRAC] [--json=OUT] FILE.jsonl\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = 0.05;
  std::string json_out;
  std::string in_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--tolerance=", 12) == 0) {
      tolerance = std::atof(arg + 12);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_out = arg + 7;
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else {
      in_path = arg;
    }
  }
  if (in_path.empty()) return usage(argv[0]);

  std::ifstream in(in_path);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot open %s\n", in_path.c_str());
    return 2;
  }

  stage_stats per_stage[kNumStages];
  stage_stats total;
  std::size_t spans = 0, appealed = 0, expired = 0, bad_lines = 0;
  std::size_t reconcile_failures = 0;
  double worst_residual = 0.0;
  const std::size_t last_edge_stage = static_cast<std::size_t>(stage::decide);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    parsed_span s;
    if (!parse_span(line, &s)) {
      ++bad_lines;
      continue;
    }
    ++spans;
    if (s.appealed) ++appealed;
    if (s.expired) ++expired;
    total.add(s.total_ms);
    for (std::size_t i = 0; i < kNumStages; ++i) {
      const bool on_path = s.appealed || i <= last_edge_stage ||
                           i == static_cast<std::size_t>(stage::complete);
      if (on_path) per_stage[i].add(s.stage_ms[i]);
    }
    // Sub-microsecond totals make the relative residual meaningless;
    // floor the denominator at 1 µs.
    const double denom = std::max(s.total_ms, 1e-3);
    const double residual = std::fabs(s.stage_sum() - s.total_ms) / denom;
    worst_residual = std::max(worst_residual, residual);
    if (residual > tolerance) ++reconcile_failures;
  }

  if (spans == 0) {
    std::fprintf(stderr, "trace_report: no spans in %s (%zu bad lines)\n",
                 in_path.c_str(), bad_lines);
    return 1;
  }
  for (auto& st : per_stage) st.finish();
  total.finish();

  std::printf("%zu spans (%zu appealed, %zu expired", spans, appealed,
              expired);
  if (bad_lines > 0) std::printf(", %zu unparsable lines", bad_lines);
  std::printf(")\n\n");
  std::printf("%-16s %8s %10s %10s %10s %10s\n", "stage", "count", "mean",
              "p50", "p95", "p99");
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const stage_stats& st = per_stage[i];
    if (st.samples.empty()) continue;
    std::printf("%-16s %8zu %9.3f  %9.3f  %9.3f  %9.3f\n",
                stage_name(static_cast<stage>(i)), st.samples.size(),
                st.mean(), quantile(st.samples, 0.50),
                quantile(st.samples, 0.95), quantile(st.samples, 0.99));
  }
  std::printf("%-16s %8zu %9.3f  %9.3f  %9.3f  %9.3f\n", "end_to_end",
              total.samples.size(), total.mean(),
              quantile(total.samples, 0.50), quantile(total.samples, 0.95),
              quantile(total.samples, 0.99));

  const double fail_rate =
      static_cast<double>(reconcile_failures) / static_cast<double>(spans);
  std::printf(
      "\nreconciliation: %zu/%zu spans off by > %.1f%% "
      "(worst residual %.2f%%)\n",
      reconcile_failures, spans, tolerance * 100.0, worst_residual * 100.0);

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << "{\"spans\":" << spans << ",\"appealed\":" << appealed
        << ",\"expired\":" << expired << ",\"bad_lines\":" << bad_lines
        << ",\"reconcile_failures\":" << reconcile_failures
        << ",\"worst_residual\":" << worst_residual << ",\"stages\":{";
    bool first = true;
    char buf[160];
    for (std::size_t i = 0; i <= kNumStages; ++i) {
      const bool is_total = i == kNumStages;
      const stage_stats& st = is_total ? total : per_stage[i];
      if (st.samples.empty()) continue;
      if (!first) out << ',';
      first = false;
      std::snprintf(
          buf, sizeof(buf),
          "\"%s\":{\"count\":%zu,\"mean\":%.6f,\"p50\":%.6f,"
          "\"p95\":%.6f,\"p99\":%.6f}",
          is_total ? "end_to_end" : stage_name(static_cast<stage>(i)),
          st.samples.size(), st.mean(), quantile(st.samples, 0.50),
          quantile(st.samples, 0.95), quantile(st.samples, 0.99));
      out << buf;
    }
    out << "}}\n";
  }

  // A handful of outlier spans (a completion racing the tx stamp) is
  // tolerable; a systematic failure is not.
  if (fail_rate > 0.01) {
    std::fprintf(stderr,
                 "trace_report: FAIL — %.1f%% of spans do not reconcile\n",
                 fail_rate * 100.0);
    return 1;
  }
  std::printf("reconciliation: OK\n");
  return 0;
}
