// Standalone cloud side of the appeal link.
//
// Listens on a Unix-domain or TCP socket, speaks the serve/transport
// wire protocol (length-prefixed appeal/response batches), scores every
// appealed request, and answers in kind. This is the process
// `bench_serving --transport=uds|tcp` and any socket-configured
// deployment appeal to.
//
// Scorers:
//   --scorer=synthetic  deterministic per-key big model: correct with
//                       probability --accuracy, keyed by (--seed, key) —
//                       exactly the table bench_serving builds its
//                       offline replay/simulator workload from, so a
//                       socket run reproduces the simulator run's
//                       accuracy bit for bit;
//   --scorer=echo       answers the ground-truth label carried on the
//                       wire (the paper's always-correct black-box
//                       cloud; unlabeled appeals hash onto a class);
//   --scorer=argmax     argmax over the appeal's tensor payload (a real
//                       forward substitute that actually reads pixels).
//
// Run:  ./cloud_stub --listen=uds:/tmp/appeal-cloud.sock
//       ./cloud_stub --listen=tcp:127.0.0.1:9410 --scorer=echo
//       [--scorer=synthetic] [--accuracy=0.97] [--classes=10] [--seed=42]
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "serve/transport/stub_server.hpp"
#include "serve/transport/synthetic_scorer.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

appeal::serve::stub_server_config parse_listen(const std::string& spec) {
  appeal::serve::stub_server_config cfg;
  if (spec.rfind("uds:", 0) == 0) {
    cfg.kind = appeal::serve::transport_kind::uds;
    cfg.endpoint = spec.substr(4);
  } else if (spec.rfind("tcp:", 0) == 0) {
    cfg.kind = appeal::serve::transport_kind::tcp;
    cfg.endpoint = spec.substr(4);
  } else {
    throw appeal::util::error(
        "--listen must be uds:<path> or tcp:<host:port>, got '" + spec + "'");
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace appeal;
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(util::log_level::info);

  const serve::stub_server_config cfg = parse_listen(
      args.get_string_or("listen", "uds:/tmp/appeal-cloud.sock"));
  const std::string scorer_name = args.get_string_or("scorer", "synthetic");
  const auto classes =
      static_cast<std::size_t>(args.get_int_or("classes", 10));
  const double accuracy = args.get_double_or("accuracy", 0.97);
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  serve::stub_server::scorer_fn scorer;
  if (scorer_name == "synthetic") {
    scorer = [=](const serve::wire::appeal_record& a) {
      return serve::transport::synthetic_big_prediction(
          a.key, static_cast<std::size_t>(a.label), classes, seed, accuracy);
    };
  } else if (scorer_name == "echo") {
    scorer = [=](const serve::wire::appeal_record& a) {
      return a.label < classes ? static_cast<std::size_t>(a.label)
                               : static_cast<std::size_t>(a.key % classes);
    };
  } else if (scorer_name == "argmax") {
    scorer = [=](const serve::wire::appeal_record& a) {
      if (a.input.empty()) return static_cast<std::size_t>(a.key % classes);
      std::size_t best = 0;
      for (std::size_t i = 1; i < a.input.size(); ++i) {
        if (a.input[i] > a.input[best]) best = i;
      }
      return best % classes;
    };
  } else {
    std::fprintf(stderr, "unknown --scorer=%s (want synthetic|echo|argmax)\n",
                 scorer_name.c_str());
    return 1;
  }

  serve::stub_server server(cfg, std::move(scorer));
  server.start();
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::printf("cloud_stub listening on %s:%s (scorer %s, %zu classes)\n",
              serve::transport_kind_name(cfg.kind),
              cfg.kind == serve::transport_kind::tcp
                  ? (cfg.endpoint + " port " + std::to_string(server.tcp_port()))
                        .c_str()
                  : cfg.endpoint.c_str(),
              scorer_name.c_str(), classes);
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.stop();
  const serve::stub_server_counters c = server.counters();
  std::printf(
      "cloud_stub served %zu appeals in %zu batches over %zu connections "
      "(%zu B in / %zu B out)\n",
      c.appeals, c.batches, c.connections, c.bytes_received, c.bytes_sent);
  return 0;
}
