// Standalone cloud side of the appeal link.
//
// Listens on a Unix-domain or TCP socket, speaks the serve/transport
// wire protocol (length-prefixed appeal/response batches), and schedules
// appeals like a real cloud: connection threads decode into a shared
// priority/deadline-ordered work queue, a scorer worker pool
// (`--workers`) forms cloud batches from it, appeals whose deadline is
// already blown are shed with an `expired` response, and the survivors
// score as one batched inference. This is the process
// `bench_serving --transport=uds|tcp` and any socket-configured
// deployment appeal to.
//
// Scorers:
//   --scorer=synthetic  deterministic per-key big model: correct with
//                       probability --accuracy, keyed by (--seed, key) —
//                       exactly the table bench_serving builds its
//                       offline replay/simulator workload from, so a
//                       socket run reproduces the simulator run's
//                       accuracy bit for bit;
//   --scorer=echo       answers the ground-truth label carried on the
//                       wire (the paper's always-correct black-box
//                       cloud; unlabeled appeals hash onto a class);
//   --scorer=argmax     argmax over the appeal's tensor payload (a real
//                       forward substitute that actually reads pixels);
//   --scorer=network    the actual big network: built from
//                       --family/--depth/--width/--image_size/--classes
//                       (default: the canonical bench cloud model),
//                       weights loaded from --weights (nn/serialize,
//                       e.g. tools/train_cloud_model or
//                       serving_demo --save_big) or deterministically
//                       initialized from --init_seed, conv+BN folded,
//                       one instance per worker, appeals scored as
//                       stacked batch forwards. Split-computing appeals
//                       (wire v5: a cut id + the feature map at that cut
//                       of the shared canonical model) score suffix-only
//                       from the same cut table; an unknown cut or a
//                       mismatched feature shape is answered `rejected`
//                       so the edge falls back to its local copy.
//
// Run:  ./cloud_stub --listen=uds:/tmp/appeal-cloud.sock
//       ./cloud_stub --listen=tcp:127.0.0.1:9410 --scorer=echo
//       ./cloud_stub --scorer=network --weights=big.apnw --workers=2
//       [--scorer=synthetic] [--accuracy=0.97] [--classes=10] [--seed=42]
//       [--workers=1] [--max_cloud_batch=16] [--shed_expired=1]
//       [--max_queue_depth=4096] [--max_batch_queue_depth=0]
//       [--shed_projected=1] [--metrics=<port|uds-path>]
//
// --metrics serves the stub's registry instruments (appeals received,
// scored/expired/overloaded, work-queue depth) as a Prometheus /metrics
// endpoint for the lifetime of the process.
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "models/model_spec.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "serve/cloud_model.hpp"
#include "serve/transport/stub_server.hpp"
#include "serve/transport/synthetic_scorer.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

appeal::serve::stub_server_config parse_listen(const std::string& spec) {
  appeal::serve::stub_server_config cfg;
  if (spec.rfind("uds:", 0) == 0) {
    cfg.kind = appeal::serve::transport_kind::uds;
    cfg.endpoint = spec.substr(4);
  } else if (spec.rfind("tcp:", 0) == 0) {
    cfg.kind = appeal::serve::transport_kind::tcp;
    cfg.endpoint = spec.substr(4);
  } else {
    throw appeal::util::error(
        "--listen must be uds:<path> or tcp:<host:port>, got '" + spec + "'");
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace appeal;
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(util::log_level::info);

  serve::stub_server_config cfg = parse_listen(
      args.get_string_or("listen", "uds:/tmp/appeal-cloud.sock"));
  cfg.workers = static_cast<std::size_t>(args.get_int_or("workers", 1));
  cfg.max_cloud_batch =
      static_cast<std::size_t>(args.get_int_or("max_cloud_batch", 16));
  cfg.shed_expired = args.get_bool_or("shed_expired", true);
  cfg.max_queue_depth =
      static_cast<std::size_t>(args.get_int_or("max_queue_depth", 4096));
  cfg.max_batch_queue_depth =
      static_cast<std::size_t>(args.get_int_or("max_batch_queue_depth", 0));
  cfg.shed_projected = args.get_bool_or("shed_projected", true);
  const std::string scorer_name = args.get_string_or("scorer", "synthetic");
  const auto classes =
      static_cast<std::size_t>(args.get_int_or("classes", 10));
  const double accuracy = args.get_double_or("accuracy", 0.97);
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  serve::stub_server::scorer_fn scorer;
  serve::stub_server::scorer_factory factory;
  if (scorer_name == "synthetic") {
    scorer = [=](const serve::wire::appeal_record& a) {
      return serve::transport::synthetic_big_prediction(
          a.key, static_cast<std::size_t>(a.label), classes, seed, accuracy);
    };
  } else if (scorer_name == "echo") {
    scorer = [=](const serve::wire::appeal_record& a) {
      return a.label < classes ? static_cast<std::size_t>(a.label)
                               : static_cast<std::size_t>(a.key % classes);
    };
  } else if (scorer_name == "argmax") {
    scorer = [=](const serve::wire::appeal_record& a) {
      if (a.input.empty()) return static_cast<std::size_t>(a.key % classes);
      std::size_t best = 0;
      for (std::size_t i = 1; i < a.input.size(); ++i) {
        if (a.input[i] > a.input[best]) best = i;
      }
      return best % classes;
    };
  } else if (scorer_name == "network") {
    serve::cloud_model_config model_cfg;
    model_cfg.spec.family =
        models::parse_family(args.get_string_or("family", "resnet"));
    model_cfg.spec.depth =
        static_cast<std::size_t>(args.get_int_or("depth", 2));
    model_cfg.spec.width =
        static_cast<float>(args.get_double_or("width", 1.0));
    model_cfg.spec.image_size =
        static_cast<std::size_t>(args.get_int_or("image_size", 16));
    model_cfg.spec.num_classes = classes;
    model_cfg.init_seed =
        static_cast<std::uint64_t>(args.get_int_or("init_seed", 0xB16));
    model_cfg.weights_path = args.get_string_or("weights", "");
    factory = serve::make_network_scorer_factory(model_cfg);
  } else {
    std::fprintf(stderr,
                 "unknown --scorer=%s (want synthetic|echo|argmax|network)\n",
                 scorer_name.c_str());
    return 1;
  }

  serve::stub_server server =
      factory != nullptr ? serve::stub_server(cfg, std::move(factory))
                         : serve::stub_server(cfg, std::move(scorer));
  server.start();
  std::unique_ptr<obs::metrics_http_server> metrics_server;
  const std::string metrics_endpoint = args.get_string_or("metrics", "");
  if (!metrics_endpoint.empty()) {
    metrics_server = std::make_unique<obs::metrics_http_server>(
        obs::default_registry(), metrics_endpoint);
    std::printf("cloud_stub metrics on %s (port %u)\n",
                metrics_endpoint.c_str(),
                static_cast<unsigned>(metrics_server->port()));
  }
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  // Built as a named local: the previous printf passed a temporary
  // std::string's c_str() through the argument list, a dangling pointer
  // by the time printf read it.
  std::string endpoint_desc = cfg.endpoint;
  if (cfg.kind == serve::transport_kind::tcp) {
    endpoint_desc += " port " + std::to_string(server.tcp_port());
  }
  std::printf(
      "cloud_stub listening on %s:%s (scorer %s, %zu classes, %zu workers, "
      "cloud batch %zu)\n",
      serve::transport_kind_name(cfg.kind), endpoint_desc.c_str(),
      scorer_name.c_str(), classes, cfg.workers, cfg.max_cloud_batch);
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.stop();
  const serve::stub_server_counters c = server.counters();
  std::printf(
      "cloud_stub served %zu appeals in %zu frames over %zu connections: "
      "%zu scored in %zu cloud batches, %zu shed expired, %zu shed at the "
      "full queue, %zu shed on projected deadline misses "
      "(%zu B in / %zu B out)\n",
      c.appeals, c.batches, c.connections, c.scored, c.cloud_batches,
      c.expired, c.overloaded, c.projected, c.bytes_received, c.bytes_sent);
  return 0;
} catch (const std::exception& e) {
  // Bad flags, unbindable endpoint, missing/mismatched weights: a usable
  // message and a nonzero exit, not std::terminate.
  std::fprintf(stderr, "cloud_stub: %s\n", e.what());
  return 1;
}
