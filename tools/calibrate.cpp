// Dataset/model calibration driver (development tool).
//
// Trains the experiment models on one preset and reports the quantities the
// paper's evaluation depends on: big/little accuracies and their gap, the
// q-score separation (AUROC), and model costs. Used to tune the synthetic
// dataset presets; also handy for users adapting the presets.
//
// Run: ./calibrate --dataset=cifar10 [--family=mobilenet] [--blackbox]
//      [--verbose] [--nocache]
#include <cstdio>

#include "collab/experiment.hpp"
#include "core/scores.hpp"
#include "metrics/metrics.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/config.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace appeal;
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(args.get_bool_or("verbose", false)
                          ? util::log_level::debug
                          : util::log_level::info);

  collab::experiment_config cfg = collab::default_experiment(
      data::parse_preset(args.get_string_or("dataset", "cifar10")),
      models::parse_family(args.get_string_or("family", "mobilenet")),
      args.get_bool_or("blackbox", false));
  cfg.verbose = args.get_bool_or("verbose", false);
  cfg.beta = args.get_double_or("beta", cfg.beta);
  cfg.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));
  if (args.has("big_epochs")) cfg.big_epochs = static_cast<std::size_t>(args.get_int("big_epochs"));
  if (args.has("pretrain_epochs")) cfg.pretrain_epochs = static_cast<std::size_t>(args.get_int("pretrain_epochs"));
  if (args.has("joint_epochs")) cfg.joint_epochs = static_cast<std::size_t>(args.get_int("joint_epochs"));

  const util::artifact_cache cache = util::default_cache();
  const bool use_cache = !args.get_bool_or("nocache", false);
  const collab::experiment_outputs out =
      collab::run_experiment(cfg, use_cache ? &cache : nullptr);

  // Score separation on the test split: does q rank little-correct above
  // little-incorrect better than MSP does?
  const tensor joint_probs = ops::softmax_rows(out.test.little_joint_logits);
  const tensor base_probs = ops::softmax_rows(out.test.little_base_logits);
  const auto joint_preds = ops::argmax_rows(out.test.little_joint_logits);
  const auto base_preds = ops::argmax_rows(out.test.little_base_logits);
  const auto msp = core::msp_scores(base_probs);
  const auto q = core::q_to_scores(out.test.q);

  std::vector<double> q_pos, q_neg, msp_pos, msp_neg;
  for (std::size_t i = 0; i < out.test.labels.size(); ++i) {
    (joint_preds[i] == out.test.labels[i] ? q_pos : q_neg).push_back(q[i]);
    (base_preds[i] == out.test.labels[i] ? msp_pos : msp_neg).push_back(msp[i]);
  }

  std::printf("\n=== calibration: %s / %s%s ===\n",
              data::preset_name(cfg.dataset).c_str(),
              models::family_name(cfg.edge_family).c_str(),
              cfg.black_box ? " (black-box)" : "");
  std::printf("big accuracy          : %.2f%%  (%.2f MFLOPs)\n",
              out.big_accuracy * 100.0, out.big_mflops);
  std::printf("little base accuracy  : %.2f%%  (%.2f MFLOPs two-head)\n",
              out.little_base_accuracy * 100.0, out.little_mflops);
  std::printf("little joint accuracy : %.2f%%\n",
              out.little_joint_accuracy * 100.0);
  std::printf("accuracy gap          : %.2f%%\n",
              (out.big_accuracy - out.little_joint_accuracy) * 100.0);
  std::printf("q AUROC               : %.4f\n", metrics::auroc(q_pos, q_neg));
  std::printf("MSP AUROC             : %.4f\n",
              metrics::auroc(msp_pos, msp_neg));
  double mean_q = 0.0;
  for (const float v : out.test.q) mean_q += v;
  mean_q /= static_cast<double>(out.test.q.size());
  std::printf("mean q                : %.3f\n", mean_q);
  return 0;
}
