// Fig. 5 reproduction: overall edge/cloud accuracy vs skipping rate.
//
// Paper setup: MobileNet little / ResNet-101 big on GTSRB, CIFAR-10,
// CIFAR-100, Tiny-ImageNet; methods MSP, SM, Entropy (confidence baselines
// on the standalone little net) and AppealNet (two-head q); the dotted
// reference line is the standalone big network.
//
// Shape expectations (DESIGN.md §4): the AppealNet series sits at or above
// the baselines at most skipping rates with the margin growing toward high
// SR, and on the easier datasets the collaborative system exceeds the big
// network in a band of skipping rates (accuracy boosting).
//
// Usage: bench_fig5_accuracy_vs_sr [--dataset=cifar10] [--nocache]
#include <cstdio>

#include "bench_common.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace appeal;
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(util::log_level::info);

  std::vector<data::preset> presets = data::all_presets();
  if (args.has("dataset")) {
    presets = {data::parse_preset(args.get_string("dataset"))};
  }
  const util::artifact_cache cache = util::default_cache();
  const util::artifact_cache* cache_ptr =
      args.get_bool_or("nocache", false) ? nullptr : &cache;

  util::csv_writer csv(bench::results_path("fig5_accuracy_vs_sr.csv"));
  csv.write_row(std::vector<std::string>{"dataset", "method", "target_sr",
                                         "achieved_sr", "accuracy"});

  const auto sr_grid = collab::paper_sr_grid();
  std::printf("=== Fig. 5: overall accuracy vs skipping rate "
              "(MobileNet little / ResNet big) ===\n");

  for (const data::preset preset : presets) {
    const collab::experiment_config cfg = collab::default_experiment(
        preset, models::model_family::mobilenet, /*black_box=*/false);
    const collab::experiment_outputs outputs =
        collab::run_experiment(cfg, cache_ptr);

    std::vector<std::string> headers{"method"};
    for (const double sr : sr_grid) {
      headers.push_back("SR=" + util::format_fixed(sr * 100.0, 0) + "%");
    }
    util::ascii_table table(headers);

    for (const core::score_method method : core::all_score_methods()) {
      const bench::method_splits splits =
          bench::make_method_splits(outputs, method);
      const auto curve =
          collab::accuracy_vs_sr_curve(splits.test, &splits.val, sr_grid);

      std::vector<std::string> row{splits.name};
      for (const collab::sweep_point& point : curve) {
        row.push_back(util::format_fixed(point.accuracy * 100.0, 2));
        csv.write_row(std::vector<std::string>{
            data::preset_name(preset), splits.name,
            util::format_fixed(point.target_sr, 2),
            util::format_fixed(point.achieved_sr, 4),
            util::format_fixed(point.accuracy, 5)});
      }
      table.add_row(std::move(row));
    }

    std::printf("\n--- %s ---\n%s", data::preset_name(preset).c_str(),
                table.render().c_str());
    std::printf("standalone big (ResNet) accuracy: %.2f%%   "
                "standalone little accuracies: base %.2f%% / joint %.2f%%\n",
                outputs.big_accuracy * 100.0,
                outputs.little_base_accuracy * 100.0,
                outputs.little_joint_accuracy * 100.0);
  }
  std::printf("\nseries written to %s\n",
              bench::results_path("fig5_accuracy_vs_sr.csv").c_str());
  return 0;
}
