// Ablation: post-training weight quantization of the two-head edge model.
//
// Deployed little networks are usually quantized (paper Section II's static
// techniques). This ablation trains one two-head model, fake-quantizes its
// weights at several precisions, and reports (a) classification accuracy,
// (b) the q score's separation quality (AUROC), and (c) prediction
// agreement with the fp32 model.
//
// Expected shape: int8 is essentially free (accuracy and routing quality
// within noise of fp32); below 6 bits both degrade sharply — i.e. the
// predictor head survives deployment-grade quantization.
#include <cstdio>

#include "core/joint_trainer.hpp"
#include "data/presets.hpp"
#include "metrics/metrics.hpp"
#include "nn/quantization.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/config.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace appeal;

struct eval_result {
  double accuracy = 0.0;
  double q_auroc = 0.5;
  std::vector<std::size_t> predictions;
};

eval_result evaluate(core::two_head_network& net, const data::dataset& test) {
  const core::two_head_eval eval = core::eval_two_head(net, test);
  eval_result out;
  out.predictions = ops::argmax_rows(eval.logits);
  std::size_t correct = 0;
  std::vector<double> pos, neg;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const bool right = out.predictions[i] == test.get(i).label;
    if (right) ++correct;
    (right ? pos : neg).push_back(static_cast<double>(eval.q[i]));
  }
  out.accuracy =
      static_cast<double>(correct) / static_cast<double>(test.size());
  if (!pos.empty() && !neg.empty()) out.q_auroc = metrics::auroc(pos, neg);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace appeal;
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(util::log_level::info);

  const data::dataset_bundle bundle =
      data::make_bundle(data::preset::cifar10_like, 42);

  core::two_head_config net_cfg;
  net_cfg.spec.family = models::model_family::mobilenet;
  net_cfg.spec.image_size = bundle.train->config().image_size;
  net_cfg.spec.num_classes = bundle.train->num_classes();
  net_cfg.init_seed = 21;
  core::two_head_network net(net_cfg);

  core::trainer_config pretrain_cfg;
  pretrain_cfg.epochs =
      static_cast<std::size_t>(args.get_int_or("pretrain_epochs", 6));
  pretrain_cfg.seed = 31;
  pretrain_cfg.augment = true;
  pretrain_cfg.augmentation.flip_probability = 0.0;
  core::trainer_config joint_cfg;
  joint_cfg.epochs = static_cast<std::size_t>(args.get_int_or("epochs", 10));
  joint_cfg.learning_rate = 1e-3;
  joint_cfg.seed = 32;
  joint_cfg.augment = true;
  joint_cfg.augmentation.flip_probability = 0.0;
  core::joint_loss_config loss_cfg;
  loss_cfg.beta = 0.05;
  loss_cfg.black_box = true;

  APPEAL_LOG_INFO("bench") << "training the two-head model once (fp32 reference)";
  core::pretrain_two_head(net, *bundle.train, nullptr, pretrain_cfg);
  core::train_joint(net, *bundle.train, nullptr, {}, joint_cfg, loss_cfg);

  // Snapshot fp32 weights so each precision starts from the same model.
  std::vector<tensor> fp32_weights;
  for (nn::parameter* p : net.all_parameters()) fp32_weights.push_back(p->value);
  const eval_result fp32 = evaluate(net, *bundle.test);

  util::ascii_table table(
      {"precision", "accuracy%", "q AUROC", "agreement with fp32"});
  table.add_row({"fp32", util::format_fixed(fp32.accuracy * 100.0, 2),
                 util::format_fixed(fp32.q_auroc, 4), "100.00%"});

  std::printf("=== Ablation: PTQ of the two-head edge model (cifar10_like / "
              "mobilenet) ===\n");

  for (const int bits : {8, 6, 4, 3}) {
    // Restore fp32, then quantize all three components.
    std::size_t pi = 0;
    for (nn::parameter* p : net.all_parameters()) p->value = fp32_weights[pi++];
    nn::quantize_model_weights(net.extractor(), bits);
    nn::quantize_model_weights(net.approximator_head(), bits);
    nn::quantize_model_weights(net.predictor_head(), bits);
    const eval_result result = evaluate(net, *bundle.test);
    std::size_t agree = 0;
    for (std::size_t i = 0; i < result.predictions.size(); ++i) {
      if (result.predictions[i] == fp32.predictions[i]) ++agree;
    }
    table.add_row(
        {"int" + std::to_string(bits),
         util::format_fixed(result.accuracy * 100.0, 2),
         util::format_fixed(result.q_auroc, 4),
         util::format_percent(static_cast<double>(agree) /
                              static_cast<double>(result.predictions.size()))});
  }

  std::printf("%s", table.render().c_str());
  return 0;
}
