// Ablation: post-training weight quantization of the two-head edge model —
// REAL int8 execution vs fake-quantization, same trained weights.
//
// Deployed little networks are usually quantized (paper Section II's
// static techniques). This ablation trains one two-head model and then
// sweeps precisions two ways from the same snapshot:
//   - fake: nn::quantize_model_weights snaps the float weights to the
//     b-bit grid and inference stays fp32 — the simulation the repo used
//     before the quant:: subsystem existed;
//   - real: quant::quantize_two_head rewrites dense convs + linears onto
//     the s8 GEMM kernels (per-channel weight grids, calibrated u8
//     activations, requantizing epilogue) — what the edge actually ships.
// For each (mode, bits) it reports classification accuracy, the q score's
// separation quality (AUROC), prediction agreement with fp32, and the
// measured eval wall time per image — the real path must be FASTER than
// fp32, the fake path is not.
//
// Expected shape: int8 is essentially free in both modes (accuracy and
// routing quality within noise of fp32) and the real path additionally
// delivers the kernel speedup; below 6 bits both degrade, and real
// tracks fake closely (the activation grid adds little on top of the
// weight grid) — i.e. the fake-quant proxy the experiments rely on is
// honest, and the deployable path matches it.
//
// Run: ./bench_ablation_quantization [--epochs=10] [--pretrain_epochs=6]
//      [--json=results/ablation_quantization.json]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/joint_trainer.hpp"
#include "data/presets.hpp"
#include "metrics/metrics.hpp"
#include "nn/quantization.hpp"
#include "quant/quantize.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace appeal;

struct eval_result {
  double accuracy = 0.0;
  double q_auroc = 0.5;
  double ms_per_image = 0.0;
  std::vector<std::size_t> predictions;
};

eval_result evaluate(core::two_head_network& net, const data::dataset& test) {
  util::stopwatch timer;
  const core::two_head_eval eval = core::eval_two_head(net, test);
  double seconds = timer.lap_seconds();
  // Best of three timed passes: a single eval over the test split is
  // short enough that scheduler noise can swamp the int8/fp32 delta.
  for (int rep = 0; rep < 2; ++rep) {
    core::eval_two_head(net, test);
    seconds = std::min(seconds, timer.lap_seconds());
  }
  eval_result out;
  out.ms_per_image = seconds * 1000.0 / static_cast<double>(test.size());
  out.predictions = ops::argmax_rows(eval.logits);
  std::size_t correct = 0;
  std::vector<double> pos, neg;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const bool right = out.predictions[i] == test.get(i).label;
    if (right) ++correct;
    (right ? pos : neg).push_back(static_cast<double>(eval.q[i]));
  }
  out.accuracy =
      static_cast<double>(correct) / static_cast<double>(test.size());
  if (!pos.empty() && !neg.empty()) out.q_auroc = metrics::auroc(pos, neg);
  return out;
}

double agreement(const eval_result& a, const eval_result& fp32) {
  std::size_t agree = 0;
  for (std::size_t i = 0; i < a.predictions.size(); ++i) {
    if (a.predictions[i] == fp32.predictions[i]) ++agree;
  }
  return static_cast<double>(agree) /
         static_cast<double>(a.predictions.size());
}

struct sweep_row {
  std::string mode;  // "fp32" | "fake" | "real"
  int bits = 32;
  eval_result result;
  double agree = 1.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace appeal;
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(util::log_level::info);

  const data::dataset_bundle bundle =
      data::make_bundle(data::preset::cifar10_like, 42);

  core::two_head_config net_cfg;
  net_cfg.spec.family = models::model_family::mobilenet;
  net_cfg.spec.image_size = bundle.train->config().image_size;
  net_cfg.spec.num_classes = bundle.train->num_classes();
  net_cfg.init_seed = 21;
  core::two_head_network net(net_cfg);

  core::trainer_config pretrain_cfg;
  pretrain_cfg.epochs =
      static_cast<std::size_t>(args.get_int_or("pretrain_epochs", 6));
  pretrain_cfg.seed = 31;
  pretrain_cfg.augment = true;
  pretrain_cfg.augmentation.flip_probability = 0.0;
  core::trainer_config joint_cfg;
  joint_cfg.epochs = static_cast<std::size_t>(args.get_int_or("epochs", 10));
  joint_cfg.learning_rate = 1e-3;
  joint_cfg.seed = 32;
  joint_cfg.augment = true;
  joint_cfg.augmentation.flip_probability = 0.0;
  core::joint_loss_config loss_cfg;
  loss_cfg.beta = 0.05;
  loss_cfg.black_box = true;

  APPEAL_LOG_INFO("bench")
      << "training the two-head model once (fp32 reference)";
  core::pretrain_two_head(net, *bundle.train, nullptr, pretrain_cfg);
  core::train_joint(net, *bundle.train, nullptr, {}, joint_cfg, loss_cfg);

  // Full trained snapshot (weights + batchnorm statistics): the fake
  // rounds restore `net` from it in place; the real rounds copy it into a
  // fresh float network and hand that to the destructive rewrite.
  std::vector<tensor> snapshot;
  for (const nn::named_tensor& nt : net.state()) snapshot.push_back(*nt.value);
  const auto restore = [&snapshot](core::two_head_network& target) {
    std::vector<nn::named_tensor> state = target.state();
    APPEAL_CHECK(state.size() == snapshot.size(),
                 "snapshot/state mismatch (different architecture?)");
    for (std::size_t i = 0; i < state.size(); ++i) {
      *state[i].value = snapshot[i];
    }
  };

  // Calibration sample for the real path's activation grids: the head of
  // the validation split (never the test split the sweep scores on).
  std::vector<std::size_t> calib_rows(
      std::min<std::size_t>(256, bundle.val->size()));
  for (std::size_t i = 0; i < calib_rows.size(); ++i) calib_rows[i] = i;
  const data::batch calib = data::make_batch(*bundle.val, calib_rows);

  // Every row evaluates a fresh network restored from the snapshot and
  // PREPARED for inference (conv+BN folding, fused activations) — the
  // deployed fast path — so the eval ms/img column compares the int8
  // kernels against the float path they actually replace, not against an
  // unfolded training-mode graph.
  const auto deployed = [&]() {
    auto fresh = std::make_unique<core::two_head_network>(net_cfg);
    restore(*fresh);
    fresh->prepare_for_inference();
    return fresh;
  };

  const std::unique_ptr<core::two_head_network> fp32_net = deployed();
  const eval_result fp32 = evaluate(*fp32_net, *bundle.test);
  std::vector<sweep_row> rows;
  rows.push_back({"fp32", 32, fp32, 1.0});

  std::printf(
      "=== Ablation: PTQ of the two-head edge model (cifar10_like / "
      "mobilenet), fake vs real int8 path ===\n");

  for (const int bits : {8, 6, 4, 3}) {
    // Fake: deployed (folded) weights snapped to the b-bit grid in place;
    // inference stays on the float kernels.
    std::unique_ptr<core::two_head_network> fake_net = deployed();
    nn::quantize_model_weights(fake_net->extractor(), bits);
    nn::quantize_model_weights(fake_net->approximator_head(), bits);
    nn::quantize_model_weights(fake_net->predictor_head(), bits);
    sweep_row fake{"fake", bits, evaluate(*fake_net, *bundle.test), 0.0};
    fake.agree = agreement(fake.result, fp32);
    rows.push_back(std::move(fake));

    // Real: fresh float network from the snapshot, rewritten onto the s8
    // kernels at this weight precision (activations stay 8-bit u8; the
    // predictor head stays float by design, so sub-8-bit rows quantize
    // the same tensors the fake rows do, minus that one FC layer).
    core::two_head_network real_net(net_cfg);
    restore(real_net);
    std::vector<int> per_layer(
        quant::count_quantizable_layers(real_net), bits);
    quant::quantize_two_head(real_net, calib.images, per_layer);
    sweep_row real{"real", bits, evaluate(real_net, *bundle.test), 0.0};
    real.agree = agreement(real.result, fp32);
    rows.push_back(std::move(real));
  }

  util::ascii_table table({"mode", "bits", "accuracy%", "q AUROC",
                           "agreement with fp32", "eval ms/img"});
  for (const sweep_row& row : rows) {
    table.add_row({row.mode, std::to_string(row.bits),
                   util::format_fixed(row.result.accuracy * 100.0, 2),
                   util::format_fixed(row.result.q_auroc, 4),
                   util::format_percent(row.agree),
                   util::format_fixed(row.result.ms_per_image, 4)});
  }
  std::printf("%s", table.render().c_str());

  const std::string json_path = args.get_string_or("json", "");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"ablation_quantization\",\n"
                 "  \"preset\": \"cifar10_like\",\n"
                 "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const sweep_row& row = rows[i];
      std::fprintf(f,
                   "    {\"mode\": \"%s\", \"bits\": %d, \"accuracy\": %.6f,"
                   " \"q_auroc\": %.6f, \"agreement\": %.6f,"
                   " \"eval_ms_per_image\": %.6f}%s\n",
                   row.mode.c_str(), row.bits, row.result.accuracy,
                   row.result.q_auroc, row.agree, row.result.ms_per_image,
                   i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Acceptance: the deployable int8 path tracks the fake-quant proxy.
  const sweep_row& fake8 = rows[1];
  const sweep_row& real8 = rows[2];
  const bool acc_ok =
      std::abs(real8.result.accuracy - fake8.result.accuracy) <= 0.02 &&
      std::abs(real8.result.accuracy - fp32.accuracy) <= 0.02;
  std::printf("acceptance: real int8 within 2pp of fake int8 and fp32 %s\n",
              acc_ok ? "PASS" : "FAIL");
  return acc_ok ? 0 : 1;
}
