// Table II reproduction: appealing rate of black-box approximation under
// different accuracy requirements on CIFAR-10.
//
// Paper setup: the cloud model is an opaque vendor service treated as an
// oracle (always correct); the little network is trained with the Eq. 10
// black-box objective. For each of three edge families (EfficientNet,
// MobileNet, ShuffleNet) and each AccI target in {50, 75, 90, 95}%, report
// the appealing rate (Eq. 12, lower = cheaper) of the score-margin baseline
// vs AppealNet, plus the relative saving.
//
// Shape expectation (DESIGN.md §4): AppealNet AR below SM AR at most
// operating points.
//
// Usage: bench_table2_blackbox [--nocache]
#include <cstdio>

#include "bench_common.hpp"
#include "metrics/metrics.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace appeal;

/// δ tuned on validation for the cheapest point meeting the target, then
/// evaluated on test; returns the test appealing rate.
core::operating_point tuned_test_point(const bench::method_splits& splits,
                                       const core::accuracy_context& val_ctx,
                                       const core::accuracy_context& test_ctx,
                                       double target) {
  const auto sweep = core::sweep_thresholds(
      splits.val.little_predictions, splits.val.big_predictions,
      splits.val.labels, splits.val.scores, val_ctx);
  const auto chosen = core::cheapest_point_for_acci(sweep, target);
  return core::evaluate_at_delta(
      splits.test.little_predictions, splits.test.big_predictions,
      splits.test.labels, splits.test.scores, chosen.delta, test_ctx);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace appeal;
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(util::log_level::info);

  const util::artifact_cache cache = util::default_cache();
  const util::artifact_cache* cache_ptr =
      args.get_bool_or("nocache", false) ? nullptr : &cache;

  const auto targets = collab::paper_acci_targets();
  const models::model_family families[] = {
      models::model_family::efficientnet,
      models::model_family::mobilenet,
      models::model_family::shufflenet,
  };

  std::vector<std::string> headers{"model", "orig acc%", "AppealNet acc%"};
  for (const double t : targets) {
    headers.push_back("AR@" + util::format_fixed(t * 100.0, 0) + "% (SM/AN)");
    headers.push_back("saving");
  }
  util::ascii_table table(headers);

  util::csv_writer csv(bench::results_path("table2_blackbox.csv"));
  csv.write_row(std::vector<std::string>{"family", "acci_target", "method",
                                         "appealing_rate", "accuracy"});

  std::printf("=== Table II: black-box (oracle cloud) appealing rate on "
              "cifar10_like ===\n");

  for (const auto family : families) {
    const collab::experiment_config cfg = collab::default_experiment(
        data::preset::cifar10_like, family, /*black_box=*/true);
    const collab::experiment_outputs outputs =
        collab::run_experiment(cfg, cache_ptr);

    const bench::method_splits sm =
        bench::make_method_splits(outputs, core::score_method::score_margin);
    const bench::method_splits an =
        bench::make_method_splits(outputs, core::score_method::appealnet_q);

    // AccI reference for every method: the ORIGINAL little model's accuracy
    // (paper Eq. 14's "stand-alone small DNN"), so both methods chase the
    // same absolute bar and only their appealing rate differs.
    const auto ctx_for = [&](const collab::split_outputs& split,
                             core::score_method /*method*/) {
      core::accuracy_context ctx;
      const auto little =
          ops::argmax_rows(split.little_base_logits);
      ctx.little_accuracy = metrics::accuracy(little, split.labels);
      ctx.big_accuracy = 1.0;  // oracle cloud
      return ctx;
    };

    std::vector<std::string> row{
        models::family_name(family),
        util::format_fixed(outputs.little_base_accuracy * 100.0, 2),
        util::format_fixed(outputs.little_joint_accuracy * 100.0, 2)};

    for (const double target : targets) {
      const auto sm_point = tuned_test_point(
          sm, ctx_for(outputs.val, core::score_method::score_margin),
          ctx_for(outputs.test, core::score_method::score_margin), target);
      const auto an_point = tuned_test_point(
          an, ctx_for(outputs.val, core::score_method::appealnet_q),
          ctx_for(outputs.test, core::score_method::appealnet_q), target);

      const double sm_ar = 1.0 - sm_point.skipping_rate;
      const double an_ar = 1.0 - an_point.skipping_rate;
      const double saving = sm_ar > 0.0 ? 1.0 - an_ar / sm_ar : 0.0;

      row.push_back(util::format_fixed(sm_ar * 100.0, 2) + "/" +
                    util::format_fixed(an_ar * 100.0, 2));
      row.push_back(util::format_percent(saving));

      csv.write_row(std::vector<std::string>{
          models::family_name(family), util::format_fixed(target, 2), "SM",
          util::format_fixed(sm_ar, 4),
          util::format_fixed(sm_point.overall_accuracy, 5)});
      csv.write_row(std::vector<std::string>{
          models::family_name(family), util::format_fixed(target, 2),
          "AppealNet", util::format_fixed(an_ar, 4),
          util::format_fixed(an_point.overall_accuracy, 5)});
    }
    table.add_row(std::move(row));
  }

  std::printf("%s", table.render().c_str());
  std::printf("AR pairs: score-margin / AppealNet appealing rate (Eq. 12); "
              "lower = less cloud traffic\n");
  std::printf("rows written to %s\n",
              bench::results_path("table2_blackbox.csv").c_str());
  return 0;
}
