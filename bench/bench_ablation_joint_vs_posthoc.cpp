// Ablation: joint end-to-end training vs a post-hoc predictor head.
//
// The two-head design's central claim (Section V) is that training (f1, q)
// JOINTLY — gradients from the predictor head flowing into the shared
// feature extractor — beats bolting a predictor onto a frozen pretrained
// classifier. This ablation trains both variants on the same pretrained
// backbone and compares q separation (AUROC) and system accuracy at the
// paper's skipping rates.
//
// Expected shape: joint >= post-hoc on AUROC and on accuracy at high SR
// (the frozen extractor never learned difficulty-relevant features).
//
// Usage: bench_ablation_joint_vs_posthoc
#include <cstdio>

#include "collab/system_eval.hpp"
#include "core/joint_trainer.hpp"
#include "data/dataloader.hpp"
#include "data/presets.hpp"
#include "metrics/metrics.hpp"
#include "nn/optimizer.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/config.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace appeal;

/// Post-hoc variant: freeze everything except the predictor head and train
/// it alone with the same objective.
void train_posthoc_head(core::two_head_network& net,
                        const data::dataset& train,
                        const core::trainer_config& cfg,
                        const core::joint_loss_config& loss_cfg) {
  nn::adam opt(cfg.learning_rate);
  opt.attach(net.predictor_head().parameters());  // ONLY the head
  util::rng gen(cfg.seed);
  data::data_loader loader(train, cfg.batch_size, true, gen.split());

  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    loader.start_epoch();
    while (auto b = loader.next()) {
      // Frozen backbone: features and logits come from eval-mode passes with
      // no gradient flow; only the predictor head trains.
      const tensor features =
          net.extractor().forward(b->images, /*training=*/false);
      const tensor logits =
          net.approximator_head().forward(features, /*training=*/false);
      tensor raw = net.predictor_head().forward(features, /*training=*/true);
      const std::size_t n = raw.dims().dim(0);
      const auto loss = core::compute_joint_loss(
          logits, raw.reshaped(shape{n}), b->labels, {}, loss_cfg);
      opt.zero_grad();
      net.predictor_head().backward(
          loss.grad_q_logits.reshaped(shape{n, 1}));
      opt.step();
    }
  }
}

double q_auroc(core::two_head_network& net, const data::dataset& test) {
  const core::two_head_eval eval = core::eval_two_head(net, test);
  const auto preds = ops::argmax_rows(eval.logits);
  std::vector<double> pos, neg;
  for (std::size_t i = 0; i < test.size(); ++i) {
    (preds[i] == test.get(i).label ? pos : neg)
        .push_back(static_cast<double>(eval.q[i]));
  }
  if (pos.empty() || neg.empty()) return 0.5;
  return metrics::auroc(pos, neg);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace appeal;
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(util::log_level::info);

  // Small-bundle scale so this ablation retrains quickly from scratch.
  const data::dataset_bundle bundle =
      data::make_bundle(data::preset::cifar10_like, 42);

  core::two_head_config net_cfg;
  net_cfg.spec.family = models::model_family::mobilenet;
  net_cfg.spec.image_size = bundle.train->config().image_size;
  net_cfg.spec.num_classes = bundle.train->num_classes();
  net_cfg.init_seed = 5;

  core::trainer_config pretrain_cfg;
  pretrain_cfg.epochs =
      static_cast<std::size_t>(args.get_int_or("pretrain_epochs", 6));
  pretrain_cfg.seed = 11;
  pretrain_cfg.augment = true;
  pretrain_cfg.augmentation.flip_probability = 0.0;

  core::trainer_config head_cfg;
  head_cfg.epochs = static_cast<std::size_t>(args.get_int_or("epochs", 12));
  head_cfg.learning_rate = 1e-3;
  head_cfg.seed = 13;
  head_cfg.augment = true;
  head_cfg.augmentation.flip_probability = 0.0;

  core::joint_loss_config loss_cfg;
  loss_cfg.beta = 0.05;
  loss_cfg.black_box = true;

  std::printf("=== Ablation: joint two-head training vs post-hoc predictor "
              "head (cifar10_like) ===\n");

  // Shared pretraining, then fork.
  core::two_head_network joint_net(net_cfg);
  core::pretrain_two_head(joint_net, *bundle.train, nullptr, pretrain_cfg);

  core::two_head_network posthoc_net(net_cfg);  // identical init/seed
  core::pretrain_two_head(posthoc_net, *bundle.train, nullptr, pretrain_cfg);

  APPEAL_LOG_INFO("bench") << "training joint variant";
  core::train_joint(joint_net, *bundle.train, nullptr, {}, head_cfg,
                    loss_cfg);
  APPEAL_LOG_INFO("bench") << "training post-hoc variant (frozen backbone)";
  train_posthoc_head(posthoc_net, *bundle.train, head_cfg, loss_cfg);

  util::ascii_table table(
      {"variant", "little acc%", "q AUROC", "acc@SR80%", "acc@SR90%"});

  const auto big_preds = [&](const data::dataset& ds) {
    // Oracle cloud, as in the black-box objective used above.
    std::vector<std::size_t> out(ds.size());
    for (std::size_t i = 0; i < ds.size(); ++i) out[i] = ds.get(i).label;
    return out;
  };

  for (auto* entry : {&joint_net, &posthoc_net}) {
    core::two_head_network& net = *entry;
    const core::two_head_eval val_eval = core::eval_two_head(net, *bundle.val);
    const core::two_head_eval test_eval =
        core::eval_two_head(net, *bundle.test);

    collab::routed_split val_split;
    val_split.labels = big_preds(*bundle.val);
    val_split.little_predictions = ops::argmax_rows(val_eval.logits);
    val_split.big_predictions = val_split.labels;
    val_split.scores = core::q_to_scores(val_eval.q);

    collab::routed_split test_split;
    test_split.labels = big_preds(*bundle.test);
    test_split.little_predictions = ops::argmax_rows(test_eval.logits);
    test_split.big_predictions = test_split.labels;
    test_split.scores = core::q_to_scores(test_eval.q);

    const auto curve =
        collab::accuracy_vs_sr_curve(test_split, &val_split, {0.80, 0.90});
    const double little_acc = metrics::accuracy(test_split.little_predictions,
                                                test_split.labels);

    table.add_row({entry == &joint_net ? "joint (AppealNet)" : "post-hoc head",
                   util::format_fixed(little_acc * 100.0, 2),
                   util::format_fixed(q_auroc(net, *bundle.test), 4),
                   util::format_fixed(curve[0].accuracy * 100.0, 2),
                   util::format_fixed(curve[1].accuracy * 100.0, 2)});
  }

  std::printf("%s", table.render().c_str());
  return 0;
}
