// Micro-benchmarks for the tensor substrate: GEMM, im2col, softmax,
// elementwise kernels. These are google-benchmark timings that establish
// the training stack's raw throughput (the experiment benches' runtime is
// dominated by these kernels).
#include <benchmark/benchmark.h>

#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;

void bm_sgemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::rng gen(1);
  const tensor a = tensor::rand_uniform(shape{n, n}, gen, -1.0F, 1.0F);
  const tensor b = tensor::rand_uniform(shape{n, n}, gen, -1.0F, 1.0F);
  tensor c(shape{n, n});
  for (auto _ : state) {
    ops::sgemm(n, n, n, 1.0F, a.data(), b.data(), 0.0F, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n, benchmark::Counter::kIsRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(bm_sgemm)->Arg(64)->Arg(128)->Arg(256);

void bm_sgemm_shapes_conv_like(benchmark::State& state) {
  // The shape class conv lowers to: [out_c x patch] * [patch x positions].
  const std::size_t m = 32, k = 144, n = 256;
  util::rng gen(2);
  const tensor a = tensor::rand_uniform(shape{m, k}, gen, -1.0F, 1.0F);
  const tensor b = tensor::rand_uniform(shape{k, n}, gen, -1.0F, 1.0F);
  tensor c(shape{m, n});
  for (auto _ : state) {
    ops::sgemm(m, n, k, 1.0F, a.data(), b.data(), 0.0F, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * m * k * n, benchmark::Counter::kIsRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(bm_sgemm_shapes_conv_like);

void bm_im2col(benchmark::State& state) {
  ops::conv_geometry g;
  g.channels = static_cast<std::size_t>(state.range(0));
  g.height = 16;
  g.width = 16;
  g.kernel = 3;
  g.stride = 1;
  g.padding = 1;
  util::rng gen(3);
  const tensor image =
      tensor::rand_uniform(shape{g.channels, 16, 16}, gen, -1.0F, 1.0F);
  std::vector<float> columns(g.patch_size() * g.column_count());
  for (auto _ : state) {
    ops::im2col(g, image.data(), columns.data());
    benchmark::DoNotOptimize(columns.data());
  }
}
BENCHMARK(bm_im2col)->Arg(3)->Arg(32)->Arg(128);

void bm_softmax_rows(benchmark::State& state) {
  const auto classes = static_cast<std::size_t>(state.range(0));
  util::rng gen(4);
  const tensor logits =
      tensor::rand_uniform(shape{64, classes}, gen, -5.0F, 5.0F);
  for (auto _ : state) {
    tensor probs = ops::softmax_rows(logits);
    benchmark::DoNotOptimize(probs.data());
  }
}
BENCHMARK(bm_softmax_rows)->Arg(10)->Arg(100)->Arg(200);

void bm_elementwise_axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::rng gen(5);
  tensor a = tensor::rand_uniform(shape{n}, gen, -1.0F, 1.0F);
  const tensor b = tensor::rand_uniform(shape{n}, gen, -1.0F, 1.0F);
  for (auto _ : state) {
    ops::axpy(a, 0.5F, b);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 2 * sizeof(float));
}
BENCHMARK(bm_elementwise_axpy)->Arg(1024)->Arg(65536);

}  // namespace
