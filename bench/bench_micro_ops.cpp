// Micro-benchmarks for the tensor substrate: GEMM, im2col, softmax,
// elementwise kernels. These are google-benchmark timings that establish
// the serving stack's raw throughput (the edge hot path is dominated by
// these kernels).
//
// The GEMM suite includes the exact shapes the MobileNet/EfficientNet edge
// backbones lower to (im2col panels at batch 1 and at serving batch 16),
// so kernel work is measured on the geometry the δ cost model actually
// inverts.
//
// Run:  ./bench_micro_ops [--json=<path>] [--benchmark_filter=...]
// --json=<path> writes the google-benchmark JSON report to <path> (it is
// shorthand for --benchmark_out=<path> --benchmark_out_format=json);
// baselines live under results/.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "nn/conv2d.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;

void bm_sgemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::rng gen(1);
  const tensor a = tensor::rand_uniform(shape{n, n}, gen, -1.0F, 1.0F);
  const tensor b = tensor::rand_uniform(shape{n, n}, gen, -1.0F, 1.0F);
  tensor c(shape{n, n});
  for (auto _ : state) {
    ops::sgemm(n, n, n, 1.0F, a.data(), b.data(), 0.0F, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n, benchmark::Counter::kIsRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(bm_sgemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

/// One named GEMM shape [m x k] * [k x n] with a GFLOPS counter.
void run_gemm_shape(benchmark::State& state, std::size_t m, std::size_t k,
                    std::size_t n) {
  util::rng gen(2);
  const tensor a = tensor::rand_uniform(shape{m, k}, gen, -1.0F, 1.0F);
  const tensor b = tensor::rand_uniform(shape{k, n}, gen, -1.0F, 1.0F);
  tensor c(shape{m, n});
  for (auto _ : state) {
    ops::sgemm(m, n, k, 1.0F, a.data(), b.data(), 0.0F, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(m) * k * n, benchmark::Counter::kIsRate,
      benchmark::Counter::kIs1000);
}

// MobileNet edge-backbone layer geometries (width 1.0, 16x16 inputs:
// channels 16 -> 32 -> 64 -> 128). im2col lowers each conv to
// [out_c x patch] * [patch x batch*positions]; `b1`/`b16` are serving
// batch sizes 1 and 16 (the batcher's default max batch).
void bm_gemm_mobilenet_stem_b1(benchmark::State& s) {
  run_gemm_shape(s, 16, 27, 256);
}
BENCHMARK(bm_gemm_mobilenet_stem_b1);
void bm_gemm_mobilenet_stem_b16(benchmark::State& s) {
  run_gemm_shape(s, 16, 27, 4096);
}
BENCHMARK(bm_gemm_mobilenet_stem_b16);
void bm_gemm_mobilenet_pw1_b16(benchmark::State& s) {
  run_gemm_shape(s, 32, 16, 1024);
}
BENCHMARK(bm_gemm_mobilenet_pw1_b16);
void bm_gemm_mobilenet_pw2_b16(benchmark::State& s) {
  run_gemm_shape(s, 64, 32, 256);
}
BENCHMARK(bm_gemm_mobilenet_pw2_b16);
void bm_gemm_mobilenet_pw3_b16(benchmark::State& s) {
  run_gemm_shape(s, 128, 64, 64);
}
BENCHMARK(bm_gemm_mobilenet_pw3_b16);

// EfficientNet MBConv geometries (expansion 4): the 1x1 expansion and
// projection convs dominate that backbone's edge FLOPs.
void bm_gemm_efficientnet_expand_b16(benchmark::State& s) {
  run_gemm_shape(s, 64, 16, 1024);
}
BENCHMARK(bm_gemm_efficientnet_expand_b16);
void bm_gemm_efficientnet_project_b16(benchmark::State& s) {
  run_gemm_shape(s, 32, 64, 1024);
}
BENCHMARK(bm_gemm_efficientnet_project_b16);
void bm_gemm_efficientnet_expand2_b16(benchmark::State& s) {
  run_gemm_shape(s, 128, 32, 256);
}
BENCHMARK(bm_gemm_efficientnet_expand2_b16);

/// Thread scaling of one large GEMM (the M dimension splits over the
/// shared util::thread_pool; results are bit-identical per thread count).
void bm_sgemm_threads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 512;
  util::rng gen(8);
  const tensor a = tensor::rand_uniform(shape{n, n}, gen, -1.0F, 1.0F);
  const tensor b = tensor::rand_uniform(shape{n, n}, gen, -1.0F, 1.0F);
  tensor c(shape{n, n});
  ops::set_gemm_threads(threads);
  for (auto _ : state) {
    ops::sgemm(n, n, n, 1.0F, a.data(), b.data(), 0.0F, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  ops::set_gemm_threads(1);
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n, benchmark::Counter::kIsRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(bm_sgemm_threads)->Arg(1)->Arg(2)->Arg(4);

/// Whole conv layer in inference mode (im2col + GEMM + bias), the
/// MobileNet stem on a serving batch.
void bm_conv2d_mobilenet_stem(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  nn::conv2d conv(3, 16, /*kernel=*/3, /*stride=*/1, /*padding=*/1);
  util::rng gen(6);
  conv.weight().value = tensor::randn(conv.weight().value.dims(), gen, 0.0F,
                                      0.1F);
  const tensor input =
      tensor::rand_uniform(shape{batch, 3, 16, 16}, gen, -1.0F, 1.0F);
  for (auto _ : state) {
    tensor out = conv.forward(input, /*training=*/false);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(conv.flops(input.dims())),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(bm_conv2d_mobilenet_stem)->Arg(1)->Arg(16);

/// Depthwise conv (groups == channels): many tiny GEMMs, the other half of
/// the MobileNet cost profile.
void bm_conv2d_mobilenet_depthwise(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  nn::conv2d conv(32, 32, /*kernel=*/3, /*stride=*/1, /*padding=*/1,
                  /*groups=*/32, /*bias=*/false);
  util::rng gen(7);
  conv.weight().value = tensor::randn(conv.weight().value.dims(), gen, 0.0F,
                                      0.1F);
  const tensor input =
      tensor::rand_uniform(shape{batch, 32, 8, 8}, gen, -1.0F, 1.0F);
  for (auto _ : state) {
    tensor out = conv.forward(input, /*training=*/false);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(bm_conv2d_mobilenet_depthwise)->Arg(1)->Arg(16);

void bm_im2col(benchmark::State& state) {
  ops::conv_geometry g;
  g.channels = static_cast<std::size_t>(state.range(0));
  g.height = 16;
  g.width = 16;
  g.kernel = 3;
  g.stride = 1;
  g.padding = 1;
  util::rng gen(3);
  const tensor image =
      tensor::rand_uniform(shape{g.channels, 16, 16}, gen, -1.0F, 1.0F);
  std::vector<float> columns(g.patch_size() * g.column_count());
  for (auto _ : state) {
    ops::im2col(g, image.data(), columns.data());
    benchmark::DoNotOptimize(columns.data());
  }
}
BENCHMARK(bm_im2col)->Arg(3)->Arg(32)->Arg(128);

void bm_softmax_rows(benchmark::State& state) {
  const auto classes = static_cast<std::size_t>(state.range(0));
  util::rng gen(4);
  const tensor logits =
      tensor::rand_uniform(shape{64, classes}, gen, -5.0F, 5.0F);
  for (auto _ : state) {
    tensor probs = ops::softmax_rows(logits);
    benchmark::DoNotOptimize(probs.data());
  }
}
BENCHMARK(bm_softmax_rows)->Arg(10)->Arg(100)->Arg(200);

void bm_elementwise_axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::rng gen(5);
  tensor a = tensor::rand_uniform(shape{n}, gen, -1.0F, 1.0F);
  const tensor b = tensor::rand_uniform(shape{n}, gen, -1.0F, 1.0F);
  for (auto _ : state) {
    ops::axpy(a, 0.5F, b);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 2 * sizeof(float));
}
BENCHMARK(bm_elementwise_axpy)->Arg(1024)->Arg(65536);

}  // namespace

// Custom main so the perf-tracking flag reads like the other benches:
// --json=<path> expands to google-benchmark's out/out_format pair.
int main(int argc, char** argv) {
  std::vector<std::string> args_storage;
  args_storage.reserve(static_cast<std::size_t>(argc) + 2);
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--json=", 7) == 0) {
      args_storage.emplace_back(std::string("--benchmark_out=") + (arg + 7));
      args_storage.emplace_back("--benchmark_out_format=json");
    } else {
      args_storage.emplace_back(arg);
    }
  }
  std::vector<char*> args;
  args.reserve(args_storage.size());
  for (std::string& s : args_storage) args.push_back(s.data());
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
