// Shared helpers for the experiment benches.
#pragma once

#include <string>
#include <vector>

#include "collab/experiment.hpp"
#include "collab/system_eval.hpp"
#include "core/scores.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/config.hpp"

namespace appeal::bench {

/// Routed val/test splits for one scoring method over an experiment.
struct method_splits {
  collab::routed_split val;
  collab::routed_split test;
  std::string name;
};

/// Builds val/test routed splits for one method. Baselines (MSP/SM/Entropy)
/// score and predict with the phase-1 standalone little model; AppealNet
/// predicts with the joint two-head model and scores with q(1|x) — exactly
/// the paper's protocol.
inline method_splits make_method_splits(
    const collab::experiment_outputs& outputs, core::score_method method) {
  method_splits out;
  out.name = core::score_method_name(method);

  const auto build = [&](const collab::split_outputs& split) {
    if (method == core::score_method::appealnet_q) {
      return collab::make_routed_split(split.little_joint_logits,
                                       split.big_logits, split.labels,
                                       core::q_to_scores(split.q));
    }
    const tensor probs = ops::softmax_rows(split.little_base_logits);
    return collab::make_routed_split(split.little_base_logits,
                                     split.big_logits, split.labels,
                                     core::confidence_scores(method, probs));
  };
  out.val = build(outputs.val);
  out.test = build(outputs.test);
  return out;
}

/// Little-model accuracy for the method's own little model (base for the
/// baselines, joint for AppealNet) on the test split.
inline double method_little_accuracy(
    const collab::experiment_outputs& outputs, core::score_method method) {
  return method == core::score_method::appealnet_q
             ? outputs.little_joint_accuracy
             : outputs.little_base_accuracy;
}

/// Deterministic-by-default bench seed: `--seed=N` when the flag is given,
/// `fallback` otherwise — load generation reproduces bit-for-bit unless
/// the caller opts into a new seed.
std::uint64_t bench_seed(const util::config& args,
                         std::uint64_t fallback = 42);

/// Output directory for bench CSVs (created on demand).
std::string results_dir();

/// Ensures `results_dir()` exists and returns `<results_dir>/<name>`.
std::string results_path(const std::string& name);

}  // namespace appeal::bench
