// Closed-loop serving load test, driven through the serve::server facade.
//
// A pool of client threads drives >= 10k synthetic requests through a
// named deployment (sharded engines behind one cloud channel). Two runs
// share one workload:
//   1. fixed δ taken from the offline system_eval sweep at --target_sr —
//      online accuracy and SR must reproduce the offline prediction;
//   2. adaptive δ (track_sr from a cold, deliberately wrong δ) — shows
//      the per-deployment threshold_controller converging onto the same
//      operating point.
// Reports throughput, p50/p95/p99 latency, achieved SR, shed rate, online
// accuracy, and the cost model's latency prediction for the achieved SR;
// writes results/serving.csv and, with --json=<path>, a machine-readable
// result for the perf trajectory.
//
// Run:  ./bench_serving [--requests=20000] [--target_sr=0.9] [--seed=42]
//       [--clients=64] [--shards=2] [--workers=2] [--batch=16]
//       [--max_wait_us=200] [--time_scale=0.2] [--edge_sim=1]
//       [--admission=block|shed|edge_only] [--json=results/serving.json]
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "collab/system_eval.hpp"
#include "serve/server.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace appeal;

struct workload {
  std::vector<std::size_t> labels;
  std::vector<std::size_t> little;
  std::vector<std::size_t> big;
  std::vector<double> scores;
};

/// Synthetic request population: an ~80%-accurate little model, an
/// ~97%-accurate big model, and scores correlated with little-correctness
/// (the separation the two-head predictor provides; cf. Fig. 4).
workload make_workload(std::size_t n, std::uint64_t seed) {
  util::rng gen(seed);
  workload w;
  w.labels.resize(n);
  w.little.resize(n);
  w.big.resize(n);
  w.scores.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    w.labels[i] = i % 10;
    const bool little_right = gen.bernoulli(0.8);
    w.little[i] = little_right ? w.labels[i] : (w.labels[i] + 1) % 10;
    w.big[i] = gen.bernoulli(0.97) ? w.labels[i] : (w.labels[i] + 2) % 10;
    w.scores[i] = little_right ? 0.5 + 0.5 * gen.uniform()
                               : 0.7 * gen.uniform();
  }
  return w;
}

constexpr const char* kModel = "bench";

/// Closed-loop drive over workload indices [begin, end): `clients`
/// threads, each submits one request and blocks on its completion before
/// taking the next index (shed responses resolve immediately, so load
/// shedding speeds the loop up instead of wedging it).
void drive_closed_loop(serve::server& srv, const workload& w,
                       std::size_t clients, std::size_t begin,
                       std::size_t end) {
  std::atomic<std::size_t> next{begin};
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= end) return;
        serve::inference_request req;
        req.model = kModel;
        req.key = i;
        req.label = w.labels[i];
        srv.submit(std::move(req)).get();
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

struct run_result {
  serve::stats_snapshot stats;  // steady state: warmup is excluded
  double delta = 0.0;
  double warmup_seconds = 0.0;
  double measured_seconds = 0.0;
};

/// Drives the full workload through a fresh server; when `warmup > 0`,
/// the first `warmup` requests prime the deployment (and its δ
/// controller) and the stats are reset before the measured phase — so
/// every reported metric (latency quantiles, throughput, SR, accuracy)
/// is steady-state.
run_result run_mode(const workload& w, const serve::deployment_config& cfg,
                    std::size_t clients, std::size_t warmup) {
  serve::server srv;
  serve::deployment& dep = srv.register_deployment(
      kModel, cfg,
      [&w](std::size_t, std::size_t) {
        return std::make_unique<serve::replay_edge_backend>(w.little,
                                                            w.scores);
      },
      [&w] { return std::make_unique<serve::replay_cloud_backend>(w.big); });
  util::stopwatch phases;
  if (warmup > 0) {
    drive_closed_loop(srv, w, clients, 0, warmup);
    srv.drain();
    dep.reset_stats();
  }
  run_result r;
  if (warmup > 0) r.warmup_seconds = phases.lap_seconds();
  drive_closed_loop(srv, w, clients, warmup, w.labels.size());
  srv.drain();
  r.measured_seconds = phases.lap_seconds();
  r.stats = dep.snapshot();
  r.delta = dep.controller().delta();
  return r;
}

void report(const char* name, const run_result& r, double target_sr,
            double offline_accuracy, const collab::cost_model& link) {
  std::printf("--- %s ---\n%s", name,
              serve::serve_stats::render(r.stats).c_str());
  if (r.warmup_seconds > 0.0) {
    std::printf("phases           : warmup %.2f s, measured %.2f s\n",
                r.warmup_seconds, r.measured_seconds);
  }
  std::printf("final delta      : %.4f\n", r.delta);
  std::printf("target SR        : %.2f%% (gap %.2f pp)\n", target_sr * 100.0,
              (r.stats.achieved_sr - target_sr) * 100.0);
  std::printf("offline accuracy : %.2f%% (gap %.2f pp)\n",
              offline_accuracy * 100.0,
              (r.stats.online_accuracy - offline_accuracy) * 100.0);
  std::printf("modeled latency  : %.3f ms/request at achieved SR\n\n",
              link.overall_latency_ms(r.stats.achieved_sr));
}

serve::admission_policy parse_admission(const std::string& name) {
  if (name == "block") return serve::admission_policy::block;
  if (name == "shed") return serve::admission_policy::shed;
  if (name == "edge_only") return serve::admission_policy::edge_only;
  throw util::error("unknown --admission policy: " + name);
}

void append_run_json(std::FILE* f, const char* mode, const run_result& r,
                     bool last) {
  std::fprintf(
      f,
      "    {\"mode\": \"%s\", \"throughput_rps\": %.3f, \"p50_ms\": %.4f,"
      " \"p95_ms\": %.4f, \"p99_ms\": %.4f, \"achieved_sr\": %.6f,"
      " \"online_accuracy\": %.6f, \"shed_rate\": %.6f, \"shed\": %zu,"
      " \"expired\": %zu, \"overflow\": %zu, \"delta\": %.6f,"
      " \"measured_seconds\": %.4f}%s\n",
      mode, r.stats.throughput_rps, r.stats.p50_ms, r.stats.p95_ms,
      r.stats.p99_ms, r.stats.achieved_sr, r.stats.online_accuracy,
      r.stats.shed_rate, r.stats.shed, r.stats.expired, r.stats.overflow,
      r.delta, r.measured_seconds, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(util::log_level::info);

  const auto requests =
      static_cast<std::size_t>(args.get_int_or("requests", 20000));
  const double target_sr = args.get_double_or("target_sr", 0.9);
  const std::uint64_t seed = bench::bench_seed(args);
  const auto clients = static_cast<std::size_t>(args.get_int_or("clients", 64));
  const auto shards = static_cast<std::size_t>(args.get_int_or("shards", 2));
  const std::string json_path = args.get_string_or("json", "");

  serve::deployment_config cfg;
  cfg.shards = shards;
  cfg.shard.batching.max_batch_size =
      static_cast<std::size_t>(args.get_int_or("batch", 16));
  cfg.shard.batching.max_wait =
      std::chrono::microseconds(args.get_int_or("max_wait_us", 200));
  cfg.shard.num_workers =
      static_cast<std::size_t>(args.get_int_or("workers", 2));
  cfg.shard.queue_capacity = static_cast<std::size_t>(
      args.get_int_or("queue_capacity", 1024));
  cfg.shard.channel.time_scale = args.get_double_or("time_scale", 0.2);
  cfg.shard.simulate_edge_compute = args.get_bool_or("edge_sim", true);
  cfg.shard.admission.policy =
      parse_admission(args.get_string_or("admission", "block"));

  const workload w = make_workload(requests, seed);

  // Offline prediction (system_eval) for the same workload and target SR.
  collab::routed_split split;
  split.labels = w.labels;
  split.little_predictions = w.little;
  split.big_predictions = w.big;
  split.scores = w.scores;
  const auto curve =
      collab::accuracy_vs_sr_curve(split, nullptr, {target_sr});
  const collab::sweep_point offline = curve.front();
  std::printf(
      "=== bench_serving: %zu requests, %zu clients, %zu shards, seed %llu "
      "===\n",
      requests, clients, shards, static_cast<unsigned long long>(seed));
  std::printf(
      "offline system_eval: delta %.4f -> SR %.2f%%, accuracy %.2f%%\n\n",
      offline.delta, offline.achieved_sr * 100.0, offline.accuracy * 100.0);

  // Run 1: offline-calibrated fixed δ.
  serve::deployment_config fixed_cfg = cfg;
  fixed_cfg.shard.threshold.adapt = serve::threshold_config::mode::fixed;
  fixed_cfg.shard.threshold.initial_delta = offline.delta;
  const run_result fixed = run_mode(w, fixed_cfg, clients, /*warmup=*/0);
  report("fixed delta (offline calibration)", fixed, target_sr,
         offline.accuracy, cfg.shard.link);

  // Run 2: adaptive δ from a cold start. The controller needs a few
  // recalibration windows to find δ, so a warmup slice of the workload
  // primes it and every reported metric covers the steady state only.
  serve::deployment_config adaptive_cfg = cfg;
  adaptive_cfg.shard.threshold.adapt =
      serve::threshold_config::mode::track_sr;
  adaptive_cfg.shard.threshold.target_sr = target_sr;
  adaptive_cfg.shard.threshold.initial_delta = 0.99;
  const std::size_t warmup = std::min<std::size_t>(2048, requests / 5);
  const run_result adaptive = run_mode(w, adaptive_cfg, clients, warmup);
  report("adaptive delta (track_sr, cold start)", adaptive, target_sr,
         offline.accuracy, cfg.shard.link);

  const std::string path = bench::results_path("serving.csv");
  {
    util::csv_writer csv(path);
    csv.write_row({"mode", "requests", "shards", "throughput_rps", "p50_ms",
                   "p95_ms", "p99_ms", "target_sr", "achieved_sr",
                   "shed_rate", "online_accuracy", "offline_accuracy",
                   "delta"});
    const auto add = [&](const char* mode, const run_result& r) {
      csv.write_row({std::string(mode), std::to_string(requests),
                     std::to_string(shards),
                     std::to_string(r.stats.throughput_rps),
                     std::to_string(r.stats.p50_ms),
                     std::to_string(r.stats.p95_ms),
                     std::to_string(r.stats.p99_ms),
                     std::to_string(target_sr),
                     std::to_string(r.stats.achieved_sr),
                     std::to_string(r.stats.shed_rate),
                     std::to_string(r.stats.online_accuracy),
                     std::to_string(offline.accuracy),
                     std::to_string(r.delta)});
    };
    add("fixed", fixed);
    add("adaptive", adaptive);
  }
  std::printf("wrote %s\n", path.c_str());

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"serving\",\n"
                 "  \"requests\": %zu,\n"
                 "  \"clients\": %zu,\n"
                 "  \"shards\": %zu,\n"
                 "  \"seed\": %llu,\n"
                 "  \"target_sr\": %.6f,\n"
                 "  \"offline\": {\"delta\": %.6f, \"achieved_sr\": %.6f,"
                 " \"accuracy\": %.6f},\n"
                 "  \"runs\": [\n",
                 requests, clients, shards,
                 static_cast<unsigned long long>(seed), target_sr,
                 offline.delta, offline.achieved_sr, offline.accuracy);
    append_run_json(f, "fixed", fixed, /*last=*/false);
    append_run_json(f, "adaptive", adaptive, /*last=*/true);
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Acceptance: SR within 2 pp of target (steady state for the adaptive
  // run), online == offline accuracy for the fixed (same-δ) run.
  const bool sr_ok =
      std::abs(fixed.stats.achieved_sr - target_sr) <= 0.02 &&
      std::abs(adaptive.stats.achieved_sr - target_sr) <= 0.02;
  const bool acc_ok =
      std::abs(fixed.stats.online_accuracy - offline.accuracy) <= 0.005;
  std::printf("acceptance: SR within 2pp %s, online==offline accuracy %s\n",
              sr_ok ? "PASS" : "FAIL", acc_ok ? "PASS" : "FAIL");
  return sr_ok && acc_ok ? 0 : 1;
}
