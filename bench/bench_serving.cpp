// Closed-loop serving load test, driven through the serve::server facade.
//
// A pool of client threads drives >= 10k synthetic requests through a
// named deployment (sharded engines behind one cloud channel). Two runs
// share one workload:
//   1. fixed δ taken from the offline system_eval sweep at --target_sr —
//      online accuracy and SR must reproduce the offline prediction;
//   2. adaptive δ (track_sr from a cold, deliberately wrong δ) — shows
//      the per-deployment threshold_controller converging onto the same
//      operating point.
// Reports throughput, p50/p95/p99 latency, achieved SR, shed rate, online
// accuracy, and the cost model's latency prediction for the achieved SR;
// writes results/serving.csv and, with --json=<path>, a machine-readable
// result for the perf trajectory.
//
// Two backends:
//   --backend=replay (default): precomputed predictions/scores — isolates
//     the scheduler (queue, batcher, δ, channel) from model compute;
//   --backend=network: every edge worker runs a real two-head MobileNet
//     little network on synthetic images — the end-to-end edge fast path
//     (batched NCHW forward, packed GEMM, inference workspace) shows up
//     directly in the reported edge p50/p99. --edge_precision=int8 swaps
//     the workers (and the offline tables) onto the quant:: int8 rewrite
//     with δ recalibrated on the quantized score distribution; =auto
//     additionally runs the per-layer bit-width autotuner first.
//
// Two clouds:
//   --cloud=replay (default): the synthetic per-key big model;
//   --cloud=network (requires --backend=network for images on the wire):
//     the real big network — serve::make_cloud_model's canonical spec,
//     optionally restored from --weights=<path> (tools/train_cloud_model
//     output). The sim transport scores appeals with the local
//     network_cloud_backend; over a socket, start
//     `cloud_stub --scorer=network` with the same weights and the two
//     runs' cloud-path accuracy must agree bit for bit.
//     --split_mode=fixed --split_cut=N ships the cut-N feature map
//     instead of raw pixels (split computing); =auto lets the channel
//     pick the cut online from the cost model + measured link bandwidth.
//     Either way predictions stay bit-identical to full recompute.
//
// Three cloud transports:
//   --transport=sim (default): the deterministic cost-model simulator;
//   --transport=uds --endpoint=/tmp/appeal-cloud.sock and
//   --transport=tcp --endpoint=host:port: real framed appeals to a
//     running `cloud_stub`. Start the stub with --scorer=synthetic and
//     the same --seed/--accuracy/--classes and its answers equal the
//     simulator's replay table exactly, so accuracy/SR must match the
//     sim run bit for bit (the loopback CI gate asserts this).
//
// Run:  ./bench_serving [--requests=20000] [--target_sr=0.9] [--seed=42]
//       [--clients=64] [--pace_us=0] [--shards=2] [--workers=2] [--batch=16]
//       [--max_wait_us=200] [--time_scale=0.2] [--edge_sim=1]
//       [--batch_queue_depth=4] [--decide_queue_depth=8]
//       [--appeal_queue_depth=256]
//       [--backend=replay|network] [--edge_precision=fp32|int8|auto]
//       [--cloud=replay|network]
//       [--split_mode=off|fixed|auto] [--split_cut=<1-based cut id>]
//       [--weights=<path>] [--admission=block|shed|edge_only]
//       [--transport=sim|uds|tcp] [--endpoint=<path|host:port>]
//       [--coalesce_ms=0] [--max_batch_appeals=64]
//       [--max_retries=2] [--retry_backoff_ms=25]
//       [--breaker_threshold=4] [--breaker_open_ms=1000]
//       [--response_timeout_ms=30000]
//       [--fault=drop=0.05,delay_ms=1,dup=0.02,kill_at=0,seed=7]
//       [--json=results/serving.json]
//
// Robustness: the retry/breaker flags tune the channel's overload
// handling (see serve/cloud_channel.hpp); --fault wraps the transport in
// a deterministic fault injector (serve/transport/fault_transport.hpp)
// for chaos runs — the chaos-uds CI job drives this.
//
// Observability: --trace_sample=0.01 samples every 100th request into a
// trace span stamped at each stage boundary; --trace=<path> writes the
// sampled spans as JSONL (feed to tools/trace_report for the per-stage
// waterfall). --metrics=<port|uds-path> serves the process metrics
// registry as a Prometheus-text /metrics endpoint for the whole run;
// --metrics_dump=<path> writes a final scrape to a file at exit.
// --gemm_threads=N sets the (process-global) intra-GEMM parallelism of
// edge forwards. Each run labels its registry instruments
// {deployment="bench-fixed"|"bench-adaptive"}; the fixed run has no
// warmup, so its cumulative counters equal its final snapshot — the
// loopback CI gate asserts exactly that.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "collab/system_eval.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "core/two_head_network.hpp"
#include "quant/autotune.hpp"
#include "quant/quantize.hpp"
#include "quant/recalibrate.hpp"
#include "serve/cloud_model.hpp"
#include "serve/server.hpp"
#include "serve/transport/synthetic_scorer.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace appeal;

struct workload {
  std::vector<std::size_t> labels;
  std::vector<std::size_t> little;
  std::vector<std::size_t> big;
  std::vector<double> scores;
};

/// Big-model accuracy of the synthetic cloud; a cloud_stub started with
/// --scorer=synthetic --accuracy=0.97 and the same seed answers
/// identically over the socket.
constexpr double kBigAccuracy = 0.97;

/// Synthetic request population: an ~80%-accurate little model, an
/// ~97%-accurate big model, and scores correlated with little-correctness
/// (the separation the two-head predictor provides; cf. Fig. 4). Big
/// predictions are a pure function of (key, seed) — shared with the
/// out-of-process cloud_stub — so simulator and socket runs route and
/// score identically.
workload make_workload(std::size_t n, std::uint64_t seed) {
  util::rng gen(seed);
  workload w;
  w.labels.resize(n);
  w.little.resize(n);
  w.big.resize(n);
  w.scores.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    w.labels[i] = i % 10;
    const bool little_right = gen.bernoulli(0.8);
    w.little[i] = little_right ? w.labels[i] : (w.labels[i] + 1) % 10;
    w.big[i] = serve::transport::synthetic_big_prediction(
        i, w.labels[i], 10, seed, kBigAccuracy);
    w.scores[i] = little_right ? 0.5 + 0.5 * gen.uniform()
                               : 0.7 * gen.uniform();
  }
  return w;
}

/// Configuration of the real little network served in --backend=network
/// mode: the MobileNet edge backbone at its default (16x16, width 1.0)
/// geometry. Weights are deterministic from init_seed, so every worker's
/// instance — and the offline calibration pass — computes identical
/// predictions and scores.
core::two_head_config edge_net_config() {
  core::two_head_config cfg;
  cfg.spec.family = models::model_family::mobilenet;
  cfg.spec.image_size = 16;
  cfg.spec.num_classes = 10;
  cfg.init_seed = 0x5EED;
  return cfg;
}

/// Network-mode workload: synthetic images plus the same replay tables the
/// scheduler comparison needs, computed by one offline batched pass of the
/// little network (predictions + appeal scores). Big-model predictions
/// stay synthetic — the cloud side is simulated either way.
struct network_workload {
  std::vector<tensor> images;
  workload w;
  /// Calibration sample (first kCalibration images stacked NCHW) — the
  /// quantized modes hand it to every worker's rewrite so all instances
  /// share one activation grid.
  tensor calibration;
  /// Per-layer weight bits served (empty in fp32 mode; all 8 for int8;
  /// the autotuner's choice for auto).
  std::vector<int> bits;
  quant::quant_report report;
  /// δ retuned on the quantized score distribution over the calibration
  /// sample vs the same retuning on fp32 scores — the recalibration shift.
  double recal_delta = 0.0;
  double fp32_delta = 0.0;
};

constexpr std::size_t kCalibration = 256;

network_workload make_network_workload(std::size_t n, std::uint64_t seed,
                                       serve::edge_precision precision,
                                       double target_sr) {
  util::rng gen(seed);
  network_workload out;
  out.images.reserve(n);
  out.w.labels.resize(n);
  out.w.little.resize(n);
  out.w.big.resize(n);
  out.w.scores.resize(n);

  const core::two_head_config cfg = edge_net_config();
  const std::size_t c = cfg.spec.in_channels;
  const std::size_t hw = cfg.spec.image_size;
  for (std::size_t i = 0; i < n; ++i) {
    out.images.push_back(
        tensor::rand_uniform(shape{c, hw, hw}, gen, -1.0F, 1.0F));
    out.w.labels[i] = i % cfg.spec.num_classes;
    out.w.big[i] = serve::transport::synthetic_big_prediction(
        i, out.w.labels[i], cfg.spec.num_classes, seed, kBigAccuracy);
  }

  // Calibration sample for the quantized modes: the head of the workload
  // (deterministic from the seed, so every worker and the offline tables
  // quantize onto identical grids).
  const std::size_t calib = std::min(kCalibration, n);
  out.calibration = tensor(shape{calib, c, hw, hw});
  for (std::size_t i = 0; i < calib; ++i) {
    std::copy(out.images[i].values().begin(), out.images[i].values().end(),
              out.calibration.data() + i * c * hw * hw);
  }

  // The reference network that computes the offline replay tables runs at
  // the SAME precision the workers serve, so the scheduler comparison and
  // the fixed-δ acceptance check see exactly the served model.
  auto make_net = [&cfg] {
    auto net = std::make_unique<core::two_head_network>(cfg);
    net->prepare_for_inference();
    return net;
  };
  std::unique_ptr<core::two_head_network> net = make_net();
  if (precision == serve::edge_precision::int8) {
    out.report = quant::quantize_two_head(*net, out.calibration);
    out.bits.assign(out.report.layers.size(), 8);
  } else if (precision == serve::edge_precision::autotuned) {
    quant::autotune_config tune;
    tune.target_skip_rate = target_sr;
    std::vector<std::size_t> calib_labels(out.w.labels.begin(),
                                          out.w.labels.begin() + calib);
    quant::autotune_result tuned = quant::autotune_bit_widths(
        make_net, out.calibration, calib_labels, tune);
    std::printf(
        "autotune: %zu/%zu layers below 8 bits after %zu trials "
        "(fp32 %.2f%% -> quant %.2f%% collaborative accuracy)\n",
        tuned.lowered, tuned.bits.size(), tuned.trials,
        tuned.fp32_accuracy * 100.0, tuned.quant_accuracy * 100.0);
    out.bits = tuned.bits;
    out.report = std::move(tuned.report);
    net = std::move(tuned.net);
  }
  if (precision != serve::edge_precision::fp32) {
    // δ recalibration: the fp32-tuned threshold vs the one retuned on the
    // quantized score distribution (the sweep below then tunes on the
    // full quantized tables, which is the δ the fixed run serves).
    const quant::recalibration recal =
        quant::quant_recalibrate(*net, out.calibration, target_sr);
    out.recal_delta = recal.delta;
    std::unique_ptr<core::two_head_network> fp32_net = make_net();
    const quant::scored_pass fp32_pass =
        quant::run_scored(*fp32_net, out.calibration);
    out.fp32_delta =
        core::delta_for_skipping_rate(fp32_pass.scores, target_sr);
  }

  constexpr std::size_t kChunk = 64;
  for (std::size_t begin = 0; begin < n; begin += kChunk) {
    const std::size_t end = std::min(begin + kChunk, n);
    tensor batch(shape{end - begin, c, hw, hw});
    for (std::size_t i = begin; i < end; ++i) {
      std::copy(out.images[i].values().begin(), out.images[i].values().end(),
                batch.data() + (i - begin) * c * hw * hw);
    }
    const core::two_head_output fwd = net->forward(batch, /*training=*/false);
    const std::vector<std::size_t> preds = ops::argmax_rows(fwd.logits);
    for (std::size_t i = begin; i < end; ++i) {
      out.w.little[i] = preds[i - begin];
      out.w.scores[i] = fwd.q[i - begin];
    }
  }
  return out;
}

constexpr const char* kModel = "bench";

/// Closed-loop drive over workload indices [begin, end): `clients`
/// threads, each submits one request and blocks on its completion before
/// taking the next index (shed responses resolve immediately, so load
/// shedding speeds the loop up instead of wedging it). A nonzero `pace`
/// inserts that gap between a client's completions and its next submit,
/// bounding the loop's rate — chaos runs use it so the run's wall-clock
/// length stays fixed even while the breaker answers everything locally
/// at fallback speed.
void drive_closed_loop(serve::server& srv, const workload& w,
                       const std::vector<tensor>* images, std::size_t clients,
                       std::size_t begin, std::size_t end,
                       std::chrono::microseconds pace) {
  std::atomic<std::size_t> next{begin};
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= end) return;
        serve::inference_request req;
        req.model = kModel;
        req.key = i;
        req.label = w.labels[i];
        if (images != nullptr) req.input = (*images)[i];
        srv.submit(std::move(req)).get();
        if (pace.count() > 0) std::this_thread::sleep_for(pace);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

struct run_result {
  serve::stats_snapshot stats;  // steady state: warmup is excluded
  double delta = 0.0;
  double warmup_seconds = 0.0;
  double measured_seconds = 0.0;
};

/// Drives the full workload through a fresh server; when `warmup > 0`,
/// the first `warmup` requests prime the deployment (and its δ
/// controller) and the stats are reset before the measured phase — so
/// every reported metric (latency quantiles, throughput, SR, accuracy)
/// is steady-state.
run_result run_mode(const workload& w, const std::vector<tensor>* images,
                    const serve::deployment_config& cfg,
                    serve::edge_backend_factory edge_factory,
                    std::function<std::unique_ptr<serve::cloud_backend>()>
                        cloud_factory,
                    std::size_t clients, std::size_t warmup,
                    std::chrono::microseconds pace) {
  serve::server srv;
  serve::deployment& dep = srv.register_deployment(
      kModel, cfg, std::move(edge_factory), std::move(cloud_factory));
  util::stopwatch phases;
  if (warmup > 0) {
    drive_closed_loop(srv, w, images, clients, 0, warmup, pace);
    srv.drain();
    dep.reset_stats();
  }
  run_result r;
  if (warmup > 0) r.warmup_seconds = phases.lap_seconds();
  drive_closed_loop(srv, w, images, clients, warmup, w.labels.size(), pace);
  srv.drain();
  r.measured_seconds = phases.lap_seconds();
  r.stats = dep.snapshot();
  r.delta = dep.controller().delta();
  return r;
}

void report(const char* name, const run_result& r, double target_sr,
            double offline_accuracy, const collab::cost_model& link) {
  std::printf("--- %s ---\n%s", name,
              serve::serve_stats::render(r.stats).c_str());
  if (r.warmup_seconds > 0.0) {
    std::printf("phases           : warmup %.2f s, measured %.2f s\n",
                r.warmup_seconds, r.measured_seconds);
  }
  std::printf("final delta      : %.4f\n", r.delta);
  std::printf("target SR        : %.2f%% (gap %.2f pp)\n", target_sr * 100.0,
              (r.stats.achieved_sr - target_sr) * 100.0);
  std::printf("offline accuracy : %.2f%% (gap %.2f pp)\n",
              offline_accuracy * 100.0,
              (r.stats.online_accuracy - offline_accuracy) * 100.0);
  std::printf("modeled latency  : %.3f ms/request at achieved SR\n\n",
              link.overall_latency_ms(r.stats.achieved_sr));
}

serve::admission_policy parse_admission(const std::string& name) {
  if (name == "block") return serve::admission_policy::block;
  if (name == "shed") return serve::admission_policy::shed;
  if (name == "edge_only") return serve::admission_policy::edge_only;
  throw util::error("unknown --admission policy: " + name);
}

void append_run_json(std::FILE* f, const char* mode, const run_result& r,
                     bool last) {
  std::fprintf(
      f,
      "    {\"mode\": \"%s\", \"throughput_rps\": %.3f, \"p50_ms\": %.4f,"
      " \"p95_ms\": %.4f, \"p99_ms\": %.4f, \"achieved_sr\": %.6f,"
      " \"online_accuracy\": %.6f, \"shed_rate\": %.6f, \"shed\": %zu,"
      " \"expired\": %zu, \"cloud_expired\": %zu, \"overflow\": %zu,"
      " \"delta\": %.6f, \"measured_seconds\": %.4f,"
      " \"cloud_accuracy\": %.6f, \"cloud_labeled\": %zu,"
      " \"mean_cloud_ms\": %.4f,"
      " \"appeal_batches\": %zu, \"appeals_on_wire\": %zu,"
      " \"mean_appeals_per_batch\": %.4f, \"wire_bytes_tx\": %zu,"
      " \"wire_bytes_rx\": %zu, \"link_fallbacks\": %zu,"
      " \"submitted\": %zu, \"completed\": %zu, \"edge_kept\": %zu,"
      " \"edge_degraded\": %zu, \"appealed\": %zu,"
      " \"appeal_retries\": %zu, \"appeal_overloaded\": %zu,"
      " \"breaker_opens\": %zu, \"breaker_state\": %u,"
      " \"split_appeals\": %zu, \"split_bytes_saved\": %zu,"
      " \"split_rejected\": %zu, \"split_cut\": %u}%s\n",
      mode, r.stats.throughput_rps, r.stats.p50_ms, r.stats.p95_ms,
      r.stats.p99_ms, r.stats.achieved_sr, r.stats.online_accuracy,
      r.stats.shed_rate, r.stats.shed, r.stats.expired, r.stats.cloud_expired,
      r.stats.overflow, r.delta, r.measured_seconds, r.stats.cloud_accuracy,
      r.stats.cloud_labeled, r.stats.mean_cloud_ms, r.stats.appeal_batches,
      r.stats.appeals_on_wire, r.stats.mean_appeals_per_batch,
      r.stats.wire_bytes_tx, r.stats.wire_bytes_rx, r.stats.link_fallbacks,
      r.stats.submitted, r.stats.completed, r.stats.edge_kept,
      r.stats.edge_degraded, r.stats.appealed, r.stats.appeal_retries,
      r.stats.appeal_overloaded, r.stats.breaker_opens,
      static_cast<unsigned>(r.stats.breaker_state), r.stats.split_appeals,
      r.stats.split_bytes_saved, r.stats.split_rejected, r.stats.split_cut,
      last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(util::log_level::info);

  const auto requests =
      static_cast<std::size_t>(args.get_int_or("requests", 20000));
  const double target_sr = args.get_double_or("target_sr", 0.9);
  const std::uint64_t seed = bench::bench_seed(args);
  const auto clients = static_cast<std::size_t>(args.get_int_or("clients", 64));
  const std::chrono::microseconds pace(args.get_int_or("pace_us", 0));
  const auto shards = static_cast<std::size_t>(args.get_int_or("shards", 2));
  const std::string json_path = args.get_string_or("json", "");
  const std::string backend = args.get_string_or("backend", "replay");
  const bool network_backend = backend == "network";
  APPEAL_CHECK(network_backend || backend == "replay",
               "unknown --backend: " + backend);
  const std::string cloud = args.get_string_or("cloud", "replay");
  const bool network_cloud = cloud == "network";
  APPEAL_CHECK(network_cloud || cloud == "replay",
               "unknown --cloud: " + cloud);
  APPEAL_CHECK(!network_cloud || network_backend,
               "--cloud=network needs --backend=network (appeals must "
               "carry images)");
  const serve::split_mode split_sel =
      serve::parse_split_mode(args.get_string_or("split_mode", "off"));
  const auto split_cut =
      static_cast<std::uint32_t>(args.get_int_or("split_cut", 0));
  APPEAL_CHECK(split_sel == serve::split_mode::off || network_cloud,
               "--split_mode=fixed|auto needs --cloud=network (a replay "
               "cloud has no layers to split)");
  const serve::edge_precision precision =
      serve::parse_edge_precision(args.get_string_or("edge_precision", "fp32"));
  APPEAL_CHECK(precision == serve::edge_precision::fp32 || network_backend,
               "--edge_precision=int8|auto needs --backend=network (replay "
               "serves no model to quantize)");

  serve::deployment_config cfg;
  cfg.shards = shards;
  cfg.shard.batching.max_batch_size =
      static_cast<std::size_t>(args.get_int_or("batch", 16));
  cfg.shard.batching.max_wait =
      std::chrono::microseconds(args.get_int_or("max_wait_us", 200));
  cfg.shard.num_workers =
      static_cast<std::size_t>(args.get_int_or("workers", 2));
  cfg.shard.queue_capacity = static_cast<std::size_t>(
      args.get_int_or("queue_capacity", 1024));
  // Bounded hand-off queues between the pipeline stages (see
  // serve::pipeline_config); validated by the deployment constructor.
  cfg.shard.pipeline.batch_queue_depth = static_cast<std::size_t>(
      args.get_int_or("batch_queue_depth", 4));
  cfg.shard.pipeline.decide_queue_depth = static_cast<std::size_t>(
      args.get_int_or("decide_queue_depth", 8));
  cfg.shard.pipeline.appeal_queue_depth = static_cast<std::size_t>(
      args.get_int_or("appeal_queue_depth", 256));
  cfg.shard.channel.time_scale = args.get_double_or("time_scale", 0.2);
  cfg.shard.channel.transport =
      serve::parse_transport_kind(args.get_string_or("transport", "sim"));
  cfg.shard.channel.endpoint = args.get_string_or("endpoint", "");
  cfg.shard.channel.coalesce_window_ms = args.get_double_or("coalesce_ms", 0.0);
  cfg.shard.channel.max_batch_appeals =
      static_cast<std::size_t>(args.get_int_or("max_batch_appeals", 64));
  cfg.shard.channel.max_retries =
      static_cast<std::size_t>(args.get_int_or("max_retries", 2));
  cfg.shard.channel.retry_backoff_ms =
      args.get_double_or("retry_backoff_ms", 25.0);
  cfg.shard.channel.breaker_threshold =
      static_cast<std::size_t>(args.get_int_or("breaker_threshold", 4));
  cfg.shard.channel.breaker_open_ms =
      args.get_double_or("breaker_open_ms", 1000.0);
  cfg.shard.channel.response_timeout_ms =
      args.get_double_or("response_timeout_ms", 30000.0);
  cfg.shard.channel.fault = args.get_string_or("fault", "");
  // Network mode pays real edge compute, so the simulated edge sleep
  // defaults off there (replay keeps it: compute is otherwise free).
  cfg.shard.simulate_edge_compute =
      args.get_bool_or("edge_sim", !network_backend);
  cfg.shard.admission.policy =
      parse_admission(args.get_string_or("admission", "block"));
  cfg.shard.trace_sample_rate = args.get_double_or("trace_sample", 0.0);
  cfg.shard.gemm_threads =
      static_cast<std::size_t>(args.get_int_or("gemm_threads", 0));
  const std::string trace_path = args.get_string_or("trace", "");
  const std::string metrics_endpoint = args.get_string_or("metrics", "");
  const std::string metrics_dump = args.get_string_or("metrics_dump", "");

  // Sampled spans also feed the appeal_stage_ms summaries, so a /metrics
  // scrape carries the per-stage waterfall alongside the counters.
  if (cfg.shard.trace_sample_rate > 0.0) {
    obs::default_collector().attach_registry(&obs::default_registry());
  }
  std::unique_ptr<obs::metrics_http_server> metrics_server;
  if (!metrics_endpoint.empty()) {
    metrics_server = std::make_unique<obs::metrics_http_server>(
        obs::default_registry(), metrics_endpoint);
    std::printf("metrics: serving /metrics on %s (port %u)\n",
                metrics_endpoint.c_str(),
                static_cast<unsigned>(metrics_server->port()));
  }

  // Workload + edge backend factory for the chosen mode. Both modes share
  // the replay-table scheduler comparison; network mode also carries the
  // synthetic images the real network consumes.
  network_workload nw;
  workload w;
  serve::edge_backend_factory edge_factory;
  if (network_backend) {
    nw = make_network_workload(requests, seed, precision, target_sr);
    w = nw.w;
    if (precision == serve::edge_precision::fp32) {
      edge_factory = [](std::size_t, std::size_t) {
        auto net = std::make_unique<core::two_head_network>(edge_net_config());
        net->prepare_for_inference();  // conv+BN folding at deployment load
        return std::make_unique<serve::network_edge_backend>(
            std::move(net), core::score_method::appealnet_q);
      };
    } else {
      std::printf(
          "edge precision %s: %zu layers quantized (%zu skipped), min %d "
          "bits; delta recalibration %.4f (fp32-tuned %.4f)\n",
          serve::edge_precision_name(precision), nw.report.quantized,
          nw.report.skipped, nw.report.min_bits(), nw.recal_delta,
          nw.fp32_delta);
      // Each worker rebuilds + requantizes from the shared calibration
      // sample and bit vector — deterministic init makes every instance
      // (and the offline tables above) bit-identical.
      edge_factory = [calibration = nw.calibration,
                      bits = nw.bits](std::size_t, std::size_t) {
        auto net = std::make_unique<core::two_head_network>(edge_net_config());
        quant::quantize_two_head(*net, calibration, bits);
        return std::make_unique<serve::network_edge_backend>(
            std::move(net), core::score_method::appealnet_q);
      };
    }
  } else {
    w = make_workload(requests, seed);
    edge_factory = [&w](std::size_t, std::size_t) {
      return std::make_unique<serve::replay_edge_backend>(w.little, w.scores);
    };
  }
  const std::vector<tensor>* images =
      network_backend ? &nw.images : nullptr;
  cfg.precision = precision;
  cfg.edge_weight_bits =
      precision == serve::edge_precision::fp32 ? 32 : nw.report.min_bits();

  // Cloud backend: the synthetic replay table, or the real big network.
  // In network-cloud mode the offline big-prediction table is recomputed
  // by the same model (batched forwards; bit-identical to the per-appeal
  // forwards the sim transport runs and to the stub's batched scoring),
  // so the offline system_eval prediction still matches the served path.
  std::function<std::unique_ptr<serve::cloud_backend>()> cloud_factory;
  if (network_cloud) {
    serve::cloud_model_config big_cfg;
    big_cfg.weights_path = args.get_string_or("weights", "");
    const core::two_head_config edge_cfg = edge_net_config();
    big_cfg.spec.image_size = edge_cfg.spec.image_size;
    big_cfg.spec.num_classes = edge_cfg.spec.num_classes;
    if (split_sel != serve::split_mode::off) {
      // Both link ends derive their cut tables from the same canonical
      // spec; the channel validates the fixed cut id against this table.
      cfg.shard.channel.split.mode = split_sel;
      cfg.shard.channel.split.cut = split_cut;
      cfg.shard.channel.split.cuts = serve::enumerate_cloud_cuts(big_cfg);
      std::printf("split cuts (%s):\n", serve::split_mode_name(split_sel));
      for (const serve::split_cut_spec& c : cfg.shard.channel.split.cuts) {
        std::printf(
            "  cut %u %-10s %6zu wire bytes, suffix %8.3f MFLOPs\n", c.id,
            c.name.c_str(), c.wire_bytes,
            static_cast<double>(c.suffix_flops) / 1e6);
      }
    }
    {
      serve::network_cloud_backend table_builder(
          serve::make_cloud_model(big_cfg));
      constexpr std::size_t kChunk = 64;
      for (std::size_t begin = 0; begin < requests; begin += kChunk) {
        const std::size_t end = std::min(begin + kChunk, requests);
        std::vector<const tensor*> chunk;
        chunk.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          chunk.push_back(&nw.images[i]);
        }
        const std::vector<std::size_t> preds = table_builder.infer_batch(chunk);
        for (std::size_t i = begin; i < end; ++i) {
          w.big[i] = preds[i - begin];
        }
      }
    }
    // One model per backend instance: the channel's coalescing thread
    // and the transport's failure path may both score through it, and
    // network forwards must never be shared across threads. Determinism
    // (same seed + weights) keeps every instance identical.
    cloud_factory = [big_cfg] {
      return std::make_unique<serve::network_cloud_backend>(
          serve::make_cloud_model(big_cfg));
    };
  } else {
    cloud_factory = [&w] {
      return std::make_unique<serve::replay_cloud_backend>(w.big);
    };
  }

  // Offline prediction (system_eval) for the same workload and target SR.
  collab::routed_split split;
  split.labels = w.labels;
  split.little_predictions = w.little;
  split.big_predictions = w.big;
  split.scores = w.scores;
  const auto curve =
      collab::accuracy_vs_sr_curve(split, nullptr, {target_sr});
  const collab::sweep_point offline = curve.front();
  std::printf(
      "=== bench_serving: %zu requests, %zu clients, %zu shards, seed %llu, "
      "backend %s (%s), cloud %s, transport %s%s%s ===\n",
      requests, clients, shards, static_cast<unsigned long long>(seed),
      backend.c_str(), serve::edge_precision_name(precision), cloud.c_str(),
      serve::transport_kind_name(cfg.shard.channel.transport),
      cfg.shard.channel.endpoint.empty() ? "" : " @ ",
      cfg.shard.channel.endpoint.c_str());
  std::printf(
      "offline system_eval: delta %.4f -> SR %.2f%%, accuracy %.2f%%\n\n",
      offline.delta, offline.achieved_sr * 100.0, offline.accuracy * 100.0);

  // Run 1: offline-calibrated fixed δ. Its own {deployment=...} label so
  // cumulative registry counters stay per-run (and, with no warmup, equal
  // to the run's snapshot).
  serve::deployment_config fixed_cfg = cfg;
  fixed_cfg.shard.stats.deployment = "bench-fixed";
  fixed_cfg.shard.threshold.adapt = serve::threshold_config::mode::fixed;
  fixed_cfg.shard.threshold.initial_delta = offline.delta;
  const run_result fixed = run_mode(w, images, fixed_cfg, edge_factory,
                                    cloud_factory, clients, /*warmup=*/0,
                                    pace);
  report("fixed delta (offline calibration)", fixed, target_sr,
         offline.accuracy, cfg.shard.link);

  // Run 2: adaptive δ from a cold start. The controller needs a few
  // recalibration windows to find δ, so a warmup slice of the workload
  // primes it and every reported metric covers the steady state only.
  serve::deployment_config adaptive_cfg = cfg;
  adaptive_cfg.shard.stats.deployment = "bench-adaptive";
  adaptive_cfg.shard.threshold.adapt =
      serve::threshold_config::mode::track_sr;
  adaptive_cfg.shard.threshold.target_sr = target_sr;
  adaptive_cfg.shard.threshold.initial_delta = 0.99;
  const std::size_t warmup = std::min<std::size_t>(2048, requests / 5);
  const run_result adaptive = run_mode(w, images, adaptive_cfg, edge_factory,
                                       cloud_factory, clients, warmup, pace);
  report("adaptive delta (track_sr, cold start)", adaptive, target_sr,
         offline.accuracy, cfg.shard.link);

  const std::string path = bench::results_path("serving.csv");
  {
    util::csv_writer csv(path);
    csv.write_row({"mode", "requests", "shards", "throughput_rps", "p50_ms",
                   "p95_ms", "p99_ms", "target_sr", "achieved_sr",
                   "shed_rate", "online_accuracy", "offline_accuracy",
                   "delta"});
    const auto add = [&](const char* mode, const run_result& r) {
      csv.write_row({std::string(mode), std::to_string(requests),
                     std::to_string(shards),
                     std::to_string(r.stats.throughput_rps),
                     std::to_string(r.stats.p50_ms),
                     std::to_string(r.stats.p95_ms),
                     std::to_string(r.stats.p99_ms),
                     std::to_string(target_sr),
                     std::to_string(r.stats.achieved_sr),
                     std::to_string(r.stats.shed_rate),
                     std::to_string(r.stats.online_accuracy),
                     std::to_string(offline.accuracy),
                     std::to_string(r.delta)});
    };
    add("fixed", fixed);
    add("adaptive", adaptive);
  }
  std::printf("wrote %s\n", path.c_str());

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"serving\",\n"
                 "  \"backend\": \"%s\",\n"
                 "  \"edge_precision\": \"%s\",\n"
                 "  \"edge_bits\": %d,\n"
                 "  \"recal_delta\": %.6f,\n"
                 "  \"fp32_delta\": %.6f,\n"
                 "  \"cloud\": \"%s\",\n"
                 "  \"transport\": \"%s\",\n"
                 "  \"split_mode\": \"%s\",\n"
                 "  \"split_cut\": %u,\n"
                 "  \"coalesce_ms\": %.3f,\n"
                 "  \"requests\": %zu,\n"
                 "  \"clients\": %zu,\n"
                 "  \"shards\": %zu,\n"
                 "  \"seed\": %llu,\n"
                 "  \"target_sr\": %.6f,\n"
                 "  \"offline\": {\"delta\": %.6f, \"achieved_sr\": %.6f,"
                 " \"accuracy\": %.6f},\n"
                 "  \"runs\": [\n",
                 backend.c_str(), serve::edge_precision_name(precision),
                 cfg.edge_weight_bits, nw.recal_delta, nw.fp32_delta,
                 cloud.c_str(),
                 serve::transport_kind_name(cfg.shard.channel.transport),
                 serve::split_mode_name(split_sel), split_cut,
                 cfg.shard.channel.coalesce_window_ms, requests, clients,
                 shards, static_cast<unsigned long long>(seed), target_sr,
                 offline.delta, offline.achieved_sr, offline.accuracy);
    append_run_json(f, "fixed", fixed, /*last=*/false);
    append_run_json(f, "adaptive", adaptive, /*last=*/true);
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!trace_path.empty()) {
    const std::string jsonl = obs::default_collector().render_jsonl();
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::fwrite(jsonl.data(), 1, jsonl.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%llu spans sampled)\n", trace_path.c_str(),
                static_cast<unsigned long long>(
                    obs::default_collector().recorded()));
  }
  if (!metrics_dump.empty()) {
    const std::string text = obs::default_registry().render_prometheus();
    std::FILE* f = std::fopen(metrics_dump.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_dump.c_str());
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", metrics_dump.c_str());
  }

  // Acceptance: SR within 2 pp of target (steady state for the adaptive
  // run), online == offline accuracy for the fixed (same-δ) run.
  const bool sr_ok =
      std::abs(fixed.stats.achieved_sr - target_sr) <= 0.02 &&
      std::abs(adaptive.stats.achieved_sr - target_sr) <= 0.02;
  const bool acc_ok =
      std::abs(fixed.stats.online_accuracy - offline.accuracy) <= 0.005;
  std::printf("acceptance: SR within 2pp %s, online==offline accuracy %s\n",
              sr_ok ? "PASS" : "FAIL", acc_ok ? "PASS" : "FAIL");
  return sr_ok && acc_ok ? 0 : 1;
}
