// Fig. 4 reproduction: score histograms for inputs the edge model handles
// correctly vs incorrectly.
//
// Paper setup: EfficientNet little network on CIFAR-10; (a) MSP scores of
// the standalone model, (b) q(z|x) scores of the AppealNet two-head model.
// The claim: the q histograms of correct and incorrect inputs barely
// overlap, while the MSP histograms overlap heavily.
//
// Family note: on the synthetic cifar10_like task our EfficientNet-style
// little model OUTPERFORMS the scaled big model, which voids the
// experiment's premise — the white-box q then correctly saturates at
// "never offload" and carries no separation signal. The default family is
// therefore mobilenet (where big > little holds, as in the paper);
// --family=efficientnet reproduces the anomaly.
//
// We print both histograms as terminal bar charts and quantify the claim
// with the overlap coefficient and AUROC (DESIGN.md §4: AppealNet overlap
// < MSP overlap, AppealNet AUROC > MSP AUROC).
//
// Usage: bench_fig4_histogram [--family=efficientnet] [--nocache]
#include <cstdio>

#include "bench_common.hpp"
#include "metrics/metrics.hpp"
#include "metrics/selective.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace appeal;
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(util::log_level::info);

  const util::artifact_cache cache = util::default_cache();
  const util::artifact_cache* cache_ptr =
      args.get_bool_or("nocache", false) ? nullptr : &cache;

  const collab::experiment_config cfg = collab::default_experiment(
      data::preset::cifar10_like,
      models::parse_family(args.get_string_or("family", "mobilenet")),
      /*black_box=*/false);
  const collab::experiment_outputs outputs =
      collab::run_experiment(cfg, cache_ptr);

  // (a) MSP on the standalone little model.
  const tensor base_probs = ops::softmax_rows(outputs.test.little_base_logits);
  const auto base_preds = ops::argmax_rows(outputs.test.little_base_logits);
  const auto msp = core::msp_scores(base_probs);

  // (b) q on the two-head model.
  const auto joint_preds = ops::argmax_rows(outputs.test.little_joint_logits);
  const auto q = core::q_to_scores(outputs.test.q);

  constexpr std::size_t bins = 20;
  util::histogram msp_correct(0.0, 1.0, bins);
  util::histogram msp_incorrect(0.0, 1.0, bins);
  util::histogram q_correct(0.0, 1.0, bins);
  util::histogram q_incorrect(0.0, 1.0, bins);
  std::vector<double> msp_pos, msp_neg, q_pos, q_neg;

  for (std::size_t i = 0; i < outputs.test.labels.size(); ++i) {
    const bool base_right = base_preds[i] == outputs.test.labels[i];
    const bool joint_right = joint_preds[i] == outputs.test.labels[i];
    (base_right ? msp_correct : msp_incorrect).add(msp[i]);
    (base_right ? msp_pos : msp_neg).push_back(msp[i]);
    (joint_right ? q_correct : q_incorrect).add(q[i]);
    (joint_right ? q_pos : q_neg).push_back(q[i]);
  }

  std::printf("=== Fig. 4: score separation (little=%s, cifar10_like) ===\n",
              models::family_name(cfg.edge_family).c_str());
  std::printf("\n(a) MSP score — correct inputs\n%s",
              msp_correct.render(40).c_str());
  std::printf("\n(a) MSP score — incorrect inputs\n%s",
              msp_incorrect.render(40).c_str());
  std::printf("\n(b) q(z|x) score — correct inputs\n%s",
              q_correct.render(40).c_str());
  std::printf("\n(b) q(z|x) score — incorrect inputs\n%s",
              q_incorrect.render(40).c_str());

  const double msp_overlap =
      util::histogram::overlap_coefficient(msp_correct, msp_incorrect);
  const double q_overlap =
      util::histogram::overlap_coefficient(q_correct, q_incorrect);
  const double msp_auroc = metrics::auroc(msp_pos, msp_neg);
  const double q_auroc = metrics::auroc(q_pos, q_neg);

  // Extra diagnosis beyond the paper: give MSP the benefit of temperature
  // scaling (Guo et al., the calibration fix the paper cites) and compare
  // threshold-free routing quality via AURC. Temperature is fitted on the
  // validation split, applied on test.
  const double temperature = metrics::fit_temperature(
      outputs.val.little_base_logits, outputs.val.labels);
  const tensor calibrated_probs = metrics::apply_temperature(
      outputs.test.little_base_logits, temperature);
  const auto msp_cal = core::msp_scores(calibrated_probs);

  std::vector<bool> base_correct(outputs.test.labels.size());
  std::vector<bool> joint_correct(outputs.test.labels.size());
  for (std::size_t i = 0; i < outputs.test.labels.size(); ++i) {
    base_correct[i] = base_preds[i] == outputs.test.labels[i];
    joint_correct[i] = joint_preds[i] == outputs.test.labels[i];
  }
  const double msp_aurc = metrics::aurc(msp, base_correct);
  const double msp_cal_aurc = metrics::aurc(msp_cal, base_correct);
  const double q_aurc = metrics::aurc(q, joint_correct);

  std::printf("\nseparation summary (lower overlap / higher AUROC / lower "
              "AURC = better)\n");
  std::printf("  MSP              : overlap %.3f   AUROC %.4f   AURC %.4f\n",
              msp_overlap, msp_auroc, msp_aurc);
  std::printf("  MSP + temp %.2f  : %31s AURC %.4f\n", temperature, "",
              msp_cal_aurc);
  std::printf("  AppealNet q      : overlap %.3f   AUROC %.4f   AURC %.4f\n",
              q_overlap, q_auroc, q_aurc);
  std::printf("  ECE (MSP vs correctness): %.4f\n",
              metrics::expected_calibration_error(msp, base_correct));
  std::printf("  paper shape %s: q separates better than MSP\n",
              (q_overlap < msp_overlap && q_auroc > msp_auroc) ? "REPRODUCED"
                                                               : "NOT met");

  util::csv_writer csv(bench::results_path("fig4_histograms.csv"));
  csv.write_row(std::vector<std::string>{"score", "population", "bin_center",
                                         "density"});
  const auto dump = [&](const char* score, const char* pop,
                        const util::histogram& h) {
    const auto densities = h.densities();
    for (std::size_t b = 0; b < densities.size(); ++b) {
      csv.write_row(std::vector<std::string>{
          score, pop, std::to_string(h.bin_center(b)),
          std::to_string(densities[b])});
    }
  };
  dump("msp", "correct", msp_correct);
  dump("msp", "incorrect", msp_incorrect);
  dump("q", "correct", q_correct);
  dump("q", "incorrect", q_incorrect);
  std::printf("\ndensities written to %s\n",
              bench::results_path("fig4_histograms.csv").c_str());
  return 0;
}
