// Micro-benchmarks for whole-model inference and training steps across the
// model zoo — the per-sample latencies behind the experiment benches and
// the hardware profiler's latency estimates.
#include <benchmark/benchmark.h>

#include "core/joint_loss.hpp"
#include "core/two_head_network.hpp"
#include "models/model_zoo.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;

models::model_spec spec_for(models::model_family family) {
  models::model_spec spec;
  spec.family = family;
  spec.image_size = 16;
  spec.num_classes = 10;
  spec.depth = family == models::model_family::resnet ? 2 : 1;
  spec.width = family == models::model_family::resnet ? 0.75F : 1.0F;
  return spec;
}

void bm_model_inference(benchmark::State& state,
                        models::model_family family) {
  util::rng gen(1);
  auto net = models::make_classifier(spec_for(family), gen);
  const tensor x = tensor::randn(shape{1, 3, 16, 16}, gen);
  net->forward(x, true);  // initialize batchnorm stats
  for (auto _ : state) {
    tensor logits = net->forward(x, false);
    benchmark::DoNotOptimize(logits.data());
  }
}
BENCHMARK_CAPTURE(bm_model_inference, mobilenet,
                  models::model_family::mobilenet);
BENCHMARK_CAPTURE(bm_model_inference, shufflenet,
                  models::model_family::shufflenet);
BENCHMARK_CAPTURE(bm_model_inference, efficientnet,
                  models::model_family::efficientnet);
BENCHMARK_CAPTURE(bm_model_inference, resnet_big,
                  models::model_family::resnet);

void bm_training_step(benchmark::State& state, models::model_family family) {
  util::rng gen(2);
  auto net = models::make_classifier(spec_for(family), gen);
  nn::adam opt(1e-3);
  opt.attach(net->parameters());
  const tensor x = tensor::randn(shape{32, 3, 16, 16}, gen);
  std::vector<std::size_t> labels(32);
  for (std::size_t i = 0; i < 32; ++i) labels[i] = i % 10;

  for (auto _ : state) {
    const tensor logits = net->forward(x, true);
    const auto loss = nn::softmax_cross_entropy(logits, labels);
    opt.zero_grad();
    net->backward(loss.grad);
    opt.step();
    benchmark::DoNotOptimize(loss.mean_loss);
  }
  state.counters["samples/s"] = benchmark::Counter(
      32.0, benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK_CAPTURE(bm_training_step, mobilenet,
                  models::model_family::mobilenet);
BENCHMARK_CAPTURE(bm_training_step, resnet_big,
                  models::model_family::resnet);

void bm_two_head_joint_step(benchmark::State& state) {
  core::two_head_config cfg;
  cfg.spec = spec_for(models::model_family::mobilenet);
  core::two_head_network net(cfg);
  nn::adam opt(1e-3);
  opt.attach(net.all_parameters());
  util::rng gen(3);
  const tensor x = tensor::randn(shape{32, 3, 16, 16}, gen);
  std::vector<std::size_t> labels(32);
  std::vector<float> big_losses(32);
  for (std::size_t i = 0; i < 32; ++i) {
    labels[i] = i % 10;
    big_losses[i] = gen.uniform(0.0F, 1.0F);
  }
  core::joint_loss_config loss_cfg;

  for (auto _ : state) {
    core::two_head_output out = net.forward(x, true);
    const auto loss = core::compute_joint_loss(out.logits, out.q_logits,
                                               labels, big_losses, loss_cfg);
    opt.zero_grad();
    net.backward(loss.grad_logits, loss.grad_q_logits);
    opt.step();
    benchmark::DoNotOptimize(loss.total_loss);
  }
  state.counters["samples/s"] = benchmark::Counter(
      32.0, benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(bm_two_head_joint_step);

void bm_predictor_head_overhead(benchmark::State& state) {
  // The runtime cost of the paper's "minimal overhead" claim: two-head
  // forward vs approximator-only forward.
  core::two_head_config cfg;
  cfg.spec = spec_for(models::model_family::mobilenet);
  core::two_head_network net(cfg);
  util::rng gen(4);
  const tensor x = tensor::randn(shape{1, 3, 16, 16}, gen);
  net.forward(x, true);
  const bool full = state.range(0) == 1;
  for (auto _ : state) {
    if (full) {
      core::two_head_output out = net.forward(x, false);
      benchmark::DoNotOptimize(out.logits.data());
    } else {
      tensor logits = net.forward_approximator(x, false);
      benchmark::DoNotOptimize(logits.data());
    }
  }
}
BENCHMARK(bm_predictor_head_overhead)
    ->Arg(0)   // approximator only
    ->Arg(1);  // both heads

}  // namespace
