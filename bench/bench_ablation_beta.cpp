// Ablation: the cost-pressure weight β (Eq. 9's Lagrange multiplier).
//
// β is the knob the relaxation (Section IV-A) derives from the cost budget:
// larger β pushes E[q] up, keeping more inputs on the edge at some accuracy
// cost. This ablation trains black-box AppealNet heads at several β values
// (the black-box objective isolates the predictor; no big network is
// involved) and reports mean q, the skipping rate at δ = 0.5, the accuracy
// of the kept subset, and the q-vs-correctness AUROC.
//
// Expected shape: mean q and SR(δ=0.5) increase monotonically-ish with β;
// ranking quality (AUROC) stays roughly flat — β trades operating point,
// not separation ability.
//
// Usage: bench_ablation_beta [--nocache]
#include <cstdio>

#include "bench_common.hpp"
#include "metrics/metrics.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace appeal;
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(util::log_level::info);

  const util::artifact_cache cache = util::default_cache();
  const util::artifact_cache* cache_ptr =
      args.get_bool_or("nocache", false) ? nullptr : &cache;

  const double betas[] = {0.01, 0.05, 0.15, 0.40};

  util::ascii_table table({"beta", "mean q", "SR(delta=0.5)",
                           "edge-subset acc%", "q AUROC", "little acc%"});
  util::csv_writer csv(bench::results_path("ablation_beta.csv"));
  csv.write_row(std::vector<std::string>{"beta", "mean_q", "sr_at_half",
                                         "edge_subset_accuracy", "q_auroc",
                                         "little_accuracy"});

  std::printf("=== Ablation: cost-pressure weight beta (black-box, "
              "cifar10_like / mobilenet) ===\n");

  for (const double beta : betas) {
    collab::experiment_config cfg = collab::default_experiment(
        data::preset::cifar10_like, models::model_family::mobilenet,
        /*black_box=*/true);
    cfg.beta = beta;
    const collab::experiment_outputs outputs =
        collab::run_experiment(cfg, cache_ptr);

    const auto preds = ops::argmax_rows(outputs.test.little_joint_logits);
    double q_total = 0.0;
    std::size_t kept = 0;
    std::size_t kept_correct = 0;
    std::vector<double> q_pos, q_neg;
    for (std::size_t i = 0; i < outputs.test.labels.size(); ++i) {
      const double q = outputs.test.q[i];
      q_total += q;
      const bool correct = preds[i] == outputs.test.labels[i];
      (correct ? q_pos : q_neg).push_back(q);
      if (q >= 0.5) {
        ++kept;
        if (correct) ++kept_correct;
      }
    }
    const auto n = static_cast<double>(outputs.test.labels.size());
    const double mean_q = q_total / n;
    const double sr = static_cast<double>(kept) / n;
    const double edge_acc =
        kept > 0 ? static_cast<double>(kept_correct) / static_cast<double>(kept)
                 : 0.0;
    const double auroc =
        (!q_pos.empty() && !q_neg.empty()) ? metrics::auroc(q_pos, q_neg) : 0.5;

    table.add_row({util::format_fixed(beta, 2), util::format_fixed(mean_q, 3),
                   util::format_percent(sr),
                   util::format_fixed(edge_acc * 100.0, 2),
                   util::format_fixed(auroc, 4),
                   util::format_fixed(outputs.little_joint_accuracy * 100.0,
                                      2)});
    csv.write_row(std::vector<double>{beta, mean_q, sr, edge_acc, auroc,
                                      outputs.little_joint_accuracy});
  }

  std::printf("%s", table.render().c_str());
  std::printf("rows written to %s\n",
              bench::results_path("ablation_beta.csv").c_str());
  return 0;
}
