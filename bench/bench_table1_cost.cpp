// Table I reproduction: overall computational cost of the edge/cloud
// architecture under different accuracy requirements.
//
// Paper setup: MobileNet little / ResNet-101 big on all four datasets.
// For each AccI target in {50, 75, 90, 95}% the threshold δ is tuned (on
// the validation split) to the cheapest operating point that still meets
// the target, for both the score-margin baseline (the strongest of the
// three confidence baselines) and AppealNet. Reported: the Eq. 15 overall
// cost in MFLOPs and the relative saving of AppealNet over SM.
//
// Shape expectation (DESIGN.md §4): AppealNet cost below SM cost at every
// reachable target, with double-digit relative savings at most points.
//
// Usage: bench_table1_cost [--dataset=cifar10] [--nocache]
#include <cstdio>

#include "bench_common.hpp"
#include "collab/cost_model.hpp"
#include "metrics/metrics.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace appeal;

/// Finds the cheapest validation operating point meeting the AccI target
/// and evaluates it on the test split.
core::operating_point tuned_test_point(const bench::method_splits& splits,
                                       const core::accuracy_context& val_ctx,
                                       const core::accuracy_context& test_ctx,
                                       double target) {
  const auto val_sweep = core::sweep_thresholds(
      splits.val.little_predictions, splits.val.big_predictions,
      splits.val.labels, splits.val.scores, val_ctx);
  const core::operating_point chosen =
      core::cheapest_point_for_acci(val_sweep, target);
  return core::evaluate_at_delta(
      splits.test.little_predictions, splits.test.big_predictions,
      splits.test.labels, splits.test.scores, chosen.delta, test_ctx);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace appeal;
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(util::log_level::info);

  std::vector<data::preset> presets = data::all_presets();
  if (args.has("dataset")) {
    presets = {data::parse_preset(args.get_string("dataset"))};
  }
  const util::artifact_cache cache = util::default_cache();
  const util::artifact_cache* cache_ptr =
      args.get_bool_or("nocache", false) ? nullptr : &cache;

  const auto targets = collab::paper_acci_targets();

  std::vector<std::string> headers{"dataset", "Acc% R/M/A", "MFLOPs R/M/A"};
  for (const double t : targets) {
    headers.push_back("cost@" + util::format_fixed(t * 100.0, 0) +
                      "% (SM/AN)");
    headers.push_back("saving");
  }
  util::ascii_table table(headers);

  util::csv_writer csv(bench::results_path("table1_cost.csv"));
  csv.write_row(std::vector<std::string>{"dataset", "acci_target", "method",
                                         "skipping_rate", "accuracy",
                                         "cost_mflops"});

  std::printf("=== Table I: overall computational cost under accuracy "
              "requirements (MobileNet/ResNet) ===\n");

  for (const data::preset preset : presets) {
    const collab::experiment_config cfg = collab::default_experiment(
        preset, models::model_family::mobilenet, /*black_box=*/false);
    const collab::experiment_outputs outputs =
        collab::run_experiment(cfg, cache_ptr);

    // Per-input raw-image upload size (fp32 pixels), for the comm charge.
    const data::synthetic_config data_cfg =
        data::preset_config(preset, cfg.seed);
    const double input_kb =
        static_cast<double>(data_cfg.channels * data_cfg.image_size *
                            data_cfg.image_size * sizeof(float)) /
        1024.0;
    const collab::cost_model costs = collab::make_cost_model(
        outputs.little_mflops, outputs.big_mflops, input_kb);

    const bench::method_splits sm =
        bench::make_method_splits(outputs, core::score_method::score_margin);
    const bench::method_splits an =
        bench::make_method_splits(outputs, core::score_method::appealnet_q);

    // AccI (Eq. 14) is defined against "the stand-alone small DNN deployed
    // on the edges" — the ORIGINAL little model — for every method, so all
    // methods chase the same absolute accuracy bar and only their cost
    // differs.
    const auto ctx_for = [&](const collab::split_outputs& split,
                             core::score_method /*method*/) {
      core::accuracy_context ctx;
      const auto little = ops::argmax_rows(split.little_base_logits);
      const auto big = ops::argmax_rows(split.big_logits);
      ctx.little_accuracy = metrics::accuracy(little, split.labels);
      ctx.big_accuracy = metrics::accuracy(big, split.labels);
      return ctx;
    };

    std::vector<std::string> row{
        data::preset_name(preset),
        util::format_fixed(outputs.big_accuracy * 100.0, 2) + "/" +
            util::format_fixed(outputs.little_base_accuracy * 100.0, 2) + "/" +
            util::format_fixed(outputs.little_joint_accuracy * 100.0, 2),
        util::format_fixed(outputs.big_mflops, 1) + "/" +
            util::format_fixed(outputs.little_mflops, 2) + "/" +
            util::format_fixed(outputs.little_mflops, 2)};

    for (const double target : targets) {
      const auto sm_point = tuned_test_point(
          sm, ctx_for(outputs.val, core::score_method::score_margin),
          ctx_for(outputs.test, core::score_method::score_margin), target);
      const auto an_point = tuned_test_point(
          an, ctx_for(outputs.val, core::score_method::appealnet_q),
          ctx_for(outputs.test, core::score_method::appealnet_q), target);

      const double sm_cost = costs.overall_mflops(sm_point.skipping_rate);
      const double an_cost = costs.overall_mflops(an_point.skipping_rate);
      const double saving = 1.0 - an_cost / sm_cost;

      row.push_back(util::format_fixed(sm_cost, 2) + "/" +
                    util::format_fixed(an_cost, 2));
      row.push_back(util::format_percent(saving));

      csv.write_row(std::vector<std::string>{
          data::preset_name(preset), util::format_fixed(target, 2), "SM",
          util::format_fixed(sm_point.skipping_rate, 4),
          util::format_fixed(sm_point.overall_accuracy, 5),
          util::format_fixed(sm_cost, 3)});
      csv.write_row(std::vector<std::string>{
          data::preset_name(preset), util::format_fixed(target, 2),
          "AppealNet", util::format_fixed(an_point.skipping_rate, 4),
          util::format_fixed(an_point.overall_accuracy, 5),
          util::format_fixed(an_cost, 3)});
    }
    table.add_row(std::move(row));
  }

  std::printf("%s", table.render().c_str());
  std::printf("Acc%% columns: ResNet / MobileNet(base) / AppealNet(two-head); "
              "cost pairs: score-margin / AppealNet (Eq. 15 MFLOPs)\n");
  std::printf("rows written to %s\n",
              bench::results_path("table1_cost.csv").c_str());
  return 0;
}
