#include "bench_common.hpp"

#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "util/error.hpp"

namespace appeal::bench {

std::uint64_t bench_seed(const util::config& args, std::uint64_t fallback) {
  if (!args.has("seed")) return fallback;
  const std::string raw = args.get_string("seed");
  try {
    return std::stoull(raw);
  } catch (const std::exception&) {
    throw util::error("--seed must be a non-negative integer, got: " + raw);
  }
}

std::string results_dir() {
  if (const char* env = std::getenv("APPEAL_RESULTS_DIR");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return "results";
}

std::string results_path(const std::string& name) {
  const std::string dir = results_dir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir + "/" + name;
}

}  // namespace appeal::bench
