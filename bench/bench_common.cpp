#include "bench_common.hpp"

#include <cstdlib>
#include <filesystem>

namespace appeal::bench {

std::string results_dir() {
  if (const char* env = std::getenv("APPEAL_RESULTS_DIR");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return "results";
}

std::string results_path(const std::string& name) {
  const std::string dir = results_dir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir + "/" + name;
}

}  // namespace appeal::bench
