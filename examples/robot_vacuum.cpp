// Robot vacuum cleaner scenario (paper Section III).
//
// An edge device (the robot) classifies camera frames for obstacle
// avoidance. Most frames are easy (the same furniture, good lighting); a
// long tail is hard (a cat yawning in a strange pose). The AppealNet system
// keeps easy frames on-device and appeals hard ones to the cloud; this
// example streams a day of frames through the system and accounts
// accuracy, energy, and latency against edge-only and cloud-only baselines.
//
// Run: ./robot_vacuum [--frames=600] [--target_sr=0.9] [--epochs=8]
#include <cstdio>

#include "collab/cost_model.hpp"
#include "core/appealnet_builder.hpp"
#include "data/presets.hpp"
#include "util/config.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace appeal;
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(util::log_level::info);

  // The "house": a cifar10-like task stands in for the robot's obstacle
  // classes (pets, chairs, tables, ...).
  const data::dataset_bundle bundle =
      data::make_small_bundle(data::preset::cifar10_like, 99);

  core::appealnet_build_config cfg;
  cfg.little.spec.family = models::model_family::mobilenet;
  cfg.little.spec.image_size = bundle.train->config().image_size;
  cfg.little.spec.num_classes = bundle.train->num_classes();
  cfg.big_spec = cfg.little.spec;
  cfg.big_spec.family = models::model_family::resnet;
  cfg.big_spec.depth = 2;
  const auto epochs = static_cast<std::size_t>(args.get_int_or("epochs", 8));
  cfg.big_training.epochs = epochs;
  cfg.pretraining.epochs = epochs;
  cfg.joint_training.epochs = epochs + 4;
  cfg.joint_training.learning_rate = 1e-3;
  cfg.loss.beta = 0.05;
  cfg.target_skipping_rate = args.get_double_or("target_sr", 0.9);

  APPEAL_LOG_INFO("example") << "training the robot's edge/cloud system...";
  core::appealnet_system system =
      core::build_appealnet(*bundle.train, *bundle.val, cfg);

  // Cost model: a battery robot with a weak SoC, Wi-Fi uplink, and a
  // datacenter cloud.
  collab::cost_model costs = collab::make_cost_model(
      system.edge_mflops(), system.cloud_mflops(), /*input_kb=*/3.0);
  costs.edge_mj_per_mflop = 1.2;   // low-power SoC
  costs.comm_mj_per_kb = 6.0;      // Wi-Fi radio
  costs.cloud_mj_per_mflop = 0.1;  // amortized datacenter

  // Stream "camera frames" (test samples) through the deployed system.
  const auto frames = static_cast<std::size_t>(args.get_int_or("frames", 600));
  util::rng frame_picker(123);

  std::size_t correct = 0;
  std::size_t offloaded = 0;
  std::size_t hard_frames = 0;
  std::size_t hard_offloaded = 0;
  for (std::size_t f = 0; f < frames; ++f) {
    const std::size_t idx = static_cast<std::size_t>(
        frame_picker.uniform_index(bundle.test->size()));
    const data::sample& frame = bundle.test->get(idx);
    const auto decision = system.infer(frame.image);
    if (decision.predicted_class == frame.label) ++correct;
    if (decision.offloaded) ++offloaded;
    if (frame.difficulty > 0.6F) {
      ++hard_frames;
      if (decision.offloaded) ++hard_offloaded;
    }
  }
  const double sr =
      1.0 - static_cast<double>(offloaded) / static_cast<double>(frames);

  std::printf("\n=== robot vacuum: %zu frames ===\n", frames);
  std::printf("frames offloaded to cloud  : %zu (%.1f%%)\n", offloaded,
              100.0 * static_cast<double>(offloaded) /
                  static_cast<double>(frames));
  std::printf("hard frames offloaded      : %zu of %zu genuinely-hard "
              "frames\n",
              hard_offloaded, hard_frames);
  std::printf("stream accuracy            : %.2f%%\n",
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(frames));
  std::printf("energy per frame           : %.2f mJ (edge-only %.2f, "
              "cloud-only %.2f)\n",
              costs.overall_energy_mj(sr), costs.overall_energy_mj(1.0),
              costs.overall_energy_mj(0.0));
  std::printf("energy saving vs cloud-only: %.1f%%\n",
              100.0 * costs.energy_saving_vs_cloud_only(sr));
  std::printf("latency per frame          : %.2f ms (cloud-only %.2f)\n",
              costs.overall_latency_ms(sr), costs.overall_latency_ms(0.0));
  return 0;
}
