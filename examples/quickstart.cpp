// Quickstart: build, train and deploy an AppealNet edge/cloud system in
// ~60 lines of application code.
//
// Pipeline (paper Fig. 3): synth dataset -> big cloud model -> two-head
// little model (pretrain + joint train, Algorithm 1) -> threshold
// calibration -> routed inference.
//
// Run:  ./quickstart [--epochs=8] [--beta=0.25] [--target_sr=0.9]
#include <cstdio>

#include "core/appealnet_builder.hpp"
#include "data/presets.hpp"
#include "metrics/metrics.hpp"
#include "util/config.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace appeal;
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(util::log_level::info);

  // 1. A small CIFAR-10-like task (see data/presets.hpp for full-size ones).
  const data::dataset_bundle bundle =
      data::make_small_bundle(data::preset::cifar10_like, /*seed=*/7);

  // 2. Configure the system: MobileNet-style edge model, ResNet-style cloud
  //    model, white-box joint training.
  core::appealnet_build_config cfg;
  cfg.little.spec.family = models::model_family::mobilenet;
  cfg.little.spec.image_size = bundle.train->config().image_size;
  cfg.little.spec.num_classes = bundle.train->num_classes();
  cfg.big_spec = cfg.little.spec;
  cfg.big_spec.family = models::model_family::resnet;
  cfg.big_spec.depth = 2;

  const auto epochs =
      static_cast<std::size_t>(args.get_int_or("epochs", 8));
  cfg.big_training.epochs = epochs;
  cfg.pretraining.epochs = epochs;
  cfg.joint_training.epochs = epochs;
  cfg.joint_training.learning_rate = 8e-4;
  cfg.loss.beta = args.get_double_or("beta", 0.25);
  cfg.target_skipping_rate = args.get_double_or("target_sr", 0.9);

  // 3. Train everything (Algorithm 1) and calibrate δ.
  core::appealnet_build_report report;
  core::appealnet_system system =
      core::build_appealnet(*bundle.train, *bundle.val, cfg, &report);

  // 4. Deploy: route the test set through the edge/cloud system.
  const auto decisions = system.infer_all(*bundle.test);
  std::size_t correct = 0;
  std::size_t offloaded = 0;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    if (decisions[i].predicted_class == bundle.test->get(i).label) ++correct;
    if (decisions[i].offloaded) ++offloaded;
  }
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(decisions.size());
  const double sr = 1.0 - static_cast<double>(offloaded) /
                              static_cast<double>(decisions.size());

  std::printf("\n=== AppealNet quickstart ===\n");
  std::printf("big (cloud) val accuracy    : %.2f%%\n",
              report.big_val_accuracy * 100.0);
  std::printf("little (edge) val accuracy  : %.2f%%\n",
              report.little_val_accuracy * 100.0);
  std::printf("threshold delta             : %.4f\n", system.delta());
  std::printf("test skipping rate          : %.2f%%\n", sr * 100.0);
  std::printf("test system accuracy        : %.2f%%\n", accuracy * 100.0);
  std::printf("edge cost                   : %.3f MFLOPs\n",
              system.edge_mflops());
  std::printf("cloud cost                  : %.3f MFLOPs\n",
              system.cloud_mflops());
  return 0;
}
