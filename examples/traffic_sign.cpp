// Traffic-sign recognition at a safety-critical accuracy target (GTSRB-like
// task, paper Table I's first row).
//
// A roadside camera must hit a strict accuracy requirement; the operator
// wants to know the cheapest operating point that meets it. This example
// trains the system, sweeps the threshold, and reports the δ that meets the
// requested relative accuracy improvement (Eq. 14) at minimum cost
// (Eq. 15) — the Table I protocol as an application.
//
// Run: ./traffic_sign [--acci=0.9] [--epochs=8]
#include <cstdio>

#include "collab/cost_model.hpp"
#include "core/appealnet_builder.hpp"
#include "core/scores.hpp"
#include "core/threshold.hpp"
#include "data/presets.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/config.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace appeal;
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(util::log_level::info);

  const data::dataset_bundle bundle =
      data::make_small_bundle(data::preset::gtsrb_like, 77);

  core::appealnet_build_config cfg;
  cfg.little.spec.family = models::model_family::shufflenet;
  cfg.little.spec.image_size = bundle.train->config().image_size;
  cfg.little.spec.num_classes = bundle.train->num_classes();
  cfg.big_spec = cfg.little.spec;
  cfg.big_spec.family = models::model_family::resnet;
  cfg.big_spec.depth = 2;
  const auto epochs = static_cast<std::size_t>(args.get_int_or("epochs", 8));
  cfg.big_training.epochs = epochs + 2;
  cfg.pretraining.epochs = epochs;
  cfg.joint_training.epochs = epochs + 4;
  cfg.joint_training.learning_rate = 1e-3;
  cfg.loss.beta = 0.05;

  core::appealnet_build_report report;
  core::appealnet_system system =
      core::build_appealnet(*bundle.train, *bundle.val, cfg, &report);

  // Sweep δ on the validation split and pick the cheapest point meeting the
  // accuracy requirement.
  const core::two_head_eval val_eval =
      core::eval_two_head(system.little(), *bundle.val);
  const tensor big_val_logits = core::eval_logits(system.big(), *bundle.val);

  std::vector<std::size_t> val_labels(bundle.val->size());
  for (std::size_t i = 0; i < val_labels.size(); ++i) {
    val_labels[i] = bundle.val->get(i).label;
  }
  core::accuracy_context ctx;
  ctx.little_accuracy = report.little_val_accuracy;
  ctx.big_accuracy = report.big_val_accuracy;

  const auto sweep = core::sweep_thresholds(
      ops::argmax_rows(val_eval.logits), ops::argmax_rows(big_val_logits),
      val_labels, core::q_to_scores(val_eval.q), ctx);

  const double target_acci = args.get_double_or("acci", 0.9);
  const core::operating_point chosen =
      core::cheapest_point_for_acci(sweep, target_acci);
  system.set_delta(chosen.delta);

  // Deploy at the chosen threshold and account the test split.
  const auto decisions = system.infer_all(*bundle.test);
  std::size_t correct = 0;
  std::size_t offloaded = 0;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    if (decisions[i].predicted_class == bundle.test->get(i).label) ++correct;
    if (decisions[i].offloaded) ++offloaded;
  }
  const auto n = static_cast<double>(decisions.size());
  const double sr = 1.0 - static_cast<double>(offloaded) / n;

  const collab::cost_model costs = collab::make_cost_model(
      system.edge_mflops(), system.cloud_mflops(), 3.0);

  std::printf("\n=== traffic sign recognition (gtsrb_like, %zu classes) ===\n",
              bundle.test->num_classes());
  std::printf("accuracy requirement (AccI): %.0f%%\n", target_acci * 100.0);
  std::printf("validation accuracies      : little %.2f%%  big %.2f%%\n",
              report.little_val_accuracy * 100.0,
              report.big_val_accuracy * 100.0);
  std::printf("chosen threshold delta     : %.4f (val SR %.1f%%)\n",
              chosen.delta, chosen.skipping_rate * 100.0);
  std::printf("test skipping rate         : %.1f%%\n", sr * 100.0);
  std::printf("test system accuracy       : %.2f%%\n",
              100.0 * static_cast<double>(correct) / n);
  std::printf("system cost (Eq. 15)       : %.2f MFLOPs/inference "
              "(cloud-only %.2f)\n",
              costs.overall_mflops(sr), costs.overall_mflops(0.0));
  return 0;
}
