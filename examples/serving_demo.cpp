// Online serving demo: train a small AppealNet system, then register it
// as a named deployment on the serve::server facade and stream the test
// split through it as live traffic.
//
// This is the deployment half the offline benches stop short of: requests
// enter through server::submit (named model, priority class) -> admission
// control -> request_queue -> dynamic batcher -> edge worker running the
// real two-head little network -> δ decision -> async cloud appeal over
// the simulated uplink -> per-deployment streaming stats. The offline
// evaluation of the same system (appealnet_system::infer_all) is printed
// next to the online numbers — they agree because serving is the same
// computation under a scheduler.
//
// The cloud side is pluggable: the default simulated uplink, or a real
// socket to a running `cloud_stub` (--transport=uds --endpoint=<path>,
// or --transport=tcp --endpoint=host:port). Over a socket the stub's
// scorer answers the appeals; the trained big network remains the local
// fallback if the link drops. To make the socket mode answer from the
// REAL trained big model end to end, export its weights once and hand
// them to the stub:
//
//   ./example_serving_demo --save_big=/tmp/big.apnw           # train + save
//   ./build/cloud_stub --listen=uds:/tmp/appeal-cloud.sock \
//       --scorer=network --weights=/tmp/big.apnw --workers=2 &
//   ./example_serving_demo --transport=uds \
//       --endpoint=/tmp/appeal-cloud.sock
//
// (Training is deterministic, so the second run trains the same system
// the weights were saved from; the stub loads them into the identical
// canonical ResNet architecture, folds conv+BN, and serves appeals as
// deadline-aware batched cloud inference.)
//
// Run:  ./example_serving_demo [--epochs=6] [--target_sr=0.9]
//       [--time_scale=0.1] [--batch=16] [--save_big=<path>]
//       [--edge_precision=fp32|int8]
//       [--transport=sim|uds|tcp] [--endpoint=<path|host:port>]
//       [--coalesce_ms=0] [--max_batch_appeals=64]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <numeric>

#include "core/appealnet_builder.hpp"
#include "data/presets.hpp"
#include "nn/serialize.hpp"
#include "quant/quantize.hpp"
#include "quant/recalibrate.hpp"
#include "serve/server.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace appeal;
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(util::log_level::info);

  // 1. Train a small edge/cloud system (same recipe as the quickstart).
  const data::dataset_bundle bundle =
      data::make_small_bundle(data::preset::cifar10_like, /*seed=*/7);
  core::appealnet_build_config cfg;
  cfg.little.spec.family = models::model_family::mobilenet;
  cfg.little.spec.image_size = bundle.train->config().image_size;
  cfg.little.spec.num_classes = bundle.train->num_classes();
  cfg.big_spec = cfg.little.spec;
  cfg.big_spec.family = models::model_family::resnet;
  cfg.big_spec.depth = 2;
  const auto epochs = static_cast<std::size_t>(args.get_int_or("epochs", 6));
  cfg.big_training.epochs = epochs;
  cfg.pretraining.epochs = epochs;
  cfg.joint_training.epochs = epochs;
  cfg.joint_training.learning_rate = 8e-4;
  cfg.loss.beta = args.get_double_or("beta", 0.25);
  cfg.target_skipping_rate = args.get_double_or("target_sr", 0.9);

  core::appealnet_system system =
      core::build_appealnet(*bundle.train, *bundle.val, cfg, nullptr);

  // Export the trained big network for `cloud_stub --scorer=network`
  // (saved before any folding, in trainable form; the stub folds at
  // load).
  const std::string save_big = args.get_string_or("save_big", "");
  if (!save_big.empty()) {
    nn::save_model(system.big(), save_big);
    std::printf("saved big-network weights to %s\n", save_big.c_str());
  }

  // Optional quantized edge path (--edge_precision=int8): rewrite the
  // little network onto the int8 kernels BEFORE both evaluations, so the
  // offline/online comparison below still compares the same computation.
  // δ is recalibrated on the quantized score distribution over a
  // validation calibration sample (the fp32-tuned δ would miss the target
  // skipping rate once the scores shift). The bit-width autotuner needs a
  // factory of freshly trained networks — see bench_serving
  // --edge_precision=auto for that mode.
  const serve::edge_precision precision = serve::parse_edge_precision(
      args.get_string_or("edge_precision", "fp32"));
  APPEAL_CHECK(precision != serve::edge_precision::autotuned,
               "serving_demo supports --edge_precision=fp32|int8 (auto "
               "requires retraining; use bench_serving)");
  if (precision == serve::edge_precision::int8) {
    std::vector<std::size_t> rows(
        std::min<std::size_t>(256, bundle.val->size()));
    std::iota(rows.begin(), rows.end(), 0);
    const data::batch calib = data::make_batch(*bundle.val, rows);
    const quant::quant_report report =
        quant::quantize_two_head(system.little(), calib.images);
    quant::publish_edge_bits(report, "appealnet");
    const quant::recalibration recal = quant::quant_recalibrate(
        system.little(), calib.images, cfg.target_skipping_rate);
    std::printf(
        "int8 edge path: %zu layers quantized (%zu skipped); delta "
        "%.4f -> %.4f after recalibration\n",
        report.quantized, report.skipped, system.delta(), recal.delta);
    system.set_delta(recal.delta);
  }

  // 2. Offline reference: batch evaluation of the same system.
  const auto decisions = system.infer_all(*bundle.test);
  std::size_t offline_correct = 0;
  std::size_t offline_kept = 0;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    if (decisions[i].predicted_class == bundle.test->get(i).label) {
      ++offline_correct;
    }
    if (!decisions[i].offloaded) ++offline_kept;
  }
  const auto n = static_cast<double>(decisions.size());

  // 3. Deploy online behind the multi-tenant front door: the real little
  //    network at the edge (one instance per worker via the factory), the
  //    real big network behind the simulated uplink, δ from the offline
  //    calibration.
  serve::deployment_config dep_cfg;
  dep_cfg.shards = 1;  // one trained system -> one shard in this demo
  dep_cfg.precision = precision;
  dep_cfg.edge_weight_bits =
      precision == serve::edge_precision::fp32 ? 32 : 8;
  dep_cfg.shard.batching.max_batch_size =
      static_cast<std::size_t>(args.get_int_or("batch", 16));
  dep_cfg.shard.batching.max_wait = std::chrono::microseconds(500);
  dep_cfg.shard.num_workers = 1;  // network_edge_backend is single-threaded
  dep_cfg.shard.threshold.adapt = serve::threshold_config::mode::fixed;
  dep_cfg.shard.threshold.initial_delta = system.delta();
  dep_cfg.shard.link = collab::make_cost_model(
      system.edge_mflops(), system.cloud_mflops(),
      /*input_kb=*/static_cast<double>(
          bundle.test->image_shape().element_count()) *
          4.0 / 1024.0);
  dep_cfg.shard.channel.time_scale = args.get_double_or("time_scale", 0.1);
  dep_cfg.shard.channel.transport =
      serve::parse_transport_kind(args.get_string_or("transport", "sim"));
  dep_cfg.shard.channel.endpoint = args.get_string_or("endpoint", "");
  dep_cfg.shard.channel.coalesce_window_ms =
      args.get_double_or("coalesce_ms", 0.0);
  dep_cfg.shard.channel.max_batch_appeals =
      static_cast<std::size_t>(args.get_int_or("max_batch_appeals", 64));

  // Deployment-load optimization: fold the little network's conv+BN pairs.
  // Outputs match the offline evaluation above up to float rounding.
  system.little().prepare_for_inference();

  serve::server srv;
  srv.register_deployment(
      "appealnet", dep_cfg,
      [&system](std::size_t, std::size_t) {
        return std::make_unique<serve::network_edge_backend>(
            system.little(), core::score_method::appealnet_q);
      },
      [&system] {
        return std::make_unique<serve::network_cloud_backend>(system.big());
      });

  for (std::size_t i = 0; i < bundle.test->size(); ++i) {
    const data::sample& s = bundle.test->get(i);
    serve::inference_request req;
    req.model = "appealnet";
    req.input = s.image;
    req.key = i;
    req.label = s.label;
    srv.submit(std::move(req));
  }
  srv.drain();
  const serve::stats_snapshot online = srv.at("appealnet").snapshot();

  std::printf("\n=== serving demo ===\n");
  std::printf("offline: accuracy %.2f%%, SR %.2f%% (delta %.4f)\n",
              static_cast<double>(offline_correct) / n * 100.0,
              static_cast<double>(offline_kept) / n * 100.0, system.delta());
  std::printf("online:\n%s", serve::serve_stats::render(online).c_str());
  std::printf("modeled latency at achieved SR: %.3f ms\n",
              dep_cfg.shard.link.overall_latency_ms(online.achieved_sr));
  return 0;
}
