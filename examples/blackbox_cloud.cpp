// Black-box cloud vendor scenario (paper Section IV-B / Table II).
//
// The cloud model belongs to an ML service vendor: no logits, no losses —
// the edge team can only assume it answers correctly (the oracle
// assumption). AppealNet trains the two-head little network with the
// Eq. 10 objective and the predictor decides which inputs are worth the
// vendor's per-call fee. This example reports the appealing rate and an
// estimated bill against an always-call-the-vendor deployment.
//
// Run: ./blackbox_cloud [--fee_cents=0.1] [--epochs=8] [--beta=0.05]
#include <cstdio>

#include "core/joint_trainer.hpp"
#include "core/scores.hpp"
#include "core/threshold.hpp"
#include "data/presets.hpp"
#include "metrics/metrics.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/config.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace appeal;
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(util::log_level::info);

  const data::dataset_bundle bundle =
      data::make_small_bundle(data::preset::cifar10_like, 55);

  core::two_head_config net_cfg;
  net_cfg.spec.family = models::model_family::efficientnet;
  net_cfg.spec.image_size = bundle.train->config().image_size;
  net_cfg.spec.num_classes = bundle.train->num_classes();
  core::two_head_network net(net_cfg);

  const auto epochs = static_cast<std::size_t>(args.get_int_or("epochs", 8));
  core::trainer_config pretrain_cfg;
  pretrain_cfg.epochs = epochs;
  pretrain_cfg.seed = 3;
  core::trainer_config joint_cfg;
  joint_cfg.epochs = epochs + 4;
  joint_cfg.learning_rate = 1e-3;
  joint_cfg.seed = 4;

  // Eq. 10: the vendor is an oracle, l0 = 0; no big model anywhere in
  // training.
  core::joint_loss_config loss_cfg;
  loss_cfg.black_box = true;
  loss_cfg.beta = args.get_double_or("beta", 0.05);

  APPEAL_LOG_INFO("example") << "pretraining the edge model (no cloud access needed)";
  core::pretrain_two_head(net, *bundle.train, bundle.val.get(), pretrain_cfg);
  APPEAL_LOG_INFO("example") << "joint training with the black-box objective (Eq. 10)";
  core::train_joint(net, *bundle.train, bundle.val.get(), {}, joint_cfg,
                    loss_cfg);

  // Deploy: tune δ for a 90% skipping rate on validation, then meter the
  // vendor calls on the test stream.
  const core::two_head_eval val_eval = core::eval_two_head(net, *bundle.val);
  const double delta =
      core::delta_for_skipping_rate(core::q_to_scores(val_eval.q), 0.9);

  const core::two_head_eval test_eval = core::eval_two_head(net, *bundle.test);
  const auto little_preds = ops::argmax_rows(test_eval.logits);

  std::size_t vendor_calls = 0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < bundle.test->size(); ++i) {
    const std::size_t label = bundle.test->get(i).label;
    if (static_cast<double>(test_eval.q[i]) >= delta) {
      if (little_preds[i] == label) ++correct;
    } else {
      ++vendor_calls;
      ++correct;  // the vendor (oracle) answers correctly
    }
  }

  const auto n = static_cast<double>(bundle.test->size());
  const double fee_cents = args.get_double_or("fee_cents", 0.1);
  const double bill = static_cast<double>(vendor_calls) * fee_cents;
  const double always_bill = n * fee_cents;

  std::printf("\n=== black-box cloud vendor (Eq. 10 training) ===\n");
  std::printf("edge-only accuracy        : %.2f%%\n",
              100.0 * metrics::accuracy(
                          little_preds,
                          [&] {
                            std::vector<std::size_t> labels(
                                bundle.test->size());
                            for (std::size_t i = 0; i < labels.size(); ++i) {
                              labels[i] = bundle.test->get(i).label;
                            }
                            return labels;
                          }()));
  std::printf("appealing rate (Eq. 12)   : %.1f%%\n",
              100.0 * static_cast<double>(vendor_calls) / n);
  std::printf("system accuracy           : %.2f%%\n",
              100.0 * static_cast<double>(correct) / n);
  std::printf("vendor bill               : %.1f cents (always-call: %.1f)\n",
              bill, always_bill);
  std::printf("bill saving               : %.1f%%\n",
              100.0 * (1.0 - bill / always_bill));
  return 0;
}
