// Hardware-aware model selection (paper Fig. 3, the front of the AppealNet
// workflow).
//
// Given a device specification and the efficient-DNN candidate pool, the
// hardware profiler measures every candidate's compute/memory/latency on
// the device and selects the most capable model that fits. The chosen
// backbone is then handed to the AppealNet trainer.
//
// Run: ./hardware_selection [--budget_mflops=1.0] [--memory_kb=256]
//                           [--peak_gflops=0.5] [--latency_ms=10]
#include <cstdio>

#include "core/hardware_profile.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace appeal;
  const util::config args = util::config::from_args(argc, argv);
  util::set_log_level(util::log_level::info);

  core::hardware_spec device;
  device.name = "iot-camera";
  device.compute_budget_mflops = args.get_double_or("budget_mflops", 1.0);
  device.memory_budget_kb = args.get_double_or("memory_kb", 256.0);
  device.peak_gflops = args.get_double_or("peak_gflops", 0.5);
  device.latency_budget_ms = args.get_double_or("latency_ms", 10.0);

  const auto pool = core::default_model_pool(/*image_size=*/16,
                                             /*num_classes=*/10);
  const auto profiled = core::profile_pool(device, pool);

  util::ascii_table table(
      {"candidate", "MFLOPs", "params KB", "latency ms", "fits"});
  for (const auto& p : profiled) {
    table.add_row({p.spec.canonical(), util::format_fixed(p.mflops, 3),
                   util::format_fixed(p.params_kb, 1),
                   util::format_fixed(p.latency_ms, 2),
                   p.fits ? "yes" : "no"});
  }

  std::printf("=== hardware profiler: device '%s' ===\n", device.name.c_str());
  std::printf("budgets: %.2f MFLOPs, %.0f KB, %.1f ms at %.2f GFLOPS\n\n",
              device.compute_budget_mflops, device.memory_budget_kb,
              device.latency_budget_ms, device.peak_gflops);
  std::printf("%s", table.render().c_str());

  try {
    const auto chosen = core::select_edge_model(device, pool);
    std::printf("\nselected edge backbone: %s (%.3f MFLOPs, %.1f KB)\n",
                chosen.spec.canonical().c_str(), chosen.mflops,
                chosen.params_kb);
    std::printf("next step: add the predictor head and run the AppealNet "
                "trainer (see quickstart.cpp).\n");
  } catch (const util::error& e) {
    std::printf("\nno candidate fits this device: %s\n", e.what());
    return 1;
  }
  return 0;
}
