// Wire-protocol tests: field-exact round trips, torn/partial reads
// through the frame_splitter, malformed-stream rejection (bad magic /
// version / type, oversized frames, truncated and tampered records), and
// demux-relevant properties (ids survive arbitrary response ordering).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "serve/transport/wire.hpp"
#include "util/error.hpp"

namespace {

using namespace appeal;
using namespace appeal::serve;

tensor make_tensor() {
  std::vector<float> values;
  for (int i = 0; i < 2 * 3 * 4; ++i) values.push_back(0.25F * i - 3.0F);
  return tensor::from_values(shape{2, 3, 4}, std::move(values));
}

std::vector<wire::appeal_view> make_views(const tensor& t) {
  std::vector<wire::appeal_view> views;
  wire::appeal_view a;
  a.id = 7;
  a.key = 0xDEADBEEFCAFEF00DULL;
  a.label = 3;
  a.priority = priority_class::batch;
  a.deadline_ms = 12.5;
  a.model = "vision";
  a.input = &t;
  views.push_back(a);
  wire::appeal_view b;  // unlabeled, no deadline, no pixels
  b.id = 8;
  b.key = 1;
  b.model = "vision";
  views.push_back(b);
  return views;
}

std::optional<wire::frame> split_one(const std::vector<std::uint8_t>& bytes) {
  wire::frame_splitter splitter;
  splitter.feed(bytes.data(), bytes.size());
  return splitter.next();
}

TEST(wire, appeal_batch_round_trips_every_field) {
  const tensor t = make_tensor();
  const std::vector<std::uint8_t> bytes =
      wire::encode_appeal_batch(make_views(t));
  const std::optional<wire::frame> f = split_one(bytes);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, wire::frame_type::appeal_batch);
  EXPECT_EQ(f->count, 2);

  const std::vector<wire::appeal_record> decoded =
      wire::decode_appeal_batch(*f);
  ASSERT_EQ(decoded.size(), 2U);
  const wire::appeal_record& a = decoded[0];
  EXPECT_EQ(a.id, 7U);
  EXPECT_EQ(a.key, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(a.label, 3U);
  EXPECT_EQ(a.priority, priority_class::batch);
  EXPECT_DOUBLE_EQ(a.deadline_ms, 12.5);
  EXPECT_EQ(a.model, "vision");
  ASSERT_EQ(a.input.dims(), t.dims());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(a.input[i], t[i]) << "payload float " << i;
  }
  const wire::appeal_record& b = decoded[1];
  EXPECT_EQ(b.id, 8U);
  EXPECT_EQ(b.label, request::no_label);
  EXPECT_EQ(b.priority, priority_class::interactive);
  EXPECT_LT(b.deadline_ms, 0.0);
  EXPECT_TRUE(b.input.empty());
}

TEST(wire, encoded_size_matches_wire_bytes_prediction) {
  const tensor t = make_tensor();
  const std::vector<wire::appeal_view> views = make_views(t);
  std::size_t expected = wire::kHeaderBytes;
  for (const wire::appeal_view& v : views) {
    expected += wire::appeal_wire_bytes(v);
  }
  EXPECT_EQ(wire::encode_appeal_batch(views).size(), expected);
}

TEST(wire, response_batch_round_trips_in_any_order) {
  // The cloud may answer a coalesced batch in any order (or split it);
  // the per-record id is the demux key and must survive untouched. The
  // middle record is a deadline-shed appeal: its `expired` status must
  // round trip too (the whole point of answering instead of dropping).
  std::vector<wire::response_record> batch;
  for (const std::uint64_t id : {9ULL, 2ULL, 5ULL}) {
    wire::response_record r;
    r.id = id;
    r.prediction = 100 + id;
    r.status = id == 2 ? wire::response_status::expired
                       : wire::response_status::ok;
    r.cloud_ms = 0.5 * static_cast<double>(id);
    batch.push_back(r);
  }
  const std::optional<wire::frame> f =
      split_one(wire::encode_response_batch(batch));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, wire::frame_type::response_batch);
  const std::vector<wire::response_record> decoded =
      wire::decode_response_batch(*f);
  ASSERT_EQ(decoded.size(), 3U);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded[i].id, batch[i].id);
    EXPECT_EQ(decoded[i].prediction, batch[i].prediction);
    EXPECT_EQ(decoded[i].status, batch[i].status);
    EXPECT_DOUBLE_EQ(decoded[i].cloud_ms, batch[i].cloud_ms);
  }
}

TEST(wire, rejects_unknown_response_status) {
  wire::response_record r;
  r.id = 1;
  r.prediction = 4;
  std::vector<std::uint8_t> bytes = wire::encode_response_batch({r});
  // The status byte sits after the header and id + prediction.
  bytes[wire::kHeaderBytes + 16] = 0x7F;
  const std::optional<wire::frame> f = split_one(bytes);
  ASSERT_TRUE(f.has_value());
  EXPECT_THROW(wire::decode_response_batch(*f), util::error);
}

TEST(wire, splitter_assembles_frames_from_single_byte_reads) {
  const tensor t = make_tensor();
  const std::vector<std::uint8_t> bytes =
      wire::encode_appeal_batch(make_views(t));
  wire::frame_splitter splitter;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    splitter.feed(&bytes[i], 1);
    EXPECT_FALSE(splitter.next().has_value())
        << "frame yielded " << (bytes.size() - 1 - i) << " bytes early";
  }
  splitter.feed(&bytes.back(), 1);
  const std::optional<wire::frame> f = splitter.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(wire::decode_appeal_batch(*f).size(), 2U);
  EXPECT_EQ(splitter.buffered(), 0U);
}

TEST(wire, splitter_yields_back_to_back_frames_in_order) {
  std::vector<std::uint8_t> stream;
  for (std::uint64_t id = 0; id < 4; ++id) {
    wire::response_record r;
    r.id = id;
    r.prediction = id;
    const std::vector<std::uint8_t> one = wire::encode_response_batch({r});
    stream.insert(stream.end(), one.begin(), one.end());
  }
  wire::frame_splitter splitter;
  // Feed in two arbitrary chunks that straddle frame boundaries.
  const std::size_t cut = stream.size() / 2 + 3;
  splitter.feed(stream.data(), cut);
  splitter.feed(stream.data() + cut, stream.size() - cut);
  for (std::uint64_t id = 0; id < 4; ++id) {
    const std::optional<wire::frame> f = splitter.next();
    ASSERT_TRUE(f.has_value()) << "frame " << id;
    EXPECT_EQ(wire::decode_response_batch(*f).at(0).id, id);
  }
  EXPECT_FALSE(splitter.next().has_value());
}

TEST(wire, rejects_bad_magic_version_and_type) {
  const std::vector<std::uint8_t> good = wire::encode_response_batch({});
  {
    std::vector<std::uint8_t> bad = good;
    bad[0] ^= 0xFF;  // magic
    wire::frame_splitter s;
    s.feed(bad.data(), bad.size());
    EXPECT_THROW(s.next(), util::error);
  }
  {
    std::vector<std::uint8_t> bad = good;
    bad[4] = 99;  // version
    wire::frame_splitter s;
    s.feed(bad.data(), bad.size());
    EXPECT_THROW(s.next(), util::error);
  }
  {
    std::vector<std::uint8_t> bad = good;
    bad[5] = 42;  // frame type
    wire::frame_splitter s;
    s.feed(bad.data(), bad.size());
    EXPECT_THROW(s.next(), util::error);
  }
}

TEST(wire, rejects_oversized_frame_before_buffering_it) {
  // A header announcing a payload beyond kMaxFrameBytes must throw from
  // the header alone — the receiver never allocates for it.
  std::vector<std::uint8_t> bad = wire::encode_response_batch({});
  const std::uint32_t huge = wire::kMaxFrameBytes + 1;
  std::memcpy(bad.data() + 8, &huge, 4);
  wire::frame_splitter s;
  s.feed(bad.data(), wire::kHeaderBytes);  // header only, no payload
  EXPECT_THROW(s.next(), util::error);
}

TEST(wire, rejects_truncated_and_tampered_records) {
  const tensor t = make_tensor();
  std::vector<std::uint8_t> bytes = wire::encode_appeal_batch(make_views(t));
  {
    // Shrink the payload but keep the header honest about it: the last
    // record now ends mid-field.
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.end() - 5);
    const std::uint32_t payload =
        static_cast<std::uint32_t>(cut.size() - wire::kHeaderBytes);
    std::memcpy(cut.data() + 8, &payload, 4);
    const std::optional<wire::frame> f = split_one(cut);
    ASSERT_TRUE(f.has_value());
    EXPECT_THROW(wire::decode_appeal_batch(*f), util::error);
  }
  {
    // Tamper the first record's tensor value count so it disagrees with
    // the shape.
    std::vector<std::uint8_t> tampered = bytes;
    // Offset: header + id/key/label (24) + prio/flags/model_len (4) +
    // deadline (8) + rank word (4) + 3 dims (12) = value-count word.
    const std::size_t off = wire::kHeaderBytes + 24 + 4 + 8 + 4 + 12;
    tampered[off] ^= 0x01;
    const std::optional<wire::frame> f = split_one(tampered);
    ASSERT_TRUE(f.has_value());
    EXPECT_THROW(wire::decode_appeal_batch(*f), util::error);
  }
  {
    // Trailing garbage after the last record.
    std::vector<std::uint8_t> padded = bytes;
    padded.insert(padded.end(), {0, 0, 0});
    const std::uint32_t payload =
        static_cast<std::uint32_t>(padded.size() - wire::kHeaderBytes);
    std::memcpy(padded.data() + 8, &payload, 4);
    const std::optional<wire::frame> f = split_one(padded);
    ASSERT_TRUE(f.has_value());
    EXPECT_THROW(wire::decode_appeal_batch(*f), util::error);
  }
}

TEST(wire, rejects_dims_whose_product_overflows) {
  // A crafted record whose u32 dims multiply to 0 mod 2^64 would pass a
  // naive values == product check with values = 0 and yield a tensor
  // whose shape promises 2^224 elements over empty storage.
  std::vector<std::uint8_t> raw;
  const auto put = [&raw](std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      raw.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  put(wire::kMagic, 4);
  put(wire::kVersion, 1);
  put(static_cast<std::uint64_t>(wire::frame_type::appeal_batch), 1);
  put(1, 2);  // count
  const std::size_t payload_at = raw.size();
  put(0, 4);  // payload_bytes backpatched below
  put(1, 8);  // id
  put(2, 8);  // key
  put(3, 8);  // label
  put(0, 1);  // priority
  put(0, 1);  // flags
  put(0, 2);  // model_len
  put(0, 8);  // deadline bits
  put(8, 4);  // rank
  for (int d = 0; d < 8; ++d) put(1ull << 28, 4);  // product wraps to 0
  put(0, 4);  // value_count "matches" the wrapped product
  const std::uint64_t payload = raw.size() - wire::kHeaderBytes;
  for (int i = 0; i < 4; ++i) {
    raw[payload_at + i] = static_cast<std::uint8_t>(payload >> (8 * i));
  }
  const std::optional<wire::frame> f = split_one(raw);
  ASSERT_TRUE(f.has_value());
  EXPECT_THROW(wire::decode_appeal_batch(*f), util::error);
}

TEST(wire, v3_appeal_trace_id_round_trips) {
  const tensor t = make_tensor();
  std::vector<wire::appeal_view> views = make_views(t);
  views[0].trace_id = 0xFEEDFACE12345678ULL;  // views[1] stays untraced
  const std::optional<wire::frame> f =
      split_one(wire::encode_appeal_batch(views));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->version, wire::kVersion);
  const std::vector<wire::appeal_record> decoded =
      wire::decode_appeal_batch(*f);
  ASSERT_EQ(decoded.size(), 2U);
  EXPECT_EQ(decoded[0].trace_id, 0xFEEDFACE12345678ULL);
  EXPECT_EQ(decoded[1].trace_id, 0U);
}

TEST(wire, v3_response_stage_split_round_trips) {
  wire::response_record r;
  r.id = 11;
  r.prediction = 4;
  r.cloud_ms = 3.5;
  r.cloud_queue_ms = 2.25;
  r.cloud_score_ms = 1.25;
  const std::optional<wire::frame> f =
      split_one(wire::encode_response_batch({r}));
  ASSERT_TRUE(f.has_value());
  const std::vector<wire::response_record> decoded =
      wire::decode_response_batch(*f);
  ASSERT_EQ(decoded.size(), 1U);
  EXPECT_DOUBLE_EQ(decoded[0].cloud_queue_ms, 2.25);
  EXPECT_DOUBLE_EQ(decoded[0].cloud_score_ms, 1.25);
}

TEST(wire, decodes_v2_appeal_frames_from_old_peers) {
  // A v2 peer never sends trace ids; the trace_id on the view must not
  // leak into the encoding and the decode must come back untraced.
  const tensor t = make_tensor();
  std::vector<wire::appeal_view> views = make_views(t);
  views[0].trace_id = 42;
  const std::vector<std::uint8_t> bytes =
      wire::encode_appeal_batch(views, wire::kVersionV2);
  EXPECT_EQ(bytes[4], wire::kVersionV2);
  const std::optional<wire::frame> f = split_one(bytes);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->version, wire::kVersionV2);
  const std::vector<wire::appeal_record> decoded =
      wire::decode_appeal_batch(*f);
  ASSERT_EQ(decoded.size(), 2U);
  EXPECT_EQ(decoded[0].trace_id, 0U);
  // Every v1/v2-era field still round trips through the old framing.
  EXPECT_EQ(decoded[0].id, 7U);
  EXPECT_DOUBLE_EQ(decoded[0].deadline_ms, 12.5);
  EXPECT_EQ(decoded[0].input.dims(), t.dims());
}

TEST(wire, decodes_v2_response_frames_from_old_peers) {
  wire::response_record r;
  r.id = 3;
  r.prediction = 9;
  r.cloud_ms = 1.5;
  r.cloud_queue_ms = 7.0;  // v2 framing cannot carry these
  r.cloud_score_ms = 8.0;
  const std::vector<std::uint8_t> bytes =
      wire::encode_response_batch({r}, wire::kVersionV2);
  const std::optional<wire::frame> f = split_one(bytes);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->version, wire::kVersionV2);
  const std::vector<wire::response_record> decoded =
      wire::decode_response_batch(*f);
  ASSERT_EQ(decoded.size(), 1U);
  EXPECT_EQ(decoded[0].prediction, 9U);
  EXPECT_DOUBLE_EQ(decoded[0].cloud_ms, 1.5);
  EXPECT_DOUBLE_EQ(decoded[0].cloud_queue_ms, 0.0);
  EXPECT_DOUBLE_EQ(decoded[0].cloud_score_ms, 0.0);
}

TEST(wire, v4_overloaded_status_round_trips_with_retry_hint) {
  // The v4 backpressure answer: `overloaded` plus the cloud's queue-wait
  // estimate as a retry-after hint, alongside an ok record in the same
  // frame (whose hint must stay zero).
  wire::response_record shed;
  shed.id = 21;
  shed.status = wire::response_status::overloaded;
  shed.retry_after_ms = 37.5;
  wire::response_record ok;
  ok.id = 22;
  ok.prediction = 6;
  ok.cloud_ms = 1.5;
  const std::optional<wire::frame> f =
      split_one(wire::encode_response_batch({shed, ok}));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->version, wire::kVersion);
  const std::vector<wire::response_record> decoded =
      wire::decode_response_batch(*f);
  ASSERT_EQ(decoded.size(), 2U);
  EXPECT_EQ(decoded[0].status, wire::response_status::overloaded);
  EXPECT_DOUBLE_EQ(decoded[0].retry_after_ms, 37.5);
  EXPECT_EQ(decoded[1].status, wire::response_status::ok);
  EXPECT_EQ(decoded[1].prediction, 6U);
  EXPECT_DOUBLE_EQ(decoded[1].retry_after_ms, 0.0);
}

TEST(wire, overloaded_downgrades_to_expired_for_old_peers) {
  // v2/v3 framing has no `overloaded` status and no retry_after field: a
  // stub answering an old edge downgrades the shed to `expired`, the
  // strongest "no prediction for you" those dialects can express.
  wire::response_record r;
  r.id = 8;
  r.status = wire::response_status::overloaded;
  r.retry_after_ms = 12.0;
  for (const std::uint8_t version : {wire::kVersionV2, wire::kVersionV3}) {
    const std::vector<std::uint8_t> bytes =
        wire::encode_response_batch({r}, version);
    const std::optional<wire::frame> f = split_one(bytes);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->version, version);
    const std::vector<wire::response_record> decoded =
        wire::decode_response_batch(*f);
    ASSERT_EQ(decoded.size(), 1U);
    EXPECT_EQ(decoded[0].status, wire::response_status::expired)
        << "v" << int(version);
    EXPECT_DOUBLE_EQ(decoded[0].retry_after_ms, 0.0);
  }
}

TEST(wire, encoders_reject_unknown_versions) {
  const tensor t = make_tensor();
  EXPECT_THROW(wire::encode_appeal_batch(make_views(t), 1), util::error);
  EXPECT_THROW(wire::encode_response_batch({}, wire::kVersion + 1),
               util::error);
}

TEST(wire, decoders_reject_mismatched_frame_type) {
  const std::optional<wire::frame> resp =
      split_one(wire::encode_response_batch({}));
  ASSERT_TRUE(resp.has_value());
  EXPECT_THROW(wire::decode_appeal_batch(*resp), util::error);
  const tensor t = make_tensor();
  const std::optional<wire::frame> appeal =
      split_one(wire::encode_appeal_batch(make_views(t)));
  ASSERT_TRUE(appeal.has_value());
  EXPECT_THROW(wire::decode_response_batch(*appeal), util::error);
}

}  // namespace
