// Tests for selective-prediction metrics and temperature scaling.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/selective.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;

TEST(risk_coverage, perfect_score_defers_all_errors) {
  // Scores rank all correct above all incorrect: risk is 0 until coverage
  // reaches the accuracy, then rises.
  const std::vector<double> scores{0.9, 0.8, 0.7, 0.2, 0.1};
  const std::vector<bool> correct{true, true, true, false, false};
  const auto curve = metrics::risk_coverage_curve(scores, correct);
  ASSERT_EQ(curve.size(), 5U);
  EXPECT_DOUBLE_EQ(curve[2].risk, 0.0);           // 60% coverage: no errors
  EXPECT_DOUBLE_EQ(curve[4].risk, 2.0 / 5.0);     // full coverage: error rate
  EXPECT_DOUBLE_EQ(curve[4].coverage, 1.0);
}

TEST(risk_coverage, worst_score_front_loads_errors) {
  const std::vector<double> scores{0.9, 0.8, 0.1, 0.2};
  const std::vector<bool> correct{false, false, true, true};
  const auto curve = metrics::risk_coverage_curve(scores, correct);
  EXPECT_DOUBLE_EQ(curve[0].risk, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].risk, 1.0);
  EXPECT_DOUBLE_EQ(curve[3].risk, 0.5);
}

TEST(risk_coverage, aurc_orders_rankers) {
  // A ranking-quality property: informative scores give lower AURC than
  // random scores, which give lower AURC than adversarial scores.
  util::rng gen(3);
  const std::size_t n = 2000;
  std::vector<bool> correct(n);
  std::vector<double> oracle(n), random(n), inverted(n);
  for (std::size_t i = 0; i < n; ++i) {
    correct[i] = gen.bernoulli(0.8);
    const double noise = 0.1 * gen.uniform();
    oracle[i] = (correct[i] ? 1.0 : 0.0) + noise;
    random[i] = gen.uniform();
    inverted[i] = (correct[i] ? 0.0 : 1.0) + noise;
  }
  const double aurc_oracle = metrics::aurc(oracle, correct);
  const double aurc_random = metrics::aurc(random, correct);
  const double aurc_inverted = metrics::aurc(inverted, correct);
  EXPECT_LT(aurc_oracle, aurc_random);
  EXPECT_LT(aurc_random, aurc_inverted);
}

TEST(risk_coverage, risk_at_coverage_interpolates) {
  const std::vector<double> scores{0.9, 0.8, 0.7, 0.2};
  const std::vector<bool> correct{true, true, false, false};
  EXPECT_DOUBLE_EQ(metrics::risk_at_coverage(scores, correct, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(metrics::risk_at_coverage(scores, correct, 1.0), 0.5);
  EXPECT_THROW(metrics::risk_at_coverage(scores, correct, 0.0), util::error);
}

TEST(risk_coverage, validates_inputs) {
  EXPECT_THROW(metrics::risk_coverage_curve({}, {}), util::error);
  EXPECT_THROW(metrics::risk_coverage_curve({0.5}, {true, false}),
               util::error);
}

TEST(temperature_scaling, identity_when_already_calibrated) {
  // Logits whose softmax matches empirical accuracy: fitted T near 1.
  util::rng gen(7);
  const std::size_t n = 1500;
  tensor logits(shape{n, 2});
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    // True class probability 0.73 -> logit gap log(0.73/0.27).
    const float gap = std::log(0.73F / 0.27F);
    const bool label_is_zero = gen.bernoulli(0.5);
    labels[i] = label_is_zero ? 0 : 1;
    const bool model_right = gen.bernoulli(0.73);
    const std::size_t predicted = model_right ? labels[i] : 1 - labels[i];
    logits[i * 2 + predicted] = gap;
  }
  const double t = metrics::fit_temperature(logits, labels);
  EXPECT_NEAR(t, 1.0, 0.15);
}

TEST(temperature_scaling, softens_overconfident_logits) {
  // Same setup but logits claim 99% while accuracy is 73%: fitted T >> 1.
  util::rng gen(9);
  const std::size_t n = 1500;
  tensor logits(shape{n, 2});
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float gap = std::log(0.99F / 0.01F);
    labels[i] = gen.bernoulli(0.5) ? 0 : 1;
    const bool model_right = gen.bernoulli(0.73);
    const std::size_t predicted = model_right ? labels[i] : 1 - labels[i];
    logits[i * 2 + predicted] = gap;
  }
  const double t = metrics::fit_temperature(logits, labels);
  EXPECT_GT(t, 2.0);

  // Applying the temperature reduces the max probability toward accuracy.
  const tensor calibrated = metrics::apply_temperature(logits, t);
  double mean_conf = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_conf += std::max(calibrated[i * 2], calibrated[i * 2 + 1]);
  }
  mean_conf /= static_cast<double>(n);
  EXPECT_NEAR(mean_conf, 0.73, 0.06);
}

TEST(temperature_scaling, apply_preserves_argmax) {
  util::rng gen(11);
  const tensor logits = tensor::randn(shape{20, 5}, gen, 0.0F, 3.0F);
  const tensor probs = metrics::apply_temperature(logits, 2.5);
  EXPECT_EQ(ops::argmax_rows(probs), ops::argmax_rows(logits));
  EXPECT_THROW(metrics::apply_temperature(logits, 0.0), util::error);
}

}  // namespace
