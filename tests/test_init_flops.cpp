// Tests for weight initialization conventions, FLOPs accounting, model
// summaries, and the logging level gate.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/flops.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace appeal;

TEST(init, kaiming_normal_has_fan_in_scaled_variance) {
  util::rng gen(3);
  tensor weights(shape{64, 128});
  nn::kaiming_normal(weights, gen, 128);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const float v : weights.values()) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(weights.size());
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 2.0 / 128.0, 0.2 * 2.0 / 128.0);
}

TEST(init, xavier_uniform_respects_bound) {
  util::rng gen(5);
  tensor weights(shape{32, 32});
  nn::xavier_uniform(weights, gen, 32, 32);
  const float bound = std::sqrt(6.0F / 64.0F);
  for (const float v : weights.values()) {
    ASSERT_GE(v, -bound);
    ASSERT_LT(v, bound);
  }
}

TEST(init, initialize_model_follows_name_conventions) {
  nn::sequential net;
  net.emplace<nn::conv2d>(3, 8, 3, 1, 1);
  net.emplace<nn::batchnorm2d>(8);
  net.emplace<nn::global_avgpool>();
  net.emplace<nn::linear>(8, 4);
  util::rng gen(7);
  nn::initialize_model(net, gen);

  for (auto& np : net.named_parameters("")) {
    const std::string& name = np.qualified_name;
    const tensor& v = np.param->value;
    if (name.find("gamma") != std::string::npos) {
      for (const float x : v.values()) EXPECT_EQ(x, 1.0F);
    } else if (name.find("beta") != std::string::npos ||
               name.find("bias") != std::string::npos) {
      for (const float x : v.values()) EXPECT_EQ(x, 0.0F);
    } else {
      // Weights: non-degenerate random values.
      double norm = 0.0;
      for (const float x : v.values()) norm += std::fabs(x);
      EXPECT_GT(norm, 0.0) << name;
    }
    // Gradients start cleared.
    for (const float g : np.param->grad.values()) EXPECT_EQ(g, 0.0F);
  }
}

TEST(init, deterministic_given_seed) {
  nn::linear a(16, 16);
  nn::linear b(16, 16);
  util::rng ga(11);
  util::rng gb(11);
  nn::initialize_model(a, ga);
  nn::initialize_model(b, gb);
  for (std::size_t i = 0; i < a.weight().value.size(); ++i) {
    ASSERT_EQ(a.weight().value[i], b.weight().value[i]);
  }
}

TEST(flops, linear_and_conv_formulas) {
  nn::linear fc(100, 10);
  // (100 MACs + bias) per output, 2 FLOPs per MAC.
  EXPECT_EQ(fc.flops(shape{1, 100}), 2ULL * (100 * 10 + 10));

  nn::conv2d conv(3, 8, 3, 1, 1, 1, /*bias=*/false);
  // out 16x16x8, each from 3*3*3 MACs.
  EXPECT_EQ(conv.flops(shape{1, 3, 16, 16}), 2ULL * 8 * 16 * 16 * 27);
}

TEST(flops, sequential_sums_children_through_shape_inference) {
  nn::sequential net;
  net.emplace<nn::conv2d>(3, 4, 3, 2, 1);  // halves resolution
  net.emplace<nn::conv2d>(4, 8, 3, 1, 1);  // runs at 8x8
  const std::uint64_t expected =
      net.child(0).flops(shape{1, 3, 16, 16}) +
      net.child(1).flops(shape{1, 4, 8, 8});
  EXPECT_EQ(net.flops(shape{1, 3, 16, 16}), expected);
}

TEST(flops, mflops_and_parameter_count) {
  nn::sequential net;
  net.emplace<nn::linear>(1000, 1000);
  EXPECT_NEAR(nn::mflops(net, shape{1, 1000}), 2.002, 0.001);
  EXPECT_EQ(nn::parameter_count(net), 1000U * 1000 + 1000);
}

TEST(flops, model_summary_mentions_parameters_and_cost) {
  nn::sequential net;
  net.emplace<nn::linear>(4, 2);
  const std::string summary = nn::model_summary(net, shape{1, 4});
  EXPECT_NE(summary.find("0.weight"), std::string::npos);
  EXPECT_NE(summary.find("parameters: 10"), std::string::npos);
  EXPECT_NE(summary.find("MFLOPs"), std::string::npos);
}

TEST(logging, level_gate) {
  const auto saved = util::get_log_level();
  util::set_log_level(util::log_level::err);
  EXPECT_EQ(util::get_log_level(), util::log_level::err);
  // Emitting below the gate must be a no-op (no crash, nothing observable).
  APPEAL_LOG_DEBUG("test") << "hidden";
  APPEAL_LOG_INFO("test") << "hidden";
  util::set_log_level(saved);
}

TEST(timer, measures_forward_progress) {
  util::timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_GE(t.milliseconds(), t.seconds() * 1000.0 * 0.99);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
