// Tests for appeal::util::rng — determinism, distribution sanity, helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using appeal::util::rng;

TEST(rng, same_seed_reproduces_stream) {
  rng a(123);
  rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(rng, different_seeds_diverge) {
  rng a(1);
  rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(rng, zero_seed_is_usable) {
  rng gen(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(gen.next_u64());
  EXPECT_GT(seen.size(), 95U);
}

TEST(rng, uniform_in_unit_interval_with_correct_mean) {
  rng gen(7);
  double total = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = gen.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    total += u;
  }
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(rng, uniform_float_respects_bounds) {
  rng gen(11);
  for (int i = 0; i < 1000; ++i) {
    const float v = gen.uniform(-2.5F, 3.5F);
    ASSERT_GE(v, -2.5F);
    ASSERT_LT(v, 3.5F);
  }
}

TEST(rng, uniform_index_covers_range_without_bias) {
  rng gen(13);
  constexpr std::uint64_t k = 7;
  std::vector<int> counts(k, 0);
  constexpr int n = 70000;
  for (int i = 0; i < n; ++i) {
    ++counts[gen.uniform_index(k)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / static_cast<double>(k),
                4.0 * std::sqrt(n / static_cast<double>(k)));
  }
}

TEST(rng, uniform_index_rejects_zero) {
  rng gen(1);
  EXPECT_THROW(gen.uniform_index(0), appeal::util::error);
}

TEST(rng, uniform_int_inclusive_bounds) {
  rng gen(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int v = gen.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(rng, normal_has_standard_moments) {
  rng gen(19);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = gen.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.04);
}

TEST(rng, normal_with_parameters) {
  rng gen(23);
  double sum = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) sum += gen.normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(rng, bernoulli_matches_probability) {
  rng gen(29);
  int hits = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (gen.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.015);
}

TEST(rng, categorical_respects_weights) {
  rng gen(31);
  const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(weights.size(), 0);
  constexpr int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[gen.categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.015);
}

TEST(rng, categorical_rejects_bad_weights) {
  rng gen(1);
  EXPECT_THROW(gen.categorical({}), appeal::util::error);
  EXPECT_THROW(gen.categorical({0.0, 0.0}), appeal::util::error);
  EXPECT_THROW(gen.categorical({1.0, -1.0}), appeal::util::error);
}

TEST(rng, permutation_is_a_permutation) {
  rng gen(37);
  const auto perm = gen.permutation(257);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 257U);
  EXPECT_EQ(*seen.begin(), 0U);
  EXPECT_EQ(*seen.rbegin(), 256U);
}

TEST(rng, shuffle_preserves_elements) {
  rng gen(41);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7};
  auto shuffled = items;
  gen.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(rng, split_streams_are_independent) {
  rng parent(43);
  rng child_a = parent.split();
  rng child_b = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a.next_u64() == child_b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

/// Property sweep: statistical sanity across seeds.
class rng_seed_sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(rng_seed_sweep, uniform_mean_and_variance) {
  rng gen(GetParam());
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = gen.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 0.5, 0.015);
  EXPECT_NEAR(sum_sq / n - mean * mean, 1.0 / 12.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(seeds, rng_seed_sweep,
                         ::testing::Values(1ULL, 42ULL, 1234567ULL,
                                           0xDEADBEEFULL, 999999937ULL));

}  // namespace
