// Tests for the model zoo: all four families build, run, scale, and train.
#include <gtest/gtest.h>

#include "models/model_zoo.hpp"
#include "nn/flops.hpp"
#include "nn/init.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;

models::model_spec spec_for(models::model_family family, float width = 1.0F,
                            std::size_t depth = 1) {
  models::model_spec spec;
  spec.family = family;
  spec.image_size = 16;
  spec.num_classes = 10;
  spec.width = width;
  spec.depth = depth;
  return spec;
}

class model_family_suite
    : public ::testing::TestWithParam<models::model_family> {};

TEST_P(model_family_suite, backbone_produces_flat_features) {
  const models::backbone bb = models::make_backbone(spec_for(GetParam()));
  ASSERT_NE(bb.features, nullptr);
  EXPECT_GT(bb.feature_dim, 0U);
  EXPECT_EQ(bb.features->output_shape(shape{2, 3, 16, 16}),
            shape({2, bb.feature_dim}));
}

TEST_P(model_family_suite, classifier_forward_backward_runs) {
  util::rng gen(7);
  auto net = models::make_classifier(spec_for(GetParam()), gen);
  const tensor x = tensor::randn(shape{2, 3, 16, 16}, gen);
  const tensor logits = net->forward(x, true);
  EXPECT_EQ(logits.dims(), shape({2, 10}));
  EXPECT_FALSE(logits.has_non_finite());
  // Backward accepts a cotangent of the logits shape.
  net->backward(tensor::full(shape{2, 10}, 0.1F));
  for (nn::parameter* p : net->parameters()) {
    EXPECT_FALSE(p->grad.has_non_finite());
  }
}

TEST_P(model_family_suite, eval_forward_is_deterministic) {
  util::rng gen(11);
  auto net = models::make_classifier(spec_for(GetParam()), gen);
  const tensor x = tensor::randn(shape{1, 3, 16, 16}, gen);
  // Run a training pass first so batchnorm has seen data.
  net->forward(tensor::randn(shape{4, 3, 16, 16}, gen), true);
  const tensor a = net->forward(x, false);
  const tensor b = net->forward(x, false);
  EXPECT_EQ(ops::max_abs_diff(a, b), 0.0F);
}

TEST_P(model_family_suite, width_scaling_increases_cost) {
  const models::backbone narrow =
      models::make_backbone(spec_for(GetParam(), 0.5F));
  const models::backbone wide =
      models::make_backbone(spec_for(GetParam(), 1.5F));
  const shape input{1, 3, 16, 16};
  EXPECT_LT(narrow.features->flops(input), wide.features->flops(input));
}

INSTANTIATE_TEST_SUITE_P(families, model_family_suite,
                         ::testing::Values(models::model_family::mobilenet,
                                           models::model_family::shufflenet,
                                           models::model_family::efficientnet,
                                           models::model_family::resnet));

TEST(model_zoo, resnet_is_much_larger_than_edge_families) {
  const shape input{1, 3, 16, 16};
  const auto resnet_flops =
      models::make_backbone(spec_for(models::model_family::resnet, 1.0F, 2))
          .features->flops(input);
  for (const auto family :
       {models::model_family::mobilenet, models::model_family::shufflenet,
        models::model_family::efficientnet}) {
    const auto edge_flops =
        models::make_backbone(spec_for(family)).features->flops(input);
    EXPECT_GT(resnet_flops, 5 * edge_flops)
        << models::family_name(family) << " is too close to the big model";
  }
}

TEST(model_zoo, depth_scaling_increases_resnet_cost) {
  const shape input{1, 3, 16, 16};
  const auto d1 =
      models::make_backbone(spec_for(models::model_family::resnet, 1.0F, 1))
          .features->flops(input);
  const auto d3 =
      models::make_backbone(spec_for(models::model_family::resnet, 1.0F, 3))
          .features->flops(input);
  EXPECT_GT(d3, 2 * d1);
}

TEST(model_zoo, family_parsing_roundtrip) {
  for (const auto family :
       {models::model_family::mobilenet, models::model_family::shufflenet,
        models::model_family::efficientnet, models::model_family::resnet}) {
    EXPECT_EQ(models::parse_family(models::family_name(family)), family);
  }
  EXPECT_THROW(models::parse_family("vgg"), util::error);
}

TEST(model_zoo, scaled_channels_rounds_and_floors) {
  EXPECT_EQ(models::scaled_channels(16, 1.0F), 16U);
  EXPECT_EQ(models::scaled_channels(16, 0.5F), 8U);
  EXPECT_EQ(models::scaled_channels(16, 0.1F, 4, 4), 4U);  // floor
  EXPECT_EQ(models::scaled_channels(10, 1.0F, 4, 4), 12U); // round to 4
  EXPECT_THROW(models::scaled_channels(16, 0.0F), util::error);
}

TEST(model_zoo, spec_canonical_is_stable_and_distinct) {
  const auto a = spec_for(models::model_family::mobilenet).canonical();
  const auto b = spec_for(models::model_family::mobilenet).canonical();
  const auto c = spec_for(models::model_family::shufflenet).canonical();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(spec_for(models::model_family::mobilenet, 0.5F).canonical(), a);
}

TEST(model_zoo, mobilenet_overfits_a_tiny_batch) {
  // Sanity: 10 samples, enough steps -> near-perfect fit. Verifies the
  // whole forward/backward/update loop end to end for a real backbone.
  util::rng gen(13);
  models::model_spec spec = spec_for(models::model_family::mobilenet, 0.5F);
  spec.num_classes = 4;
  auto net = models::make_classifier(spec, gen);

  const std::size_t n = 10;
  const tensor x = tensor::randn(shape{n, 3, 16, 16}, gen);
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = i % 4;

  nn::adam opt(3e-3);
  opt.attach(net->parameters());
  double last_loss = 0.0;
  for (int step = 0; step < 120; ++step) {
    const tensor logits = net->forward(x, true);
    const auto loss = nn::softmax_cross_entropy(logits, labels);
    opt.zero_grad();
    net->backward(loss.grad);
    opt.step();
    last_loss = loss.mean_loss;
  }
  EXPECT_LT(last_loss, 0.2) << "tiny-batch overfit failed to converge";
}

}  // namespace
