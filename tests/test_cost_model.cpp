// Tests for the edge/cloud cost model (Eq. 15 + energy/latency extensions).
#include <gtest/gtest.h>

#include "collab/cost_model.hpp"
#include "util/error.hpp"

namespace {

using appeal::collab::cost_model;
using appeal::collab::make_cost_model;

cost_model sample_model() { return make_cost_model(0.5, 10.0, 3.0); }

TEST(cost_model, offload_path_costs_more_than_edge_path) {
  const cost_model m = sample_model();
  EXPECT_GT(m.c0(), m.c1());
  // c0 includes the edge pass (the predictor always runs), comm, and cloud.
  EXPECT_DOUBLE_EQ(m.c0(), 0.5 + 3.0 * m.comm_mflops_per_kb + 10.0);
  EXPECT_DOUBLE_EQ(m.c1(), 0.5);
}

TEST(cost_model, eq15_endpoints_and_linearity) {
  const cost_model m = sample_model();
  EXPECT_DOUBLE_EQ(m.overall_mflops(1.0), m.c1());
  EXPECT_DOUBLE_EQ(m.overall_mflops(0.0), m.c0());
  EXPECT_DOUBLE_EQ(m.overall_mflops(0.5), 0.5 * (m.c0() + m.c1()));
  EXPECT_THROW(m.overall_mflops(-0.1), appeal::util::error);
  EXPECT_THROW(m.overall_mflops(1.1), appeal::util::error);
}

TEST(cost_model, energy_decreases_with_skipping_rate) {
  const cost_model m = sample_model();
  double previous = m.overall_energy_mj(0.0);
  for (double sr = 0.1; sr <= 1.0; sr += 0.1) {
    const double current = m.overall_energy_mj(sr);
    EXPECT_LT(current, previous);
    previous = current;
  }
}

TEST(cost_model, edge_energy_is_always_paid) {
  // Even at SR = 0 (everything offloaded) the predictor ran on the edge.
  const cost_model m = sample_model();
  const double edge_only = m.edge_mflops * m.edge_mj_per_mflop;
  EXPECT_GE(m.overall_energy_mj(0.0), edge_only);
  EXPECT_DOUBLE_EQ(m.overall_energy_mj(1.0), edge_only);
}

TEST(cost_model, energy_saving_vs_cloud_only) {
  const cost_model m = sample_model();
  EXPECT_DOUBLE_EQ(m.energy_saving_vs_cloud_only(0.0), 0.0);
  EXPECT_GT(m.energy_saving_vs_cloud_only(0.9), 0.5);
  EXPECT_GT(m.energy_saving_vs_cloud_only(1.0),
            m.energy_saving_vs_cloud_only(0.9));
}

TEST(cost_model, latency_decreases_with_skipping_rate) {
  const cost_model m = sample_model();
  EXPECT_GT(m.overall_latency_ms(0.0), m.overall_latency_ms(0.5));
  EXPECT_GT(m.overall_latency_ms(0.5), m.overall_latency_ms(1.0));
  // Offloading pays at least the fixed round trip.
  EXPECT_GE(m.overall_latency_ms(0.0) - m.overall_latency_ms(1.0),
            m.comm_round_trip_ms);
}

TEST(cost_model, factory_validates_inputs) {
  EXPECT_THROW(make_cost_model(0.0, 10.0, 3.0), appeal::util::error);
  EXPECT_THROW(make_cost_model(1.0, -1.0, 3.0), appeal::util::error);
  EXPECT_NO_THROW(make_cost_model(1.0, 10.0, 0.0));
}

}  // namespace
