// Tests for the paper's evaluation metrics (Eq. 11-15) and the separation/
// calibration statistics.
#include <gtest/gtest.h>

#include "metrics/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;

TEST(accuracy_metric, basic_and_errors) {
  EXPECT_DOUBLE_EQ(metrics::accuracy({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(metrics::accuracy({1, 2, 3}, {1, 0, 0}), 1.0 / 3.0);
  EXPECT_THROW(metrics::accuracy({}, {}), util::error);
  EXPECT_THROW(metrics::accuracy({1}, {1, 2}), util::error);
}

TEST(skipping_rate, counts_scores_at_or_above_delta) {
  const std::vector<double> scores{0.1, 0.5, 0.5, 0.9};
  EXPECT_DOUBLE_EQ(metrics::skipping_rate(scores, 0.5), 0.75);
  EXPECT_DOUBLE_EQ(metrics::skipping_rate(scores, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(metrics::skipping_rate(scores, 0.95), 0.0);
}

TEST(skipping_rate, appealing_rate_complement) {
  util::rng gen(3);
  std::vector<double> scores(100);
  for (auto& s : scores) s = gen.uniform();
  for (const double delta : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_NEAR(metrics::skipping_rate(scores, delta) +
                    metrics::appealing_rate(scores, delta),
                1.0, 1e-12);
  }
}

TEST(evaluate_collaborative, routes_by_threshold) {
  // Eq. 13 by hand: 4 samples, little correct on kept {0}, big correct on
  // offloaded {3}.
  const std::vector<std::size_t> labels{0, 1, 2, 3};
  const std::vector<std::size_t> little{0, 9, 9, 9};
  const std::vector<std::size_t> big{9, 9, 9, 3};
  const std::vector<double> scores{0.8, 0.9, 0.1, 0.2};

  const auto outcome =
      metrics::evaluate_collaborative(little, big, labels, scores, 0.5);
  EXPECT_EQ(outcome.edge_correct, 1U);
  EXPECT_EQ(outcome.cloud_correct, 1U);
  EXPECT_DOUBLE_EQ(outcome.skipping_rate, 0.5);
  EXPECT_DOUBLE_EQ(outcome.overall_accuracy, 0.5);
}

TEST(evaluate_collaborative, degenerate_thresholds) {
  const std::vector<std::size_t> labels{0, 1};
  const std::vector<std::size_t> little{0, 0};  // 50% accurate
  const std::vector<std::size_t> big{0, 1};     // 100% accurate
  const std::vector<double> scores{0.6, 0.4};

  // δ below all scores: little-only.
  auto all_edge = metrics::evaluate_collaborative(little, big, labels, scores,
                                                  0.0);
  EXPECT_DOUBLE_EQ(all_edge.overall_accuracy, 0.5);
  EXPECT_DOUBLE_EQ(all_edge.skipping_rate, 1.0);
  // δ above all scores: big-only.
  auto all_cloud = metrics::evaluate_collaborative(little, big, labels,
                                                   scores, 0.7);
  EXPECT_DOUBLE_EQ(all_cloud.overall_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(all_cloud.skipping_rate, 0.0);
}

TEST(relative_accuracy_improvement, endpoints_and_boosting) {
  // Eq. 14: AccI = 0 at little accuracy, 1 at big accuracy.
  EXPECT_DOUBLE_EQ(metrics::relative_accuracy_improvement(0.9, 0.9, 0.95),
                   0.0);
  EXPECT_DOUBLE_EQ(metrics::relative_accuracy_improvement(0.95, 0.9, 0.95),
                   1.0);
  EXPECT_NEAR(metrics::relative_accuracy_improvement(0.925, 0.9, 0.95), 0.5,
              1e-9);
  // Accuracy boosting: collaborative above the big model gives AccI > 1.
  EXPECT_GT(metrics::relative_accuracy_improvement(0.97, 0.9, 0.95), 1.0);
  EXPECT_THROW(metrics::relative_accuracy_improvement(0.9, 0.9, 0.9),
               util::error);
}

TEST(overall_cost, is_linear_in_skipping_rate) {
  // Eq. 15 endpoints and midpoint.
  EXPECT_DOUBLE_EQ(metrics::overall_cost(1.0, 10.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(metrics::overall_cost(0.0, 10.0, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(metrics::overall_cost(0.5, 10.0, 100.0), 55.0);
  EXPECT_THROW(metrics::overall_cost(1.5, 10.0, 100.0), util::error);
}

TEST(auroc, known_values) {
  // Perfect separation.
  EXPECT_DOUBLE_EQ(metrics::auroc({0.9, 0.8}, {0.1, 0.2}), 1.0);
  // Perfectly wrong.
  EXPECT_DOUBLE_EQ(metrics::auroc({0.1, 0.2}, {0.9, 0.8}), 0.0);
  // All tied -> chance.
  EXPECT_DOUBLE_EQ(metrics::auroc({0.5, 0.5}, {0.5, 0.5}), 0.5);
  EXPECT_THROW(metrics::auroc({}, {0.5}), util::error);
}

TEST(auroc, random_scores_near_half) {
  util::rng gen(7);
  std::vector<double> pos(2000), neg(2000);
  for (auto& v : pos) v = gen.uniform();
  for (auto& v : neg) v = gen.uniform();
  EXPECT_NEAR(metrics::auroc(pos, neg), 0.5, 0.03);
}

TEST(expected_calibration_error, perfectly_calibrated_is_zero) {
  // Two bins: confidence 0.25 with 25% accuracy, 0.75 with 75% accuracy.
  std::vector<double> conf;
  std::vector<bool> correct;
  for (int i = 0; i < 100; ++i) {
    conf.push_back(0.25);
    correct.push_back(i < 25);
    conf.push_back(0.75);
    correct.push_back(i < 75);
  }
  EXPECT_NEAR(metrics::expected_calibration_error(conf, correct, 2), 0.0,
              1e-9);
}

TEST(expected_calibration_error, overconfidence_is_measured) {
  // Confidence 0.9 but only 50% correct -> ECE 0.4.
  std::vector<double> conf(100, 0.9);
  std::vector<bool> correct(100, false);
  for (int i = 0; i < 50; ++i) correct[static_cast<std::size_t>(i)] = true;
  EXPECT_NEAR(metrics::expected_calibration_error(conf, correct, 10), 0.4,
              1e-9);
}

TEST(confusion_matrix, accumulates_and_reports) {
  metrics::confusion_matrix cm(3);
  cm.add_all({0, 1, 2, 0}, {0, 1, 1, 2});
  EXPECT_EQ(cm.total(), 4U);
  EXPECT_EQ(cm.at(0, 0), 1U);
  EXPECT_EQ(cm.at(2, 1), 1U);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(cm.recall(1), 0.5);
  EXPECT_DOUBLE_EQ(cm.recall(2), 0.0);
  EXPECT_THROW(cm.add(3, 0), util::error);
}

/// Property: Eq. 13 equals the weighted blend of conditional accuracies.
class collaborative_identity : public ::testing::TestWithParam<double> {};

TEST_P(collaborative_identity, equals_conditional_blend) {
  const double delta = GetParam();
  util::rng gen(17);
  const std::size_t n = 500;
  std::vector<std::size_t> labels(n), little(n), big(n);
  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = i % 7;
    little[i] = gen.bernoulli(0.7) ? labels[i] : (labels[i] + 1) % 7;
    big[i] = gen.bernoulli(0.9) ? labels[i] : (labels[i] + 1) % 7;
    scores[i] = gen.uniform();
  }
  const auto outcome =
      metrics::evaluate_collaborative(little, big, labels, scores, delta);
  // Recompute via explicit partition.
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t pred = scores[i] >= delta ? little[i] : big[i];
    if (pred == labels[i]) ++correct;
  }
  EXPECT_DOUBLE_EQ(outcome.overall_accuracy,
                   static_cast<double>(correct) / static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(deltas, collaborative_identity,
                         ::testing::Values(0.0, 0.3, 0.5, 0.8, 1.01));

}  // namespace
