// Tests for the two-head network: shapes, gradient junction, persistence,
// predictor-head overhead.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/joint_loss.hpp"
#include "core/two_head_network.hpp"
#include "nn/flops.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;

core::two_head_config small_config(
    models::model_family family = models::model_family::mobilenet) {
  core::two_head_config cfg;
  cfg.spec.family = family;
  cfg.spec.image_size = 16;
  cfg.spec.num_classes = 6;
  cfg.spec.width = 0.5F;
  cfg.init_seed = 17;
  return cfg;
}

TEST(two_head_network, forward_produces_both_heads) {
  core::two_head_network net(small_config());
  util::rng gen(1);
  const tensor x = tensor::randn(shape{3, 3, 16, 16}, gen);
  const core::two_head_output out = net.forward(x, false);
  EXPECT_EQ(out.logits.dims(), shape({3, 6}));
  EXPECT_EQ(out.q_logits.dims(), shape({3}));
  ASSERT_EQ(out.q.size(), 3U);
  for (const float q : out.q) {
    EXPECT_GT(q, 0.0F);
    EXPECT_LT(q, 1.0F);
  }
}

TEST(two_head_network, q_is_sigmoid_of_q_logits) {
  core::two_head_network net(small_config());
  util::rng gen(2);
  const tensor x = tensor::randn(shape{2, 3, 16, 16}, gen);
  const core::two_head_output out = net.forward(x, false);
  for (std::size_t i = 0; i < out.q.size(); ++i) {
    EXPECT_NEAR(out.q[i], 1.0F / (1.0F + std::exp(-out.q_logits[i])), 1e-6F);
  }
}

TEST(two_head_network, approximator_path_matches_full_forward_logits) {
  core::two_head_network net(small_config());
  util::rng gen(3);
  const tensor x = tensor::randn(shape{2, 3, 16, 16}, gen);
  const tensor a = net.forward(x, false).logits;
  const tensor b = net.forward_approximator(x, false);
  EXPECT_EQ(ops::max_abs_diff(a, b), 0.0F);
}

TEST(two_head_network, joint_backward_reaches_all_parameters) {
  core::two_head_network net(small_config());
  util::rng gen(5);
  const tensor x = tensor::randn(shape{4, 3, 16, 16}, gen);
  const core::two_head_output out = net.forward(x, true);

  std::vector<std::size_t> labels{0, 1, 2, 3};
  std::vector<float> big_losses{0.1F, 0.2F, 0.3F, 0.4F};
  core::joint_loss_config loss_cfg;
  const auto loss = core::compute_joint_loss(out.logits, out.q_logits, labels,
                                             big_losses, loss_cfg);
  for (nn::parameter* p : net.all_parameters()) p->zero_grad();
  net.backward(loss.grad_logits, loss.grad_q_logits);

  // Every parameter (extractor, both heads) should receive some gradient.
  std::size_t nonzero_params = 0;
  for (nn::parameter* p : net.all_parameters()) {
    if (ops::l2_norm(p->grad) > 0.0) ++nonzero_params;
  }
  EXPECT_EQ(nonzero_params, net.all_parameters().size());
}

TEST(two_head_network, finite_difference_check_through_the_junction) {
  // Full-system fd check: L = sum(c1 * logits) + sum(c2 * q_logits).
  core::two_head_config cfg = small_config();
  cfg.spec.width = 0.5F;
  core::two_head_network net(cfg);
  util::rng gen(7);
  const tensor x = tensor::randn(shape{2, 3, 16, 16}, gen);

  const core::two_head_output probe = net.forward(x, true);
  const tensor c1 = tensor::randn(probe.logits.dims(), gen);
  const tensor c2 = tensor::randn(probe.q_logits.dims(), gen);

  const auto loss_value = [&]() {
    const core::two_head_output out = net.forward(x, true);
    double total = 0.0;
    for (std::size_t i = 0; i < out.logits.size(); ++i) {
      total += static_cast<double>(out.logits[i]) * c1[i];
    }
    for (std::size_t i = 0; i < out.q_logits.size(); ++i) {
      total += static_cast<double>(out.q_logits[i]) * c2[i];
    }
    return total;
  };

  for (nn::parameter* p : net.all_parameters()) p->zero_grad();
  net.forward(x, true);
  net.backward(c1, c2);

  // Probe a handful of parameters spread over extractor and both heads.
  const auto params = net.all_parameters();
  std::size_t checked = 0;
  for (std::size_t pi = 0; pi < params.size(); pi += params.size() / 5 + 1) {
    nn::parameter& p = *params[pi];
    const std::size_t idx = p.value.size() / 2;
    const double analytic = p.grad[idx];
    const double scale = std::max(1.0, std::fabs(analytic));
    // ReLU-family kinks give epsilon-independent fd error when an
    // activation crosses zero inside the probe interval; retry with
    // shrinking steps (a real gradient bug fails at every step size).
    double best = std::numeric_limits<double>::infinity();
    double numeric = 0.0;
    for (const float eps : {1e-2F, 2e-3F, 4e-4F}) {
      const float saved = p.value[idx];
      p.value[idx] = saved + eps;
      const double plus = loss_value();
      p.value[idx] = saved - eps;
      const double minus = loss_value();
      p.value[idx] = saved;
      const double candidate = (plus - minus) / (2.0 * eps);
      if (std::fabs(candidate - analytic) < best) {
        best = std::fabs(candidate - analytic);
        numeric = candidate;
      }
      if (best <= 0.08 * scale) break;
    }
    EXPECT_NEAR(numeric, analytic, 0.08 * scale)
        << "parameter " << pi << " (" << p.name << ")";
    ++checked;
  }
  EXPECT_GE(checked, 4U);
}

TEST(two_head_network, predictor_head_overhead_is_minimal) {
  // The paper claims the predictor head adds "minimal overhead": one FC
  // layer. Verify it is a tiny fraction of the approximator cost.
  core::two_head_network net(small_config());
  const shape input{1, 3, 16, 16};
  const auto full = net.flops(input);
  const auto approx_only = net.approximator_flops(input);
  EXPECT_GT(full, approx_only);
  EXPECT_LT(static_cast<double>(full - approx_only),
            0.02 * static_cast<double>(approx_only));
}

TEST(two_head_network, optional_hidden_approximator_head) {
  core::two_head_config cfg = small_config();
  cfg.approx_hidden = 32;
  core::two_head_network net(cfg);
  EXPECT_EQ(net.approximator_head().size(), 3U);  // linear-relu-linear
  util::rng gen(9);
  const tensor x = tensor::randn(shape{2, 3, 16, 16}, gen);
  EXPECT_EQ(net.forward(x, false).logits.dims(), shape({2, 6}));
}

TEST(two_head_network, save_load_roundtrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "appeal_twohead.bin").string();
  core::two_head_network original(small_config());
  util::rng gen(11);
  const tensor x = tensor::randn(shape{2, 3, 16, 16}, gen);
  original.forward(x, true);  // touch batchnorm stats
  original.save(path);

  core::two_head_config cfg = small_config();
  cfg.init_seed = 999;  // different init
  core::two_head_network restored(cfg);
  restored.load(path);

  const core::two_head_output a = original.forward(x, false);
  const core::two_head_output b = restored.forward(x, false);
  EXPECT_EQ(ops::max_abs_diff(a.logits, b.logits), 0.0F);
  EXPECT_EQ(ops::max_abs_diff(a.q_logits, b.q_logits), 0.0F);
  std::remove(path.c_str());
}

TEST(two_head_network, backward_requires_matching_forward_kind) {
  core::two_head_network net(small_config());
  util::rng gen(13);
  const tensor x = tensor::randn(shape{2, 3, 16, 16}, gen);
  net.forward_approximator(x, true);
  EXPECT_THROW(net.backward(tensor(shape{2, 6}), tensor(shape{2})),
               util::error);
  net.forward(x, true);
  EXPECT_THROW(net.backward_approximator(tensor(shape{2, 6})), util::error);
}

TEST(two_head_network, works_for_every_edge_family) {
  for (const auto family :
       {models::model_family::mobilenet, models::model_family::shufflenet,
        models::model_family::efficientnet}) {
    core::two_head_network net(small_config(family));
    util::rng gen(15);
    const tensor x = tensor::randn(shape{1, 3, 16, 16}, gen);
    const core::two_head_output out = net.forward(x, false);
    EXPECT_EQ(out.logits.dims(), shape({1, 6}))
        << models::family_name(family);
  }
}

}  // namespace
