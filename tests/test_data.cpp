// Tests for the synthetic dataset generator, presets, loader, augmentation.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/augment.hpp"
#include "data/dataloader.hpp"
#include "data/presets.hpp"
#include "data/synthetic.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace {

using namespace appeal;

data::synthetic_config small_config() {
  data::synthetic_config cfg;
  cfg.num_classes = 5;
  cfg.image_size = 12;
  cfg.sample_count = 300;
  cfg.class_seed = 11;
  cfg.sample_seed = 22;
  return cfg;
}

TEST(synthetic_dataset, is_deterministic_for_fixed_seeds) {
  const data::synthetic_dataset a(small_config());
  const data::synthetic_dataset b(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 37) {
    EXPECT_EQ(a.get(i).label, b.get(i).label);
    EXPECT_EQ(a.get(i).difficulty, b.get(i).difficulty);
    EXPECT_EQ(ops::max_abs_diff(a.get(i).image, b.get(i).image), 0.0F);
  }
}

TEST(synthetic_dataset, different_sample_seed_changes_samples_not_classes) {
  data::synthetic_config cfg = small_config();
  const data::synthetic_dataset a(cfg);
  cfg.sample_seed = 33;
  const data::synthetic_dataset b(cfg);
  // Same class prototypes...
  for (std::size_t k = 0; k < cfg.num_classes; ++k) {
    EXPECT_EQ(ops::max_abs_diff(a.prototypes()[k], b.prototypes()[k]), 0.0F);
  }
  // ...different sample streams.
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.get(i).label != b.get(i).label ||
        ops::max_abs_diff(a.get(i).image, b.get(i).image) > 0.0F) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(synthetic_dataset, labels_and_difficulties_in_range) {
  const data::synthetic_dataset ds(small_config());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_LT(ds.get(i).label, 5U);
    EXPECT_GE(ds.get(i).difficulty, 0.0F);
    EXPECT_LE(ds.get(i).difficulty, 1.0F);
    EXPECT_FALSE(ds.get(i).image.has_non_finite());
  }
}

TEST(synthetic_dataset, classes_are_roughly_balanced) {
  data::synthetic_config cfg = small_config();
  cfg.sample_count = 2000;
  const data::synthetic_dataset ds(cfg);
  const auto hist = data::class_histogram(ds);
  for (const std::size_t count : hist) {
    EXPECT_NEAR(static_cast<double>(count), 400.0, 100.0);
  }
}

TEST(synthetic_dataset, difficulty_correlates_with_distance_from_prototype) {
  // Harder samples should deviate more from their class prototype — the
  // generator's core property (difficulty is visible in pixel space).
  data::synthetic_config cfg = small_config();
  cfg.sample_count = 1500;
  const data::synthetic_dataset ds(cfg);

  double easy_distance = 0.0;
  double hard_distance = 0.0;
  std::size_t easy_count = 0;
  std::size_t hard_count = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const data::sample& s = ds.get(i);
    const tensor diff = ops::subtract(s.image, ds.prototypes()[s.label]);
    const double dist = ops::l2_norm(diff);
    if (s.difficulty < 0.2F) {
      easy_distance += dist;
      ++easy_count;
    } else if (s.difficulty > 0.7F) {
      hard_distance += dist;
      ++hard_count;
    }
  }
  ASSERT_GT(easy_count, 10U);
  ASSERT_GT(hard_count, 10U);
  EXPECT_GT(hard_distance / static_cast<double>(hard_count),
            1.5 * easy_distance / static_cast<double>(easy_count));
}

TEST(synthetic_dataset, tail_fraction_controls_hard_mass) {
  data::synthetic_config cfg = small_config();
  cfg.sample_count = 3000;
  cfg.tail_fraction = 0.0;
  const data::synthetic_dataset no_tail(cfg);
  cfg.tail_fraction = 0.5;
  const data::synthetic_dataset heavy_tail(cfg);

  const auto hard_fraction = [](const data::synthetic_dataset& ds) {
    std::size_t hard = 0;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      if (ds.get(i).difficulty >= 0.55F) ++hard;
    }
    return static_cast<double>(hard) / static_cast<double>(ds.size());
  };
  EXPECT_NEAR(hard_fraction(no_tail), 0.0, 1e-9);
  EXPECT_NEAR(hard_fraction(heavy_tail), 0.5, 0.05);
}

TEST(synthetic_dataset, confusers_differ_from_class) {
  const data::synthetic_dataset ds(small_config());
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_NE(ds.confuser_of(k, 0), k);
    EXPECT_NE(ds.confuser_of(k, 1), k);
  }
}

TEST(synthetic_dataset, validates_config) {
  data::synthetic_config cfg = small_config();
  cfg.num_classes = 1;
  EXPECT_THROW(data::synthetic_dataset{cfg}, util::error);
  cfg = small_config();
  cfg.blend_strength = 1.0F;
  EXPECT_THROW(data::synthetic_dataset{cfg}, util::error);
}

TEST(presets, parse_and_names) {
  EXPECT_EQ(data::parse_preset("gtsrb"), data::preset::gtsrb_like);
  EXPECT_EQ(data::parse_preset("cifar10_like"), data::preset::cifar10_like);
  EXPECT_EQ(data::parse_preset("CIFAR100"), data::preset::cifar100_like);
  EXPECT_EQ(data::parse_preset("tiny_imagenet"),
            data::preset::tiny_imagenet_like);
  EXPECT_THROW(data::parse_preset("imagenet21k"), util::error);
  EXPECT_EQ(data::all_presets().size(), 4U);
}

TEST(presets, class_counts_match_paper) {
  EXPECT_EQ(data::preset_config(data::preset::gtsrb_like, 1).num_classes, 43U);
  EXPECT_EQ(data::preset_config(data::preset::cifar10_like, 1).num_classes,
            10U);
  EXPECT_EQ(data::preset_config(data::preset::cifar100_like, 1).num_classes,
            100U);
  EXPECT_EQ(
      data::preset_config(data::preset::tiny_imagenet_like, 1).num_classes,
      200U);
}

TEST(presets, small_bundle_has_three_consistent_splits) {
  const data::dataset_bundle bundle =
      data::make_small_bundle(data::preset::cifar10_like, 5);
  ASSERT_NE(bundle.train, nullptr);
  ASSERT_NE(bundle.val, nullptr);
  ASSERT_NE(bundle.test, nullptr);
  EXPECT_GT(bundle.train->size(), bundle.val->size());
  EXPECT_EQ(bundle.train->num_classes(), bundle.test->num_classes());
  // Shared prototypes across splits.
  EXPECT_EQ(ops::max_abs_diff(bundle.train->prototypes()[0],
                              bundle.test->prototypes()[0]),
            0.0F);
}

TEST(batching, make_batch_stacks_rows) {
  const data::synthetic_dataset ds(small_config());
  const data::batch b = data::make_batch(ds, {3, 7, 11});
  EXPECT_EQ(b.images.dims(), shape({3, 3, 12, 12}));
  EXPECT_EQ(b.labels.size(), 3U);
  EXPECT_EQ(b.labels[1], ds.get(7).label);
  // Pixel content is copied verbatim.
  const data::sample& s = ds.get(11);
  for (std::size_t i = 0; i < s.image.size(); ++i) {
    ASSERT_EQ(b.images[2 * s.image.size() + i], s.image[i]);
  }
  EXPECT_THROW(data::make_batch(ds, {ds.size()}), util::error);
  EXPECT_THROW(data::make_batch(ds, {}), util::error);
}

TEST(data_loader, epoch_covers_every_index_exactly_once) {
  const data::synthetic_dataset ds(small_config());
  data::data_loader loader(ds, 64, /*shuffle=*/true, util::rng(3));
  EXPECT_EQ(loader.batches_per_epoch(), (300 + 63) / 64);

  std::multiset<std::size_t> seen;
  while (auto b = loader.next()) {
    for (const std::size_t idx : b->indices) seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(seen.count(i), 1U);
  }
}

TEST(data_loader, shuffle_changes_order_between_epochs) {
  const data::synthetic_dataset ds(small_config());
  data::data_loader loader(ds, 300, /*shuffle=*/true, util::rng(7));
  const auto first = loader.next()->indices;
  loader.start_epoch();
  const auto second = loader.next()->indices;
  EXPECT_NE(first, second);
}

TEST(data_loader, unshuffled_order_is_sequential) {
  const data::synthetic_dataset ds(small_config());
  data::data_loader loader(ds, 100, /*shuffle=*/false, util::rng(7));
  const auto b = loader.next();
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_EQ(b->indices[i], i);
  }
}

TEST(augment, preserves_shape_and_is_bounded) {
  const data::synthetic_dataset ds(small_config());
  data::batch b = data::make_batch(ds, {0, 1, 2, 3});
  const tensor before = b.images;
  util::rng gen(9);
  data::augment_config cfg;
  cfg.max_shift = 2;
  cfg.flip_probability = 0.5;
  cfg.noise_sigma = 0.01F;
  data::augment_batch(b.images, gen, cfg);
  EXPECT_EQ(b.images.dims(), before.dims());
  EXPECT_FALSE(b.images.has_non_finite());
  // Something actually changed.
  EXPECT_GT(ops::max_abs_diff(b.images, before), 0.0F);
}

TEST(augment, zero_policy_with_flip_only_preserves_pixels_multiset) {
  const data::synthetic_dataset ds(small_config());
  data::batch b = data::make_batch(ds, {5});
  const tensor before = b.images;
  util::rng gen(1);
  data::augment_config cfg;
  cfg.max_shift = 0;
  cfg.flip_probability = 1.0;
  cfg.noise_sigma = 0.0F;
  data::augment_batch(b.images, gen, cfg);
  // A pure horizontal flip permutes pixels within each row.
  std::multiset<float> pa(before.values().begin(), before.values().end());
  std::multiset<float> pb(b.images.values().begin(), b.images.values().end());
  EXPECT_EQ(pa, pb);
  // Double flip restores the original exactly.
  data::augment_batch(b.images, gen, cfg);
  EXPECT_EQ(ops::max_abs_diff(b.images, before), 0.0F);
}

}  // namespace
