// Pipeline-node framework tests: node_queue semantics, topological drain
// ordering, upstream backpressure propagation, per-node conservation
// ledgers against engine-level stats, and lossless shutdown with items
// still in flight.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/engine.hpp"
#include "serve/pipeline/node_queue.hpp"
#include "serve/pipeline/pipeline_node.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;
using serve::pipeline::node_queue;

// ------------------------------------------------------------ node_queue

TEST(node_queue, fifo_and_capacity) {
  node_queue<int> q(2);
  EXPECT_EQ(q.capacity(), 2U);
  EXPECT_EQ(q.try_push(1), node_queue<int>::push_result::ok);
  EXPECT_EQ(q.try_push(2), node_queue<int>::push_result::ok);
  EXPECT_EQ(q.try_push(3), node_queue<int>::push_result::full);
  int out = 0;
  ASSERT_EQ(q.pop(out), node_queue<int>::pop_result::item);
  EXPECT_EQ(out, 1);
  ASSERT_EQ(q.pop(out), node_queue<int>::pop_result::item);
  EXPECT_EQ(out, 2);
}

TEST(node_queue, close_drains_before_reporting_closed) {
  node_queue<int> q(4);
  ASSERT_TRUE(q.push(7));
  ASSERT_TRUE(q.push(8));
  q.close();
  EXPECT_FALSE(q.push(9));
  EXPECT_EQ(q.try_push(9), node_queue<int>::push_result::closed);
  int out = 0;
  ASSERT_EQ(q.pop(out), node_queue<int>::pop_result::item);
  EXPECT_EQ(out, 7);
  ASSERT_EQ(q.pop(out), node_queue<int>::pop_result::item);
  EXPECT_EQ(out, 8);
  EXPECT_EQ(q.pop(out), node_queue<int>::pop_result::closed);
}

TEST(node_queue, full_push_blocks_until_pop) {
  node_queue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2));  // blocks: queue is full
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load()) << "push must block while the queue is full";
  int out = 0;
  ASSERT_EQ(q.pop(out), node_queue<int>::pop_result::item);
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_EQ(q.pop(out), node_queue<int>::pop_result::item);
  EXPECT_EQ(out, 2);
}

// --------------------------------------------- graph lifecycle (toy nodes)

/// Minimal worker node moving ints from its input queue to an optional
/// downstream queue, recording when its input was closed.
class relay_node final : public serve::pipeline::pipeline_node {
 public:
  relay_node(const std::string& name, std::size_t depth,
             node_queue<int>* downstream, std::vector<std::string>& close_log,
             std::mutex& log_mutex)
      : pipeline_node(name, ""),
        input_(depth),
        downstream_(downstream),
        close_log_(close_log),
        log_mutex_(log_mutex) {}

  node_queue<int>& input() { return input_; }

  void start() override {
    thread_ = std::thread([this] {
      int item = 0;
      while (input_.pop(item) == node_queue<int>::pop_result::item) {
        count_in();
        if (downstream_ != nullptr) {
          if (!downstream_->push(std::move(item))) return;
          count_out();
        } else {
          count_egress();
        }
      }
    });
  }
  void close_input() override {
    {
      std::lock_guard<std::mutex> lock(log_mutex_);
      close_log_.push_back(name());
    }
    input_.close();
  }
  void join() override {
    if (thread_.joinable()) thread_.join();
  }

 private:
  node_queue<int> input_;
  node_queue<int>* downstream_;
  std::vector<std::string>& close_log_;
  std::mutex& log_mutex_;
  std::thread thread_;
};

TEST(pipeline_graph, drains_in_topological_order_and_loses_nothing) {
  std::vector<std::string> close_log;
  std::mutex log_mutex;
  relay_node sink("sink", 2, nullptr, close_log, log_mutex);
  relay_node mid("mid", 2, &sink.input(), close_log, log_mutex);
  relay_node head("head", 2, &mid.input(), close_log, log_mutex);

  serve::pipeline::pipeline_graph graph;
  graph.add(head);
  graph.add(mid);
  graph.add(sink);
  graph.start_all();

  const int n = 100;
  for (int i = 0; i < n; ++i) ASSERT_TRUE(head.input().push(int(i)));
  graph.drain_and_stop();

  EXPECT_EQ(close_log, (std::vector<std::string>{"head", "mid", "sink"}));
  // Nothing stranded: every node balanced, the head's intake reached the
  // sink's egress.
  for (const auto& s : graph.stats()) {
    EXPECT_EQ(s.in, s.out + s.egress) << "node " << s.name;
  }
  EXPECT_EQ(head.in_count(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(sink.egress_count(), static_cast<std::uint64_t>(n));
  // Idempotent.
  graph.drain_and_stop();
  EXPECT_EQ(close_log.size(), 3U);
}

// ----------------------------------------------------- engine integration

struct population {
  std::vector<std::size_t> labels;
  std::vector<std::size_t> little;
  std::vector<std::size_t> big;
  std::vector<double> scores;
};

population make_population(std::size_t n, std::uint64_t seed) {
  util::rng gen(seed);
  population p;
  p.labels.resize(n);
  p.little.resize(n);
  p.big.resize(n);
  p.scores.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.labels[i] = i % 10;
    const bool little_right = gen.bernoulli(0.8);
    p.little[i] = little_right ? p.labels[i] : (p.labels[i] + 1) % 10;
    p.big[i] = gen.bernoulli(0.97) ? p.labels[i] : (p.labels[i] + 2) % 10;
    p.scores[i] = little_right ? 0.5 + 0.5 * gen.uniform()
                               : 0.7 * gen.uniform();
  }
  return p;
}

serve::engine_config fast_config() {
  serve::engine_config cfg;
  cfg.batching.max_batch_size = 16;
  cfg.batching.max_wait = std::chrono::microseconds(200);
  cfg.num_workers = 2;
  cfg.queue_capacity = 256;
  cfg.channel.time_scale = 0.0;
  return cfg;
}

/// Asserts the full conservation chain over an engine's node ledgers.
/// Call after shutdown(): a producer bumps its out-ledger only after the
/// hand-off push returns, so the books are guaranteed balanced once the
/// graph's threads are joined, not merely once every promise resolved.
void expect_conserved(const serve::engine& eng) {
  const std::vector<serve::pipeline::node_stats> nodes = eng.node_stats();
  ASSERT_EQ(nodes.size(), 5U);
  for (const auto& s : nodes) {
    EXPECT_EQ(s.in, s.out + s.egress) << "node " << s.name << " leaks";
  }
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    EXPECT_EQ(nodes[i].out, nodes[i + 1].in)
        << nodes[i].name << " -> " << nodes[i + 1].name << " hand-off";
  }
  const serve::stats_snapshot s = eng.snapshot();
  std::uint64_t egress_total = 0;
  for (const auto& node : nodes) egress_total += node.egress;
  EXPECT_EQ(nodes.front().in, s.submitted);
  EXPECT_EQ(egress_total, s.submitted);
  EXPECT_EQ(egress_total, s.completed + s.shed + s.expired + s.cloud_expired);
}

TEST(pipeline_engine, node_ledgers_reconcile_with_engine_stats) {
  const std::size_t n = 4000;
  const population p = make_population(n, 61);
  serve::replay_edge_backend edge(p.little, p.scores);
  serve::replay_cloud_backend cloud(p.big);

  serve::engine_config cfg = fast_config();
  cfg.threshold.adapt = serve::threshold_config::mode::fixed;
  cfg.threshold.initial_delta = 0.55;
  serve::engine eng(cfg, serve::engine_resources::standalone(edge, cloud));

  std::vector<std::future<serve::response>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    serve::inference_request req;
    req.key = i;
    req.label = p.labels[i];
    // A third of the traffic carries deadlines; the 1 µs ones expire in
    // the queue, so the expired-egress leg of the ledger is exercised.
    if (i % 3 == 0) {
      req.deadline = std::chrono::microseconds(i % 6 == 0 ? 1 : 10'000'000);
    }
    futures.push_back(eng.submit(std::move(req)));
  }
  eng.drain();
  eng.shutdown();

  for (auto& f : futures) f.get();  // every promise resolved
  expect_conserved(eng);

  const serve::stats_snapshot s = eng.snapshot();
  EXPECT_GT(s.expired, 0U);
  EXPECT_GT(s.appealed, 0U);
  // Edge-kept + degraded + expired all egress at the decide node; cloud
  // completions at the sink.
  const auto nodes = eng.node_stats();
  EXPECT_EQ(nodes[3].name, "appeal_decide");
  EXPECT_EQ(nodes[3].egress,
            s.edge_kept + s.edge_degraded + s.expired);
  EXPECT_EQ(nodes[4].name, "cloud_appeal");
  EXPECT_EQ(nodes[4].egress, s.appealed + s.cloud_expired);
  EXPECT_EQ(nodes[4].out, 0U) << "the sink forwards nothing";
}

/// Edge backend whose infer() blocks until released — wedges the edge
/// stage so upstream queues fill and admission must react.
class gated_edge_backend : public serve::edge_backend {
 public:
  gated_edge_backend(std::vector<std::size_t> predictions,
                     std::vector<double> scores)
      : replay_(std::move(predictions), std::move(scores)) {}

  serve::edge_inference infer(
      const std::vector<serve::request>& batch) override {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_.fetch_add(1, std::memory_order_relaxed);
    cv_.wait(lock, [&] { return open_; });
    lock.unlock();
    return replay_.infer(batch);
  }

  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  std::size_t entered() const {
    return entered_.load(std::memory_order_relaxed);
  }

 private:
  serve::replay_edge_backend replay_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
  std::atomic<std::size_t> entered_{0};
};

TEST(pipeline_engine, backpressure_reaches_admission_when_a_stage_wedges) {
  const std::size_t n = 600;
  const population p = make_population(n, 67);
  gated_edge_backend edge(p.little, p.scores);
  serve::replay_cloud_backend cloud(p.big);

  serve::engine_config cfg = fast_config();
  cfg.threshold.adapt = serve::threshold_config::mode::fixed;
  cfg.threshold.initial_delta = 0.55;
  cfg.num_workers = 1;
  // Tiny everything: with the edge wedged, one batch in flight, one in
  // the hand-off queue, and a 16-deep request queue are all the system
  // can hold — the rest must shed at the front door.
  cfg.queue_capacity = 16;
  cfg.batching.max_batch_size = 4;
  cfg.pipeline.batch_queue_depth = 1;
  cfg.pipeline.decide_queue_depth = 1;
  cfg.admission.policy = serve::admission_policy::shed;
  serve::engine eng(cfg, serve::engine_resources::standalone(edge, cloud));

  std::vector<std::future<serve::response>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(eng.submit(tensor(), i, p.labels[i]));
  }
  // The wedge held: at most one batch entered the edge stage, and the
  // bounded queues forced admission to shed instead of buffering.
  EXPECT_LE(edge.entered(), 1U);
  EXPECT_GT(eng.admission().shed(), 0U)
      << "backpressure never reached the admission controller";

  edge.open();
  eng.drain();
  eng.shutdown();
  std::size_t ok = 0;
  std::size_t shed = 0;
  for (auto& f : futures) {
    const serve::response r = f.get();
    if (r.status == serve::request_status::shed) {
      ++shed;
    } else {
      ++ok;
    }
  }
  EXPECT_EQ(ok + shed, n);
  EXPECT_GT(ok, 0U);
  EXPECT_GT(shed, 0U);
  expect_conserved(eng);
  const auto nodes = eng.node_stats();
  EXPECT_EQ(nodes[0].name, "ingress");
  EXPECT_EQ(nodes[0].egress, static_cast<std::uint64_t>(shed));
}

TEST(pipeline_engine, shutdown_with_in_flight_items_loses_nothing) {
  const std::size_t n = 2000;
  const population p = make_population(n, 71);
  serve::replay_edge_backend edge(p.little, p.scores);
  serve::replay_cloud_backend cloud(p.big);

  serve::engine_config cfg = fast_config();
  cfg.threshold.adapt = serve::threshold_config::mode::fixed;
  cfg.threshold.initial_delta = 0.55;
  serve::engine eng(cfg, serve::engine_resources::standalone(edge, cloud));

  std::vector<std::future<serve::response>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(eng.submit(tensor(), i, p.labels[i]));
  }
  // No drain: shut down with the queues still loaded. The topological
  // close must flush every stage — a broken promise here would throw.
  eng.shutdown();
  for (auto& f : futures) {
    const serve::response r = f.get();
    EXPECT_EQ(r.status, serve::request_status::ok);
  }
  expect_conserved(eng);
  const serve::stats_snapshot s = eng.snapshot();
  EXPECT_EQ(s.completed, n);
}

TEST(pipeline_engine, unified_constructor_matches_legacy_shims) {
  const std::size_t n = 1000;
  const population p = make_population(n, 73);
  const double delta = 0.55;

  auto run = [&](serve::engine& eng) {
    for (std::size_t i = 0; i < n; ++i) {
      eng.submit(tensor(), i, p.labels[i]);
    }
    eng.drain();
    return eng.stats().snapshot();
  };

  serve::engine_config cfg = fast_config();
  cfg.threshold.adapt = serve::threshold_config::mode::fixed;
  cfg.threshold.initial_delta = delta;

  serve::replay_edge_backend edge(p.little, p.scores);
  serve::replay_cloud_backend cloud(p.big);
  serve::engine unified(cfg,
                        serve::engine_resources::standalone(edge, cloud));
  const serve::stats_snapshot a = run(unified);

  // A second independently-built standalone engine must serve the same
  // replay workload identically (resource wiring is stateless).
  serve::replay_edge_backend edge2(p.little, p.scores);
  serve::replay_cloud_backend cloud2(p.big);
  serve::engine again(cfg, serve::engine_resources::standalone(edge2, cloud2));
  const serve::stats_snapshot b = run(again);

  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.edge_kept, b.edge_kept);
  EXPECT_EQ(a.appealed, b.appealed);
  EXPECT_DOUBLE_EQ(a.online_accuracy, b.online_accuracy);

  serve::engine owning(
      cfg, serve::engine_resources::owning(
               cfg,
               [&p](std::size_t) {
                 return std::make_unique<serve::replay_edge_backend>(
                     p.little, p.scores);
               },
               [&p] {
                 return std::make_unique<serve::replay_cloud_backend>(p.big);
               }));
  const serve::stats_snapshot c = run(owning);
  EXPECT_EQ(a.edge_kept, c.edge_kept);
  EXPECT_EQ(a.appealed, c.appealed);
}

}  // namespace
