// Tests for the dynamic batcher: size-triggered vs timeout-triggered
// flushes, close/drain semantics. (request_queue has its own suite in
// test_serve_queue.cpp.)
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "serve/batcher.hpp"
#include "serve/request_queue.hpp"
#include "util/error.hpp"

namespace {

using namespace appeal;
using namespace std::chrono_literals;

serve::request make_request(std::uint64_t id) {
  serve::request r;
  r.id = id;
  r.key = id;
  r.enqueue_time = std::chrono::steady_clock::now();
  return r;
}

TEST(batcher, size_triggered_flush_does_not_wait) {
  serve::request_queue queue(32);
  serve::batch_policy policy;
  policy.max_batch_size = 4;
  policy.max_wait = std::chrono::microseconds(10'000'000);  // "forever"
  serve::batcher form(queue, policy);

  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.push(make_request(i)));
  }
  const auto before = std::chrono::steady_clock::now();
  const serve::batch b = form.next_batch();
  const auto took = std::chrono::steady_clock::now() - before;

  EXPECT_EQ(b.requests.size(), 4U);
  EXPECT_EQ(b.reason, serve::flush_reason::batch_full);
  // A full queue must flush immediately, far below the 10 s wait bound.
  EXPECT_LT(took, 1s);
}

TEST(batcher, timeout_triggered_flush_emits_partial_batch) {
  serve::request_queue queue(32);
  serve::batch_policy policy;
  policy.max_batch_size = 16;
  policy.max_wait = std::chrono::microseconds(5000);  // 5 ms
  serve::batcher form(queue, policy);

  ASSERT_TRUE(queue.push(make_request(7)));
  const serve::batch b = form.next_batch();
  EXPECT_EQ(b.requests.size(), 1U);
  EXPECT_EQ(b.reason, serve::flush_reason::wait_expired);
  EXPECT_EQ(b.requests.front().id, 7U);
}

TEST(batcher, close_flushes_remainder_then_reports_closed) {
  serve::request_queue queue(32);
  serve::batch_policy policy;
  policy.max_batch_size = 16;
  policy.max_wait = std::chrono::microseconds(10'000'000);
  serve::batcher form(queue, policy);

  ASSERT_TRUE(queue.push(make_request(1)));
  ASSERT_TRUE(queue.push(make_request(2)));
  queue.close();

  const serve::batch partial = form.next_batch();
  EXPECT_EQ(partial.requests.size(), 2U);
  EXPECT_EQ(partial.reason, serve::flush_reason::queue_closed);

  const serve::batch done = form.next_batch();
  EXPECT_TRUE(done.empty());
  EXPECT_EQ(done.reason, serve::flush_reason::queue_closed);
}

TEST(batcher, tight_deadline_caps_the_flush_wait) {
  // A request whose deadline lands inside the max_wait window must not
  // wait out the whole window (that would guarantee expiry at the
  // worker): the flush fires at the tightest member deadline instead.
  serve::request_queue queue(32);
  serve::batch_policy policy;
  policy.max_batch_size = 16;
  policy.max_wait = std::chrono::microseconds(10'000'000);  // "forever"
  serve::batcher form(queue, policy);

  serve::request tight = make_request(11);
  tight.deadline = std::chrono::steady_clock::now() + 20ms;
  ASSERT_TRUE(queue.push(std::move(tight)));
  const auto before = std::chrono::steady_clock::now();
  const serve::batch b = form.next_batch();
  const auto took = std::chrono::steady_clock::now() - before;

  EXPECT_EQ(b.requests.size(), 1U);
  EXPECT_EQ(b.reason, serve::flush_reason::wait_expired);
  EXPECT_LT(took, 5s) << "flush must not wait out max_wait";
  // The request is still alive at flush time (the whole point): its
  // deadline had not passed when the batch formed.
  EXPECT_EQ(b.requests.front().id, 11U);
}

TEST(batcher, late_arrival_with_tight_deadline_shortens_the_window) {
  // The first request has no deadline; a follower with a tight one joins
  // the forming batch and must pull the flush forward for everyone.
  serve::request_queue queue(32);
  serve::batch_policy policy;
  policy.max_batch_size = 16;
  policy.max_wait = std::chrono::microseconds(10'000'000);
  serve::batcher form(queue, policy);

  ASSERT_TRUE(queue.push(make_request(1)));
  std::thread producer([&queue] {
    std::this_thread::sleep_for(5ms);
    serve::request tight = make_request(2);
    tight.deadline = std::chrono::steady_clock::now() + 20ms;
    ASSERT_TRUE(queue.push(std::move(tight)));
  });
  const auto before = std::chrono::steady_clock::now();
  const serve::batch b = form.next_batch();
  const auto took = std::chrono::steady_clock::now() - before;
  producer.join();

  EXPECT_EQ(b.requests.size(), 2U);
  EXPECT_EQ(b.reason, serve::flush_reason::wait_expired);
  EXPECT_LT(took, 5s) << "the follower's deadline must cap the flush";
}

TEST(batcher, invalid_policy_throws) {
  serve::request_queue queue(4);
  serve::batch_policy policy;
  policy.max_batch_size = 0;
  EXPECT_THROW(serve::batcher(queue, policy), util::error);
}

}  // namespace
