// Tests for the serving request queue and dynamic batcher: size-triggered
// vs timeout-triggered flushes, close/drain semantics, backpressure.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "serve/batcher.hpp"
#include "serve/request_queue.hpp"
#include "util/error.hpp"

namespace {

using namespace appeal;
using namespace std::chrono_literals;

serve::request make_request(std::uint64_t id) {
  serve::request r;
  r.id = id;
  r.key = id;
  r.enqueue_time = std::chrono::steady_clock::now();
  return r;
}

TEST(request_queue, fifo_and_size) {
  serve::request_queue queue(8);
  EXPECT_EQ(queue.size(), 0U);
  ASSERT_TRUE(queue.push(make_request(1)));
  ASSERT_TRUE(queue.push(make_request(2)));
  EXPECT_EQ(queue.size(), 2U);

  serve::request out;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.id, 1U);
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.id, 2U);
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(request_queue, close_fails_pushes_and_drains_pops) {
  serve::request_queue queue(4);
  ASSERT_TRUE(queue.push(make_request(1)));
  queue.close();
  EXPECT_FALSE(queue.push(make_request(2)));

  serve::request out;
  const auto deadline = std::chrono::steady_clock::now() + 100ms;
  EXPECT_EQ(queue.pop_until(out, deadline),
            serve::request_queue::pop_result::item);
  EXPECT_EQ(out.id, 1U);
  EXPECT_EQ(queue.pop_until(out, deadline),
            serve::request_queue::pop_result::closed);
}

TEST(request_queue, pop_times_out_when_empty) {
  serve::request_queue queue(4);
  serve::request out;
  const auto deadline = std::chrono::steady_clock::now() + 10ms;
  EXPECT_EQ(queue.pop_until(out, deadline),
            serve::request_queue::pop_result::timed_out);
}

TEST(request_queue, push_blocks_until_capacity_frees) {
  serve::request_queue queue(1);
  ASSERT_TRUE(queue.push(make_request(1)));

  std::thread producer([&] { EXPECT_TRUE(queue.push(make_request(2))); });
  std::this_thread::sleep_for(20ms);  // producer should now be blocked
  serve::request out;
  ASSERT_TRUE(queue.try_pop(out));
  producer.join();
  EXPECT_EQ(queue.size(), 1U);
}

TEST(request_queue, zero_capacity_throws) {
  EXPECT_THROW(serve::request_queue(0), util::error);
}

TEST(batcher, size_triggered_flush_does_not_wait) {
  serve::request_queue queue(32);
  serve::batch_policy policy;
  policy.max_batch_size = 4;
  policy.max_wait = std::chrono::microseconds(10'000'000);  // "forever"
  serve::batcher form(queue, policy);

  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.push(make_request(i)));
  }
  const auto before = std::chrono::steady_clock::now();
  const serve::batch b = form.next_batch();
  const auto took = std::chrono::steady_clock::now() - before;

  EXPECT_EQ(b.requests.size(), 4U);
  EXPECT_EQ(b.reason, serve::flush_reason::batch_full);
  // A full queue must flush immediately, far below the 10 s wait bound.
  EXPECT_LT(took, 1s);
}

TEST(batcher, timeout_triggered_flush_emits_partial_batch) {
  serve::request_queue queue(32);
  serve::batch_policy policy;
  policy.max_batch_size = 16;
  policy.max_wait = std::chrono::microseconds(5000);  // 5 ms
  serve::batcher form(queue, policy);

  ASSERT_TRUE(queue.push(make_request(7)));
  const serve::batch b = form.next_batch();
  EXPECT_EQ(b.requests.size(), 1U);
  EXPECT_EQ(b.reason, serve::flush_reason::wait_expired);
  EXPECT_EQ(b.requests.front().id, 7U);
}

TEST(batcher, close_flushes_remainder_then_reports_closed) {
  serve::request_queue queue(32);
  serve::batch_policy policy;
  policy.max_batch_size = 16;
  policy.max_wait = std::chrono::microseconds(10'000'000);
  serve::batcher form(queue, policy);

  ASSERT_TRUE(queue.push(make_request(1)));
  ASSERT_TRUE(queue.push(make_request(2)));
  queue.close();

  const serve::batch partial = form.next_batch();
  EXPECT_EQ(partial.requests.size(), 2U);
  EXPECT_EQ(partial.reason, serve::flush_reason::queue_closed);

  const serve::batch done = form.next_batch();
  EXPECT_TRUE(done.empty());
  EXPECT_EQ(done.reason, serve::flush_reason::queue_closed);
}

TEST(batcher, invalid_policy_throws) {
  serve::request_queue queue(4);
  serve::batch_policy policy;
  policy.max_batch_size = 0;
  EXPECT_THROW(serve::batcher(queue, policy), util::error);
}

}  // namespace
