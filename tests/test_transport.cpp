// Transport-layer tests: UDS and TCP loopback against an in-process
// stub_server, cloud_channel coalescing (window and opportunistic),
// demux under adversarial response reordering, the simulator transport's
// counters, and graceful local fallback when the link dies mid-run.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <unistd.h>
#include <vector>

#include "collab/cost_model.hpp"
#include "serve/cloud_channel.hpp"
#include "serve/engine.hpp"
#include "serve/transport/socket_transport.hpp"
#include "serve/transport/socket_util.hpp"
#include "serve/transport/stub_server.hpp"
#include "serve/transport/synthetic_scorer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;
using namespace appeal::serve;

std::string unique_uds_path(const char* tag) {
  static std::atomic<int> counter{0};
  return "/tmp/appeal-test-" + std::to_string(::getpid()) + "-" + tag + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// Scorer the stub-side tests share: a deterministic function of the key.
std::size_t key_scorer(const wire::appeal_record& a) {
  return static_cast<std::size_t>(a.key % 10);
}

request make_request(std::uint64_t key) {
  request r;
  r.id = key;
  r.key = key;
  r.enqueue_time = std::chrono::steady_clock::now();
  return r;
}

/// Collects transport completions for assertions.
struct completion_sink {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<cloud_transport::completion> all;

  cloud_transport::completion_sink fn() {
    return [this](std::vector<cloud_transport::completion>&& batch) {
      std::lock_guard<std::mutex> lock(mutex);
      for (const auto& c : batch) all.push_back(c);
      cv.notify_all();
    };
  }

  void wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return all.size() >= n; }))
        << "timed out with " << all.size() << "/" << n << " completions";
  }
};

void exercise_socket_transport(transport_kind kind,
                               const std::string& listen_endpoint) {
  stub_server_config server_cfg;
  server_cfg.kind = kind;
  server_cfg.endpoint = listen_endpoint;
  stub_server server(server_cfg, key_scorer);
  server.start();
  const std::string endpoint =
      kind == transport_kind::tcp
          ? "127.0.0.1:" + std::to_string(server.tcp_port())
          : listen_endpoint;

  socket_transport transport(kind, endpoint);
  completion_sink sink;
  std::atomic<bool> failed{false};
  transport.start(sink.fn(), [&] { failed = true; });

  const std::size_t n = 9;
  std::vector<request> requests;
  for (std::size_t i = 0; i < n; ++i) requests.push_back(make_request(i));
  std::vector<const request*> batch;
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(&requests[i]);
    ids.push_back(100 + i);
  }
  // Two frames over one connection: a batch of n-1 and a single.
  transport.send_batch({batch.begin(), batch.end() - 1},
                       {ids.begin(), ids.end() - 1}, "test");
  transport.send_batch({batch.back()}, {ids.back()}, "test");
  sink.wait_for(n);

  for (const auto& c : sink.all) {
    ASSERT_GE(c.id, 100U);
    EXPECT_EQ(c.prediction, (c.id - 100) % 10) << "wrong demuxed prediction";
  }
  const transport_counters tc = transport.counters();
  EXPECT_EQ(tc.batches_sent, 2U);
  EXPECT_EQ(tc.appeals_sent, n);
  EXPECT_GT(tc.bytes_sent, 0U);
  EXPECT_GT(tc.bytes_received, 0U);
  transport.stop();
  EXPECT_FALSE(failed.load()) << "clean stop must not fire on_failure";
  server.stop();
  const stub_server_counters sc = server.counters();
  EXPECT_EQ(sc.appeals, n);
  EXPECT_EQ(sc.connections, 1U);
}

TEST(transport, uds_loopback_round_trip) {
  exercise_socket_transport(transport_kind::uds, unique_uds_path("uds"));
}

TEST(transport, tcp_loopback_round_trip) {
  // Port 0: the stub binds an ephemeral port the test reads back.
  exercise_socket_transport(transport_kind::tcp, "127.0.0.1:0");
}

TEST(transport, demux_survives_reordered_split_responses) {
  // Adversarial cloud: reads one appeal batch, answers it in REVERSE
  // order, one response frame per appeal. The channel must still hand
  // every request its own prediction.
  const std::string path = unique_uds_path("reorder");
  net::fd listener = net::listen_uds(path);
  std::thread cloud([&] {
    net::fd conn = net::accept_connection(listener);
    ASSERT_TRUE(conn.valid());
    wire::frame_splitter splitter;
    std::uint8_t chunk[4096];
    std::vector<wire::appeal_record> seen;
    while (seen.size() < 6) {
      const std::size_t n = net::read_some(conn, chunk, sizeof(chunk));
      ASSERT_GT(n, 0U);
      splitter.feed(chunk, n);
      while (std::optional<wire::frame> f = splitter.next()) {
        for (wire::appeal_record& a : wire::decode_appeal_batch(*f)) {
          seen.push_back(std::move(a));
        }
      }
    }
    for (auto it = seen.rbegin(); it != seen.rend(); ++it) {
      wire::response_record r;
      r.id = it->id;
      r.prediction = static_cast<std::size_t>(it->key * 7 % 10);
      const std::vector<std::uint8_t> one = wire::encode_response_batch({r});
      net::write_all(conn, one.data(), one.size());
    }
    // Hold the connection open until the client is done reading.
    (void)net::read_some(conn, chunk, sizeof(chunk));
  });

  {
    replay_cloud_backend fallback(std::vector<std::size_t>(16, 0));
    link_config cfg;
    cfg.transport = transport_kind::uds;
    cfg.endpoint = path;
    cfg.coalesce_window_ms = 200.0;  // pack all 6 into one frame
    cfg.max_batch_appeals = 6;
    cloud_channel channel(fallback, collab::cost_model{}, cfg, "reorder");

    std::mutex mutex;
    std::vector<std::pair<std::uint64_t, std::size_t>> done;
    for (std::uint64_t key = 0; key < 6; ++key) {
      channel.appeal(make_request(key),
                     [&](request&& r, std::size_t prediction, double) {
                       std::lock_guard<std::mutex> lock(mutex);
                       done.emplace_back(r.key, prediction);
                     });
    }
    channel.drain();
    ASSERT_EQ(done.size(), 6U);
    for (const auto& [key, prediction] : done) {
      EXPECT_EQ(prediction, key * 7 % 10) << "demux crossed appeals";
    }
    const link_counters lc = channel.counters();
    EXPECT_EQ(lc.wire.batches_sent, 1U) << "window should coalesce the burst";
    EXPECT_EQ(lc.wire.appeals_sent, 6U);
    EXPECT_EQ(lc.local_fallbacks, 0U);
  }
  listener.shutdown();
  cloud.join();
  ::unlink(path.c_str());
}

TEST(transport, sim_transport_counts_equivalent_wire_bytes) {
  std::vector<std::size_t> predictions;
  for (std::size_t i = 0; i < 8; ++i) predictions.push_back(i % 3);
  replay_cloud_backend backend(predictions);
  link_config cfg;
  cfg.time_scale = 0.0;
  cloud_channel channel(backend, collab::cost_model{}, cfg, "sim");
  std::atomic<std::size_t> completions{0};
  for (std::uint64_t key = 0; key < 8; ++key) {
    channel.appeal(make_request(key),
                   [&](request&&, std::size_t prediction, double) {
                     EXPECT_LT(prediction, 3U);
                     completions.fetch_add(1);
                   });
  }
  channel.drain();
  EXPECT_EQ(completions.load(), 8U);
  const link_counters lc = channel.counters();
  EXPECT_EQ(lc.wire.appeals_sent, 8U);
  EXPECT_GE(lc.wire.batches_sent, 1U);
  EXPECT_LE(lc.wire.batches_sent, 8U);
  // Every appeal carries at least its fixed wire fields.
  EXPECT_GE(lc.wire.bytes_sent, 8 * 44U);
  EXPECT_EQ(lc.completed, 8U);
  EXPECT_EQ(lc.local_fallbacks, 0U);
}

TEST(transport, channel_coalesces_bursts_under_window) {
  stub_server_config server_cfg;
  server_cfg.kind = transport_kind::uds;
  server_cfg.endpoint = unique_uds_path("coalesce");
  stub_server server(server_cfg, key_scorer);
  server.start();

  replay_cloud_backend fallback(std::vector<std::size_t>(64, 0));
  link_config cfg;
  cfg.transport = transport_kind::uds;
  cfg.endpoint = server_cfg.endpoint;
  cfg.coalesce_window_ms = 500.0;  // generous: CI machines stall
  cfg.max_batch_appeals = 16;
  cloud_channel channel(fallback, collab::cost_model{}, cfg, "burst");

  std::atomic<std::size_t> completions{0};
  for (std::uint64_t key = 0; key < 16; ++key) {
    channel.appeal(make_request(key),
                   [&](request&& r, std::size_t prediction, double link_ms) {
                     EXPECT_EQ(prediction, r.key % 10);
                     EXPECT_GE(link_ms, 0.0);
                     completions.fetch_add(1);
                   });
  }
  channel.drain();
  EXPECT_EQ(completions.load(), 16U);
  const link_counters lc = channel.counters();
  EXPECT_EQ(lc.wire.appeals_sent, 16U);
  // The window holds the frame open until the batch cap: one full batch
  // (the burst outruns the 500 ms window by orders of magnitude).
  EXPECT_EQ(lc.wire.batches_sent, 1U);
  EXPECT_DOUBLE_EQ(lc.wire.mean_appeals_per_batch(), 16.0);
}

TEST(transport, link_failure_falls_back_to_local_backend) {
  // All fallback answers come from a backend that always says class 7,
  // while the stub answers key % 10 — so the source of every completion
  // is observable.
  replay_cloud_backend fallback(std::vector<std::size_t>(64, 7));
  link_config cfg;
  cfg.transport = transport_kind::uds;
  cfg.endpoint = unique_uds_path("fail");
  stub_server_config scfg;
  scfg.kind = transport_kind::uds;
  scfg.endpoint = cfg.endpoint;
  stub_server stub(scfg, key_scorer);
  stub.start();

  cloud_channel channel(fallback, collab::cost_model{}, cfg, "failover");
  std::atomic<std::size_t> completions{0};
  // One appeal through the live stub proves the link worked...
  {
    std::promise<std::size_t> first;
    channel.appeal(make_request(3),
                   [&](request&&, std::size_t prediction, double) {
                     completions.fetch_add(1);
                     first.set_value(prediction);
                   });
    EXPECT_EQ(first.get_future().get(), 3U);
  }
  // ...then the cloud dies mid-run.
  stub.stop();
  for (std::uint64_t key = 10; key < 20; ++key) {
    channel.appeal(make_request(key),
                   [&](request&&, std::size_t prediction, double) {
                     EXPECT_EQ(prediction, 7U) << "must come from fallback";
                     completions.fetch_add(1);
                   });
  }
  channel.drain();  // must not hang: every appeal completes locally
  EXPECT_EQ(completions.load(), 11U);
  const link_counters lc = channel.counters();
  EXPECT_EQ(lc.completed, 11U);
  EXPECT_EQ(lc.local_fallbacks, 10U);
}

TEST(transport, silent_peer_trips_response_watchdog) {
  // A cloud that stays connected but never answers must not wedge
  // drain(): the response watchdog declares the link dead and the local
  // backend (always class 7) completes every outstanding appeal.
  const std::string path = unique_uds_path("blackhole");
  net::fd listener = net::listen_uds(path);
  std::atomic<bool> closing{false};
  std::thread black_hole([&] {
    net::fd conn = net::accept_connection(listener);
    if (!conn.valid()) return;
    std::uint8_t chunk[4096];
    while (!closing.load() && net::read_some(conn, chunk, sizeof(chunk)) > 0) {
    }
  });

  {
    replay_cloud_backend fallback(std::vector<std::size_t>(16, 7));
    link_config cfg;
    cfg.transport = transport_kind::uds;
    cfg.endpoint = path;
    cfg.response_timeout_ms = 200.0;
    cloud_channel channel(fallback, collab::cost_model{}, cfg, "blackhole");
    std::atomic<std::size_t> completions{0};
    for (std::uint64_t key = 0; key < 4; ++key) {
      channel.appeal(make_request(key),
                     [&](request&&, std::size_t prediction, double) {
                       EXPECT_EQ(prediction, 7U);
                       completions.fetch_add(1);
                     });
    }
    channel.drain();  // must terminate within the watchdog budget
    EXPECT_EQ(completions.load(), 4U);
    EXPECT_EQ(channel.counters().local_fallbacks, 4U);
  }
  closing.store(true);
  listener.shutdown();
  black_hole.join();
  ::unlink(path.c_str());
}

TEST(transport, engine_serves_identically_over_sim_and_uds) {
  // The scheduler-level invariant behind the CI loopback gate: a fixed-δ
  // engine routes and scores the same workload identically whether the
  // cloud answers over the simulator or a real socket, because the
  // stub's synthetic scorer IS the simulator's replay table.
  const std::size_t n = 512;
  const std::uint64_t seed = 1234;
  std::vector<std::size_t> labels(n), little(n), big(n);
  std::vector<double> scores(n);
  util::rng gen(seed);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = i % 10;
    const bool right = gen.bernoulli(0.8);
    little[i] = right ? labels[i] : (labels[i] + 1) % 10;
    big[i] = transport::synthetic_big_prediction(i, labels[i], 10, seed);
    scores[i] = right ? 0.5 + 0.5 * gen.uniform() : 0.7 * gen.uniform();
  }

  const auto run = [&](const link_config& channel_cfg) {
    replay_edge_backend edge(little, scores);
    replay_cloud_backend cloud(big);
    engine_config cfg;
    cfg.batching.max_batch_size = 16;
    cfg.batching.max_wait = std::chrono::microseconds(200);
    cfg.num_workers = 2;
    cfg.threshold.adapt = threshold_config::mode::fixed;
    cfg.threshold.initial_delta = 0.55;
    cfg.channel = channel_cfg;
    engine eng(cfg, edge, cloud);
    for (std::size_t i = 0; i < n; ++i) {
      eng.submit(tensor(), i, labels[i]);
    }
    eng.drain();
    return eng.snapshot();
  };

  link_config sim_cfg;
  sim_cfg.time_scale = 0.0;
  const stats_snapshot sim = run(sim_cfg);

  stub_server_config scfg;
  scfg.kind = transport_kind::uds;
  scfg.endpoint = unique_uds_path("engine");
  stub_server stub(scfg, [&](const wire::appeal_record& a) {
    return transport::synthetic_big_prediction(
        a.key, static_cast<std::size_t>(a.label), 10, seed);
  });
  stub.start();
  link_config uds_cfg;
  uds_cfg.transport = transport_kind::uds;
  uds_cfg.endpoint = scfg.endpoint;
  uds_cfg.coalesce_window_ms = 0.2;
  const stats_snapshot uds = run(uds_cfg);
  stub.stop();

  EXPECT_EQ(sim.completed, uds.completed);
  EXPECT_EQ(sim.appealed, uds.appealed);
  EXPECT_DOUBLE_EQ(sim.achieved_sr, uds.achieved_sr);
  EXPECT_DOUBLE_EQ(sim.online_accuracy, uds.online_accuracy);
  EXPECT_EQ(uds.link_fallbacks, 0U);
  EXPECT_EQ(uds.appeals_on_wire, uds.appealed);
}

}  // namespace
