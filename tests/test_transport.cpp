// Transport-layer tests: UDS and TCP loopback against an in-process
// stub_server, cloud_channel coalescing (window and opportunistic),
// demux under adversarial response reordering, the simulator transport's
// counters, and graceful local fallback when the link dies mid-run.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <condition_variable>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <unistd.h>
#include <vector>

#include "collab/cost_model.hpp"
#include "nn/serialize.hpp"
#include "serve/backends.hpp"
#include "serve/cloud_channel.hpp"
#include "serve/cloud_model.hpp"
#include "serve/engine.hpp"
#include "serve/transport/fault_transport.hpp"
#include "serve/transport/socket_transport.hpp"
#include "serve/transport/socket_util.hpp"
#include "serve/transport/stub_server.hpp"
#include "serve/transport/synthetic_scorer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;
using namespace appeal::serve;

std::string unique_uds_path(const char* tag) {
  static std::atomic<int> counter{0};
  return "/tmp/appeal-test-" + std::to_string(::getpid()) + "-" + tag + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// Scorer the stub-side tests share: a deterministic function of the key.
std::size_t key_scorer(const wire::appeal_record& a) {
  return static_cast<std::size_t>(a.key % 10);
}

request make_request(std::uint64_t key) {
  request r;
  r.id = key;
  r.key = key;
  r.enqueue_time = std::chrono::steady_clock::now();
  return r;
}

/// Collects transport completions for assertions.
struct completion_sink {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<cloud_transport::completion> all;

  cloud_transport::completion_sink fn() {
    return [this](std::vector<cloud_transport::completion>&& batch) {
      std::lock_guard<std::mutex> lock(mutex);
      for (const auto& c : batch) all.push_back(c);
      cv.notify_all();
    };
  }

  void wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return all.size() >= n; }))
        << "timed out with " << all.size() << "/" << n << " completions";
  }
};

void exercise_socket_transport(transport_kind kind,
                               const std::string& listen_endpoint) {
  stub_server_config server_cfg;
  server_cfg.kind = kind;
  server_cfg.endpoint = listen_endpoint;
  stub_server server(server_cfg, key_scorer);
  server.start();
  const std::string endpoint =
      kind == transport_kind::tcp
          ? "127.0.0.1:" + std::to_string(server.tcp_port())
          : listen_endpoint;

  socket_transport transport(kind, endpoint);
  completion_sink sink;
  std::atomic<bool> failed{false};
  transport.start(sink.fn(), [&] { failed = true; });

  const std::size_t n = 9;
  std::vector<request> requests;
  for (std::size_t i = 0; i < n; ++i) requests.push_back(make_request(i));
  std::vector<const request*> batch;
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(&requests[i]);
    ids.push_back(100 + i);
  }
  // Two frames over one connection: a batch of n-1 and a single.
  transport.send_batch({batch.begin(), batch.end() - 1},
                       {ids.begin(), ids.end() - 1}, "test");
  transport.send_batch({batch.back()}, {ids.back()}, "test");
  sink.wait_for(n);

  for (const auto& c : sink.all) {
    ASSERT_GE(c.id, 100U);
    EXPECT_EQ(c.prediction, (c.id - 100) % 10) << "wrong demuxed prediction";
  }
  const transport_counters tc = transport.counters();
  EXPECT_EQ(tc.batches_sent, 2U);
  EXPECT_EQ(tc.appeals_sent, n);
  EXPECT_GT(tc.bytes_sent, 0U);
  EXPECT_GT(tc.bytes_received, 0U);
  transport.stop();
  EXPECT_FALSE(failed.load()) << "clean stop must not fire on_failure";
  server.stop();
  const stub_server_counters sc = server.counters();
  EXPECT_EQ(sc.appeals, n);
  EXPECT_EQ(sc.connections, 1U);
}

TEST(transport, uds_loopback_round_trip) {
  exercise_socket_transport(transport_kind::uds, unique_uds_path("uds"));
}

TEST(transport, tcp_loopback_round_trip) {
  // Port 0: the stub binds an ephemeral port the test reads back.
  exercise_socket_transport(transport_kind::tcp, "127.0.0.1:0");
}

TEST(transport, demux_survives_reordered_split_responses) {
  // Adversarial cloud: reads one appeal batch, answers it in REVERSE
  // order, one response frame per appeal. The channel must still hand
  // every request its own prediction.
  const std::string path = unique_uds_path("reorder");
  net::fd listener = net::listen_uds(path);
  std::thread cloud([&] {
    net::fd conn = net::accept_connection(listener);
    ASSERT_TRUE(conn.valid());
    wire::frame_splitter splitter;
    std::uint8_t chunk[4096];
    std::vector<wire::appeal_record> seen;
    while (seen.size() < 6) {
      const std::size_t n = net::read_some(conn, chunk, sizeof(chunk));
      ASSERT_GT(n, 0U);
      splitter.feed(chunk, n);
      while (std::optional<wire::frame> f = splitter.next()) {
        for (wire::appeal_record& a : wire::decode_appeal_batch(*f)) {
          seen.push_back(std::move(a));
        }
      }
    }
    for (auto it = seen.rbegin(); it != seen.rend(); ++it) {
      wire::response_record r;
      r.id = it->id;
      r.prediction = static_cast<std::size_t>(it->key * 7 % 10);
      const std::vector<std::uint8_t> one = wire::encode_response_batch({r});
      net::write_all(conn, one.data(), one.size());
    }
    // Hold the connection open until the client is done reading.
    (void)net::read_some(conn, chunk, sizeof(chunk));
  });

  {
    replay_cloud_backend fallback(std::vector<std::size_t>(16, 0));
    link_config cfg;
    cfg.transport = transport_kind::uds;
    cfg.endpoint = path;
    cfg.coalesce_window_ms = 200.0;  // pack all 6 into one frame
    cfg.max_batch_appeals = 6;
    cloud_channel channel(fallback, collab::cost_model{}, cfg, "reorder");

    std::mutex mutex;
    std::vector<std::pair<std::uint64_t, std::size_t>> done;
    for (std::uint64_t key = 0; key < 6; ++key) {
      channel.appeal(make_request(key),
                     [&](request&& r, const appeal_outcome& out) {
                       std::lock_guard<std::mutex> lock(mutex);
                       done.emplace_back(r.key, out.prediction);
                     });
    }
    channel.drain();
    ASSERT_EQ(done.size(), 6U);
    for (const auto& [key, prediction] : done) {
      EXPECT_EQ(prediction, key * 7 % 10) << "demux crossed appeals";
    }
    const link_counters lc = channel.counters();
    EXPECT_EQ(lc.wire.batches_sent, 1U) << "window should coalesce the burst";
    EXPECT_EQ(lc.wire.appeals_sent, 6U);
    EXPECT_EQ(lc.local_fallbacks, 0U);
  }
  listener.shutdown();
  cloud.join();
  ::unlink(path.c_str());
}

TEST(transport, sim_transport_counts_equivalent_wire_bytes) {
  std::vector<std::size_t> predictions;
  for (std::size_t i = 0; i < 8; ++i) predictions.push_back(i % 3);
  replay_cloud_backend backend(predictions);
  link_config cfg;
  cfg.time_scale = 0.0;
  cloud_channel channel(backend, collab::cost_model{}, cfg, "sim");
  std::atomic<std::size_t> completions{0};
  for (std::uint64_t key = 0; key < 8; ++key) {
    channel.appeal(make_request(key),
                   [&](request&&, const appeal_outcome& out) {
                     EXPECT_LT(out.prediction, 3U);
                     completions.fetch_add(1);
                   });
  }
  channel.drain();
  EXPECT_EQ(completions.load(), 8U);
  const link_counters lc = channel.counters();
  EXPECT_EQ(lc.wire.appeals_sent, 8U);
  EXPECT_GE(lc.wire.batches_sent, 1U);
  EXPECT_LE(lc.wire.batches_sent, 8U);
  // Every appeal carries at least its fixed wire fields.
  EXPECT_GE(lc.wire.bytes_sent, 8 * 44U);
  EXPECT_EQ(lc.completed, 8U);
  EXPECT_EQ(lc.local_fallbacks, 0U);
}

TEST(transport, channel_coalesces_bursts_under_window) {
  stub_server_config server_cfg;
  server_cfg.kind = transport_kind::uds;
  server_cfg.endpoint = unique_uds_path("coalesce");
  stub_server server(server_cfg, key_scorer);
  server.start();

  replay_cloud_backend fallback(std::vector<std::size_t>(64, 0));
  link_config cfg;
  cfg.transport = transport_kind::uds;
  cfg.endpoint = server_cfg.endpoint;
  cfg.coalesce_window_ms = 500.0;  // generous: CI machines stall
  cfg.max_batch_appeals = 16;
  cloud_channel channel(fallback, collab::cost_model{}, cfg, "burst");

  std::atomic<std::size_t> completions{0};
  for (std::uint64_t key = 0; key < 16; ++key) {
    channel.appeal(make_request(key),
                   [&](request&& r, const appeal_outcome& out) {
                     EXPECT_EQ(out.prediction, r.key % 10);
                     EXPECT_GE(out.link_ms, 0.0);
                     completions.fetch_add(1);
                   });
  }
  channel.drain();
  EXPECT_EQ(completions.load(), 16U);
  const link_counters lc = channel.counters();
  EXPECT_EQ(lc.wire.appeals_sent, 16U);
  // The window holds the frame open until the batch cap: one full batch
  // (the burst outruns the 500 ms window by orders of magnitude).
  EXPECT_EQ(lc.wire.batches_sent, 1U);
  EXPECT_DOUBLE_EQ(lc.wire.mean_appeals_per_batch(), 16.0);
}

TEST(transport, link_failure_falls_back_to_local_backend) {
  // All fallback answers come from a backend that always says class 7,
  // while the stub answers key % 10 — so the source of every completion
  // is observable.
  replay_cloud_backend fallback(std::vector<std::size_t>(64, 7));
  link_config cfg;
  cfg.transport = transport_kind::uds;
  cfg.endpoint = unique_uds_path("fail");
  stub_server_config scfg;
  scfg.kind = transport_kind::uds;
  scfg.endpoint = cfg.endpoint;
  stub_server stub(scfg, key_scorer);
  stub.start();

  cloud_channel channel(fallback, collab::cost_model{}, cfg, "failover");
  std::atomic<std::size_t> completions{0};
  // One appeal through the live stub proves the link worked...
  {
    std::promise<std::size_t> first;
    channel.appeal(make_request(3),
                   [&](request&&, const appeal_outcome& out) {
                     completions.fetch_add(1);
                     first.set_value(out.prediction);
                   });
    EXPECT_EQ(first.get_future().get(), 3U);
  }
  // ...then the cloud dies mid-run.
  stub.stop();
  for (std::uint64_t key = 10; key < 20; ++key) {
    channel.appeal(make_request(key),
                   [&](request&&, const appeal_outcome& out) {
                     EXPECT_EQ(out.prediction, 7U) << "must come from fallback";
                     completions.fetch_add(1);
                   });
  }
  channel.drain();  // must not hang: every appeal completes locally
  EXPECT_EQ(completions.load(), 11U);
  const link_counters lc = channel.counters();
  EXPECT_EQ(lc.completed, 11U);
  EXPECT_EQ(lc.local_fallbacks, 10U);
}

TEST(transport, silent_peer_trips_response_watchdog) {
  // A cloud that stays connected but never answers must not wedge
  // drain(): the response watchdog declares the link dead and the local
  // backend (always class 7) completes every outstanding appeal.
  const std::string path = unique_uds_path("blackhole");
  net::fd listener = net::listen_uds(path);
  std::atomic<bool> closing{false};
  std::thread black_hole([&] {
    net::fd conn = net::accept_connection(listener);
    if (!conn.valid()) return;
    std::uint8_t chunk[4096];
    while (!closing.load() && net::read_some(conn, chunk, sizeof(chunk)) > 0) {
    }
  });

  {
    replay_cloud_backend fallback(std::vector<std::size_t>(16, 7));
    link_config cfg;
    cfg.transport = transport_kind::uds;
    cfg.endpoint = path;
    cfg.response_timeout_ms = 200.0;
    cloud_channel channel(fallback, collab::cost_model{}, cfg, "blackhole");
    std::atomic<std::size_t> completions{0};
    for (std::uint64_t key = 0; key < 4; ++key) {
      channel.appeal(make_request(key),
                     [&](request&&, const appeal_outcome& out) {
                       EXPECT_EQ(out.prediction, 7U);
                       completions.fetch_add(1);
                     });
    }
    channel.drain();  // must terminate within the watchdog budget
    EXPECT_EQ(completions.load(), 4U);
    EXPECT_EQ(channel.counters().local_fallbacks, 4U);
  }
  closing.store(true);
  listener.shutdown();
  black_hole.join();
  ::unlink(path.c_str());
}

TEST(transport, engine_serves_identically_over_sim_and_uds) {
  // The scheduler-level invariant behind the CI loopback gate: a fixed-δ
  // engine routes and scores the same workload identically whether the
  // cloud answers over the simulator or a real socket, because the
  // stub's synthetic scorer IS the simulator's replay table.
  const std::size_t n = 512;
  const std::uint64_t seed = 1234;
  std::vector<std::size_t> labels(n), little(n), big(n);
  std::vector<double> scores(n);
  util::rng gen(seed);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = i % 10;
    const bool right = gen.bernoulli(0.8);
    little[i] = right ? labels[i] : (labels[i] + 1) % 10;
    big[i] = transport::synthetic_big_prediction(i, labels[i], 10, seed);
    scores[i] = right ? 0.5 + 0.5 * gen.uniform() : 0.7 * gen.uniform();
  }

  const auto run = [&](const link_config& channel_cfg) {
    replay_edge_backend edge(little, scores);
    replay_cloud_backend cloud(big);
    engine_config cfg;
    cfg.batching.max_batch_size = 16;
    cfg.batching.max_wait = std::chrono::microseconds(200);
    cfg.num_workers = 2;
    cfg.threshold.adapt = threshold_config::mode::fixed;
    cfg.threshold.initial_delta = 0.55;
    cfg.channel = channel_cfg;
    engine eng(cfg, engine_resources::standalone(edge, cloud));
    for (std::size_t i = 0; i < n; ++i) {
      eng.submit(tensor(), i, labels[i]);
    }
    eng.drain();
    return eng.snapshot();
  };

  link_config sim_cfg;
  sim_cfg.time_scale = 0.0;
  const stats_snapshot sim = run(sim_cfg);

  stub_server_config scfg;
  scfg.kind = transport_kind::uds;
  scfg.endpoint = unique_uds_path("engine");
  stub_server stub(scfg, [&](const wire::appeal_record& a) {
    return transport::synthetic_big_prediction(
        a.key, static_cast<std::size_t>(a.label), 10, seed);
  });
  stub.start();
  link_config uds_cfg;
  uds_cfg.transport = transport_kind::uds;
  uds_cfg.endpoint = scfg.endpoint;
  uds_cfg.coalesce_window_ms = 0.2;
  const stats_snapshot uds = run(uds_cfg);
  stub.stop();

  EXPECT_EQ(sim.completed, uds.completed);
  EXPECT_EQ(sim.appealed, uds.appealed);
  EXPECT_DOUBLE_EQ(sim.achieved_sr, uds.achieved_sr);
  EXPECT_DOUBLE_EQ(sim.online_accuracy, uds.online_accuracy);
  EXPECT_EQ(uds.link_fallbacks, 0U);
  EXPECT_EQ(uds.appeals_on_wire, uds.appealed);
}

wire::appeal_record make_appeal(std::uint64_t id, priority_class priority,
                                double deadline_ms) {
  wire::appeal_record a;
  a.id = id;
  a.key = id;
  a.priority = priority;
  a.deadline_ms = deadline_ms;
  return a;
}

TEST(transport, work_queue_pops_deadline_order_within_priority_lanes) {
  // Push order is adversarial; pop order must be: interactive lane first
  // (tightest deadline first, deadline-free appeals last, FIFO among
  // them), then the batch lane in the same order.
  cloud_work_queue queue;
  queue.push(make_appeal(0, priority_class::batch, 5.0), 0);
  queue.push(make_appeal(1, priority_class::interactive, -1.0), 0);
  queue.push(make_appeal(2, priority_class::interactive, 500.0), 0);
  queue.push(make_appeal(3, priority_class::batch, -1.0), 0);
  queue.push(make_appeal(4, priority_class::interactive, 50.0), 0);
  queue.push(make_appeal(5, priority_class::interactive, -1.0), 0);
  EXPECT_EQ(queue.size(), 6U);

  const std::vector<cloud_work_queue::item> all = queue.pop_batch(16);
  ASSERT_EQ(all.size(), 6U);
  std::vector<std::uint64_t> order;
  for (const cloud_work_queue::item& it : all) order.push_back(it.record.id);
  // interactive: 4 (50 ms) before 2 (500 ms), then 1 and 5 (no deadline,
  // arrival order); batch lane strictly behind: 0 (5 ms) before 3.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{4, 2, 1, 5, 0, 3}));
  EXPECT_EQ(queue.size(), 0U);
}

TEST(transport, work_queue_pop_respects_batch_cap_and_drains_on_close) {
  cloud_work_queue queue;
  for (std::uint64_t id = 0; id < 5; ++id) {
    queue.push(make_appeal(id, priority_class::interactive,
                           static_cast<double>(10 * (5 - id))), 0);
  }
  const std::vector<cloud_work_queue::item> first = queue.pop_batch(3);
  ASSERT_EQ(first.size(), 3U);  // tightest three: ids 4, 3, 2
  EXPECT_EQ(first.front().record.id, 4U);
  queue.close();
  EXPECT_EQ(queue.pop_batch(16).size(), 2U);  // drains the rest...
  EXPECT_TRUE(queue.pop_batch(16).empty());   // ...then reports closed
}

TEST(transport, stub_sheds_blown_deadlines_as_cloud_expired) {
  // Appeal A (no deadline) occupies the stub's single scorer worker long
  // enough that appeal B's deadline blows while B waits in the cloud work
  // queue. The stub must shed B with an `expired` response — surfaced to
  // the client as request_status::expired on the cloud route and counted
  // as cloud_expired in serve_stats — instead of scoring it late.
  std::atomic<bool> scoring_started{false};
  stub_server_config scfg;
  scfg.kind = transport_kind::uds;
  scfg.endpoint = unique_uds_path("shed");
  scfg.workers = 1;
  stub_server stub(scfg, [&](const wire::appeal_record& a) -> std::size_t {
    scoring_started.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return a.key % 10;
  });
  stub.start();

  replay_edge_backend edge(std::vector<std::size_t>(8, 1),
                           std::vector<double>(8, 0.1));  // always appeals
  replay_cloud_backend cloud(std::vector<std::size_t>(8, 7));
  engine_config cfg;
  cfg.batching.max_batch_size = 1;
  cfg.batching.max_wait = std::chrono::microseconds(100);
  cfg.num_workers = 1;
  cfg.threshold.adapt = threshold_config::mode::fixed;
  cfg.threshold.initial_delta = 0.5;
  cfg.channel.transport = transport_kind::uds;
  cfg.channel.endpoint = scfg.endpoint;
  engine eng(cfg, engine_resources::standalone(edge, cloud));

  std::future<response> a = eng.submit(tensor(), /*key=*/0, /*label=*/1);
  // B enters the cloud work queue only after A holds the worker; its
  // 50 ms budget is long enough to clear the edge but is gone well
  // before A's 300 ms of scoring ends.
  for (int i = 0; i < 200 && !scoring_started.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(scoring_started.load()) << "appeal A never reached the scorer";
  inference_request req;
  req.input = tensor();
  req.key = 1;
  req.label = 1;
  req.deadline = std::chrono::milliseconds(50);
  std::future<response> b = eng.submit(std::move(req));

  const response ra = a.get();
  EXPECT_EQ(ra.status, request_status::ok);
  EXPECT_EQ(ra.predicted_class, 0U);
  EXPECT_GT(ra.cloud_ms, 0.0) << "stub must report queue + scoring time";
  const response rb = b.get();
  EXPECT_EQ(rb.status, request_status::expired);
  EXPECT_EQ(rb.taken, route::cloud);

  eng.drain();
  const stats_snapshot s = eng.snapshot();
  EXPECT_EQ(s.cloud_expired, 1U);
  EXPECT_EQ(s.expired, 0U);
  EXPECT_EQ(s.appealed, 1U);
  eng.shutdown();
  stub.stop();
  EXPECT_EQ(stub.counters().expired, 1U);
  EXPECT_EQ(stub.counters().scored, 1U);
}

TEST(transport, full_work_queue_sheds_arrivals_as_overloaded) {
  // A scorer slower than the arrival rate must not buffer appeals
  // without bound: beyond max_queue_depth, arrivals are refused with an
  // `overloaded` answer (wire v4 backpressure) — distinct from `expired`,
  // which means a deadline died inside the queue. With retries disabled
  // the channel resolves every overload from the local fallback backend,
  // so the caller always gets a real prediction, never a bogus expiry.
  std::atomic<bool> scoring_started{false};
  stub_server_config scfg;
  scfg.kind = transport_kind::uds;
  scfg.endpoint = unique_uds_path("overload");
  scfg.workers = 1;
  scfg.max_cloud_batch = 1;
  scfg.max_queue_depth = 1;
  stub_server stub(scfg, [&](const wire::appeal_record& a) -> std::size_t {
    scoring_started.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    return a.key % 10;
  });
  stub.start();

  replay_cloud_backend fallback(std::vector<std::size_t>(16, 7));
  link_config cfg;
  cfg.transport = transport_kind::uds;
  cfg.endpoint = scfg.endpoint;
  cfg.max_retries = 0;  // overloads resolve locally, deterministically
  cloud_channel channel(fallback, collab::cost_model{}, cfg, "overload");

  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> expired{0};
  std::atomic<std::size_t> fallback_answers{0};
  const auto on_done = [&](request&&, const appeal_outcome& out) {
    (out.expired ? expired : ok).fetch_add(1);
    if (!out.expired && out.prediction == 7U) fallback_answers.fetch_add(1);
  };
  channel.appeal(make_request(0), on_done);
  for (int i = 0; i < 200 && !scoring_started.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(scoring_started.load());
  // Burst while the worker sleeps: one appeal queues, three overflow.
  for (std::uint64_t key = 1; key < 5; ++key) {
    channel.appeal(make_request(key), on_done);
  }
  channel.drain();
  EXPECT_EQ(ok.load(), 5U);       // every appeal gets a real answer
  EXPECT_EQ(expired.load(), 0U);  // overload is not expiry
  EXPECT_EQ(fallback_answers.load(), 3U);  // the three refused appeals
  const link_counters lc = channel.counters();
  EXPECT_EQ(lc.overloaded, 3U);
  EXPECT_EQ(lc.local_fallbacks, 3U);
  EXPECT_EQ(lc.retries, 0U);
  // A streak of 3 overloads stays under breaker_threshold (4).
  EXPECT_EQ(channel.breaker(), breaker_state::closed);
  stub.stop();
  EXPECT_EQ(stub.counters().overloaded, 3U);
  EXPECT_EQ(stub.counters().scored, 2U);
}

TEST(transport, overloaded_appeals_retry_until_the_queue_drains) {
  // Same burst shape, but with retries enabled: every overloaded appeal
  // must eventually score on the wire (predictions are key % 10, never
  // the fallback's constant 7) once the worker drains the depth-1 queue.
  std::atomic<bool> scoring_started{false};
  stub_server_config scfg;
  scfg.kind = transport_kind::uds;
  scfg.endpoint = unique_uds_path("retry");
  scfg.workers = 1;
  scfg.max_cloud_batch = 1;
  scfg.max_queue_depth = 1;
  stub_server stub(scfg, [&](const wire::appeal_record& a) -> std::size_t {
    scoring_started.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    return a.key % 10;
  });
  stub.start();

  replay_cloud_backend fallback(std::vector<std::size_t>(16, 7));
  link_config cfg;
  cfg.transport = transport_kind::uds;
  cfg.endpoint = scfg.endpoint;
  cfg.max_retries = 8;
  cfg.retry_backoff_ms = 20.0;
  cfg.breaker_threshold = 100;  // keep the breaker out of this test
  cloud_channel channel(fallback, collab::cost_model{}, cfg, "retry");

  std::mutex mutex;
  std::map<std::uint64_t, std::size_t> got;
  const auto on_done = [&](request&& r, const appeal_outcome& out) {
    std::lock_guard<std::mutex> lock(mutex);
    got[r.key] = out.prediction;
  };
  channel.appeal(make_request(0), on_done);
  for (int i = 0; i < 200 && !scoring_started.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(scoring_started.load());
  for (std::uint64_t key = 1; key < 5; ++key) {
    channel.appeal(make_request(key), on_done);
  }
  channel.drain();  // waits for parked retries too
  ASSERT_EQ(got.size(), 5U);
  for (const auto& [key, prediction] : got) {
    EXPECT_EQ(prediction, key % 10) << "appeal " << key
                                    << " completed off the wire";
  }
  const link_counters lc = channel.counters();
  EXPECT_GE(lc.retries, 1U);
  EXPECT_GE(lc.overloaded, 3U);
  EXPECT_EQ(lc.local_fallbacks, 0U);
  EXPECT_EQ(lc.completed, 5U);
  stub.stop();
  EXPECT_EQ(stub.counters().scored, 5U);
}

TEST(transport, stub_death_mid_flight_completes_every_appeal_exactly_once) {
  // The chaos-gate regression: kill the cloud while appeals are in
  // flight. Every submitted appeal must complete exactly once via the
  // local fallback — never zero times (drain would wedge) and never
  // twice (double completion corrupts engine accounting).
  std::atomic<bool> scoring_started{false};
  stub_server_config scfg;
  scfg.kind = transport_kind::uds;
  scfg.endpoint = unique_uds_path("midflight");
  scfg.workers = 1;
  stub_server stub(scfg, [&](const wire::appeal_record& a) -> std::size_t {
    scoring_started.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return a.key % 10;
  });
  stub.start();

  constexpr std::size_t n = 8;
  replay_cloud_backend fallback(std::vector<std::size_t>(n, 7));
  link_config cfg;
  cfg.transport = transport_kind::uds;
  cfg.endpoint = scfg.endpoint;
  cloud_channel channel(fallback, collab::cost_model{}, cfg, "midflight");

  std::array<std::atomic<int>, n> completions{};
  for (std::uint64_t key = 0; key < n; ++key) {
    channel.appeal(make_request(key),
                   [&](request&& r, const appeal_outcome&) {
                     completions[r.key].fetch_add(1);
                   });
  }
  for (int i = 0; i < 200 && !scoring_started.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(scoring_started.load()) << "no appeal reached the scorer";
  stub.stop();      // the cloud dies with appeals in flight
  channel.drain();  // must not wedge
  for (std::size_t key = 0; key < n; ++key) {
    EXPECT_EQ(completions[key].load(), 1) << "appeal " << key;
  }
  EXPECT_EQ(channel.counters().completed, n);
  // A hard link failure opens the breaker (half-open reconnects keep
  // failing against the dead endpoint, so it never re-closes here).
  EXPECT_NE(channel.breaker(), breaker_state::closed);
  EXPECT_GE(channel.counters().breaker_opens, 1U);
}

TEST(transport, breaker_recovers_after_the_cloud_returns) {
  // The full circuit: a live link dies (hard open), appeals complete
  // locally while the cloud is gone, a replacement stub binds the same
  // endpoint, and the half-open probe re-closes the breaker — appeals
  // score on the wire again instead of staying edge-only forever.
  const std::string path = unique_uds_path("recover");
  stub_server_config scfg;
  scfg.kind = transport_kind::uds;
  scfg.endpoint = path;
  auto stub1 = std::make_unique<stub_server>(scfg, key_scorer);
  stub1->start();

  replay_cloud_backend fallback(std::vector<std::size_t>(64, 7));
  link_config cfg;
  cfg.transport = transport_kind::uds;
  cfg.endpoint = path;
  cfg.breaker_open_ms = 100.0;  // short cool-off keeps the test fast
  cloud_channel channel(fallback, collab::cost_model{}, cfg, "recover");

  const auto ask = [&](std::uint64_t key) {
    std::promise<std::size_t> answered;
    channel.appeal(make_request(key),
                   [&](request&&, const appeal_outcome& out) {
                     answered.set_value(out.prediction);
                   });
    return answered.get_future().get();
  };
  EXPECT_EQ(ask(3), 3U);  // the wire works

  stub1->stop();
  stub1.reset();
  EXPECT_EQ(ask(14), 7U);  // link dead: the local fallback answers
  EXPECT_NE(channel.breaker(), breaker_state::closed);
  EXPECT_GE(channel.counters().breaker_opens, 1U);

  stub_server stub2(scfg, key_scorer);
  stub2.start();
  // Appeals keep completing while the breaker is open (locally, as 7);
  // once the cool-off elapses the half-open probe reaches stub2, closes
  // the breaker, and answers key % 10 over the wire again.
  bool recovered = false;
  for (int i = 0; i < 300 && !recovered; ++i) {
    recovered = ask(5) == 5U && channel.breaker() == breaker_state::closed;
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(recovered) << "breaker never re-closed after the stub returned";
  EXPECT_EQ(ask(6), 6U);  // and it stays recovered
  EXPECT_EQ(channel.breaker(), breaker_state::closed);
  stub2.stop();
}

TEST(transport, lost_frame_on_a_live_link_does_not_trip_the_breaker) {
  // One frame swallowed in transit while the peer keeps answering
  // everything else: the response watchdog must complete the lost
  // appeals locally WITHOUT retiring the link — only a peer silent for
  // the whole budget is dead. Chaos runs rely on this distinction:
  // under sustained random frame drop a healthy link would otherwise
  // cycle open/half-open forever, paying breaker_open_ms of all-local
  // serving per lost frame.
  const std::string path = unique_uds_path("lostframe");
  net::fd listener = net::listen_uds(path);
  std::atomic<bool> closing{false};
  std::thread cloud([&] {
    net::fd conn = net::accept_connection(listener);
    if (!conn.valid()) return;
    wire::frame_splitter splitter;
    std::uint8_t chunk[4096];
    while (!closing.load()) {
      const std::size_t n = net::read_some(conn, chunk, sizeof(chunk));
      if (n == 0) break;
      splitter.feed(chunk, n);
      while (std::optional<wire::frame> f = splitter.next()) {
        for (const wire::appeal_record& a : wire::decode_appeal_batch(*f)) {
          if (a.key == 3) continue;  // this frame is "lost in transit"
          wire::response_record r;
          r.id = a.id;
          r.prediction = static_cast<std::size_t>(a.key * 7 % 10);
          const std::vector<std::uint8_t> one =
              wire::encode_response_batch({r});
          net::write_all(conn, one.data(), one.size());
        }
      }
    }
  });

  {
    replay_cloud_backend fallback(std::vector<std::size_t>(512, 9));
    link_config cfg;
    cfg.transport = transport_kind::uds;
    cfg.endpoint = path;
    cfg.max_batch_appeals = 1;  // one frame per appeal
    cfg.response_timeout_ms = 200.0;
    cloud_channel channel(fallback, collab::cost_model{}, cfg, "lostframe");

    const auto ask = [&](std::uint64_t key) {
      std::promise<std::size_t> answered;
      channel.appeal(make_request(key),
                     [&](request&&, const appeal_outcome& out) {
                       answered.set_value(out.prediction);
                     });
      return answered.get_future().get();
    };
    EXPECT_EQ(ask(2), 4U);  // the wire works

    std::promise<std::size_t> lost_promise;
    std::future<std::size_t> lost = lost_promise.get_future();
    channel.appeal(make_request(3),
                   [&](request&&, const appeal_outcome& out) {
                     lost_promise.set_value(out.prediction);
                   });
    // Keep the link demonstrably alive while appeal 3 hangs, so the
    // watchdog sees fresh completions when its deadline passes.
    std::uint64_t key = 10;
    while (lost.wait_for(std::chrono::milliseconds(0)) !=
           std::future_status::ready) {
      EXPECT_EQ(ask(key), key * 7 % 10);
      ++key;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ASSERT_LT(key, 200U) << "the lost appeal never completed";
    }
    EXPECT_EQ(lost.get(), 9U) << "lost frame must complete from the fallback";
    EXPECT_EQ(channel.breaker(), breaker_state::closed);
    const link_counters lc = channel.counters();
    EXPECT_EQ(lc.breaker_opens, 0U) << "a live link must not be retired";
    EXPECT_EQ(lc.local_fallbacks, 1U);
    EXPECT_EQ(ask(5), 5U);  // still on the wire afterwards
  }
  closing.store(true);
  listener.shutdown();
  cloud.join();
  ::unlink(path.c_str());
}

TEST(transport, channel_survives_a_cloud_that_is_down_at_startup) {
  // Deploying the edge while the cloud is unreachable must not throw
  // out of the channel constructor (it used to: the initial connect's
  // util::error escaped and took the whole process down). The channel
  // comes up with the breaker already open, answers locally from the
  // first appeal, and recovers through the ordinary half-open probe
  // once something binds the endpoint.
  const std::string path = unique_uds_path("coldstart");
  replay_cloud_backend fallback(std::vector<std::size_t>(64, 7));
  link_config cfg;
  cfg.transport = transport_kind::uds;
  cfg.endpoint = path;  // nothing is listening here
  cfg.breaker_open_ms = 100.0;
  cloud_channel channel(fallback, collab::cost_model{}, cfg, "coldstart");
  EXPECT_EQ(channel.breaker(), breaker_state::open);
  EXPECT_GE(channel.counters().breaker_opens, 1U);

  const auto ask = [&](std::uint64_t key) {
    std::promise<std::size_t> answered;
    channel.appeal(make_request(key),
                   [&](request&&, const appeal_outcome& out) {
                     answered.set_value(out.prediction);
                   });
    return answered.get_future().get();
  };
  EXPECT_EQ(ask(13), 7U);  // local fallback, immediately, no wedge

  stub_server_config scfg;
  scfg.kind = transport_kind::uds;
  scfg.endpoint = path;
  stub_server stub(scfg, key_scorer);
  stub.start();
  bool recovered = false;
  for (int i = 0; i < 300 && !recovered; ++i) {
    recovered = ask(5) == 5U && channel.breaker() == breaker_state::closed;
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(recovered) << "breaker never closed after the cloud appeared";
  stub.stop();
}

TEST(transport, work_queue_enforces_batch_lane_budget_and_capacity) {
  using admit = cloud_work_queue::admit;
  cloud_work_queue queue(/*capacity=*/3, /*batch_capacity=*/1);
  EXPECT_EQ(queue.push(make_appeal(0, priority_class::batch, -1.0), 0),
            admit::ok);
  // The batch lane's own budget fills before the shared capacity does.
  EXPECT_EQ(queue.push(make_appeal(1, priority_class::batch, -1.0), 0),
            admit::full);
  EXPECT_EQ(queue.push(make_appeal(2, priority_class::interactive, -1.0), 0),
            admit::ok);
  EXPECT_EQ(queue.push(make_appeal(3, priority_class::interactive, -1.0), 0),
            admit::ok);
  EXPECT_EQ(queue.push(make_appeal(4, priority_class::interactive, -1.0), 0),
            admit::full);  // shared capacity
  EXPECT_EQ(queue.size(), 3U);
  queue.close();
  EXPECT_EQ(queue.push(make_appeal(5, priority_class::interactive, -1.0), 0),
            admit::closed);
  EXPECT_EQ(queue.pop_batch(16).size(), 3U);  // close() still drains
}

TEST(transport, work_queue_projects_deadline_misses_from_drain_rate) {
  using admit = cloud_work_queue::admit;
  cloud_work_queue queue(/*capacity=*/0, /*batch_capacity=*/0,
                         /*shed_projected=*/true);
  // Warm the drain-rate EMA: the first pop arms the clock, the second
  // (≈40 ms later) yields the first per-item estimate.
  EXPECT_EQ(queue.push(make_appeal(0, priority_class::interactive, -1.0), 0),
            admit::ok);
  EXPECT_EQ(queue.pop_batch(1).size(), 1U);
  EXPECT_EQ(queue.push(make_appeal(1, priority_class::interactive, -1.0), 0),
            admit::ok);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_EQ(queue.pop_batch(1).size(), 1U);

  const cloud_work_queue::queue_stats st = queue.stats();
  EXPECT_EQ(st.depth, 0U);
  EXPECT_EQ(st.drained, 2U);
  EXPECT_GT(st.ms_per_item, 0.0);
  EXPECT_DOUBLE_EQ(queue.estimated_wait_ms(), 0.0);  // empty queue

  // A deadline far below the projected wait is refused up front; a
  // generous one and a deadline-free appeal are admitted.
  EXPECT_EQ(queue.push(make_appeal(2, priority_class::interactive, 0.01), 0),
            admit::projected_miss);
  EXPECT_EQ(queue.push(make_appeal(3, priority_class::interactive, 1e6), 0),
            admit::ok);
  EXPECT_EQ(queue.push(make_appeal(4, priority_class::interactive, -1.0), 0),
            admit::ok);
  EXPECT_GT(queue.estimated_wait_ms(), 0.0);
  queue.close(/*discard=*/true);
}

/// Fake inner transport for fault-injection tests: records every frame
/// that gets through and exposes the completion sink so tests can push
/// synthetic completion batches upward.
struct recording_transport : cloud_transport {
  cloud_transport::completion_sink sink;
  std::vector<std::vector<std::uint64_t>> frames;  // wire ids, per frame
  std::atomic<bool> stopped{false};

  void start(cloud_transport::completion_sink on_complete,
             cloud_transport::failure_sink) override {
    sink = std::move(on_complete);
  }
  void send_batch(const std::vector<const request*>&,
                  const std::vector<std::uint64_t>& wire_ids,
                  const std::string&) override {
    frames.push_back(wire_ids);
  }
  void stop() override { stopped.store(true); }
  transport_counters counters() const override { return {}; }
};

TEST(transport, fault_spec_parses_every_key_and_rejects_garbage) {
  const fault_config cfg =
      parse_fault_spec("drop=0.25,delay_ms=2,trunc=0.1,dup=1,kill_at=3,seed=9");
  EXPECT_DOUBLE_EQ(cfg.drop, 0.25);
  EXPECT_DOUBLE_EQ(cfg.delay_ms, 2.0);
  EXPECT_DOUBLE_EQ(cfg.trunc, 0.1);
  EXPECT_DOUBLE_EQ(cfg.dup, 1.0);
  EXPECT_EQ(cfg.kill_at, 3U);
  EXPECT_EQ(cfg.seed, 9U);
  EXPECT_DOUBLE_EQ(parse_fault_spec("").drop, 0.0);  // empty = no faults

  EXPECT_THROW(parse_fault_spec("jitter=1"), util::error);    // unknown key
  EXPECT_THROW(parse_fault_spec("drop=1.5"), util::error);    // not a prob.
  EXPECT_THROW(parse_fault_spec("drop=abc"), util::error);    // not a number
  EXPECT_THROW(parse_fault_spec("drop"), util::error);        // no '='
  EXPECT_THROW(parse_fault_spec("delay_ms=-1"), util::error);
}

TEST(transport, fault_drops_are_seed_deterministic) {
  // Two decorators with the same seed must drop exactly the same frames;
  // a different seed must produce a different schedule.
  const auto kept_frames = [](std::uint64_t seed) {
    auto inner = std::make_unique<recording_transport>();
    recording_transport* raw = inner.get();
    fault_config cfg;
    cfg.drop = 0.5;
    cfg.seed = seed;
    fault_transport faulty(std::move(inner), cfg);
    faulty.start([](std::vector<cloud_transport::completion>&&) {}, [] {});
    request r;
    std::vector<std::uint64_t> kept;
    for (std::uint64_t id = 0; id < 64; ++id) {
      faulty.send_batch({&r}, {id}, "m");
    }
    EXPECT_EQ(faulty.faults().frames_seen, 64U);
    EXPECT_EQ(faulty.faults().dropped, 64U - raw->frames.size());
    EXPECT_GT(faulty.faults().dropped, 0U);
    EXPECT_GT(raw->frames.size(), 0U);
    for (const auto& f : raw->frames) kept.push_back(f.front());
    return kept;
  };
  EXPECT_EQ(kept_frames(7), kept_frames(7));
  EXPECT_NE(kept_frames(7), kept_frames(8));
}

TEST(transport, fault_kill_at_stops_the_inner_link_and_stays_dead) {
  auto inner = std::make_unique<recording_transport>();
  recording_transport* raw = inner.get();
  fault_config cfg;
  cfg.kill_at = 3;
  fault_transport faulty(std::move(inner), cfg);
  faulty.start([](std::vector<cloud_transport::completion>&&) {}, [] {});
  request r;
  faulty.send_batch({&r}, {1}, "m");
  faulty.send_batch({&r}, {2}, "m");
  EXPECT_EQ(raw->frames.size(), 2U);
  EXPECT_THROW(faulty.send_batch({&r}, {3}, "m"), util::error);
  EXPECT_TRUE(raw->stopped.load()) << "kill_at must take the inner link down";
  EXPECT_THROW(faulty.send_batch({&r}, {4}, "m"), util::error);  // stays dead
  EXPECT_EQ(raw->frames.size(), 2U);
  EXPECT_EQ(faulty.faults().killed, 1U);
}

TEST(transport, fault_dup_delivers_the_completion_batch_twice) {
  auto inner = std::make_unique<recording_transport>();
  recording_transport* raw = inner.get();
  fault_config cfg;
  cfg.dup = 1.0;
  fault_transport faulty(std::move(inner), cfg);
  std::vector<std::uint64_t> delivered;
  faulty.start(
      [&](std::vector<cloud_transport::completion>&& done) {
        for (const auto& c : done) delivered.push_back(c.id);
      },
      [] {});
  cloud_transport::completion c;
  c.id = 42;
  c.prediction = 2;
  raw->sink({c});
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{42, 42}));
  EXPECT_EQ(faulty.faults().duplicated, 1U);
}

TEST(transport, fault_trunc_forwards_only_the_frame_head) {
  auto inner = std::make_unique<recording_transport>();
  recording_transport* raw = inner.get();
  fault_config cfg;
  cfg.trunc = 1.0;
  fault_transport faulty(std::move(inner), cfg);
  faulty.start([](std::vector<cloud_transport::completion>&&) {}, [] {});
  request r;
  faulty.send_batch({&r, &r, &r, &r}, {0, 1, 2, 3}, "m");
  ASSERT_EQ(raw->frames.size(), 1U);
  EXPECT_EQ(raw->frames[0], (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(faulty.faults().truncated, 1U);
}

TEST(transport, network_scorer_matches_local_backend_bit_exact) {
  // The acceptance invariant behind `cloud_stub --scorer=network`: the
  // stub's batched scoring of serialized weights must equal the local
  // network_cloud_backend's per-appeal forwards bit for bit — through
  // save -> load -> conv+BN fold -> stacked batch inference -> the wire.
  cloud_model_config model_cfg;
  model_cfg.init_seed = 0xFEED;

  const std::string weights =
      "/tmp/appeal-test-bignet-" + std::to_string(::getpid()) + ".apnw";
  {
    cloud_model_config trainable = model_cfg;
    trainable.fold = false;  // saved in trainable form, like a real model
    nn::save_model(*make_cloud_model(trainable), weights);
  }
  model_cfg.weights_path = weights;

  const std::size_t n = 24;
  util::rng gen(99);
  std::vector<tensor> images;
  images.reserve(n);
  const std::size_t hw = model_cfg.spec.image_size;
  for (std::size_t i = 0; i < n; ++i) {
    images.push_back(tensor::rand_uniform(
        shape{model_cfg.spec.in_channels, hw, hw}, gen, -1.0F, 1.0F));
  }

  // Local reference: the simulator's cloud path (single-input forwards).
  std::unique_ptr<nn::sequential> local_net = make_cloud_model(model_cfg);
  network_cloud_backend local(*local_net);
  std::vector<std::size_t> expected(n);
  for (std::size_t i = 0; i < n; ++i) {
    request r = make_request(i);
    r.input = images[i];
    expected[i] = local.infer(r);
  }

  stub_server_config scfg;
  scfg.kind = transport_kind::uds;
  scfg.endpoint = unique_uds_path("network");
  scfg.workers = 2;
  scfg.max_cloud_batch = 8;
  stub_server stub(scfg, make_network_scorer_factory(model_cfg));
  stub.start();

  replay_cloud_backend fallback(std::vector<std::size_t>(n, 0));
  link_config cfg;
  cfg.transport = transport_kind::uds;
  cfg.endpoint = scfg.endpoint;
  cfg.coalesce_window_ms = 20.0;  // pack several appeals per frame
  cloud_channel channel(fallback, collab::cost_model{}, cfg, "bignet");
  std::mutex mutex;
  std::vector<std::size_t> got(n, static_cast<std::size_t>(-1));
  for (std::uint64_t key = 0; key < n; ++key) {
    request r = make_request(key);
    r.input = images[key];
    channel.appeal(std::move(r), [&](request&& done,
                                     const appeal_outcome& out) {
      EXPECT_FALSE(out.expired);
      EXPECT_GT(out.cloud_ms, 0.0);
      std::lock_guard<std::mutex> lock(mutex);
      got[done.key] = out.prediction;
    });
  }
  channel.drain();
  EXPECT_EQ(channel.counters().local_fallbacks, 0U);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i], expected[i]) << "prediction diverged for input " << i;
  }
  stub.stop();
  EXPECT_EQ(stub.counters().scored, n);
  EXPECT_EQ(stub.counters().expired, 0U);
  ::unlink(weights.c_str());
}

}  // namespace
