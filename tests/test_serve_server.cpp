// Multi-tenant server facade tests: two deployments with different
// (little, big) replay pairs served concurrently through one server with
// sharded engines, key-affine routing, per-deployment stats matching the
// offline system_eval prediction, and non-blocking admission control
// (shed / edge_only) under saturating load.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "collab/system_eval.hpp"
#include "serve/admission.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace appeal;
using namespace std::chrono_literals;

struct population {
  std::vector<std::size_t> labels;
  std::vector<std::size_t> little;
  std::vector<std::size_t> big;
  std::vector<double> scores;
};

population make_population(std::size_t n, std::uint64_t seed,
                           double little_accuracy) {
  util::rng gen(seed);
  population p;
  p.labels.resize(n);
  p.little.resize(n);
  p.big.resize(n);
  p.scores.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.labels[i] = i % 10;
    const bool little_right = gen.bernoulli(little_accuracy);
    p.little[i] = little_right ? p.labels[i] : (p.labels[i] + 1) % 10;
    p.big[i] = gen.bernoulli(0.97) ? p.labels[i] : (p.labels[i] + 2) % 10;
    p.scores[i] = little_right ? 0.5 + 0.5 * gen.uniform()
                               : 0.7 * gen.uniform();
  }
  return p;
}

collab::sweep_point offline_point(const population& p, double target_sr) {
  collab::routed_split split;
  split.labels = p.labels;
  split.little_predictions = p.little;
  split.big_predictions = p.big;
  split.scores = p.scores;
  return collab::accuracy_vs_sr_curve(split, nullptr, {target_sr}).front();
}

serve::deployment_config replay_deployment_config(std::size_t shards,
                                                  double delta) {
  serve::deployment_config cfg;
  cfg.shards = shards;
  cfg.shard.batching.max_batch_size = 16;
  cfg.shard.batching.max_wait = std::chrono::microseconds(200);
  cfg.shard.num_workers = 2;
  cfg.shard.queue_capacity = 256;
  cfg.shard.channel.time_scale = 0.0;  // no simulated delays
  cfg.shard.threshold.adapt = serve::threshold_config::mode::fixed;
  cfg.shard.threshold.initial_delta = delta;
  return cfg;
}

serve::edge_backend_factory replay_edge_factory(const population& p) {
  return [&p](std::size_t, std::size_t) {
    return std::make_unique<serve::replay_edge_backend>(p.little, p.scores);
  };
}

serve::cloud_backend_factory replay_cloud_factory(const population& p) {
  return [&p] {
    return std::make_unique<serve::replay_cloud_backend>(p.big);
  };
}

TEST(server, two_sharded_deployments_match_their_offline_predictions) {
  const std::size_t n = 4000;
  const population vision = make_population(n, 101, 0.8);
  const population speech = make_population(n, 202, 0.7);
  const collab::sweep_point vision_offline = offline_point(vision, 0.9);
  const collab::sweep_point speech_offline = offline_point(speech, 0.8);

  serve::server srv;
  srv.register_deployment("vision",
                          replay_deployment_config(3, vision_offline.delta),
                          replay_edge_factory(vision),
                          replay_cloud_factory(vision));
  srv.register_deployment("speech",
                          replay_deployment_config(2, speech_offline.delta),
                          replay_edge_factory(speech),
                          replay_cloud_factory(speech));
  EXPECT_EQ(srv.num_deployments(), 2U);

  // Both deployments are driven concurrently from a shared client pool.
  std::vector<std::future<serve::response>> vision_futs(n);
  std::vector<std::future<serve::response>> speech_futs(n);
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 8; ++c) {
    clients.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        serve::inference_request to_vision;
        to_vision.model = "vision";
        to_vision.key = i;
        to_vision.label = vision.labels[i];
        vision_futs[i] = srv.submit(std::move(to_vision));
        serve::inference_request to_speech;
        to_speech.model = "speech";
        to_speech.key = i;
        to_speech.label = speech.labels[i];
        to_speech.priority = serve::priority_class::batch;
        speech_futs[i] = srv.submit(std::move(to_speech));
      }
    });
  }
  for (auto& t : clients) t.join();
  srv.drain();

  // Per-deployment aggregation: each deployment's achieved SR and online
  // accuracy reproduce its own offline system_eval prediction.
  const serve::stats_snapshot v = srv.at("vision").snapshot();
  const serve::stats_snapshot s = srv.at("speech").snapshot();
  EXPECT_EQ(v.completed, n);
  EXPECT_EQ(s.completed, n);
  EXPECT_EQ(v.shed, 0U);
  EXPECT_EQ(s.shed, 0U);
  EXPECT_NEAR(v.achieved_sr, vision_offline.achieved_sr, 0.02);
  EXPECT_NEAR(s.achieved_sr, speech_offline.achieved_sr, 0.02);
  EXPECT_NEAR(v.online_accuracy, vision_offline.accuracy, 0.02);
  EXPECT_NEAR(s.online_accuracy, speech_offline.accuracy, 0.02);
  // The two tenants really are different systems behind one front door.
  EXPECT_NE(vision_offline.delta, speech_offline.delta);

  // Key-affine routing: every response was served by the shard the router
  // maps its key to, and the traffic actually spread over >= 2 shards.
  serve::deployment& vd = srv.at("vision");
  ASSERT_EQ(vd.num_shards(), 3U);
  std::set<std::size_t> shards_hit;
  for (std::size_t i = 0; i < n; ++i) {
    const serve::response r = vision_futs[i].get();
    EXPECT_EQ(r.status, serve::request_status::ok);
    EXPECT_EQ(r.shard, vd.shard_for_key(i));
    shards_hit.insert(r.shard);
  }
  EXPECT_GE(shards_hit.size(), 2U);
  // Same key resubmitted -> same shard (affinity is a pure key property).
  for (std::uint64_t key : {7ULL, 1234ULL, 3999ULL}) {
    serve::inference_request again;
    again.model = "vision";
    again.key = key;
    const serve::response r = srv.submit(std::move(again)).get();
    EXPECT_EQ(r.shard, vd.shard_for_key(key));
  }

  const std::string report = srv.render_stats();
  EXPECT_NE(report.find("deployment 'vision'"), std::string::npos);
  EXPECT_NE(report.find("deployment 'speech'"), std::string::npos);
}

TEST(server, unknown_model_and_duplicate_registration_throw) {
  const population p = make_population(64, 7, 0.8);
  serve::server srv;
  srv.register_deployment("only", replay_deployment_config(1, 0.5),
                          replay_edge_factory(p), replay_cloud_factory(p));
  EXPECT_THROW(srv.register_deployment("only",
                                       replay_deployment_config(1, 0.5),
                                       replay_edge_factory(p),
                                       replay_cloud_factory(p)),
               util::error);
  serve::inference_request req;
  req.model = "missing";
  EXPECT_THROW(srv.submit(std::move(req)), util::error);
  EXPECT_EQ(srv.find("missing"), nullptr);
  EXPECT_NE(srv.find("only"), nullptr);
}

/// Saturating closed-loop load against a tiny queue with slow edge
/// workers: `shed` admission must answer immediately (status::shed)
/// instead of blocking the submitting thread.
TEST(server, shed_admission_never_blocks_under_saturation) {
  const std::size_t n = 500;
  const population p = make_population(n, 11, 0.8);

  // δ=0: every admitted request completes on the edge, so the only thing
  // pacing the system is the simulated edge compute below.
  serve::deployment_config cfg = replay_deployment_config(2, 0.0);
  cfg.shard.num_workers = 1;
  cfg.shard.queue_capacity = 4;
  cfg.shard.batching.max_batch_size = 4;
  cfg.shard.admission.policy = serve::admission_policy::shed;
  // ~50 ms of simulated edge compute per batch: the workers cannot keep
  // up, so a blocking submit loop would take many seconds.
  cfg.shard.simulate_edge_compute = true;
  cfg.shard.channel.time_scale = 50.0 / cfg.shard.link.overall_latency_ms(1.0);

  serve::server srv;
  srv.register_deployment("slow", cfg, replay_edge_factory(p),
                          replay_cloud_factory(p));

  util::stopwatch clock;
  std::vector<std::future<serve::response>> futs;
  futs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    serve::inference_request req;
    req.model = "slow";
    req.key = i;
    req.label = p.labels[i];
    futs.push_back(srv.submit(std::move(req)));
  }
  const double submit_seconds = clock.elapsed_seconds();
  // 500 requests through 2 shards draining 4-request batches at ~50 ms
  // per batch would need > 3 s if submit blocked; shedding keeps the
  // producer loop effectively instant.
  EXPECT_LT(submit_seconds, 2.0);

  srv.drain();
  std::size_t ok = 0;
  std::size_t shed = 0;
  for (auto& f : futs) {
    const serve::response r = f.get();
    if (r.status == serve::request_status::shed) {
      ++shed;
    } else {
      ASSERT_EQ(r.status, serve::request_status::ok);
      ++ok;
    }
  }
  EXPECT_GT(shed, 0U);
  EXPECT_GT(ok, 0U);
  const serve::stats_snapshot s = srv.at("slow").snapshot();
  EXPECT_EQ(s.shed, shed);
  EXPECT_EQ(s.completed, ok);
  EXPECT_EQ(s.submitted, n);
  EXPECT_GT(s.shed_rate, 0.0);
  EXPECT_EQ(srv.at("slow").shed_total(), shed);
}

/// Same saturation under `edge_only`: the overflow band is admitted but
/// pinned to the edge (route::edge_degraded), so the slow uplink never
/// sees the excess load.
TEST(server, edge_only_admission_degrades_instead_of_appealing) {
  const std::size_t n = 300;
  const population p = make_population(n, 13, 0.8);

  serve::deployment_config cfg = replay_deployment_config(1, 2.0);  // δ=2:
  // every score < δ, so all *admitted* traffic would appeal.
  cfg.shard.num_workers = 1;
  cfg.shard.queue_capacity = 4;
  cfg.shard.batching.max_batch_size = 4;
  cfg.shard.admission.policy = serve::admission_policy::edge_only;
  cfg.shard.admission.degrade_headroom = 4.0;
  cfg.shard.simulate_edge_compute = true;
  cfg.shard.channel.time_scale = 10.0 / cfg.shard.link.overall_latency_ms(1.0);

  serve::server srv;
  srv.register_deployment("m", cfg, replay_edge_factory(p),
                          replay_cloud_factory(p));
  std::vector<std::future<serve::response>> futs;
  futs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    serve::inference_request req;
    req.model = "m";
    req.key = i;
    req.label = p.labels[i];
    futs.push_back(srv.submit(std::move(req)));
  }
  srv.drain();

  std::size_t degraded = 0;
  for (auto& f : futs) {
    const serve::response r = f.get();
    if (r.status != serve::request_status::ok) continue;
    if (r.taken == serve::route::edge_degraded) {
      ++degraded;
      // Degraded answers come from the little model, pinned to the edge
      // even though the score is below δ.
      EXPECT_LT(r.score, 2.0);
    }
  }
  EXPECT_GT(degraded, 0U);
  const serve::stats_snapshot s = srv.at("m").snapshot();
  EXPECT_EQ(s.edge_degraded, degraded);
  EXPECT_EQ(s.edge_kept, 0U);  // nothing legitimately cleared δ=2
}

/// admission_controller unit semantics, isolated from engine threading.
TEST(admission, batch_headroom_and_degrade_limits) {
  serve::request_queue queue(4);
  serve::admission_config cfg;
  cfg.policy = serve::admission_policy::shed;
  cfg.batch_headroom = 0.5;  // batch lane: 2 of 4 slots
  serve::admission_controller ctl(cfg);

  auto make = [](std::uint64_t id, serve::priority_class pri) {
    serve::request r;
    r.id = id;
    r.priority = pri;
    return r;
  };

  serve::request r0 = make(0, serve::priority_class::batch);
  serve::request r1 = make(1, serve::priority_class::batch);
  serve::request r2 = make(2, serve::priority_class::batch);
  EXPECT_EQ(ctl.try_admit(queue, r0), serve::admission_verdict::admitted);
  EXPECT_EQ(ctl.try_admit(queue, r1), serve::admission_verdict::admitted);
  // Batch traffic is refused at its headroom while interactive still fits.
  EXPECT_EQ(ctl.try_admit(queue, r2), serve::admission_verdict::shed);
  serve::request r3 = make(3, serve::priority_class::interactive);
  serve::request r4 = make(4, serve::priority_class::interactive);
  serve::request r5 = make(5, serve::priority_class::interactive);
  EXPECT_EQ(ctl.try_admit(queue, r3), serve::admission_verdict::admitted);
  EXPECT_EQ(ctl.try_admit(queue, r4), serve::admission_verdict::admitted);
  EXPECT_EQ(ctl.try_admit(queue, r5), serve::admission_verdict::shed);
  EXPECT_EQ(ctl.admitted(), 4U);
  EXPECT_EQ(ctl.shed(), 2U);

  // edge_only: the same full queue admits into the overflow band with
  // force_edge set.
  serve::admission_config degrade_cfg;
  degrade_cfg.policy = serve::admission_policy::edge_only;
  degrade_cfg.degrade_headroom = 2.0;
  serve::admission_controller degrade(degrade_cfg);
  serve::request r6 = make(6, serve::priority_class::interactive);
  EXPECT_EQ(degrade.try_admit(queue, r6), serve::admission_verdict::degraded);
  EXPECT_EQ(degrade.degraded(), 1U);
  serve::request out;
  std::size_t forced = 0;
  while (queue.try_pop(out)) {
    if (out.force_edge) ++forced;
  }
  EXPECT_EQ(forced, 1U);

  // Closed queue reports `closed` and leaves the request with the caller.
  queue.close();
  serve::request r7 = make(7, serve::priority_class::interactive);
  EXPECT_EQ(ctl.try_admit(queue, r7), serve::admission_verdict::closed);
}

TEST(admission, cloud_pressure_tightens_batch_and_degrades_interactive_early) {
  // The breaker/overload signal from the cloud channel: batch admission
  // tightens by pressure_batch_scale, and interactive traffic degrades
  // to the edge at pressure_degrade_fraction × capacity instead of
  // waiting for the queue to fill with appeals bound for a sick uplink.
  serve::request_queue queue(4);
  serve::admission_config cfg;
  cfg.policy = serve::admission_policy::edge_only;
  cfg.batch_headroom = 0.5;          // 2 of 4 slots normally
  cfg.pressure_batch_scale = 0.5;    // 1 slot under pressure
  cfg.pressure_degrade_fraction = 0.5;  // degrade at 2 of 4
  serve::admission_controller ctl(cfg);
  EXPECT_FALSE(ctl.cloud_pressure());
  ctl.set_cloud_pressure(true);
  EXPECT_TRUE(ctl.cloud_pressure());

  auto make = [](std::uint64_t id, serve::priority_class pri) {
    serve::request r;
    r.id = id;
    r.priority = pri;
    return r;
  };
  serve::request b0 = make(0, serve::priority_class::batch);
  serve::request b1 = make(1, serve::priority_class::batch);
  EXPECT_EQ(ctl.try_admit(queue, b0), serve::admission_verdict::admitted);
  // The tightened batch lane (1 slot) refuses the second batch request —
  // and batch traffic never enters the degrade band.
  EXPECT_EQ(ctl.try_admit(queue, b1), serve::admission_verdict::shed);

  serve::request i0 = make(2, serve::priority_class::interactive);
  serve::request i1 = make(3, serve::priority_class::interactive);
  EXPECT_EQ(ctl.try_admit(queue, i0), serve::admission_verdict::admitted);
  // Queue depth 2 = pressure_degrade_fraction × capacity: interactive
  // now degrades to the edge even though the queue is half empty.
  EXPECT_EQ(ctl.try_admit(queue, i1), serve::admission_verdict::degraded);

  // Releasing the pressure restores the plain limits immediately.
  ctl.set_cloud_pressure(false);
  serve::request i2 = make(4, serve::priority_class::interactive);
  EXPECT_EQ(ctl.try_admit(queue, i2), serve::admission_verdict::admitted);

  EXPECT_EQ(ctl.admitted(), 3U);
  EXPECT_EQ(ctl.degraded(), 1U);
  EXPECT_EQ(ctl.shed(), 1U);
  serve::request out;
  std::size_t forced = 0;
  while (queue.try_pop(out)) {
    if (out.force_edge) ++forced;
  }
  EXPECT_EQ(forced, 1U);
}

}  // namespace
