// Tests for the experiment configuration plumbing: spec builders, cache
// keys, per-dataset defaults.
#include <gtest/gtest.h>

#include "collab/cost_model.hpp"
#include "collab/experiment.hpp"
#include "nn/flops.hpp"
#include "util/error.hpp"

namespace {

using namespace appeal;

TEST(experiment_config, canonical_distinguishes_every_knob) {
  const collab::experiment_config base;
  const std::string key = base.canonical();

  collab::experiment_config c = base;
  c.dataset = data::preset::gtsrb_like;
  EXPECT_NE(c.canonical(), key);

  c = base;
  c.edge_family = models::model_family::shufflenet;
  EXPECT_NE(c.canonical(), key);

  c = base;
  c.black_box = true;
  EXPECT_NE(c.canonical(), key);

  c = base;
  c.beta += 0.01;
  EXPECT_NE(c.canonical(), key);

  c = base;
  c.seed += 1;
  EXPECT_NE(c.canonical(), key);

  c = base;
  c.joint_epochs += 1;
  EXPECT_NE(c.canonical(), key);

  c = base;
  c.joint_lr *= 2.0;
  EXPECT_NE(c.canonical(), key);

  c = base;
  c.edge_width = 0.5F;
  EXPECT_NE(c.canonical(), key);

  c = base;
  c.augment = !c.augment;
  EXPECT_NE(c.canonical(), key);

  // verbose must NOT affect the key (it changes no artifact).
  c = base;
  c.verbose = !c.verbose;
  EXPECT_EQ(c.canonical(), key);
}

TEST(experiment_config, spec_builders_match_dataset_geometry) {
  for (const data::preset preset : data::all_presets()) {
    const collab::experiment_config cfg = collab::default_experiment(
        preset, models::model_family::mobilenet, false);
    const data::synthetic_config data_cfg =
        data::preset_config(preset, cfg.seed);

    const models::model_spec edge = collab::edge_spec_for(cfg);
    EXPECT_EQ(edge.num_classes, data_cfg.num_classes);
    EXPECT_EQ(edge.image_size, data_cfg.image_size);
    EXPECT_EQ(edge.in_channels, data_cfg.channels);
    EXPECT_EQ(edge.family, models::model_family::mobilenet);

    const models::model_spec big = collab::big_spec_for(cfg);
    EXPECT_EQ(big.num_classes, data_cfg.num_classes);
    EXPECT_EQ(big.family, models::model_family::resnet);
  }
}

TEST(experiment_config, big_model_dominates_edge_cost) {
  // The premise of the whole architecture: the cloud model is much more
  // expensive than any edge candidate at the same input geometry.
  const collab::experiment_config cfg = collab::default_experiment(
      data::preset::cifar10_like, models::model_family::mobilenet, false);
  const models::backbone edge =
      models::make_backbone(collab::edge_spec_for(cfg));
  const models::backbone big =
      models::make_backbone(collab::big_spec_for(cfg));
  const shape input{1, 3, 16, 16};
  EXPECT_GT(big.features->flops(input), 10 * edge.features->flops(input));
}

TEST(experiment_config, per_dataset_defaults_scale_with_difficulty) {
  const auto easy = collab::default_experiment(
      data::preset::cifar10_like, models::model_family::mobilenet, false);
  const auto hard = collab::default_experiment(
      data::preset::tiny_imagenet_like, models::model_family::mobilenet,
      false);
  EXPECT_GE(hard.big_epochs, easy.big_epochs);
  EXPECT_GE(hard.pretrain_epochs, easy.pretrain_epochs);
}

TEST(experiment_config, cost_model_from_experiment_outputs) {
  // Eq. 15 wiring sanity on the numbers an experiment produces.
  const collab::cost_model costs = collab::make_cost_model(0.48, 9.98, 3.0);
  EXPECT_GT(costs.c0(), costs.c1());
  EXPECT_GT(costs.c0() / costs.c1(), 10.0);
  // At the paper's typical operating band the system is far cheaper than
  // cloud-only.
  EXPECT_LT(costs.overall_mflops(0.9), 0.25 * costs.overall_mflops(0.0));
}

}  // namespace
