// Tests for the hardware profiler / model-pool selection (Fig. 3 workflow).
#include <gtest/gtest.h>

#include "core/hardware_profile.hpp"
#include "util/error.hpp"

namespace {

using namespace appeal;

core::hardware_spec roomy_device() {
  core::hardware_spec device;
  device.name = "roomy";
  device.compute_budget_mflops = 1e6;
  device.memory_budget_kb = 1e6;
  device.peak_gflops = 10.0;
  device.latency_budget_ms = 1e6;
  return device;
}

TEST(hardware_profile, default_pool_spans_families_and_widths) {
  const auto pool = core::default_model_pool(16, 10);
  EXPECT_EQ(pool.size(), 12U);  // 3 families x 4 widths
  bool has_shufflenet = false;
  for (const auto& spec : pool) {
    if (spec.family == models::model_family::shufflenet) has_shufflenet = true;
    EXPECT_EQ(spec.num_classes, 10U);
  }
  EXPECT_TRUE(has_shufflenet);
}

TEST(hardware_profile, profiles_report_positive_costs) {
  const auto pool = core::default_model_pool(16, 10);
  const auto profiled = core::profile_pool(roomy_device(), pool);
  ASSERT_EQ(profiled.size(), pool.size());
  for (const auto& p : profiled) {
    EXPECT_GT(p.mflops, 0.0);
    EXPECT_GT(p.params_kb, 0.0);
    EXPECT_GT(p.latency_ms, 0.0);
    EXPECT_TRUE(p.fits);  // roomy device fits everything
  }
}

TEST(hardware_profile, wider_models_cost_more) {
  std::vector<models::model_spec> pool;
  for (const float width : {0.5F, 1.0F, 1.5F}) {
    models::model_spec spec;
    spec.family = models::model_family::mobilenet;
    spec.image_size = 16;
    spec.num_classes = 10;
    spec.width = width;
    pool.push_back(spec);
  }
  const auto profiled = core::profile_pool(roomy_device(), pool);
  EXPECT_LT(profiled[0].mflops, profiled[1].mflops);
  EXPECT_LT(profiled[1].mflops, profiled[2].mflops);
}

TEST(hardware_profile, select_picks_most_capable_fitting_model) {
  const auto pool = core::default_model_pool(16, 10);
  const auto all = core::profile_pool(roomy_device(), pool);
  double max_mflops = 0.0;
  for (const auto& p : all) max_mflops = std::max(max_mflops, p.mflops);

  const auto chosen = core::select_edge_model(roomy_device(), pool);
  EXPECT_DOUBLE_EQ(chosen.mflops, max_mflops);
}

TEST(hardware_profile, tight_compute_budget_excludes_models) {
  const auto pool = core::default_model_pool(16, 10);
  core::hardware_spec device = roomy_device();
  const auto all = core::profile_pool(device, pool);
  // Set the budget between min and max so selection is constrained.
  double min_mflops = 1e18;
  double max_mflops = 0.0;
  for (const auto& p : all) {
    min_mflops = std::min(min_mflops, p.mflops);
    max_mflops = std::max(max_mflops, p.mflops);
  }
  device.compute_budget_mflops = (min_mflops + max_mflops) / 2.0;
  const auto chosen = core::select_edge_model(device, pool);
  EXPECT_LE(chosen.mflops, device.compute_budget_mflops);
  EXPECT_GT(chosen.mflops, min_mflops - 1e-12);
}

TEST(hardware_profile, latency_budget_is_enforced) {
  const auto pool = core::default_model_pool(16, 10);
  core::hardware_spec device = roomy_device();
  device.peak_gflops = 0.001;      // very slow device
  device.latency_budget_ms = 1.0;  // harsh budget
  bool any_fits = false;
  for (const auto& p : core::profile_pool(device, pool)) {
    if (p.fits) any_fits = true;
    EXPECT_GT(p.latency_ms, 0.0);
  }
  if (!any_fits) {
    EXPECT_THROW(core::select_edge_model(device, pool), util::error);
  }
}

TEST(hardware_profile, nothing_fits_throws) {
  core::hardware_spec device = roomy_device();
  device.compute_budget_mflops = 1e-9;
  EXPECT_THROW(
      core::select_edge_model(device, core::default_model_pool(16, 10)),
      util::error);
  EXPECT_THROW(core::profile_pool(device, {}), util::error);
}

}  // namespace
