// Tests for the confidence-score baselines (MSP / SM / Entropy) and the
// AppealNet q score conversion.
#include <gtest/gtest.h>

#include <cmath>

#include "core/scores.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace {

using namespace appeal;

tensor probs_from_rows(std::vector<std::vector<float>> rows) {
  const std::size_t n = rows.size();
  const std::size_t k = rows[0].size();
  tensor out(shape{n, k});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) out[i * k + j] = rows[i][j];
  }
  return out;
}

TEST(scores, msp_is_max_probability) {
  const tensor probs = probs_from_rows({{0.7F, 0.2F, 0.1F},
                                        {0.34F, 0.33F, 0.33F}});
  const auto s = core::msp_scores(probs);
  EXPECT_NEAR(s[0], 0.7, 1e-6);
  EXPECT_NEAR(s[1], 0.34, 1e-6);
}

TEST(scores, score_margin_is_top1_minus_top2) {
  const tensor probs = probs_from_rows({{0.7F, 0.2F, 0.1F},
                                        {0.5F, 0.5F, 0.0F}});
  const auto s = core::score_margin_scores(probs);
  EXPECT_NEAR(s[0], 0.5, 1e-6);
  EXPECT_NEAR(s[1], 0.0, 1e-6);
}

TEST(scores, entropy_is_negative_shannon_entropy) {
  const tensor probs = probs_from_rows({{1.0F, 0.0F, 0.0F},
                                        {1.0F / 3, 1.0F / 3, 1.0F / 3}});
  const auto s = core::entropy_scores(probs);
  EXPECT_NEAR(s[0], 0.0, 1e-6);           // certain -> entropy 0
  EXPECT_NEAR(s[1], -std::log(3.0), 1e-5);  // uniform -> -log K
  EXPECT_GT(s[0], s[1]);                  // higher = easier convention
}

TEST(scores, all_methods_rank_confident_above_uncertain) {
  const tensor probs = probs_from_rows({{0.95F, 0.03F, 0.02F},
                                        {0.4F, 0.35F, 0.25F}});
  for (const auto method :
       {core::score_method::msp, core::score_method::score_margin,
        core::score_method::entropy}) {
    const auto s = core::confidence_scores(method, probs);
    EXPECT_GT(s[0], s[1]) << core::score_method_name(method);
  }
}

TEST(scores, q_to_scores_preserves_values) {
  const auto s = core::q_to_scores({0.1F, 0.9F});
  EXPECT_NEAR(s[0], 0.1, 1e-6);
  EXPECT_NEAR(s[1], 0.9, 1e-6);
}

TEST(scores, appealnet_q_not_computable_from_probabilities) {
  const tensor probs = probs_from_rows({{0.5F, 0.5F}});
  EXPECT_THROW(core::confidence_scores(core::score_method::appealnet_q, probs),
               util::error);
}

TEST(scores, parsing_roundtrip_and_aliases) {
  EXPECT_EQ(core::parse_score_method("msp"), core::score_method::msp);
  EXPECT_EQ(core::parse_score_method("SM"), core::score_method::score_margin);
  EXPECT_EQ(core::parse_score_method("margin"),
            core::score_method::score_margin);
  EXPECT_EQ(core::parse_score_method("entropy"), core::score_method::entropy);
  EXPECT_EQ(core::parse_score_method("appealnet"),
            core::score_method::appealnet_q);
  EXPECT_EQ(core::parse_score_method("q"), core::score_method::appealnet_q);
  EXPECT_THROW(core::parse_score_method("dropout"), util::error);
  for (const auto m : core::all_score_methods()) {
    EXPECT_EQ(core::parse_score_method(core::score_method_name(m)), m);
  }
}

TEST(scores, rejects_degenerate_probability_matrices) {
  EXPECT_THROW(core::msp_scores(tensor(shape{3})), util::error);
  EXPECT_THROW(core::score_margin_scores(tensor(shape{2, 1})), util::error);
}

}  // namespace
