// Tests for SGD/Adam and learning-rate schedules.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/optimizer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;

nn::parameter make_param(std::vector<float> values) {
  const std::size_t n = values.size();
  return nn::parameter("p", tensor::from_values(shape{n}, std::move(values)));
}

TEST(sgd, plain_step_math) {
  nn::parameter p = make_param({1.0F, -2.0F});
  p.grad = tensor::from_values(shape{2}, {0.5F, -1.0F});
  nn::sgd opt(0.1, /*momentum=*/0.0);
  opt.attach({&p});
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0F - 0.1F * 0.5F);
  EXPECT_FLOAT_EQ(p.value[1], -2.0F + 0.1F * 1.0F);
}

TEST(sgd, momentum_accumulates_velocity) {
  nn::parameter p = make_param({0.0F});
  nn::sgd opt(1.0, /*momentum=*/0.5);
  opt.attach({&p});
  // Constant gradient 1: updates are 1, 1.5, 1.75, ...
  p.grad.fill(1.0F);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], -1.0F);
  p.grad.fill(1.0F);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], -2.5F);
  p.grad.fill(1.0F);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], -4.25F);
}

TEST(sgd, weight_decay_shrinks_weights_without_gradient) {
  nn::parameter p = make_param({10.0F});
  nn::sgd opt(0.1, 0.0, /*weight_decay=*/0.1);
  opt.attach({&p});
  p.zero_grad();
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 10.0F - 0.1F * (0.1F * 10.0F));
}

TEST(sgd, zero_grad_clears_accumulators) {
  nn::parameter p = make_param({1.0F});
  p.grad.fill(5.0F);
  nn::sgd opt(0.1);
  opt.attach({&p});
  opt.zero_grad();
  EXPECT_EQ(p.grad[0], 0.0F);
}

TEST(sgd, converges_on_quadratic) {
  // Minimize f(w) = 0.5 * (w - 3)^2; gradient = w - 3.
  nn::parameter p = make_param({0.0F});
  nn::sgd opt(0.2, 0.9);
  opt.attach({&p});
  for (int i = 0; i < 400; ++i) {
    p.grad[0] = p.value[0] - 3.0F;
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.0F, 1e-2F);
}

TEST(sgd, validates_hyperparameters) {
  EXPECT_THROW(nn::sgd(0.1, 1.5), util::error);
  EXPECT_THROW(nn::sgd(0.1, 0.9, -1.0), util::error);
}

TEST(adam, first_step_is_learning_rate_sized) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  nn::parameter p = make_param({1.0F});
  nn::adam opt(0.01);
  opt.attach({&p});
  p.grad[0] = 123.0F;
  opt.step();
  EXPECT_NEAR(p.value[0], 1.0F - 0.01F, 1e-4F);
}

TEST(adam, converges_on_quadratic) {
  nn::parameter p = make_param({-5.0F});
  nn::adam opt(0.1);
  opt.attach({&p});
  for (int i = 0; i < 300; ++i) {
    p.grad[0] = p.value[0] - 2.0F;
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 2.0F, 1e-2F);
}

TEST(adam, handles_multiple_parameters_of_different_shapes) {
  nn::parameter a = make_param({1.0F, 2.0F, 3.0F});
  nn::parameter b("b", tensor(shape{2, 2}, 1.0F));
  nn::adam opt(0.05);
  opt.attach({&a, &b});
  EXPECT_EQ(opt.parameter_count(), 2U);
  a.grad.fill(1.0F);
  b.grad.fill(-1.0F);
  opt.step();
  EXPECT_LT(a.value[0], 1.0F);
  EXPECT_GT(b.value[0], 1.0F);
}

TEST(adam, validates_hyperparameters) {
  EXPECT_THROW(nn::adam(0.1, 1.0), util::error);
  EXPECT_THROW(nn::adam(0.1, 0.9, 1.0), util::error);
  EXPECT_THROW(nn::adam(0.1, 0.9, 0.999, 0.0), util::error);
}

TEST(optimizer, attach_rejects_null) {
  nn::sgd opt(0.1);
  EXPECT_THROW(opt.attach({nullptr}), util::error);
}

TEST(lr_schedules, constant) {
  nn::constant_lr sched(0.3);
  EXPECT_DOUBLE_EQ(sched.learning_rate(0), 0.3);
  EXPECT_DOUBLE_EQ(sched.learning_rate(100), 0.3);
}

TEST(lr_schedules, step_decay) {
  nn::step_lr sched(1.0, 10, 0.5);
  EXPECT_DOUBLE_EQ(sched.learning_rate(0), 1.0);
  EXPECT_DOUBLE_EQ(sched.learning_rate(9), 1.0);
  EXPECT_DOUBLE_EQ(sched.learning_rate(10), 0.5);
  EXPECT_DOUBLE_EQ(sched.learning_rate(25), 0.25);
  EXPECT_THROW(nn::step_lr(1.0, 0, 0.5), util::error);
}

TEST(lr_schedules, cosine_endpoints_and_monotonicity) {
  nn::cosine_lr sched(1.0, 100, 0.1);
  EXPECT_DOUBLE_EQ(sched.learning_rate(0), 1.0);
  EXPECT_NEAR(sched.learning_rate(100), 0.1, 1e-9);
  EXPECT_NEAR(sched.learning_rate(50), 0.55, 1e-9);
  for (std::size_t e = 1; e <= 100; ++e) {
    EXPECT_LE(sched.learning_rate(e), sched.learning_rate(e - 1) + 1e-12);
  }
  EXPECT_THROW(nn::cosine_lr(0.1, 10, 0.5), util::error);
}

/// Property: both optimizers reduce a random convex quadratic from any
/// starting point.
class optimizer_convergence : public ::testing::TestWithParam<int> {};

TEST_P(optimizer_convergence, quadratic_bowl) {
  util::rng gen(static_cast<std::uint64_t>(GetParam()));
  const float target = gen.uniform(-5.0F, 5.0F);
  const float start = gen.uniform(-5.0F, 5.0F);

  nn::parameter p_sgd = make_param({start});
  nn::parameter p_adam = make_param({start});
  nn::sgd sgd_opt(0.1, 0.9);
  nn::adam adam_opt(0.2);
  sgd_opt.attach({&p_sgd});
  adam_opt.attach({&p_adam});

  for (int i = 0; i < 200; ++i) {
    p_sgd.grad[0] = p_sgd.value[0] - target;
    sgd_opt.step();
    p_adam.grad[0] = p_adam.value[0] - target;
    adam_opt.step();
  }
  EXPECT_NEAR(p_sgd.value[0], target, 1e-2F);
  EXPECT_NEAR(p_adam.value[0], target, 5e-2F);
}

INSTANTIATE_TEST_SUITE_P(seeds, optimizer_convergence,
                         ::testing::Range(1, 6));

}  // namespace
