// Dedicated request_queue suite: FIFO + priority-lane ordering,
// try_push admission limits, close/drain semantics, deadline pops, and
// concurrent producers/consumers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "serve/request_queue.hpp"
#include "util/error.hpp"

namespace {

using namespace appeal;
using namespace std::chrono_literals;

serve::request make_request(
    std::uint64_t id,
    serve::priority_class p = serve::priority_class::interactive) {
  serve::request r;
  r.id = id;
  r.key = id;
  r.priority = p;
  r.enqueue_time = std::chrono::steady_clock::now();
  return r;
}

TEST(serve_queue, fifo_and_size) {
  serve::request_queue queue(8);
  EXPECT_EQ(queue.size(), 0U);
  ASSERT_TRUE(queue.push(make_request(1)));
  ASSERT_TRUE(queue.push(make_request(2)));
  EXPECT_EQ(queue.size(), 2U);

  serve::request out;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.id, 1U);
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.id, 2U);
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(serve_queue, zero_capacity_throws) {
  EXPECT_THROW(serve::request_queue(0), util::error);
}

TEST(serve_queue, interactive_pops_ahead_of_batch) {
  serve::request_queue queue(8);
  ASSERT_TRUE(queue.push(make_request(1, serve::priority_class::batch)));
  ASSERT_TRUE(queue.push(make_request(2, serve::priority_class::batch)));
  ASSERT_TRUE(queue.push(make_request(3, serve::priority_class::interactive)));

  serve::request out;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.id, 3U);  // interactive jumps the batch backlog
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.id, 1U);  // FIFO within the batch lane
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.id, 2U);
}

TEST(serve_queue, try_push_reports_full_without_blocking) {
  serve::request_queue queue(2);
  EXPECT_EQ(queue.try_push(make_request(1)),
            serve::request_queue::push_result::ok);
  EXPECT_EQ(queue.try_push(make_request(2)),
            serve::request_queue::push_result::ok);
  EXPECT_EQ(queue.try_push(make_request(3)),
            serve::request_queue::push_result::full);
  EXPECT_EQ(queue.size(), 2U);
}

TEST(serve_queue, try_push_limit_overrides_capacity) {
  serve::request_queue queue(2);
  ASSERT_TRUE(queue.push(make_request(1)));
  // A lower limit (batch headroom) refuses below capacity...
  EXPECT_EQ(queue.try_push(make_request(2), /*limit=*/1),
            serve::request_queue::push_result::full);
  // ...and a higher limit (degrade overflow) admits beyond it.
  ASSERT_TRUE(queue.push(make_request(2)));
  EXPECT_EQ(queue.try_push(make_request(3), /*limit=*/4),
            serve::request_queue::push_result::ok);
  EXPECT_EQ(queue.size(), 3U);
}

TEST(serve_queue, try_push_leaves_refused_request_usable) {
  serve::request_queue queue(1);
  ASSERT_TRUE(queue.push(make_request(1)));
  serve::request refused = make_request(42);
  std::future<serve::response> fut = refused.promise.get_future();
  EXPECT_EQ(queue.try_push(std::move(refused)),
            serve::request_queue::push_result::full);
  // The caller can still fulfill the promise (the shed path relies on it).
  EXPECT_EQ(refused.id, 42U);
  serve::response resp;
  resp.status = serve::request_status::shed;
  refused.promise.set_value(resp);
  EXPECT_EQ(fut.get().status, serve::request_status::shed);
}

TEST(serve_queue, close_fails_pushes_and_drains_pops) {
  serve::request_queue queue(4);
  ASSERT_TRUE(queue.push(make_request(1)));
  queue.close();
  EXPECT_FALSE(queue.push(make_request(2)));
  EXPECT_EQ(queue.try_push(make_request(3)),
            serve::request_queue::push_result::closed);

  serve::request out;
  const auto deadline = std::chrono::steady_clock::now() + 100ms;
  EXPECT_EQ(queue.pop_until(out, deadline),
            serve::request_queue::pop_result::item);
  EXPECT_EQ(out.id, 1U);
  EXPECT_EQ(queue.pop_until(out, deadline),
            serve::request_queue::pop_result::closed);
}

TEST(serve_queue, pop_times_out_when_empty) {
  serve::request_queue queue(4);
  serve::request out;
  const auto deadline = std::chrono::steady_clock::now() + 10ms;
  EXPECT_EQ(queue.pop_until(out, deadline),
            serve::request_queue::pop_result::timed_out);
}

TEST(serve_queue, push_blocks_until_capacity_frees) {
  serve::request_queue queue(1);
  ASSERT_TRUE(queue.push(make_request(1)));

  std::thread producer([&] { EXPECT_TRUE(queue.push(make_request(2))); });
  std::this_thread::sleep_for(20ms);  // producer should now be blocked
  serve::request out;
  ASSERT_TRUE(queue.try_pop(out));
  producer.join();
  EXPECT_EQ(queue.size(), 1U);
}

TEST(serve_queue, close_wakes_blocked_producer) {
  serve::request_queue queue(1);
  ASSERT_TRUE(queue.push(make_request(1)));
  std::thread producer([&] { EXPECT_FALSE(queue.push(make_request(2))); });
  std::this_thread::sleep_for(20ms);
  queue.close();
  producer.join();
}

TEST(serve_queue, concurrent_producers_consumers_deliver_everything) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 3;
  constexpr std::size_t kPerProducer = 500;
  serve::request_queue queue(32);

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const auto id = static_cast<std::uint64_t>(p * kPerProducer + i);
        const auto pri = i % 3 == 0 ? serve::priority_class::batch
                                    : serve::priority_class::interactive;
        ASSERT_TRUE(queue.push(make_request(id, pri)));
      }
    });
  }

  std::atomic<std::size_t> popped{0};
  std::vector<std::atomic<bool>> seen(kProducers * kPerProducer);
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      serve::request out;
      for (;;) {
        const auto result = queue.pop_until(
            out, std::chrono::steady_clock::now() + 50ms);
        if (result == serve::request_queue::pop_result::item) {
          ASSERT_LT(out.id, seen.size());
          ASSERT_FALSE(seen[out.id].exchange(true)) << "duplicate delivery";
          popped.fetch_add(1);
        } else if (result == serve::request_queue::pop_result::closed) {
          return;
        }
      }
    });
  }

  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  EXPECT_EQ(queue.size(), 0U);
}

}  // namespace
