// End-to-end integration tests: Algorithm 1 on a small synthetic task, the
// builder facade, and the experiment runner + artifact cache.
//
// These train real (tiny) models, so they are the slowest tests in the
// suite (~tens of seconds total on one core).
#include <gtest/gtest.h>

#include <filesystem>

#include "collab/experiment.hpp"
#include "core/appealnet_builder.hpp"
#include "core/joint_trainer.hpp"
#include "data/presets.hpp"
#include "metrics/metrics.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace {

using namespace appeal;

core::trainer_config fast_trainer(std::size_t epochs) {
  core::trainer_config cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 32;
  cfg.learning_rate = 3e-3;
  cfg.seed = 9;
  return cfg;
}

TEST(integration, pretraining_beats_chance_and_improves) {
  const data::dataset_bundle bundle =
      data::make_small_bundle(data::preset::cifar10_like, 21);

  core::two_head_config cfg;
  cfg.spec.family = models::model_family::mobilenet;
  cfg.spec.width = 0.5F;
  cfg.spec.image_size = bundle.train->config().image_size;
  cfg.spec.num_classes = bundle.train->num_classes();
  core::two_head_network net(cfg);

  const double chance = 1.0 / static_cast<double>(bundle.val->num_classes());
  const tensor before = core::eval_approximator_logits(net, *bundle.val);
  const double acc_before = core::logits_accuracy(before, *bundle.val);
  EXPECT_NEAR(acc_before, chance, 0.15);  // untrained ~ chance

  const core::training_log log =
      core::pretrain_two_head(net, *bundle.train, bundle.val.get(),
                              fast_trainer(6));
  EXPECT_GT(log.val_accuracy, chance + 0.3);
  // Loss decreased across epochs.
  EXPECT_LT(log.epochs.back().mean_loss, log.epochs.front().mean_loss);
}

TEST(integration, joint_training_separates_easy_from_difficult) {
  const data::dataset_bundle bundle =
      data::make_small_bundle(data::preset::cifar10_like, 23);

  core::two_head_config cfg;
  cfg.spec.family = models::model_family::mobilenet;
  cfg.spec.image_size = bundle.train->config().image_size;
  cfg.spec.num_classes = bundle.train->num_classes();
  core::two_head_network net(cfg);

  core::pretrain_two_head(net, *bundle.train, nullptr, fast_trainer(8));

  core::joint_loss_config loss_cfg;
  loss_cfg.beta = 0.05;
  loss_cfg.black_box = true;  // oracle cloud: no big model needed
  // Joint phase mirrors the experiment runner: a longer lower-LR fine-tune.
  core::trainer_config joint_cfg = fast_trainer(14);
  joint_cfg.learning_rate = 1e-3;
  core::train_joint(net, *bundle.train, nullptr, {}, joint_cfg, loss_cfg);

  // On the test split, q should rank correctly-classified inputs above
  // misclassified ones well beyond chance, and correlate with the
  // generator's latent difficulty.
  const core::two_head_eval eval = core::eval_two_head(net, *bundle.test);
  const auto preds = ops::argmax_rows(eval.logits);
  std::vector<double> q_correct, q_wrong;
  double q_easy_total = 0.0, q_hard_total = 0.0;
  std::size_t easy_count = 0, hard_count = 0;
  for (std::size_t i = 0; i < bundle.test->size(); ++i) {
    const auto& s = bundle.test->get(i);
    (preds[i] == s.label ? q_correct : q_wrong)
        .push_back(static_cast<double>(eval.q[i]));
    if (s.difficulty < 0.25F) {
      q_easy_total += eval.q[i];
      ++easy_count;
    } else if (s.difficulty > 0.6F) {
      q_hard_total += eval.q[i];
      ++hard_count;
    }
  }
  ASSERT_GT(q_correct.size(), 10U);
  ASSERT_GT(q_wrong.size(), 10U);
  // Well above chance; at this micro scale (400 train samples, width-0.5
  // backbone) the full pipeline's ~0.9 AUROC is not reachable.
  EXPECT_GT(metrics::auroc(q_correct, q_wrong), 0.62);
  ASSERT_GT(easy_count, 5U);
  ASSERT_GT(hard_count, 5U);
  EXPECT_GT(q_easy_total / static_cast<double>(easy_count),
            q_hard_total / static_cast<double>(hard_count));
}

TEST(integration, builder_facade_produces_working_system) {
  const data::dataset_bundle bundle =
      data::make_small_bundle(data::preset::cifar10_like, 25);

  core::appealnet_build_config cfg;
  cfg.little.spec.family = models::model_family::mobilenet;
  cfg.little.spec.width = 0.5F;
  cfg.little.spec.image_size = bundle.train->config().image_size;
  cfg.little.spec.num_classes = bundle.train->num_classes();
  cfg.big_spec = cfg.little.spec;
  cfg.big_spec.family = models::model_family::resnet;
  cfg.big_spec.width = 0.5F;
  cfg.big_training = fast_trainer(6);
  cfg.pretraining = fast_trainer(5);
  cfg.joint_training = fast_trainer(6);
  cfg.joint_training.learning_rate = 1e-3;
  cfg.loss.beta = 0.05;
  cfg.target_skipping_rate = 0.85;

  core::appealnet_build_report report;
  core::appealnet_system system =
      core::build_appealnet(*bundle.train, *bundle.val, cfg, &report);

  EXPECT_GT(report.big_val_accuracy, 0.5);
  EXPECT_GT(report.little_val_accuracy, 0.4);

  // The calibrated threshold hits the target SR on the validation split.
  const auto val_decisions = system.infer_all(*bundle.val);
  std::size_t kept = 0;
  for (const auto& d : val_decisions) {
    if (!d.offloaded) ++kept;
  }
  EXPECT_NEAR(static_cast<double>(kept) /
                  static_cast<double>(val_decisions.size()),
              0.85, 0.06);

  // Batch and single-image inference agree.
  const auto batch_decisions = system.infer_all(*bundle.test);
  for (const std::size_t i : {0UL, 7UL, 33UL}) {
    const auto single = system.infer(bundle.test->get(i).image);
    EXPECT_EQ(single.predicted_class, batch_decisions[i].predicted_class);
    EXPECT_EQ(single.offloaded, batch_decisions[i].offloaded);
    EXPECT_NEAR(single.q, batch_decisions[i].q, 1e-5);
  }

  // Cost accounting: the cloud path is much more expensive than the edge.
  EXPECT_GT(system.cloud_mflops(), 3.0 * system.edge_mflops());
}

TEST(integration, experiment_runner_cache_roundtrip) {
  // Micro experiment config (tiny epochs; full-size dataset is too slow for
  // a unit test, so this exercises the cache logic through the real path
  // with the smallest preset sizes the runner supports).
  collab::experiment_config cfg;
  cfg.dataset = data::preset::cifar10_like;
  cfg.edge_family = models::model_family::mobilenet;
  cfg.black_box = true;  // skips big-network training: fast
  cfg.beta = 0.05;
  cfg.big_epochs = 1;
  cfg.pretrain_epochs = 2;
  cfg.joint_epochs = 2;
  cfg.edge_width = 0.5F;
  cfg.seed = 77;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "appeal_exp_cache").string();
  std::filesystem::remove_all(dir);
  const util::artifact_cache cache(dir);

  const auto first = collab::run_experiment(cfg, &cache);
  EXPECT_TRUE(cache.find(cfg.canonical()).has_value());

  const auto second = collab::run_experiment(cfg, &cache);
  EXPECT_EQ(first.test.labels, second.test.labels);
  EXPECT_EQ(ops::max_abs_diff(first.test.little_joint_logits,
                              second.test.little_joint_logits),
            0.0F);
  EXPECT_EQ(first.test.q, second.test.q);
  // Cached as float32 in the artifact meta block.
  EXPECT_NEAR(first.little_mflops, second.little_mflops, 1e-5);
  // Black-box cloud is an oracle: perfect accuracy by construction.
  EXPECT_DOUBLE_EQ(first.big_accuracy, 1.0);
  std::filesystem::remove_all(dir);
}

}  // namespace
