// Observability tests: registry instruments (counter/gauge/histogram
// semantics, quantile edge cases, concurrent writers — the TSan CI job
// runs this suite), Prometheus/JSON rendering, trace sampling and
// collection, the HTTP exporter round trip, and an end-to-end engine
// trace whose stages must reconcile with the measured latency.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "util/error.hpp"
#include "util/net.hpp"

namespace {

using namespace appeal;

TEST(metrics, counter_merges_shards_across_threads) {
  obs::metrics_registry reg;
  obs::counter& c = reg.get_counter("test_total");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(metrics, registry_find_or_create_is_by_name_and_labels) {
  obs::metrics_registry reg;
  obs::counter& a = reg.get_counter("x_total", {{"shard", "0"}});
  obs::counter& b = reg.get_counter("x_total", {{"shard", "1"}});
  obs::counter& a2 = reg.get_counter("x_total", {{"shard", "0"}});
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&a, &a2);
  a.add(3);
  EXPECT_EQ(a2.value(), 3U);
  EXPECT_EQ(b.value(), 0U);
}

TEST(metrics, registry_rejects_kind_and_binning_mismatches) {
  obs::metrics_registry reg;
  reg.get_counter("thing_total");
  EXPECT_THROW(reg.get_gauge("thing_total"), util::error);
  reg.get_histogram("lat_ms", {}, 0.0, 100.0, 10);
  EXPECT_THROW(reg.get_histogram("lat_ms", {}, 0.0, 200.0, 10), util::error);
  EXPECT_NO_THROW(reg.get_histogram("lat_ms", {}, 0.0, 100.0, 10));
}

TEST(metrics, gauge_set_and_add) {
  obs::metrics_registry reg;
  obs::gauge& g = reg.get_gauge("depth");
  EXPECT_EQ(g.value(), 0.0);
  g.set(4.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(metrics, histogram_quantile_empty_is_zero) {
  obs::histogram h(0.0, 10.0, 10);
  const auto s = h.snapshot();
  EXPECT_EQ(s.total, 0U);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.quantile(0.99), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(metrics, histogram_single_bin_quantiles_all_land_there) {
  obs::histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.observe(3.2);
  const auto s = h.snapshot();
  // Every observation is in bin 3 ([3, 4)); every quantile reads its
  // center.
  EXPECT_DOUBLE_EQ(s.quantile(0.01), 3.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 3.5);
  EXPECT_EQ(s.overflow, 0U);
}

TEST(metrics, histogram_overflow_clamps_to_top_bin_and_counts) {
  obs::histogram h(0.0, 10.0, 10);
  h.observe(5.0);
  h.observe(10.0);        // at hi: clamps
  h.observe(1e9);         // far beyond: clamps
  h.observe(-7.0);        // below lo: bin 0, not overflow
  const auto s = h.snapshot();
  EXPECT_EQ(s.total, 4U);
  EXPECT_EQ(s.overflow, 2U);
  EXPECT_EQ(s.counts[0], 1U);
  EXPECT_EQ(s.counts[5], 1U);
  EXPECT_EQ(s.counts[9], 2U);
  // The sum keeps the raw values (so the mean shows the clamping too).
  EXPECT_DOUBLE_EQ(s.sum, 5.0 + 10.0 + 1e9 - 7.0);
}

TEST(metrics, histogram_nan_counts_as_overflow) {
  obs::histogram h(0.0, 10.0, 10);
  h.observe(std::numeric_limits<double>::quiet_NaN());
  const auto s = h.snapshot();
  EXPECT_EQ(s.total, 1U);
  EXPECT_EQ(s.overflow, 1U);
}

TEST(metrics, histogram_concurrent_observers_lose_nothing) {
  obs::histogram h(0.0, 100.0, 100);
  constexpr std::size_t kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>(i % 100) + 0.5);
      }
    });
  }
  for (auto& t : pool) t.join();
  const auto s = h.snapshot();
  EXPECT_EQ(s.total, kThreads * kPerThread);
  for (std::size_t b = 0; b < 100; ++b) {
    EXPECT_EQ(s.counts[b], kThreads * kPerThread / 100) << "bin " << b;
  }
}

TEST(metrics, concurrent_registration_yields_one_instrument) {
  obs::metrics_registry reg;
  constexpr std::size_t kThreads = 8;
  std::vector<obs::counter*> seen(kThreads);
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg, &seen, t] {
      obs::counter& c =
          reg.get_counter("race_total", {{"k", "v"}});
      c.add(1);
      seen[t] = &c;
    });
  }
  for (auto& t : pool) t.join();
  for (std::size_t t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->value(), kThreads);
}

TEST(metrics, prometheus_render_has_help_type_and_labels) {
  obs::metrics_registry reg;
  reg.get_counter("req_total", {{"deployment", "d"}}, "requests").add(5);
  reg.get_gauge("depth", {}, "queue depth").set(2.0);
  obs::histogram& h = reg.get_histogram("lat_ms", {}, 0.0, 10.0, 10, "lat");
  h.observe(3.0);
  h.observe(7.0);
  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("# HELP req_total requests"), std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter"), std::string::npos);
  EXPECT_NE(text.find("req_total{deployment=\"d\"} 5"), std::string::npos);
  EXPECT_NE(text.find("depth 2"), std::string::npos);
  EXPECT_NE(text.find("lat_ms{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_count 2"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_sum 10"), std::string::npos);
}

TEST(metrics, json_render_parses_shape) {
  obs::metrics_registry reg;
  reg.get_counter("a_total").add(1);
  reg.get_gauge("b").set(2.5);
  std::string json = reg.render_json();
  while (!json.empty() && json.back() == '\n') json.pop_back();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"a_total\""), std::string::npos);
  EXPECT_NE(json.find("\"b\""), std::string::npos);
}

TEST(trace, sampler_is_every_nth) {
  obs::trace_sampler s(0.25);  // period 4
  int sampled = 0;
  for (int i = 0; i < 100; ++i) {
    auto span = s.sample(i, std::chrono::steady_clock::now());
    if (span != nullptr) {
      ++sampled;
      EXPECT_NE(span->trace_id, 0U);
    }
  }
  EXPECT_EQ(sampled, 25);
  obs::trace_sampler off(0.0);
  EXPECT_EQ(off.sample(0, std::chrono::steady_clock::now()), nullptr);
  obs::trace_sampler all(1.0);
  EXPECT_NE(all.sample(0, std::chrono::steady_clock::now()), nullptr);
}

TEST(trace, span_set_clamps_negative_stages) {
  obs::trace_span span;
  span.set(obs::stage::wire_rx, -3.0);
  EXPECT_EQ(span.get(obs::stage::wire_rx), 0.0);
  span.set(obs::stage::edge_infer, 2.0);
  EXPECT_DOUBLE_EQ(span.stage_sum(), 2.0);
}

TEST(trace, collector_ring_bounds_and_jsonl) {
  obs::trace_collector col(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    obs::trace_span s;
    s.trace_id = i + 1;
    s.key = i;
    s.total_ms = 1.0;
    s.set(obs::stage::queue_wait, 0.25);
    col.record(std::move(s));
  }
  EXPECT_EQ(col.recorded(), 6U);
  const std::vector<obs::trace_span> snap = col.snapshot();
  ASSERT_EQ(snap.size(), 4U);  // oldest two evicted
  EXPECT_EQ(snap.front().trace_id, 3U);
  EXPECT_EQ(snap.back().trace_id, 6U);
  const std::string jsonl = col.render_jsonl();
  EXPECT_NE(jsonl.find("\"trace_id\":3"), std::string::npos);
  EXPECT_NE(jsonl.find("\"queue_wait\":0.25"), std::string::npos);
  col.clear();
  EXPECT_EQ(col.recorded(), 0U);
  EXPECT_TRUE(col.snapshot().empty());
}

TEST(trace, collector_feeds_only_on_path_stages) {
  obs::metrics_registry reg;
  obs::trace_collector col(16);
  col.attach_registry(&reg, 100.0, 100);
  obs::trace_span edge_kept;
  edge_kept.total_ms = 1.0;
  edge_kept.appealed = false;
  col.record(std::move(edge_kept));
  obs::trace_span appealed;
  appealed.total_ms = 5.0;
  appealed.appealed = true;
  col.record(std::move(appealed));
  // Cloud stages saw only the appealed span; edge stages saw both.
  EXPECT_EQ(reg.get_histogram("appeal_stage_ms", {{"stage", "cloud_queue"}},
                              0.0, 100.0, 100)
                .snapshot()
                .total,
            1U);
  EXPECT_EQ(reg.get_histogram("appeal_stage_ms", {{"stage", "queue_wait"}},
                              0.0, 100.0, 100)
                .snapshot()
                .total,
            2U);
}

TEST(exporter, http_metrics_round_trip) {
  obs::metrics_registry reg;
  reg.get_counter("exported_total").add(9);
  obs::metrics_http_server server(reg, "127.0.0.1:0");
  ASSERT_NE(server.port(), 0);

  net::fd conn = net::connect_tcp("127.0.0.1:" +
                                  std::to_string(server.port()));
  const std::string req =
      "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  net::write_all(conn, reinterpret_cast<const std::uint8_t*>(req.data()),
                 req.size());
  std::string body;
  std::uint8_t buf[4096];
  for (;;) {
    const std::size_t n = net::read_some(conn, buf, sizeof(buf));
    if (n == 0) break;
    body.append(reinterpret_cast<const char*>(buf), n);
  }
  EXPECT_NE(body.find("200 OK"), std::string::npos);
  EXPECT_NE(body.find("exported_total 9"), std::string::npos);
  EXPECT_EQ(server.requests(), 1U);
  server.stop();
}

TEST(exporter, http_unknown_path_is_404) {
  obs::metrics_registry reg;
  obs::metrics_http_server server(reg, "127.0.0.1:0");
  net::fd conn = net::connect_tcp("127.0.0.1:" +
                                  std::to_string(server.port()));
  const std::string req = "GET /nope HTTP/1.1\r\n\r\n";
  net::write_all(conn, reinterpret_cast<const std::uint8_t*>(req.data()),
                 req.size());
  std::string head;
  std::uint8_t buf[512];
  const std::size_t n = net::read_some(conn, buf, sizeof(buf));
  if (n > 0) head.assign(reinterpret_cast<const char*>(buf), n);
  EXPECT_NE(head.find("404"), std::string::npos);
  server.stop();
}

/// End to end: a traced engine run over the sim transport. Every span's
/// stages must sum to its measured total (the `complete` residual stage
/// guarantees it by construction — this guards the construction).
TEST(trace, engine_spans_reconcile_with_measured_latency) {
  obs::default_collector().clear();
  serve::engine_config cfg;
  cfg.num_workers = 2;
  cfg.trace_sample_rate = 1.0;
  cfg.threshold.adapt = serve::threshold_config::mode::fixed;
  cfg.threshold.initial_delta = 0.5;
  cfg.channel.time_scale = 0.05;
  const std::size_t n = 200;
  std::vector<std::size_t> preds(n, 1);
  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    scores[i] = i % 2 == 0 ? 0.9 : 0.1;  // half appeal
  }
  std::vector<std::size_t> big(n, 1);
  const std::uint64_t before = obs::default_collector().recorded();
  {
    serve::engine eng(
        cfg,
        serve::engine_resources::owning(
            cfg,
            [&](std::size_t) {
              return std::make_unique<serve::replay_edge_backend>(preds,
                                                                  scores);
            },
            [&] {
              return std::make_unique<serve::replay_cloud_backend>(big);
            }));
    std::vector<std::future<serve::response>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(eng.submit(tensor(shape{1}), i));
    }
    for (auto& f : futures) f.get();
    eng.drain();
  }
  const std::vector<obs::trace_span> spans =
      obs::default_collector().snapshot();
  ASSERT_GE(obs::default_collector().recorded() - before, n);
  std::size_t appealed = 0;
  for (const obs::trace_span& s : spans) {
    EXPECT_NEAR(s.stage_sum(), s.total_ms, 0.05 * s.total_ms + 1e-6)
        << "trace " << s.trace_id;
    if (s.appealed) {
      ++appealed;
      EXPECT_GT(s.get(obs::stage::wire_rx) + s.get(obs::stage::wire_tx) +
                    s.get(obs::stage::appeal_coalesce),
                0.0);
    }
  }
  EXPECT_GT(appealed, 0U);
  obs::default_collector().clear();
}

}  // namespace

