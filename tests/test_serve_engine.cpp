// End-to-end serving engine tests (the engine stays usable standalone,
// without the serve::server facade): every submitted request completes,
// stats are self-consistent, with a fixed δ the online accuracy/SR equal
// the offline core::threshold evaluation of the same population, owned
// factory backends, and deadline expiry.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <vector>

#include "core/threshold.hpp"
#include "metrics/metrics.hpp"
#include "serve/engine.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;

struct population {
  std::vector<std::size_t> labels;
  std::vector<std::size_t> little;
  std::vector<std::size_t> big;
  std::vector<double> scores;
};

/// Synthetic workload mirroring the offline test fixtures: a little model
/// that is right ~80% of the time, a big model right ~97%, and scores
/// correlated with little-correctness (easy inputs score high).
population make_population(std::size_t n, std::uint64_t seed) {
  util::rng gen(seed);
  population p;
  p.labels.resize(n);
  p.little.resize(n);
  p.big.resize(n);
  p.scores.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.labels[i] = i % 10;
    const bool little_right = gen.bernoulli(0.8);
    p.little[i] = little_right ? p.labels[i] : (p.labels[i] + 1) % 10;
    p.big[i] = gen.bernoulli(0.97) ? p.labels[i] : (p.labels[i] + 2) % 10;
    p.scores[i] = little_right ? 0.5 + 0.5 * gen.uniform()
                               : 0.7 * gen.uniform();
  }
  return p;
}

serve::engine_config fast_config() {
  serve::engine_config cfg;
  cfg.batching.max_batch_size = 16;
  cfg.batching.max_wait = std::chrono::microseconds(200);
  cfg.num_workers = 2;
  cfg.queue_capacity = 256;
  cfg.channel.time_scale = 0.0;  // no simulated delays in unit tests
  return cfg;
}

TEST(engine, fixed_delta_matches_offline_evaluation) {
  const std::size_t n = 4000;
  const population p = make_population(n, 31);
  const double delta = 0.55;

  serve::replay_edge_backend edge(p.little, p.scores);
  serve::replay_cloud_backend cloud(p.big);

  serve::engine_config cfg = fast_config();
  cfg.threshold.adapt = serve::threshold_config::mode::fixed;
  cfg.threshold.initial_delta = delta;
  serve::engine eng(
      cfg, serve::engine_resources::standalone(edge, cloud));

  std::vector<std::future<serve::response>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(eng.submit(tensor(), i, p.labels[i]));
  }
  eng.drain();

  // Offline ground truth for the identical population and δ.
  core::accuracy_context ctx;
  ctx.little_accuracy = metrics::accuracy(p.little, p.labels);
  ctx.big_accuracy = metrics::accuracy(p.big, p.labels);
  const core::operating_point offline =
      core::evaluate_at_delta(p.little, p.big, p.labels, p.scores, delta, ctx);

  const serve::stats_snapshot s = eng.stats().snapshot();
  EXPECT_EQ(s.completed, n);
  EXPECT_EQ(s.edge_kept + s.appealed, n);
  EXPECT_EQ(s.labeled, n);
  EXPECT_NEAR(s.achieved_sr, offline.skipping_rate, 1e-12);
  EXPECT_NEAR(s.online_accuracy, offline.overall_accuracy, 1e-12);

  // Per-response invariants: the route follows the threshold rule and the
  // prediction comes from the routed model.
  for (std::size_t i = 0; i < n; ++i) {
    const serve::response r = futures[i].get();
    const std::size_t key = r.id;  // ids are submit order here
    ASSERT_LT(key, n);
    if (r.taken == serve::route::edge) {
      EXPECT_GE(r.score, delta);
    } else {
      EXPECT_LT(r.score, delta);
    }
    EXPECT_DOUBLE_EQ(r.delta, delta);
    EXPECT_GE(r.latency_ms, 0.0);
  }
}

TEST(engine, adaptive_mode_tracks_target_sr) {
  const std::size_t n = 6000;
  const population p = make_population(n, 37);

  serve::replay_edge_backend edge(p.little, p.scores);
  serve::replay_cloud_backend cloud(p.big);

  serve::engine_config cfg = fast_config();
  cfg.threshold.adapt = serve::threshold_config::mode::track_sr;
  cfg.threshold.target_sr = 0.85;
  cfg.threshold.initial_delta = 0.99;  // start far off target
  cfg.threshold.recalibrate_every = 128;
  cfg.threshold.window = 1024;
  serve::engine eng(
      cfg, serve::engine_resources::standalone(edge, cloud));

  // Warm the controller through its first recalibration windows, then
  // measure steady state only (the serving bench does the same): how
  // long the cold-start transient lasts depends on scheduling — under a
  // sanitizer it can stretch far enough to drag the overall SR outside
  // any fixed tolerance.
  const std::size_t warmup = 2000;
  for (std::size_t i = 0; i < warmup; ++i) {
    eng.submit(tensor(), i, p.labels[i]);
  }
  eng.drain();
  eng.reset_stats();
  for (std::size_t i = warmup; i < n; ++i) {
    eng.submit(tensor(), i, p.labels[i]);
  }
  eng.drain();

  const serve::stats_snapshot s = eng.stats().snapshot();
  EXPECT_EQ(s.completed, n - warmup);
  // 2% of target in steady state (the acceptance bound of the serving
  // bench).
  EXPECT_NEAR(s.achieved_sr, 0.85, 0.02);
  EXPECT_NEAR(eng.controller().observed_sr(), 0.85, 0.05);
  EXPECT_GT(eng.controller().recalibrations(), 0U);
}

TEST(engine, unlabeled_requests_are_excluded_from_accuracy) {
  const std::size_t n = 200;
  const population p = make_population(n, 41);
  serve::replay_edge_backend edge(p.little, p.scores);
  serve::replay_cloud_backend cloud(p.big);

  serve::engine_config cfg = fast_config();
  cfg.threshold.adapt = serve::threshold_config::mode::fixed;
  serve::engine eng(
      cfg, serve::engine_resources::standalone(edge, cloud));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t label =
        i % 2 == 0 ? p.labels[i] : serve::request::no_label;
    eng.submit(tensor(), i, label);
  }
  eng.drain();
  const serve::stats_snapshot s = eng.stats().snapshot();
  EXPECT_EQ(s.completed, n);
  EXPECT_EQ(s.labeled, n / 2);
}

TEST(engine, owning_factory_constructor_serves_like_references) {
  const std::size_t n = 1000;
  const population p = make_population(n, 53);
  const double delta = 0.55;

  serve::engine_config cfg = fast_config();
  cfg.threshold.adapt = serve::threshold_config::mode::fixed;
  cfg.threshold.initial_delta = delta;
  serve::engine eng(
      cfg,
      serve::engine_resources::owning(
          cfg,
          [&p](std::size_t) {
            return std::make_unique<serve::replay_edge_backend>(p.little,
                                                                p.scores);
          },
          [&p] {
            return std::make_unique<serve::replay_cloud_backend>(p.big);
          }));

  for (std::size_t i = 0; i < n; ++i) {
    eng.submit(tensor(), i, p.labels[i]);
  }
  eng.drain();
  const serve::stats_snapshot s = eng.stats().snapshot();
  EXPECT_EQ(s.completed, n);
  EXPECT_EQ(s.edge_kept + s.appealed, n);
  EXPECT_GT(s.edge_kept, 0U);
  EXPECT_GT(s.appealed, 0U);
}

TEST(engine, expired_deadline_skips_inference) {
  const std::size_t n = 64;
  const population p = make_population(n, 59);
  serve::replay_edge_backend edge(p.little, p.scores);
  serve::replay_cloud_backend cloud(p.big);

  serve::engine_config cfg = fast_config();
  cfg.threshold.adapt = serve::threshold_config::mode::fixed;
  // A wide batching wait guarantees the queue dwell exceeds the deadline.
  cfg.num_workers = 1;
  cfg.batching.max_batch_size = n;
  cfg.batching.max_wait = std::chrono::microseconds(20'000);
  serve::engine eng(
      cfg, serve::engine_resources::standalone(edge, cloud));

  std::vector<std::future<serve::response>> futures;
  for (std::size_t i = 0; i < n; ++i) {
    serve::inference_request req;
    req.key = i;
    req.label = p.labels[i];
    req.deadline = std::chrono::microseconds(i % 2 == 0 ? 1 : 10'000'000);
    futures.push_back(eng.submit(std::move(req)));
  }
  eng.drain();

  std::size_t expired = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const serve::response r = futures[i].get();
    if (r.status == serve::request_status::expired) {
      ++expired;
      EXPECT_EQ(i % 2, 0U) << "only the 1 µs deadlines may expire";
    }
  }
  EXPECT_GT(expired, 0U);
  const serve::stats_snapshot s = eng.stats().snapshot();
  EXPECT_EQ(s.expired, expired);
  EXPECT_EQ(s.completed + s.expired, n);
  // Expired requests are excluded from SR/accuracy denominators.
  EXPECT_EQ(s.labeled, s.completed);
}

TEST(engine, submit_after_shutdown_throws) {
  const population p = make_population(16, 43);
  serve::replay_edge_backend edge(p.little, p.scores);
  serve::replay_cloud_backend cloud(p.big);
  serve::engine_config cfg = fast_config();
  serve::engine eng(
      cfg, serve::engine_resources::standalone(edge, cloud));
  eng.submit(tensor(), 0, p.labels[0]);
  eng.shutdown();
  EXPECT_THROW(eng.submit(tensor(), 1, p.labels[1]), util::error);
}

TEST(engine, simulated_link_delay_shows_up_in_cloud_latency) {
  const std::size_t n = 64;
  const population p = make_population(n, 47);
  serve::replay_edge_backend edge(p.little, p.scores);
  serve::replay_cloud_backend cloud(p.big);

  serve::engine_config cfg = fast_config();
  cfg.num_workers = 1;
  cfg.threshold.adapt = serve::threshold_config::mode::fixed;
  cfg.threshold.initial_delta = 2.0;  // appeal everything
  cfg.channel.time_scale = 0.05;      // 5% of the modeled delays
  serve::engine eng(
      cfg, serve::engine_resources::standalone(edge, cloud));

  std::vector<std::future<serve::response>> futures;
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(eng.submit(tensor(), i, p.labels[i]));
  }
  eng.drain();

  const double min_link_ms =
      (cfg.link.comm_round_trip_ms + cfg.link.input_kb * cfg.link.comm_ms_per_kb) *
      cfg.channel.time_scale;
  for (auto& f : futures) {
    const serve::response r = f.get();
    EXPECT_EQ(r.taken, serve::route::cloud);
    EXPECT_GE(r.link_ms, min_link_ms * 0.9);
    EXPECT_GE(r.latency_ms, r.link_ms * 0.5);
  }
  const serve::stats_snapshot s = eng.stats().snapshot();
  EXPECT_EQ(s.appealed, n);
  EXPECT_GT(s.mean_link_ms, 0.0);
}

}  // namespace
