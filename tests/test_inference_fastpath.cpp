// Tests for the inference fast path: batched conv lowering, the
// inference workspace arena, conv+batchnorm folding, and the
// no-backward-caches contract.
#include <gtest/gtest.h>

#include <memory>

#include "core/two_head_network.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/activations.hpp"
#include "nn/fold.hpp"
#include "nn/inference_workspace.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using appeal::shape;
using appeal::tensor;
namespace nn = appeal::nn;
namespace ops = appeal::ops;

tensor random_input(const shape& s, std::uint64_t seed) {
  appeal::util::rng gen(seed);
  return tensor::rand_uniform(s, gen, -1.0F, 1.0F);
}

/// The batched inference path (one strided im2col + one GEMM per layer)
/// must match the per-sample training lowering exactly: both accumulate
/// each output element in the same patch order.
TEST(conv_fastpath, batched_inference_matches_training_forward) {
  for (const std::size_t groups : {std::size_t{1}, std::size_t{4}}) {
    nn::conv2d conv(8, 12, /*kernel=*/3, /*stride=*/1, /*padding=*/1, groups,
                    /*bias=*/true);
    appeal::util::rng gen(41);
    nn::initialize_model(conv, gen);
    const tensor x = random_input(shape{5, 8, 9, 7}, 42);

    const tensor train_out = conv.forward(x, /*training=*/true);
    const tensor infer_out = conv.forward(x, /*training=*/false);
    EXPECT_EQ(train_out.dims(), infer_out.dims());
    EXPECT_EQ(ops::max_abs_diff(train_out, infer_out), 0.0F)
        << "groups=" << groups;
  }
}

/// Depthwise runs a direct stencil in inference (no im2col); values match
/// the training lowering up to summation-order rounding.
TEST(conv_fastpath, depthwise_direct_matches_training_forward) {
  nn::conv2d conv(16, 16, /*kernel=*/3, /*stride=*/2, /*padding=*/1,
                  /*groups=*/16, /*bias=*/true);
  appeal::util::rng gen(48);
  nn::initialize_model(conv, gen);
  const tensor x = random_input(shape{4, 16, 9, 9}, 49);

  const tensor train_out = conv.forward(x, /*training=*/true);
  const tensor infer_out = conv.forward(x, /*training=*/false);
  EXPECT_EQ(train_out.dims(), infer_out.dims());
  EXPECT_LE(ops::max_abs_diff(train_out, infer_out), 1e-6F);
}

TEST(conv_fastpath, inference_forward_clears_backward_cache) {
  nn::conv2d conv(3, 4, 3, 1, 1);
  const tensor x = random_input(shape{2, 3, 6, 6}, 43);
  const tensor y = conv.forward(x, /*training=*/false);
  EXPECT_THROW(conv.backward(y), appeal::util::error);
}

TEST(workspace, steady_state_inference_allocates_nothing) {
  nn::sequential net;
  net.emplace<nn::conv2d>(3, 8, 3, 1, 1);
  net.emplace<nn::batchnorm2d>(8);
  net.emplace<nn::conv2d>(8, 8, 3, 1, 1, /*groups=*/8, /*bias=*/false);
  net.emplace<nn::linear>(8 * 6 * 6, 10);
  // (linear needs rank-2 input; flatten via a conv-to-linear boundary)
  appeal::util::rng gen(44);
  nn::initialize_model(net, gen);

  nn::inference_workspace& ws = nn::inference_workspace::local();
  ws.clear();

  const tensor x = random_input(shape{4, 3, 6, 6}, 45);
  auto run = [&] {
    tensor features = net.child(0).forward(x, false);
    tensor bn = net.child(1).forward(features, false);
    ws.recycle(std::move(features));
    tensor dw = net.child(2).forward(bn, false);
    ws.recycle(std::move(bn));
    tensor flat = dw.reshaped(shape{4, 8 * 6 * 6});
    tensor logits = net.child(3).forward(flat, false);
    ws.recycle(std::move(dw));
    ws.recycle(std::move(logits));
  };

  run();  // warmup populates the pool
  const std::size_t warm_allocations = ws.stats().allocations;
  for (int i = 0; i < 5; ++i) run();
  const nn::inference_workspace::usage after = ws.stats();
  EXPECT_EQ(after.allocations, warm_allocations)
      << "steady-state inference hit the heap";
  EXPECT_GT(after.reuses, 0U);
  ws.clear();
}

void build_conv_bn_stack(nn::sequential& net, std::uint64_t seed) {
  net.emplace<nn::conv2d>(3, 16, 3, 1, 1, 1, /*bias=*/false);
  net.emplace<nn::batchnorm2d>(16);
  net.emplace<nn::conv2d>(16, 16, 3, 2, 1, /*groups=*/16, /*bias=*/false);
  net.emplace<nn::batchnorm2d>(16);
  net.emplace<nn::conv2d>(16, 8, 1, 1, 0, 1, /*bias=*/true);
  net.emplace<nn::batchnorm2d>(8);
  appeal::util::rng gen(seed);
  nn::initialize_model(net, gen);
}

/// Drives a few training steps so the running statistics are non-trivial,
/// then checks folding: same outputs (up to rounding), fewer layers.
TEST(fold, conv_batchnorm_folding_preserves_inference_outputs) {
  nn::sequential net;
  build_conv_bn_stack(net, 46);
  for (int step = 0; step < 3; ++step) {
    tensor x = random_input(shape{6, 3, 8, 8}, 47 + step);
    net.forward(x, /*training=*/true);  // updates running stats
  }

  const tensor x = random_input(shape{4, 3, 8, 8}, 50);
  const tensor before = net.forward(x, /*training=*/false);

  const std::size_t folded = nn::fold_conv_batchnorm(net);
  EXPECT_EQ(folded, 3U);
  EXPECT_EQ(net.size(), 3U);  // batchnorms removed

  const tensor after = net.forward(x, /*training=*/false);
  EXPECT_EQ(before.dims(), after.dims());
  EXPECT_LE(ops::max_abs_diff(before, after), 2e-5F);
}

/// Activation fusion is a pure store-pass rewrite: the clamp moves into
/// the conv's GEMM/stencil epilogue, so outputs are BIT-identical to the
/// separate activation layer, across the dense (n==1 and batched+scatter),
/// grouped, and depthwise inference paths.
TEST(fold, conv_activation_fusion_is_bit_exact) {
  nn::sequential net;
  net.emplace<nn::conv2d>(3, 16, 3, 1, 1, 1, /*bias=*/false);
  net.emplace<nn::batchnorm2d>(16);
  net.emplace<nn::relu6>();
  net.emplace<nn::conv2d>(16, 16, 3, 2, 1, /*groups=*/16, /*bias=*/true);
  net.emplace<nn::relu>();
  net.emplace<nn::conv2d>(16, 16, 3, 1, 1, /*groups=*/4, /*bias=*/true);
  net.emplace<nn::relu6>();
  net.emplace<nn::conv2d>(16, 8, 1, 1, 0, 1, /*bias=*/true);
  net.emplace<nn::relu>();
  appeal::util::rng gen(52);
  nn::initialize_model(net, gen);
  for (int step = 0; step < 3; ++step) {
    tensor x = random_input(shape{6, 3, 8, 8}, 53 + step);
    net.forward(x, /*training=*/true);
  }

  // Fold batchnorm first so its (tolerance-bearing) rewrite is not part
  // of the comparison; fusion itself must be exact.
  EXPECT_EQ(nn::fold_conv_batchnorm(net), 1U);
  const tensor x1 = random_input(shape{1, 3, 8, 8}, 57);
  const tensor xn = random_input(shape{4, 3, 8, 8}, 58);
  const tensor before1 = net.forward(x1, /*training=*/false);
  const tensor beforen = net.forward(xn, /*training=*/false);

  EXPECT_EQ(nn::fuse_conv_activation(net), 4U);
  EXPECT_EQ(net.size(), 4U);  // only the convs remain

  const tensor after1 = net.forward(x1, /*training=*/false);
  const tensor aftern = net.forward(xn, /*training=*/false);
  EXPECT_EQ(ops::max_abs_diff(before1, after1), 0.0F);
  EXPECT_EQ(ops::max_abs_diff(beforen, aftern), 0.0F);
}

TEST(fold, two_head_prepare_for_inference_is_idempotent) {
  appeal::core::two_head_config cfg;
  cfg.spec.image_size = 8;
  appeal::core::two_head_network net(cfg);

  const tensor x = random_input(shape{3, 3, 8, 8}, 51);
  const appeal::core::two_head_output before = net.forward(x, false);

  const std::size_t folded = net.prepare_for_inference();
  EXPECT_GT(folded, 0U);
  EXPECT_EQ(net.prepare_for_inference(), 0U);  // second call is a no-op

  const appeal::core::two_head_output after = net.forward(x, false);
  EXPECT_LE(ops::max_abs_diff(before.logits, after.logits), 2e-5F);
  for (std::size_t i = 0; i < before.q.size(); ++i) {
    EXPECT_NEAR(before.q[i], after.q[i], 2e-5F);
  }
}

}  // namespace
