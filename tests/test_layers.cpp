// Finite-difference gradient checks + behavioural tests for every layer.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "grad_check.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/channel_shuffle.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/residual.hpp"
#include "nn/sequential.hpp"
#include "nn/squeeze_excite.hpp"
#include "util/error.hpp"

namespace {

using namespace appeal;
using appeal::testing::check_layer_gradients;

tensor random_input(shape s, std::uint64_t seed) {
  util::rng gen(seed);
  return tensor::randn(std::move(s), gen, 0.0F, 1.0F);
}

TEST(linear_layer, forward_matches_manual_computation) {
  nn::linear layer(2, 3);
  // W = [[1,2],[3,4],[5,6]], b = [0.5, -0.5, 1].
  layer.weight().value = tensor::from_values(shape{3, 2}, {1, 2, 3, 4, 5, 6});
  layer.bias().value = tensor::from_values(shape{3}, {0.5F, -0.5F, 1.0F});
  const tensor x = tensor::from_values(shape{1, 2}, {10, 20});
  const tensor y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 50.5F);
  EXPECT_FLOAT_EQ(y[1], 109.5F);
  EXPECT_FLOAT_EQ(y[2], 171.0F);
}

TEST(linear_layer, gradients) {
  util::rng gen(1);
  nn::linear layer(5, 4);
  nn::initialize_model(layer, gen);
  check_layer_gradients(layer, random_input(shape{3, 5}, 2), gen);
}

TEST(linear_layer, no_bias_variant) {
  util::rng gen(3);
  nn::linear layer(4, 2, /*bias=*/false);
  nn::initialize_model(layer, gen);
  EXPECT_EQ(layer.parameters().size(), 1U);
  EXPECT_THROW(layer.bias(), util::error);
  check_layer_gradients(layer, random_input(shape{2, 4}, 4), gen);
}

TEST(linear_layer, rejects_bad_input) {
  nn::linear layer(4, 2);
  EXPECT_THROW(layer.forward(tensor(shape{2, 5}), false), util::error);
  EXPECT_THROW(layer.forward(tensor(shape{4}), false), util::error);
}

TEST(conv2d_layer, gradients_dense) {
  util::rng gen(5);
  nn::conv2d layer(3, 4, 3, 1, 1);
  nn::initialize_model(layer, gen);
  check_layer_gradients(layer, random_input(shape{2, 3, 5, 5}, 6), gen);
}

TEST(conv2d_layer, gradients_strided_no_padding) {
  util::rng gen(7);
  nn::conv2d layer(2, 3, 3, 2, 0);
  nn::initialize_model(layer, gen);
  check_layer_gradients(layer, random_input(shape{2, 2, 7, 7}, 8), gen);
}

TEST(conv2d_layer, gradients_depthwise) {
  util::rng gen(9);
  nn::conv2d layer(4, 4, 3, 1, 1, /*groups=*/4);
  nn::initialize_model(layer, gen);
  check_layer_gradients(layer, random_input(shape{2, 4, 5, 5}, 10), gen);
}

TEST(conv2d_layer, gradients_grouped) {
  util::rng gen(11);
  nn::conv2d layer(4, 6, 1, 1, 0, /*groups=*/2);
  nn::initialize_model(layer, gen);
  check_layer_gradients(layer, random_input(shape{2, 4, 4, 4}, 12), gen);
}

TEST(conv2d_layer, output_shape_and_flops) {
  nn::conv2d layer(3, 8, 3, 2, 1);
  const shape out = layer.output_shape(shape{1, 3, 16, 16});
  EXPECT_EQ(out, shape({1, 8, 8, 8}));
  // MACs = out elems * in_c * k * k (+bias), FLOPs = 2x.
  const std::uint64_t macs = 8ULL * 8 * 8 * 3 * 3 * 3 + 8ULL * 8 * 8;
  EXPECT_EQ(layer.flops(shape{1, 3, 16, 16}), 2 * macs);
}

TEST(conv2d_layer, rejects_bad_geometry) {
  EXPECT_THROW(nn::conv2d(3, 4, 3, 1, 0, /*groups=*/2), util::error);
  nn::conv2d layer(1, 1, 5, 1, 0);
  EXPECT_THROW(layer.forward(tensor(shape{1, 1, 3, 3}), false), util::error);
}

TEST(batchnorm_layer, normalizes_in_training_mode) {
  nn::batchnorm2d layer(2);
  util::rng gen(13);
  const tensor x = tensor::randn(shape{8, 2, 4, 4}, gen, 3.0F, 2.0F);
  const tensor y = layer.forward(x, true);
  // Per-channel mean ~0, var ~1.
  for (std::size_t c = 0; c < 2; ++c) {
    double total = 0.0;
    double total_sq = 0.0;
    for (std::size_t s = 0; s < 8; ++s) {
      for (std::size_t i = 0; i < 16; ++i) {
        const float v = y[(s * 2 + c) * 16 + i];
        total += v;
        total_sq += static_cast<double>(v) * v;
      }
    }
    const double mean = total / 128.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(total_sq / 128.0 - mean * mean, 1.0, 1e-2);
  }
}

TEST(batchnorm_layer, eval_uses_running_statistics) {
  nn::batchnorm2d layer(1);
  util::rng gen(17);
  // Several training passes accumulate running stats.
  for (int i = 0; i < 50; ++i) {
    const tensor x = tensor::randn(shape{16, 1, 2, 2}, gen, 5.0F, 3.0F);
    layer.forward(x, true);
  }
  // Eval on a biased batch should normalize with running stats (~N(5, 9)),
  // not the batch's own.
  const tensor x = tensor::full(shape{4, 1, 2, 2}, 5.0F);
  const tensor y = layer.forward(x, false);
  for (const float v : y.values()) {
    EXPECT_NEAR(v, 0.0F, 0.2F);  // (5 - running_mean) / running_std ~ 0
  }
}

TEST(batchnorm_layer, gradients) {
  util::rng gen(19);
  nn::batchnorm2d layer(3);
  // Non-trivial gamma/beta.
  layer.gamma().value = tensor::from_values(shape{3}, {1.5F, 0.5F, -1.0F});
  layer.beta().value = tensor::from_values(shape{3}, {0.1F, -0.2F, 0.3F});
  appeal::testing::grad_check_options opts;
  opts.epsilon = 5e-3F;
  opts.tolerance = 4e-2F;  // batch statistics amplify fd noise
  check_layer_gradients(layer, random_input(shape{4, 3, 3, 3}, 20), gen, opts);
}

TEST(batchnorm_layer, backward_requires_training_forward) {
  nn::batchnorm2d layer(1);
  const tensor x = random_input(shape{2, 1, 2, 2}, 21);
  layer.forward(x, false);
  EXPECT_THROW(layer.backward(x), util::error);
}

template <typename Activation>
class activation_gradients : public ::testing::Test {};

using activation_types =
    ::testing::Types<nn::relu, nn::relu6, nn::sigmoid_layer, nn::silu,
                     nn::hardswish>;
TYPED_TEST_SUITE(activation_gradients, activation_types);

TYPED_TEST(activation_gradients, matches_finite_differences) {
  util::rng gen(23);
  TypeParam layer;
  // Keep probes away from the kink points by the epsilon choice.
  appeal::testing::grad_check_options opts;
  opts.epsilon = 1e-3F;
  opts.tolerance = 3e-2F;
  check_layer_gradients(layer, random_input(shape{4, 10}, 24), gen, opts);
}

TEST(activations, known_values) {
  nn::relu6 r6;
  const tensor x = tensor::from_values(shape{4}, {-1.0F, 3.0F, 6.5F, 0.0F});
  const tensor y = r6.forward(x, false);
  EXPECT_EQ(y[0], 0.0F);
  EXPECT_EQ(y[1], 3.0F);
  EXPECT_EQ(y[2], 6.0F);

  nn::hardswish hs;
  const tensor hx = tensor::from_values(shape{3}, {-4.0F, 0.0F, 4.0F});
  const tensor hy = hs.forward(hx, false);
  EXPECT_EQ(hy[0], 0.0F);
  EXPECT_EQ(hy[1], 0.0F);
  EXPECT_EQ(hy[2], 4.0F);
}

TEST(maxpool_layer, forward_and_gradient_routing) {
  nn::maxpool2d layer(2, 2);
  const tensor x = tensor::from_values(
      shape{1, 1, 4, 4},
      {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  // Inference forward computes values but no argmax map...
  const tensor y_eval = layer.forward(x, false);
  EXPECT_EQ(y_eval.dims(), shape({1, 1, 2, 2}));
  EXPECT_EQ(y_eval[0], 6.0F);
  EXPECT_EQ(y_eval[3], 16.0F);
  // ...so backward requires a training-mode forward (the inference
  // caching contract in layer.hpp).
  const tensor gy = tensor::full(shape{1, 1, 2, 2}, 1.0F);
  EXPECT_THROW(layer.backward(gy), appeal::util::error);

  const tensor y = layer.forward(x, true);
  EXPECT_EQ(y.dims(), shape({1, 1, 2, 2}));
  EXPECT_EQ(y[0], 6.0F);
  EXPECT_EQ(y[3], 16.0F);

  // Gradient flows only to the max positions.
  const tensor gx = layer.backward(gy);
  EXPECT_EQ(gx[5], 1.0F);   // position of 6
  EXPECT_EQ(gx[0], 0.0F);
  EXPECT_EQ(gx[15], 1.0F);  // position of 16
}

TEST(avgpool_layer, gradients) {
  util::rng gen(29);
  nn::avgpool2d layer(2, 2);
  check_layer_gradients(layer, random_input(shape{2, 3, 4, 4}, 30), gen);
}

TEST(global_avgpool_layer, forward_value_and_gradients) {
  nn::global_avgpool layer;
  const tensor x = tensor::from_values(shape{1, 2, 1, 2}, {1, 3, 10, 20});
  const tensor y = layer.forward(x, false);
  EXPECT_EQ(y.dims(), shape({1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.0F);
  EXPECT_FLOAT_EQ(y[1], 15.0F);

  util::rng gen(31);
  check_layer_gradients(layer, random_input(shape{2, 3, 3, 3}, 32), gen);
}

TEST(flatten_layer, roundtrip) {
  nn::flatten_layer layer;
  const tensor x = random_input(shape{2, 3, 2, 2}, 33);
  const tensor y = layer.forward(x, false);
  EXPECT_EQ(y.dims(), shape({2, 12}));
  const tensor gx = layer.backward(y);
  EXPECT_EQ(gx.dims(), x.dims());
}

TEST(dropout_layer, eval_mode_is_identity) {
  nn::dropout layer(0.5F, 1);
  const tensor x = random_input(shape{4, 8}, 34);
  const tensor y = layer.forward(x, false);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(dropout_layer, training_drops_and_rescales) {
  nn::dropout layer(0.25F, 7);
  const tensor x = tensor::full(shape{1, 4000}, 1.0F);
  const tensor y = layer.forward(x, true);
  std::size_t zeros = 0;
  for (const float v : y.values()) {
    if (v == 0.0F) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0F / 0.75F, 1e-5F);
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 4000.0, 0.25, 0.03);
}

TEST(dropout_layer, backward_uses_same_mask) {
  nn::dropout layer(0.5F, 11);
  const tensor x = tensor::full(shape{1, 100}, 1.0F);
  const tensor y = layer.forward(x, true);
  const tensor gx = layer.backward(tensor::full(shape{1, 100}, 1.0F));
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(gx[i] == 0.0F, y[i] == 0.0F);
  }
}

TEST(channel_shuffle_layer, permutation_and_inverse) {
  nn::channel_shuffle layer(2);
  // 4 channels viewed as [2, 2]: forward maps (g, c) -> c*2+g.
  tensor x(shape{1, 4, 1, 1});
  for (std::size_t c = 0; c < 4; ++c) x[c] = static_cast<float>(c);
  const tensor y = layer.forward(x, false);
  EXPECT_EQ(y[0], 0.0F);  // (0,0) -> 0
  EXPECT_EQ(y[1], 2.0F);  // dest 1 <- src group1,k0 = channel 2
  EXPECT_EQ(y[2], 1.0F);
  EXPECT_EQ(y[3], 3.0F);

  // backward(forward(x)) restores the order for gradients.
  const tensor gx = layer.backward(y);
  for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(gx[c], static_cast<float>(c));
}

TEST(channel_shuffle_layer, gradients) {
  util::rng gen(37);
  nn::channel_shuffle layer(3);
  check_layer_gradients(layer, random_input(shape{2, 6, 2, 2}, 38), gen);
}

TEST(squeeze_excite_layer, gradients) {
  util::rng gen(41);
  nn::squeeze_excite layer(4, 2);
  nn::initialize_model(layer, gen);
  appeal::testing::grad_check_options opts;
  opts.epsilon = 5e-3F;
  opts.tolerance = 4e-2F;
  check_layer_gradients(layer, random_input(shape{2, 4, 3, 3}, 42), gen, opts);
}

TEST(squeeze_excite_layer, output_is_channel_scaled_input) {
  util::rng gen(43);
  nn::squeeze_excite layer(2, 2);
  nn::initialize_model(layer, gen);
  const tensor x = random_input(shape{1, 2, 2, 2}, 44);
  const tensor y = layer.forward(x, false);
  // Each channel plane is the input scaled by one positive factor.
  for (std::size_t c = 0; c < 2; ++c) {
    const float ratio = y[c * 4] / x[c * 4];
    EXPECT_GT(ratio, 0.0F);
    EXPECT_LT(ratio, 1.0F);  // sigmoid output
    for (std::size_t i = 1; i < 4; ++i) {
      EXPECT_NEAR(y[c * 4 + i] / x[c * 4 + i], ratio, 1e-4F);
    }
  }
}

TEST(residual_layer, identity_skip_gradients) {
  util::rng gen(47);
  auto body = std::make_unique<nn::sequential>();
  body->emplace<nn::conv2d>(3, 3, 3, 1, 1, 1, false);
  body->emplace<nn::batchnorm2d>(3);
  nn::residual layer(std::move(body), nullptr, /*final_relu=*/true);
  nn::initialize_model(layer, gen);
  appeal::testing::grad_check_options opts;
  opts.epsilon = 5e-3F;
  opts.tolerance = 4e-2F;
  check_layer_gradients(layer, random_input(shape{2, 3, 4, 4}, 48), gen, opts);
}

TEST(residual_layer, projection_skip_gradients) {
  util::rng gen(49);
  auto body = std::make_unique<nn::sequential>();
  body->emplace<nn::conv2d>(2, 4, 3, 2, 1, 1, false);
  auto proj = std::make_unique<nn::sequential>();
  proj->emplace<nn::conv2d>(2, 4, 1, 2, 0, 1, false);
  nn::residual layer(std::move(body), std::move(proj), /*final_relu=*/false);
  nn::initialize_model(layer, gen);
  check_layer_gradients(layer, random_input(shape{2, 2, 4, 4}, 50), gen);
}

TEST(residual_layer, rejects_shape_mismatch) {
  auto body = std::make_unique<nn::sequential>();
  body->emplace<nn::conv2d>(2, 4, 3, 1, 1, 1, false);  // changes channels
  nn::residual layer(std::move(body), nullptr, true);
  EXPECT_THROW(layer.forward(tensor(shape{1, 2, 4, 4}), false), util::error);
}

TEST(sequential_container, composes_and_reports) {
  util::rng gen(53);
  nn::sequential net;
  net.emplace<nn::conv2d>(1, 2, 3, 1, 1);
  net.emplace<nn::relu>();
  net.emplace<nn::global_avgpool>();
  net.emplace<nn::linear>(2, 3);
  nn::initialize_model(net, gen);

  EXPECT_EQ(net.size(), 4U);
  EXPECT_EQ(net.output_shape(shape{5, 1, 6, 6}), shape({5, 3}));
  EXPECT_GT(net.flops(shape{1, 1, 6, 6}), 0ULL);

  const auto reports = net.summarize(shape{1, 1, 6, 6});
  ASSERT_EQ(reports.size(), 4U);
  EXPECT_EQ(reports[0].name, "0:conv2d");
  EXPECT_EQ(reports[3].output, shape({1, 3}));

  const auto named = net.named_parameters("");
  bool found = false;
  for (const auto& np : named) {
    if (np.qualified_name == "3.weight") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(sequential_container, end_to_end_gradients) {
  util::rng gen(59);
  nn::sequential net;
  net.emplace<nn::conv2d>(2, 3, 3, 1, 1, 1, false);
  net.emplace<nn::batchnorm2d>(3);
  net.emplace<nn::relu>();
  net.emplace<nn::global_avgpool>();
  net.emplace<nn::linear>(3, 2);
  nn::initialize_model(net, gen);
  appeal::testing::grad_check_options opts;
  opts.epsilon = 5e-3F;
  opts.tolerance = 5e-2F;
  check_layer_gradients(net, random_input(shape{3, 2, 4, 4}, 60), gen, opts);
}

}  // namespace
