// Tests for simulated post-training quantization.
#include <gtest/gtest.h>

#include <cmath>

#include "models/model_zoo.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/quantization.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;

TEST(quantization, params_cover_the_value_range) {
  const std::vector<float> values{-2.0F, -0.5F, 0.0F, 1.5F, 3.0F};
  const nn::quant_params p = nn::choose_quant_params(values, 8, false);
  // Extremes must be representable within one step.
  EXPECT_NEAR(nn::fake_quantize_value(-2.0F, p), -2.0F, p.scale);
  EXPECT_NEAR(nn::fake_quantize_value(3.0F, p), 3.0F, p.scale);
}

TEST(quantization, asymmetric_grid_represents_zero_exactly) {
  // ReLU outputs: zeros must survive quantization exactly.
  const std::vector<float> values{0.0F, 0.1F, 2.7F, 5.3F};
  const nn::quant_params p = nn::choose_quant_params(values, 8, false);
  EXPECT_EQ(nn::fake_quantize_value(0.0F, p), 0.0F);
}

TEST(quantization, symmetric_grid_represents_zero_exactly) {
  const std::vector<float> values{-1.3F, 0.4F, 0.9F};
  const nn::quant_params p = nn::choose_quant_params(values, 8, true);
  EXPECT_EQ(nn::fake_quantize_value(0.0F, p), 0.0F);
}

TEST(quantization, symmetric_grid_is_signed_zero_point_zero) {
  // The s8 GEMM packing contract: symmetric weight grids are signed
  // −(2^(b−1)−1)…2^(b−1)−1 with zero_point 0, so quantized codes store
  // into std::int8_t verbatim and negation never saturates.
  const std::vector<float> values{-1.0F, 0.25F, 0.75F};
  const nn::quant_params p = nn::choose_quant_params(values, 8, true);
  EXPECT_TRUE(p.symmetric);
  EXPECT_EQ(p.zero_point, 0);
  EXPECT_EQ(p.q_min(), -127);
  EXPECT_EQ(p.q_max(), 127);
  // The grid extreme reproduces the data extreme exactly: q_max * scale.
  EXPECT_NEAR(nn::fake_quantize_value(1.0F, p), 1.0F, 1e-6F);
  EXPECT_NEAR(nn::fake_quantize_value(-1.0F, p), -1.0F, 1e-6F);

  const nn::quant_params a = nn::choose_quant_params(values, 8, false);
  EXPECT_FALSE(a.symmetric);
  EXPECT_EQ(a.q_min(), 0);
  EXPECT_EQ(a.q_max(), 255);
}

TEST(quantization, fake_quantize_is_idempotent) {
  util::rng gen(3);
  tensor values = tensor::randn(shape{256}, gen);
  const nn::quant_params p = nn::choose_quant_params(
      std::span<const float>(values.values()), 8, true);
  tensor once = values;
  nn::fake_quantize_inplace(once, p);
  tensor twice = once;
  nn::fake_quantize_inplace(twice, p);
  EXPECT_EQ(ops::max_abs_diff(once, twice), 0.0F);
}

TEST(quantization, error_bounded_by_half_step) {
  util::rng gen(5);
  const tensor values = tensor::rand_uniform(shape{500}, gen, -1.0F, 1.0F);
  const nn::quant_params p = nn::choose_quant_params(
      std::span<const float>(values.values()), 8, true);
  for (const float v : values.values()) {
    EXPECT_LE(std::fabs(v - nn::fake_quantize_value(v, p)),
              0.5F * p.scale + 1e-6F);
  }
}

TEST(quantization, rmse_decreases_with_more_bits) {
  util::rng gen(7);
  const tensor values = tensor::randn(shape{2000}, gen);
  double previous = 1e9;
  for (const int bits : {4, 6, 8, 12}) {
    const double rmse = nn::quantization_rmse(values, bits, true);
    EXPECT_LT(rmse, previous);
    previous = rmse;
  }
  // 12-bit error is tiny relative to a unit-variance tensor.
  EXPECT_LT(previous, 2e-3);
}

TEST(quantization, degenerate_constant_tensor_is_exact) {
  tensor values(shape{10}, 0.0F);
  EXPECT_DOUBLE_EQ(nn::quantization_rmse(values, 8, true), 0.0);
}

TEST(quantization, validates_bits) {
  const std::vector<float> values{1.0F};
  EXPECT_THROW(nn::choose_quant_params(values, 1, true), util::error);
  EXPECT_THROW(nn::choose_quant_params(values, 20, true), util::error);
}

TEST(quantization, quantizes_only_weight_tensors) {
  util::rng gen(9);
  models::model_spec spec;
  spec.family = models::model_family::mobilenet;
  spec.image_size = 16;
  spec.num_classes = 4;
  spec.width = 0.5F;
  auto net = models::make_classifier(spec, gen);

  std::size_t weight_count = 0;
  for (auto& np : net->named_parameters("")) {
    const auto& name = np.qualified_name;
    if (name.size() >= 6 && name.rfind("weight") == name.size() - 6) {
      ++weight_count;
    }
  }
  EXPECT_EQ(nn::quantize_model_weights(*net, 8), weight_count);
}

TEST(quantization, int8_model_keeps_most_of_its_accuracy) {
  // Train a tiny classifier, then PTQ at 8 bits: predictions should barely
  // change. At 2-3 bits they should change a lot (sanity of the knob).
  util::rng gen(11);
  models::model_spec spec;
  spec.family = models::model_family::mobilenet;
  spec.image_size = 16;
  spec.num_classes = 4;
  spec.width = 0.5F;
  auto net = models::make_classifier(spec, gen);

  const std::size_t n = 64;
  const tensor x = tensor::randn(shape{n, 3, 16, 16}, gen);
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = i % 4;

  nn::adam opt(3e-3);
  opt.attach(net->parameters());
  for (int step = 0; step < 60; ++step) {
    const tensor logits = net->forward(x, true);
    const auto loss = nn::softmax_cross_entropy(logits, labels);
    opt.zero_grad();
    net->backward(loss.grad);
    opt.step();
  }

  const auto preds_fp32 = ops::argmax_rows(net->forward(x, false));

  // Save weights (via copies) so both precisions start from the same model.
  std::vector<tensor> saved;
  for (nn::parameter* p : net->parameters()) saved.push_back(p->value);

  nn::quantize_model_weights(*net, 8);
  const auto preds_int8 = ops::argmax_rows(net->forward(x, false));
  std::size_t agree8 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (preds_fp32[i] == preds_int8[i]) ++agree8;
  }
  EXPECT_GE(agree8, n - 4) << "int8 PTQ changed too many predictions";

  // Restore and quantize brutally.
  {
    std::size_t pi = 0;
    for (nn::parameter* p : net->parameters()) p->value = saved[pi++];
  }
  nn::quantize_model_weights(*net, 2);
  const auto preds_int2 = ops::argmax_rows(net->forward(x, false));
  std::size_t agree2 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (preds_fp32[i] == preds_int2[i]) ++agree2;
  }
  EXPECT_LT(agree2, n) << "2-bit quantization should visibly distort";
}

}  // namespace
