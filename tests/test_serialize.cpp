// Tests for model/tensor serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <filesystem>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::unique_ptr<nn::sequential> make_net(std::uint64_t seed) {
  auto net = std::make_unique<nn::sequential>();
  net->emplace<nn::conv2d>(2, 4, 3, 1, 1);
  net->emplace<nn::batchnorm2d>(4);
  net->emplace<nn::global_avgpool>();
  net->emplace<nn::linear>(4, 3);
  util::rng gen(seed);
  nn::initialize_model(*net, gen);
  return net;
}

TEST(serialize, model_roundtrip_restores_outputs) {
  const std::string path = temp_path("appeal_model_rt.bin");
  const auto original_ptr = make_net(1);
  nn::sequential& original = *original_ptr;

  // Run a few training-mode passes so batchnorm running stats are nontrivial.
  util::rng gen(2);
  for (int i = 0; i < 3; ++i) {
    original.forward(tensor::randn(shape{4, 2, 5, 5}, gen), true);
  }
  nn::save_model(original, path);

  const auto restored_ptr = make_net(99);  // different init
  nn::sequential& restored = *restored_ptr;
  nn::load_model(restored, path);

  const tensor x = tensor::randn(shape{2, 2, 5, 5}, gen);
  const tensor y0 = original.forward(x, false);
  const tensor y1 = restored.forward(x, false);
  EXPECT_EQ(ops::max_abs_diff(y0, y1), 0.0F);
  std::remove(path.c_str());
}

TEST(serialize, shape_mismatch_is_rejected) {
  const std::string path = temp_path("appeal_model_shape.bin");
  const auto original_ptr = make_net(1);
  nn::sequential& original = *original_ptr;
  nn::save_model(original, path);

  nn::sequential different;
  different.emplace<nn::conv2d>(2, 8, 3, 1, 1);  // wrong channel count
  different.emplace<nn::batchnorm2d>(8);
  different.emplace<nn::global_avgpool>();
  different.emplace<nn::linear>(8, 3);
  EXPECT_THROW(nn::load_model(different, path), util::error);
  std::remove(path.c_str());
}

TEST(serialize, tensor_count_mismatch_is_rejected) {
  const std::string path = temp_path("appeal_model_count.bin");
  const auto original_ptr = make_net(1);
  nn::sequential& original = *original_ptr;
  nn::save_model(original, path);

  nn::sequential smaller;
  smaller.emplace<nn::linear>(4, 3);
  EXPECT_THROW(nn::load_model(smaller, path), util::error);
  std::remove(path.c_str());
}

TEST(serialize, corrupt_magic_is_rejected) {
  const std::string path = temp_path("appeal_model_magic.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOPE-not-a-model", f);
    std::fclose(f);
  }
  const auto net_ptr = make_net(1);
  nn::sequential& net = *net_ptr;
  EXPECT_THROW(nn::load_model(net, path), util::error);
  EXPECT_FALSE(nn::is_model_file(path));
  std::remove(path.c_str());
}

TEST(serialize, truncated_file_is_rejected) {
  const std::string path = temp_path("appeal_model_trunc.bin");
  const auto original_ptr = make_net(1);
  nn::sequential& original = *original_ptr;
  nn::save_model(original, path);
  // Truncate to half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  const auto net_ptr = make_net(2);
  nn::sequential& net = *net_ptr;
  EXPECT_THROW(nn::load_model(net, path), util::error);
  std::remove(path.c_str());
}

TEST(serialize, is_model_file_detects_valid_files) {
  const std::string path = temp_path("appeal_model_detect.bin");
  const auto net_ptr = make_net(1);
  nn::sequential& net = *net_ptr;
  nn::save_model(net, path);
  EXPECT_TRUE(nn::is_model_file(path));
  EXPECT_FALSE(nn::is_model_file("/nonexistent/path.bin"));
  std::remove(path.c_str());
}

TEST(serialize, dynamic_load_returns_all_tensors) {
  const std::string path = temp_path("appeal_model_dyn.bin");
  tensor a = tensor::from_values(shape{2, 2}, {1, 2, 3, 4});
  tensor b = tensor::from_values(shape{3}, {5, 6, 7});
  nn::save_tensors({{"alpha", &a}, {"beta", &b}}, path);

  const auto doc = nn::load_tensors_dynamic(path);
  ASSERT_EQ(doc.size(), 2U);
  ASSERT_TRUE(doc.count("alpha"));
  ASSERT_TRUE(doc.count("beta"));
  EXPECT_EQ(doc.at("alpha").dims(), shape({2, 2}));
  EXPECT_EQ(doc.at("beta")[2], 7.0F);
  std::remove(path.c_str());
}

TEST(serialize, batchnorm_running_stats_are_persisted) {
  const std::string path = temp_path("appeal_model_bnstats.bin");
  nn::batchnorm2d bn(2);
  util::rng gen(5);
  for (int i = 0; i < 10; ++i) {
    bn.forward(tensor::randn(shape{8, 2, 3, 3}, gen, 4.0F, 2.0F), true);
  }
  const float mean_before = bn.running_mean()[0];
  nn::save_model(bn, path);

  nn::batchnorm2d fresh(2);
  EXPECT_NE(fresh.running_mean()[0], mean_before);
  nn::load_model(fresh, path);
  EXPECT_EQ(fresh.running_mean()[0], mean_before);
  EXPECT_EQ(fresh.running_var()[1], bn.running_var()[1]);
  std::remove(path.c_str());
}

}  // namespace
