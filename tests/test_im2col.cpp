// Tests for im2col/col2im: geometry, correctness vs direct convolution,
// and the adjoint property that makes the conv backward pass valid.
#include <gtest/gtest.h>

#include <tuple>

#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

namespace ops = appeal::ops;

TEST(conv_geometry, output_extents) {
  ops::conv_geometry g;
  g.channels = 3;
  g.height = 16;
  g.width = 16;
  g.kernel = 3;
  g.stride = 2;
  g.padding = 1;
  EXPECT_TRUE(g.valid());
  EXPECT_EQ(g.out_height(), 8U);
  EXPECT_EQ(g.out_width(), 8U);
  EXPECT_EQ(g.patch_size(), 27U);
  EXPECT_EQ(g.column_count(), 64U);
}

TEST(conv_geometry, invalid_when_kernel_exceeds_padded_input) {
  ops::conv_geometry g;
  g.channels = 1;
  g.height = 2;
  g.width = 2;
  g.kernel = 5;
  g.stride = 1;
  g.padding = 1;
  EXPECT_FALSE(g.valid());
}

TEST(im2col, unit_kernel_is_identity) {
  ops::conv_geometry g;
  g.channels = 2;
  g.height = 3;
  g.width = 3;
  g.kernel = 1;
  const std::size_t n = 2 * 3 * 3;
  std::vector<float> image(n);
  for (std::size_t i = 0; i < n; ++i) image[i] = static_cast<float>(i);
  std::vector<float> cols(g.patch_size() * g.column_count());
  ops::im2col(g, image.data(), cols.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(cols[i], image[i]);
}

TEST(im2col, padding_reads_zero) {
  ops::conv_geometry g;
  g.channels = 1;
  g.height = 2;
  g.width = 2;
  g.kernel = 3;
  g.padding = 1;
  std::vector<float> image{1, 2, 3, 4};
  std::vector<float> cols(g.patch_size() * g.column_count());
  ops::im2col(g, image.data(), cols.data());
  // Output is 2x2; the (ky=0, kx=0) patch row reads the pixel up-left of
  // each output position: all padding except the last output (reads pixel 0).
  EXPECT_EQ(cols[0], 0.0F);
  EXPECT_EQ(cols[1], 0.0F);
  EXPECT_EQ(cols[2], 0.0F);
  EXPECT_EQ(cols[3], 1.0F);
  // Centre row (ky=1, kx=1) reads the pixel itself.
  const std::size_t centre = (1 * 3 + 1) * g.column_count();
  EXPECT_EQ(cols[centre + 0], 1.0F);
  EXPECT_EQ(cols[centre + 3], 4.0F);
}

/// Direct (naive) convolution used as the reference.
void naive_conv(const ops::conv_geometry& g, const float* image,
                const float* weight, std::size_t out_channels, float* out) {
  const std::size_t oh = g.out_height();
  const std::size_t ow = g.out_width();
  for (std::size_t oc = 0; oc < out_channels; ++oc) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        double acc = 0.0;
        for (std::size_t c = 0; c < g.channels; ++c) {
          for (std::size_t ky = 0; ky < g.kernel; ++ky) {
            for (std::size_t kx = 0; kx < g.kernel; ++kx) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * g.stride + ky) -
                  static_cast<std::ptrdiff_t>(g.padding);
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) -
                  static_cast<std::ptrdiff_t>(g.padding);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.height) ||
                  ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.width)) {
                continue;
              }
              const float pixel =
                  image[(c * g.height + static_cast<std::size_t>(iy)) *
                            g.width +
                        static_cast<std::size_t>(ix)];
              const float w =
                  weight[((oc * g.channels + c) * g.kernel + ky) * g.kernel +
                         kx];
              acc += static_cast<double>(pixel) * w;
            }
          }
        }
        out[(oc * oh + oy) * ow + ox] = static_cast<float>(acc);
      }
    }
  }
}

/// Parameterized over (size, kernel, stride, padding, channels).
class im2col_conv_property
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(im2col_conv_property, gemm_lowering_matches_direct_convolution) {
  const auto [size, kernel, stride, padding, channels] = GetParam();
  ops::conv_geometry g;
  g.channels = static_cast<std::size_t>(channels);
  g.height = static_cast<std::size_t>(size);
  g.width = static_cast<std::size_t>(size);
  g.kernel = static_cast<std::size_t>(kernel);
  g.stride = static_cast<std::size_t>(stride);
  g.padding = static_cast<std::size_t>(padding);
  ASSERT_TRUE(g.valid());

  constexpr std::size_t out_channels = 4;
  appeal::util::rng gen(static_cast<std::uint64_t>(size * 131 + kernel));
  std::vector<float> image(g.channels * g.height * g.width);
  for (auto& v : image) v = gen.uniform(-1.0F, 1.0F);
  std::vector<float> weight(out_channels * g.patch_size());
  for (auto& v : weight) v = gen.uniform(-1.0F, 1.0F);

  // GEMM path.
  std::vector<float> cols(g.patch_size() * g.column_count());
  ops::im2col(g, image.data(), cols.data());
  std::vector<float> out_gemm(out_channels * g.column_count(), 0.0F);
  ops::sgemm(out_channels, g.column_count(), g.patch_size(), 1.0F,
             weight.data(), cols.data(), 0.0F, out_gemm.data());

  // Direct path.
  std::vector<float> out_ref(out_channels * g.column_count(), 0.0F);
  naive_conv(g, image.data(), weight.data(), out_channels, out_ref.data());

  for (std::size_t i = 0; i < out_gemm.size(); ++i) {
    ASSERT_NEAR(out_gemm[i], out_ref[i], 1e-3F)
        << "mismatch at " << i << " for size=" << size << " k=" << kernel
        << " s=" << stride << " p=" << padding;
  }
}

TEST_P(im2col_conv_property, col2im_is_the_adjoint_of_im2col) {
  // Adjoint property: <im2col(x), y> == <x, col2im(y)> for random x, y.
  const auto [size, kernel, stride, padding, channels] = GetParam();
  ops::conv_geometry g;
  g.channels = static_cast<std::size_t>(channels);
  g.height = static_cast<std::size_t>(size);
  g.width = static_cast<std::size_t>(size);
  g.kernel = static_cast<std::size_t>(kernel);
  g.stride = static_cast<std::size_t>(stride);
  g.padding = static_cast<std::size_t>(padding);
  ASSERT_TRUE(g.valid());

  appeal::util::rng gen(static_cast<std::uint64_t>(size * 17 + kernel * 3));
  std::vector<float> x(g.channels * g.height * g.width);
  for (auto& v : x) v = gen.uniform(-1.0F, 1.0F);
  std::vector<float> y(g.patch_size() * g.column_count());
  for (auto& v : y) v = gen.uniform(-1.0F, 1.0F);

  std::vector<float> ax(y.size());
  ops::im2col(g, x.data(), ax.data());
  std::vector<float> aty(x.size(), 0.0F);
  ops::col2im(g, y.data(), aty.data());

  double lhs = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    lhs += static_cast<double>(ax[i]) * y[i];
  }
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x[i]) * aty[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

INSTANTIATE_TEST_SUITE_P(
    geometries, im2col_conv_property,
    ::testing::Values(std::make_tuple(8, 3, 1, 1, 3),
                      std::make_tuple(8, 3, 2, 1, 3),
                      std::make_tuple(7, 3, 2, 0, 2),
                      std::make_tuple(9, 5, 1, 2, 1),
                      std::make_tuple(16, 1, 1, 0, 4),
                      std::make_tuple(6, 3, 3, 0, 2)));

}  // namespace
