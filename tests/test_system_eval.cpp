// Tests for the system-level sweep machinery and the oracle helpers.
#include <gtest/gtest.h>

#include "collab/oracle.hpp"
#include "collab/system_eval.hpp"
#include "data/presets.hpp"
#include "metrics/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;

/// Synthesizes a routed split where the score is `quality`-correlated with
/// little-correctness (quality 1 = oracle, 0 = random).
collab::routed_split synth_split(std::size_t n, double little_acc,
                                 double big_acc, double quality,
                                 std::uint64_t seed) {
  util::rng gen(seed);
  collab::routed_split split;
  split.labels.resize(n);
  split.little_predictions.resize(n);
  split.big_predictions.resize(n);
  split.scores.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    split.labels[i] = i % 10;
    const bool little_right = gen.bernoulli(little_acc);
    const bool big_right = gen.bernoulli(big_acc);
    split.little_predictions[i] =
        little_right ? split.labels[i] : (split.labels[i] + 1) % 10;
    split.big_predictions[i] =
        big_right ? split.labels[i] : (split.labels[i] + 2) % 10;
    const double informative = little_right ? 0.75 : 0.25;
    const double noise = gen.uniform();
    split.scores[i] = quality * informative + (1.0 - quality) * noise +
                      0.05 * gen.uniform();
  }
  return split;
}

TEST(system_eval, make_routed_split_takes_argmax) {
  tensor little(shape{2, 3});
  little[0 * 3 + 2] = 5.0F;  // row 0 -> class 2
  little[1 * 3 + 0] = 5.0F;  // row 1 -> class 0
  tensor big(shape{2, 3});
  big[0 * 3 + 1] = 5.0F;
  big[1 * 3 + 1] = 5.0F;
  const collab::routed_split split =
      collab::make_routed_split(little, big, {2, 1}, {0.9, 0.1});
  EXPECT_EQ(split.little_predictions, (std::vector<std::size_t>{2, 0}));
  EXPECT_EQ(split.big_predictions, (std::vector<std::size_t>{1, 1}));
  EXPECT_THROW(collab::make_routed_split(little, big, {2}, {0.9, 0.1}),
               util::error);
}

TEST(system_eval, curve_hits_requested_rates) {
  const collab::routed_split split = synth_split(1000, 0.8, 0.95, 0.8, 3);
  const auto curve = collab::accuracy_vs_sr_curve(
      split, nullptr, collab::paper_sr_grid());
  ASSERT_EQ(curve.size(), 7U);
  for (const auto& point : curve) {
    EXPECT_NEAR(point.achieved_sr, point.target_sr, 0.01);
  }
  // SR = 100% equals the little model's standalone accuracy.
  EXPECT_NEAR(curve.back().accuracy,
              metrics::accuracy(split.little_predictions, split.labels),
              1e-9);
}

TEST(system_eval, tuning_split_protocol_generalizes) {
  // δ tuned on one split, applied to another: achieved SR stays close.
  const collab::routed_split val = synth_split(2000, 0.8, 0.95, 0.8, 5);
  const collab::routed_split test = synth_split(2000, 0.8, 0.95, 0.8, 7);
  const auto curve =
      collab::accuracy_vs_sr_curve(test, &val, {0.7, 0.9});
  EXPECT_NEAR(curve[0].achieved_sr, 0.7, 0.05);
  EXPECT_NEAR(curve[1].achieved_sr, 0.9, 0.05);
}

TEST(system_eval, better_scores_give_better_curves) {
  // The whole premise of Fig. 5: at matched SR, a score that ranks hard
  // inputs lower yields higher system accuracy.
  const collab::routed_split good = synth_split(3000, 0.8, 0.98, 0.9, 11);
  collab::routed_split bad = good;
  util::rng gen(13);
  for (auto& s : bad.scores) s = gen.uniform();  // uninformative scores

  const std::vector<double> grid{0.7, 0.8, 0.9};
  const auto good_curve = collab::accuracy_vs_sr_curve(good, nullptr, grid);
  const auto bad_curve = collab::accuracy_vs_sr_curve(bad, nullptr, grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_GT(good_curve[i].accuracy, bad_curve[i].accuracy + 0.01)
        << "at SR " << grid[i];
  }
}

TEST(system_eval, paper_grids_match_the_paper) {
  const auto sr = collab::paper_sr_grid();
  EXPECT_EQ(sr.front(), 0.70);
  EXPECT_EQ(sr.back(), 1.00);
  EXPECT_EQ(sr.size(), 7U);
  const auto acci = collab::paper_acci_targets();
  EXPECT_EQ(acci, (std::vector<double>{0.50, 0.75, 0.90, 0.95}));
}

TEST(oracle, predictions_are_ground_truth) {
  const data::dataset_bundle bundle =
      data::make_small_bundle(data::preset::cifar10_like, 3);
  const auto preds = collab::oracle_predictions(*bundle.test);
  const auto labels = collab::dataset_labels(*bundle.test);
  EXPECT_EQ(preds, labels);
  EXPECT_DOUBLE_EQ(metrics::accuracy(preds, labels), 1.0);
}

TEST(oracle, difficulties_match_dataset_metadata) {
  const data::dataset_bundle bundle =
      data::make_small_bundle(data::preset::cifar10_like, 3);
  const auto diff = collab::dataset_difficulties(*bundle.test);
  ASSERT_EQ(diff.size(), bundle.test->size());
  for (std::size_t i = 0; i < diff.size(); ++i) {
    EXPECT_EQ(diff[i], bundle.test->get(i).difficulty);
  }
}

}  // namespace
