// Tests for the GEMM kernels against a naive reference, across shapes and
// alpha/beta combinations.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using appeal::shape;
using appeal::tensor;
namespace ops = appeal::ops;

std::vector<float> random_matrix(std::size_t rows, std::size_t cols,
                                 appeal::util::rng& gen) {
  std::vector<float> out(rows * cols);
  for (auto& v : out) v = gen.uniform(-1.0F, 1.0F);
  return out;
}

void naive_gemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
                const float* a, const float* b, float beta, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
      }
      c[i * n + j] = static_cast<float>(alpha * acc + beta * c[i * n + j]);
    }
  }
}

float max_diff(const std::vector<float>& a, const std::vector<float>& b) {
  float worst = 0.0F;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

/// Parameterized over (m, n, k) including degenerate and blocking-boundary
/// sizes.
class gemm_shapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(gemm_shapes, sgemm_matches_naive) {
  const auto [mi, ni, ki] = GetParam();
  const auto m = static_cast<std::size_t>(mi);
  const auto n = static_cast<std::size_t>(ni);
  const auto k = static_cast<std::size_t>(ki);
  appeal::util::rng gen(m * 1000 + n * 100 + k);

  const auto a = random_matrix(m, k, gen);
  const auto b = random_matrix(k, n, gen);
  auto c_ref = random_matrix(m, n, gen);
  auto c = c_ref;

  ops::sgemm(m, n, k, 1.3F, a.data(), b.data(), 0.7F, c.data());
  naive_gemm(m, n, k, 1.3F, a.data(), b.data(), 0.7F, c_ref.data());
  EXPECT_LE(max_diff(c, c_ref), 1e-3F * static_cast<float>(k));
}

TEST_P(gemm_shapes, sgemm_at_matches_transposed_input) {
  const auto [mi, ni, ki] = GetParam();
  const auto m = static_cast<std::size_t>(mi);
  const auto n = static_cast<std::size_t>(ni);
  const auto k = static_cast<std::size_t>(ki);
  appeal::util::rng gen(m + n + k);

  // A stored [k x m]; compare against naive on the explicit transpose.
  const auto a_t = random_matrix(k, m, gen);
  std::vector<float> a(m * k);
  for (std::size_t kk = 0; kk < k; ++kk) {
    for (std::size_t i = 0; i < m; ++i) a[i * k + kk] = a_t[kk * m + i];
  }
  const auto b = random_matrix(k, n, gen);
  std::vector<float> c(m * n, 0.0F);
  std::vector<float> c_ref(m * n, 0.0F);

  ops::sgemm_at(m, n, k, 1.0F, a_t.data(), b.data(), 0.0F, c.data());
  naive_gemm(m, n, k, 1.0F, a.data(), b.data(), 0.0F, c_ref.data());
  EXPECT_LE(max_diff(c, c_ref), 1e-3F * static_cast<float>(k));
}

TEST_P(gemm_shapes, sgemm_bt_matches_transposed_input) {
  const auto [mi, ni, ki] = GetParam();
  const auto m = static_cast<std::size_t>(mi);
  const auto n = static_cast<std::size_t>(ni);
  const auto k = static_cast<std::size_t>(ki);
  appeal::util::rng gen(3 * m + 5 * n + 7 * k);

  const auto a = random_matrix(m, k, gen);
  // B stored [n x k].
  const auto b_t = random_matrix(n, k, gen);
  std::vector<float> b(k * n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t kk = 0; kk < k; ++kk) b[kk * n + j] = b_t[j * k + kk];
  }
  std::vector<float> c(m * n, 0.0F);
  std::vector<float> c_ref(m * n, 0.0F);

  ops::sgemm_bt(m, n, k, 1.0F, a.data(), b_t.data(), 0.0F, c.data());
  naive_gemm(m, n, k, 1.0F, a.data(), b.data(), 0.0F, c_ref.data());
  EXPECT_LE(max_diff(c, c_ref), 1e-3F * static_cast<float>(k));
}

INSTANTIATE_TEST_SUITE_P(
    sizes, gemm_shapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(16, 16, 16), std::make_tuple(1, 64, 9),
                      std::make_tuple(65, 7, 129),   // crosses block_m/block_k
                      std::make_tuple(64, 257, 128), // exactly at block sizes
                      std::make_tuple(31, 300, 5)));

// Randomized rectangular / ragged shapes across both the small-kernel and
// the packed-kernel dispatch, all three layouts, against the naive
// reference.
TEST(gemm, randomized_shapes_match_naive) {
  appeal::util::rng gen(2024);
  for (int iter = 0; iter < 60; ++iter) {
    const auto m = static_cast<std::size_t>(gen.uniform_int(1, 90));
    const auto n = static_cast<std::size_t>(gen.uniform_int(1, 90));
    const auto k = static_cast<std::size_t>(gen.uniform_int(1, 90));
    const float alpha = gen.uniform(0.5F, 1.5F);
    const float beta = gen.bernoulli(0.5) ? 0.0F : gen.uniform(0.2F, 1.2F);

    const auto a = random_matrix(m, k, gen);
    const auto b = random_matrix(k, n, gen);
    auto c_ref = random_matrix(m, n, gen);
    auto c = c_ref;
    ops::sgemm(m, n, k, alpha, a.data(), b.data(), beta, c.data());
    naive_gemm(m, n, k, alpha, a.data(), b.data(), beta, c_ref.data());
    ASSERT_LE(max_diff(c, c_ref), 1e-3F * static_cast<float>(k))
        << "sgemm " << m << "x" << n << "x" << k;

    // A^T layout: a_t stored [k x m] with a_t[kk*m + i] = A(i, kk).
    std::vector<float> a_t(m * k);
    for (std::size_t kk = 0; kk < k; ++kk) {
      for (std::size_t i = 0; i < m; ++i) a_t[kk * m + i] = a[i * k + kk];
    }
    auto c_at = random_matrix(m, n, gen);
    auto c_at_ref = c_at;
    ops::sgemm_at(m, n, k, alpha, a_t.data(), b.data(), beta, c_at.data());
    naive_gemm(m, n, k, alpha, a.data(), b.data(), beta, c_at_ref.data());
    ASSERT_LE(max_diff(c_at, c_at_ref), 1e-3F * static_cast<float>(k))
        << "sgemm_at " << m << "x" << n << "x" << k;

    // B^T layout: b_t stored [n x k] with b_t[j*k + kk] = B(kk, j).
    std::vector<float> b_t(n * k);
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t kk = 0; kk < k; ++kk) b_t[j * k + kk] = b[kk * n + j];
    }
    auto c_bt = random_matrix(m, n, gen);
    auto c_bt_ref = c_bt;
    ops::sgemm_bt(m, n, k, alpha, a.data(), b_t.data(), beta, c_bt.data());
    naive_gemm(m, n, k, alpha, a.data(), b.data(), beta, c_bt_ref.data());
    ASSERT_LE(max_diff(c_bt, c_bt_ref), 1e-3F * static_cast<float>(k))
        << "sgemm_bt " << m << "x" << n << "x" << k;
  }
}

// The determinism contract: bit-identical C for every thread count. The M
// dimension spans several MC blocks so the parallel path actually engages.
TEST(gemm, results_bit_stable_across_thread_counts) {
  const std::size_t m = 512, n = 96, k = 160;
  appeal::util::rng gen(7);
  const auto a = random_matrix(m, k, gen);
  const auto b = random_matrix(k, n, gen);

  const std::size_t original = ops::gemm_threads();
  std::vector<std::vector<float>> results;
  for (const std::size_t threads : {1, 2, 4}) {
    ops::set_gemm_threads(threads);
    std::vector<float> c(m * n, -1.0F);
    ops::sgemm(m, n, k, 1.0F, a.data(), b.data(), 0.0F, c.data());
    results.push_back(std::move(c));
  }
  ops::set_gemm_threads(original);

  for (std::size_t r = 1; r < results.size(); ++r) {
    for (std::size_t i = 0; i < results[0].size(); ++i) {
      ASSERT_EQ(results[0][i], results[r][i])
          << "thread-count run " << r << " diverged at element " << i;
    }
  }
}

TEST(gemm, beta_zero_overwrites_garbage) {
  // C may contain NaN-like garbage; beta = 0 must ignore it.
  std::vector<float> a{1.0F};
  std::vector<float> b{2.0F};
  std::vector<float> c{std::numeric_limits<float>::quiet_NaN()};
  ops::sgemm(1, 1, 1, 1.0F, a.data(), b.data(), 0.0F, c.data());
  EXPECT_EQ(c[0], 2.0F);
}

TEST(gemm, alpha_zero_only_scales_c) {
  std::vector<float> a{1.0F};
  std::vector<float> b{2.0F};
  std::vector<float> c{4.0F};
  ops::sgemm(1, 1, 1, 0.0F, a.data(), b.data(), 0.5F, c.data());
  EXPECT_EQ(c[0], 2.0F);
}

TEST(gemm, matmul_identity) {
  appeal::util::rng gen(9);
  const tensor m = tensor::randn(shape{4, 4}, gen);
  tensor eye(shape{4, 4});
  for (std::size_t i = 0; i < 4; ++i) eye[i * 4 + i] = 1.0F;
  const tensor out = ops::matmul(m, eye);
  EXPECT_LE(ops::max_abs_diff(out, m), 1e-6F);
}

TEST(gemm, matmul_validates_shapes) {
  const tensor a(shape{2, 3});
  const tensor b(shape{4, 2});
  EXPECT_THROW(ops::matmul(a, b), appeal::util::error);
  EXPECT_THROW(ops::matmul(a, tensor(shape{3})), appeal::util::error);
}

}  // namespace
