// Tests for the GEMM kernels against a naive reference, across shapes and
// alpha/beta combinations.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/gemm_s8.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using appeal::shape;
using appeal::tensor;
namespace ops = appeal::ops;

std::vector<float> random_matrix(std::size_t rows, std::size_t cols,
                                 appeal::util::rng& gen) {
  std::vector<float> out(rows * cols);
  for (auto& v : out) v = gen.uniform(-1.0F, 1.0F);
  return out;
}

void naive_gemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
                const float* a, const float* b, float beta, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
      }
      c[i * n + j] = static_cast<float>(alpha * acc + beta * c[i * n + j]);
    }
  }
}

float max_diff(const std::vector<float>& a, const std::vector<float>& b) {
  float worst = 0.0F;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

/// Parameterized over (m, n, k) including degenerate and blocking-boundary
/// sizes.
class gemm_shapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(gemm_shapes, sgemm_matches_naive) {
  const auto [mi, ni, ki] = GetParam();
  const auto m = static_cast<std::size_t>(mi);
  const auto n = static_cast<std::size_t>(ni);
  const auto k = static_cast<std::size_t>(ki);
  appeal::util::rng gen(m * 1000 + n * 100 + k);

  const auto a = random_matrix(m, k, gen);
  const auto b = random_matrix(k, n, gen);
  auto c_ref = random_matrix(m, n, gen);
  auto c = c_ref;

  ops::sgemm(m, n, k, 1.3F, a.data(), b.data(), 0.7F, c.data());
  naive_gemm(m, n, k, 1.3F, a.data(), b.data(), 0.7F, c_ref.data());
  EXPECT_LE(max_diff(c, c_ref), 1e-3F * static_cast<float>(k));
}

TEST_P(gemm_shapes, sgemm_at_matches_transposed_input) {
  const auto [mi, ni, ki] = GetParam();
  const auto m = static_cast<std::size_t>(mi);
  const auto n = static_cast<std::size_t>(ni);
  const auto k = static_cast<std::size_t>(ki);
  appeal::util::rng gen(m + n + k);

  // A stored [k x m]; compare against naive on the explicit transpose.
  const auto a_t = random_matrix(k, m, gen);
  std::vector<float> a(m * k);
  for (std::size_t kk = 0; kk < k; ++kk) {
    for (std::size_t i = 0; i < m; ++i) a[i * k + kk] = a_t[kk * m + i];
  }
  const auto b = random_matrix(k, n, gen);
  std::vector<float> c(m * n, 0.0F);
  std::vector<float> c_ref(m * n, 0.0F);

  ops::sgemm_at(m, n, k, 1.0F, a_t.data(), b.data(), 0.0F, c.data());
  naive_gemm(m, n, k, 1.0F, a.data(), b.data(), 0.0F, c_ref.data());
  EXPECT_LE(max_diff(c, c_ref), 1e-3F * static_cast<float>(k));
}

TEST_P(gemm_shapes, sgemm_bt_matches_transposed_input) {
  const auto [mi, ni, ki] = GetParam();
  const auto m = static_cast<std::size_t>(mi);
  const auto n = static_cast<std::size_t>(ni);
  const auto k = static_cast<std::size_t>(ki);
  appeal::util::rng gen(3 * m + 5 * n + 7 * k);

  const auto a = random_matrix(m, k, gen);
  // B stored [n x k].
  const auto b_t = random_matrix(n, k, gen);
  std::vector<float> b(k * n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t kk = 0; kk < k; ++kk) b[kk * n + j] = b_t[j * k + kk];
  }
  std::vector<float> c(m * n, 0.0F);
  std::vector<float> c_ref(m * n, 0.0F);

  ops::sgemm_bt(m, n, k, 1.0F, a.data(), b_t.data(), 0.0F, c.data());
  naive_gemm(m, n, k, 1.0F, a.data(), b.data(), 0.0F, c_ref.data());
  EXPECT_LE(max_diff(c, c_ref), 1e-3F * static_cast<float>(k));
}

INSTANTIATE_TEST_SUITE_P(
    sizes, gemm_shapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(16, 16, 16), std::make_tuple(1, 64, 9),
                      std::make_tuple(65, 7, 129),   // crosses block_m/block_k
                      std::make_tuple(64, 257, 128), // exactly at block sizes
                      std::make_tuple(31, 300, 5)));

// Randomized rectangular / ragged shapes across both the small-kernel and
// the packed-kernel dispatch, all three layouts, against the naive
// reference.
TEST(gemm, randomized_shapes_match_naive) {
  appeal::util::rng gen(2024);
  for (int iter = 0; iter < 60; ++iter) {
    const auto m = static_cast<std::size_t>(gen.uniform_int(1, 90));
    const auto n = static_cast<std::size_t>(gen.uniform_int(1, 90));
    const auto k = static_cast<std::size_t>(gen.uniform_int(1, 90));
    const float alpha = gen.uniform(0.5F, 1.5F);
    const float beta = gen.bernoulli(0.5) ? 0.0F : gen.uniform(0.2F, 1.2F);

    const auto a = random_matrix(m, k, gen);
    const auto b = random_matrix(k, n, gen);
    auto c_ref = random_matrix(m, n, gen);
    auto c = c_ref;
    ops::sgemm(m, n, k, alpha, a.data(), b.data(), beta, c.data());
    naive_gemm(m, n, k, alpha, a.data(), b.data(), beta, c_ref.data());
    ASSERT_LE(max_diff(c, c_ref), 1e-3F * static_cast<float>(k))
        << "sgemm " << m << "x" << n << "x" << k;

    // A^T layout: a_t stored [k x m] with a_t[kk*m + i] = A(i, kk).
    std::vector<float> a_t(m * k);
    for (std::size_t kk = 0; kk < k; ++kk) {
      for (std::size_t i = 0; i < m; ++i) a_t[kk * m + i] = a[i * k + kk];
    }
    auto c_at = random_matrix(m, n, gen);
    auto c_at_ref = c_at;
    ops::sgemm_at(m, n, k, alpha, a_t.data(), b.data(), beta, c_at.data());
    naive_gemm(m, n, k, alpha, a.data(), b.data(), beta, c_at_ref.data());
    ASSERT_LE(max_diff(c_at, c_at_ref), 1e-3F * static_cast<float>(k))
        << "sgemm_at " << m << "x" << n << "x" << k;

    // B^T layout: b_t stored [n x k] with b_t[j*k + kk] = B(kk, j).
    std::vector<float> b_t(n * k);
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t kk = 0; kk < k; ++kk) b_t[j * k + kk] = b[kk * n + j];
    }
    auto c_bt = random_matrix(m, n, gen);
    auto c_bt_ref = c_bt;
    ops::sgemm_bt(m, n, k, alpha, a.data(), b_t.data(), beta, c_bt.data());
    naive_gemm(m, n, k, alpha, a.data(), b.data(), beta, c_bt_ref.data());
    ASSERT_LE(max_diff(c_bt, c_bt_ref), 1e-3F * static_cast<float>(k))
        << "sgemm_bt " << m << "x" << n << "x" << k;
  }
}

// The determinism contract: bit-identical C for every thread count. The M
// dimension spans several MC blocks so the parallel path actually engages.
TEST(gemm, results_bit_stable_across_thread_counts) {
  const std::size_t m = 512, n = 96, k = 160;
  appeal::util::rng gen(7);
  const auto a = random_matrix(m, k, gen);
  const auto b = random_matrix(k, n, gen);

  const std::size_t original = ops::gemm_threads();
  std::vector<std::vector<float>> results;
  for (const std::size_t threads : {1, 2, 4}) {
    ops::set_gemm_threads(threads);
    std::vector<float> c(m * n, -1.0F);
    ops::sgemm(m, n, k, 1.0F, a.data(), b.data(), 0.0F, c.data());
    results.push_back(std::move(c));
  }
  ops::set_gemm_threads(original);

  for (std::size_t r = 1; r < results.size(); ++r) {
    for (std::size_t i = 0; i < results[0].size(); ++i) {
      ASSERT_EQ(results[0][i], results[r][i])
          << "thread-count run " << r << " diverged at element " << i;
    }
  }
}

TEST(gemm, beta_zero_overwrites_garbage) {
  // C may contain NaN-like garbage; beta = 0 must ignore it.
  std::vector<float> a{1.0F};
  std::vector<float> b{2.0F};
  std::vector<float> c{std::numeric_limits<float>::quiet_NaN()};
  ops::sgemm(1, 1, 1, 1.0F, a.data(), b.data(), 0.0F, c.data());
  EXPECT_EQ(c[0], 2.0F);
}

TEST(gemm, alpha_zero_only_scales_c) {
  std::vector<float> a{1.0F};
  std::vector<float> b{2.0F};
  std::vector<float> c{4.0F};
  ops::sgemm(1, 1, 1, 0.0F, a.data(), b.data(), 0.5F, c.data());
  EXPECT_EQ(c[0], 2.0F);
}

TEST(gemm, matmul_identity) {
  appeal::util::rng gen(9);
  const tensor m = tensor::randn(shape{4, 4}, gen);
  tensor eye(shape{4, 4});
  for (std::size_t i = 0; i < 4; ++i) eye[i * 4 + i] = 1.0F;
  const tensor out = ops::matmul(m, eye);
  EXPECT_LE(ops::max_abs_diff(out, m), 1e-6F);
}

TEST(gemm, matmul_validates_shapes) {
  const tensor a(shape{2, 3});
  const tensor b(shape{4, 2});
  EXPECT_THROW(ops::matmul(a, b), appeal::util::error);
  EXPECT_THROW(ops::matmul(a, tensor(shape{3})), appeal::util::error);
}

// ---------------------------------------------------------------------------
// Quantized int8 GEMM (tensor/gemm_s8).

/// Scalar reference for qgemm_s8u8: plain int32 accumulation plus the
/// requantize epilogue, no packing, no blocking.
void naive_qgemm(std::size_t m, std::size_t n, std::size_t k,
                 const std::int8_t* a, const ops::u8_view& b,
                 const ops::qgemm_epilogue& epi, float* c,
                 std::size_t c_row_stride, std::size_t c_col_stride) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int32_t>(a[i * k + kk]) *
               static_cast<std::int32_t>(
                   b.p[kk * b.row_stride + j * b.col_stride]);
      }
      const std::int32_t off =
          epi.row_offset != nullptr ? epi.row_offset[i] : 0;
      const float bias = epi.bias != nullptr ? epi.bias[i] : 0.0F;
      float v = epi.scale[i] * static_cast<float>(acc + off) + bias;
      v = std::min(std::max(v, epi.act_lo), epi.act_hi);
      c[i * c_row_stride + j * c_col_stride] = v;
    }
  }
}

std::vector<std::int8_t> random_s8(std::size_t count, appeal::util::rng& gen) {
  std::vector<std::int8_t> out(count);
  for (auto& v : out) v = static_cast<std::int8_t>(gen.uniform_int(-127, 127));
  return out;
}

std::vector<std::uint8_t> random_u8(std::size_t count, appeal::util::rng& gen) {
  std::vector<std::uint8_t> out(count);
  for (auto& v : out) v = static_cast<std::uint8_t>(gen.uniform_int(0, 255));
  return out;
}

// Randomized shapes crossing the small-kernel/packed-kernel dispatch and
// the MR/NR/MC block edges, with the full epilogue (scale + bias +
// row_offset + clamp), against the scalar reference. Integer arithmetic is
// exact, so the comparison is equality on every element.
TEST(qgemm, randomized_shapes_match_naive) {
  appeal::util::rng gen(1812);
  for (int iter = 0; iter < 50; ++iter) {
    const auto m = static_cast<std::size_t>(gen.uniform_int(1, 200));
    const auto n = static_cast<std::size_t>(gen.uniform_int(1, 80));
    const auto k = static_cast<std::size_t>(gen.uniform_int(1, 120));

    const auto a = random_s8(m * k, gen);
    const auto bbuf = random_u8(k * n, gen);
    const ops::u8_view b{bbuf.data(), n, 1};

    std::vector<float> scale(m);
    std::vector<float> bias(m);
    std::vector<std::int32_t> off(m);
    for (std::size_t i = 0; i < m; ++i) {
      scale[i] = gen.uniform(1e-4F, 1e-2F);
      bias[i] = gen.uniform(-1.0F, 1.0F);
      off[i] = gen.uniform_int(-5000, 5000);
    }
    ops::qgemm_epilogue epi;
    epi.scale = scale.data();
    epi.bias = bias.data();
    epi.row_offset = off.data();
    if (gen.bernoulli(0.5)) {
      epi.act_lo = 0.0F;  // fused ReLU
      if (gen.bernoulli(0.5)) epi.act_hi = 6.0F;
    }

    std::vector<float> c(m * n, -42.0F);
    std::vector<float> c_ref(m * n, -42.0F);
    ops::qgemm_s8u8(m, n, k, a.data(), b, epi, c.data(), n, 1);
    naive_qgemm(m, n, k, a.data(), b, epi, c_ref.data(), n, 1);
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_EQ(c[i], c_ref[i])
          << "qgemm " << m << "x" << n << "x" << k << " element " << i;
    }
  }
}

// The qlinear layout: B is a transposed view of a row-major [n x k]
// activation block, C stores transposed [n x m]. Both strides exercised
// together, against the reference on the same views.
TEST(qgemm, transposed_view_and_strided_store_match_naive) {
  appeal::util::rng gen(426);
  for (int iter = 0; iter < 20; ++iter) {
    const auto m = static_cast<std::size_t>(gen.uniform_int(1, 96));
    const auto n = static_cast<std::size_t>(gen.uniform_int(1, 48));
    const auto k = static_cast<std::size_t>(gen.uniform_int(1, 100));

    const auto a = random_s8(m * k, gen);
    // x stored row-major [n x k]; the view reads it as B[k x n].
    const auto x = random_u8(n * k, gen);
    const ops::u8_view b{x.data(), 1, k};

    std::vector<float> scale(m, 3e-3F);
    ops::qgemm_epilogue epi;
    epi.scale = scale.data();

    // C stored transposed: y[n x m], element (i, j) at y[j * m + i].
    std::vector<float> y(m * n, 0.0F);
    std::vector<float> y_ref(m * n, 0.0F);
    ops::qgemm_s8u8(m, n, k, a.data(), b, epi, y.data(), 1, m);
    naive_qgemm(m, n, k, a.data(), b, epi, y_ref.data(), 1, m);
    for (std::size_t i = 0; i < y.size(); ++i) {
      ASSERT_EQ(y[i], y_ref[i]) << "qgemm^T " << m << "x" << n << "x" << k;
    }
  }
}

TEST(qgemm, results_bit_stable_across_thread_counts) {
  const std::size_t m = 512, n = 64, k = 144;
  appeal::util::rng gen(77);
  const auto a = random_s8(m * k, gen);
  const auto bbuf = random_u8(k * n, gen);
  const ops::u8_view b{bbuf.data(), n, 1};
  std::vector<float> scale(m, 1e-3F);
  std::vector<std::int32_t> off(m);
  for (std::size_t i = 0; i < m; ++i) off[i] = gen.uniform_int(-9000, 9000);
  ops::qgemm_epilogue epi;
  epi.scale = scale.data();
  epi.row_offset = off.data();

  const std::size_t original = ops::gemm_threads();
  std::vector<std::vector<float>> results;
  for (const std::size_t threads : {1, 2, 4}) {
    ops::set_gemm_threads(threads);
    std::vector<float> c(m * n, -1.0F);
    ops::qgemm_s8u8(m, n, k, a.data(), b, epi, c.data(), n, 1);
    results.push_back(std::move(c));
  }
  ops::set_gemm_threads(original);

  for (std::size_t r = 1; r < results.size(); ++r) {
    for (std::size_t i = 0; i < results[0].size(); ++i) {
      ASSERT_EQ(results[0][i], results[r][i])
          << "qgemm thread run " << r << " diverged at element " << i;
    }
  }
}

TEST(qgemm, k_zero_writes_epilogue_constant) {
  std::vector<float> scale{2.0F};
  std::vector<float> bias{1.0F};
  std::vector<std::int32_t> off{3};
  ops::qgemm_epilogue epi;
  epi.scale = scale.data();
  epi.bias = bias.data();
  epi.row_offset = off.data();
  std::vector<float> c(4, -9.0F);
  const ops::u8_view b{nullptr, 0, 0};
  ops::qgemm_s8u8(1, 4, 0, nullptr, b, epi, c.data(), 4, 1);
  for (const float v : c) EXPECT_EQ(v, 2.0F * 3.0F + 1.0F);
}

// quantize_u8 round trip: codes match the scalar rounding contract
// (half away from zero, same as nn::fake_quantize_value), saturate at the
// grid edges, and survive zero_point extremes.
TEST(qgemm, quantize_u8_matches_lround_contract) {
  appeal::util::rng gen(55);
  const float scale = 0.037F;
  for (const std::int32_t zp : {0, 1, 128, 254, 255}) {
    std::vector<float> src(257);
    for (auto& v : src) v = gen.uniform(-12.0F, 12.0F);
    // Include exact ties and the saturation extremes.
    src[0] = 0.5F * scale;
    src[1] = -0.5F * scale;
    src[2] = 1e6F;
    src[3] = -1e6F;
    src[4] = 0.0F;
    std::vector<std::uint8_t> dst(src.size());
    ops::quantize_u8(src.data(), src.size(), scale, zp, dst.data());
    for (std::size_t i = 0; i < src.size(); ++i) {
      const auto q = static_cast<std::int32_t>(
          std::lround(static_cast<double>(src[i] / scale)) + zp);
      const std::int32_t expected = std::min(std::max(q, 0), 255);
      ASSERT_EQ(static_cast<std::int32_t>(dst[i]), expected)
          << "zp=" << zp << " x=" << src[i];
    }
  }
}

TEST(qgemm, s8_row_sums_matches_manual) {
  appeal::util::rng gen(12);
  const std::size_t m = 7, k = 33;
  const auto a = random_s8(m * k, gen);
  std::vector<std::int32_t> sums(m, 99);
  ops::s8_row_sums(a.data(), m, k, sums.data());
  for (std::size_t i = 0; i < m; ++i) {
    std::int32_t expect = 0;
    for (std::size_t kk = 0; kk < k; ++kk) expect += a[i * k + kk];
    EXPECT_EQ(sums[i], expect);
  }
}

}  // namespace
