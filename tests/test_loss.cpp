// Tests for loss functions: cross-entropy, BCE and the AppealNet joint
// objective (values + closed-form gradients vs finite differences).
#include <gtest/gtest.h>

#include <cmath>

#include "core/joint_loss.hpp"
#include "nn/loss.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;

TEST(cross_entropy, uniform_logits_give_log_k) {
  const tensor logits(shape{2, 4});  // all zeros -> uniform
  const nn::loss_result r = nn::softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(r.mean_loss, std::log(4.0), 1e-5);
  EXPECT_NEAR(r.per_sample[0], std::log(4.0F), 1e-5F);
}

TEST(cross_entropy, confident_correct_prediction_has_low_loss) {
  tensor logits(shape{1, 3});
  logits[0] = 10.0F;
  const nn::loss_result r = nn::softmax_cross_entropy(logits, {0});
  EXPECT_LT(r.mean_loss, 1e-3);
}

TEST(cross_entropy, gradient_matches_finite_differences) {
  util::rng gen(3);
  tensor logits = tensor::randn(shape{4, 5}, gen);
  const std::vector<std::size_t> labels{0, 2, 4, 1};
  const nn::loss_result r = nn::softmax_cross_entropy(logits, labels);

  const float eps = 1e-2F;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + eps;
    const double plus =
        nn::softmax_cross_entropy(logits, labels).mean_loss;
    logits[i] = saved - eps;
    const double minus =
        nn::softmax_cross_entropy(logits, labels).mean_loss;
    logits[i] = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    EXPECT_NEAR(numeric, r.grad[i], 2e-3) << "at flat index " << i;
  }
}

TEST(cross_entropy, label_smoothing_softens_gradient_and_loss) {
  tensor logits(shape{1, 4});
  logits[1] = 8.0F;
  const nn::loss_result hard = nn::softmax_cross_entropy(logits, {1}, 0.0F);
  const nn::loss_result soft = nn::softmax_cross_entropy(logits, {1}, 0.2F);
  EXPECT_GT(soft.mean_loss, hard.mean_loss);
  // With smoothing the optimum is not a one-hot, so the gradient at a very
  // confident point pushes away from over-confidence.
  EXPECT_GT(soft.grad[1], hard.grad[1]);
}

TEST(cross_entropy, validates_inputs) {
  const tensor logits(shape{2, 3});
  EXPECT_THROW(nn::softmax_cross_entropy(logits, {0}), util::error);
  EXPECT_THROW(nn::softmax_cross_entropy(logits, {0, 5}), util::error);
  EXPECT_THROW(nn::softmax_cross_entropy(logits, {0, 1}, 1.0F), util::error);
}

TEST(cross_entropy_values, matches_loss_result) {
  util::rng gen(5);
  const tensor logits = tensor::randn(shape{6, 4}, gen);
  const std::vector<std::size_t> labels{0, 1, 2, 3, 0, 1};
  const auto values = nn::cross_entropy_values(logits, labels);
  const nn::loss_result r = nn::softmax_cross_entropy(logits, labels);
  ASSERT_EQ(values.size(), 6U);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(values[i], r.per_sample[i], 1e-5F);
  }
}

TEST(sigmoid_bce, known_values_and_stability) {
  const tensor scores = tensor::from_values(shape{3}, {0.0F, 80.0F, -80.0F});
  const nn::loss_result r =
      nn::sigmoid_binary_cross_entropy(scores, {1.0F, 1.0F, 0.0F});
  EXPECT_NEAR(r.per_sample[0], std::log(2.0F), 1e-5F);
  EXPECT_NEAR(r.per_sample[1], 0.0F, 1e-5F);
  EXPECT_NEAR(r.per_sample[2], 0.0F, 1e-5F);
  EXPECT_FALSE(r.grad.has_non_finite());
}

TEST(sigmoid_bce, gradient_matches_finite_differences) {
  util::rng gen(7);
  tensor scores = tensor::randn(shape{5}, gen);
  const std::vector<float> targets{1.0F, 0.0F, 0.5F, 1.0F, 0.0F};
  const nn::loss_result r = nn::sigmoid_binary_cross_entropy(scores, targets);
  const float eps = 1e-3F;
  for (std::size_t i = 0; i < 5; ++i) {
    const float saved = scores[i];
    scores[i] = saved + eps;
    const double plus =
        nn::sigmoid_binary_cross_entropy(scores, targets).mean_loss;
    scores[i] = saved - eps;
    const double minus =
        nn::sigmoid_binary_cross_entropy(scores, targets).mean_loss;
    scores[i] = saved;
    EXPECT_NEAR((plus - minus) / (2.0 * eps), r.grad[i], 1e-3);
  }
}

// ---------------------------------------------------------------------------
// Joint loss (Eq. 9 / Eq. 10).
// ---------------------------------------------------------------------------

double brute_force_joint_loss(const tensor& logits, const tensor& q_logits,
                              const std::vector<std::size_t>& labels,
                              const std::vector<float>& big_losses,
                              const core::joint_loss_config& cfg) {
  const tensor log_probs = ops::log_softmax_rows(logits);
  const std::size_t n = logits.dims().dim(0);
  const std::size_t k = logits.dims().dim(1);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double l1 = -log_probs[i * k + labels[i]];
    const double l0 = cfg.black_box ? 0.0 : big_losses[i];
    double q = 1.0 / (1.0 + std::exp(-static_cast<double>(q_logits[i])));
    q = std::clamp(q, static_cast<double>(cfg.q_floor),
                   1.0 - static_cast<double>(cfg.q_floor));
    total += q * l1 + (1.0 - q) * l0 + cfg.beta * (-std::log(q));
  }
  return total / static_cast<double>(n);
}

TEST(joint_loss, value_matches_brute_force) {
  util::rng gen(11);
  const tensor logits = tensor::randn(shape{6, 4}, gen);
  const tensor q_logits = tensor::randn(shape{6}, gen);
  const std::vector<std::size_t> labels{0, 1, 2, 3, 1, 0};
  std::vector<float> big_losses(6);
  for (auto& v : big_losses) v = gen.uniform(0.0F, 0.5F);

  core::joint_loss_config cfg;
  cfg.beta = 0.4;
  const auto r =
      core::compute_joint_loss(logits, q_logits, labels, big_losses, cfg);
  EXPECT_NEAR(r.total_loss,
              brute_force_joint_loss(logits, q_logits, labels, big_losses, cfg),
              1e-5);
  // total = system + beta * cost decomposition holds.
  EXPECT_NEAR(r.total_loss, r.system_loss + cfg.beta * r.cost_loss, 1e-9);
}

TEST(joint_loss, black_box_ignores_big_losses) {
  util::rng gen(13);
  const tensor logits = tensor::randn(shape{4, 3}, gen);
  const tensor q_logits = tensor::randn(shape{4}, gen);
  const std::vector<std::size_t> labels{0, 1, 2, 0};

  core::joint_loss_config cfg;
  cfg.black_box = true;
  const auto r_empty =
      core::compute_joint_loss(logits, q_logits, labels, {}, cfg);
  const auto r_filled = core::compute_joint_loss(
      logits, q_logits, labels, {9.0F, 9.0F, 9.0F, 9.0F}, cfg);
  EXPECT_NEAR(r_empty.total_loss, r_filled.total_loss, 1e-9);
}

TEST(joint_loss, gradients_match_finite_differences) {
  util::rng gen(17);
  tensor logits = tensor::randn(shape{5, 3}, gen);
  tensor q_logits = tensor::randn(shape{5}, gen);
  const std::vector<std::size_t> labels{0, 1, 2, 1, 0};
  std::vector<float> big_losses{0.1F, 0.9F, 0.0F, 2.0F, 0.4F};

  core::joint_loss_config cfg;
  cfg.beta = 0.3;
  const auto r =
      core::compute_joint_loss(logits, q_logits, labels, big_losses, cfg);

  const float eps = 1e-2F;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + eps;
    const double plus =
        brute_force_joint_loss(logits, q_logits, labels, big_losses, cfg);
    logits[i] = saved - eps;
    const double minus =
        brute_force_joint_loss(logits, q_logits, labels, big_losses, cfg);
    logits[i] = saved;
    EXPECT_NEAR((plus - minus) / (2.0 * eps), r.grad_logits[i], 2e-3)
        << "logit grad at " << i;
  }
  for (std::size_t i = 0; i < q_logits.size(); ++i) {
    const float saved = q_logits[i];
    q_logits[i] = saved + eps;
    const double plus =
        brute_force_joint_loss(logits, q_logits, labels, big_losses, cfg);
    q_logits[i] = saved - eps;
    const double minus =
        brute_force_joint_loss(logits, q_logits, labels, big_losses, cfg);
    q_logits[i] = saved;
    EXPECT_NEAR((plus - minus) / (2.0 * eps), r.grad_q_logits[i], 2e-3)
        << "q grad at " << i;
  }
}

TEST(joint_loss, q_gradient_direction_reflects_difficulty) {
  // A sample the little net gets badly wrong (l1 >> l0) should push q DOWN
  // (positive dL/ds) once l1 - l0 dominates beta; an easy sample (l1 < l0)
  // should pull q UP (negative dL/ds).
  tensor logits(shape{2, 2});
  logits[0] = -6.0F;  // sample 0: wrong and confident -> big l1
  logits[1] = 6.0F;
  logits[2] = 6.0F;  // sample 1: right and confident -> tiny l1
  logits[3] = -6.0F;
  tensor q_logits(shape{2});  // q = 0.5 for both
  const std::vector<std::size_t> labels{0, 0};
  const std::vector<float> big_losses{0.0F, 0.0F};

  core::joint_loss_config cfg;
  cfg.beta = 0.1;
  const auto r =
      core::compute_joint_loss(logits, q_logits, labels, big_losses, cfg);
  EXPECT_GT(r.grad_q_logits[0], 0.0F);  // push q(easy) down
  EXPECT_LT(r.grad_q_logits[1], 0.0F);  // pull q up
}

TEST(joint_loss, larger_beta_pulls_q_up_harder) {
  tensor logits(shape{1, 2});
  tensor q_logits(shape{1});
  const std::vector<std::size_t> labels{0};
  const std::vector<float> big_losses{0.0F};

  core::joint_loss_config low;
  low.beta = 0.01;
  core::joint_loss_config high;
  high.beta = 1.0;
  const auto r_low =
      core::compute_joint_loss(logits, q_logits, labels, big_losses, low);
  const auto r_high =
      core::compute_joint_loss(logits, q_logits, labels, big_losses, high);
  EXPECT_LT(r_high.grad_q_logits[0], r_low.grad_q_logits[0]);
}

TEST(joint_loss, validates_inputs) {
  const tensor logits(shape{2, 3});
  const tensor q_logits(shape{2});
  core::joint_loss_config cfg;
  EXPECT_THROW(core::compute_joint_loss(logits, q_logits, {0}, {0.0F, 0.0F}, cfg),
               util::error);
  EXPECT_THROW(core::compute_joint_loss(logits, q_logits, {0, 1}, {0.0F}, cfg),
               util::error);
  EXPECT_THROW(core::compute_joint_loss(logits, tensor(shape{3}), {0, 1},
                                        {0.0F, 0.0F}, cfg),
               util::error);
}

}  // namespace
