// Split-computing appeal tests: cut tables on the model core
// (forward_to_cut / forward_prefix+suffix bit-exactness, fold
// survival), wire v5 <-> v4 compatibility for feature-map frames, and
// the end-to-end split path over a UDS loopback stub — fixed-cut
// bit-exactness at every cut, unknown-cut rejection with blacklisting,
// and auto mode shedding wire bytes at unchanged answers.
#include <gtest/gtest.h>

#include <cstring>
#include <mutex>
#include <string>
#include <unistd.h>
#include <vector>

#include "collab/cost_model.hpp"
#include "core/two_head_network.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "serve/backends.hpp"
#include "serve/cloud_channel.hpp"
#include "serve/cloud_model.hpp"
#include "serve/split.hpp"
#include "serve/transport/stub_server.hpp"
#include "serve/transport/wire.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;
using namespace appeal::serve;

std::string unique_uds_path(const char* tag) {
  static std::atomic<int> counter{0};
  return "/tmp/appeal-split-" + std::to_string(::getpid()) + "-" + tag + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// Bit-exact tensor equality: same shape, same float bit patterns.
void expect_bit_exact(const tensor& a, const tensor& b, const char* what) {
  ASSERT_EQ(a.dims().dims(), b.dims().dims()) << what << ": shape mismatch";
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << ": payload bits diverged";
}

request make_image_request(std::uint64_t key, const tensor& image) {
  request r;
  r.id = key;
  r.key = key;
  r.input = image;
  r.enqueue_time = std::chrono::steady_clock::now();
  return r;
}

std::vector<tensor> make_images(std::size_t n, std::size_t channels,
                                std::size_t hw, std::uint64_t seed) {
  util::rng gen(seed);
  std::vector<tensor> images;
  images.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    images.push_back(
        tensor::rand_uniform(shape{channels, hw, hw}, gen, -1.0F, 1.0F));
  }
  return images;
}

// ---------------------------------------------------------------------------
// Model core: cut tables and prefix/suffix equivalence.
// ---------------------------------------------------------------------------

TEST(split_model, forward_to_cut_prefix_of_full_forward_all_families) {
  // At every cut of every backbone family, forward_to_cut followed by the
  // extractor's suffix must reproduce the full forward bit for bit — the
  // property that makes a split appeal's answer equal full recompute.
  const models::model_family families[] = {
      models::model_family::resnet, models::model_family::mobilenet,
      models::model_family::shufflenet, models::model_family::efficientnet};
  for (const models::model_family family : families) {
    core::two_head_config cfg;
    cfg.spec.family = family;
    cfg.spec.image_size = 16;
    cfg.spec.num_classes = 10;
    cfg.init_seed = 0xC07 + static_cast<std::uint64_t>(family);
    core::two_head_network net(cfg);
    net.prepare_for_inference();
    nn::sequential& extractor = net.extractor();
    ASSERT_FALSE(extractor.cuts().empty())
        << "family " << static_cast<int>(family) << " marks no cuts";

    util::rng gen(7);
    const tensor images = tensor::rand_uniform(
        shape{2, cfg.spec.in_channels, 16, 16}, gen, -1.0F, 1.0F);
    const tensor full = extractor.forward(images, /*training=*/false);
    for (std::size_t c = 0; c < extractor.cuts().size(); ++c) {
      const tensor feature = net.forward_to_cut(images, c);
      const tensor rejoined = extractor.forward_suffix(
          feature, extractor.cuts()[c].boundary);
      expect_bit_exact(rejoined, full, extractor.cuts()[c].name.c_str());
    }
  }
}

TEST(split_model, cut_table_survives_conv_batchnorm_fold) {
  // Folding removes batchnorm children; the cut boundaries must shift
  // with them so a folded and an unfolded build of the same architecture
  // expose the same cuts with the same feature geometry.
  cloud_model_config unfolded_cfg;
  unfolded_cfg.fold = false;
  cloud_model_config folded_cfg;
  folded_cfg.fold = true;
  const auto unfolded = make_cloud_model(unfolded_cfg);
  const auto folded = make_cloud_model(folded_cfg);

  ASSERT_EQ(unfolded->cuts().size(), folded->cuts().size());
  ASSERT_LT(folded->size(), unfolded->size()) << "fold removed no children";
  const shape in({1, unfolded_cfg.spec.in_channels,
                  unfolded_cfg.spec.image_size, unfolded_cfg.spec.image_size});
  const std::vector<nn::cut_info> before = unfolded->cut_table(in);
  const std::vector<nn::cut_info> after = folded->cut_table(in);
  for (std::size_t c = 0; c < before.size(); ++c) {
    EXPECT_EQ(before[c].name, after[c].name);
    EXPECT_EQ(before[c].output.dims(), after[c].output.dims())
        << "feature shape moved across the fold at cut " << before[c].name;
    EXPECT_EQ(before[c].feature_bytes, after[c].feature_bytes);
    EXPECT_LE(after[c].boundary, before[c].boundary)
        << "fold cannot push a boundary deeper";
  }

  // The folded model still rejoins bit-exactly at every (shifted) cut.
  util::rng gen(11);
  const tensor image = tensor::rand_uniform(
      shape{1, unfolded_cfg.spec.in_channels, unfolded_cfg.spec.image_size,
            unfolded_cfg.spec.image_size},
      gen, -1.0F, 1.0F);
  const tensor full = folded->forward(image, false);
  for (const nn::cut_point& cut : folded->cuts()) {
    const tensor feature = folded->forward_prefix(image, cut.boundary);
    expect_bit_exact(folded->forward_suffix(feature, cut.boundary), full,
                     cut.name.c_str());
  }
}

TEST(split_model, enumerate_cloud_cuts_matches_model_table) {
  // The shared spec both link ends derive their tables from: 1-based ids,
  // per-sample dims (batch axis stripped), float wire bytes.
  cloud_model_config cfg;
  const std::vector<split_cut_spec> cuts = enumerate_cloud_cuts(cfg);
  const auto net = make_cloud_model(cfg);
  ASSERT_EQ(cuts.size(), net->cuts().size());
  std::size_t raw_bytes = static_cast<std::size_t>(cfg.spec.in_channels) *
                          cfg.spec.image_size * cfg.spec.image_size *
                          sizeof(float);
  bool some_cut_sheds_bytes = false;
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    EXPECT_EQ(cuts[i].id, i + 1);
    EXPECT_EQ(cuts[i].name, net->cuts()[i].name);
    std::size_t count = 1;
    for (const std::size_t d : cuts[i].feature_dims) count *= d;
    EXPECT_EQ(cuts[i].wire_bytes, count * sizeof(float));
    if (cuts[i].wire_bytes < raw_bytes) some_cut_sheds_bytes = true;
  }
  EXPECT_TRUE(some_cut_sheds_bytes)
      << "no cut ships fewer bytes than the raw input; the split path "
         "could never win";
}

// ---------------------------------------------------------------------------
// Wire v5: split frames, v4 fallback, torn reads.
// ---------------------------------------------------------------------------

TEST(wire_split, v5_feature_frame_round_trips_through_torn_reads) {
  const tensor input = tensor::from_values(shape{3, 2, 2},
                                           std::vector<float>(12, 0.25F));
  const tensor feature =
      tensor::from_values(shape{8, 2}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                        13, 14, 15, 16});
  wire::appeal_view v;
  v.id = 42;
  v.key = 7;
  v.model = "split-test";
  v.input = &input;
  v.split_cut = 3;
  v.feature = &feature;
  const std::vector<std::uint8_t> bytes =
      wire::encode_appeal_batch({v}, wire::kVersion);

  // A torn stream: the splitter sees the frame one byte at a time and
  // must yield exactly one well-formed frame at the final byte.
  wire::frame_splitter splitter;
  std::size_t frames = 0;
  wire::frame frame;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    splitter.feed(&bytes[i], 1);
    while (auto f = splitter.next()) {
      frame = std::move(*f);
      ++frames;
      EXPECT_EQ(i, bytes.size() - 1) << "frame completed early";
    }
  }
  ASSERT_EQ(frames, 1U);
  EXPECT_EQ(frame.version, wire::kVersion);

  const std::vector<wire::appeal_record> records =
      wire::decode_appeal_batch(frame);
  ASSERT_EQ(records.size(), 1U);
  EXPECT_EQ(records[0].id, 42U);
  EXPECT_EQ(records[0].split_cut, 3U);
  expect_bit_exact(records[0].input, feature, "feature payload");
}

TEST(wire_split, v4_peer_receives_raw_input_appeal) {
  // Encoding a split view at v4 must ship the raw input: an old cloud
  // transparently recomputes in full instead of choking on a cut id.
  const tensor input =
      tensor::from_values(shape{2, 2}, {1.5F, -2.5F, 3.5F, -4.5F});
  const tensor feature = tensor::from_values(shape{4}, {9, 9, 9, 9});
  wire::appeal_view v;
  v.id = 1;
  v.model = "compat";
  v.input = &input;
  v.split_cut = 2;
  v.feature = &feature;

  wire::frame_splitter splitter;
  const std::vector<std::uint8_t> bytes =
      wire::encode_appeal_batch({v}, wire::kVersionV4);
  splitter.feed(bytes.data(), bytes.size());
  const auto frame = splitter.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->version, wire::kVersionV4);
  const std::vector<wire::appeal_record> records =
      wire::decode_appeal_batch(*frame);
  ASSERT_EQ(records.size(), 1U);
  EXPECT_EQ(records[0].split_cut, 0U) << "v4 frame leaked a cut id";
  expect_bit_exact(records[0].input, input, "raw input fallback");
}

TEST(wire_split, rejected_status_downgrades_below_v5) {
  wire::response_record r;
  r.id = 5;
  r.status = wire::response_status::rejected;

  wire::frame_splitter splitter;
  const std::vector<std::uint8_t> v5 =
      wire::encode_response_batch({r}, wire::kVersion);
  splitter.feed(v5.data(), v5.size());
  auto frame = splitter.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(wire::decode_response_batch(*frame)[0].status,
            wire::response_status::rejected);

  const std::vector<std::uint8_t> v4 =
      wire::encode_response_batch({r}, wire::kVersionV4);
  splitter.feed(v4.data(), v4.size());
  frame = splitter.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(wire::decode_response_batch(*frame)[0].status,
            wire::response_status::expired)
      << "an old edge must read 'rejected' as the strongest status it "
         "knows: don't wait for me";
}

// ---------------------------------------------------------------------------
// End-to-end over a UDS loopback stub.
// ---------------------------------------------------------------------------

/// Full-recompute reference predictions for `images` under the canonical
/// cloud model.
std::vector<std::size_t> reference_predictions(
    const cloud_model_config& model_cfg, const std::vector<tensor>& images) {
  auto net = make_cloud_model(model_cfg);
  network_cloud_backend local(*net);
  std::vector<std::size_t> expected(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    expected[i] = local.infer(make_image_request(i, images[i]));
  }
  return expected;
}

/// Ships every image through a channel configured with `split` and
/// returns (predictions, final channel counters).
struct split_run {
  std::vector<std::size_t> got;
  link_counters counters;
};
split_run run_split_appeals(const cloud_model_config& model_cfg,
                            const std::string& endpoint,
                            const split_config& split,
                            const std::vector<tensor>& images,
                            const std::string& name) {
  network_cloud_backend fallback(make_cloud_model(model_cfg));
  link_config cfg;
  cfg.transport = transport_kind::uds;
  cfg.endpoint = endpoint;
  cfg.coalesce_window_ms = 10.0;  // pack several appeals per frame
  cfg.split = split;
  cloud_channel channel(fallback, collab::cost_model{}, cfg, name);
  std::mutex mutex;
  split_run out;
  out.got.assign(images.size(), static_cast<std::size_t>(-1));
  for (std::uint64_t key = 0; key < images.size(); ++key) {
    channel.appeal(make_image_request(key, images[key]),
                   [&](request&& done, const appeal_outcome& outcome) {
                     EXPECT_FALSE(outcome.expired);
                     std::lock_guard<std::mutex> lock(mutex);
                     out.got[done.key] = outcome.prediction;
                   });
  }
  channel.drain();
  out.counters = channel.counters();
  return out;
}

TEST(serve_split, fixed_cut_bit_exact_over_uds_at_every_cut) {
  // The tentpole acceptance gate: at EVERY cut of the canonical model, a
  // feature-map appeal over a real socket must come back with the exact
  // prediction a full recompute produces — and shed uplink bytes whenever
  // the cut's feature is smaller than the raw input.
  cloud_model_config model_cfg;
  model_cfg.init_seed = 0x51157;

  const std::size_t n = 8;
  const std::vector<tensor> images = make_images(
      n, model_cfg.spec.in_channels, model_cfg.spec.image_size, 123);
  const std::vector<std::size_t> expected =
      reference_predictions(model_cfg, images);
  const std::size_t raw_bytes = static_cast<std::size_t>(
      model_cfg.spec.in_channels * model_cfg.spec.image_size *
      model_cfg.spec.image_size * sizeof(float));

  stub_server_config scfg;
  scfg.kind = transport_kind::uds;
  scfg.endpoint = unique_uds_path("fixed");
  scfg.workers = 2;
  scfg.max_cloud_batch = 8;
  stub_server stub(scfg, make_network_scorer_factory(model_cfg));
  stub.start();

  split_config split;
  split.mode = split_mode::fixed;
  split.cuts = enumerate_cloud_cuts(model_cfg);
  ASSERT_FALSE(split.cuts.empty());
  for (const split_cut_spec& cut : split.cuts) {
    split.cut = cut.id;
    const split_run run = run_split_appeals(
        model_cfg, scfg.endpoint, split, images,
        "split-fixed-" + cut.name);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(run.got[i], expected[i])
          << "cut " << cut.name << " diverged from full recompute at " << i;
    }
    EXPECT_EQ(run.counters.local_fallbacks, 0U) << "cut " << cut.name;
    EXPECT_EQ(run.counters.split_rejected, 0U) << "cut " << cut.name;
    EXPECT_EQ(run.counters.split_appeals, n) << "cut " << cut.name;
    EXPECT_EQ(run.counters.split_cut, cut.id);
    // +4: the cut id u32 rides each split record.
    if (cut.wire_bytes + 4 < raw_bytes) {
      EXPECT_EQ(run.counters.split_bytes_saved,
                n * (raw_bytes - cut.wire_bytes - 4))
          << "cut " << cut.name;
    } else {
      EXPECT_EQ(run.counters.split_bytes_saved, 0U) << "cut " << cut.name;
    }
  }
  stub.stop();
}

TEST(serve_split, rejected_cut_completes_locally_and_blacklists) {
  // A peer whose model lacks the cut answers `rejected`: the appeal must
  // complete from the edge's local copy (bit-exact full recompute), the
  // cut must be blacklisted, and every later appeal must ship raw input
  // the peer can score.
  cloud_model_config model_cfg;
  model_cfg.init_seed = 0xDEC1;

  const std::size_t n = 5;
  const std::vector<tensor> images = make_images(
      n, model_cfg.spec.in_channels, model_cfg.spec.image_size, 321);
  const std::vector<std::size_t> expected =
      reference_predictions(model_cfg, images);

  stub_server_config scfg;
  scfg.kind = transport_kind::uds;
  scfg.endpoint = unique_uds_path("reject");
  stub_server stub(scfg, [](const wire::appeal_record& a) -> std::size_t {
    // This cloud has no split support at all: any feature-map appeal is
    // unscorable as sent; raw input scores by key.
    if (a.split_cut != 0) return kRejectedPrediction;
    return static_cast<std::size_t>(a.key % 10);
  });
  stub.start();

  network_cloud_backend fallback(make_cloud_model(model_cfg));
  link_config cfg;
  cfg.transport = transport_kind::uds;
  cfg.endpoint = scfg.endpoint;
  cfg.split.mode = split_mode::fixed;
  cfg.split.cut = 1;
  cfg.split.cuts = enumerate_cloud_cuts(model_cfg);
  cloud_channel channel(fallback, collab::cost_model{}, cfg, "split-reject");

  std::mutex mutex;
  std::vector<std::size_t> got(n, static_cast<std::size_t>(-1));
  const auto submit = [&](std::uint64_t key) {
    channel.appeal(make_image_request(key, images[key]),
                   [&](request&& done, const appeal_outcome& outcome) {
                     EXPECT_FALSE(outcome.expired);
                     std::lock_guard<std::mutex> lock(mutex);
                     got[done.key] = outcome.prediction;
                   });
  };

  // Phase 1: the split appeal is rejected and answered locally.
  submit(0);
  channel.drain();
  EXPECT_EQ(got[0], expected[0])
      << "rejected appeal must complete from the bit-identical local copy";
  link_counters after = channel.counters();
  EXPECT_EQ(after.split_rejected, 1U);
  EXPECT_EQ(after.local_fallbacks, 1U);
  EXPECT_EQ(after.split_cut, 0U) << "rejected cut still active";

  // Phase 2: the cut is blacklisted — later appeals ship raw input and
  // the peer scores them on the wire (no further fallbacks).
  for (std::uint64_t key = 1; key < n; ++key) submit(key);
  channel.drain();
  after = channel.counters();
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_EQ(got[i], i % 10) << "raw-input appeal " << i
                              << " not scored by the peer";
  }
  EXPECT_EQ(after.split_rejected, 1U) << "blacklisted cut was re-shipped";
  EXPECT_EQ(after.split_appeals, 1U);
  EXPECT_EQ(after.local_fallbacks, 1U);
  stub.stop();
}

TEST(serve_split, auto_mode_sheds_wire_bytes_at_unchanged_answers) {
  // Auto mode must pick a feature-map cut on its own (cost model +
  // measured bandwidth), send strictly fewer uplink bytes than raw-input
  // appeals for the same images, and keep every prediction bit-exact.
  cloud_model_config model_cfg;
  model_cfg.init_seed = 0xA070;

  const std::size_t n = 16;
  const std::vector<tensor> images = make_images(
      n, model_cfg.spec.in_channels, model_cfg.spec.image_size, 777);
  const std::vector<std::size_t> expected =
      reference_predictions(model_cfg, images);

  stub_server_config scfg;
  scfg.kind = transport_kind::uds;
  scfg.endpoint = unique_uds_path("auto");
  scfg.workers = 2;
  scfg.max_cloud_batch = 8;
  stub_server stub(scfg, make_network_scorer_factory(model_cfg));
  stub.start();

  split_config off;  // reference: raw-input appeals
  const split_run raw =
      run_split_appeals(model_cfg, scfg.endpoint, off, images, "split-raw");
  split_config autosel;
  autosel.mode = split_mode::autosel;
  autosel.cuts = enumerate_cloud_cuts(model_cfg);
  const split_run split = run_split_appeals(model_cfg, scfg.endpoint, autosel,
                                            images, "split-auto");

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(raw.got[i], expected[i]) << "raw run diverged at " << i;
    EXPECT_EQ(split.got[i], expected[i]) << "auto run diverged at " << i;
  }
  EXPECT_NE(split.counters.split_cut, 0U) << "auto mode never left raw input";
  EXPECT_GT(split.counters.split_appeals, 0U);
  EXPECT_GT(split.counters.split_bytes_saved, 0U);
  EXPECT_LT(split.counters.wire.bytes_sent, raw.counters.wire.bytes_sent)
      << "split appeals must shed uplink bytes on this model";

  // The observability contract the CI gate scrapes: the active cut gauge
  // and the bytes-saved counter exist under the deployment label.
  const std::string metrics = obs::default_registry().render_prometheus();
  EXPECT_NE(metrics.find("appeal_split_cut{deployment=\"split-auto\"}"),
            std::string::npos)
      << metrics;
  EXPECT_NE(
      metrics.find("appeal_split_bytes_saved_total{deployment=\"split-auto\"}"),
      std::string::npos);
  stub.stop();
}

}  // namespace
