// Tests for util: strings, config, CSV, tables, histogram, hashing, cache.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/artifact_cache.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/histogram.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace appeal::util;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(string_util, split_keeps_empty_fields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("a,", ','), (std::vector<std::string>{"a", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(string_util, trim_removes_surrounding_whitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
}

TEST(string_util, starts_with_and_lower) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
  EXPECT_EQ(to_lower("MoBiLeNet"), "mobilenet");
}

TEST(string_util, join_and_formatting) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_percent(0.4567, 1), "45.7%");
}

TEST(config, parses_key_value_and_flags) {
  const char* argv[] = {"prog", "--alpha=1.5", "--name=test", "--verbose"};
  const config cfg = config::from_args(4, argv);
  EXPECT_DOUBLE_EQ(cfg.get_double("alpha"), 1.5);
  EXPECT_EQ(cfg.get_string("name"), "test");
  EXPECT_TRUE(cfg.get_bool_or("verbose", false));
  EXPECT_FALSE(cfg.get_bool_or("absent", false));
  EXPECT_EQ(cfg.get_int_or("absent", 9), 9);
}

TEST(config, rejects_positional_arguments) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(config::from_args(2, argv), error);
}

TEST(config, typed_getter_errors) {
  config cfg;
  cfg.set("x", "not-a-number");
  EXPECT_THROW(cfg.get_int("x"), error);
  EXPECT_THROW(cfg.get_double("x"), error);
  EXPECT_THROW(cfg.get_string("missing"), error);
}

TEST(config, canonical_string_is_sorted_and_stable) {
  config a;
  a.set("zeta", "1");
  a.set("alpha", "2");
  config b;
  b.set("alpha", "2");
  b.set("zeta", "1");
  EXPECT_EQ(a.canonical_string(), b.canonical_string());
  EXPECT_EQ(a.canonical_string(), "alpha=2,zeta=1");
}

TEST(csv, roundtrip_with_quoting) {
  const std::string path = temp_path("appeal_csv_test.csv");
  {
    csv_writer writer(path);
    writer.write_row(std::vector<std::string>{"plain", "with,comma",
                                              "with\"quote"});
    writer.write_row(std::vector<double>{1.5, -2.25});
  }
  const csv_document doc = read_csv(path);
  ASSERT_EQ(doc.row_count(), 2U);
  EXPECT_EQ(doc.rows[0][1], "with,comma");
  EXPECT_EQ(doc.rows[0][2], "with\"quote");
  EXPECT_DOUBLE_EQ(std::stod(doc.rows[1][0]), 1.5);
  std::remove(path.c_str());
}

TEST(csv, read_missing_file_throws) {
  EXPECT_THROW(read_csv("/nonexistent/file.csv"), error);
}

TEST(ascii_table, renders_aligned_columns) {
  ascii_table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta-long", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| beta-long | 22    |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2U);
}

TEST(ascii_table, rejects_mismatched_rows) {
  ascii_table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), error);
}

TEST(histogram, counts_and_densities) {
  histogram h(0.0, 1.0, 4);
  h.add_all({0.1, 0.1, 0.4, 0.6, 0.9});
  EXPECT_EQ(h.total(), 5U);
  EXPECT_EQ(h.counts()[0], 2U);
  EXPECT_EQ(h.counts()[1], 1U);
  EXPECT_EQ(h.counts()[2], 1U);
  EXPECT_EQ(h.counts()[3], 1U);
  // Densities integrate to 1.
  const auto d = h.densities();
  double integral = 0.0;
  for (const double v : d) integral += v * 0.25;
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(histogram, clamps_out_of_range_values) {
  histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_EQ(h.counts()[0], 1U);
  EXPECT_EQ(h.counts()[1], 1U);
}

TEST(histogram, overlap_coefficient_extremes) {
  histogram a(0.0, 1.0, 10);
  histogram b(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) {
    a.add(0.05);  // all mass in bin 0
    b.add(0.95);  // all mass in bin 9
  }
  EXPECT_NEAR(histogram::overlap_coefficient(a, b), 0.0, 1e-9);
  EXPECT_NEAR(histogram::overlap_coefficient(a, a), 1.0, 1e-9);
}

TEST(histogram, overlap_requires_same_binning) {
  histogram a(0.0, 1.0, 10);
  histogram b(0.0, 1.0, 5);
  EXPECT_THROW(histogram::overlap_coefficient(a, b), error);
}

TEST(hash, fnv1a_is_stable_and_sensitive) {
  EXPECT_EQ(fnv1a64("abc"), fnv1a64("abc"));
  EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
  EXPECT_NE(fnv1a64(""), fnv1a64("a"));
  EXPECT_EQ(hash_hex(fnv1a64("abc")).size(), 16U);
}

TEST(artifact_cache, find_put_evict_cycle) {
  const std::string dir = temp_path("appeal_cache_test");
  std::filesystem::remove_all(dir);
  artifact_cache cache(dir);

  EXPECT_FALSE(cache.find("key-1").has_value());
  const std::string path = cache.prepare_write("key-1");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("artifact", f);
    std::fclose(f);
  }
  ASSERT_TRUE(cache.find("key-1").has_value());
  EXPECT_EQ(*cache.find("key-1"), path);
  EXPECT_TRUE(cache.evict("key-1"));
  EXPECT_FALSE(cache.find("key-1").has_value());
  EXPECT_FALSE(cache.evict("key-1"));
  std::filesystem::remove_all(dir);
}

TEST(artifact_cache, distinct_keys_distinct_paths) {
  artifact_cache cache("/tmp/whatever");
  EXPECT_NE(cache.path_for("a"), cache.path_for("b"));
}

}  // namespace
