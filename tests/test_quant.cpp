// Tests for the int8 edge quantization subsystem (src/quant): quantized
// layer correctness against integer references and the float layers they
// replace, the two-head graph rewrite, δ recalibration, the bit-width
// autotuner's budget contract, and — end to end — that an int8 edge
// deployment served through the engine stays within the autotuner's
// accuracy budget of the fp32 deployment.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/joint_trainer.hpp"
#include "core/threshold.hpp"
#include "core/two_head_network.hpp"
#include "data/dataset.hpp"
#include "data/presets.hpp"
#include "nn/linear.hpp"
#include "nn/quantization.hpp"
#include "quant/autotune.hpp"
#include "quant/qlayers.hpp"
#include "quant/quantize.hpp"
#include "quant/recalibrate.hpp"
#include "serve/server.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;

core::two_head_config tiny_mobilenet_config(std::uint64_t seed = 0x5EED) {
  core::two_head_config cfg;
  cfg.spec.family = models::model_family::mobilenet;
  cfg.spec.image_size = 16;
  cfg.spec.num_classes = 10;
  cfg.init_seed = seed;
  return cfg;
}

tensor random_images(std::size_t n, appeal::util::rng& gen) {
  return tensor::rand_uniform(shape{n, 3, 16, 16}, gen, -1.0F, 1.0F);
}

}  // namespace

TEST(quant, qlinear_matches_integer_reference) {
  // Hand-built layer: y = W x + b through the real s8/u8 pipeline must
  // equal the same arithmetic done longhand in exact integers.
  const std::size_t in = 7;
  const std::size_t out = 3;
  nn::linear source(in, out, /*bias=*/true);
  appeal::util::rng gen(11);
  source.weight().value = tensor::rand_uniform(shape{out, in}, gen, -0.9F, 0.9F);
  source.bias().value = tensor::rand_uniform(shape{out}, gen, -0.5F, 0.5F);

  quant::qlayer_params params;
  params.weight_bits = 8;
  params.act.scale = 0.02F;
  params.act.zero_point = 128;
  params.act.bits = 8;
  params.act.symmetric = false;
  quant::qlinear q(source, params);

  const std::size_t n = 5;
  tensor x = tensor::rand_uniform(shape{n, in}, gen, -1.0F, 1.0F);
  const tensor y = q.forward(x, /*training=*/false);
  ASSERT_EQ(y.dims(), (shape{n, out}));

  // Longhand reference mirroring the deployed arithmetic bit for bit:
  // per-row symmetric weight grid from choose_quant_params, activations
  // rounded half away from zero in float (ops::quantize_u8's rule).
  const float act_inv = 1.0F / params.act.scale;
  for (std::size_t r = 0; r < out; ++r) {
    const float* wrow = source.weight().value.data() + r * in;
    const nn::quant_params wp = nn::choose_quant_params(
        std::span<const float>(wrow, in), 8, /*symmetric=*/true);
    const float w_inv = 1.0F / wp.scale;
    for (std::size_t s = 0; s < n; ++s) {
      std::int64_t acc = 0;
      std::int64_t row_sum = 0;
      for (std::size_t i = 0; i < in; ++i) {
        const auto wq = static_cast<std::int64_t>(std::clamp<std::int32_t>(
            static_cast<std::int32_t>(std::lround(wrow[i] * w_inv)),
            wp.q_min(), wp.q_max()));
        const float scaled = x[s * in + i] * act_inv;
        const float rounded = scaled >= 0.0F ? scaled + 0.5F : scaled - 0.5F;
        const std::int64_t xq = std::clamp<std::int64_t>(
            static_cast<std::int32_t>(rounded) + params.act.zero_point, 0,
            255);
        acc += wq * xq;
        row_sum += wq;
      }
      const float expected =
          wp.scale * params.act.scale *
              static_cast<float>(acc - params.act.zero_point * row_sum) +
          source.bias().value[r];
      EXPECT_NEAR(y[s * out + r], expected, 1e-4F)
          << "sample " << s << " output " << r;
    }
  }
}

TEST(quant, qconv2d_tracks_float_conv) {
  nn::conv2d source(8, 16, 3, /*stride=*/1, /*padding=*/1, /*groups=*/1,
                    /*bias=*/true);
  appeal::util::rng gen(13);
  for (nn::parameter* p : source.parameters()) {
    p->value = tensor::rand_uniform(p->value.dims(), gen, -0.5F, 0.5F);
  }
  tensor x = tensor::rand_uniform(shape{2, 8, 10, 10}, gen, -1.0F, 1.0F);
  const tensor reference = source.forward(x, /*training=*/false);

  quant::qlayer_params params;
  params.weight_bits = 8;
  const float span[2] = {-1.0F, 1.0F};
  params.act = nn::choose_quant_params(std::span<const float>(span, 2), 8,
                                       /*symmetric=*/false);
  quant::qconv2d q(source, params);
  const tensor quantized = q.forward(x, /*training=*/false);

  ASSERT_EQ(quantized.dims(), reference.dims());
  EXPECT_EQ(q.weight_bits(), 8);
  EXPECT_GT(q.weight_rmse(), 0.0);
  // 8-bit grids on [-1, 1] inputs: per-element error stays a small
  // multiple of the activation step (~0.0078).
  EXPECT_LT(ops::max_abs_diff(quantized, reference), 0.1F);
  EXPECT_EQ(q.output_shape(x.dims()), reference.dims());
}

TEST(quant, quantize_two_head_rewrites_dense_layers_only) {
  core::two_head_network fp32_net(tiny_mobilenet_config());
  core::two_head_network q_net(tiny_mobilenet_config());
  appeal::util::rng gen(17);
  const tensor calibration = random_images(32, gen);
  const tensor probe = random_images(16, gen);

  fp32_net.prepare_for_inference();
  const core::two_head_output ref = fp32_net.forward(probe, false);

  const std::size_t candidates = quant::count_quantizable_layers(q_net);
  const quant::quant_report report =
      quant::quantize_two_head(q_net, calibration);
  EXPECT_EQ(report.layers.size(), candidates);
  EXPECT_EQ(report.quantized, candidates);
  EXPECT_GT(report.quantized, 0U);
  EXPECT_GT(report.skipped, 0U);  // MobileNet's depthwise convs stay float
  EXPECT_EQ(report.min_bits(), 8);
  for (std::size_t i = 0; i < report.layers.size(); ++i) {
    EXPECT_EQ(report.layers[i].index, i);
    EXPECT_GE(report.layers[i].weight_rmse, 0.0);
    EXPECT_GT(report.layers[i].weight_count, 0U);
  }

  const core::two_head_output out = q_net.forward(probe, false);
  ASSERT_EQ(out.logits.dims(), ref.logits.dims());
  ASSERT_EQ(out.q.size(), ref.q.size());
  // Same network, int8 arithmetic: logits and appeal scores track fp32.
  double q_drift = 0.0;
  for (std::size_t i = 0; i < out.q.size(); ++i) {
    q_drift += std::abs(static_cast<double>(out.q[i]) -
                        static_cast<double>(ref.q[i]));
  }
  EXPECT_LT(q_drift / static_cast<double>(out.q.size()), 0.05);
  EXPECT_LT(ops::max_abs_diff(out.logits, ref.logits), 1.0F);
}

TEST(quant, quantize_twice_throws) {
  core::two_head_network net(tiny_mobilenet_config());
  appeal::util::rng gen(19);
  const tensor calibration = random_images(8, gen);
  quant::quantize_two_head(net, calibration);
  EXPECT_THROW(quant::quantize_two_head(net, calibration), appeal::util::error);
}

TEST(quant, bits_vector_is_validated) {
  appeal::util::rng gen(23);
  const tensor calibration = random_images(8, gen);
  {
    core::two_head_network net(tiny_mobilenet_config());
    const std::vector<int> wrong_size(1, 8);
    EXPECT_THROW(quant::quantize_two_head(net, calibration, wrong_size),
                 appeal::util::error);
  }
  {
    core::two_head_network net(tiny_mobilenet_config());
    std::vector<int> out_of_range(quant::count_quantizable_layers(net), 8);
    out_of_range.front() = 1;  // below the 2-bit floor
    EXPECT_THROW(quant::quantize_two_head(net, calibration, out_of_range),
                 appeal::util::error);
  }
}

TEST(quant, per_layer_bits_are_deployed_and_reported) {
  core::two_head_network net(tiny_mobilenet_config());
  appeal::util::rng gen(29);
  const tensor calibration = random_images(16, gen);
  std::vector<int> bits(quant::count_quantizable_layers(net), 8);
  ASSERT_GE(bits.size(), 2U);
  bits[0] = 4;
  bits[1] = 6;
  const quant::quant_report report =
      quant::quantize_two_head(net, calibration, bits);
  EXPECT_EQ(report.layers[0].bits, 4);
  EXPECT_EQ(report.layers[1].bits, 6);
  EXPECT_EQ(report.min_bits(), 4);
  // Narrower grids distort more: the 4-bit layer's RMSE must exceed what
  // an 8-bit grid on the same tensor would produce.
  core::two_head_network net8(tiny_mobilenet_config());
  const quant::quant_report report8 =
      quant::quantize_two_head(net8, calibration);
  EXPECT_GT(report.layers[0].weight_rmse, report8.layers[0].weight_rmse);
  quant::publish_edge_bits(report, "test-deployment");
}

TEST(quant, recalibrate_hits_target_skip_rate) {
  core::two_head_network net(tiny_mobilenet_config());
  appeal::util::rng gen(31);
  const tensor calibration = random_images(128, gen);
  quant::quantize_two_head(net, calibration);
  const quant::recalibration recal =
      quant::quant_recalibrate(net, calibration, 0.75);
  // 128 distinct scores: the achievable grid is 1/128 ≈ 0.008 apart.
  EXPECT_NEAR(recal.skip_rate, 0.75, 0.02);
  EXPECT_GT(recal.delta, 0.0);
  EXPECT_LT(recal.delta, 1.0);
  EXPECT_GT(recal.mean_score, 0.0);
  EXPECT_LT(recal.mean_score, 1.0);
}

TEST(quant, autotune_respects_accuracy_budget) {
  const core::two_head_config cfg = tiny_mobilenet_config(0xAB);
  appeal::util::rng gen(37);
  const tensor calibration = random_images(64, gen);
  std::vector<std::size_t> labels(64);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i % 10;

  quant::autotune_config tune;
  tune.candidate_bits = {6, 4};
  tune.accuracy_budget = 0.01;
  tune.target_skip_rate = 0.7;
  const quant::autotune_result result = quant::autotune_bit_widths(
      [&cfg] { return std::make_unique<core::two_head_network>(cfg); },
      calibration, labels, tune);

  ASSERT_NE(result.net, nullptr);
  EXPECT_EQ(result.bits.size(), result.report.layers.size());
  for (int b : result.bits) {
    EXPECT_TRUE(b == 8 || b == 6 || b == 4) << "unexpected bit-width " << b;
  }
  EXPECT_EQ(result.report.min_bits(),
            *std::min_element(result.bits.begin(), result.bits.end()));
  EXPECT_GE(result.trials, 1U);
  // The contract under test: any lowering below the 8-bit floor kept the
  // collaborative accuracy within the budget of the fp32 reference.
  if (result.lowered > 0) {
    EXPECT_LE(result.fp32_accuracy - result.quant_accuracy,
              tune.accuracy_budget + 1e-12);
  }
  // The accepted network serves: one forward at the recalibrated δ.
  const core::two_head_output out =
      result.net->forward(random_images(4, gen), false);
  EXPECT_EQ(out.q.size(), 4U);
}

// Engine-level acceptance: the int8 edge deployment, served through the
// real engine (queue -> batcher -> edge worker -> δ routing -> oracle
// cloud), stays within the autotuner's default accuracy budget of the
// fp32 deployment at the same target skipping rate. The little network is
// briefly trained so predictions and scores are meaningful rather than
// argmax noise over an untrained head.
TEST(quant, served_int8_accuracy_within_budget_of_fp32) {
  const data::dataset_bundle bundle =
      data::make_small_bundle(data::preset::cifar10_like, 7);
  core::two_head_config cfg;
  cfg.spec.family = models::model_family::mobilenet;
  cfg.spec.image_size = bundle.train->config().image_size;
  cfg.spec.num_classes = bundle.train->num_classes();
  cfg.init_seed = 0x10;

  core::two_head_network trained(cfg);
  core::trainer_config pretrain;
  pretrain.epochs = 2;
  pretrain.seed = 41;
  core::pretrain_two_head(trained, *bundle.train, nullptr, pretrain);
  core::trainer_config joint;
  joint.epochs = 2;
  joint.seed = 43;
  core::joint_loss_config loss;
  loss.black_box = true;
  core::train_joint(trained, *bundle.train, nullptr, {}, joint, loss);

  std::vector<tensor> snapshot;
  for (const nn::named_tensor& nt : trained.state()) {
    snapshot.push_back(*nt.value);
  }
  const auto make_trained = [&cfg, &snapshot] {
    auto net = std::make_unique<core::two_head_network>(cfg);
    std::vector<nn::named_tensor> state = net->state();
    for (std::size_t i = 0; i < state.size(); ++i) *state[i].value = snapshot[i];
    return net;
  };

  const data::batch calib = data::make_full_batch(*bundle.val);
  const double target_sr = 0.7;

  // δ per precision, tuned on the validation split's own scores — the
  // recalibration step an int8 deployment must run.
  const auto serve_accuracy = [&](std::unique_ptr<core::two_head_network> net,
                                  const char* name) {
    const quant::scored_pass pass = quant::run_scored(*net, calib.images);
    const double delta =
        core::delta_for_skipping_rate(pass.scores, target_sr);

    serve::deployment_config dep;
    dep.shards = 1;
    dep.shard.num_workers = 1;  // network backends are single-threaded
    dep.shard.stats.deployment = name;
    dep.shard.threshold.adapt = serve::threshold_config::mode::fixed;
    dep.shard.threshold.initial_delta = delta;
    serve::server srv;
    core::two_head_network& net_ref = *net;
    srv.register_deployment(
        name, dep,
        [&net_ref](std::size_t, std::size_t) {
          return std::make_unique<serve::network_edge_backend>(
              net_ref, core::score_method::appealnet_q);
        },
        [] { return std::make_unique<serve::oracle_cloud_backend>(); });
    for (std::size_t i = 0; i < bundle.test->size(); ++i) {
      const data::sample& s = bundle.test->get(i);
      serve::inference_request req;
      req.model = name;
      req.key = i;
      req.label = s.label;
      req.input = s.image;
      srv.submit(std::move(req));
    }
    srv.drain();
    const serve::stats_snapshot snap = srv.at(name).snapshot();
    EXPECT_EQ(snap.completed, bundle.test->size());
    return snap.online_accuracy;
  };

  std::unique_ptr<core::two_head_network> fp32_net = make_trained();
  fp32_net->prepare_for_inference();
  const double fp32_accuracy = serve_accuracy(std::move(fp32_net), "fp32");

  std::unique_ptr<core::two_head_network> int8_net = make_trained();
  quant::quantize_two_head(*int8_net, calib.images);
  const double int8_accuracy = serve_accuracy(std::move(int8_net), "int8");

  const double budget = quant::autotune_config{}.accuracy_budget;
  EXPECT_GE(int8_accuracy, fp32_accuracy - budget)
      << "int8 served accuracy " << int8_accuracy << " vs fp32 "
      << fp32_accuracy;
}
