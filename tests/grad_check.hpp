// Finite-difference gradient checking for layers.
//
// For a layer f and a fixed random cotangent c, define the scalar loss
// L(x) = sum_i c_i * f(x)_i. The analytic input gradient is backward(c);
// parameter gradients accumulate into each parameter's grad buffer. Both
// are compared against central finite differences. Tolerances are float32-
// realistic: the check uses relative error against the gradient magnitude.
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace appeal::testing {

struct grad_check_options {
  float epsilon = 1e-2F;        // central-difference step
  float tolerance = 2e-2F;      // max allowed |analytic - numeric| / scale
  std::size_t max_probes = 48;  // elements probed per tensor (sampled)
  bool training = true;         // forward mode used for the check
};

/// Scalar loss L(x) = sum(c * f(x)).
inline double cotangent_loss(nn::layer& layer, const tensor& input,
                             const tensor& cotangent, bool training) {
  const tensor out = layer.forward(input, training);
  double total = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    total += static_cast<double>(out[i]) * cotangent[i];
  }
  return total;
}

/// Checks dL/d(input) and every dL/d(parameter) by central differences.
/// `gen` supplies the cotangent and probe sampling.
inline void check_layer_gradients(nn::layer& layer, tensor input,
                                  util::rng& gen,
                                  const grad_check_options& opts = {}) {
  // Build a fixed cotangent over the output.
  const tensor probe_out = layer.forward(input, opts.training);
  tensor cotangent = tensor::randn(probe_out.dims(), gen, 0.0F, 1.0F);

  // Analytic gradients: fresh forward, then backward(c).
  for (nn::parameter* p : layer.parameters()) p->zero_grad();
  layer.forward(input, opts.training);
  const tensor analytic_input_grad = layer.backward(cotangent);
  ASSERT_EQ(analytic_input_grad.dims().dims(), input.dims().dims());

  // Capture parameter grads now (backward accumulates).
  std::vector<tensor> analytic_param_grads;
  for (nn::parameter* p : layer.parameters()) {
    analytic_param_grads.push_back(p->grad);
  }

  const auto probe_tensor = [&](tensor& target, const tensor& analytic,
                                const char* what) {
    const std::size_t n = target.size();
    const std::size_t probes = std::min<std::size_t>(opts.max_probes, n);
    // Scale for relative comparison: typical gradient magnitude.
    double scale = 1e-3;
    for (std::size_t i = 0; i < analytic.size(); ++i) {
      scale = std::max(scale, static_cast<double>(std::fabs(analytic[i])));
    }
    const auto numeric_at = [&](std::size_t idx, float epsilon) {
      const float saved = target[idx];
      target[idx] = saved + epsilon;
      const double plus = cotangent_loss(layer, input, cotangent,
                                         opts.training);
      target[idx] = saved - epsilon;
      const double minus = cotangent_loss(layer, input, cotangent,
                                          opts.training);
      target[idx] = saved;
      return (plus - minus) / (2.0 * static_cast<double>(epsilon));
    };
    for (std::size_t probe = 0; probe < probes; ++probe) {
      const std::size_t idx =
          n <= opts.max_probes
              ? probe
              : static_cast<std::size_t>(gen.uniform_index(n));
      // ReLU-family kinks: a pre-activation crossing zero inside the probe
      // interval adds an fd error of O(|cotangent|/2) regardless of epsilon,
      // while the crossing probability shrinks linearly with epsilon. On
      // mismatch, retry with smaller steps; a true analytic-gradient bug
      // fails at every step size.
      double best_diff = std::numeric_limits<double>::infinity();
      double numeric = 0.0;
      for (const float epsilon :
           {opts.epsilon, opts.epsilon / 8.0F, opts.epsilon / 64.0F}) {
        const double candidate = numeric_at(idx, epsilon);
        const double diff =
            std::fabs(candidate - static_cast<double>(analytic[idx]));
        if (diff < best_diff) {
          best_diff = diff;
          numeric = candidate;
        }
        if (best_diff <= opts.tolerance * scale + 1e-4) break;
      }
      EXPECT_LE(best_diff, opts.tolerance * scale + 1e-4)
          << what << " gradient mismatch at flat index " << idx
          << ": analytic=" << analytic[idx] << " numeric=" << numeric;
    }
  };

  probe_tensor(input, analytic_input_grad, "input");
  const auto params = layer.parameters();
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    probe_tensor(params[pi]->value, analytic_param_grads[pi],
                 params[pi]->name.c_str());
  }
}

}  // namespace appeal::testing
