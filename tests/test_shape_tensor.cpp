// Tests for shape algebra and the dense tensor type.
#include <gtest/gtest.h>

#include "tensor/tensor.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using appeal::shape;
using appeal::tensor;

TEST(shape, basic_properties) {
  const shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3U);
  EXPECT_EQ(s.dim(0), 2U);
  EXPECT_EQ(s.dim(2), 4U);
  EXPECT_EQ(s.element_count(), 24U);
  EXPECT_EQ(s.to_string(), "[2, 3, 4]");
}

TEST(shape, empty_shape_is_scalar_like) {
  const shape s;
  EXPECT_EQ(s.rank(), 0U);
  EXPECT_EQ(s.element_count(), 1U);
}

TEST(shape, zero_dimension_gives_zero_elements) {
  const shape s{3, 0, 5};
  EXPECT_EQ(s.element_count(), 0U);
}

TEST(shape, strides_are_row_major) {
  const shape s{2, 3, 4};
  EXPECT_EQ(s.strides(), (std::vector<std::size_t>{12, 4, 1}));
}

TEST(shape, flat_index_matches_strides) {
  const shape s{2, 3, 4};
  EXPECT_EQ(s.flat_index({0, 0, 0}), 0U);
  EXPECT_EQ(s.flat_index({1, 2, 3}), 23U);
  EXPECT_EQ(s.flat_index({1, 0, 2}), 14U);
}

TEST(shape, flat_index_bounds_checked) {
  const shape s{2, 3};
  EXPECT_THROW(s.flat_index({2, 0}), appeal::util::error);
  EXPECT_THROW(s.flat_index({0}), appeal::util::error);
}

TEST(shape, nchw_accessors) {
  const shape s{8, 3, 16, 16};
  EXPECT_EQ(s.batch(), 8U);
  EXPECT_EQ(s.channels(), 3U);
  EXPECT_EQ(s.height(), 16U);
  EXPECT_EQ(s.width(), 16U);
  EXPECT_THROW(shape({2, 3}).batch(), appeal::util::error);
}

TEST(shape, equality) {
  EXPECT_EQ(shape({1, 2}), shape({1, 2}));
  EXPECT_NE(shape({1, 2}), shape({2, 1}));
  EXPECT_NE(shape({1, 2}), shape({1, 2, 1}));
}

TEST(tensor, zero_initialized_by_default) {
  const tensor t(shape{2, 2});
  for (const float v : t.values()) EXPECT_EQ(v, 0.0F);
}

TEST(tensor, fill_constructor_and_method) {
  tensor t(shape{3}, 2.5F);
  for (const float v : t.values()) EXPECT_EQ(v, 2.5F);
  t.fill(-1.0F);
  for (const float v : t.values()) EXPECT_EQ(v, -1.0F);
}

TEST(tensor, from_values_validates_size) {
  EXPECT_NO_THROW(tensor::from_values(shape{2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(tensor::from_values(shape{2, 2}, {1, 2, 3}),
               appeal::util::error);
}

TEST(tensor, multi_index_access) {
  tensor t(shape{2, 3});
  t.at({1, 2}) = 7.0F;
  EXPECT_EQ(t.at({1, 2}), 7.0F);
  EXPECT_EQ(t[5], 7.0F);
  EXPECT_THROW(t.at({2, 0}), appeal::util::error);
  EXPECT_THROW(t.at(static_cast<std::size_t>(6)), appeal::util::error);
}

TEST(tensor, reshape_preserves_data) {
  tensor t = tensor::from_values(shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const tensor r = t.reshaped(shape{3, 2});
  EXPECT_EQ(r.dims(), shape({3, 2}));
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(r[i], t[i]);
  EXPECT_THROW(t.reshaped(shape{4, 2}), appeal::util::error);
}

TEST(tensor, randn_moments) {
  appeal::util::rng gen(3);
  const tensor t = tensor::randn(shape{10000}, gen, 1.0F, 2.0F);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const float v : t.values()) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  const double mean = sum / 10000.0;
  EXPECT_NEAR(mean, 1.0, 0.08);
  EXPECT_NEAR(sum_sq / 10000.0 - mean * mean, 4.0, 0.25);
}

TEST(tensor, rand_uniform_bounds) {
  appeal::util::rng gen(5);
  const tensor t = tensor::rand_uniform(shape{1000}, gen, -1.0F, 1.0F);
  for (const float v : t.values()) {
    ASSERT_GE(v, -1.0F);
    ASSERT_LT(v, 1.0F);
  }
}

TEST(tensor, has_non_finite_detects_nan_and_inf) {
  tensor t(shape{3});
  EXPECT_FALSE(t.has_non_finite());
  t[1] = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(t.has_non_finite());
  t[1] = 0.0F;
  t[2] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(t.has_non_finite());
}

/// Property sweep: flat_index and strides agree for every coordinate of a
/// variety of shapes.
class shape_index_property
    : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(shape_index_property, flat_index_equals_stride_dot_product) {
  const shape s(GetParam());
  const auto strides = s.strides();
  std::vector<std::size_t> index(s.rank(), 0);
  for (std::size_t flat = 0; flat < s.element_count(); ++flat) {
    std::size_t expected = 0;
    for (std::size_t d = 0; d < s.rank(); ++d) expected += index[d] * strides[d];
    ASSERT_EQ(s.flat_index(index), expected);
    ASSERT_EQ(expected, flat);
    // Increment the multi-index (row-major order).
    for (std::size_t d = s.rank(); d-- > 0;) {
      if (++index[d] < s.dim(d)) break;
      index[d] = 0;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    shapes, shape_index_property,
    ::testing::Values(std::vector<std::size_t>{7},
                      std::vector<std::size_t>{3, 5},
                      std::vector<std::size_t>{2, 3, 4},
                      std::vector<std::size_t>{2, 1, 3, 2},
                      std::vector<std::size_t>{1, 1, 1}));

}  // namespace
