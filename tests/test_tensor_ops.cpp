// Tests for elementwise/reduction tensor operations.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using appeal::shape;
using appeal::tensor;
namespace ops = appeal::ops;

TEST(tensor_ops, add_subtract_multiply) {
  const tensor a = tensor::from_values(shape{2, 2}, {1, 2, 3, 4});
  const tensor b = tensor::from_values(shape{2, 2}, {10, 20, 30, 40});
  const tensor sum = ops::add(a, b);
  const tensor diff = ops::subtract(b, a);
  const tensor prod = ops::multiply(a, b);
  EXPECT_EQ(sum[3], 44.0F);
  EXPECT_EQ(diff[0], 9.0F);
  EXPECT_EQ(prod[2], 90.0F);
}

TEST(tensor_ops, shape_mismatch_throws) {
  const tensor a(shape{2, 2});
  const tensor b(shape{4});
  EXPECT_THROW(ops::add(a, b), appeal::util::error);
  EXPECT_THROW(ops::multiply(a, b), appeal::util::error);
  EXPECT_THROW(ops::max_abs_diff(a, b), appeal::util::error);
}

TEST(tensor_ops, axpy_and_scale) {
  tensor a = tensor::from_values(shape{3}, {1, 2, 3});
  const tensor b = tensor::from_values(shape{3}, {10, 10, 10});
  ops::axpy(a, 0.5F, b);
  EXPECT_EQ(a[0], 6.0F);
  ops::scale_inplace(a, 2.0F);
  EXPECT_EQ(a[0], 12.0F);
  EXPECT_EQ(ops::scale(b, -1.0F)[1], -10.0F);
}

TEST(tensor_ops, reductions) {
  const tensor a = tensor::from_values(shape{4}, {1, -2, 3, 6});
  EXPECT_DOUBLE_EQ(ops::sum(a), 8.0);
  EXPECT_DOUBLE_EQ(ops::mean(a), 2.0);
  EXPECT_EQ(ops::max_value(a), 6.0F);
  EXPECT_EQ(ops::argmax(a), 3U);
  EXPECT_NEAR(ops::l2_norm(a), std::sqrt(1.0 + 4.0 + 9.0 + 36.0), 1e-6);
}

TEST(tensor_ops, argmax_rows) {
  const tensor m = tensor::from_values(shape{2, 3}, {1, 5, 2, 9, 0, 3});
  const auto rows = ops::argmax_rows(m);
  EXPECT_EQ(rows, (std::vector<std::size_t>{1, 0}));
}

TEST(tensor_ops, softmax_rows_sum_to_one_and_order_preserved) {
  appeal::util::rng gen(3);
  const tensor logits = tensor::randn(shape{5, 7}, gen, 0.0F, 3.0F);
  const tensor probs = ops::softmax_rows(logits);
  for (std::size_t r = 0; r < 5; ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < 7; ++c) total += probs[r * 7 + c];
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
  EXPECT_EQ(ops::argmax_rows(probs), ops::argmax_rows(logits));
}

TEST(tensor_ops, softmax_is_shift_invariant_and_stable) {
  const tensor a = tensor::from_values(shape{1, 3}, {1000.0F, 1001.0F, 999.0F});
  const tensor probs = ops::softmax_rows(a);
  EXPECT_FALSE(probs.has_non_finite());
  const tensor b = tensor::from_values(shape{1, 3}, {0.0F, 1.0F, -1.0F});
  const tensor probs_b = ops::softmax_rows(b);
  EXPECT_NEAR(ops::max_abs_diff(probs, probs_b), 0.0F, 1e-5F);
}

TEST(tensor_ops, log_softmax_matches_log_of_softmax) {
  appeal::util::rng gen(7);
  const tensor logits = tensor::randn(shape{4, 6}, gen, 0.0F, 2.0F);
  const tensor probs = ops::softmax_rows(logits);
  const tensor log_probs = ops::log_softmax_rows(logits);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    EXPECT_NEAR(log_probs[i], std::log(probs[i]), 1e-4);
  }
}

TEST(tensor_ops, sigmoid_range_and_symmetry) {
  const tensor x = tensor::from_values(shape{3}, {-100.0F, 0.0F, 100.0F});
  const tensor s = ops::sigmoid(x);
  EXPECT_NEAR(s[0], 0.0F, 1e-6F);
  EXPECT_NEAR(s[1], 0.5F, 1e-6F);
  EXPECT_NEAR(s[2], 1.0F, 1e-6F);
}

TEST(tensor_ops, clamp_inplace) {
  tensor x = tensor::from_values(shape{4}, {-2, 0.5F, 3, 10});
  ops::clamp_inplace(x, 0.0F, 1.0F);
  EXPECT_EQ(x[0], 0.0F);
  EXPECT_EQ(x[1], 0.5F);
  EXPECT_EQ(x[2], 1.0F);
  EXPECT_THROW(ops::clamp_inplace(x, 1.0F, 0.0F), appeal::util::error);
}

TEST(tensor_ops, transpose_involution) {
  appeal::util::rng gen(11);
  const tensor m = tensor::randn(shape{3, 5}, gen);
  const tensor t = ops::transpose(m);
  EXPECT_EQ(t.dims(), shape({5, 3}));
  EXPECT_EQ(t.at({4, 2}), m.at({2, 4}));
  const tensor back = ops::transpose(t);
  EXPECT_EQ(ops::max_abs_diff(back, m), 0.0F);
}

TEST(tensor_ops, empty_checks) {
  const tensor empty(shape{0});
  EXPECT_THROW(ops::max_value(empty), appeal::util::error);
  EXPECT_THROW(ops::argmax(empty), appeal::util::error);
  EXPECT_DOUBLE_EQ(ops::mean(empty), 0.0);
}

}  // namespace
