// Tests for online δ adaptation: convergence of the tracked skipping rate
// to a target on synthetic score streams, latency-SLO inversion, and the
// fixed mode staying put.
#include <gtest/gtest.h>

#include <vector>

#include "collab/cost_model.hpp"
#include "metrics/metrics.hpp"
#include "serve/threshold_controller.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;

/// Streams batches of uniform scores through the controller and returns
/// the achieved skipping rate over the second half of the stream (after
/// the controller has had time to converge).
double steady_state_sr(serve::threshold_controller& controller,
                       std::uint64_t seed, std::size_t batches,
                       std::size_t batch_size) {
  util::rng gen(seed);
  std::size_t kept = 0;
  std::size_t seen = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    std::vector<double> scores(batch_size);
    for (auto& s : scores) s = gen.uniform();
    const double delta = controller.delta();
    std::size_t skipped = 0;
    for (const double s : scores) {
      if (s >= delta) ++skipped;
    }
    if (b >= batches / 2) {
      kept += skipped;
      seen += batch_size;
    }
    controller.observe(scores, skipped);
  }
  return static_cast<double>(kept) / static_cast<double>(seen);
}

/// Parameterized over target skipping rates.
class controller_targets : public ::testing::TestWithParam<double> {};

TEST_P(controller_targets, converges_to_target_sr) {
  const double target = GetParam();
  serve::threshold_config cfg;
  cfg.adapt = serve::threshold_config::mode::track_sr;
  cfg.target_sr = target;
  cfg.initial_delta = 0.5;  // deliberately wrong for most targets
  cfg.window = 2048;
  cfg.recalibrate_every = 128;
  serve::threshold_controller controller(cfg);

  const double achieved = steady_state_sr(controller, 17, 200, 32);
  EXPECT_NEAR(achieved, target, 0.02);
  EXPECT_NEAR(controller.observed_sr(), target, 0.05);
  EXPECT_GT(controller.recalibrations(), 0U);
}

INSTANTIATE_TEST_SUITE_P(rates, controller_targets,
                         ::testing::Values(0.5, 0.7, 0.9, 0.95));

TEST(threshold_controller, tracks_drifting_score_distribution) {
  // Scores shift from uniform [0,1] to uniform [0.5, 1]; a fixed δ would
  // drift to a much higher SR, the controller re-fits and holds the target.
  serve::threshold_config cfg;
  cfg.target_sr = 0.8;
  cfg.window = 1024;
  cfg.recalibrate_every = 128;
  serve::threshold_controller controller(cfg);

  util::rng gen(23);
  for (std::size_t b = 0; b < 150; ++b) {
    std::vector<double> scores(32);
    for (auto& s : scores) s = gen.uniform();
    std::size_t skipped = 0;
    for (const double s : scores) {
      if (s >= controller.delta()) ++skipped;
    }
    controller.observe(scores, skipped);
  }
  // Drifted phase.
  std::size_t kept = 0;
  std::size_t seen = 0;
  for (std::size_t b = 0; b < 300; ++b) {
    std::vector<double> scores(32);
    for (auto& s : scores) s = 0.5 + 0.5 * gen.uniform();
    const double delta = controller.delta();
    std::size_t skipped = 0;
    for (const double s : scores) {
      if (s >= delta) ++skipped;
    }
    if (b >= 150) {
      kept += skipped;
      seen += scores.size();
    }
    controller.observe(scores, skipped);
  }
  EXPECT_NEAR(static_cast<double>(kept) / static_cast<double>(seen), 0.8,
              0.03);
  // The refit δ must sit inside the drifted score support.
  EXPECT_GT(controller.delta(), 0.5);
}

TEST(threshold_controller, fixed_mode_never_moves_delta) {
  serve::threshold_config cfg;
  cfg.adapt = serve::threshold_config::mode::fixed;
  cfg.initial_delta = 0.42;
  serve::threshold_controller controller(cfg);

  util::rng gen(5);
  for (std::size_t b = 0; b < 50; ++b) {
    std::vector<double> scores(16);
    for (auto& s : scores) s = gen.uniform();
    controller.observe(scores, 8);
  }
  EXPECT_DOUBLE_EQ(controller.delta(), 0.42);
  EXPECT_EQ(controller.recalibrations(), 0U);
  EXPECT_NEAR(controller.observed_sr(), 0.5, 1e-9);  // EMA still tracks
}

TEST(threshold_controller, latency_slo_maps_to_target_sr) {
  collab::cost_model link;  // defaults: edge_ms = 1, offload_ms = 6.2
  const double edge_ms = link.overall_latency_ms(1.0);
  const double cloud_only_ms = link.overall_latency_ms(0.0);

  // SLO halfway between the extremes -> SR = 0.5, by linearity.
  const double mid = 0.5 * (edge_ms + cloud_only_ms);
  EXPECT_NEAR(serve::target_sr_for_latency_slo(link, mid), 0.5, 1e-9);
  // Looser than cloud-only -> no skipping needed.
  EXPECT_NEAR(serve::target_sr_for_latency_slo(link, cloud_only_ms + 1.0),
              0.0, 1e-9);
  // Tighter than edge-only -> clamp to keeping everything on the edge.
  EXPECT_NEAR(serve::target_sr_for_latency_slo(link, edge_ms * 0.5), 1.0,
              1e-9);

  serve::threshold_config cfg;
  cfg.adapt = serve::threshold_config::mode::latency_slo;
  cfg.latency_slo_ms = mid;
  serve::threshold_controller controller(cfg, &link);
  EXPECT_NEAR(controller.target_sr(), 0.5, 1e-9);

  // And the controller steers the stream toward that derived target.
  const double achieved = steady_state_sr(controller, 29, 200, 32);
  EXPECT_NEAR(achieved, 0.5, 0.02);
}

TEST(threshold_controller, latency_slo_backs_off_during_cloud_spike) {
  // The SLO inversion must not trust the cost model's offload term
  // forever: when measured appeal round trips spike (congested uplink,
  // overloaded cloud), the target SR climbs toward 1 — push work back
  // onto the edge — and relaxes again when the link recovers.
  collab::cost_model link;
  const double edge_ms = link.overall_latency_ms(1.0);
  const double cloud_only_ms = link.overall_latency_ms(0.0);
  const double offload_ms = cloud_only_ms - edge_ms;
  const double mid = 0.5 * (edge_ms + cloud_only_ms);

  serve::threshold_config cfg;
  cfg.adapt = serve::threshold_config::mode::latency_slo;
  cfg.latency_slo_ms = mid;
  cfg.ema_alpha = 0.2;
  serve::threshold_controller controller(cfg, &link);
  const double baseline = controller.target_sr();
  EXPECT_NEAR(baseline, 0.5, 1e-9);
  EXPECT_NEAR(controller.offload_estimate_ms(), offload_ms, 1e-9);

  // A 10x cloud-latency spike: the measured offload EMA overtakes the
  // model and the derived target SR backs off toward edge-only.
  for (int i = 0; i < 100; ++i) {
    controller.observe_cloud_ms(10.0 * offload_ms);
  }
  EXPECT_GT(controller.offload_estimate_ms(), 5.0 * offload_ms);
  EXPECT_GT(controller.target_sr(), 0.9);

  // Recovery: measurements return to the modeled cost and the target SR
  // relaxes back to the original inversion.
  for (int i = 0; i < 200; ++i) {
    controller.observe_cloud_ms(offload_ms);
  }
  EXPECT_NEAR(controller.target_sr(), baseline, 0.02);
  EXPECT_NEAR(controller.offload_estimate_ms(), offload_ms,
              0.05 * offload_ms);

  // Garbage measurements and other modes must not move the target.
  controller.observe_cloud_ms(0.0);
  controller.observe_cloud_ms(-5.0);
  EXPECT_NEAR(controller.target_sr(), baseline, 0.02);
  serve::threshold_config fixed;
  fixed.adapt = serve::threshold_config::mode::fixed;
  serve::threshold_controller still(fixed);
  still.observe_cloud_ms(1e6);
  EXPECT_DOUBLE_EQ(still.target_sr(), fixed.target_sr);
}

TEST(threshold_controller, invalid_configs_throw) {
  serve::threshold_config cfg;
  cfg.window = 0;
  EXPECT_THROW(serve::threshold_controller{cfg}, util::error);

  serve::threshold_config slo;
  slo.adapt = serve::threshold_config::mode::latency_slo;
  EXPECT_THROW(serve::threshold_controller{slo}, util::error);  // no model

  serve::threshold_config bad_sr;
  bad_sr.target_sr = 1.5;
  EXPECT_THROW(serve::threshold_controller{bad_sr}, util::error);
}

}  // namespace
