// Tests for threshold (δ) tuning: target-SR quantiles, sweeps, AccI targets.
#include <gtest/gtest.h>

#include "core/threshold.hpp"
#include "metrics/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace appeal;

std::vector<double> random_scores(std::size_t n, std::uint64_t seed) {
  util::rng gen(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = gen.uniform();
  return out;
}

/// Parameterized over target skipping rates.
class delta_targets : public ::testing::TestWithParam<double> {};

TEST_P(delta_targets, achieves_requested_skipping_rate) {
  const double target = GetParam();
  const auto scores = random_scores(500, 7);
  const double delta = core::delta_for_skipping_rate(scores, target);
  const double achieved = metrics::skipping_rate(scores, delta);
  EXPECT_NEAR(achieved, target, 1.5 / 500.0);
}

INSTANTIATE_TEST_SUITE_P(rates, delta_targets,
                         ::testing::Values(0.0, 0.1, 0.5, 0.7, 0.9, 0.95,
                                           1.0));

TEST(delta_for_skipping_rate, handles_tied_scores) {
  const std::vector<double> scores{0.5, 0.5, 0.5, 0.9};
  // Requesting SR = 0.25 keeps only the 0.9 sample.
  const double delta = core::delta_for_skipping_rate(scores, 0.25);
  EXPECT_NEAR(metrics::skipping_rate(scores, delta), 0.25, 1e-9);
  // SR = 0.5 cannot be hit exactly (ties); implementation keeps all ties.
  const double delta_half = core::delta_for_skipping_rate(scores, 0.5);
  EXPECT_GE(metrics::skipping_rate(scores, delta_half), 0.5);
}

TEST(evaluate_at_delta, matches_collaborative_metric) {
  const std::vector<std::size_t> labels{0, 1, 0, 1};
  const std::vector<std::size_t> little{0, 0, 0, 0};  // right on 0 and 2
  const std::vector<std::size_t> big{0, 1, 0, 1};     // always right
  const std::vector<double> scores{0.9, 0.2, 0.8, 0.3};

  core::accuracy_context ctx;
  ctx.little_accuracy = 0.5;
  ctx.big_accuracy = 1.0;
  const core::operating_point point = core::evaluate_at_delta(
      little, big, labels, scores, 0.5, ctx);
  // δ = 0.5 keeps samples 0, 2 (little correct) and offloads 1, 3 (big
  // correct): overall accuracy 1.0, SR 0.5, AccI = (1 - 0.5)/(1 - 0.5) = 1.
  EXPECT_NEAR(point.skipping_rate, 0.5, 1e-9);
  EXPECT_NEAR(point.overall_accuracy, 1.0, 1e-9);
  EXPECT_NEAR(point.acc_improvement, 1.0, 1e-9);
}

TEST(sweep_thresholds, skipping_rate_is_monotone_and_covers_extremes) {
  util::rng gen(11);
  const std::size_t n = 200;
  std::vector<std::size_t> labels(n), little(n), big(n);
  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = i % 4;
    little[i] = gen.bernoulli(0.8) ? labels[i] : (labels[i] + 1) % 4;
    big[i] = gen.bernoulli(0.95) ? labels[i] : (labels[i] + 1) % 4;
    scores[i] = gen.uniform();
  }
  core::accuracy_context ctx;
  ctx.little_accuracy = 0.8;
  ctx.big_accuracy = 0.95;

  const auto sweep = core::sweep_thresholds(little, big, labels, scores, ctx);
  ASSERT_GE(sweep.size(), 2U);
  EXPECT_NEAR(sweep.front().skipping_rate, 0.0, 1e-9);
  EXPECT_NEAR(sweep.back().skipping_rate, 1.0, 1e-9);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].skipping_rate, sweep[i - 1].skipping_rate);
  }
}

TEST(cheapest_point_for_acci, picks_max_sr_meeting_target) {
  std::vector<core::operating_point> sweep(4);
  sweep[0] = {.delta = 0.9, .skipping_rate = 0.2, .overall_accuracy = 0.95,
              .acc_improvement = 0.95};
  sweep[1] = {.delta = 0.7, .skipping_rate = 0.5, .overall_accuracy = 0.92,
              .acc_improvement = 0.80};
  sweep[2] = {.delta = 0.5, .skipping_rate = 0.8, .overall_accuracy = 0.90,
              .acc_improvement = 0.60};
  sweep[3] = {.delta = 0.3, .skipping_rate = 0.95, .overall_accuracy = 0.86,
              .acc_improvement = 0.30};

  EXPECT_NEAR(core::cheapest_point_for_acci(sweep, 0.75).skipping_rate, 0.5,
              1e-9);
  EXPECT_NEAR(core::cheapest_point_for_acci(sweep, 0.9).skipping_rate, 0.2,
              1e-9);
  EXPECT_NEAR(core::cheapest_point_for_acci(sweep, 0.25).skipping_rate, 0.95,
              1e-9);
}

TEST(cheapest_point_for_acci, unreachable_target_falls_back_to_best) {
  std::vector<core::operating_point> sweep(2);
  sweep[0] = {.delta = 0.9, .skipping_rate = 0.2, .overall_accuracy = 0.9,
              .acc_improvement = 0.6};
  sweep[1] = {.delta = 0.3, .skipping_rate = 0.9, .overall_accuracy = 0.85,
              .acc_improvement = 0.3};
  const auto point = core::cheapest_point_for_acci(sweep, 0.99);
  EXPECT_NEAR(point.acc_improvement, 0.6, 1e-9);
}

TEST(threshold, empty_inputs_throw) {
  EXPECT_THROW(core::delta_for_skipping_rate({}, 0.5), util::error);
  EXPECT_THROW(core::delta_for_skipping_rate({0.5}, 1.5), util::error);
  EXPECT_THROW(core::cheapest_point_for_acci({}, 0.5), util::error);
}

/// Property: with an oracle score (scores = 1 for little-correct, 0
/// otherwise), the sweep contains a point with accuracy >= both standalone
/// models at an interior skipping rate.
TEST(threshold, oracle_scores_dominate_standalone_models) {
  util::rng gen(13);
  const std::size_t n = 400;
  std::vector<std::size_t> labels(n), little(n), big(n);
  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = i % 5;
    little[i] = gen.bernoulli(0.75) ? labels[i] : (labels[i] + 1) % 5;
    big[i] = gen.bernoulli(0.95) ? labels[i] : (labels[i] + 2) % 5;
    scores[i] = little[i] == labels[i] ? 1.0 : 0.0;
  }
  core::accuracy_context ctx;
  ctx.little_accuracy = metrics::accuracy(little, labels);
  ctx.big_accuracy = metrics::accuracy(big, labels);

  const auto point = core::evaluate_at_delta(little, big, labels, scores,
                                             0.5, ctx);
  EXPECT_GT(point.overall_accuracy, ctx.little_accuracy);
  EXPECT_GT(point.overall_accuracy, ctx.big_accuracy);  // accuracy boosting
}

}  // namespace
