// Post-training quantization of a two-head network onto the int8 kernels.
//
// quantize_two_head() is the deployment entry point for the quantized
// edge path (deployment_config::edge_precision = int8 | auto). It
// prepares the network (batchnorm folding + activation fusion), runs ONE
// calibration pass over sample images with lightweight range observers
// installed in front of every dense conv2d / linear, then rewrites each
// observed layer into quant::qconv2d / quant::qlinear at the requested
// per-layer bit-width. Depthwise and grouped convolutions stay float —
// their GEMMs are too thin for the int8 packing to win, and they are a
// tiny share of the MACs. The predictor (appeal) head also stays float:
// it is one tiny FC layer, and its score feeds the routing threshold, so
// it keeps full precision while still SEEING quantized features — the δ
// recalibration in quant/recalibrate.hpp accounts for that shift.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/two_head_network.hpp"

namespace appeal::quant {

/// One rewritten layer, in discovery order (extractor front-to-back, then
/// the approximator head). `index` is the autotuner's handle into
/// bits_per_layer.
struct layer_quant_info {
  std::size_t index = 0;
  std::string path;          // e.g. "extractor.4" or "approx_head.1"
  std::string kind;          // "qconv2d" | "qlinear"
  int bits = 8;
  double weight_rmse = 0.0;  // distortion at the deployed bit-width
  std::size_t weight_count = 0;
};

struct quant_report {
  std::vector<layer_quant_info> layers;
  std::size_t quantized = 0;  // layers running on the int8 kernel
  std::size_t skipped = 0;    // candidates left float (depthwise/grouped)
  /// Narrowest weight grid deployed — what the appeal_edge_bits gauge
  /// reports.
  int min_bits() const;
};

/// Quantizes `net` IN PLACE. `calibration` is a small representative
/// image batch [N, C, H, W] used to set the per-tensor activation grids.
/// `bits_per_layer` is aligned with discovery order (layer_quant_info::
/// index); empty means 8 bits everywhere. Idempotent preparation, but the
/// rewrite itself must run on a float network — quantizing twice throws.
quant_report quantize_two_head(core::two_head_network& net,
                               const tensor& calibration,
                               std::span<const int> bits_per_layer = {});

/// Number of quantizable layers in a network of this architecture —
/// the length of the autotuner's bit vector.
std::size_t count_quantizable_layers(core::two_head_network& net);

/// Publishes the deployed per-network bit-width to observability:
/// appeal_edge_bits{deployment=...} = min over layers (8 when the report
/// is empty / the edge runs fp32 the gauge is simply not set here).
void publish_edge_bits(const quant_report& report,
                       const std::string& deployment);

}  // namespace appeal::quant
