// Quantized inference layers — the int8 edge execution path.
//
// qconv2d and qlinear are deployment-time REPLACEMENTS for prepared
// (batchnorm-folded, activation-fused) nn::conv2d / nn::linear layers:
// weights are frozen to symmetric per-output-channel s8 grids at
// construction, activations quantize per-tensor to an asymmetric u8 grid
// calibrated from sample data, and the matrix product runs on the
// tensor/gemm_s8 kernel with the requantize + bias + clamp epilogue fused
// into the store pass. Outputs stay float, so quantized and float layers
// mix freely inside one network.
//
// Both layers are inference-only (backward throws), allocation-free on
// the warm path (im2col panels, u8 staging, and outputs come from the
// thread's nn::inference_workspace), and carry enough metadata
// (bit-width, quantization RMSE) for the bit-width autotuner to rank
// layer sensitivity.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/conv2d.hpp"
#include "nn/layer.hpp"
#include "nn/linear.hpp"
#include "nn/quantization.hpp"
#include "tensor/im2col.hpp"

namespace appeal::quant {

/// Per-layer quantization recipe shared by qconv2d/qlinear.
struct qlayer_params {
  int weight_bits = 8;          // symmetric s8 grid, +-(2^(b-1)-1)
  nn::quant_params act;         // asymmetric u8 grid for the input
};

/// Dense (groups == 1) convolution on the s8 GEMM. Geometry, bias, and the
/// fused activation clamp are taken from the float conv it replaces.
class qconv2d : public nn::layer {
 public:
  /// Quantizes `source`'s weights at `params.weight_bits` per output
  /// channel. `source` must be a prepared dense conv (groups == 1).
  qconv2d(nn::conv2d& source, const qlayer_params& params);

  const char* kind() const override { return "qconv2d"; }
  tensor forward(const tensor& input, bool training) override;
  tensor backward(const tensor& grad_output) override;
  shape output_shape(const shape& input) const override;
  std::uint64_t flops(const shape& input) const override;

  int weight_bits() const { return bits_; }
  /// RMS distortion the weight grid introduced — the autotuner's
  /// sensitivity prior.
  double weight_rmse() const { return weight_rmse_; }
  const nn::quant_params& activation_params() const { return act_; }

 private:
  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t padding_;
  int bits_;
  double weight_rmse_ = 0.0;
  nn::quant_params act_;
  float act_lo_;
  float act_hi_;
  std::vector<std::int8_t> codes_;       // [oc, patch]
  std::vector<float> scale_;             // w_scale[c] * act.scale
  std::vector<std::int32_t> row_offset_; // -act.zero_point * row_sum(codes)
  std::vector<float> bias_;              // empty when the conv had none
};

/// Fully-connected layer on the s8 GEMM: y[N, out] via a transposed
/// epilogue store, no explicit x^T or output transpose.
class qlinear : public nn::layer {
 public:
  qlinear(nn::linear& source, const qlayer_params& params);

  const char* kind() const override { return "qlinear"; }
  tensor forward(const tensor& input, bool training) override;
  tensor backward(const tensor& grad_output) override;
  shape output_shape(const shape& input) const override;
  std::uint64_t flops(const shape& input) const override;

  int weight_bits() const { return bits_; }
  double weight_rmse() const { return weight_rmse_; }
  const nn::quant_params& activation_params() const { return act_; }

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  int bits_;
  double weight_rmse_ = 0.0;
  nn::quant_params act_;
  std::vector<std::int8_t> codes_;       // [out, in]
  std::vector<float> scale_;
  std::vector<std::int32_t> row_offset_;
  std::vector<float> bias_;
};

}  // namespace appeal::quant
