#include "quant/qlayers.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "nn/inference_workspace.hpp"
#include "tensor/gemm_s8.hpp"
#include "util/error.hpp"

namespace appeal::quant {

namespace {

/// Quantizes a row-major [rows x cols] weight matrix to per-row symmetric
/// s8 grids. Fills codes and the combined epilogue vectors; returns the
/// whole-tensor RMS distortion (the autotuner's sensitivity signal).
double quantize_weight_rows(const float* w, std::size_t rows,
                            std::size_t cols, int bits,
                            const nn::quant_params& act,
                            std::vector<std::int8_t>& codes,
                            std::vector<float>& scale,
                            std::vector<std::int32_t>& row_offset) {
  codes.resize(rows * cols);
  scale.resize(rows);
  row_offset.resize(rows);
  double total_sq = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const float* wrow = w + r * cols;
    const nn::quant_params p = nn::choose_quant_params(
        std::span<const float>(wrow, cols), bits, /*symmetric=*/true);
    const float inv = 1.0F / p.scale;
    std::int32_t row_sum = 0;
    for (std::size_t i = 0; i < cols; ++i) {
      const auto q = static_cast<std::int32_t>(std::lround(wrow[i] * inv));
      const std::int32_t clamped = std::clamp(q, p.q_min(), p.q_max());
      codes[r * cols + i] = static_cast<std::int8_t>(clamped);
      row_sum += clamped;
      const double err = static_cast<double>(wrow[i]) -
                         static_cast<double>(p.scale) * clamped;
      total_sq += err * err;
    }
    scale[r] = p.scale * act.scale;
    row_offset[r] = -act.zero_point * row_sum;
  }
  return std::sqrt(total_sq / static_cast<double>(rows * cols));
}

/// u8 scratch carved out of the float workspace: the arena only pools
/// float storage, so byte buffers borrow ceil(n/4) floats and reinterpret.
std::uint8_t* as_bytes(nn::inference_workspace::buffer& buf) {
  return reinterpret_cast<std::uint8_t*>(buf.data());
}

constexpr std::size_t bytes_as_floats(std::size_t n) { return (n + 3) / 4; }

}  // namespace

qconv2d::qconv2d(nn::conv2d& source, const qlayer_params& params)
    : in_channels_(source.in_channels()),
      out_channels_(source.out_channels()),
      kernel_(source.kernel()),
      stride_(source.stride()),
      padding_(source.padding()),
      bits_(params.weight_bits),
      act_(params.act),
      act_lo_(source.fused_act_lo()),
      act_hi_(source.fused_act_hi()) {
  APPEAL_CHECK(source.groups() == 1,
               "qconv2d: only dense (groups == 1) convolutions quantize; "
               "depthwise/grouped layers stay float");
  const std::size_t patch = in_channels_ * kernel_ * kernel_;
  weight_rmse_ =
      quantize_weight_rows(source.weight().value.data(), out_channels_, patch,
                           bits_, act_, codes_, scale_, row_offset_);
  if (source.has_bias()) {
    const float* b = source.bias().value.data();
    bias_.assign(b, b + out_channels_);
  }
}

tensor qconv2d::forward(const tensor& input, bool training) {
  APPEAL_CHECK(!training, "qconv2d is inference-only");
  APPEAL_CHECK(input.dims().rank() == 4 && input.channels() == in_channels_,
               "qconv2d forward: expected NCHW with " +
                   std::to_string(in_channels_) + " channels, got " +
                   input.dims().to_string());
  ops::conv_geometry g;
  g.channels = in_channels_;
  g.height = input.height();
  g.width = input.width();
  g.kernel = kernel_;
  g.stride = stride_;
  g.padding = padding_;
  APPEAL_CHECK(g.valid(), "qconv2d forward: kernel larger than padded input");

  const std::size_t n = input.batch();
  const std::size_t cols = g.column_count();
  const std::size_t patch = g.patch_size();
  const std::size_t batch_cols = n * cols;
  const std::size_t in_plane = input.height() * input.width();

  nn::inference_workspace& ws = nn::inference_workspace::local();
  tensor out = ws.acquire(shape{n, out_channels_, g.out_height(),
                                g.out_width()});

  ops::qgemm_epilogue epi;
  epi.scale = scale_.data();
  epi.bias = bias_.empty() ? nullptr : bias_.data();
  epi.row_offset = row_offset_.data();
  epi.act_lo = act_lo_;
  epi.act_hi = act_hi_;

  nn::inference_workspace::buffer qbuf =
      ws.borrow(bytes_as_floats(patch * batch_cols));
  if (kernel_ == 1 && stride_ == 1 && padding_ == 0) {
    // Pointwise conv (the bulk of MobileNet's dense MACs): im2col of a
    // 1x1 kernel is a pure batch interleave, so quantize the input tensor
    // ONCE in place of the lowered panel and interleave the u8 codes —
    // a quarter of the float im2col's memory traffic, and the codes are
    // identical to what the lowered path would produce.
    nn::inference_workspace::buffer qin =
        ws.borrow(bytes_as_floats(n * in_channels_ * in_plane));
    ops::quantize_u8(input.data(), n * in_channels_ * in_plane, act_.scale,
                     act_.zero_point, as_bytes(qin));
    for (std::size_t kk = 0; kk < in_channels_; ++kk) {
      std::uint8_t* dst = as_bytes(qbuf) + kk * batch_cols;
      for (std::size_t s = 0; s < n; ++s) {
        const std::uint8_t* src =
            as_bytes(qin) + (s * in_channels_ + kk) * in_plane;
        std::copy(src, src + in_plane, dst + s * in_plane);
      }
    }
  } else {
    // Lower in float (the existing strided im2col), then quantize the
    // whole [patch x batch_cols] panel to u8 in one vectorizable pass.
    nn::inference_workspace::buffer columns = ws.borrow(patch * batch_cols);
    for (std::size_t s = 0; s < n; ++s) {
      const float* sample = input.data() + s * in_channels_ * in_plane;
      ops::im2col_strided(g, sample, columns.data() + s * cols, batch_cols);
    }
    ops::quantize_u8(columns.data(), patch * batch_cols, act_.scale,
                     act_.zero_point, as_bytes(qbuf));
  }
  const ops::u8_view b{as_bytes(qbuf), batch_cols, 1};

  if (n == 1) {
    // Single sample: the [oc, cols] product IS the NCHW layout.
    ops::qgemm_s8u8(out_channels_, cols, patch, codes_.data(), b, epi,
                    out.data(), cols, 1);
    return out;
  }
  nn::inference_workspace::buffer staged =
      ws.borrow(out_channels_ * batch_cols);
  ops::qgemm_s8u8(out_channels_, batch_cols, patch, codes_.data(), b, epi,
                  staged.data(), batch_cols, 1);
  for (std::size_t c = 0; c < out_channels_; ++c) {
    const float* src = staged.data() + c * batch_cols;
    for (std::size_t s = 0; s < n; ++s) {
      float* dst = out.data() + (s * out_channels_ + c) * cols;
      std::copy(src + s * cols, src + (s + 1) * cols, dst);
    }
  }
  return out;
}

tensor qconv2d::backward(const tensor&) {
  APPEAL_CHECK(false, "qconv2d has no backward (inference-only layer)");
  return tensor();
}

shape qconv2d::output_shape(const shape& input) const {
  APPEAL_CHECK(input.rank() == 4 && input.channels() == in_channels_,
               "qconv2d output_shape: bad input " + input.to_string());
  ops::conv_geometry g;
  g.channels = in_channels_;
  g.height = input.height();
  g.width = input.width();
  g.kernel = kernel_;
  g.stride = stride_;
  g.padding = padding_;
  return shape{input.batch(), out_channels_, g.out_height(), g.out_width()};
}

std::uint64_t qconv2d::flops(const shape& input) const {
  ops::conv_geometry g;
  g.channels = in_channels_;
  g.height = input.height();
  g.width = input.width();
  g.kernel = kernel_;
  g.stride = stride_;
  g.padding = padding_;
  std::uint64_t macs =
      input.batch() * out_channels_ * g.column_count() * g.patch_size();
  if (!bias_.empty()) macs += input.batch() * out_channels_ * g.column_count();
  return 2 * macs;
}

qlinear::qlinear(nn::linear& source, const qlayer_params& params)
    : in_features_(source.in_features()),
      out_features_(source.out_features()),
      bits_(params.weight_bits),
      act_(params.act) {
  weight_rmse_ =
      quantize_weight_rows(source.weight().value.data(), out_features_,
                           in_features_, bits_, act_, codes_, scale_,
                           row_offset_);
  if (source.has_bias()) {
    const float* b = source.bias().value.data();
    bias_.assign(b, b + out_features_);
  }
}

tensor qlinear::forward(const tensor& input, bool training) {
  APPEAL_CHECK(!training, "qlinear is inference-only");
  APPEAL_CHECK(input.dims().rank() == 2 &&
                   input.dims().dim(1) == in_features_,
               "qlinear forward: expected [N, " +
                   std::to_string(in_features_) + "], got " +
                   input.dims().to_string());
  const std::size_t n = input.dims().dim(0);

  nn::inference_workspace& ws = nn::inference_workspace::local();
  tensor out = ws.acquire(shape{n, out_features_});
  nn::inference_workspace::buffer qbuf =
      ws.borrow(bytes_as_floats(n * in_features_));
  ops::quantize_u8(input.data(), n * in_features_, act_.scale,
                   act_.zero_point, as_bytes(qbuf));

  ops::qgemm_epilogue epi;
  epi.scale = scale_.data();
  epi.bias = bias_.empty() ? nullptr : bias_.data();
  epi.row_offset = row_offset_.data();

  // C[out, N] = W[out, in] x^T — B is the transposed view of the quantized
  // row-major x, and the strided store writes y[N, out] directly.
  const ops::u8_view b{as_bytes(qbuf), 1, in_features_};
  ops::qgemm_s8u8(out_features_, n, in_features_, codes_.data(), b, epi,
                  out.data(), 1, out_features_);
  return out;
}

tensor qlinear::backward(const tensor&) {
  APPEAL_CHECK(false, "qlinear has no backward (inference-only layer)");
  return tensor();
}

shape qlinear::output_shape(const shape& input) const {
  APPEAL_CHECK(input.rank() == 2 && input.dim(1) == in_features_,
               "qlinear output_shape: bad input " + input.to_string());
  return shape{input.dim(0), out_features_};
}

std::uint64_t qlinear::flops(const shape& input) const {
  std::uint64_t macs = input.dim(0) * out_features_ * in_features_;
  if (!bias_.empty()) macs += input.dim(0) * out_features_;
  return 2 * macs;
}

}  // namespace appeal::quant
