// Per-layer weight bit-width auto-tuning under an accuracy budget.
//
// The tuner answers: "how far below 8 bits can each layer go before the
// COLLABORATIVE system (edge + appeal to cloud) loses more accuracy than
// the deployment tolerates?" It greedily lowers layers one at a time in
// ascending weight-RMSE order (the distortion the 8-bit grid already
// introduced is the cheapest available sensitivity prior — low-RMSE
// layers have weight distributions the grid captures well and tolerate
// narrower grids), accepting a candidate only if collaborative accuracy
// with an oracle cloud stays within `accuracy_budget` of the fp32
// reference. δ is retuned on EVERY candidate's own score distribution
// (quant/recalibrate.hpp) so each is judged at its honest operating
// point, and the appeal head's confidence routing is part of the
// acceptance signal — a layer whose quantization error the cloud absorbs
// (hard inputs appeal anyway) lowers further than isolated-accuracy
// tuning would allow.
//
// Quantization is destructive (float weights are consumed by the
// rewrite), so candidates are built from a factory producing fresh
// identically-initialized networks — typically a lambda loading the same
// checkpoint.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/two_head_network.hpp"
#include "quant/quantize.hpp"

namespace appeal::quant {

/// Produces a fresh fp32 network with the deployment's trained weights.
using network_factory =
    std::function<std::unique_ptr<core::two_head_network>()>;

struct autotune_config {
  /// Bit-widths to try below 8, in descending order.
  std::vector<int> candidate_bits = {6, 4};
  /// Max tolerated drop in collaborative accuracy vs the fp32 reference.
  double accuracy_budget = 0.005;
  /// Deployment skipping-rate target — δ is retuned to this rate for the
  /// reference and every candidate.
  double target_skip_rate = 0.7;
  std::size_t batch_size = 32;
};

struct autotune_result {
  std::vector<int> bits;        // accepted bit-width per quantizable layer
  double fp32_accuracy = 0.0;   // collaborative accuracy of the reference
  double quant_accuracy = 0.0;  // ... of the accepted quantized network
  double delta = 0.5;           // recalibrated δ of the accepted network
  double skip_rate = 0.0;       // achieved at that δ on the sample
  std::size_t lowered = 0;      // layers accepted below 8 bits
  std::size_t trials = 0;       // candidate networks evaluated
  quant_report report;          // report of the accepted network
  /// The accepted quantized network, ready to serve.
  std::unique_ptr<core::two_head_network> net;
};

/// Greedy per-layer lowering. `labels` must align with `calibration`
/// rows; accuracy is measured on this sample with an oracle cloud (an
/// appealed input is counted correct — the big model's accuracy bounds
/// it from above, so the budget is conservative).
autotune_result autotune_bit_widths(const network_factory& make_network,
                                    const tensor& calibration,
                                    const std::vector<std::size_t>& labels,
                                    const autotune_config& cfg = {});

}  // namespace appeal::quant
