// δ recalibration for the quantized edge path.
//
// Quantization shifts the whole appeal-score distribution: the predictor
// head stays float, but it reads features produced by int8 arithmetic, so
// the sigmoid scores move a little and an fp32-tuned δ no longer achieves
// the deployment's target skipping rate (and can silently change which
// inputs appeal to the cloud). quant_recalibrate() recomputes the
// operating point ON THE QUANTIZED NETWORK's score distribution over the
// same calibration sample used to set the activation grids.
#pragma once

#include <cstddef>
#include <vector>

#include "core/two_head_network.hpp"

namespace appeal::quant {

/// Batched two-head inference over a sample: argmax predictions + appeal
/// scores q(1|x), in input order. Runs in minibatches so im2col scratch
/// stays bounded regardless of the sample size.
struct scored_pass {
  std::vector<std::size_t> predictions;
  std::vector<double> scores;
};
scored_pass run_scored(core::two_head_network& net, const tensor& images,
                       std::size_t batch_size = 32);

/// A recalibrated threshold operating point.
struct recalibration {
  double delta = 0.5;       // q(1|x) >= delta keeps the input on the edge
  double skip_rate = 0.0;   // achieved on the calibration sample
  double mean_score = 0.0;  // diagnostic: centre of the score distribution
};

/// Retunes δ so the quantized network hits `target_skip_rate` on
/// `calibration` (same ties-toward-higher-rate rule as the fp32 tuner).
recalibration quant_recalibrate(core::two_head_network& net,
                                const tensor& calibration,
                                double target_skip_rate,
                                std::size_t batch_size = 32);

}  // namespace appeal::quant
