#include "quant/quantize.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/residual.hpp"
#include "nn/sequential.hpp"
#include "obs/metrics.hpp"
#include "quant/qlayers.hpp"
#include "util/error.hpp"

namespace appeal::quant {

namespace {

/// Pass-through wrapper that records the min/max of everything flowing
/// into its inner layer during the calibration forward. The observed
/// range becomes the layer's per-tensor activation grid.
class range_observer final : public nn::layer {
 public:
  range_observer() = default;

  void adopt(nn::layer_ptr inner) { inner_ = std::move(inner); }
  nn::layer& inner() { return *inner_; }

  const char* kind() const override { return "range_observer"; }

  tensor forward(const tensor& input, bool training) override {
    const float* p = input.data();
    const std::size_t n = input.size();
    for (std::size_t i = 0; i < n; ++i) {
      lo_ = std::min(lo_, p[i]);
      hi_ = std::max(hi_, p[i]);
    }
    seen_ = seen_ || n > 0;
    return inner_->forward(input, training);
  }
  tensor backward(const tensor& grad_output) override {
    return inner_->backward(grad_output);
  }
  shape output_shape(const shape& input) const override {
    return inner_->output_shape(input);
  }
  std::uint64_t flops(const shape& input) const override {
    return inner_->flops(input);
  }
  std::vector<nn::parameter*> parameters() override {
    return inner_->parameters();
  }

  bool seen() const { return seen_; }

  /// The activation grid for the observed range. Zero is pulled into the
  /// range so im2col's zero padding (and a ReLU-clipped floor) lands
  /// EXACTLY on the zero_point code — otherwise a post-ReLU min > 0 would
  /// shrink the grid and clamp the true maximum.
  nn::quant_params activation_params() const {
    const float span[2] = {std::min(lo_, 0.0F), std::max(hi_, 0.0F)};
    return nn::choose_quant_params(std::span<const float>(span, 2), 8,
                                   /*symmetric=*/false);
  }

 private:
  nn::layer_ptr inner_;
  float lo_ = std::numeric_limits<float>::max();
  float hi_ = std::numeric_limits<float>::lowest();
  bool seen_ = false;
};

/// One rewrite site: a dense conv2d or a linear sitting in `parent`'s
/// slot `index`. Depthwise/grouped convs are recorded (for the skipped
/// count) but never rewritten.
struct candidate {
  nn::sequential* parent = nullptr;
  std::size_t index = 0;
  std::string path;
  bool is_conv = false;
  bool dense = true;
  range_observer* observer = nullptr;
};

void collect_candidates(nn::sequential& seq, const std::string& prefix,
                        std::vector<candidate>& out) {
  for (std::size_t i = 0; i < seq.size(); ++i) {
    nn::layer& child = seq.child(i);
    const std::string path = prefix + "." + std::to_string(i);
    if (auto* conv = dynamic_cast<nn::conv2d*>(&child)) {
      out.push_back({&seq, i, path, true, conv->groups() == 1, nullptr});
    } else if (dynamic_cast<nn::linear*>(&child) != nullptr) {
      out.push_back({&seq, i, path, false, true, nullptr});
    } else if (auto* nested = dynamic_cast<nn::sequential*>(&child)) {
      collect_candidates(*nested, path, out);
    } else if (auto* res = dynamic_cast<nn::residual*>(&child)) {
      collect_candidates(res->body(), path + ".body", out);
      if (res->has_projection()) {
        collect_candidates(res->projection(), path + ".proj", out);
      }
    }
  }
}

std::vector<candidate> discover(core::two_head_network& net) {
  std::vector<candidate> out;
  collect_candidates(net.extractor(), "extractor", out);
  collect_candidates(net.approximator_head(), "approx_head", out);
  return out;
}

}  // namespace

int quant_report::min_bits() const {
  int bits = 8;
  for (const layer_quant_info& info : layers) bits = std::min(bits, info.bits);
  return bits;
}

quant_report quantize_two_head(core::two_head_network& net,
                               const tensor& calibration,
                               std::span<const int> bits_per_layer) {
  APPEAL_CHECK(calibration.dims().rank() == 4 && calibration.batch() > 0,
               "quantize_two_head: calibration batch must be NCHW with N > 0");
  net.prepare_for_inference();

  std::vector<candidate> candidates = discover(net);
  std::size_t quantizable = 0;
  for (const candidate& c : candidates) {
    if (c.dense) ++quantizable;
  }
  APPEAL_CHECK(quantizable > 0,
               "quantize_two_head: no float conv2d/linear layers found — "
               "network already quantized?");
  APPEAL_CHECK(bits_per_layer.empty() || bits_per_layer.size() == quantizable,
               "quantize_two_head: bits_per_layer has " +
                   std::to_string(bits_per_layer.size()) + " entries for " +
                   std::to_string(quantizable) + " quantizable layers");

  // Install observers in front of every rewrite site, run ONE calibration
  // forward (full two-head, so the approximator head sees real features),
  // then swap each observed float layer for its quantized twin.
  for (candidate& c : candidates) {
    if (!c.dense) continue;
    auto obs = std::make_unique<range_observer>();
    c.observer = obs.get();
    nn::layer_ptr original = c.parent->replace_child(c.index, std::move(obs));
    c.observer->adopt(std::move(original));
  }
  net.forward(calibration, /*training=*/false);

  quant_report report;
  std::size_t k = 0;
  for (candidate& c : candidates) {
    if (!c.dense) {
      ++report.skipped;
      continue;
    }
    APPEAL_CHECK(c.observer->seen(),
                 "quantize_two_head: calibration never reached " + c.path);
    qlayer_params qp;
    qp.weight_bits = bits_per_layer.empty() ? 8
                                            : bits_per_layer[k];
    APPEAL_CHECK(qp.weight_bits >= 2 && qp.weight_bits <= 8,
                 "quantize_two_head: weight bits must be in [2, 8]");
    qp.act = c.observer->activation_params();

    layer_quant_info info;
    info.index = k++;
    info.path = c.path;
    info.bits = qp.weight_bits;
    nn::layer_ptr qlayer;
    if (c.is_conv) {
      auto& conv = dynamic_cast<nn::conv2d&>(c.observer->inner());
      auto q = std::make_unique<qconv2d>(conv, qp);
      info.kind = q->kind();
      info.weight_rmse = q->weight_rmse();
      info.weight_count = conv.weight().value.size();
      qlayer = std::move(q);
    } else {
      auto& lin = dynamic_cast<nn::linear&>(c.observer->inner());
      auto q = std::make_unique<qlinear>(lin, qp);
      info.kind = q->kind();
      info.weight_rmse = q->weight_rmse();
      info.weight_count = lin.weight().value.size();
      qlayer = std::move(q);
    }
    // Dropping the returned observer frees the float layer it adopted.
    c.parent->replace_child(c.index, std::move(qlayer));
    report.layers.push_back(std::move(info));
    ++report.quantized;
  }
  return report;
}

std::size_t count_quantizable_layers(core::two_head_network& net) {
  net.prepare_for_inference();
  std::size_t n = 0;
  for (const candidate& c : discover(net)) {
    if (c.dense) ++n;
  }
  return n;
}

void publish_edge_bits(const quant_report& report,
                       const std::string& deployment) {
  obs::default_registry()
      .get_gauge("appeal_edge_bits", {{"deployment", deployment}},
                 "narrowest weight bit-width deployed on the edge path")
      .set(static_cast<double>(report.min_bits()));
}

}  // namespace appeal::quant
