#include "quant/autotune.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/threshold.hpp"
#include "quant/recalibrate.hpp"
#include "util/error.hpp"

namespace appeal::quant {

namespace {

/// Collaborative accuracy of one network at its own retuned δ, with an
/// oracle cloud: inputs whose score falls below δ appeal and count
/// correct. The returned operating point carries the δ and achieved SR.
struct candidate_eval {
  double accuracy = 0.0;
  double delta = 0.5;
  double skip_rate = 0.0;
};

candidate_eval evaluate(core::two_head_network& net, const tensor& calibration,
                        const std::vector<std::size_t>& labels,
                        const autotune_config& cfg) {
  const scored_pass pass = run_scored(net, calibration, cfg.batch_size);
  APPEAL_CHECK(pass.predictions.size() == labels.size(),
               "autotune: labels do not align with the calibration batch");
  candidate_eval out;
  out.delta = core::delta_for_skipping_rate(pass.scores, cfg.target_skip_rate);
  std::size_t little_correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (pass.predictions[i] == labels[i]) ++little_correct;
  }
  core::accuracy_context ctx;
  ctx.little_accuracy = static_cast<double>(little_correct) /
                        static_cast<double>(labels.size());
  ctx.big_accuracy = 1.0;  // oracle cloud
  if (ctx.little_accuracy == ctx.big_accuracy) {
    // Degenerate: the little network is already perfect on the sample, so
    // AccI (and evaluate_at_delta) is undefined — and so is any tuning
    // signal. Every routing is equally accurate.
    out.accuracy = 1.0;
    out.skip_rate = cfg.target_skip_rate;
    return out;
  }
  const core::operating_point op = core::evaluate_at_delta(
      pass.predictions, /*big_predictions=*/labels, labels, pass.scores,
      out.delta, ctx);
  out.accuracy = op.overall_accuracy;
  out.skip_rate = op.skipping_rate;
  return out;
}

}  // namespace

autotune_result autotune_bit_widths(const network_factory& make_network,
                                    const tensor& calibration,
                                    const std::vector<std::size_t>& labels,
                                    const autotune_config& cfg) {
  APPEAL_CHECK(static_cast<std::size_t>(calibration.batch()) == labels.size(),
               "autotune: one label per calibration image required");
  for (int b : cfg.candidate_bits) {
    APPEAL_CHECK(b >= 2 && b < 8,
                 "autotune: candidate bits must lie in [2, 8)");
  }

  autotune_result result;

  // fp32 reference operating point — the budget is anchored here.
  {
    std::unique_ptr<core::two_head_network> ref = make_network();
    APPEAL_CHECK(ref != nullptr, "autotune: factory returned null");
    ref->prepare_for_inference();
    result.fp32_accuracy = evaluate(*ref, calibration, labels, cfg).accuracy;
  }

  // 8-bit floor: accepted unconditionally — it IS the int8 deployment;
  // the tuner only decides how much further each layer can fall.
  result.net = make_network();
  result.report = quantize_two_head(*result.net, calibration);
  result.bits.assign(result.report.layers.size(), 8);
  candidate_eval best = evaluate(*result.net, calibration, labels, cfg);
  ++result.trials;

  // Least-distorted layers first: their weights fit the 8-bit grid well,
  // so they are the likeliest to survive a narrower one.
  std::vector<std::size_t> order(result.bits.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.report.layers[a].weight_rmse <
           result.report.layers[b].weight_rmse;
  });

  for (std::size_t layer : order) {
    for (int bits : cfg.candidate_bits) {
      std::vector<int> trial_bits = result.bits;
      trial_bits[layer] = bits;
      std::unique_ptr<core::two_head_network> trial = make_network();
      quant_report trial_report =
          quantize_two_head(*trial, calibration, trial_bits);
      const candidate_eval eval = evaluate(*trial, calibration, labels, cfg);
      ++result.trials;
      if (result.fp32_accuracy - eval.accuracy > cfg.accuracy_budget) {
        break;  // this layer is saturated; try the next one
      }
      result.bits = std::move(trial_bits);
      result.net = std::move(trial);
      result.report = std::move(trial_report);
      best = eval;
    }
  }

  result.quant_accuracy = best.accuracy;
  result.delta = best.delta;
  result.skip_rate = best.skip_rate;
  for (int b : result.bits) {
    if (b < 8) ++result.lowered;
  }
  return result;
}

}  // namespace appeal::quant
