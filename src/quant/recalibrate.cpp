#include "quant/recalibrate.hpp"

#include <algorithm>

#include "core/threshold.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace appeal::quant {

scored_pass run_scored(core::two_head_network& net, const tensor& images,
                       std::size_t batch_size) {
  APPEAL_CHECK(images.dims().rank() == 4 && images.batch() > 0,
               "run_scored: expected a non-empty NCHW batch, got " +
                   images.dims().to_string());
  APPEAL_CHECK(batch_size > 0, "run_scored: batch_size must be positive");
  const std::size_t n = images.batch();
  const std::size_t sample =
      images.channels() * images.height() * images.width();

  scored_pass out;
  out.predictions.reserve(n);
  out.scores.reserve(n);
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t count = std::min(batch_size, n - start);
    tensor chunk(shape{count, images.channels(), images.height(),
                       images.width()});
    std::copy(images.data() + start * sample,
              images.data() + (start + count) * sample, chunk.data());
    core::two_head_output fwd = net.forward(chunk, /*training=*/false);
    const std::vector<std::size_t> preds = ops::argmax_rows(fwd.logits);
    out.predictions.insert(out.predictions.end(), preds.begin(), preds.end());
    for (float q : fwd.q) out.scores.push_back(static_cast<double>(q));
  }
  return out;
}

recalibration quant_recalibrate(core::two_head_network& net,
                                const tensor& calibration,
                                double target_skip_rate,
                                std::size_t batch_size) {
  const scored_pass pass = run_scored(net, calibration, batch_size);

  recalibration out;
  out.delta = core::delta_for_skipping_rate(pass.scores, target_skip_rate);
  std::size_t kept = 0;
  double sum = 0.0;
  for (double s : pass.scores) {
    if (s >= out.delta) ++kept;
    sum += s;
  }
  const auto n = static_cast<double>(pass.scores.size());
  out.skip_rate = static_cast<double>(kept) / n;
  out.mean_score = sum / n;
  return out;
}

}  // namespace appeal::quant
