// Dataset presets mirroring the paper's four benchmarks.
//
// Class counts match the originals (GTSRB 43, CIFAR-10 10, CIFAR-100 100,
// Tiny-ImageNet 200); sizes and difficulty parameters are scaled for a
// single-core budget while preserving the relative ordering the paper's
// evaluation depends on (GTSRB easiest ... tiny-imagenet hardest with the
// largest big/little accuracy gap).
#pragma once

#include <memory>
#include <string>

#include "data/synthetic.hpp"

namespace appeal::data {

enum class preset {
  gtsrb_like,
  cifar10_like,
  cifar100_like,
  tiny_imagenet_like,
};

/// Parses "gtsrb" / "cifar10" / "cifar100" / "tiny_imagenet" (with or
/// without a "_like" suffix).
preset parse_preset(const std::string& name);

/// Display name, e.g. "cifar10_like".
std::string preset_name(preset p);

/// All presets in paper order.
std::vector<preset> all_presets();

/// Train/validation/test splits of one task. Splits share class prototypes
/// (same class_seed) but have disjoint sample streams.
struct dataset_bundle {
  std::unique_ptr<synthetic_dataset> train;
  std::unique_ptr<synthetic_dataset> val;
  std::unique_ptr<synthetic_dataset> test;
  std::string name;
};

/// Base generation config for a preset (before split sizes/seeds).
synthetic_config preset_config(preset p, std::uint64_t seed);

/// Materializes the three splits of a preset.
dataset_bundle make_bundle(preset p, std::uint64_t seed);

/// Smaller variant for tests and quick examples (a few hundred samples).
dataset_bundle make_small_bundle(preset p, std::uint64_t seed);

}  // namespace appeal::data
