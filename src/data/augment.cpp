#include "data/augment.hpp"

#include "util/error.hpp"

namespace appeal::data {

namespace {

/// Shifts one [C, H, W] image by (dy, dx) with zero fill, in place.
void shift_image(float* image, std::size_t channels, std::size_t height,
                 std::size_t width, int dy, int dx) {
  if (dy == 0 && dx == 0) return;
  std::vector<float> buffer(height * width);
  for (std::size_t c = 0; c < channels; ++c) {
    float* plane = image + c * height * width;
    for (auto& v : buffer) v = 0.0F;
    for (std::size_t y = 0; y < height; ++y) {
      const auto sy = static_cast<std::ptrdiff_t>(y) - dy;
      if (sy < 0 || sy >= static_cast<std::ptrdiff_t>(height)) continue;
      for (std::size_t x = 0; x < width; ++x) {
        const auto sx = static_cast<std::ptrdiff_t>(x) - dx;
        if (sx < 0 || sx >= static_cast<std::ptrdiff_t>(width)) continue;
        buffer[y * width + x] =
            plane[static_cast<std::size_t>(sy) * width +
                  static_cast<std::size_t>(sx)];
      }
    }
    for (std::size_t i = 0; i < buffer.size(); ++i) plane[i] = buffer[i];
  }
}

/// Horizontally flips one [C, H, W] image in place.
void flip_image(float* image, std::size_t channels, std::size_t height,
                std::size_t width) {
  for (std::size_t c = 0; c < channels; ++c) {
    float* plane = image + c * height * width;
    for (std::size_t y = 0; y < height; ++y) {
      float* row = plane + y * width;
      for (std::size_t x = 0; x < width / 2; ++x) {
        std::swap(row[x], row[width - 1 - x]);
      }
    }
  }
}

}  // namespace

void augment_batch(tensor& images, util::rng& gen, const augment_config& cfg) {
  APPEAL_CHECK(images.dims().rank() == 4, "augment_batch expects NCHW");
  const std::size_t n = images.batch();
  const std::size_t c = images.channels();
  const std::size_t h = images.height();
  const std::size_t w = images.width();
  const std::size_t per_image = c * h * w;

  for (std::size_t i = 0; i < n; ++i) {
    float* image = images.data() + i * per_image;
    if (cfg.max_shift > 0) {
      const int bound = static_cast<int>(cfg.max_shift);
      shift_image(image, c, h, w, gen.uniform_int(-bound, bound),
                  gen.uniform_int(-bound, bound));
    }
    if (gen.bernoulli(cfg.flip_probability)) {
      flip_image(image, c, h, w);
    }
    if (cfg.noise_sigma > 0.0F) {
      for (std::size_t j = 0; j < per_image; ++j) {
        image[j] += static_cast<float>(gen.normal(0.0, cfg.noise_sigma));
      }
    }
  }
}

}  // namespace appeal::data
