// Minibatch iteration with per-epoch shuffling.
#pragma once

#include <optional>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace appeal::data {

/// Iterates a dataset in (optionally shuffled) minibatches. The trailing
/// partial batch is kept — dropping it would bias small datasets.
class data_loader {
 public:
  data_loader(const dataset& source, std::size_t batch_size, bool shuffle,
              util::rng gen);

  /// Number of batches one epoch yields.
  std::size_t batches_per_epoch() const;

  /// Resets to the start of a new epoch (reshuffles when enabled).
  void start_epoch();

  /// Next batch, or nullopt at the end of the epoch.
  std::optional<batch> next();

  std::size_t batch_size() const { return batch_size_; }

 private:
  const dataset& source_;
  std::size_t batch_size_;
  bool shuffle_;
  util::rng gen_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

}  // namespace appeal::data
