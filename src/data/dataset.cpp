#include "data/dataset.hpp"

#include "util/error.hpp"

namespace appeal::data {

batch make_batch(const dataset& source, const std::vector<std::size_t>& rows) {
  APPEAL_CHECK(!rows.empty(), "make_batch requires at least one row");
  const shape img = source.image_shape();
  APPEAL_CHECK(img.rank() == 3, "dataset image_shape must be [C, H, W]");

  batch out;
  out.images = tensor(shape{rows.size(), img.dim(0), img.dim(1), img.dim(2)});
  out.labels.resize(rows.size());
  out.indices = rows;

  const std::size_t per_image = img.element_count();
  float* dst = out.images.data();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    APPEAL_CHECK(rows[i] < source.size(), "batch row index out of range");
    const sample& s = source.get(rows[i]);
    APPEAL_CHECK(s.image.dims() == img, "sample image shape mismatch");
    const float* src = s.image.data();
    for (std::size_t j = 0; j < per_image; ++j) {
      dst[i * per_image + j] = src[j];
    }
    out.labels[i] = s.label;
  }
  return out;
}

batch make_full_batch(const dataset& source) {
  std::vector<std::size_t> rows(source.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return make_batch(source, rows);
}

std::vector<std::size_t> class_histogram(const dataset& source) {
  std::vector<std::size_t> counts(source.num_classes(), 0);
  for (std::size_t i = 0; i < source.size(); ++i) {
    const std::size_t label = source.get(i).label;
    APPEAL_CHECK(label < counts.size(), "sample label out of range");
    ++counts[label];
  }
  return counts;
}

}  // namespace appeal::data
