// Train-time batch augmentation: shifts, flips, additive noise.
#pragma once

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace appeal::data {

/// Augmentation policy. All augmentations are label-preserving for the
/// synthetic tasks in this repo (prototypes have no canonical left/right
/// orientation).
struct augment_config {
  std::size_t max_shift = 2;      // random translate in [-max_shift, max_shift]
  double flip_probability = 0.5;  // horizontal flip
  float noise_sigma = 0.02F;      // small additive Gaussian noise
};

/// Applies the policy in place to an NCHW batch.
void augment_batch(tensor& images, util::rng& gen, const augment_config& cfg);

}  // namespace appeal::data
