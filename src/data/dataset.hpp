// Dataset interface and batch assembly.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace appeal::data {

/// One labelled image with its latent generation difficulty. `difficulty`
/// is metadata from the generator (0 = pristine, 1 = maximally distorted);
/// models never see it — it exists so experiments can verify the predictor
/// actually learned difficulty rather than class identity.
struct sample {
  tensor image;             // [C, H, W]
  std::size_t label = 0;
  float difficulty = 0.0F;
};

/// Abstract in-memory dataset.
class dataset {
 public:
  virtual ~dataset() = default;

  virtual std::size_t size() const = 0;
  virtual std::size_t num_classes() const = 0;
  /// Shape of one image, [C, H, W].
  virtual shape image_shape() const = 0;
  virtual const sample& get(std::size_t index) const = 0;
};

/// A materialized minibatch.
struct batch {
  tensor images;                     // [N, C, H, W]
  std::vector<std::size_t> labels;   // [N]
  std::vector<std::size_t> indices;  // source dataset indices, [N]
};

/// Stacks the given dataset rows into one NCHW tensor + label vector.
batch make_batch(const dataset& source, const std::vector<std::size_t>& rows);

/// Stacks the whole dataset (use only for small evaluation sets).
batch make_full_batch(const dataset& source);

/// Class frequency histogram (length num_classes).
std::vector<std::size_t> class_histogram(const dataset& source);

}  // namespace appeal::data
