#include "data/dataloader.hpp"

#include "util/error.hpp"

namespace appeal::data {

data_loader::data_loader(const dataset& source, std::size_t batch_size,
                         bool shuffle, util::rng gen)
    : source_(source),
      batch_size_(batch_size),
      shuffle_(shuffle),
      gen_(gen),
      order_(source.size()) {
  APPEAL_CHECK(batch_size > 0, "data_loader requires batch_size > 0");
  APPEAL_CHECK(source.size() > 0, "data_loader requires a non-empty dataset");
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  start_epoch();
}

std::size_t data_loader::batches_per_epoch() const {
  return (source_.size() + batch_size_ - 1) / batch_size_;
}

void data_loader::start_epoch() {
  cursor_ = 0;
  if (shuffle_) {
    gen_.shuffle(order_);
  }
}

std::optional<batch> data_loader::next() {
  if (cursor_ >= order_.size()) return std::nullopt;
  const std::size_t end = std::min(cursor_ + batch_size_, order_.size());
  const std::vector<std::size_t> rows(order_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                                      order_.begin() + static_cast<std::ptrdiff_t>(end));
  cursor_ = end;
  return make_batch(source_, rows);
}

}  // namespace appeal::data
