// Procedural synthetic image-classification datasets.
//
// This is the repo's substitution for GTSRB / CIFAR-10 / CIFAR-100 /
// Tiny-ImageNet (see DESIGN.md §2). Each class has a deterministic
// prototype built from multi-scale cosine gratings plus a class blob:
// low-frequency components are the "easy" cues a low-capacity model learns,
// high-frequency components are the fine detail that requires capacity.
//
// Each sample draws a latent difficulty d from a long-tailed distribution
// and applies d-proportional distortions:
//   - affine warp (translation / rotation / scale, bilinear resampling)
//   - confuser blending: mixes in another class's prototype, destroying the
//     low-frequency cues while fine detail still identifies the true class
//   - additive Gaussian noise
//   - rectangular occlusion
// The result reproduces the phenomenon AppealNet exploits: a bulk of easy
// inputs a small model handles and a long tail it cannot, with difficulty
// latent and continuous so the predictor must learn it.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace appeal::data {

/// Generation parameters for one synthetic dataset split.
struct synthetic_config {
  std::size_t num_classes = 10;
  std::size_t image_size = 16;
  std::size_t channels = 3;
  std::size_t sample_count = 1000;

  /// Seed for class prototypes — splits of the same task share this.
  std::uint64_t class_seed = 1;
  /// Seed for the sample stream — differs per split.
  std::uint64_t sample_seed = 2;

  /// Difficulty distribution: with probability `tail_fraction` a sample is
  /// drawn from the hard tail [0.55, 1]; otherwise from a bulk
  /// Kumaraswamy(bulk_a, bulk_b) scaled into [0, 0.55).
  double tail_fraction = 0.2;
  double bulk_a = 1.4;
  double bulk_b = 3.0;

  /// Distortion strengths (all scaled by the sample's difficulty).
  float warp_translate = 3.0F;   // max |translation| in pixels at d = 1
  float warp_rotate = 0.45F;     // max |rotation| in radians at d = 1
  float warp_scale = 0.25F;      // max |log-scale| at d = 1
  float blend_strength = 0.6F;   // max confuser mix-in at d = 1
  float noise_floor = 0.04F;     // additive noise sigma at d = 0
  float noise_scale = 0.30F;     // extra noise sigma at d = 1
  float occlusion_scale = 0.5F;  // occlusion probability at d = 1

  /// Relative amplitude of the high-frequency (fine-detail) components.
  float fine_detail_amplitude = 0.35F;
};

/// Fully materialized synthetic dataset (all samples generated eagerly).
class synthetic_dataset : public dataset {
 public:
  explicit synthetic_dataset(const synthetic_config& cfg);

  std::size_t size() const override { return samples_.size(); }
  std::size_t num_classes() const override { return config_.num_classes; }
  shape image_shape() const override;
  const sample& get(std::size_t index) const override;

  const synthetic_config& config() const { return config_; }

  /// Class prototype images (for inspection/tests), one [C, H, W] each.
  const std::vector<tensor>& prototypes() const { return prototypes_; }

  /// The confuser class blended into hard samples of `label`.
  std::size_t confuser_of(std::size_t label, std::size_t which) const;

 private:
  tensor make_prototype(std::size_t label) const;
  sample make_sample(std::size_t label, util::rng& gen) const;

  synthetic_config config_;
  std::vector<tensor> prototypes_;
  std::vector<sample> samples_;
};

}  // namespace appeal::data
