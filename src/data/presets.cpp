#include "data/presets.hpp"

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace appeal::data {

preset parse_preset(const std::string& name) {
  std::string lower = util::to_lower(name);
  const auto suffix = lower.find("_like");
  if (suffix != std::string::npos) lower = lower.substr(0, suffix);
  if (lower == "gtsrb") return preset::gtsrb_like;
  if (lower == "cifar10") return preset::cifar10_like;
  if (lower == "cifar100") return preset::cifar100_like;
  if (lower == "tiny_imagenet" || lower == "tinyimagenet") {
    return preset::tiny_imagenet_like;
  }
  APPEAL_CHECK(false, "unknown dataset preset: " + name);
  return preset::cifar10_like;
}

std::string preset_name(preset p) {
  switch (p) {
    case preset::gtsrb_like:
      return "gtsrb_like";
    case preset::cifar10_like:
      return "cifar10_like";
    case preset::cifar100_like:
      return "cifar100_like";
    case preset::tiny_imagenet_like:
      return "tiny_imagenet_like";
  }
  return "unknown";
}

std::vector<preset> all_presets() {
  return {preset::gtsrb_like, preset::cifar10_like, preset::cifar100_like,
          preset::tiny_imagenet_like};
}

synthetic_config preset_config(preset p, std::uint64_t seed) {
  synthetic_config cfg;
  cfg.class_seed = seed * 2654435761ULL + 101ULL;
  cfg.image_size = 16;
  cfg.channels = 3;

  switch (p) {
    case preset::gtsrb_like:
      // Traffic signs: many classes but crisp, low-variation imagery.
      cfg.num_classes = 43;
      cfg.tail_fraction = 0.16;
      cfg.blend_strength = 0.58F;
      cfg.noise_floor = 0.05F;
      cfg.noise_scale = 0.30F;
      cfg.fine_detail_amplitude = 0.32F;
      break;
    case preset::cifar10_like:
      cfg.num_classes = 10;
      cfg.tail_fraction = 0.32;
      cfg.bulk_b = 2.6;  // more mid-difficulty mass
      cfg.blend_strength = 0.72F;
      cfg.noise_floor = 0.06F;
      cfg.noise_scale = 0.36F;
      cfg.fine_detail_amplitude = 0.38F;
      break;
    case preset::cifar100_like:
      // Many classes + strong blending: both models lose accuracy, the gap
      // stays moderate.
      cfg.num_classes = 100;
      cfg.tail_fraction = 0.38;
      cfg.bulk_b = 2.4;
      cfg.blend_strength = 0.80F;
      cfg.noise_floor = 0.08F;
      cfg.noise_scale = 0.44F;
      cfg.fine_detail_amplitude = 0.42F;
      break;
    case preset::tiny_imagenet_like:
      // Largest class count and the strongest fine-detail reliance: the
      // little model underfits hard, producing the paper's >8% gap regime.
      cfg.num_classes = 200;
      cfg.tail_fraction = 0.40;
      cfg.bulk_b = 2.4;
      cfg.blend_strength = 0.78F;
      cfg.noise_floor = 0.09F;
      cfg.noise_scale = 0.46F;
      cfg.fine_detail_amplitude = 0.55F;
      break;
  }
  return cfg;
}

namespace {

dataset_bundle make_bundle_sized(preset p, std::uint64_t seed,
                                 std::size_t train_n, std::size_t val_n,
                                 std::size_t test_n) {
  synthetic_config cfg = preset_config(p, seed);

  dataset_bundle bundle;
  bundle.name = preset_name(p);

  cfg.sample_count = train_n;
  cfg.sample_seed = seed * 7ULL + 1ULL;
  bundle.train = std::make_unique<synthetic_dataset>(cfg);

  cfg.sample_count = val_n;
  cfg.sample_seed = seed * 7ULL + 2ULL;
  bundle.val = std::make_unique<synthetic_dataset>(cfg);

  cfg.sample_count = test_n;
  cfg.sample_seed = seed * 7ULL + 3ULL;
  bundle.test = std::make_unique<synthetic_dataset>(cfg);
  return bundle;
}

}  // namespace

dataset_bundle make_bundle(preset p, std::uint64_t seed) {
  switch (p) {
    case preset::gtsrb_like:
      return make_bundle_sized(p, seed, 3000, 800, 2000);
    case preset::cifar10_like:
      return make_bundle_sized(p, seed, 3000, 800, 2000);
    case preset::cifar100_like:
      return make_bundle_sized(p, seed, 3200, 900, 2200);
    case preset::tiny_imagenet_like:
      return make_bundle_sized(p, seed, 3600, 900, 2200);
  }
  APPEAL_CHECK(false, "unreachable: bad preset");
  return {};
}

dataset_bundle make_small_bundle(preset p, std::uint64_t seed) {
  return make_bundle_sized(p, seed, 400, 120, 200);
}

}  // namespace appeal::data
