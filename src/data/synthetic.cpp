#include "data/synthetic.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace appeal::data {

namespace {

constexpr double two_pi = 6.283185307179586;

/// Kumaraswamy(a, b) draw via its closed-form inverse CDF — a Beta-like
/// long-tail shape without needing gamma sampling.
double kumaraswamy(util::rng& gen, double a, double b) {
  const double u = gen.uniform();
  return std::pow(1.0 - std::pow(1.0 - u, 1.0 / b), 1.0 / a);
}

/// Bilinear sample with reflect padding.
float sample_bilinear(const float* plane, std::size_t size, float y, float x) {
  const auto reflect = [size](float v) {
    const float limit = static_cast<float>(size) - 1.0F;
    if (limit <= 0.0F) return 0.0F;
    // Reflect into [0, limit] (triangle wave).
    float t = std::fabs(v);
    const float period = 2.0F * limit;
    t = std::fmod(t, period);
    if (t > limit) t = period - t;
    return t;
  };
  const float fy = reflect(y);
  const float fx = reflect(x);
  const auto y0 = static_cast<std::size_t>(fy);
  const auto x0 = static_cast<std::size_t>(fx);
  const std::size_t y1 = std::min(y0 + 1, size - 1);
  const std::size_t x1 = std::min(x0 + 1, size - 1);
  const float wy = fy - static_cast<float>(y0);
  const float wx = fx - static_cast<float>(x0);
  const float top = plane[y0 * size + x0] * (1.0F - wx) +
                    plane[y0 * size + x1] * wx;
  const float bottom = plane[y1 * size + x0] * (1.0F - wx) +
                       plane[y1 * size + x1] * wx;
  return top * (1.0F - wy) + bottom * wy;
}

/// Applies an inverse-mapped affine warp (rotate, scale, translate about the
/// image centre) to every channel of `src`.
tensor affine_warp(const tensor& src, float angle, float log_scale, float tx,
                   float ty) {
  const std::size_t channels = src.dims().dim(0);
  const std::size_t size = src.dims().dim(1);
  tensor out(src.dims());
  const float c = std::cos(angle);
  const float s = std::sin(angle);
  const float inv_scale = std::exp(-log_scale);
  const float centre = (static_cast<float>(size) - 1.0F) / 2.0F;

  for (std::size_t ch = 0; ch < channels; ++ch) {
    const float* plane = src.data() + ch * size * size;
    float* dst = out.data() + ch * size * size;
    for (std::size_t y = 0; y < size; ++y) {
      for (std::size_t x = 0; x < size; ++x) {
        // Destination pixel -> source coordinates (inverse transform).
        const float dy = static_cast<float>(y) - centre - ty;
        const float dx = static_cast<float>(x) - centre - tx;
        const float sy = (c * dy - s * dx) * inv_scale + centre;
        const float sx = (s * dy + c * dx) * inv_scale + centre;
        dst[y * size + x] = sample_bilinear(plane, size, sy, sx);
      }
    }
  }
  return out;
}

}  // namespace

synthetic_dataset::synthetic_dataset(const synthetic_config& cfg)
    : config_(cfg) {
  APPEAL_CHECK(cfg.num_classes >= 2, "synthetic dataset needs >= 2 classes");
  APPEAL_CHECK(cfg.image_size >= 8, "synthetic dataset needs image_size >= 8");
  APPEAL_CHECK(cfg.channels >= 1, "synthetic dataset needs >= 1 channel");
  APPEAL_CHECK(cfg.tail_fraction >= 0.0 && cfg.tail_fraction <= 1.0,
               "tail_fraction must be in [0, 1]");
  APPEAL_CHECK(cfg.blend_strength >= 0.0F && cfg.blend_strength < 1.0F,
               "blend_strength must be in [0, 1)");

  prototypes_.reserve(cfg.num_classes);
  for (std::size_t k = 0; k < cfg.num_classes; ++k) {
    prototypes_.push_back(make_prototype(k));
  }

  util::rng stream(cfg.sample_seed);
  samples_.reserve(cfg.sample_count);
  for (std::size_t i = 0; i < cfg.sample_count; ++i) {
    const auto label = static_cast<std::size_t>(
        stream.uniform_index(cfg.num_classes));
    samples_.push_back(make_sample(label, stream));
  }
}

shape synthetic_dataset::image_shape() const {
  return shape{config_.channels, config_.image_size, config_.image_size};
}

const sample& synthetic_dataset::get(std::size_t index) const {
  APPEAL_CHECK(index < samples_.size(), "sample index out of range");
  return samples_[index];
}

std::size_t synthetic_dataset::confuser_of(std::size_t label,
                                           std::size_t which) const {
  // Two fixed confusers per class, stable across splits because they depend
  // only on the label and class count.
  const std::size_t k = config_.num_classes;
  const std::size_t offset = (which % 2 == 0) ? 1 : (k / 2) | 1;
  return (label + offset) % k;
}

tensor synthetic_dataset::make_prototype(std::size_t label) const {
  // Prototype RNG depends only on (class_seed, label) so train/val/test
  // splits built with the same class_seed share class identities.
  util::rng gen(config_.class_seed * 1000003ULL + label * 7919ULL + 17ULL);
  const std::size_t size = config_.image_size;
  tensor proto(image_shape());

  for (std::size_t ch = 0; ch < config_.channels; ++ch) {
    float* plane = proto.data() + ch * size * size;

    // Six gratings: three coarse (the easy cues), three fine (the
    // capacity-demanding cues).
    constexpr std::size_t grating_count = 6;
    float amp[grating_count];
    float fy[grating_count];
    float fx[grating_count];
    float phase[grating_count];
    for (std::size_t j = 0; j < grating_count; ++j) {
      const bool fine = j >= 3;
      amp[j] = fine ? config_.fine_detail_amplitude *
                          gen.uniform(0.7F, 1.0F)
                    : gen.uniform(0.5F, 1.0F);
      const float lo = fine ? 3.0F : 0.5F;
      const float hi = fine ? 6.5F : 2.0F;
      fy[j] = gen.uniform(lo, hi) * (gen.bernoulli(0.5) ? 1.0F : -1.0F);
      fx[j] = gen.uniform(lo, hi) * (gen.bernoulli(0.5) ? 1.0F : -1.0F);
      phase[j] = static_cast<float>(gen.uniform() * two_pi);
    }

    // Class blob: a Gaussian bump whose position encodes the class.
    const float by = gen.uniform(0.2F, 0.8F) * static_cast<float>(size);
    const float bx = gen.uniform(0.2F, 0.8F) * static_cast<float>(size);
    const float bsigma = gen.uniform(0.12F, 0.22F) * static_cast<float>(size);
    const float bamp = gen.uniform(0.6F, 1.0F);

    const float inv_size = 1.0F / static_cast<float>(size);
    for (std::size_t y = 0; y < size; ++y) {
      for (std::size_t x = 0; x < size; ++x) {
        float v = 0.0F;
        for (std::size_t j = 0; j < grating_count; ++j) {
          const float arg = static_cast<float>(two_pi) *
                                (fy[j] * static_cast<float>(y) +
                                 fx[j] * static_cast<float>(x)) *
                                inv_size +
                            phase[j];
          v += amp[j] * std::cos(arg);
        }
        const float dy = (static_cast<float>(y) - by) / bsigma;
        const float dx = (static_cast<float>(x) - bx) / bsigma;
        v += bamp * std::exp(-0.5F * (dy * dy + dx * dx));
        plane[y * size + x] = v;
      }
    }

    // Standardize the channel so every class has comparable dynamic range.
    double mean = 0.0;
    for (std::size_t i = 0; i < size * size; ++i) mean += plane[i];
    mean /= static_cast<double>(size * size);
    double var = 0.0;
    for (std::size_t i = 0; i < size * size; ++i) {
      const double d = plane[i] - mean;
      var += d * d;
    }
    var /= static_cast<double>(size * size);
    const float inv_std = 1.0F / static_cast<float>(std::sqrt(var) + 1e-6);
    for (std::size_t i = 0; i < size * size; ++i) {
      plane[i] = (plane[i] - static_cast<float>(mean)) * inv_std;
    }
  }
  return proto;
}

sample synthetic_dataset::make_sample(std::size_t label,
                                      util::rng& gen) const {
  const std::size_t size = config_.image_size;

  // Long-tailed difficulty draw.
  float d = 0.0F;
  if (gen.bernoulli(config_.tail_fraction)) {
    d = 0.55F + 0.45F * static_cast<float>(
                            std::pow(gen.uniform(), 0.7));
  } else {
    d = 0.55F *
        static_cast<float>(kumaraswamy(gen, config_.bulk_a, config_.bulk_b));
  }

  // Affine warp of the class prototype.
  const float angle = d * config_.warp_rotate * gen.uniform(-1.0F, 1.0F);
  const float log_scale = d * config_.warp_scale * gen.uniform(-1.0F, 1.0F);
  const float tx = d * config_.warp_translate * gen.uniform(-1.0F, 1.0F);
  const float ty = d * config_.warp_translate * gen.uniform(-1.0F, 1.0F);
  tensor image = affine_warp(prototypes_[label], angle, log_scale, tx, ty);

  // Confuser blending: suppresses the coarse cues while the warped true
  // class retains its fine structure. Deep-tail samples (d near 1) blend so
  // strongly that a small model confidently predicts the confuser class —
  // the "overconfident wrong prediction" regime that motivates the paper.
  if (gen.bernoulli(std::min(0.95, static_cast<double>(d) * 1.2))) {
    const std::size_t which = gen.bernoulli(0.5) ? 0 : 1;
    const std::size_t confuser = confuser_of(label, which);
    const float deep_tail_boost = d > 0.8F ? 1.25F : 1.0F;
    const float lambda = std::min(
        0.9F, config_.blend_strength * d * deep_tail_boost *
                  gen.uniform(0.55F, 1.0F));
    const tensor& other = prototypes_[confuser];
    float* dst = image.data();
    const float* src = other.data();
    for (std::size_t i = 0; i < image.size(); ++i) {
      dst[i] = (1.0F - lambda) * dst[i] + lambda * src[i];
    }
  }

  // Additive noise.
  const float sigma = config_.noise_floor + config_.noise_scale * d;
  for (auto& v : image.values()) {
    v += static_cast<float>(gen.normal(0.0, sigma));
  }

  // Occlusion.
  if (gen.bernoulli(static_cast<double>(config_.occlusion_scale) * d)) {
    const auto rect_h = static_cast<std::size_t>(
        2 + gen.uniform_index(1 + size / 4));
    const auto rect_w = static_cast<std::size_t>(
        2 + gen.uniform_index(1 + size / 4));
    const auto oy = static_cast<std::size_t>(
        gen.uniform_index(size - std::min(rect_h, size - 1)));
    const auto ox = static_cast<std::size_t>(
        gen.uniform_index(size - std::min(rect_w, size - 1)));
    for (std::size_t ch = 0; ch < config_.channels; ++ch) {
      float* plane = image.data() + ch * size * size;
      for (std::size_t y = oy; y < std::min(oy + rect_h, size); ++y) {
        for (std::size_t x = ox; x < std::min(ox + rect_w, size); ++x) {
          plane[y * size + x] = 0.0F;
        }
      }
    }
  }

  sample out;
  out.image = std::move(image);
  out.label = label;
  out.difficulty = d;
  return out;
}

}  // namespace appeal::data
