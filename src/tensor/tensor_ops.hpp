// Elementwise and reduction operations on tensors.
//
// These are the building blocks the nn layers compose; each op validates
// shapes and never broadcasts implicitly (broadcasting bugs are the classic
// silent-failure mode in hand-written training code).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace appeal::ops {

/// out = a + b (same shape).
tensor add(const tensor& a, const tensor& b);

/// a += b (same shape).
void add_inplace(tensor& a, const tensor& b);

/// a += alpha * b (same shape) — the axpy used by optimizers/grad sums.
void axpy(tensor& a, float alpha, const tensor& b);

/// out = a - b (same shape).
tensor subtract(const tensor& a, const tensor& b);

/// out = a * b elementwise (same shape).
tensor multiply(const tensor& a, const tensor& b);

/// out = a * scalar.
tensor scale(const tensor& a, float scalar);

/// a *= scalar.
void scale_inplace(tensor& a, float scalar);

/// Sum of all elements.
double sum(const tensor& a);

/// Mean of all elements (0 for empty tensors).
double mean(const tensor& a);

/// Maximum element; throws on empty.
float max_value(const tensor& a);

/// Index of the maximum element; throws on empty.
std::size_t argmax(const tensor& a);

/// Row-wise argmax for a [rows, cols] matrix.
std::vector<std::size_t> argmax_rows(const tensor& matrix);

/// Numerically-stable row-wise softmax for a [rows, cols] matrix.
tensor softmax_rows(const tensor& logits);

/// Row-wise log-softmax for a [rows, cols] matrix.
tensor log_softmax_rows(const tensor& logits);

/// Elementwise logistic sigmoid.
tensor sigmoid(const tensor& a);

/// L2 norm of all elements.
double l2_norm(const tensor& a);

/// Largest absolute elementwise difference (shape-checked).
float max_abs_diff(const tensor& a, const tensor& b);

/// Clamps every element into [lo, hi] in place.
void clamp_inplace(tensor& a, float lo, float hi);

/// Transposes a [rows, cols] matrix.
tensor transpose(const tensor& matrix);

}  // namespace appeal::ops
