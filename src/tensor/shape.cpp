#include "tensor/shape.hpp"

#include <sstream>

#include "util/error.hpp"

namespace appeal {

std::size_t shape::dim(std::size_t axis) const {
  APPEAL_CHECK(axis < dims_.size(),
               "axis out of range for shape " + to_string());
  return dims_[axis];
}

std::size_t shape::element_count() const {
  std::size_t count = 1;
  for (const std::size_t d : dims_) count *= d;
  return count;
}

std::vector<std::size_t> shape::strides() const {
  std::vector<std::size_t> out(dims_.size(), 1);
  for (std::size_t i = dims_.size(); i-- > 1;) {
    out[i - 1] = out[i] * dims_[i];
  }
  return out;
}

std::size_t shape::flat_index(const std::vector<std::size_t>& index) const {
  APPEAL_CHECK(index.size() == dims_.size(),
               "index rank does not match shape " + to_string());
  std::size_t flat = 0;
  std::size_t stride = 1;
  for (std::size_t i = dims_.size(); i-- > 0;) {
    APPEAL_CHECK(index[i] < dims_[i],
                 "index out of bounds for shape " + to_string());
    flat += index[i] * stride;
    stride *= dims_[i];
  }
  return flat;
}

std::string shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i != 0) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

std::size_t shape::dim4(std::size_t axis) const {
  APPEAL_CHECK(dims_.size() == 4,
               "NCHW accessor on non-rank-4 shape " + to_string());
  return dims_[axis];
}

}  // namespace appeal
