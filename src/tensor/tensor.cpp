#include "tensor/tensor.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace appeal {

tensor::tensor(shape s) : shape_(std::move(s)), data_(shape_.element_count(), 0.0F) {}

tensor::tensor(shape s, float fill)
    : shape_(std::move(s)), data_(shape_.element_count(), fill) {}

tensor::tensor(shape s, std::vector<float> data)
    : shape_(std::move(s)), data_(std::move(data)) {
  APPEAL_CHECK(data_.size() == shape_.element_count(),
               "data size does not match shape " + shape_.to_string());
}

tensor tensor::randn(shape s, util::rng& gen, float mean, float stddev) {
  tensor out(std::move(s));
  for (auto& v : out.data_) {
    v = static_cast<float>(gen.normal(mean, stddev));
  }
  return out;
}

tensor tensor::rand_uniform(shape s, util::rng& gen, float lo, float hi) {
  tensor out(std::move(s));
  for (auto& v : out.data_) {
    v = gen.uniform(lo, hi);
  }
  return out;
}

float& tensor::at(std::size_t flat) {
  APPEAL_CHECK(flat < data_.size(), "flat index out of range");
  return data_[flat];
}

float tensor::at(std::size_t flat) const {
  APPEAL_CHECK(flat < data_.size(), "flat index out of range");
  return data_[flat];
}

float& tensor::at(const std::vector<std::size_t>& index) {
  return data_[shape_.flat_index(index)];
}

float tensor::at(const std::vector<std::size_t>& index) const {
  return data_[shape_.flat_index(index)];
}

tensor tensor::reshaped(shape new_shape) const {
  APPEAL_CHECK(new_shape.element_count() == data_.size(),
               "reshape element count mismatch: " + shape_.to_string() +
                   " -> " + new_shape.to_string());
  tensor out = *this;
  out.shape_ = std::move(new_shape);
  return out;
}

void tensor::reshape(shape new_shape) {
  APPEAL_CHECK(new_shape.element_count() == data_.size(),
               "reshape element count mismatch: " + shape_.to_string() +
                   " -> " + new_shape.to_string());
  shape_ = std::move(new_shape);
}

std::vector<float> tensor::take_data() && {
  shape_ = shape();
  return std::move(data_);
}

void tensor::fill(float value) {
  for (auto& v : data_) v = value;
}

bool tensor::has_non_finite() const {
  for (const float v : data_) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

}  // namespace appeal
