#include "tensor/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace appeal::ops {

namespace {

// GotoBLAS-style blocking: C is computed in MC x NC macro-tiles from an
// A-panel packed [MC x KC] (per thread, lives in L2) and a B-panel packed
// [KC x NC] (shared per call, streamed from L3). The register microkernel
// is MR x NR = 8 rows by one-or-two SIMD cache lines: 8 matches the
// model zoo's channel counts (16/32/64/128), so panels are never padded,
// and the row count keeps enough independent accumulators in flight to
// cover FMA latency. With 512-bit vectors the tile widens to 32 columns
// (two zmm per row, 16 zmm accumulators): each k-step then amortizes its
// 8 scalar broadcasts over twice the FMAs, which the narrower
// SSE/AVX-width register files cannot hold without spilling.
constexpr std::size_t MR = 8;
#if defined(__AVX512F__)
constexpr std::size_t NR = 32;
#else
constexpr std::size_t NR = 16;
#endif
constexpr std::size_t MC = 128;   // multiple of MR
constexpr std::size_t NC = 2048;  // multiple of NR
constexpr std::size_t KC = 256;

// Below this MAC count the packing overhead outweighs the cache wins
// (depthwise-conv GEMMs, the predictor head); a direct register loop is
// faster.
constexpr std::size_t kSmallFlops = 32 * 32 * 32;

/// Generic element accessor: M(i, j) = p[i * row_stride + j * col_stride].
/// Covers A, A^T, B and B^T with one packing routine each.
struct matrix_view {
  const float* p;
  std::size_t row_stride;
  std::size_t col_stride;

  float at(std::size_t i, std::size_t j) const {
    return p[i * row_stride + j * col_stride];
  }
};

/// Optional fused store epilogue: per-row bias plus activation clamp,
/// applied exactly once, in the pass that stores the final K block.
struct store_epilogue {
  const float* bias = nullptr;  // per row of C, may be null
  float act_lo = -std::numeric_limits<float>::infinity();
  float act_hi = std::numeric_limits<float>::infinity();
};

void scale_c(std::size_t m, std::size_t n, float beta, float* c) {
  if (beta == 1.0F) return;
  const std::size_t total = m * n;
  if (beta == 0.0F) {
    for (std::size_t i = 0; i < total; ++i) c[i] = 0.0F;
  } else {
    for (std::size_t i = 0; i < total; ++i) c[i] *= beta;
  }
}

/// Packs rows [i0, i0+mc) x cols [p0, p0+kc) of A into MR-row panels:
/// panel r holds ap[(r * kc + kk) * MR + i] = A(i0 + r*MR + i, p0 + kk),
/// zero-padded past the edge so the microkernel never branches.
void pack_a(const matrix_view& a, std::size_t i0, std::size_t p0,
            std::size_t mc, std::size_t kc, float* ap) {
  for (std::size_t r = 0; r * MR < mc; ++r) {
    const std::size_t rows = std::min(MR, mc - r * MR);
    for (std::size_t kk = 0; kk < kc; ++kk) {
      float* dst = ap + (r * kc + kk) * MR;
      const float* src = a.p + (i0 + r * MR) * a.row_stride +
                         (p0 + kk) * a.col_stride;
      std::size_t i = 0;
      for (; i < rows; ++i) dst[i] = src[i * a.row_stride];
      for (; i < MR; ++i) dst[i] = 0.0F;
    }
  }
}

/// Packs rows [p0, p0+kc) x cols [j0, j0+nc) of B into NR-column panels:
/// panel q holds bp[(q * kc + kk) * NR + j] = B(p0 + kk, j0 + q*NR + j),
/// zero-padded past the edge.
void pack_b(const matrix_view& b, std::size_t p0, std::size_t j0,
            std::size_t kc, std::size_t nc, float* bp) {
  for (std::size_t q = 0; q * NR < nc; ++q) {
    const std::size_t cols = std::min(NR, nc - q * NR);
    for (std::size_t kk = 0; kk < kc; ++kk) {
      float* dst = bp + (q * kc + kk) * NR;
      const float* src = b.p + (p0 + kk) * b.row_stride +
                         (j0 + q * NR) * b.col_stride;
      std::size_t j = 0;
      for (; j < cols; ++j) dst[j] = src[j * b.col_stride];
      for (; j < NR; ++j) dst[j] = 0.0F;
    }
  }
}

/// acc[MR][NR] = Apanel^T * Bpanel over kc steps (kc >= 1). The first
/// k-step assigns instead of accumulating, so the tile needs no zero-fill
/// pass. `ap` walks MR floats per step, `bp` walks NR; both are
/// contiguous, so the inner loop is one aligned SIMD row FMA.
void micro_kernel(std::size_t kc, const float* ap, const float* bp,
                  float* acc) {
  for (std::size_t i = 0; i < MR; ++i) {
    const float a = ap[i];
    float* row = acc + i * NR;
#pragma omp simd
    for (std::size_t j = 0; j < NR; ++j) row[j] = a * bp[j];
  }
  ap += MR;
  bp += NR;
  for (std::size_t kk = 1; kk < kc; ++kk, ap += MR, bp += NR) {
    for (std::size_t i = 0; i < MR; ++i) {
      const float a = ap[i];
      float* row = acc + i * NR;
#pragma omp simd
      for (std::size_t j = 0; j < NR; ++j) row[j] += a * bp[j];
    }
  }
}

/// Writes one register tile into C. The first K-block applies alpha/beta
/// (beta == 0 overwrites, so stale C values — even NaN — never leak);
/// later K-blocks accumulate. When this store completes the final K block
/// and an epilogue is attached, bias and clamp ride the same pass —
/// `bias` arrives pre-offset to this tile's first row.
void store_tile(float* c, std::size_t ldc, const float* acc, std::size_t mr,
                std::size_t nr, float alpha, float beta, bool first_k_block,
                const store_epilogue* epi, const float* bias) {
  for (std::size_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    const float* arow = acc + i * NR;
    if (epi != nullptr) {
      const float b = bias != nullptr ? bias[i] : 0.0F;
      for (std::size_t j = 0; j < nr; ++j) {
        float v = first_k_block ? alpha * arow[j] : crow[j] + alpha * arow[j];
        v += b;
        v = std::min(std::max(v, epi->act_lo), epi->act_hi);
        crow[j] = v;
      }
      continue;
    }
    if (!first_k_block) {
      for (std::size_t j = 0; j < nr; ++j) crow[j] += alpha * arow[j];
    } else if (beta == 0.0F) {
      for (std::size_t j = 0; j < nr; ++j) crow[j] = alpha * arow[j];
    } else {
      for (std::size_t j = 0; j < nr; ++j) {
        crow[j] = alpha * arow[j] + beta * crow[j];
      }
    }
  }
}

/// One MC-row block of the macrokernel: pack this thread's A panel, then
/// sweep the packed B panels. Each block writes a disjoint row range of C
/// and runs its arithmetic in a fixed order, so results are bit-identical
/// no matter which thread (or how many) execute the blocks.
void run_m_block(const matrix_view& a, std::size_t i0, std::size_t mc,
                 std::size_t p0, std::size_t kc, std::size_t j0,
                 std::size_t nc, const float* bp, float alpha, float beta,
                 bool first_k_block, const store_epilogue* epi, float* c,
                 std::size_t ldc) {
  thread_local std::vector<float> apack;
  apack.resize(((mc + MR - 1) / MR) * MR * kc);
  pack_a(a, i0, p0, mc, kc, apack.data());

  alignas(64) float acc[MR * NR];
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t nr = std::min(NR, nc - jr);
    const float* bpanel = bp + (jr / NR) * kc * NR;
    for (std::size_t ir = 0; ir < mc; ir += MR) {
      const std::size_t mr = std::min(MR, mc - ir);
      micro_kernel(kc, apack.data() + (ir / MR) * kc * MR, bpanel, acc);
      const float* bias = epi != nullptr && epi->bias != nullptr
                              ? epi->bias + i0 + ir
                              : nullptr;
      store_tile(c + (i0 + ir) * ldc + (j0 + jr), ldc, acc, mr, nr, alpha,
                 beta, first_k_block, epi, bias);
    }
  }
}

std::atomic<std::size_t> gemm_thread_count{0};  // 0 = uninitialized

/// The shared pool runs one job at a time; concurrent GEMMs (e.g. several
/// serve::engine workers) fall back to single-threaded execution instead
/// of queueing, which keeps latency flat and results identical.
std::mutex gemm_pool_mutex;

/// Packed, cache-blocked GEMM over generic views:
/// C = alpha * A[m x k] * B[k x n] + beta * C.
void gemm_packed(std::size_t m, std::size_t n, std::size_t k, float alpha,
                 const matrix_view& a, const matrix_view& b, float beta,
                 const store_epilogue* epi, float* c, std::size_t ldc) {
  thread_local std::vector<float> bpack;
  const std::size_t threads = gemm_threads();

  for (std::size_t jc = 0; jc < n; jc += NC) {
    const std::size_t nc = std::min(NC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += KC) {
      const std::size_t kc = std::min(KC, k - pc);
      bpack.resize(((nc + NR - 1) / NR) * NR * kc);
      pack_b(b, pc, jc, kc, nc, bpack.data());
      const bool first = pc == 0;
      // The epilogue fires only on the store of the final K block.
      const store_epilogue* block_epi = pc + kc == k ? epi : nullptr;

      const std::size_t blocks = (m + MC - 1) / MC;
      // NB: thread_locals are not captured — name the caller's packed-B
      // pointer in a local so pool workers see THIS thread's buffer, not
      // their own (empty) bpack.
      const float* packed_b = bpack.data();
      const auto run_block = [&](std::size_t blk) {
        const std::size_t i0 = blk * MC;
        run_m_block(a, i0, std::min(MC, m - i0), pc, kc, jc, nc, packed_b,
                    alpha, beta, first, block_epi, c, ldc);
      };
      if (threads > 1 && blocks > 1) {
        std::unique_lock<std::mutex> pool_lock(gemm_pool_mutex,
                                               std::try_to_lock);
        if (pool_lock.owns_lock()) {
          util::thread_pool::shared().parallel_for(blocks, run_block);
          continue;
        }
      }
      for (std::size_t blk = 0; blk < blocks; ++blk) run_block(blk);
    }
  }
}

/// Direct register loop for shapes too small to amortize packing.
void gemm_small(std::size_t m, std::size_t n, std::size_t k, float alpha,
                const matrix_view& a, const matrix_view& b, float beta,
                const store_epilogue* epi, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    const float bias =
        epi != nullptr && epi->bias != nullptr ? epi->bias[i] : 0.0F;
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0F;
      const float* pa = a.p + i * a.row_stride;
      const float* pb = b.p + j * b.col_stride;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += pa[kk * a.col_stride] * pb[kk * b.row_stride];
      }
      float v = alpha * acc;
      if (epi != nullptr) {
        v += bias;
        v = std::min(std::max(v, epi->act_lo), epi->act_hi);
        crow[j] = v;
      } else if (beta == 0.0F) {
        crow[j] = v;
      } else {
        crow[j] = v + beta * crow[j];
      }
    }
  }
}

void gemm_dispatch(std::size_t m, std::size_t n, std::size_t k, float alpha,
                   const matrix_view& a, const matrix_view& b, float beta,
                   const store_epilogue* epi, float* c) {
  if (alpha == 0.0F || m == 0 || n == 0 || k == 0) {
    if (epi != nullptr) {
      // Degenerate product is all zeros; the epilogue still applies.
      for (std::size_t i = 0; i < m; ++i) {
        const float b = epi->bias != nullptr ? epi->bias[i] : 0.0F;
        const float v = std::min(std::max(b, epi->act_lo), epi->act_hi);
        for (std::size_t j = 0; j < n; ++j) c[i * n + j] = v;
      }
      return;
    }
    scale_c(m, n, beta, c);
    return;
  }
  if (m * n * k <= kSmallFlops) {
    gemm_small(m, n, k, alpha, a, b, beta, epi, c);
  } else {
    gemm_packed(m, n, k, alpha, a, b, beta, epi, c, n);
  }
}

}  // namespace

std::size_t gemm_threads() {
  // Magic-static init: exactly one thread parses the environment and
  // (for > 1) builds the shared pool, even when several engine workers
  // hit their first GEMM concurrently. The relaxed store below can race
  // only with itself and writes the same value.
  static const std::size_t env_default = [] {
    std::size_t t = 1;
    if (const char* env = std::getenv("APPEAL_GEMM_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 1) t = static_cast<std::size_t>(parsed);
    }
    if (t > 1) util::thread_pool::set_shared_size(t);
    return t;
  }();
  const std::size_t t = gemm_thread_count.load(std::memory_order_relaxed);
  if (t == 0) {
    gemm_thread_count.store(env_default, std::memory_order_relaxed);
    return env_default;
  }
  return t;
}

void set_gemm_threads(std::size_t threads) {
  const std::size_t t = std::max<std::size_t>(1, threads);
  gemm_thread_count.store(t, std::memory_order_relaxed);
  if (t > 1) util::thread_pool::set_shared_size(t);
}

void sgemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
           const float* a, const float* b, float beta, float* c) {
  gemm_dispatch(m, n, k, alpha, matrix_view{a, k, 1}, matrix_view{b, n, 1},
                beta, nullptr, c);
}

void sgemm_at(std::size_t m, std::size_t n, std::size_t k, float alpha,
              const float* a, const float* b, float beta, float* c) {
  // A stored [k x m]: A^T(i, kk) = a[kk * m + i].
  gemm_dispatch(m, n, k, alpha, matrix_view{a, 1, m}, matrix_view{b, n, 1},
                beta, nullptr, c);
}

void sgemm_bt(std::size_t m, std::size_t n, std::size_t k, float alpha,
              const float* a, const float* b, float beta, float* c) {
  // B stored [n x k]: B^T(kk, j) = b[j * k + kk].
  gemm_dispatch(m, n, k, alpha, matrix_view{a, k, 1}, matrix_view{b, 1, k},
                beta, nullptr, c);
}

void sgemm_bias_act(std::size_t m, std::size_t n, std::size_t k, float alpha,
                    const float* a, const float* b, const float* bias,
                    float act_lo, float act_hi, float* c) {
  const store_epilogue epi{bias, act_lo, act_hi};
  gemm_dispatch(m, n, k, alpha, matrix_view{a, k, 1}, matrix_view{b, n, 1},
                0.0F, &epi, c);
}

tensor matmul(const tensor& a, const tensor& b) {
  APPEAL_CHECK(a.dims().rank() == 2 && b.dims().rank() == 2,
               "matmul expects rank-2 tensors");
  const std::size_t m = a.dims().dim(0);
  const std::size_t k = a.dims().dim(1);
  APPEAL_CHECK(b.dims().dim(0) == k,
               "matmul inner dimension mismatch: " + a.dims().to_string() +
                   " x " + b.dims().to_string());
  const std::size_t n = b.dims().dim(1);
  // The kernel fully overwrites C (beta == 0 writes, never reads), so the
  // zero-fill tensor(shape) would do is redundant — but std::vector has no
  // uninitialized-alloc path. sgemm itself no longer double-clears: beta
  // is applied at the tile store, in the same pass as the product.
  tensor c(shape{m, n});
  sgemm(m, n, k, 1.0F, a.data(), b.data(), 0.0F, c.data());
  return c;
}

}  // namespace appeal::ops
