#include "tensor/gemm.hpp"

#include <vector>

#include "util/error.hpp"

namespace appeal::ops {

namespace {

// Block sizes chosen so one A-panel + one B-panel fit in L1/L2 on typical
// x86 cores; the inner kernel is written so GCC auto-vectorizes the n-loop.
constexpr std::size_t block_m = 64;
constexpr std::size_t block_n = 256;
constexpr std::size_t block_k = 128;

void scale_c(std::size_t m, std::size_t n, float beta, float* c) {
  if (beta == 1.0F) return;
  const std::size_t total = m * n;
  if (beta == 0.0F) {
    for (std::size_t i = 0; i < total; ++i) c[i] = 0.0F;
  } else {
    for (std::size_t i = 0; i < total; ++i) c[i] *= beta;
  }
}

}  // namespace

void sgemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
           const float* a, const float* b, float beta, float* c) {
  scale_c(m, n, beta, c);
  if (alpha == 0.0F || m == 0 || n == 0 || k == 0) return;

  for (std::size_t k0 = 0; k0 < k; k0 += block_k) {
    const std::size_t k1 = std::min(k0 + block_k, k);
    for (std::size_t i0 = 0; i0 < m; i0 += block_m) {
      const std::size_t i1 = std::min(i0 + block_m, m);
      for (std::size_t j0 = 0; j0 < n; j0 += block_n) {
        const std::size_t j1 = std::min(j0 + block_n, n);
        // Micro-kernel: accumulate into C row by row; the innermost loop is
        // over contiguous B/C columns, which GCC vectorizes with FMA.
        for (std::size_t i = i0; i < i1; ++i) {
          float* crow = c + i * n;
          const float* arow = a + i * k;
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const float aik = alpha * arow[kk];
            const float* brow = b + kk * n;
            for (std::size_t j = j0; j < j1; ++j) {
              crow[j] += aik * brow[j];
            }
          }
        }
      }
    }
  }
}

void sgemm_at(std::size_t m, std::size_t n, std::size_t k, float alpha,
              const float* a, const float* b, float beta, float* c) {
  scale_c(m, n, beta, c);
  if (alpha == 0.0F || m == 0 || n == 0 || k == 0) return;
  // A is stored [k x m]; walk k rows and scatter into C rows. Row i of C
  // accumulates a[kk*m + i] * B[kk, :].
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* acol = a + kk * m;
    const float* brow = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aik = alpha * acol[i];
      if (aik == 0.0F) continue;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
}

void sgemm_bt(std::size_t m, std::size_t n, std::size_t k, float alpha,
              const float* a, const float* b, float beta, float* c) {
  scale_c(m, n, beta, c);
  if (alpha == 0.0F || m == 0 || n == 0 || k == 0) return;
  // B is stored [n x k]; each C[i, j] is a dot product of contiguous rows,
  // which vectorizes cleanly.
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0F;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += arow[kk] * brow[kk];
      }
      crow[j] += alpha * acc;
    }
  }
}

tensor matmul(const tensor& a, const tensor& b) {
  APPEAL_CHECK(a.dims().rank() == 2 && b.dims().rank() == 2,
               "matmul expects rank-2 tensors");
  const std::size_t m = a.dims().dim(0);
  const std::size_t k = a.dims().dim(1);
  APPEAL_CHECK(b.dims().dim(0) == k,
               "matmul inner dimension mismatch: " + a.dims().to_string() +
                   " x " + b.dims().to_string());
  const std::size_t n = b.dims().dim(1);
  tensor c(shape{m, n});
  sgemm(m, n, k, 1.0F, a.data(), b.data(), 0.0F, c.data());
  return c;
}

}  // namespace appeal::ops
