// N-dimensional shape for dense row-major tensors.
//
// Image batches use NCHW layout throughout the library.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace appeal {

/// Immutable-ish dimension list with element-count and index helpers.
class shape {
 public:
  shape() = default;
  shape(std::initializer_list<std::size_t> dims) : dims_(dims) {}
  explicit shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {}

  /// Number of axes (0 for a default-constructed scalar-less shape).
  std::size_t rank() const { return dims_.size(); }

  /// Extent of axis `axis`; throws on out-of-range.
  std::size_t dim(std::size_t axis) const;

  /// Total number of elements (1 for rank-0; 0 if any axis is 0).
  std::size_t element_count() const;

  const std::vector<std::size_t>& dims() const { return dims_; }

  /// Row-major strides (innermost axis has stride 1).
  std::vector<std::size_t> strides() const;

  /// Flat offset of a multi-index; size must equal rank, entries in range.
  std::size_t flat_index(const std::vector<std::size_t>& index) const;

  bool operator==(const shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const shape& other) const { return !(*this == other); }

  /// "[2, 3, 4]"-style rendering for error messages.
  std::string to_string() const;

  /// Convenience accessors for NCHW tensors (require rank 4).
  std::size_t batch() const { return dim4(0); }
  std::size_t channels() const { return dim4(1); }
  std::size_t height() const { return dim4(2); }
  std::size_t width() const { return dim4(3); }

 private:
  std::size_t dim4(std::size_t axis) const;

  std::vector<std::size_t> dims_;
};

}  // namespace appeal
