// Quantized int8 GEMM — the compute kernel under the quantized edge path.
//
// C_f32 = epilogue(A_s8[m x k] * B_u8[k x n]) with int32 accumulators,
// following the same GotoBLAS-style packing contract as the float kernel
// (gemm.cpp): A is packed into MR-row panels, B into NR-column panels, and
// a register-tiled microkernel runs the inner loop. Both panels interleave
// k in PAIRS sized for the baseline-x86 pairwise i16 dot-product
// instruction (pmaddwd — two k steps per lane per instruction); B codes
// are widened u8 -> i16 at pack time, A stores each k-pair of a row as one
// broadcastable i32. Unlike the float kernel there is no KC blocking:
// the int32 accumulator tile must survive the whole k extent (the
// requantize epilogue applies exactly once), and at one byte per element
// a full-k panel pair (MR*k + NR*k bytes) stays cache-resident for every
// geometry the model zoo produces.
//
// Quantization scheme (the cloud/edge collaborative convention of
// arXiv:1812.06426 and standard int8 deployments):
//   - weights A: symmetric per-row (= per output channel) s8 grids,
//     zero_point 0 (nn::quant_params with symmetric=true);
//   - activations B: one asymmetric per-tensor u8 grid with zero point z.
// Then real_C[i,j] = s_w[i]*s_act * (sum_k A[i,k]*B[k,j] - z*sum_k A[i,k]),
// so the epilogue needs one combined scale and one precomputed
// -z*row_sum(A) offset per row, plus the float bias and the activation
// clamp — requantize-on-store, fused into the one pass that touches C.
//
// Threading follows gemm.cpp: M-blocks split over the shared
// util::thread_pool (ops::gemm_threads()). Integer accumulation is exact,
// so results are bit-identical for every thread count by construction —
// and pinned by test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace appeal::ops {

/// Strided read-only view of the u8 activation matrix:
/// B(kk, j) = p[kk * row_stride + j * col_stride]. Covers both a plain
/// [k x n] panel (im2col columns) and a transposed [n x k] activation
/// block (qlinear reads x^T without materializing it).
struct u8_view {
  const std::uint8_t* p;
  std::size_t row_stride;
  std::size_t col_stride;
};

/// Requantize-on-store epilogue:
///   C[i,j] = clamp(scale[i] * (acc[i,j] + row_offset[i]) + bias[i]).
/// `scale` is required (per row: weight_scale * activation_scale);
/// `row_offset` is -z * row_sum(A) and may be null when the activation
/// zero point is 0; `bias` may be null; act_lo/act_hi fuse the following
/// ReLU/ReLU6 (defaults leave the value unclamped).
struct qgemm_epilogue {
  const float* scale = nullptr;
  const float* bias = nullptr;
  const std::int32_t* row_offset = nullptr;
  float act_lo = -std::numeric_limits<float>::infinity();
  float act_hi = std::numeric_limits<float>::infinity();
};

/// C[m x n] = epilogue(A_s8[m x k] * B_u8[k x n]); A row-major and
/// contiguous, B an arbitrary-stride view, C stored at
/// c[i * c_row_stride + j * c_col_stride] (a transposed store writes the
/// qlinear output [n x m] without a separate pass). C regions of distinct
/// rows must not alias.
void qgemm_s8u8(std::size_t m, std::size_t n, std::size_t k,
                const std::int8_t* a, const u8_view& b,
                const qgemm_epilogue& epi, float* c, std::size_t c_row_stride,
                std::size_t c_col_stride);

/// Quantizes n floats to an asymmetric u8 grid:
/// q = clamp(round(x / scale) + zero_point, 0, 255), round half away from
/// zero (matches nn::fake_quantize_value, so the real path and the
/// fake-quantized reference agree on every code).
void quantize_u8(const float* src, std::size_t n, float scale,
                 std::int32_t zero_point, std::uint8_t* dst);

/// Per-row sums of a row-major s8 matrix [m x k] — the epilogue's
/// row_offset is -zero_point * row_sum.
void s8_row_sums(const std::int8_t* a, std::size_t m, std::size_t k,
                 std::int32_t* sums);

}  // namespace appeal::ops
