// im2col / col2im — the standard lowering of 2-D convolution to GEMM.
//
// For one image [C, H, W] and a KxK kernel with stride/padding, im2col
// produces a matrix [C*K*K, out_h*out_w] whose columns are the unrolled
// receptive fields; convolution is then weights[OC, C*K*K] * that matrix.
// col2im is the exact adjoint, used by the convolution backward pass.
#pragma once

#include <cstddef>

namespace appeal::ops {

/// Geometry of a conv lowering. Square kernels/strides/padding only — the
/// model zoo in this repo uses none of the rectangular variants.
struct conv_geometry {
  std::size_t channels = 0;
  std::size_t height = 0;
  std::size_t width = 0;
  std::size_t kernel = 1;
  std::size_t stride = 1;
  std::size_t padding = 0;

  std::size_t out_height() const {
    return (height + 2 * padding - kernel) / stride + 1;
  }
  std::size_t out_width() const {
    return (width + 2 * padding - kernel) / stride + 1;
  }
  std::size_t patch_size() const { return channels * kernel * kernel; }
  std::size_t column_count() const { return out_height() * out_width(); }

  /// True when the kernel (with padding) fits inside the image.
  bool valid() const {
    return channels > 0 && kernel > 0 && stride > 0 &&
           height + 2 * padding >= kernel && width + 2 * padding >= kernel;
  }
};

/// Unrolls `image` ([C, H, W] contiguous) into `columns`
/// ([patch_size, column_count] contiguous). Padding reads as zero.
void im2col(const conv_geometry& g, const float* image, float* columns);

/// Strided variant: writes patch row r at columns + r * row_stride
/// (row_stride >= column_count). This lets a batch of N images unroll
/// side by side into one [patch_size, N * column_count] matrix — sample s
/// passes `columns + s * column_count` with row_stride = N * column_count
/// — so a convolution over the whole batch lowers to a single GEMM.
void im2col_strided(const conv_geometry& g, const float* image,
                    float* columns, std::size_t row_stride);

/// Adjoint of im2col: accumulates `columns` back into `image_grad`
/// ([C, H, W]); the caller must zero `image_grad` first if it wants a pure
/// scatter rather than an accumulation.
void col2im(const conv_geometry& g, const float* columns, float* image_grad);

}  // namespace appeal::ops
