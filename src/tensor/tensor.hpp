// Dense float32 tensor.
//
// The training stack needs exactly one storage type: a contiguous row-major
// float tensor. Views/strides are intentionally absent — layers copy where
// reshaping would otherwise alias, which keeps backward passes auditable.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/shape.hpp"

namespace appeal {

namespace util {
class rng;
}  // namespace util

/// Contiguous row-major float32 tensor (NCHW for image batches).
class tensor {
 public:
  /// Empty tensor (rank 0, one uninitialized slot is NOT allocated).
  tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit tensor(shape s);

  /// Tensor of the given shape filled with `fill`.
  tensor(shape s, float fill);

  /// Tensor adopting existing data; data.size() must match the shape.
  tensor(shape s, std::vector<float> data);

  /// Factory helpers.
  static tensor zeros(shape s) { return tensor(std::move(s)); }
  static tensor full(shape s, float value) { return tensor(std::move(s), value); }
  static tensor from_values(shape s, std::vector<float> values) {
    return tensor(std::move(s), std::move(values));
  }
  /// I.i.d. normal entries with the given moments.
  static tensor randn(shape s, util::rng& gen, float mean = 0.0F,
                      float stddev = 1.0F);
  /// I.i.d. uniform entries in [lo, hi).
  static tensor rand_uniform(shape s, util::rng& gen, float lo, float hi);

  const shape& dims() const { return shape_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// NCHW convenience accessors (require rank 4; forwarded to shape).
  std::size_t batch() const { return shape_.batch(); }
  std::size_t channels() const { return shape_.channels(); }
  std::size_t height() const { return shape_.height(); }
  std::size_t width() const { return shape_.width(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> values() { return std::span<float>(data_); }
  std::span<const float> values() const { return std::span<const float>(data_); }

  /// Flat element access with bounds checks in debug-style code paths.
  float& at(std::size_t flat);
  float at(std::size_t flat) const;

  /// Multi-index access (rank-checked).
  float& at(const std::vector<std::size_t>& index);
  float at(const std::vector<std::size_t>& index) const;

  /// Unchecked flat access for hot loops.
  float& operator[](std::size_t flat) { return data_[flat]; }
  float operator[](std::size_t flat) const { return data_[flat]; }

  /// Returns a copy with a new shape; element counts must match.
  tensor reshaped(shape new_shape) const;

  /// In-place reshape; element counts must match.
  void reshape(shape new_shape);

  /// Releases the underlying storage (the tensor becomes empty, rank 0).
  /// Lets buffer pools (nn::inference_workspace) recycle capacity instead
  /// of freeing it.
  std::vector<float> take_data() &&;

  /// Sets every element to `value`.
  void fill(float value);

  /// Sets every element to zero.
  void zero() { fill(0.0F); }

  /// True when any element is NaN or infinite.
  bool has_non_finite() const;

 private:
  shape shape_;
  std::vector<float> data_;
};

}  // namespace appeal
