#include "tensor/tensor_ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace appeal::ops {

namespace {

void check_same_shape(const tensor& a, const tensor& b, const char* op) {
  APPEAL_CHECK(a.dims() == b.dims(), std::string(op) + ": shape mismatch " +
                                         a.dims().to_string() + " vs " +
                                         b.dims().to_string());
}

void check_matrix(const tensor& m, const char* op) {
  APPEAL_CHECK(m.dims().rank() == 2,
               std::string(op) + ": expected a rank-2 tensor, got " +
                   m.dims().to_string());
}

}  // namespace

tensor add(const tensor& a, const tensor& b) {
  check_same_shape(a, b, "add");
  tensor out = a;
  add_inplace(out, b);
  return out;
}

void add_inplace(tensor& a, const tensor& b) {
  check_same_shape(a, b, "add_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) pa[i] += pb[i];
}

void axpy(tensor& a, float alpha, const tensor& b) {
  check_same_shape(a, b, "axpy");
  float* pa = a.data();
  const float* pb = b.data();
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) pa[i] += alpha * pb[i];
}

tensor subtract(const tensor& a, const tensor& b) {
  check_same_shape(a, b, "subtract");
  tensor out = a;
  float* po = out.data();
  const float* pb = b.data();
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) po[i] -= pb[i];
  return out;
}

tensor multiply(const tensor& a, const tensor& b) {
  check_same_shape(a, b, "multiply");
  tensor out = a;
  float* po = out.data();
  const float* pb = b.data();
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) po[i] *= pb[i];
  return out;
}

tensor scale(const tensor& a, float scalar) {
  tensor out = a;
  scale_inplace(out, scalar);
  return out;
}

void scale_inplace(tensor& a, float scalar) {
  float* pa = a.data();
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) pa[i] *= scalar;
}

double sum(const tensor& a) {
  double total = 0.0;
  for (const float v : a.values()) total += v;
  return total;
}

double mean(const tensor& a) {
  if (a.size() == 0) return 0.0;
  return sum(a) / static_cast<double>(a.size());
}

float max_value(const tensor& a) {
  APPEAL_CHECK(a.size() > 0, "max_value on empty tensor");
  return *std::max_element(a.values().begin(), a.values().end());
}

std::size_t argmax(const tensor& a) {
  APPEAL_CHECK(a.size() > 0, "argmax on empty tensor");
  return static_cast<std::size_t>(
      std::max_element(a.values().begin(), a.values().end()) -
      a.values().begin());
}

std::vector<std::size_t> argmax_rows(const tensor& matrix) {
  check_matrix(matrix, "argmax_rows");
  const std::size_t rows = matrix.dims().dim(0);
  const std::size_t cols = matrix.dims().dim(1);
  APPEAL_CHECK(cols > 0, "argmax_rows on zero-width matrix");
  std::vector<std::size_t> out(rows, 0);
  const float* p = matrix.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = p + r * cols;
    out[r] = static_cast<std::size_t>(std::max_element(row, row + cols) - row);
  }
  return out;
}

tensor softmax_rows(const tensor& logits) {
  check_matrix(logits, "softmax_rows");
  const std::size_t rows = logits.dims().dim(0);
  const std::size_t cols = logits.dims().dim(1);
  tensor out(logits.dims());
  const float* in = logits.data();
  float* po = out.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = in + r * cols;
    float* orow = po + r * cols;
    const float m = *std::max_element(row, row + cols);
    float total = 0.0F;
    for (std::size_t c = 0; c < cols; ++c) {
      orow[c] = std::exp(row[c] - m);
      total += orow[c];
    }
    const float inv = 1.0F / total;
    for (std::size_t c = 0; c < cols; ++c) orow[c] *= inv;
  }
  return out;
}

tensor log_softmax_rows(const tensor& logits) {
  check_matrix(logits, "log_softmax_rows");
  const std::size_t rows = logits.dims().dim(0);
  const std::size_t cols = logits.dims().dim(1);
  tensor out(logits.dims());
  const float* in = logits.data();
  float* po = out.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = in + r * cols;
    float* orow = po + r * cols;
    const float m = *std::max_element(row, row + cols);
    float total = 0.0F;
    for (std::size_t c = 0; c < cols; ++c) total += std::exp(row[c] - m);
    const float log_z = m + std::log(total);
    for (std::size_t c = 0; c < cols; ++c) orow[c] = row[c] - log_z;
  }
  return out;
}

tensor sigmoid(const tensor& a) {
  tensor out = a;
  for (auto& v : out.values()) {
    v = 1.0F / (1.0F + std::exp(-v));
  }
  return out;
}

double l2_norm(const tensor& a) {
  double total = 0.0;
  for (const float v : a.values()) total += static_cast<double>(v) * v;
  return std::sqrt(total);
}

float max_abs_diff(const tensor& a, const tensor& b) {
  check_same_shape(a, b, "max_abs_diff");
  float worst = 0.0F;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(pa[i] - pb[i]));
  }
  return worst;
}

void clamp_inplace(tensor& a, float lo, float hi) {
  APPEAL_CHECK(lo <= hi, "clamp_inplace requires lo <= hi");
  for (auto& v : a.values()) v = std::clamp(v, lo, hi);
}

tensor transpose(const tensor& matrix) {
  check_matrix(matrix, "transpose");
  const std::size_t rows = matrix.dims().dim(0);
  const std::size_t cols = matrix.dims().dim(1);
  tensor out(shape{cols, rows});
  const float* in = matrix.data();
  float* po = out.data();
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      po[c * rows + r] = in[r * cols + c];
    }
  }
  return out;
}

}  // namespace appeal::ops
