#include "tensor/gemm_s8.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "tensor/gemm.hpp"
#include "util/thread_pool.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace appeal::ops {

namespace {

// Register-tile geometry is chosen for the baseline-x86 integer ISA: the
// workhorse is the SSE2 pairwise dot-product (pmaddwd), which multiplies
// eight i16 lanes and horizontally adds adjacent pairs into four i32
// accumulators — two k steps per instruction. Both panels are therefore
// packed in interleaved k-PAIRS: B is zero-extended u8 -> i16 with the
// two k codes of each column adjacent, and A stores each row's k-pair as
// one i32 (low half = code at even k, high half = odd k), so the kernel
// broadcasts it straight into the pmaddwd multiplier. A 6x8 i32
// accumulator tile (12 of 16 xmm registers) leaves room for the two B
// vectors and the broadcast.
constexpr std::size_t MR = 6;
constexpr std::size_t NR = 8;
constexpr std::size_t MC = 120;   // multiple of MR
constexpr std::size_t NC = 2048;  // multiple of NR

// Below this MAC count the packing overhead outweighs the cache wins;
// a direct loop with the same arithmetic is faster.
constexpr std::size_t kSmallMacs = 32 * 32 * 32;

std::size_t k_pairs(std::size_t k) { return (k + 1) / 2; }

/// Packs rows [i0, i0+mc) of A (row-major s8 [m x lda], full k extent)
/// into MR-row panels of i32 k-pair codes:
/// ap[(r * kp + p) * MR + i] = pair(A(i0+r*MR+i, 2p), A(.., 2p+1)),
/// zero-padded past the row edge and past odd k so the microkernel never
/// branches (a zero A code contributes 0 * B = 0).
void pack_a_pairs(const std::int8_t* a, std::size_t lda, std::size_t i0,
                  std::size_t mc, std::size_t k, std::int32_t* ap) {
  const std::size_t kp = k_pairs(k);
  for (std::size_t r = 0; r * MR < mc; ++r) {
    const std::size_t rows = std::min(MR, mc - r * MR);
    for (std::size_t p = 0; p < kp; ++p) {
      std::int32_t* dst = ap + (r * kp + p) * MR;
      std::size_t i = 0;
      for (; i < rows; ++i) {
        const std::int8_t* src = a + (i0 + r * MR + i) * lda;
        const std::int32_t a0 = src[2 * p];
        const std::int32_t a1 =
            2 * p + 1 < k ? static_cast<std::int32_t>(src[2 * p + 1]) : 0;
        dst[i] = static_cast<std::int32_t>(
                     static_cast<std::uint16_t>(static_cast<std::int16_t>(a0))) |
                 (a1 << 16);
      }
      for (; i < MR; ++i) dst[i] = 0;
    }
  }
}

/// Packs cols [j0, j0+nc) of the B view into NR-column i16 panels with the
/// k pairs of each column interleaved:
/// bp[(q * kp + p) * 2 * NR + 2 * j + t] = B(2p + t, j0 + q*NR + j),
/// zero-padded past the column edge and past odd k. Padded columns only
/// feed accumulator lanes the store pass never reads.
void pack_b_pairs(const u8_view& b, std::size_t j0, std::size_t nc,
                  std::size_t k, std::int16_t* bp) {
  const std::size_t kp = k_pairs(k);
  for (std::size_t q = 0; q * NR < nc; ++q) {
    const std::size_t cols = std::min(NR, nc - q * NR);
    for (std::size_t p = 0; p < kp; ++p) {
      std::int16_t* dst = bp + (q * kp + p) * 2 * NR;
      const std::uint8_t* row0 = b.p + (2 * p) * b.row_stride;
      const std::uint8_t* row1 = row0 + b.row_stride;
      const bool has_odd = 2 * p + 1 < k;
      std::size_t j = 0;
      for (; j < cols; ++j) {
        const std::size_t col = (j0 + q * NR + j) * b.col_stride;
        dst[2 * j] = static_cast<std::int16_t>(row0[col]);
        dst[2 * j + 1] =
            has_odd ? static_cast<std::int16_t>(row1[col]) : std::int16_t{0};
      }
      for (; j < NR; ++j) {
        dst[2 * j] = 0;
        dst[2 * j + 1] = 0;
      }
    }
  }
}

/// acc_i32[MR][NR] = Apanel * Bpanel over all kp k-pairs. Products are at
/// most 127 * 255, so an i16 x i16 multiply is exact and the pairwise i32
/// add cannot overflow; i32 accumulation is exact for every k the model
/// zoo produces (overflow needs k > 2^31 / 32385).
#if defined(__SSE2__)
void micro_kernel_q(std::size_t kp, const std::int32_t* ap,
                    const std::int16_t* bp, std::int32_t* acc) {
  __m128i acc0[MR];
  __m128i acc1[MR];
  for (std::size_t i = 0; i < MR; ++i) {
    acc0[i] = _mm_setzero_si128();
    acc1[i] = _mm_setzero_si128();
  }
  for (std::size_t p = 0; p < kp; ++p, ap += MR, bp += 2 * NR) {
    const __m128i vb0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp));
    const __m128i vb1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp + NR));
    for (std::size_t i = 0; i < MR; ++i) {
      const __m128i va = _mm_set1_epi32(ap[i]);
      acc0[i] = _mm_add_epi32(acc0[i], _mm_madd_epi16(va, vb0));
      acc1[i] = _mm_add_epi32(acc1[i], _mm_madd_epi16(va, vb1));
    }
  }
  for (std::size_t i = 0; i < MR; ++i) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i * NR), acc0[i]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i * NR + 4), acc1[i]);
  }
}
#else
void micro_kernel_q(std::size_t kp, const std::int32_t* ap,
                    const std::int16_t* bp, std::int32_t* acc) {
  for (std::size_t i = 0; i < MR * NR; ++i) acc[i] = 0;
  for (std::size_t p = 0; p < kp; ++p, ap += MR, bp += 2 * NR) {
    for (std::size_t i = 0; i < MR; ++i) {
      const std::int32_t pair = ap[i];
      const std::int32_t a0 =
          static_cast<std::int16_t>(pair & 0xFFFF);
      const std::int32_t a1 = pair >> 16;
      std::int32_t* row = acc + i * NR;
#pragma omp simd
      for (std::size_t j = 0; j < NR; ++j) {
        row[j] += a0 * bp[2 * j] + a1 * bp[2 * j + 1];
      }
    }
  }
}
#endif

/// Requantize-on-store: one pass applies offset, scale, bias, and the
/// fused activation clamp, then writes C through the strided layout.
void store_tile_q(float* c, std::size_t c_row_stride, std::size_t c_col_stride,
                  const std::int32_t* acc, std::size_t i_global,
                  std::size_t mr, std::size_t nr, const qgemm_epilogue& epi) {
  for (std::size_t i = 0; i < mr; ++i) {
    const std::size_t row = i_global + i;
    const std::int32_t off =
        epi.row_offset != nullptr ? epi.row_offset[row] : 0;
    const float scale = epi.scale[row];
    const float bias = epi.bias != nullptr ? epi.bias[row] : 0.0F;
    const std::int32_t* arow = acc + i * NR;
    float* crow = c + row * c_row_stride;
    for (std::size_t j = 0; j < nr; ++j) {
      float v = scale * static_cast<float>(arow[j] + off) + bias;
      v = std::min(std::max(v, epi.act_lo), epi.act_hi);
      crow[j * c_col_stride] = v;
    }
  }
}

/// One MC-row block: pack this thread's A panels, sweep the shared packed
/// B panels. Each block owns a disjoint row range of C; integer
/// accumulation is exact, so any thread assignment computes identical
/// bits.
void run_m_block_q(const std::int8_t* a, std::size_t lda, std::size_t i0,
                   std::size_t mc, std::size_t k, std::size_t j0,
                   std::size_t nc, const std::int16_t* bp,
                   const qgemm_epilogue& epi, float* c,
                   std::size_t c_row_stride, std::size_t c_col_stride) {
  const std::size_t kp = k_pairs(k);
  thread_local std::vector<std::int32_t> apack;
  apack.resize(((mc + MR - 1) / MR) * kp * MR);
  pack_a_pairs(a, lda, i0, mc, k, apack.data());

  alignas(64) std::int32_t acc[MR * NR];
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t nr = std::min(NR, nc - jr);
    const std::int16_t* bpanel = bp + (jr / NR) * kp * 2 * NR;
    for (std::size_t ir = 0; ir < mc; ir += MR) {
      const std::size_t mr = std::min(MR, mc - ir);
      micro_kernel_q(kp, apack.data() + (ir / MR) * kp * MR, bpanel, acc);
      store_tile_q(c + (j0 + jr) * c_col_stride, c_row_stride, c_col_stride,
                   acc, i0 + ir, mr, nr, epi);
    }
  }
}

/// Direct loop for shapes too small to amortize packing — identical
/// integer arithmetic, same epilogue.
void qgemm_small(std::size_t m, std::size_t n, std::size_t k,
                 const std::int8_t* a, const u8_view& b,
                 const qgemm_epilogue& epi, float* c,
                 std::size_t c_row_stride, std::size_t c_col_stride) {
  for (std::size_t i = 0; i < m; ++i) {
    const std::int8_t* arow = a + i * k;
    const std::int32_t off =
        epi.row_offset != nullptr ? epi.row_offset[i] : 0;
    const float scale = epi.scale[i];
    const float bias = epi.bias != nullptr ? epi.bias[i] : 0.0F;
    float* crow = c + i * c_row_stride;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint8_t* bcol = b.p + j * b.col_stride;
      std::int32_t acc = 0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int32_t>(arow[kk]) *
               static_cast<std::int32_t>(bcol[kk * b.row_stride]);
      }
      float v = scale * static_cast<float>(acc + off) + bias;
      v = std::min(std::max(v, epi.act_lo), epi.act_hi);
      crow[j * c_col_stride] = v;
    }
  }
}

/// The shared pool runs one job at a time; concurrent quantized GEMMs
/// (several serve::engine workers) fall back to single-threaded execution
/// instead of queueing — same policy as the float kernel.
std::mutex qgemm_pool_mutex;

}  // namespace

void qgemm_s8u8(std::size_t m, std::size_t n, std::size_t k,
                const std::int8_t* a, const u8_view& b,
                const qgemm_epilogue& epi, float* c, std::size_t c_row_stride,
                std::size_t c_col_stride) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    for (std::size_t i = 0; i < m; ++i) {
      const std::int32_t off =
          epi.row_offset != nullptr ? epi.row_offset[i] : 0;
      const float bias = epi.bias != nullptr ? epi.bias[i] : 0.0F;
      float v = epi.scale[i] * static_cast<float>(off) + bias;
      v = std::min(std::max(v, epi.act_lo), epi.act_hi);
      for (std::size_t j = 0; j < n; ++j) {
        c[i * c_row_stride + j * c_col_stride] = v;
      }
    }
    return;
  }
  if (m * n * k <= kSmallMacs) {
    qgemm_small(m, n, k, a, b, epi, c, c_row_stride, c_col_stride);
    return;
  }

  const std::size_t kp = k_pairs(k);
  thread_local std::vector<std::int16_t> bpack;
  const std::size_t threads = gemm_threads();
  for (std::size_t jc = 0; jc < n; jc += NC) {
    const std::size_t nc = std::min(NC, n - jc);
    bpack.resize(((nc + NR - 1) / NR) * kp * 2 * NR);
    pack_b_pairs(b, jc, nc, k, bpack.data());

    const std::size_t blocks = (m + MC - 1) / MC;
    // Name the caller's packed-B pointer in a local so pool workers see
    // THIS thread's buffer, not their own thread_local.
    const std::int16_t* packed_b = bpack.data();
    const auto run_block = [&](std::size_t blk) {
      const std::size_t i0 = blk * MC;
      run_m_block_q(a, k, i0, std::min(MC, m - i0), k, jc, nc, packed_b, epi,
                    c, c_row_stride, c_col_stride);
    };
    if (threads > 1 && blocks > 1) {
      std::unique_lock<std::mutex> pool_lock(qgemm_pool_mutex,
                                             std::try_to_lock);
      if (pool_lock.owns_lock()) {
        util::thread_pool::shared().parallel_for(blocks, run_block);
        continue;
      }
    }
    for (std::size_t blk = 0; blk < blocks; ++blk) run_block(blk);
  }
}

void quantize_u8(const float* src, std::size_t n, float scale,
                 std::int32_t zero_point, std::uint8_t* dst) {
  const float inv = 1.0F / scale;
  // Round half away from zero — the same tie behaviour as
  // nn::fake_quantize_value's lround, so real and fake paths agree on
  // every code. Vectorized as trunc(x + copysign(0.5, x)): identical
  // operations to the scalar tail (multiply, +-0.5, truncate), so both
  // paths produce the same code for every input. The two saturating
  // packs (i32 -> i16 -> u8) implement the [0, 255] clamp.
  const __m128 vinv = _mm_set1_ps(inv);
  const __m128 vhalf = _mm_set1_ps(0.5F);
  const __m128 vsign = _mm_set1_ps(-0.0F);
  const __m128i vzp = _mm_set1_epi32(zero_point);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i q[4];
    for (int v = 0; v < 4; ++v) {
      const __m128 x = _mm_mul_ps(_mm_loadu_ps(src + i + 4 * v), vinv);
      const __m128 half = _mm_or_ps(vhalf, _mm_and_ps(x, vsign));
      q[v] = _mm_add_epi32(_mm_cvttps_epi32(_mm_add_ps(x, half)), vzp);
    }
    const __m128i lo = _mm_packs_epi32(q[0], q[1]);
    const __m128i hi = _mm_packs_epi32(q[2], q[3]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_packus_epi16(lo, hi));
  }
  for (; i < n; ++i) {
    const float scaled = src[i] * inv;
    const float rounded =
        scaled >= 0.0F ? scaled + 0.5F : scaled - 0.5F;
    std::int32_t q = static_cast<std::int32_t>(rounded) + zero_point;
    q = std::min(std::max(q, 0), 255);
    dst[i] = static_cast<std::uint8_t>(q);
  }
}

void s8_row_sums(const std::int8_t* a, std::size_t m, std::size_t k,
                 std::int32_t* sums) {
  for (std::size_t i = 0; i < m; ++i) {
    const std::int8_t* row = a + i * k;
    std::int32_t acc = 0;
    for (std::size_t kk = 0; kk < k; ++kk) acc += row[kk];
    sums[i] = acc;
  }
}

}  // namespace appeal::ops
