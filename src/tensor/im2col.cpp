#include "tensor/im2col.hpp"

#include "util/error.hpp"

namespace appeal::ops {

void im2col(const conv_geometry& g, const float* image, float* columns) {
  im2col_strided(g, image, columns, g.column_count());
}

void im2col_strided(const conv_geometry& g, const float* image,
                    float* columns, std::size_t row_stride) {
  APPEAL_CHECK(g.valid(), "invalid conv geometry");
  const std::size_t out_h = g.out_height();
  const std::size_t out_w = g.out_width();
  APPEAL_CHECK(row_stride >= out_h * out_w,
               "im2col_strided: row_stride below column_count");
  const std::size_t cols = row_stride;

  std::size_t patch_row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    const float* plane = image + c * g.height * g.width;
    for (std::size_t ky = 0; ky < g.kernel; ++ky) {
      for (std::size_t kx = 0; kx < g.kernel; ++kx, ++patch_row) {
        float* out_row = columns + patch_row * cols;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          // Source row index may be "negative" (inside top padding); compute
          // in signed space once per output row.
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * g.stride + ky) -
              static_cast<std::ptrdiff_t>(g.padding);
          float* out = out_row + oy * out_w;
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.height)) {
            for (std::size_t ox = 0; ox < out_w; ++ox) out[ox] = 0.0F;
            continue;
          }
          const float* src = plane + static_cast<std::size_t>(iy) * g.width;
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * g.stride + kx) -
                static_cast<std::ptrdiff_t>(g.padding);
            out[ox] = (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.width))
                          ? 0.0F
                          : src[static_cast<std::size_t>(ix)];
          }
        }
      }
    }
  }
}

void col2im(const conv_geometry& g, const float* columns, float* image_grad) {
  APPEAL_CHECK(g.valid(), "invalid conv geometry");
  const std::size_t out_h = g.out_height();
  const std::size_t out_w = g.out_width();
  const std::size_t cols = out_h * out_w;

  std::size_t patch_row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    float* plane = image_grad + c * g.height * g.width;
    for (std::size_t ky = 0; ky < g.kernel; ++ky) {
      for (std::size_t kx = 0; kx < g.kernel; ++kx, ++patch_row) {
        const float* in_row = columns + patch_row * cols;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * g.stride + ky) -
              static_cast<std::ptrdiff_t>(g.padding);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.height)) continue;
          float* dst = plane + static_cast<std::size_t>(iy) * g.width;
          const float* in = in_row + oy * out_w;
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * g.stride + kx) -
                static_cast<std::ptrdiff_t>(g.padding);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.width)) continue;
            dst[static_cast<std::size_t>(ix)] += in[ox];
          }
        }
      }
    }
  }
}

}  // namespace appeal::ops
