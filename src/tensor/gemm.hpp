// Single-precision GEMM — the compute kernel under every conv and linear
// layer.
//
// C = alpha * op(A) * op(B) + beta * C, row-major, with a packed,
// cache-blocked kernel (GotoBLAS-style MC/NC/KC blocking around a 6x16
// register-tiled microkernel). All three layouts (A*B, A^T*B, A*B^T) route
// through the same packing, so conv forward AND backward run the fast
// path. Shapes too small to amortize packing use a direct register loop.
//
// Threading: set_gemm_threads(t) splits the M dimension over a shared
// util::thread_pool. Each M-block computes a disjoint row range of C with
// a fixed arithmetic order, so results are BIT-IDENTICAL for every thread
// count — the determinism contract test_gemm pins down. The default is
// single-threaded (serving already runs one engine worker per core);
// APPEAL_GEMM_THREADS=<n> in the environment overrides the default.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace appeal::ops {

/// Sets the intra-GEMM parallelism (clamped to >= 1). Values > 1 resize
/// the shared util::thread_pool. Call at startup / from tests — not
/// concurrently with running GEMMs (pool reconstruction is unsynchronized
/// against parallel_for).
void set_gemm_threads(std::size_t threads);

/// Current intra-GEMM parallelism (reads APPEAL_GEMM_THREADS on first use).
std::size_t gemm_threads();

/// Raw pointer GEMM: C[m x n] = alpha * A[m x k] * B[k x n] + beta * C.
/// All matrices row-major and non-aliasing. beta == 0 overwrites C without
/// reading it (stale/NaN contents never leak) and without a separate
/// zero-fill pass.
void sgemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
           const float* a, const float* b, float beta, float* c);

/// C = alpha * A^T[m x k] * B[k x n] + beta * C, where A is stored [k x m].
void sgemm_at(std::size_t m, std::size_t n, std::size_t k, float alpha,
              const float* a, const float* b, float beta, float* c);

/// C = alpha * A[m x k] * B^T[k x n] + beta * C, where B is stored [n x k].
void sgemm_bt(std::size_t m, std::size_t n, std::size_t k, float alpha,
              const float* a, const float* b, float beta, float* c);

/// Fused-epilogue GEMM for the conv/linear serving path:
/// C = clamp(alpha * A * B + bias, [act_lo, act_hi]), overwriting C
/// (beta == 0 semantics). `bias` is per row of C (length m) and may be
/// null; act_lo/act_hi fuse the following ReLU/ReLU6 (pass +-infinity to
/// leave values unclamped). Bias and clamp are applied in the final
/// K-block's store pass — the same add and compare the separate passes
/// would do, so results are bit-identical to sgemm + bias sweep +
/// activation sweep, minus two full traversals of C.
void sgemm_bias_act(std::size_t m, std::size_t n, std::size_t k, float alpha,
                    const float* a, const float* b, const float* bias,
                    float act_lo, float act_hi, float* c);

/// Tensor wrapper: returns A * B for rank-2 tensors with matching inner dim.
tensor matmul(const tensor& a, const tensor& b);

}  // namespace appeal::ops
