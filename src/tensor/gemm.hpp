// Single-precision GEMM — the compute kernel under every conv and linear
// layer.
//
// C = alpha * op(A) * op(B) + beta * C, row-major, with a cache-blocked
// kernel tuned for the small/medium matrices this workload produces
// (im2col panels of a few hundred rows/cols).
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace appeal::ops {

/// Raw pointer GEMM: C[m x n] = alpha * A[m x k] * B[k x n] + beta * C.
/// All matrices row-major and non-aliasing.
void sgemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
           const float* a, const float* b, float beta, float* c);

/// C = alpha * A^T[m x k] * B[k x n] + beta * C, where A is stored [k x m].
void sgemm_at(std::size_t m, std::size_t n, std::size_t k, float alpha,
              const float* a, const float* b, float beta, float* c);

/// C = alpha * A[m x k] * B^T[k x n] + beta * C, where B is stored [n x k].
void sgemm_bt(std::size_t m, std::size_t n, std::size_t k, float alpha,
              const float* a, const float* b, float beta, float* c);

/// Tensor wrapper: returns A * B for rank-2 tensors with matching inner dim.
tensor matmul(const tensor& a, const tensor& b);

}  // namespace appeal::ops
