#include "nn/fold.hpp"

#include <cmath>
#include <limits>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/residual.hpp"
#include "util/error.hpp"

namespace appeal::nn {

namespace {

/// Absorbs `bn`'s eval-mode affine map into `conv`.
void absorb(conv2d& conv, batchnorm2d& bn) {
  APPEAL_CHECK(bn.channels() == conv.out_channels(),
               "fold: batchnorm channels do not match conv output");
  if (!conv.has_bias()) conv.ensure_bias();

  const std::size_t oc = conv.out_channels();
  const std::size_t per_filter = conv.weight().value.size() / oc;
  float* w = conv.weight().value.data();
  float* b = conv.bias().value.data();
  const float* gamma = bn.gamma().value.data();
  const float* beta = bn.beta().value.data();
  const float* mean = bn.running_mean().data();
  const float* var = bn.running_var().data();

  for (std::size_t c = 0; c < oc; ++c) {
    const float scale = gamma[c] / std::sqrt(var[c] + bn.epsilon());
    float* filter = w + c * per_filter;
    for (std::size_t i = 0; i < per_filter; ++i) filter[i] *= scale;
    b[c] = b[c] * scale + beta[c] - mean[c] * scale;
  }
}

}  // namespace

std::size_t fold_conv_batchnorm(sequential& net) {
  std::size_t folded = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    layer& child = net.child(i);
    if (auto* nested = dynamic_cast<sequential*>(&child)) {
      folded += fold_conv_batchnorm(*nested);
      continue;
    }
    if (auto* res = dynamic_cast<residual*>(&child)) {
      folded += fold_conv_batchnorm(res->body());
      if (res->has_projection()) {
        folded += fold_conv_batchnorm(res->projection());
      }
      continue;
    }
    auto* conv = dynamic_cast<conv2d*>(&child);
    if (conv == nullptr || i + 1 >= net.size()) continue;
    auto* bn = dynamic_cast<batchnorm2d*>(&net.child(i + 1));
    if (bn == nullptr) continue;
    absorb(*conv, *bn);
    net.remove_child(i + 1);  // the conv now computes the folded map
    ++folded;
  }
  return folded;
}

std::size_t fuse_conv_activation(sequential& net) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  std::size_t fused = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    layer& child = net.child(i);
    if (auto* nested = dynamic_cast<sequential*>(&child)) {
      fused += fuse_conv_activation(*nested);
      continue;
    }
    if (auto* res = dynamic_cast<residual*>(&child)) {
      // Only pairs INSIDE the body/projection fuse — an activation after
      // the residual add is not adjacent to any conv and stays a layer.
      fused += fuse_conv_activation(res->body());
      if (res->has_projection()) {
        fused += fuse_conv_activation(res->projection());
      }
      continue;
    }
    auto* conv = dynamic_cast<conv2d*>(&child);
    if (conv == nullptr || i + 1 >= net.size()) continue;
    layer& next = net.child(i + 1);
    float lo = 0.0F;
    float hi = kInf;
    if (dynamic_cast<relu*>(&next) != nullptr) {
      // lo/hi already the ReLU clamp.
    } else if (dynamic_cast<relu6*>(&next) != nullptr) {
      hi = 6.0F;
    } else {
      continue;  // sigmoid/silu/hardswish are not clamps
    }
    conv->fuse_activation(lo, hi);
    net.remove_child(i + 1);
    ++fused;
  }
  return fused;
}

}  // namespace appeal::nn
