#include "nn/inference_workspace.hpp"

#include <algorithm>
#include <utility>

namespace appeal::nn {

inference_workspace& inference_workspace::local() {
  thread_local inference_workspace ws;
  return ws;
}

std::vector<float> inference_workspace::take(std::size_t n) {
  // Best fit: the smallest pooled buffer whose capacity covers n. A
  // linear scan is fine — the pool holds at most kMaxPooled entries and
  // steady-state inference cycles through a handful of sizes.
  std::size_t best = pool_.size();
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    if (pool_[i].capacity() < n) continue;
    if (best == pool_.size() ||
        pool_[i].capacity() < pool_[best].capacity()) {
      best = i;
    }
  }
  if (best == pool_.size()) {
    // No fit: evict the smallest entry (it lost the size race) so the
    // pool turns over toward the working set's actual sizes.
    if (pool_.size() >= kMaxPooled) {
      std::size_t smallest = 0;
      for (std::size_t i = 1; i < pool_.size(); ++i) {
        if (pool_[i].capacity() < pool_[smallest].capacity()) smallest = i;
      }
      pool_.erase(pool_.begin() +
                  static_cast<std::ptrdiff_t>(smallest));
    }
    ++allocations_;
    std::vector<float> fresh;
    fresh.reserve(n);
    fresh.resize(n);
    return fresh;
  }
  ++reuses_;
  std::vector<float> out = std::move(pool_[best]);
  pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(best));
  out.resize(n);  // capacity suffices: no reallocation, no full clear
  return out;
}

void inference_workspace::give_back(std::vector<float>&& storage) {
  if (storage.capacity() == 0) return;
  if (pool_.size() >= kMaxPooled) return;  // let it free
  pool_.push_back(std::move(storage));
}

tensor inference_workspace::acquire(shape s) {
  const std::size_t n = s.element_count();
  return tensor(std::move(s), take(n));
}

void inference_workspace::recycle(tensor&& t) {
  give_back(std::move(t).take_data());
}

inference_workspace::buffer inference_workspace::borrow(std::size_t n) {
  return buffer(*this, take(n));
}

inference_workspace::buffer::~buffer() {
  if (owner_ != nullptr) owner_->give_back(std::move(storage_));
}

void inference_workspace::clear() {
  pool_.clear();
  allocations_ = 0;
  reuses_ = 0;
}

inference_workspace::usage inference_workspace::stats() const {
  usage u;
  u.allocations = allocations_;
  u.reuses = reuses_;
  for (const std::vector<float>& b : pool_) {
    u.pooled_bytes += b.capacity() * sizeof(float);
  }
  return u;
}

}  // namespace appeal::nn
