// Fully-connected layer: y = x * W^T + b.
#pragma once

#include "nn/layer.hpp"

namespace appeal::nn {

/// Dense layer over [batch, in_features] inputs. Inputs of higher rank are
/// rejected — callers flatten explicitly (see flatten_layer).
class linear : public layer {
 public:
  /// Weights are zero until initialized (see nn/init.hpp).
  linear(std::size_t in_features, std::size_t out_features, bool bias = true);

  const char* kind() const override { return "linear"; }
  tensor forward(const tensor& input, bool training) override;
  tensor backward(const tensor& grad_output) override;
  std::vector<parameter*> parameters() override;
  shape output_shape(const shape& input) const override;
  std::uint64_t flops(const shape& input) const override;

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }
  bool has_bias() const { return has_bias_; }

  parameter& weight() { return weight_; }
  parameter& bias();

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  bool has_bias_;
  parameter weight_;  // [out, in]
  parameter bias_;    // [out]
  tensor cached_input_;
};

}  // namespace appeal::nn
