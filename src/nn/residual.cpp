#include "nn/residual.hpp"

#include "nn/inference_workspace.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace appeal::nn {

residual::residual(std::unique_ptr<sequential> body,
                   std::unique_ptr<sequential> projection, bool final_relu)
    : body_(std::move(body)),
      projection_(std::move(projection)),
      final_relu_(final_relu) {
  APPEAL_CHECK(body_ != nullptr && !body_->empty(),
               "residual requires a non-empty body");
}

tensor residual::forward(const tensor& input, bool training) {
  tensor branch = body_->forward(input, training);
  if (projection_ != nullptr) {
    tensor skip = projection_->forward(input, training);
    APPEAL_CHECK(branch.dims() == skip.dims(),
                 "residual: body output " + branch.dims().to_string() +
                     " does not match skip output " + skip.dims().to_string());
    ops::add_inplace(branch, skip);
    if (!training) inference_workspace::local().recycle(std::move(skip));
  } else {
    APPEAL_CHECK(branch.dims() == input.dims(),
                 "residual: body output " + branch.dims().to_string() +
                     " does not match skip output " + input.dims().to_string());
    ops::add_inplace(branch, input);
  }
  if (!final_relu_) {
    return branch;
  }
  if (training) {
    cached_sum_ = branch;
  } else {
    cached_sum_ = tensor();
  }
  for (auto& v : branch.values()) {
    if (v < 0.0F) v = 0.0F;
  }
  return branch;
}

tensor residual::backward(const tensor& grad_output) {
  tensor grad_sum = grad_output;
  if (final_relu_) {
    APPEAL_CHECK(!cached_sum_.empty(), "residual backward before forward");
    APPEAL_CHECK(grad_output.dims() == cached_sum_.dims(),
                 "residual backward: grad shape mismatch");
    float* g = grad_sum.data();
    const float* s = cached_sum_.data();
    for (std::size_t i = 0; i < grad_sum.size(); ++i) {
      if (s[i] <= 0.0F) g[i] = 0.0F;
    }
  }
  tensor grad_input = body_->backward(grad_sum);
  if (projection_ != nullptr) {
    ops::add_inplace(grad_input, projection_->backward(grad_sum));
  } else {
    ops::add_inplace(grad_input, grad_sum);
  }
  return grad_input;
}

sequential& residual::projection() {
  APPEAL_CHECK(projection_ != nullptr,
               "projection() on an identity-skip residual");
  return *projection_;
}

std::vector<parameter*> residual::parameters() {
  std::vector<parameter*> out = body_->parameters();
  if (projection_ != nullptr) {
    for (parameter* p : projection_->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<named_parameter> residual::named_parameters(
    const std::string& prefix) {
  const std::string dot = prefix.empty() ? "" : prefix + ".";
  std::vector<named_parameter> out = body_->named_parameters(dot + "body");
  if (projection_ != nullptr) {
    for (named_parameter& np : projection_->named_parameters(dot + "proj")) {
      out.push_back(np);
    }
  }
  return out;
}

std::vector<named_tensor> residual::state(const std::string& prefix) {
  const std::string dot = prefix.empty() ? "" : prefix + ".";
  std::vector<named_tensor> out = body_->state(dot + "body");
  if (projection_ != nullptr) {
    for (named_tensor& nt : projection_->state(dot + "proj")) {
      out.push_back(nt);
    }
  }
  return out;
}

shape residual::output_shape(const shape& input) const {
  const shape out = body_->output_shape(input);
  const shape skip =
      projection_ != nullptr ? projection_->output_shape(input) : input;
  APPEAL_CHECK(out == skip, "residual output_shape: branch mismatch " +
                                out.to_string() + " vs " + skip.to_string());
  return out;
}

std::uint64_t residual::flops(const shape& input) const {
  std::uint64_t total = body_->flops(input);
  if (projection_ != nullptr) total += projection_->flops(input);
  // The elementwise add (+ optional ReLU).
  total += output_shape(input).element_count();
  return total;
}

}  // namespace appeal::nn
