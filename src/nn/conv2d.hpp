// 2-D convolution with grouping (groups == channels gives depthwise conv).
//
// Training forward lowers to GEMM via im2col per sample and group, and
// caches the input for backward. Backward recomputes the im2col panels
// instead of caching them — for the small images this library targets,
// recompute is cheaper than the memory traffic of storing every panel for
// a whole batch.
//
// Inference forward (training == false) is the serving fast path: the
// whole NCHW batch unrolls side by side (im2col_strided) into ONE
// [patch, N * positions] matrix per group, so each layer runs one packed
// GEMM per group instead of one per sample, caches nothing, and draws
// every panel and its output from the thread's inference_workspace.
#pragma once

#include <algorithm>
#include <limits>
#include <vector>

#include "nn/layer.hpp"
#include "tensor/im2col.hpp"

namespace appeal::nn {

/// Square-kernel grouped convolution over NCHW tensors.
class conv2d : public layer {
 public:
  conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride = 1, std::size_t padding = 0,
         std::size_t groups = 1, bool bias = true);

  const char* kind() const override { return "conv2d"; }
  tensor forward(const tensor& input, bool training) override;
  tensor backward(const tensor& grad_output) override;
  std::vector<parameter*> parameters() override;
  shape output_shape(const shape& input) const override;
  std::uint64_t flops(const shape& input) const override;

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  std::size_t kernel() const { return kernel_; }
  std::size_t stride() const { return stride_; }
  std::size_t padding() const { return padding_; }
  std::size_t groups() const { return groups_; }

  parameter& weight() { return weight_; }
  parameter& bias();
  bool has_bias() const { return has_bias_; }

  /// Turns a bias-free conv into one with a (zero-initialized) bias —
  /// conv+batchnorm folding needs somewhere to put the shift term.
  void ensure_bias() { has_bias_ = true; }

  /// Absorbs a following clamp activation (ReLU: [0, inf); ReLU6: [0, 6])
  /// into this layer's inference epilogue — the GEMM / stencil store pass
  /// applies it, deleting the separate full pass over the activation map.
  /// Deployment-only, like batchnorm folding: the training-mode forward
  /// and backward ignore the fused clamp (fuse_conv_activation removes the
  /// activation layer, so further training is meaningless anyway).
  /// Repeated calls intersect the ranges.
  void fuse_activation(float act_lo, float act_hi) {
    act_lo_ = std::max(act_lo_, act_lo);
    act_hi_ = std::min(act_hi_, act_hi);
  }
  bool has_fused_activation() const {
    return act_lo_ != -std::numeric_limits<float>::infinity() ||
           act_hi_ != std::numeric_limits<float>::infinity();
  }
  float fused_act_lo() const { return act_lo_; }
  float fused_act_hi() const { return act_hi_; }

 private:
  ops::conv_geometry group_geometry(const shape& input) const;
  tensor forward_inference(const tensor& input, const ops::conv_geometry& g);

  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t padding_;
  std::size_t groups_;
  bool has_bias_;
  float act_lo_ = -std::numeric_limits<float>::infinity();
  float act_hi_ = std::numeric_limits<float>::infinity();
  parameter weight_;  // [out_c, in_c/groups, k, k]
  parameter bias_;    // [out_c]
  tensor cached_input_;
  std::vector<float> columns_;  // im2col scratch, reused across samples
};

}  // namespace appeal::nn
