// First-order optimizers and learning-rate schedules.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace appeal::nn {

/// Base optimizer over an attached parameter set.
class optimizer {
 public:
  virtual ~optimizer() = default;

  /// Attaches the parameters to optimize. Replaces any previous set and
  /// resets per-parameter state (momentum/Adam moments).
  void attach(std::vector<parameter*> params);

  /// Zeroes every attached parameter's gradient accumulator.
  void zero_grad();

  /// Applies one update step from the accumulated gradients.
  virtual void step() = 0;

  void set_learning_rate(double lr) { learning_rate_ = lr; }
  double learning_rate() const { return learning_rate_; }

  std::size_t parameter_count() const { return params_.size(); }

 protected:
  explicit optimizer(double learning_rate) : learning_rate_(learning_rate) {}

  /// Called from attach() so subclasses can size their state buffers.
  virtual void on_attach() {}

  std::vector<parameter*> params_;
  double learning_rate_;
};

/// SGD with momentum and decoupled L2 weight decay.
class sgd : public optimizer {
 public:
  explicit sgd(double learning_rate, double momentum = 0.9,
               double weight_decay = 0.0, bool nesterov = false);

  void step() override;

 protected:
  void on_attach() override;

 private:
  double momentum_;
  double weight_decay_;
  bool nesterov_;
  std::vector<tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class adam : public optimizer {
 public:
  explicit adam(double learning_rate, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8, double weight_decay = 0.0);

  void step() override;

 protected:
  void on_attach() override;

 private:
  double beta1_;
  double beta2_;
  double epsilon_;
  double weight_decay_;
  std::vector<tensor> m_;
  std::vector<tensor> v_;
  long step_count_ = 0;
};

/// Learning-rate schedule interface: lr for a given 0-based epoch.
class lr_schedule {
 public:
  virtual ~lr_schedule() = default;
  virtual double learning_rate(std::size_t epoch) const = 0;
};

/// Constant learning rate.
class constant_lr : public lr_schedule {
 public:
  explicit constant_lr(double lr) : lr_(lr) {}
  double learning_rate(std::size_t /*epoch*/) const override { return lr_; }

 private:
  double lr_;
};

/// Multiplies the base rate by `gamma` every `step_size` epochs.
class step_lr : public lr_schedule {
 public:
  step_lr(double base_lr, std::size_t step_size, double gamma);
  double learning_rate(std::size_t epoch) const override;

 private:
  double base_lr_;
  std::size_t step_size_;
  double gamma_;
};

/// Cosine annealing from base_lr to min_lr over `total_epochs`.
class cosine_lr : public lr_schedule {
 public:
  cosine_lr(double base_lr, std::size_t total_epochs, double min_lr = 0.0);
  double learning_rate(std::size_t epoch) const override;

 private:
  double base_lr_;
  std::size_t total_epochs_;
  double min_lr_;
};

}  // namespace appeal::nn
