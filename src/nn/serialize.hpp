// Binary model serialization.
//
// Format (little-endian):
//   magic "APNW", u32 version, u64 tensor count,
//   then per tensor: u32 name length, name bytes, u32 rank, u64 dims...,
//   f32 data...
// Loading matches tensors by qualified name and requires identical shapes,
// so architecture changes are caught instead of silently mis-loading.
#pragma once

#include <map>
#include <string>

#include "nn/layer.hpp"

namespace appeal::nn {

/// Writes a set of named tensors to `path`.
void save_tensors(const std::vector<named_tensor>& tensors,
                  const std::string& path);

/// Loads tensors into the given (name, tensor) targets. Throws if the file
/// is missing a tensor, contains an unknown one, or shapes differ.
void load_tensors(const std::vector<named_tensor>& targets,
                  const std::string& path);

/// Reads every tensor in the file into a name -> tensor map, without
/// needing target shapes up front (used by the experiment artifact cache).
std::map<std::string, tensor> load_tensors_dynamic(const std::string& path);

/// Writes all of `model`'s state() tensors to `path`.
void save_model(layer& model, const std::string& path);

/// Loads tensors into `model` by name. Throws if the file is missing a
/// tensor the model has, contains one the model lacks, or shapes differ.
void load_model(layer& model, const std::string& path);

/// True when `path` exists and carries the serialization magic.
bool is_model_file(const std::string& path);

}  // namespace appeal::nn
