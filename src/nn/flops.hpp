// FLOPs accounting and model summaries.
//
// The paper reports model and system cost in MFLOPs (Table I uses the
// convention 1 MAC = 2 FLOPs); these helpers aggregate the per-layer
// estimates the layer interface exposes.
#pragma once

#include <cstdint>
#include <string>

#include "nn/layer.hpp"

namespace appeal::nn {

/// Total forward-pass FLOPs for one input of shape `input`.
std::uint64_t total_flops(const layer& model, const shape& input);

/// FLOPs scaled to MFLOPs (1e6), matching the paper's unit.
double mflops(const layer& model, const shape& input);

/// Number of learnable scalars in the model.
std::size_t parameter_count(layer& model);

/// Human-readable multi-line summary: per-parameter shapes plus totals.
std::string model_summary(layer& model, const shape& input);

}  // namespace appeal::nn
