#include "nn/batchnorm.hpp"

#include <cmath>

#include "nn/inference_workspace.hpp"
#include "util/error.hpp"

namespace appeal::nn {

batchnorm2d::batchnorm2d(std::size_t channels, float epsilon, float momentum)
    : channels_(channels),
      epsilon_(epsilon),
      momentum_(momentum),
      gamma_("gamma", tensor(shape{channels}, 1.0F)),
      beta_("beta", tensor(shape{channels})),
      running_mean_(shape{channels}),
      running_var_(shape{channels}, 1.0F) {
  APPEAL_CHECK(channels > 0, "batchnorm2d requires at least one channel");
}

tensor batchnorm2d::forward(const tensor& input, bool training) {
  APPEAL_CHECK(input.dims().rank() == 4 && input.channels() == channels_,
               "batchnorm2d forward: expected NCHW with " +
                   std::to_string(channels_) + " channels, got " +
                   input.dims().to_string());
  const std::size_t n = input.batch();
  const std::size_t hw = input.height() * input.width();
  const std::size_t reduce = n * hw;
  APPEAL_CHECK(reduce > 0, "batchnorm2d forward on empty batch");

  cached_training_ = training;
  cached_input_shape_ = input.dims();

  tensor out = training ? tensor(input.dims())
                        : inference_workspace::local().acquire(input.dims());
  const float* in = input.data();
  float* po = out.data();
  const float* pg = gamma_.value.data();
  const float* pb = beta_.value.data();

  if (!training) {
    for (std::size_t c = 0; c < channels_; ++c) {
      const float inv_std =
          1.0F / std::sqrt(running_var_[c] + epsilon_);
      const float scale = pg[c] * inv_std;
      const float shift = pb[c] - running_mean_[c] * scale;
      for (std::size_t s = 0; s < n; ++s) {
        const float* src = in + (s * channels_ + c) * hw;
        float* dst = po + (s * channels_ + c) * hw;
        for (std::size_t i = 0; i < hw; ++i) dst[i] = src[i] * scale + shift;
      }
    }
    return out;
  }

  cached_xhat_ = tensor(input.dims());
  cached_inv_std_ = tensor(shape{channels_});
  float* pxhat = cached_xhat_.data();

  for (std::size_t c = 0; c < channels_; ++c) {
    double total = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      const float* src = in + (s * channels_ + c) * hw;
      for (std::size_t i = 0; i < hw; ++i) total += src[i];
    }
    const float mu = static_cast<float>(total / static_cast<double>(reduce));

    double var_total = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      const float* src = in + (s * channels_ + c) * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        const double d = src[i] - mu;
        var_total += d * d;
      }
    }
    const float var =
        static_cast<float>(var_total / static_cast<double>(reduce));
    const float inv_std = 1.0F / std::sqrt(var + epsilon_);
    cached_inv_std_[c] = inv_std;

    running_mean_[c] = (1.0F - momentum_) * running_mean_[c] + momentum_ * mu;
    running_var_[c] = (1.0F - momentum_) * running_var_[c] + momentum_ * var;

    const float scale = pg[c];
    const float shift = pb[c];
    for (std::size_t s = 0; s < n; ++s) {
      const float* src = in + (s * channels_ + c) * hw;
      float* xh = pxhat + (s * channels_ + c) * hw;
      float* dst = po + (s * channels_ + c) * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        xh[i] = (src[i] - mu) * inv_std;
        dst[i] = xh[i] * scale + shift;
      }
    }
  }
  return out;
}

tensor batchnorm2d::backward(const tensor& grad_output) {
  APPEAL_CHECK(cached_input_shape_.rank() == 4,
               "batchnorm2d backward before forward");
  APPEAL_CHECK(grad_output.dims() == cached_input_shape_,
               "batchnorm2d backward: grad shape mismatch");
  APPEAL_CHECK(cached_training_,
               "batchnorm2d backward is only defined after a training-mode "
               "forward pass");

  const std::size_t n = cached_input_shape_.batch();
  const std::size_t hw =
      cached_input_shape_.height() * cached_input_shape_.width();
  const auto reduce = static_cast<float>(n * hw);

  tensor grad_input(cached_input_shape_);
  const float* gy = grad_output.data();
  const float* xh = cached_xhat_.data();
  float* gx = grad_input.data();

  for (std::size_t c = 0; c < channels_; ++c) {
    // Channel-wise reductions: sum(gy), sum(gy * xhat).
    double sum_gy = 0.0;
    double sum_gy_xhat = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      const std::size_t base = (s * channels_ + c) * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        sum_gy += gy[base + i];
        sum_gy_xhat += static_cast<double>(gy[base + i]) * xh[base + i];
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_gy_xhat);
    beta_.grad[c] += static_cast<float>(sum_gy);

    // dx = gamma * inv_std * (gy - mean(gy) - xhat * mean(gy*xhat)).
    const float k = gamma_.value[c] * cached_inv_std_[c];
    const float mean_gy = static_cast<float>(sum_gy) / reduce;
    const float mean_gy_xhat = static_cast<float>(sum_gy_xhat) / reduce;
    for (std::size_t s = 0; s < n; ++s) {
      const std::size_t base = (s * channels_ + c) * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        gx[base + i] =
            k * (gy[base + i] - mean_gy - xh[base + i] * mean_gy_xhat);
      }
    }
  }
  return grad_input;
}

std::vector<parameter*> batchnorm2d::parameters() {
  return {&gamma_, &beta_};
}

std::vector<named_tensor> batchnorm2d::state(const std::string& prefix) {
  std::vector<named_tensor> out = layer::state(prefix);
  const std::string dot = prefix.empty() ? "" : prefix + ".";
  out.push_back(named_tensor{dot + "running_mean", &running_mean_});
  out.push_back(named_tensor{dot + "running_var", &running_var_});
  return out;
}

shape batchnorm2d::output_shape(const shape& input) const {
  APPEAL_CHECK(input.rank() == 4 && input.channels() == channels_,
               "batchnorm2d output_shape: bad input " + input.to_string());
  return input;
}

std::uint64_t batchnorm2d::flops(const shape& input) const {
  // One multiply + one add per element (scale/shift form).
  return 2ULL * input.element_count();
}

}  // namespace appeal::nn
