// Loss functions.
//
// Losses are free functions returning both the scalar loss and the gradient
// with respect to the network output, plus per-sample losses — the joint
// AppealNet objective (src/core/joint_loss) needs per-sample cross-entropy
// terms for both the little and the big network.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace appeal::nn {

/// Result of a classification loss over a batch.
struct loss_result {
  double mean_loss = 0.0;          // average over the batch
  tensor grad;                     // dL/d(logits), includes the 1/N factor
  std::vector<float> per_sample;   // loss per batch element
};

/// Softmax cross-entropy with integer labels over [N, K] logits.
/// `label_smoothing` in [0, 1) mixes the one-hot target with uniform mass.
loss_result softmax_cross_entropy(const tensor& logits,
                                  const std::vector<std::size_t>& labels,
                                  float label_smoothing = 0.0F);

/// Per-sample cross-entropy of [N, K] logits without gradients — used to
/// evaluate the frozen big network inside the joint loss.
std::vector<float> cross_entropy_values(const tensor& logits,
                                        const std::vector<std::size_t>& labels);

/// Binary cross-entropy on raw scores through a fused sigmoid:
/// loss_i = -[t_i * log(sigmoid(s_i)) + (1 - t_i) * log(1 - sigmoid(s_i))].
/// `scores` and `targets` are [N]; grad is with respect to the raw scores.
loss_result sigmoid_binary_cross_entropy(const tensor& scores,
                                         const std::vector<float>& targets);

}  // namespace appeal::nn
