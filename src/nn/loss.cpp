#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace appeal::nn {

loss_result softmax_cross_entropy(const tensor& logits,
                                  const std::vector<std::size_t>& labels,
                                  float label_smoothing) {
  APPEAL_CHECK(logits.dims().rank() == 2, "softmax_cross_entropy: logits must be [N, K]");
  const std::size_t n = logits.dims().dim(0);
  const std::size_t k = logits.dims().dim(1);
  APPEAL_CHECK(labels.size() == n,
               "softmax_cross_entropy: label count mismatch");
  APPEAL_CHECK(label_smoothing >= 0.0F && label_smoothing < 1.0F,
               "label_smoothing must be in [0, 1)");
  APPEAL_CHECK(n > 0, "softmax_cross_entropy on an empty batch");

  const tensor log_probs = ops::log_softmax_rows(logits);
  loss_result result;
  result.per_sample.resize(n);
  result.grad = tensor(logits.dims());

  const float off_target = label_smoothing / static_cast<float>(k);
  const float on_target = 1.0F - label_smoothing + off_target;
  const float inv_n = 1.0F / static_cast<float>(n);
  const float* lp = log_probs.data();
  float* g = result.grad.data();
  double total = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t y = labels[i];
    APPEAL_CHECK(y < k, "label out of range");
    const float* row = lp + i * k;
    float* grow = g + i * k;

    // Loss: -sum_j target_j * log p_j with smoothed targets.
    double sample_loss = -static_cast<double>(on_target - off_target) * row[y];
    if (label_smoothing > 0.0F) {
      double smooth_term = 0.0;
      for (std::size_t j = 0; j < k; ++j) smooth_term += row[j];
      sample_loss -= static_cast<double>(off_target) * smooth_term;
    }
    result.per_sample[i] = static_cast<float>(sample_loss);
    total += sample_loss;

    // Gradient: (softmax - target) / N.
    for (std::size_t j = 0; j < k; ++j) {
      const float p = std::exp(row[j]);
      const float target = (j == y) ? on_target : off_target;
      grow[j] = (p - target) * inv_n;
    }
  }
  result.mean_loss = total / static_cast<double>(n);
  return result;
}

std::vector<float> cross_entropy_values(
    const tensor& logits, const std::vector<std::size_t>& labels) {
  APPEAL_CHECK(logits.dims().rank() == 2, "cross_entropy_values: logits must be [N, K]");
  const std::size_t n = logits.dims().dim(0);
  const std::size_t k = logits.dims().dim(1);
  APPEAL_CHECK(labels.size() == n, "cross_entropy_values: label count mismatch");

  const tensor log_probs = ops::log_softmax_rows(logits);
  std::vector<float> out(n);
  const float* lp = log_probs.data();
  for (std::size_t i = 0; i < n; ++i) {
    APPEAL_CHECK(labels[i] < k, "label out of range");
    out[i] = -lp[i * k + labels[i]];
  }
  return out;
}

loss_result sigmoid_binary_cross_entropy(const tensor& scores,
                                         const std::vector<float>& targets) {
  APPEAL_CHECK(scores.dims().rank() == 1, "sigmoid_bce: scores must be [N]");
  const std::size_t n = scores.dims().dim(0);
  APPEAL_CHECK(targets.size() == n, "sigmoid_bce: target count mismatch");
  APPEAL_CHECK(n > 0, "sigmoid_bce on an empty batch");

  loss_result result;
  result.per_sample.resize(n);
  result.grad = tensor(scores.dims());
  const float inv_n = 1.0F / static_cast<float>(n);
  const float* s = scores.data();
  float* g = result.grad.data();
  double total = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    const float t = targets[i];
    APPEAL_CHECK(t >= 0.0F && t <= 1.0F, "sigmoid_bce: target outside [0, 1]");
    // Numerically-stable form: max(s,0) - s*t + log(1 + exp(-|s|)).
    const float x = s[i];
    const float loss = std::max(x, 0.0F) - x * t +
                       std::log1p(std::exp(-std::fabs(x)));
    result.per_sample[i] = loss;
    total += loss;
    const float sig = 1.0F / (1.0F + std::exp(-x));
    g[i] = (sig - t) * inv_n;
  }
  result.mean_loss = total / static_cast<double>(n);
  return result;
}

}  // namespace appeal::nn
