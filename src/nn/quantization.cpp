#include "nn/quantization.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace appeal::nn {

quant_params choose_quant_params(std::span<const float> values, int bits,
                                 bool symmetric) {
  APPEAL_CHECK(bits >= 2 && bits <= 16, "quantization bits must be in [2, 16]");
  APPEAL_CHECK(!values.empty(), "cannot choose quant params for empty data");

  float lo = values[0];
  float hi = values[0];
  for (const float v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }

  quant_params params;
  params.bits = bits;
  params.symmetric = symmetric;
  const auto levels = static_cast<float>((1 << bits) - 1);

  if (symmetric) {
    // Signed grid −(2^(b−1)−1) … 2^(b−1)−1, zero_point pinned to 0 — the
    // representation the s8 kernel packs verbatim.
    const float bound = std::max(std::fabs(lo), std::fabs(hi));
    if (bound == 0.0F) {
      params.scale = 1.0F;
      params.zero_point = 0;
      return params;
    }
    params.scale = bound / static_cast<float>(params.q_max());
    params.zero_point = 0;
    return params;
  }

  // Asymmetric: grid spans [lo, hi]; zero must be representable so ReLU
  // zeros survive quantization exactly.
  lo = std::min(lo, 0.0F);
  hi = std::max(hi, 0.0F);
  if (hi == lo) {
    params.scale = 1.0F;
    params.zero_point = 0;
    return params;
  }
  params.scale = (hi - lo) / levels;
  params.zero_point = static_cast<std::int32_t>(
      std::lround(-lo / params.scale));
  params.zero_point =
      std::clamp(params.zero_point, params.q_min(), params.q_max());
  return params;
}

float fake_quantize_value(float value, const quant_params& params) {
  const auto q = static_cast<std::int32_t>(
      std::lround(value / params.scale) + params.zero_point);
  const std::int32_t clamped = std::clamp(q, params.q_min(), params.q_max());
  return params.scale * static_cast<float>(clamped - params.zero_point);
}

void fake_quantize_inplace(tensor& values, const quant_params& params) {
  for (auto& v : values.values()) {
    v = fake_quantize_value(v, params);
  }
}

std::size_t quantize_model_weights(layer& model, int bits) {
  std::size_t quantized = 0;
  for (named_parameter& np : model.named_parameters("")) {
    const std::string& name = np.qualified_name;
    const bool is_weight =
        name.size() >= 6 && name.rfind("weight") == name.size() - 6;
    if (!is_weight) continue;
    const quant_params params = choose_quant_params(
        std::span<const float>(np.param->value.values()), bits,
        /*symmetric=*/true);
    fake_quantize_inplace(np.param->value, params);
    ++quantized;
  }
  return quantized;
}

double quantization_rmse(const tensor& values, int bits, bool symmetric) {
  APPEAL_CHECK(values.size() > 0, "quantization_rmse on empty tensor");
  const quant_params params = choose_quant_params(
      std::span<const float>(values.values()), bits, symmetric);
  double total = 0.0;
  for (const float v : values.values()) {
    const double d = static_cast<double>(v) -
                     static_cast<double>(fake_quantize_value(v, params));
    total += d * d;
  }
  return std::sqrt(total / static_cast<double>(values.size()));
}

}  // namespace appeal::nn
