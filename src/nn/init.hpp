// Weight initialization.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace appeal::nn {

/// Kaiming/He normal init: N(0, sqrt(2 / fan_in)).
void kaiming_normal(tensor& weights, util::rng& gen, std::size_t fan_in);

/// Xavier/Glorot uniform init: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(tensor& weights, util::rng& gen, std::size_t fan_in,
                    std::size_t fan_out);

/// Initializes every parameter of `model` by name convention:
///  - "weight" with rank >= 2: Kaiming normal (fan_in = product of dims[1:])
///  - "bias" / "beta": zero
///  - "gamma": one
/// Unknown names are left untouched.
void initialize_model(layer& model, util::rng& gen);

}  // namespace appeal::nn
