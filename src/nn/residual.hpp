// Residual wrapper: y = [relu](body(x) + skip(x)).
//
// The skip path is identity when no projection is given; a projection
// (typically 1x1 conv + batchnorm) handles stride/channel changes. This one
// composite expresses ResNet basic blocks, MBConv residuals and ShuffleNet
// units.
#pragma once

#include <memory>

#include "nn/layer.hpp"
#include "nn/sequential.hpp"

namespace appeal::nn {

/// Two-branch additive block with an optional final ReLU.
class residual : public layer {
 public:
  /// `body` must map the input shape to the skip path's output shape.
  /// `projection` may be null (identity skip).
  residual(std::unique_ptr<sequential> body,
           std::unique_ptr<sequential> projection, bool final_relu);

  const char* kind() const override { return "residual"; }
  tensor forward(const tensor& input, bool training) override;
  tensor backward(const tensor& grad_output) override;
  std::vector<parameter*> parameters() override;
  std::vector<named_parameter> named_parameters(
      const std::string& prefix) override;
  std::vector<named_tensor> state(const std::string& prefix) override;
  shape output_shape(const shape& input) const override;
  std::uint64_t flops(const shape& input) const override;

  sequential& body() { return *body_; }
  bool has_projection() const { return projection_ != nullptr; }
  /// Requires has_projection().
  sequential& projection();

 private:
  std::unique_ptr<sequential> body_;
  std::unique_ptr<sequential> projection_;
  bool final_relu_;
  tensor cached_sum_;  // pre-ReLU activations (only kept when final_relu_)
};

}  // namespace appeal::nn
