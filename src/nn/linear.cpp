#include "nn/linear.hpp"

#include "nn/inference_workspace.hpp"
#include "tensor/gemm.hpp"
#include "util/error.hpp"

namespace appeal::nn {

linear::linear(std::size_t in_features, std::size_t out_features, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      weight_("weight", tensor(shape{out_features, in_features})),
      bias_("bias", tensor(shape{out_features})) {
  APPEAL_CHECK(in_features > 0 && out_features > 0,
               "linear layer requires positive dimensions");
}

tensor linear::forward(const tensor& input, bool training) {
  APPEAL_CHECK(input.dims().rank() == 2 &&
                   input.dims().dim(1) == in_features_,
               "linear forward: expected [N, " + std::to_string(in_features_) +
                   "], got " + input.dims().to_string());
  const std::size_t n = input.dims().dim(0);
  tensor out;
  if (training) {
    cached_input_ = input;
    out = tensor(shape{n, out_features_});
  } else {
    cached_input_ = tensor();
    out = inference_workspace::local().acquire(shape{n, out_features_});
  }
  // y[N, out] = x[N, in] * W^T, W stored [out, in].
  ops::sgemm_bt(n, out_features_, in_features_, 1.0F, input.data(),
                weight_.value.data(), 0.0F, out.data());
  if (has_bias_) {
    float* po = out.data();
    const float* pb = bias_.value.data();
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < out_features_; ++c) {
        po[r * out_features_ + c] += pb[c];
      }
    }
  }
  return out;
}

tensor linear::backward(const tensor& grad_output) {
  APPEAL_CHECK(!cached_input_.empty(), "linear backward before forward");
  const std::size_t n = cached_input_.dims().dim(0);
  APPEAL_CHECK(grad_output.dims() == shape({n, out_features_}),
               "linear backward: grad shape mismatch " +
                   grad_output.dims().to_string());

  // dW[out, in] += gy^T[out, N] * x[N, in]  (gy stored [N, out]).
  ops::sgemm_at(out_features_, in_features_, n, 1.0F, grad_output.data(),
                cached_input_.data(), 1.0F, weight_.grad.data());

  if (has_bias_) {
    const float* pg = grad_output.data();
    float* pb = bias_.grad.data();
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < out_features_; ++c) {
        pb[c] += pg[r * out_features_ + c];
      }
    }
  }

  // dx[N, in] = gy[N, out] * W[out, in].
  tensor grad_input(shape{n, in_features_});
  ops::sgemm(n, in_features_, out_features_, 1.0F, grad_output.data(),
             weight_.value.data(), 0.0F, grad_input.data());
  return grad_input;
}

std::vector<parameter*> linear::parameters() {
  std::vector<parameter*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

shape linear::output_shape(const shape& input) const {
  APPEAL_CHECK(input.rank() == 2 && input.dim(1) == in_features_,
               "linear output_shape: bad input " + input.to_string());
  return shape{input.dim(0), out_features_};
}

std::uint64_t linear::flops(const shape& input) const {
  const std::uint64_t n = input.dim(0);
  std::uint64_t macs = n * in_features_ * out_features_;
  if (has_bias_) macs += n * out_features_;
  return 2 * macs;
}

parameter& linear::bias() {
  APPEAL_CHECK(has_bias_, "bias() on a bias-free linear layer");
  return bias_;
}

}  // namespace appeal::nn
