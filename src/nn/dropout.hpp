// Inverted dropout.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace appeal::nn {

/// Inverted dropout: training scales kept activations by 1/(1-p) so eval
/// mode is the identity. The layer owns a deterministic RNG stream seeded
/// at construction, keeping whole-model runs reproducible.
class dropout : public layer {
 public:
  explicit dropout(float drop_probability, std::uint64_t seed = 0x5EED);

  const char* kind() const override { return "dropout"; }
  tensor forward(const tensor& input, bool training) override;
  tensor backward(const tensor& grad_output) override;
  shape output_shape(const shape& input) const override { return input; }

  float drop_probability() const { return p_; }

 private:
  float p_;
  util::rng gen_;
  tensor mask_;  // scaled keep-mask from the last training forward
  bool last_was_training_ = false;
  shape cached_input_shape_;
};

}  // namespace appeal::nn
