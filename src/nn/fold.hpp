// Conv + batchnorm folding — a one-time graph rewrite for deployment.
//
// In eval mode batchnorm is an affine per-channel map of its running
// statistics: y_c = s_c * x_c + t_c with s_c = gamma_c / sqrt(var_c + eps)
// and t_c = beta_c - mean_c * s_c. When x is the output of a convolution,
// that map folds into the conv's own weights (W'_c = s_c * W_c,
// b'_c = s_c * b_c + t_c), deleting the batchnorm layer — one less full
// pass over every activation map on the serving fast path.
//
// Apply AFTER training and AFTER load(): folding consumes the running
// statistics, removes layers (so serialized state names shift), and makes
// further training-mode forwards meaningless. two_head_network::
// prepare_for_inference() is the deployment entry point.
#pragma once

#include <cstddef>

#include "nn/sequential.hpp"

namespace appeal::nn {

/// Folds every adjacent (conv2d, batchnorm2d) pair inside `net`,
/// recursing into nested sequentials and residual blocks (body and
/// projection). Returns the number of pairs folded.
std::size_t fold_conv_batchnorm(sequential& net);

/// Absorbs every clamp activation (relu, relu6) that directly follows a
/// conv2d into that conv's fused inference epilogue and deletes the
/// activation layer — the clamp then happens in the GEMM/stencil store
/// pass instead of a separate traversal of the activation map. Recurses
/// like fold_conv_batchnorm; apply it AFTER batchnorm folding so
/// conv-bn-relu chains collapse all the way. Returns the number of
/// activations fused. Inference-only, same caveats as folding.
std::size_t fuse_conv_activation(sequential& net);

}  // namespace appeal::nn
