#include "nn/squeeze_excite.hpp"

#include <algorithm>
#include <cmath>

#include "nn/inference_workspace.hpp"
#include "util/error.hpp"

namespace appeal::nn {

squeeze_excite::squeeze_excite(std::size_t channels, std::size_t reduction)
    : channels_(channels),
      fc1_(channels, std::max<std::size_t>(1, channels / reduction)),
      fc2_(std::max<std::size_t>(1, channels / reduction), channels) {
  APPEAL_CHECK(channels > 0, "squeeze_excite requires channels > 0");
  APPEAL_CHECK(reduction > 0, "squeeze_excite requires reduction > 0");
}

tensor squeeze_excite::forward(const tensor& input, bool training) {
  APPEAL_CHECK(input.dims().rank() == 4 && input.channels() == channels_,
               "squeeze_excite forward: bad input " + input.dims().to_string());
  const std::size_t n = input.batch();
  const std::size_t hw = input.height() * input.width();
  const float inv_hw = 1.0F / static_cast<float>(hw);
  inference_workspace& ws = inference_workspace::local();

  // Squeeze: global average pool to [N, C].
  tensor squeezed =
      training ? tensor(shape{n, channels_}) : ws.acquire(shape{n, channels_});
  const float* in = input.data();
  float* ps = squeezed.data();
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t c = 0; c < channels_; ++c) {
      const float* plane = in + (s * channels_ + c) * hw;
      float acc = 0.0F;
      for (std::size_t i = 0; i < hw; ++i) acc += plane[i];
      ps[s * channels_ + c] = acc * inv_hw;
    }
  }

  if (!training) {
    // Inference: no backward caches, all temporaries from the workspace,
    // and the excite weights apply input -> out instead of in place on a
    // heap copy.
    cached_input_ = tensor();
    cached_hidden_ = tensor();
    tensor hidden = fc1_.forward(squeezed, false);
    ws.recycle(std::move(squeezed));
    for (auto& v : hidden.values()) v = v > 0.0F ? v : 0.0F;
    tensor excite = fc2_.forward(hidden, false);
    ws.recycle(std::move(hidden));
    for (auto& v : excite.values()) v = 1.0F / (1.0F + std::exp(-v));

    tensor out = ws.acquire(input.dims());
    float* po = out.data();
    const float* pe = excite.data();
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t c = 0; c < channels_; ++c) {
        const float e = pe[s * channels_ + c];
        const float* src = in + (s * channels_ + c) * hw;
        float* dst = po + (s * channels_ + c) * hw;
        for (std::size_t i = 0; i < hw; ++i) dst[i] = src[i] * e;
      }
    }
    cached_excite_ = tensor();
    ws.recycle(std::move(excite));
    return out;
  }

  cached_input_ = input;

  // Excite: fc1 -> relu -> fc2 -> sigmoid.
  tensor pre_hidden = fc1_.forward(squeezed, training);
  cached_hidden_ = pre_hidden;
  tensor hidden = pre_hidden;
  for (auto& v : hidden.values()) v = v > 0.0F ? v : 0.0F;
  tensor z2 = fc2_.forward(hidden, training);
  cached_excite_ = z2;
  for (auto& v : cached_excite_.values()) {
    v = 1.0F / (1.0F + std::exp(-v));
  }

  // Scale: broadcast per channel.
  tensor out = input;
  float* po = out.data();
  const float* pe = cached_excite_.data();
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t c = 0; c < channels_; ++c) {
      const float e = pe[s * channels_ + c];
      float* plane = po + (s * channels_ + c) * hw;
      for (std::size_t i = 0; i < hw; ++i) plane[i] *= e;
    }
  }
  return out;
}

tensor squeeze_excite::backward(const tensor& grad_output) {
  APPEAL_CHECK(!cached_input_.empty(), "squeeze_excite backward before forward");
  APPEAL_CHECK(grad_output.dims() == cached_input_.dims(),
               "squeeze_excite backward: grad shape mismatch");
  const std::size_t n = cached_input_.batch();
  const std::size_t hw = cached_input_.height() * cached_input_.width();
  const float inv_hw = 1.0F / static_cast<float>(hw);

  const float* gy = grad_output.data();
  const float* x = cached_input_.data();
  const float* pe = cached_excite_.data();

  // Direct path: gx = gy * e (broadcast); attention path grad:
  // ge[n, c] = sum_hw(gy * x).
  tensor grad_input(cached_input_.dims());
  tensor grad_excite(shape{n, channels_});
  float* gx = grad_input.data();
  float* ge = grad_excite.data();
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t c = 0; c < channels_; ++c) {
      const std::size_t base = (s * channels_ + c) * hw;
      const float e = pe[s * channels_ + c];
      float acc = 0.0F;
      for (std::size_t i = 0; i < hw; ++i) {
        gx[base + i] = gy[base + i] * e;
        acc += gy[base + i] * x[base + i];
      }
      ge[s * channels_ + c] = acc;
    }
  }

  // Through the sigmoid: gz2 = ge * e * (1 - e).
  tensor grad_z2 = grad_excite;
  float* gz2 = grad_z2.data();
  for (std::size_t i = 0; i < grad_z2.size(); ++i) {
    gz2[i] *= pe[i] * (1.0F - pe[i]);
  }

  tensor grad_hidden = fc2_.backward(grad_z2);
  // Through the ReLU on the cached pre-activation.
  float* gh = grad_hidden.data();
  const float* h = cached_hidden_.data();
  for (std::size_t i = 0; i < grad_hidden.size(); ++i) {
    if (h[i] <= 0.0F) gh[i] = 0.0F;
  }
  tensor grad_squeezed = fc1_.backward(grad_hidden);

  // Through the global average pool: broadcast /hw back onto the input.
  const float* gs = grad_squeezed.data();
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t c = 0; c < channels_; ++c) {
      const float g = gs[s * channels_ + c] * inv_hw;
      float* plane = gx + (s * channels_ + c) * hw;
      for (std::size_t i = 0; i < hw; ++i) plane[i] += g;
    }
  }
  return grad_input;
}

std::vector<parameter*> squeeze_excite::parameters() {
  std::vector<parameter*> out = fc1_.parameters();
  for (parameter* p : fc2_.parameters()) out.push_back(p);
  return out;
}

std::vector<named_parameter> squeeze_excite::named_parameters(
    const std::string& prefix) {
  const std::string dot = prefix.empty() ? "" : prefix + ".";
  std::vector<named_parameter> out = fc1_.named_parameters(dot + "fc1");
  for (named_parameter& np : fc2_.named_parameters(dot + "fc2")) {
    out.push_back(np);
  }
  return out;
}

shape squeeze_excite::output_shape(const shape& input) const {
  APPEAL_CHECK(input.rank() == 4 && input.channels() == channels_,
               "squeeze_excite output_shape: bad input " + input.to_string());
  return input;
}

std::uint64_t squeeze_excite::flops(const shape& input) const {
  const shape squeezed{input.batch(), channels_};
  const shape hidden{input.batch(), fc1_.out_features()};
  // GAP + two FCs + broadcast multiply.
  return input.element_count() + fc1_.flops(squeezed) + fc2_.flops(hidden) +
         input.element_count();
}

}  // namespace appeal::nn
