#include "nn/sequential.hpp"

#include "nn/inference_workspace.hpp"
#include "util/error.hpp"

namespace appeal::nn {

void sequential::append(layer_ptr child) {
  APPEAL_CHECK(child != nullptr, "sequential::append(nullptr)");
  children_.push_back(std::move(child));
}

layer& sequential::child(std::size_t i) {
  APPEAL_CHECK(i < children_.size(), "sequential child index out of range");
  return *children_[i];
}

const layer& sequential::child(std::size_t i) const {
  APPEAL_CHECK(i < children_.size(), "sequential child index out of range");
  return *children_[i];
}

layer_ptr sequential::remove_child(std::size_t i) {
  APPEAL_CHECK(i < children_.size(), "sequential child index out of range");
  layer_ptr out = std::move(children_[i]);
  children_.erase(children_.begin() + static_cast<std::ptrdiff_t>(i));
  // Keep cut boundaries pointing at the same architectural seam: any cut
  // past the removed slot shifts down with the children (conv+batchnorm
  // folding removes the absorbed batchnorm this way, and both ends of a
  // split link fold identically, so their cut tables stay in lockstep).
  for (cut_point& cut : cuts_) {
    if (cut.boundary > i) --cut.boundary;
  }
  return out;
}

layer_ptr sequential::replace_child(std::size_t i, layer_ptr with) {
  APPEAL_CHECK(i < children_.size(), "sequential child index out of range");
  APPEAL_CHECK(with != nullptr, "sequential::replace_child(nullptr)");
  layer_ptr out = std::move(children_[i]);
  children_[i] = std::move(with);
  return out;
}

void sequential::mark_cut(std::string name) {
  APPEAL_CHECK(!children_.empty(),
               "mark_cut before any child: a cut at boundary 0 is just the "
               "raw input");
  APPEAL_CHECK(cuts_.empty() || cuts_.back().boundary < children_.size(),
               "duplicate cut boundary: " + name);
  cuts_.push_back(cut_point{std::move(name), children_.size()});
}

std::vector<cut_info> sequential::cut_table(const shape& single_input) const {
  std::vector<cut_info> out;
  out.reserve(cuts_.size());
  std::uint64_t total = 0;
  shape current = single_input;
  std::size_t next_cut = 0;
  std::vector<std::uint64_t> prefix(cuts_.size(), 0);
  std::vector<shape> at_cut(cuts_.size());
  for (std::size_t i = 0; i < children_.size(); ++i) {
    total += children_[i]->flops(current);
    current = children_[i]->output_shape(current);
    while (next_cut < cuts_.size() && cuts_[next_cut].boundary == i + 1) {
      prefix[next_cut] = total;
      at_cut[next_cut] = current;
      ++next_cut;
    }
  }
  APPEAL_CHECK(next_cut == cuts_.size(),
               "cut boundary beyond the last child");
  for (std::size_t c = 0; c < cuts_.size(); ++c) {
    cut_info info;
    info.name = cuts_[c].name;
    info.boundary = cuts_[c].boundary;
    info.output = at_cut[c];
    info.feature_bytes = at_cut[c].element_count() * sizeof(float);
    info.prefix_flops = prefix[c];
    info.suffix_flops = total - prefix[c];
    out.push_back(std::move(info));
  }
  return out;
}

tensor sequential::forward_range(const tensor& input, std::size_t begin,
                                 std::size_t end, bool training) {
  APPEAL_CHECK(begin <= end && end <= children_.size(),
               "sequential::forward_range bounds out of range");
  if (begin == end) return input;
  if (!training) {
    // Inference: each child's input becomes garbage the moment the next
    // child has produced its output — recycle it into the thread's
    // workspace so the whole chain allocates nothing once warm. The
    // caller's `input` is never recycled (not ours to reuse).
    inference_workspace& ws = inference_workspace::local();
    tensor current = children_[begin]->forward(input, false);
    for (std::size_t i = begin + 1; i < end; ++i) {
      tensor next = children_[i]->forward(current, false);
      ws.recycle(std::move(current));
      current = std::move(next);
    }
    return current;
  }
  tensor current = input;
  for (std::size_t i = begin; i < end; ++i) {
    current = children_[i]->forward(current, training);
  }
  return current;
}

tensor sequential::forward(const tensor& input, bool training) {
  return forward_range(input, 0, children_.size(), training);
}

tensor sequential::backward(const tensor& grad_output) {
  tensor current = grad_output;
  for (std::size_t i = children_.size(); i-- > 0;) {
    current = children_[i]->backward(current);
  }
  return current;
}

std::vector<parameter*> sequential::parameters() {
  std::vector<parameter*> out;
  for (const layer_ptr& child : children_) {
    for (parameter* p : child->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<named_parameter> sequential::named_parameters(
    const std::string& prefix) {
  std::vector<named_parameter> out;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    const std::string child_prefix =
        (prefix.empty() ? "" : prefix + ".") + std::to_string(i);
    for (named_parameter& np : children_[i]->named_parameters(child_prefix)) {
      out.push_back(np);
    }
  }
  return out;
}

std::vector<named_tensor> sequential::state(const std::string& prefix) {
  std::vector<named_tensor> out;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    const std::string child_prefix =
        (prefix.empty() ? "" : prefix + ".") + std::to_string(i);
    for (named_tensor& nt : children_[i]->state(child_prefix)) {
      out.push_back(nt);
    }
  }
  return out;
}

shape sequential::output_shape(const shape& input) const {
  shape current = input;
  for (const layer_ptr& child : children_) {
    current = child->output_shape(current);
  }
  return current;
}

std::uint64_t sequential::flops(const shape& input) const {
  std::uint64_t total = 0;
  shape current = input;
  for (const layer_ptr& child : children_) {
    total += child->flops(current);
    current = child->output_shape(current);
  }
  return total;
}

std::vector<sequential::child_report> sequential::summarize(
    const shape& input) const {
  std::vector<child_report> out;
  shape current = input;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    child_report report;
    report.flops = children_[i]->flops(current);
    current = children_[i]->output_shape(current);
    report.output = current;
    report.name = std::to_string(i) + ":" + children_[i]->kind();
    out.push_back(std::move(report));
  }
  return out;
}

}  // namespace appeal::nn
