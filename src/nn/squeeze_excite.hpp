// Squeeze-and-excitation block (EfficientNet-style channel attention).
//
// y = x * sigmoid(W2 * relu(W1 * GAP(x))), broadcast per channel.
// Implemented as a composite layer whose backward chains through the two
// internal linear layers and both the direct and the attention paths.
#pragma once

#include "nn/layer.hpp"
#include "nn/linear.hpp"

namespace appeal::nn {

/// Squeeze-excitation over NCHW tensors with reduction ratio `reduction`.
class squeeze_excite : public layer {
 public:
  squeeze_excite(std::size_t channels, std::size_t reduction = 4);

  const char* kind() const override { return "squeeze_excite"; }
  tensor forward(const tensor& input, bool training) override;
  tensor backward(const tensor& grad_output) override;
  std::vector<parameter*> parameters() override;
  std::vector<named_parameter> named_parameters(
      const std::string& prefix) override;
  shape output_shape(const shape& input) const override;
  std::uint64_t flops(const shape& input) const override;

  std::size_t channels() const { return channels_; }
  linear& reduce_fc() { return fc1_; }
  linear& expand_fc() { return fc2_; }

 private:
  std::size_t channels_;
  linear fc1_;  // channels -> channels/reduction
  linear fc2_;  // channels/reduction -> channels
  tensor cached_input_;
  tensor cached_excite_;   // e = sigmoid(z2), [N, C]
  tensor cached_hidden_;   // relu(fc1(s)) pre-activation, [N, C/r]
};

}  // namespace appeal::nn
