// Pooling layers: max, average, global average, plus flatten.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace appeal::nn {

/// Max pooling over square windows; caches argmax indices for backward.
class maxpool2d : public layer {
 public:
  maxpool2d(std::size_t kernel, std::size_t stride);

  const char* kind() const override { return "maxpool2d"; }
  tensor forward(const tensor& input, bool training) override;
  tensor backward(const tensor& grad_output) override;
  shape output_shape(const shape& input) const override;

 private:
  std::size_t kernel_;
  std::size_t stride_;
  shape cached_input_shape_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

/// Average pooling over square windows.
class avgpool2d : public layer {
 public:
  avgpool2d(std::size_t kernel, std::size_t stride);

  const char* kind() const override { return "avgpool2d"; }
  tensor forward(const tensor& input, bool training) override;
  tensor backward(const tensor& grad_output) override;
  shape output_shape(const shape& input) const override;
  std::uint64_t flops(const shape& input) const override;

 private:
  std::size_t kernel_;
  std::size_t stride_;
  shape cached_input_shape_;
};

/// Global average pooling: [N, C, H, W] -> [N, C].
class global_avgpool : public layer {
 public:
  const char* kind() const override { return "global_avgpool"; }
  tensor forward(const tensor& input, bool training) override;
  tensor backward(const tensor& grad_output) override;
  shape output_shape(const shape& input) const override;
  std::uint64_t flops(const shape& input) const override {
    return input.element_count();
  }

 private:
  shape cached_input_shape_;
};

/// Flatten: [N, ...] -> [N, prod(...)]. Pure reshape, gradient reshapes back.
class flatten_layer : public layer {
 public:
  const char* kind() const override { return "flatten"; }
  tensor forward(const tensor& input, bool training) override;
  tensor backward(const tensor& grad_output) override;
  shape output_shape(const shape& input) const override;

 private:
  shape cached_input_shape_;
};

}  // namespace appeal::nn
