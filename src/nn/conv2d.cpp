#include "nn/conv2d.hpp"

#include "tensor/gemm.hpp"
#include "util/error.hpp"

namespace appeal::nn {

conv2d::conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t padding,
               std::size_t groups, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      groups_(groups),
      has_bias_(bias),
      weight_("weight", tensor(shape{out_channels, in_channels / groups,
                                     kernel, kernel})),
      bias_("bias", tensor(shape{out_channels})) {
  APPEAL_CHECK(groups > 0 && in_channels % groups == 0 &&
                   out_channels % groups == 0,
               "conv2d: channels must divide evenly into groups");
  APPEAL_CHECK(kernel > 0 && stride > 0, "conv2d: kernel/stride must be > 0");
}

ops::conv_geometry conv2d::group_geometry(const shape& input) const {
  ops::conv_geometry g;
  g.channels = in_channels_ / groups_;
  g.height = input.height();
  g.width = input.width();
  g.kernel = kernel_;
  g.stride = stride_;
  g.padding = padding_;
  return g;
}

tensor conv2d::forward(const tensor& input, bool /*training*/) {
  APPEAL_CHECK(input.dims().rank() == 4 && input.channels() == in_channels_,
               "conv2d forward: expected NCHW with " +
                   std::to_string(in_channels_) + " channels, got " +
                   input.dims().to_string());
  const ops::conv_geometry g = group_geometry(input.dims());
  APPEAL_CHECK(g.valid(), "conv2d forward: kernel larger than padded input " +
                              input.dims().to_string());
  cached_input_ = input;

  const std::size_t n = input.batch();
  const std::size_t out_h = g.out_height();
  const std::size_t out_w = g.out_width();
  const std::size_t cols = g.column_count();
  const std::size_t patch = g.patch_size();
  const std::size_t oc_per_group = out_channels_ / groups_;
  const std::size_t ic_per_group = in_channels_ / groups_;
  const std::size_t in_plane = input.height() * input.width();

  columns_.resize(patch * cols);
  tensor out(shape{n, out_channels_, out_h, out_w});

  for (std::size_t s = 0; s < n; ++s) {
    const float* sample = input.data() + s * in_channels_ * in_plane;
    float* out_sample = out.data() + s * out_channels_ * cols;
    for (std::size_t grp = 0; grp < groups_; ++grp) {
      ops::im2col(g, sample + grp * ic_per_group * in_plane, columns_.data());
      // out_g[oc/g, cols] = W_g[oc/g, patch] * columns[patch, cols]
      ops::sgemm(oc_per_group, cols, patch, 1.0F,
                 weight_.value.data() + grp * oc_per_group * patch,
                 columns_.data(), 0.0F,
                 out_sample + grp * oc_per_group * cols);
    }
    if (has_bias_) {
      const float* pb = bias_.value.data();
      for (std::size_t c = 0; c < out_channels_; ++c) {
        float* plane = out_sample + c * cols;
        const float b = pb[c];
        for (std::size_t i = 0; i < cols; ++i) plane[i] += b;
      }
    }
  }
  return out;
}

tensor conv2d::backward(const tensor& grad_output) {
  APPEAL_CHECK(!cached_input_.empty(), "conv2d backward before forward");
  const ops::conv_geometry g = group_geometry(cached_input_.dims());
  const std::size_t n = cached_input_.batch();
  const std::size_t cols = g.column_count();
  const std::size_t patch = g.patch_size();
  const std::size_t oc_per_group = out_channels_ / groups_;
  const std::size_t ic_per_group = in_channels_ / groups_;
  const std::size_t in_plane = cached_input_.height() * cached_input_.width();

  APPEAL_CHECK(
      grad_output.dims() ==
          shape({n, out_channels_, g.out_height(), g.out_width()}),
      "conv2d backward: grad shape mismatch " + grad_output.dims().to_string());

  tensor grad_input(cached_input_.dims());
  std::vector<float> grad_columns(patch * cols);
  columns_.resize(patch * cols);

  for (std::size_t s = 0; s < n; ++s) {
    const float* sample = cached_input_.data() + s * in_channels_ * in_plane;
    const float* gout_sample = grad_output.data() + s * out_channels_ * cols;
    float* gin_sample = grad_input.data() + s * in_channels_ * in_plane;
    for (std::size_t grp = 0; grp < groups_; ++grp) {
      const float* gout_g = gout_sample + grp * oc_per_group * cols;

      // Recompute this group's im2col panel.
      ops::im2col(g, sample + grp * ic_per_group * in_plane, columns_.data());

      // dW_g[oc/g, patch] += gout_g[oc/g, cols] * columns^T[cols, patch].
      ops::sgemm_bt(oc_per_group, patch, cols, 1.0F, gout_g, columns_.data(),
                    1.0F, weight_.grad.data() + grp * oc_per_group * patch);

      // grad_columns[patch, cols] = W_g^T[patch, oc/g] * gout_g[oc/g, cols].
      ops::sgemm_at(patch, cols, oc_per_group, 1.0F,
                    weight_.value.data() + grp * oc_per_group * patch, gout_g,
                    0.0F, grad_columns.data());
      ops::col2im(g, grad_columns.data(),
                  gin_sample + grp * ic_per_group * in_plane);
    }
    if (has_bias_) {
      float* pb = bias_.grad.data();
      for (std::size_t c = 0; c < out_channels_; ++c) {
        const float* plane = gout_sample + c * cols;
        float acc = 0.0F;
        for (std::size_t i = 0; i < cols; ++i) acc += plane[i];
        pb[c] += acc;
      }
    }
  }
  return grad_input;
}

std::vector<parameter*> conv2d::parameters() {
  std::vector<parameter*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

shape conv2d::output_shape(const shape& input) const {
  APPEAL_CHECK(input.rank() == 4 && input.channels() == in_channels_,
               "conv2d output_shape: bad input " + input.to_string());
  const ops::conv_geometry g = group_geometry(input);
  APPEAL_CHECK(g.valid(), "conv2d output_shape: kernel larger than input");
  return shape{input.batch(), out_channels_, g.out_height(), g.out_width()};
}

std::uint64_t conv2d::flops(const shape& input) const {
  const ops::conv_geometry g = group_geometry(input);
  const std::uint64_t cols = g.column_count();
  // Each output element of each group: patch_size MACs.
  std::uint64_t macs =
      input.batch() * out_channels_ * cols * g.patch_size();
  if (has_bias_) macs += input.batch() * out_channels_ * cols;
  return 2 * macs;
}

parameter& conv2d::bias() {
  APPEAL_CHECK(has_bias_, "bias() on a bias-free conv2d layer");
  return bias_;
}

}  // namespace appeal::nn
