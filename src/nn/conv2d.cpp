#include "nn/conv2d.hpp"

#include <cstring>
#include <limits>

#include "nn/inference_workspace.hpp"
#include "tensor/gemm.hpp"
#include "util/error.hpp"

namespace appeal::nn {

conv2d::conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t padding,
               std::size_t groups, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      groups_(groups),
      has_bias_(bias),
      weight_("weight", tensor(shape{out_channels, in_channels / groups,
                                     kernel, kernel})),
      bias_("bias", tensor(shape{out_channels})) {
  APPEAL_CHECK(groups > 0 && in_channels % groups == 0 &&
                   out_channels % groups == 0,
               "conv2d: channels must divide evenly into groups");
  APPEAL_CHECK(kernel > 0 && stride > 0, "conv2d: kernel/stride must be > 0");
}

ops::conv_geometry conv2d::group_geometry(const shape& input) const {
  ops::conv_geometry g;
  g.channels = in_channels_ / groups_;
  g.height = input.height();
  g.width = input.width();
  g.kernel = kernel_;
  g.stride = stride_;
  g.padding = padding_;
  return g;
}

tensor conv2d::forward(const tensor& input, bool training) {
  APPEAL_CHECK(input.dims().rank() == 4 && input.channels() == in_channels_,
               "conv2d forward: expected NCHW with " +
                   std::to_string(in_channels_) + " channels, got " +
                   input.dims().to_string());
  const ops::conv_geometry g = group_geometry(input.dims());
  APPEAL_CHECK(g.valid(), "conv2d forward: kernel larger than padded input " +
                              input.dims().to_string());
  if (!training) {
    // Inference caches nothing; drop any stale training cache so a later
    // backward() fails loudly instead of differentiating the wrong pass.
    cached_input_ = tensor();
    return forward_inference(input, g);
  }
  cached_input_ = input;

  const std::size_t n = input.batch();
  const std::size_t out_h = g.out_height();
  const std::size_t out_w = g.out_width();
  const std::size_t cols = g.column_count();
  const std::size_t patch = g.patch_size();
  const std::size_t oc_per_group = out_channels_ / groups_;
  const std::size_t ic_per_group = in_channels_ / groups_;
  const std::size_t in_plane = input.height() * input.width();

  columns_.resize(patch * cols);
  tensor out(shape{n, out_channels_, out_h, out_w});

  for (std::size_t s = 0; s < n; ++s) {
    const float* sample = input.data() + s * in_channels_ * in_plane;
    float* out_sample = out.data() + s * out_channels_ * cols;
    for (std::size_t grp = 0; grp < groups_; ++grp) {
      ops::im2col(g, sample + grp * ic_per_group * in_plane, columns_.data());
      // out_g[oc/g, cols] = W_g[oc/g, patch] * columns[patch, cols]
      ops::sgemm(oc_per_group, cols, patch, 1.0F,
                 weight_.value.data() + grp * oc_per_group * patch,
                 columns_.data(), 0.0F,
                 out_sample + grp * oc_per_group * cols);
    }
    if (has_bias_) {
      const float* pb = bias_.value.data();
      for (std::size_t c = 0; c < out_channels_; ++c) {
        float* plane = out_sample + c * cols;
        const float b = pb[c];
        for (std::size_t i = 0; i < cols; ++i) plane[i] += b;
      }
    }
  }
  return out;
}

namespace {

/// Direct depthwise convolution (groups == in == out channels): each
/// output plane is one K x K stencil over its input plane. im2col would
/// copy every pixel K*K times only to feed [1 x patch] GEMMs; the direct
/// loop reads each input once. Interior output rows skip bounds checks.
void depthwise_direct(const ops::conv_geometry& g, std::size_t channels,
                      const float* input, const float* weights,
                      const float* bias, float act_lo, float act_hi,
                      std::size_t n, float* out) {
  const bool clamp =
      act_lo != -std::numeric_limits<float>::infinity() ||
      act_hi != std::numeric_limits<float>::infinity();
  const std::size_t out_h = g.out_height();
  const std::size_t out_w = g.out_width();
  const std::size_t cols = out_h * out_w;
  const std::size_t in_plane = g.height * g.width;
  const auto h = static_cast<std::ptrdiff_t>(g.height);
  const auto w = static_cast<std::ptrdiff_t>(g.width);

  // Columns whose whole kernel window is horizontally in bounds — the
  // interior loop runs unchecked.
  const std::size_t ox_lo =
      std::min(out_w, (g.padding + g.stride - 1) / g.stride);
  const std::size_t ox_hi =
      g.width + g.padding >= g.kernel
          ? std::min(out_w, (g.width + g.padding - g.kernel) / g.stride + 1)
          : 0;

  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t c = 0; c < channels; ++c) {
      const float* src = input + (s * channels + c) * in_plane;
      const float* wch = weights + c * g.kernel * g.kernel;
      float* dst = out + (s * channels + c) * cols;
      const float b = bias != nullptr ? bias[c] : 0.0F;
      for (std::size_t oy = 0; oy < out_h; ++oy) {
        const std::ptrdiff_t iy0 =
            static_cast<std::ptrdiff_t>(oy * g.stride) -
            static_cast<std::ptrdiff_t>(g.padding);
        const std::size_t ky_lo =
            iy0 < 0 ? static_cast<std::size_t>(-iy0) : 0;
        const std::size_t ky_hi =
            iy0 >= h ? 0
                     : (iy0 + static_cast<std::ptrdiff_t>(g.kernel) > h
                            ? static_cast<std::size_t>(h - iy0)
                            : g.kernel);
        float* drow = dst + oy * out_w;

        const auto checked = [&](std::size_t ox) {
          const std::ptrdiff_t ix0 =
              static_cast<std::ptrdiff_t>(ox * g.stride) -
              static_cast<std::ptrdiff_t>(g.padding);
          float acc = b;
          for (std::size_t ky = ky_lo; ky < ky_hi; ++ky) {
            const float* srow =
                src + (static_cast<std::size_t>(iy0) + ky) * g.width;
            const float* wrow = wch + ky * g.kernel;
            for (std::size_t kx = 0; kx < g.kernel; ++kx) {
              const std::ptrdiff_t ix = ix0 + static_cast<std::ptrdiff_t>(kx);
              if (ix < 0 || ix >= w) continue;
              acc += wrow[kx] * srow[static_cast<std::size_t>(ix)];
            }
          }
          drow[ox] = clamp ? std::min(std::max(acc, act_lo), act_hi) : acc;
        };

        for (std::size_t ox = 0; ox < ox_lo; ++ox) checked(ox);
        if (g.stride == 1 && ox_hi > ox_lo) {
          // Tap loop: each of the K*K weights does one vector FMA along
          // the contiguous output row instead of a scalar stencil per
          // pixel.
          const std::size_t len = ox_hi - ox_lo;
          float* seg = drow + ox_lo;
          for (std::size_t t = 0; t < len; ++t) seg[t] = b;
          const std::size_t base = ox_lo - g.padding;  // >= 0 by ox_lo
          for (std::size_t ky = ky_lo; ky < ky_hi; ++ky) {
            const float* srow =
                src + (static_cast<std::size_t>(iy0) + ky) * g.width + base;
            const float* wrow = wch + ky * g.kernel;
            for (std::size_t kx = 0; kx < g.kernel; ++kx) {
              const float wv = wrow[kx];
              const float* sp = srow + kx;
#pragma omp simd
              for (std::size_t t = 0; t < len; ++t) seg[t] += wv * sp[t];
            }
          }
          if (clamp) {
            for (std::size_t t = 0; t < len; ++t) {
              seg[t] = std::min(std::max(seg[t], act_lo), act_hi);
            }
          }
        } else {
          for (std::size_t ox = ox_lo; ox < ox_hi; ++ox) {
            const std::size_t ix0 = ox * g.stride - g.padding;
            float acc = b;
            for (std::size_t ky = ky_lo; ky < ky_hi; ++ky) {
              const float* srow =
                  src + (static_cast<std::size_t>(iy0) + ky) * g.width + ix0;
              const float* wrow = wch + ky * g.kernel;
              for (std::size_t kx = 0; kx < g.kernel; ++kx) {
                acc += wrow[kx] * srow[kx];
              }
            }
            drow[ox] = clamp ? std::min(std::max(acc, act_lo), act_hi) : acc;
          }
        }
        for (std::size_t ox = std::max(ox_lo, ox_hi); ox < out_w; ++ox) {
          checked(ox);
        }
      }
    }
  }
}

}  // namespace

tensor conv2d::forward_inference(const tensor& input,
                                 const ops::conv_geometry& g) {
  const std::size_t n = input.batch();
  const std::size_t cols = g.column_count();
  const std::size_t patch = g.patch_size();
  const std::size_t oc_per_group = out_channels_ / groups_;
  const std::size_t ic_per_group = in_channels_ / groups_;
  const std::size_t in_plane = input.height() * input.width();

  inference_workspace& ws = inference_workspace::local();
  tensor out = ws.acquire(shape{n, out_channels_, g.out_height(),
                                g.out_width()});
  const float* pb = has_bias_ ? bias_.value.data() : nullptr;

  // Depthwise: direct stencil, no lowering at all.
  if (ic_per_group == 1 && oc_per_group == 1) {
    depthwise_direct(g, in_channels_, input.data(), weight_.value.data(), pb,
                     act_lo_, act_hi_, n, out.data());
    return out;
  }

  // Grouped (but not depthwise) convs keep the per-sample lowering: their
  // per-group GEMMs are too small for batch-concatenation to pay for the
  // extra staging pass. Bias and any fused activation ride the GEMM's
  // store epilogue instead of separate passes over the output.
  if (groups_ > 1) {
    inference_workspace::buffer columns = ws.borrow(patch * cols);
    for (std::size_t s = 0; s < n; ++s) {
      const float* sample = input.data() + s * in_channels_ * in_plane;
      float* out_sample = out.data() + s * out_channels_ * cols;
      for (std::size_t grp = 0; grp < groups_; ++grp) {
        ops::im2col(g, sample + grp * ic_per_group * in_plane,
                    columns.data());
        ops::sgemm_bias_act(oc_per_group, cols, patch, 1.0F,
                            weight_.value.data() + grp * oc_per_group * patch,
                            columns.data(),
                            pb != nullptr ? pb + grp * oc_per_group : nullptr,
                            act_lo_, act_hi_,
                            out_sample + grp * oc_per_group * cols);
      }
    }
    return out;
  }

  // Dense conv: the whole batch unrolls side by side into ONE
  // [patch, N * cols] matrix and runs ONE packed GEMM per layer.
  const std::size_t batch_cols = n * cols;
  inference_workspace::buffer columns = ws.borrow(patch * batch_cols);
  for (std::size_t s = 0; s < n; ++s) {
    const float* sample = input.data() + s * in_channels_ * in_plane;
    ops::im2col_strided(g, sample, columns.data() + s * cols, batch_cols);
  }
  const float* wall = weight_.value.data();
  if (n == 1) {
    // Single sample: [oc, cols] GEMM output IS the NCHW layout.
    ops::sgemm_bias_act(out_channels_, cols, patch, 1.0F, wall,
                        columns.data(), pb, act_lo_, act_hi_, out.data());
    return out;
  }
  inference_workspace::buffer staged = ws.borrow(out_channels_ * batch_cols);
  ops::sgemm_bias_act(out_channels_, batch_cols, patch, 1.0F, wall,
                      columns.data(), pb, act_lo_, act_hi_, staged.data());
  // Scatter [oc, N * cols] into NCHW — bias and clamp already applied at
  // the GEMM store, so this is a pure copy.
  for (std::size_t c = 0; c < out_channels_; ++c) {
    const float* src = staged.data() + c * batch_cols;
    for (std::size_t s = 0; s < n; ++s) {
      float* dst = out.data() + (s * out_channels_ + c) * cols;
      std::memcpy(dst, src + s * cols, cols * sizeof(float));
    }
  }
  return out;
}

tensor conv2d::backward(const tensor& grad_output) {
  APPEAL_CHECK(!cached_input_.empty(), "conv2d backward before forward");
  const ops::conv_geometry g = group_geometry(cached_input_.dims());
  const std::size_t n = cached_input_.batch();
  const std::size_t cols = g.column_count();
  const std::size_t patch = g.patch_size();
  const std::size_t oc_per_group = out_channels_ / groups_;
  const std::size_t ic_per_group = in_channels_ / groups_;
  const std::size_t in_plane = cached_input_.height() * cached_input_.width();

  APPEAL_CHECK(
      grad_output.dims() ==
          shape({n, out_channels_, g.out_height(), g.out_width()}),
      "conv2d backward: grad shape mismatch " + grad_output.dims().to_string());

  tensor grad_input(cached_input_.dims());
  std::vector<float> grad_columns(patch * cols);
  columns_.resize(patch * cols);

  for (std::size_t s = 0; s < n; ++s) {
    const float* sample = cached_input_.data() + s * in_channels_ * in_plane;
    const float* gout_sample = grad_output.data() + s * out_channels_ * cols;
    float* gin_sample = grad_input.data() + s * in_channels_ * in_plane;
    for (std::size_t grp = 0; grp < groups_; ++grp) {
      const float* gout_g = gout_sample + grp * oc_per_group * cols;

      // Recompute this group's im2col panel.
      ops::im2col(g, sample + grp * ic_per_group * in_plane, columns_.data());

      // dW_g[oc/g, patch] += gout_g[oc/g, cols] * columns^T[cols, patch].
      ops::sgemm_bt(oc_per_group, patch, cols, 1.0F, gout_g, columns_.data(),
                    1.0F, weight_.grad.data() + grp * oc_per_group * patch);

      // grad_columns[patch, cols] = W_g^T[patch, oc/g] * gout_g[oc/g, cols].
      ops::sgemm_at(patch, cols, oc_per_group, 1.0F,
                    weight_.value.data() + grp * oc_per_group * patch, gout_g,
                    0.0F, grad_columns.data());
      ops::col2im(g, grad_columns.data(),
                  gin_sample + grp * ic_per_group * in_plane);
    }
    if (has_bias_) {
      float* pb = bias_.grad.data();
      for (std::size_t c = 0; c < out_channels_; ++c) {
        const float* plane = gout_sample + c * cols;
        float acc = 0.0F;
        for (std::size_t i = 0; i < cols; ++i) acc += plane[i];
        pb[c] += acc;
      }
    }
  }
  return grad_input;
}

std::vector<parameter*> conv2d::parameters() {
  std::vector<parameter*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

shape conv2d::output_shape(const shape& input) const {
  APPEAL_CHECK(input.rank() == 4 && input.channels() == in_channels_,
               "conv2d output_shape: bad input " + input.to_string());
  const ops::conv_geometry g = group_geometry(input);
  APPEAL_CHECK(g.valid(), "conv2d output_shape: kernel larger than input");
  return shape{input.batch(), out_channels_, g.out_height(), g.out_width()};
}

std::uint64_t conv2d::flops(const shape& input) const {
  const ops::conv_geometry g = group_geometry(input);
  const std::uint64_t cols = g.column_count();
  // Each output element of each group: patch_size MACs.
  std::uint64_t macs =
      input.batch() * out_channels_ * cols * g.patch_size();
  if (has_bias_) macs += input.batch() * out_channels_ * cols;
  return 2 * macs;
}

parameter& conv2d::bias() {
  APPEAL_CHECK(has_bias_, "bias() on a bias-free conv2d layer");
  return bias_;
}

}  // namespace appeal::nn
