// Simulated post-training quantization (PTQ).
//
// Edge deployments of the little network typically quantize weights to
// int8 (paper Section II, "static techniques"). This module implements
// affine fake-quantization: values are quantized to a b-bit grid and
// immediately dequantized, so inference runs in float but with exactly the
// precision loss a fixed-point deployment would see. That is the standard
// way to evaluate PTQ accuracy without an int8 kernel library.
#pragma once

#include <cstdint>
#include <span>

#include "nn/layer.hpp"

namespace appeal::nn {

/// Affine quantizer parameters: real = scale * (q - zero_point).
///
/// Symmetric grids (weights) are SIGNED and centred on zero: the code
/// domain is −(2^(b−1)−1) … 2^(b−1)−1 with zero_point == 0, so an int8
/// weight grid is −127…127 and quantized weights store directly into
/// std::int8_t — the packing contract of the s8 GEMM kernel
/// (tensor/gemm_s8). The −2^(b−1) code is deliberately unused: the grid
/// stays symmetric, so negating a weight never saturates. Asymmetric
/// grids (activations) are UNSIGNED: 0 … 2^b−1 with a shifted zero point.
struct quant_params {
  float scale = 1.0F;
  std::int32_t zero_point = 0;
  int bits = 8;
  bool symmetric = false;

  std::int32_t q_min() const {
    return symmetric ? -((1 << (bits - 1)) - 1) : 0;
  }
  std::int32_t q_max() const {
    return symmetric ? (1 << (bits - 1)) - 1 : (1 << bits) - 1;
  }
};

/// Chooses affine parameters covering [min(values), max(values)].
/// `symmetric` centres the grid on zero (common for weights); asymmetric
/// uses the full range (common for activations). Degenerate all-equal
/// inputs produce scale so quantization is exact for that value.
quant_params choose_quant_params(std::span<const float> values, int bits,
                                 bool symmetric);

/// Quantizes one value to the grid and back.
float fake_quantize_value(float value, const quant_params& params);

/// Quantize-dequantizes every element in place.
void fake_quantize_inplace(tensor& values, const quant_params& params);

/// Fake-quantizes every parameter whose name ends in "weight" across the
/// model (per-tensor symmetric affine grids). Biases and batchnorm
/// parameters stay in float, as in standard int8 deployments.
/// Returns the number of tensors quantized.
std::size_t quantize_model_weights(layer& model, int bits);

/// Root-mean-square error between a tensor and its fake-quantized copy —
/// the distortion a deployment at this precision introduces.
double quantization_rmse(const tensor& values, int bits, bool symmetric);

}  // namespace appeal::nn
