#include "nn/layer.hpp"

namespace appeal::nn {

std::vector<named_parameter> layer::named_parameters(
    const std::string& prefix) {
  std::vector<named_parameter> out;
  for (parameter* p : parameters()) {
    const std::string qualified =
        prefix.empty() ? p->name : prefix + "." + p->name;
    out.push_back(named_parameter{qualified, p});
  }
  return out;
}

std::vector<named_tensor> layer::state(const std::string& prefix) {
  std::vector<named_tensor> out;
  for (named_parameter& np : named_parameters(prefix)) {
    out.push_back(named_tensor{np.qualified_name, &np.param->value});
  }
  return out;
}

std::uint64_t layer::flops(const shape& /*input*/) const { return 0; }

}  // namespace appeal::nn
