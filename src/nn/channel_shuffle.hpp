// Channel shuffle (ShuffleNet): interleaves channels across groups so
// grouped 1x1 convolutions exchange information between groups.
#pragma once

#include "nn/layer.hpp"

namespace appeal::nn {

/// Permutes channels: channel (g, c) -> (c, g) when channels are viewed as
/// a [groups, channels/groups] grid. Backward applies the inverse permute.
class channel_shuffle : public layer {
 public:
  explicit channel_shuffle(std::size_t groups);

  const char* kind() const override { return "channel_shuffle"; }
  tensor forward(const tensor& input, bool training) override;
  tensor backward(const tensor& grad_output) override;
  shape output_shape(const shape& input) const override;

  std::size_t groups() const { return groups_; }

 private:
  tensor permute(const tensor& input, bool inverse, bool training) const;

  std::size_t groups_;
  shape cached_input_shape_;
};

}  // namespace appeal::nn
