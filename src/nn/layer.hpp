// Layer interface for the training stack.
//
// The framework is Caffe-style: each layer owns its parameters and
// implements an explicit forward/backward pair. backward() must be called
// after the forward() whose activations it differentiates; layers cache
// whatever they need between the two calls. Parameter gradients are
// *accumulated* (+=) so multi-head architectures can sum gradient
// contributions before an optimizer step.
//
// Inference caching contract: forward(input, /*training=*/false) is the
// serving fast path — layers cache NOTHING for backward (conv input
// copies, batchnorm x-hat, pooling argmax maps are all skipped), clear
// any stale training-mode cache, and draw outputs/scratch from the
// calling thread's nn::inference_workspace instead of the heap. A
// backward() after an inference-mode forward is undefined: layers that
// need cached activations throw (util::error), shape-only layers merely
// propagate. Containers
// (sequential, residual, two_head_network) recycle intermediate
// activations back into the workspace, so a warm inference pass performs
// zero heap allocations.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace appeal::nn {

/// A learnable tensor with its gradient accumulator.
struct parameter {
  std::string name;  // local name, e.g. "weight"; qualified by containers
  tensor value;
  tensor grad;

  parameter() = default;
  parameter(std::string n, tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.dims()) {}

  void zero_grad() { grad.zero(); }
};

/// A (qualified-name, parameter) pair used for serialization and reporting.
struct named_parameter {
  std::string qualified_name;
  parameter* param = nullptr;
};

/// A (qualified-name, tensor) pair covering all persistent state — learnable
/// parameters plus non-learnable buffers such as batchnorm running stats.
struct named_tensor {
  std::string qualified_name;
  tensor* value = nullptr;
};

/// Abstract differentiable layer.
class layer {
 public:
  virtual ~layer() = default;

  /// Short type tag ("conv2d", "linear", ...) for summaries/errors.
  virtual const char* kind() const = 0;

  /// Computes the layer output. `training` toggles train-time behaviour
  /// (batchnorm statistics, dropout masks). Must cache enough state for a
  /// following backward().
  virtual tensor forward(const tensor& input, bool training) = 0;

  /// Given dL/d(output), accumulates parameter gradients and returns
  /// dL/d(input). Requires a preceding forward() on this layer.
  virtual tensor backward(const tensor& grad_output) = 0;

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<parameter*> parameters() { return {}; }

  /// Parameters with names qualified by `prefix` (containers recurse).
  virtual std::vector<named_parameter> named_parameters(
      const std::string& prefix);

  /// All persistent tensors (parameter values plus buffers like batchnorm
  /// running statistics) — the serialization surface. Default: parameter
  /// values only.
  virtual std::vector<named_tensor> state(const std::string& prefix);

  /// Output shape produced for a given input shape (shape inference,
  /// also used by the FLOPs accounting and model summaries).
  virtual shape output_shape(const shape& input) const = 0;

  /// Multiply-accumulate-based FLOP estimate for one forward pass on
  /// `input` (2 FLOPs per MAC, the convention the paper's MFLOPs use).
  virtual std::uint64_t flops(const shape& input) const;

  layer() = default;
  layer(const layer&) = delete;
  layer& operator=(const layer&) = delete;
};

using layer_ptr = std::unique_ptr<layer>;

}  // namespace appeal::nn
