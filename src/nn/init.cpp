#include "nn/init.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace appeal::nn {

void kaiming_normal(tensor& weights, util::rng& gen, std::size_t fan_in) {
  APPEAL_CHECK(fan_in > 0, "kaiming_normal requires fan_in > 0");
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (auto& v : weights.values()) {
    v = static_cast<float>(gen.normal(0.0, stddev));
  }
}

void xavier_uniform(tensor& weights, util::rng& gen, std::size_t fan_in,
                    std::size_t fan_out) {
  APPEAL_CHECK(fan_in + fan_out > 0, "xavier_uniform requires positive fans");
  const auto bound = static_cast<float>(
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out)));
  for (auto& v : weights.values()) {
    v = gen.uniform(-bound, bound);
  }
}

void initialize_model(layer& model, util::rng& gen) {
  for (named_parameter& np : model.named_parameters("")) {
    const std::string& name = np.qualified_name;
    tensor& value = np.param->value;
    const bool is_weight =
        name.size() >= 6 && name.rfind("weight") == name.size() - 6;
    const bool is_bias =
        name.size() >= 4 && name.rfind("bias") == name.size() - 4;
    const bool is_beta =
        name.size() >= 4 && name.rfind("beta") == name.size() - 4;
    const bool is_gamma =
        name.size() >= 5 && name.rfind("gamma") == name.size() - 5;

    if (is_weight && value.dims().rank() >= 2) {
      std::size_t fan_in = 1;
      for (std::size_t i = 1; i < value.dims().rank(); ++i) {
        fan_in *= value.dims().dim(i);
      }
      kaiming_normal(value, gen, fan_in);
    } else if (is_bias || is_beta) {
      value.fill(0.0F);
    } else if (is_gamma) {
      value.fill(1.0F);
    }
    np.param->zero_grad();
  }
}

}  // namespace appeal::nn
