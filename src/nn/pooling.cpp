#include "nn/pooling.hpp"

#include <cstring>
#include <limits>

#include "nn/inference_workspace.hpp"
#include "util/error.hpp"

namespace appeal::nn {

namespace {

std::size_t pooled_extent(std::size_t in, std::size_t kernel,
                          std::size_t stride) {
  APPEAL_CHECK(in >= kernel, "pooling window larger than input");
  return (in - kernel) / stride + 1;
}

}  // namespace

maxpool2d::maxpool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride) {
  APPEAL_CHECK(kernel > 0 && stride > 0,
               "maxpool2d: kernel/stride must be > 0");
}

tensor maxpool2d::forward(const tensor& input, bool training) {
  APPEAL_CHECK(input.dims().rank() == 4, "maxpool2d expects NCHW input");
  cached_input_shape_ = input.dims();
  const std::size_t n = input.batch();
  const std::size_t c = input.channels();
  const std::size_t h = input.height();
  const std::size_t w = input.width();
  const std::size_t oh = pooled_extent(h, kernel_, stride_);
  const std::size_t ow = pooled_extent(w, kernel_, stride_);

  tensor out = training
                   ? tensor(shape{n, c, oh, ow})
                   : inference_workspace::local().acquire(
                         shape{n, c, oh, ow});
  // The argmax map only feeds backward; inference skips both the fill and
  // the per-window index bookkeeping.
  if (training) {
    argmax_.assign(out.size(), 0);
  } else {
    argmax_.clear();
  }
  const float* in = input.data();
  float* po = out.data();

  std::size_t out_idx = 0;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = in + (s * c + ch) * h * w;
      const std::size_t plane_base = (s * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = plane_base;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const std::size_t iy = oy * stride_ + ky;
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::size_t ix = ox * stride_ + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_base + iy * w + ix;
              }
            }
          }
          po[out_idx] = best;
          if (training) argmax_[out_idx] = best_idx;
        }
      }
    }
  }
  return out;
}

tensor maxpool2d::backward(const tensor& grad_output) {
  APPEAL_CHECK(cached_input_shape_.rank() == 4,
               "maxpool2d backward before forward");
  APPEAL_CHECK(grad_output.size() == argmax_.size(),
               "maxpool2d backward: grad size mismatch");
  tensor grad_input(cached_input_shape_);
  float* gx = grad_input.data();
  const float* gy = grad_output.data();
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    gx[argmax_[i]] += gy[i];
  }
  return grad_input;
}

shape maxpool2d::output_shape(const shape& input) const {
  APPEAL_CHECK(input.rank() == 4, "maxpool2d expects NCHW input");
  return shape{input.batch(), input.channels(),
               pooled_extent(input.height(), kernel_, stride_),
               pooled_extent(input.width(), kernel_, stride_)};
}

avgpool2d::avgpool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride) {
  APPEAL_CHECK(kernel > 0 && stride > 0,
               "avgpool2d: kernel/stride must be > 0");
}

tensor avgpool2d::forward(const tensor& input, bool training) {
  APPEAL_CHECK(input.dims().rank() == 4, "avgpool2d expects NCHW input");
  cached_input_shape_ = input.dims();
  const std::size_t n = input.batch();
  const std::size_t c = input.channels();
  const std::size_t h = input.height();
  const std::size_t w = input.width();
  const std::size_t oh = pooled_extent(h, kernel_, stride_);
  const std::size_t ow = pooled_extent(w, kernel_, stride_);
  const float inv = 1.0F / static_cast<float>(kernel_ * kernel_);

  tensor out = training
                   ? tensor(shape{n, c, oh, ow})
                   : inference_workspace::local().acquire(
                         shape{n, c, oh, ow});
  const float* in = input.data();
  float* po = out.data();
  std::size_t out_idx = 0;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = in + (s * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_idx) {
          float acc = 0.0F;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const std::size_t iy = oy * stride_ + ky;
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              acc += plane[iy * w + ox * stride_ + kx];
            }
          }
          po[out_idx] = acc * inv;
        }
      }
    }
  }
  return out;
}

tensor avgpool2d::backward(const tensor& grad_output) {
  APPEAL_CHECK(cached_input_shape_.rank() == 4,
               "avgpool2d backward before forward");
  const std::size_t n = cached_input_shape_.batch();
  const std::size_t c = cached_input_shape_.channels();
  const std::size_t h = cached_input_shape_.height();
  const std::size_t w = cached_input_shape_.width();
  const std::size_t oh = pooled_extent(h, kernel_, stride_);
  const std::size_t ow = pooled_extent(w, kernel_, stride_);
  APPEAL_CHECK(grad_output.dims() == shape({n, c, oh, ow}),
               "avgpool2d backward: grad shape mismatch");
  const float inv = 1.0F / static_cast<float>(kernel_ * kernel_);

  tensor grad_input(cached_input_shape_);
  float* gx = grad_input.data();
  const float* gy = grad_output.data();
  std::size_t out_idx = 0;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      float* plane = gx + (s * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_idx) {
          const float g = gy[out_idx] * inv;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const std::size_t iy = oy * stride_ + ky;
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              plane[iy * w + ox * stride_ + kx] += g;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

shape avgpool2d::output_shape(const shape& input) const {
  APPEAL_CHECK(input.rank() == 4, "avgpool2d expects NCHW input");
  return shape{input.batch(), input.channels(),
               pooled_extent(input.height(), kernel_, stride_),
               pooled_extent(input.width(), kernel_, stride_)};
}

std::uint64_t avgpool2d::flops(const shape& input) const {
  return input.element_count();
}

tensor global_avgpool::forward(const tensor& input, bool training) {
  APPEAL_CHECK(input.dims().rank() == 4, "global_avgpool expects NCHW input");
  cached_input_shape_ = input.dims();
  const std::size_t n = input.batch();
  const std::size_t c = input.channels();
  const std::size_t hw = input.height() * input.width();
  APPEAL_CHECK(hw > 0, "global_avgpool on empty spatial extent");
  const float inv = 1.0F / static_cast<float>(hw);

  tensor out = training
                   ? tensor(shape{n, c})
                   : inference_workspace::local().acquire(shape{n, c});
  const float* in = input.data();
  float* po = out.data();
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = in + (s * c + ch) * hw;
      float acc = 0.0F;
      for (std::size_t i = 0; i < hw; ++i) acc += plane[i];
      po[s * c + ch] = acc * inv;
    }
  }
  return out;
}

tensor global_avgpool::backward(const tensor& grad_output) {
  APPEAL_CHECK(cached_input_shape_.rank() == 4,
               "global_avgpool backward before forward");
  const std::size_t n = cached_input_shape_.batch();
  const std::size_t c = cached_input_shape_.channels();
  const std::size_t hw =
      cached_input_shape_.height() * cached_input_shape_.width();
  APPEAL_CHECK(grad_output.dims() == shape({n, c}),
               "global_avgpool backward: grad shape mismatch");
  const float inv = 1.0F / static_cast<float>(hw);

  tensor grad_input(cached_input_shape_);
  float* gx = grad_input.data();
  const float* gy = grad_output.data();
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float g = gy[s * c + ch] * inv;
      float* plane = gx + (s * c + ch) * hw;
      for (std::size_t i = 0; i < hw; ++i) plane[i] = g;
    }
  }
  return grad_input;
}

shape global_avgpool::output_shape(const shape& input) const {
  APPEAL_CHECK(input.rank() == 4, "global_avgpool expects NCHW input");
  return shape{input.batch(), input.channels()};
}

tensor flatten_layer::forward(const tensor& input, bool training) {
  APPEAL_CHECK(input.dims().rank() >= 2, "flatten expects rank >= 2");
  cached_input_shape_ = input.dims();
  if (!training) {
    // reshaped() would deep-copy through the heap; stage the copy through
    // the workspace instead (the data itself is already contiguous).
    tensor out = inference_workspace::local().acquire(
        output_shape(input.dims()));
    std::memcpy(out.data(), input.data(), input.size() * sizeof(float));
    return out;
  }
  return input.reshaped(output_shape(input.dims()));
}

tensor flatten_layer::backward(const tensor& grad_output) {
  APPEAL_CHECK(cached_input_shape_.rank() >= 2,
               "flatten backward before forward");
  return grad_output.reshaped(cached_input_shape_);
}

shape flatten_layer::output_shape(const shape& input) const {
  APPEAL_CHECK(input.rank() >= 2, "flatten expects rank >= 2");
  std::size_t rest = 1;
  for (std::size_t i = 1; i < input.rank(); ++i) rest *= input.dim(i);
  return shape{input.dim(0), rest};
}

}  // namespace appeal::nn
