// Batch normalization over NCHW tensors (per-channel statistics).
#pragma once

#include "nn/layer.hpp"

namespace appeal::nn {

/// BatchNorm2d: training mode normalizes with batch statistics and updates
/// running estimates; eval mode normalizes with the running estimates.
class batchnorm2d : public layer {
 public:
  explicit batchnorm2d(std::size_t channels, float epsilon = 1e-5F,
                       float momentum = 0.1F);

  const char* kind() const override { return "batchnorm2d"; }
  tensor forward(const tensor& input, bool training) override;
  tensor backward(const tensor& grad_output) override;
  std::vector<parameter*> parameters() override;
  std::vector<named_tensor> state(const std::string& prefix) override;
  shape output_shape(const shape& input) const override;
  std::uint64_t flops(const shape& input) const override;

  std::size_t channels() const { return channels_; }
  float epsilon() const { return epsilon_; }

  /// Running statistics (exposed for serialization).
  tensor& running_mean() { return running_mean_; }
  tensor& running_var() { return running_var_; }
  parameter& gamma() { return gamma_; }
  parameter& beta() { return beta_; }

 private:
  std::size_t channels_;
  float epsilon_;
  float momentum_;
  parameter gamma_;  // scale, initialized to 1
  parameter beta_;   // shift, initialized to 0
  tensor running_mean_;
  tensor running_var_;

  // Cached forward state (training mode) for backward.
  tensor cached_xhat_;
  tensor cached_inv_std_;  // [C]
  shape cached_input_shape_;
  bool cached_training_ = false;
};

}  // namespace appeal::nn
