#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <map>

#include "util/error.hpp"

namespace appeal::nn {

namespace {

constexpr char magic[4] = {'A', 'P', 'N', 'W'};
constexpr std::uint32_t version = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  APPEAL_CHECK(in.good(), "model file truncated");
  return value;
}

}  // namespace

void save_tensors(const std::vector<named_tensor>& tensors,
                  const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  APPEAL_CHECK(out.good(), "cannot open model file for writing: " + path);

  out.write(magic, sizeof(magic));
  write_pod(out, version);
  write_pod(out, static_cast<std::uint64_t>(tensors.size()));

  for (const named_tensor& nt : tensors) {
    const auto name_len = static_cast<std::uint32_t>(nt.qualified_name.size());
    write_pod(out, name_len);
    out.write(nt.qualified_name.data(), name_len);
    const shape& s = nt.value->dims();
    write_pod(out, static_cast<std::uint32_t>(s.rank()));
    for (std::size_t i = 0; i < s.rank(); ++i) {
      write_pod(out, static_cast<std::uint64_t>(s.dim(i)));
    }
    out.write(reinterpret_cast<const char*>(nt.value->data()),
              static_cast<std::streamsize>(nt.value->size() * sizeof(float)));
  }
  APPEAL_CHECK(out.good(), "failed while writing model file: " + path);
}

void load_tensors(const std::vector<named_tensor>& targets,
                  const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  APPEAL_CHECK(in.good(), "cannot open model file for reading: " + path);

  char file_magic[4];
  in.read(file_magic, sizeof(file_magic));
  APPEAL_CHECK(in.good() && std::equal(file_magic, file_magic + 4, magic),
               "not an AppealNet model file: " + path);
  const auto file_version = read_pod<std::uint32_t>(in);
  APPEAL_CHECK(file_version == version,
               "unsupported model file version in " + path);
  const auto count = read_pod<std::uint64_t>(in);

  std::map<std::string, tensor*> expected;
  for (const named_tensor& nt : targets) {
    expected[nt.qualified_name] = nt.value;
  }
  APPEAL_CHECK(count == expected.size(),
               "model file tensor count mismatch for " + path + ": file has " +
                   std::to_string(count) + ", model expects " +
                   std::to_string(expected.size()));

  for (std::uint64_t t = 0; t < count; ++t) {
    const auto name_len = read_pod<std::uint32_t>(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    APPEAL_CHECK(in.good(), "model file truncated");

    const auto rank = read_pod<std::uint32_t>(in);
    std::vector<std::size_t> dims(rank);
    for (auto& d : dims) {
      d = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
    }
    const shape file_shape{dims};

    const auto it = expected.find(name);
    APPEAL_CHECK(it != expected.end(),
                 "model file contains unknown tensor: " + name);
    APPEAL_CHECK(it->second->dims() == file_shape,
                 "shape mismatch for tensor " + name + ": file " +
                     file_shape.to_string() + ", model " +
                     it->second->dims().to_string());
    in.read(reinterpret_cast<char*>(it->second->data()),
            static_cast<std::streamsize>(it->second->size() * sizeof(float)));
    APPEAL_CHECK(in.good(), "model file truncated in tensor " + name);
  }
}

std::map<std::string, tensor> load_tensors_dynamic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  APPEAL_CHECK(in.good(), "cannot open model file for reading: " + path);

  char file_magic[4];
  in.read(file_magic, sizeof(file_magic));
  APPEAL_CHECK(in.good() && std::equal(file_magic, file_magic + 4, magic),
               "not an AppealNet model file: " + path);
  const auto file_version = read_pod<std::uint32_t>(in);
  APPEAL_CHECK(file_version == version,
               "unsupported model file version in " + path);
  const auto count = read_pod<std::uint64_t>(in);

  std::map<std::string, tensor> out;
  for (std::uint64_t t = 0; t < count; ++t) {
    const auto name_len = read_pod<std::uint32_t>(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    APPEAL_CHECK(in.good(), "model file truncated");

    const auto rank = read_pod<std::uint32_t>(in);
    std::vector<std::size_t> dims(rank);
    for (auto& d : dims) {
      d = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
    }
    tensor value{shape{dims}};
    in.read(reinterpret_cast<char*>(value.data()),
            static_cast<std::streamsize>(value.size() * sizeof(float)));
    APPEAL_CHECK(in.good(), "model file truncated in tensor " + name);
    out.emplace(std::move(name), std::move(value));
  }
  return out;
}

void save_model(layer& model, const std::string& path) {
  save_tensors(model.state(""), path);
}

void load_model(layer& model, const std::string& path) {
  load_tensors(model.state(""), path);
}

bool is_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  char file_magic[4];
  in.read(file_magic, sizeof(file_magic));
  return in.good() && std::equal(file_magic, file_magic + 4, magic);
}

}  // namespace appeal::nn
