#include "nn/flops.hpp"

#include <sstream>

#include "util/string_util.hpp"

namespace appeal::nn {

std::uint64_t total_flops(const layer& model, const shape& input) {
  return model.flops(input);
}

double mflops(const layer& model, const shape& input) {
  return static_cast<double>(model.flops(input)) / 1e6;
}

std::size_t parameter_count(layer& model) {
  std::size_t total = 0;
  for (parameter* p : model.parameters()) {
    total += p->value.size();
  }
  return total;
}

std::string model_summary(layer& model, const shape& input) {
  std::ostringstream os;
  os << "model summary (input " << input.to_string() << ")\n";
  for (named_parameter& np : model.named_parameters("")) {
    os << "  " << np.qualified_name << ' ' << np.param->value.dims().to_string()
       << " (" << np.param->value.size() << ")\n";
  }
  os << "  parameters: " << parameter_count(model) << '\n';
  os << "  forward cost: " << util::format_fixed(mflops(model, input), 3)
     << " MFLOPs\n";
  return os.str();
}

}  // namespace appeal::nn
