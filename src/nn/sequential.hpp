// Sequential layer container with named partition (cut) points.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/layer.hpp"

namespace appeal::nn {

/// A named partition point between children: children [0, boundary) are
/// the prefix, [boundary, size()) the suffix. Cut boundaries track graph
/// rewrites — remove_child shifts them, replace_child preserves them — so
/// two processes that build and fold the same architecture end up with
/// identical cut tables (the property split-computing serving relies on).
struct cut_point {
  std::string name;
  std::size_t boundary = 0;
};

/// Everything a partition decision needs to know about one cut, computed
/// for a given input shape: the feature shape crossing the boundary, its
/// encoded size, and how the model's FLOPs divide around it. Shapes are
/// whatever the children propagate — conv stacks want NCHW, so pass a
/// batch-of-one [1, C, H, W] and strip the batch axis downstream.
struct cut_info {
  std::string name;
  std::size_t boundary = 0;
  shape output;                    // per-sample feature shape at the cut
  std::size_t feature_bytes = 0;   // wire payload: 4 bytes per value
  std::uint64_t prefix_flops = 0;  // compute the sender has already done
  std::uint64_t suffix_flops = 0;  // compute the receiver still owes
};

/// Ordered chain of layers; forward runs front-to-back, backward back-to-
/// front. Owns its children.
class sequential : public layer {
 public:
  sequential() = default;

  /// Appends an already-constructed layer.
  void append(layer_ptr child);

  /// Constructs a layer of type T in place and appends it.
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto child = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *child;
    append(std::move(child));
    return ref;
  }

  std::size_t size() const { return children_.size(); }
  bool empty() const { return children_.empty(); }
  layer& child(std::size_t i);
  const layer& child(std::size_t i) const;

  /// Removes and returns child i. Graph-rewrite support (conv+batchnorm
  /// folding); later children shift down one slot.
  layer_ptr remove_child(std::size_t i);

  /// Swaps child i for `with` and returns the old child — rewrite support
  /// for layer substitution (quantized kernels, calibration observers).
  layer_ptr replace_child(std::size_t i, layer_ptr with);

  /// Declares a named cut point *after* the children appended so far
  /// (boundary = size()). Builders call this between architectural stages;
  /// boundaries must be strictly increasing and past at least one child.
  void mark_cut(std::string name);

  /// Cut points in boundary order, live-adjusted across graph rewrites.
  const std::vector<cut_point>& cuts() const { return cuts_; }

  /// Per-cut shapes, byte sizes, and prefix/suffix FLOPs for the given
  /// input shape (use a batch of one for per-sample numbers), in the
  /// same order as cuts().
  std::vector<cut_info> cut_table(const shape& single_input) const;

  /// Runs children [begin, end) — forward() is forward_range over the
  /// whole chain, so a prefix pass followed by a suffix pass performs
  /// literally the same arithmetic as one full forward (bit-exact).
  tensor forward_range(const tensor& input, std::size_t begin,
                       std::size_t end, bool training);
  tensor forward_prefix(const tensor& input, std::size_t boundary,
                        bool training = false) {
    return forward_range(input, 0, boundary, training);
  }
  tensor forward_suffix(const tensor& feature, std::size_t boundary,
                        bool training = false) {
    return forward_range(feature, boundary, children_.size(), training);
  }

  const char* kind() const override { return "sequential"; }
  tensor forward(const tensor& input, bool training) override;
  tensor backward(const tensor& grad_output) override;
  std::vector<parameter*> parameters() override;
  std::vector<named_parameter> named_parameters(
      const std::string& prefix) override;
  std::vector<named_tensor> state(const std::string& prefix) override;
  shape output_shape(const shape& input) const override;
  std::uint64_t flops(const shape& input) const override;

  /// Per-child FLOPs and output shapes — model summary support.
  struct child_report {
    std::string name;  // "<index>:<kind>"
    shape output;
    std::uint64_t flops = 0;
  };
  std::vector<child_report> summarize(const shape& input) const;

 private:
  std::vector<layer_ptr> children_;
  std::vector<cut_point> cuts_;
};

}  // namespace appeal::nn
