// Sequential layer container.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "nn/layer.hpp"

namespace appeal::nn {

/// Ordered chain of layers; forward runs front-to-back, backward back-to-
/// front. Owns its children.
class sequential : public layer {
 public:
  sequential() = default;

  /// Appends an already-constructed layer.
  void append(layer_ptr child);

  /// Constructs a layer of type T in place and appends it.
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto child = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *child;
    append(std::move(child));
    return ref;
  }

  std::size_t size() const { return children_.size(); }
  bool empty() const { return children_.empty(); }
  layer& child(std::size_t i);
  const layer& child(std::size_t i) const;

  /// Removes and returns child i. Graph-rewrite support (conv+batchnorm
  /// folding); later children shift down one slot.
  layer_ptr remove_child(std::size_t i);

  /// Swaps child i for `with` and returns the old child — rewrite support
  /// for layer substitution (quantized kernels, calibration observers).
  layer_ptr replace_child(std::size_t i, layer_ptr with);

  const char* kind() const override { return "sequential"; }
  tensor forward(const tensor& input, bool training) override;
  tensor backward(const tensor& grad_output) override;
  std::vector<parameter*> parameters() override;
  std::vector<named_parameter> named_parameters(
      const std::string& prefix) override;
  std::vector<named_tensor> state(const std::string& prefix) override;
  shape output_shape(const shape& input) const override;
  std::uint64_t flops(const shape& input) const override;

  /// Per-child FLOPs and output shapes — model summary support.
  struct child_report {
    std::string name;  // "<index>:<kind>"
    shape output;
    std::uint64_t flops = 0;
  };
  std::vector<child_report> summarize(const shape& input) const;

 private:
  std::vector<layer_ptr> children_;
};

}  // namespace appeal::nn
