#include "nn/dropout.hpp"

#include <cstring>

#include "nn/inference_workspace.hpp"
#include "util/error.hpp"

namespace appeal::nn {

dropout::dropout(float drop_probability, std::uint64_t seed)
    : p_(drop_probability), gen_(seed) {
  APPEAL_CHECK(p_ >= 0.0F && p_ < 1.0F,
               "dropout probability must be in [0, 1)");
}

tensor dropout::forward(const tensor& input, bool training) {
  cached_input_shape_ = input.dims();
  last_was_training_ = training;
  if (!training) {
    // Eval is the identity, but the layer API returns by value — stage
    // the copy through the workspace instead of the heap.
    tensor out = inference_workspace::local().acquire(input.dims());
    std::memcpy(out.data(), input.data(), input.size() * sizeof(float));
    return out;
  }
  if (p_ == 0.0F) {
    return input;
  }
  const float keep_scale = 1.0F / (1.0F - p_);
  mask_ = tensor(input.dims());
  tensor out = input;
  float* pm = mask_.data();
  float* po = out.data();
  const std::size_t n = out.size();
  for (std::size_t i = 0; i < n; ++i) {
    const float m = gen_.bernoulli(p_) ? 0.0F : keep_scale;
    pm[i] = m;
    po[i] *= m;
  }
  return out;
}

tensor dropout::backward(const tensor& grad_output) {
  APPEAL_CHECK(grad_output.dims() == cached_input_shape_,
               "dropout backward: grad shape mismatch");
  if (!last_was_training_ || p_ == 0.0F) {
    return grad_output;
  }
  tensor grad_input = grad_output;
  float* g = grad_input.data();
  const float* pm = mask_.data();
  const std::size_t n = grad_input.size();
  for (std::size_t i = 0; i < n; ++i) g[i] *= pm[i];
  return grad_input;
}

}  // namespace appeal::nn
