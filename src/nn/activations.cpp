#include "nn/activations.hpp"

#include <cmath>

#include "nn/inference_workspace.hpp"
#include "util/error.hpp"

namespace appeal::nn {

tensor elementwise_activation::forward(const tensor& input, bool training) {
  if (!training) {
    cached_input_ = tensor();
    tensor out = inference_workspace::local().acquire(input.dims());
    const float* in = input.data();
    float* po = out.data();
    const std::size_t n = out.size();
    for (std::size_t i = 0; i < n; ++i) po[i] = apply(in[i]);
    return out;
  }
  cached_input_ = input;
  tensor out = input;
  for (auto& v : out.values()) v = apply(v);
  return out;
}

tensor elementwise_activation::backward(const tensor& grad_output) {
  APPEAL_CHECK(!cached_input_.empty(), "activation backward before forward");
  APPEAL_CHECK(grad_output.dims() == cached_input_.dims(),
               "activation backward: grad shape mismatch");
  tensor grad_input = grad_output;
  float* g = grad_input.data();
  const float* x = cached_input_.data();
  const std::size_t n = grad_input.size();
  for (std::size_t i = 0; i < n; ++i) g[i] *= derivative(x[i]);
  return grad_input;
}

float relu::apply(float x) const { return x > 0.0F ? x : 0.0F; }
float relu::derivative(float x) const { return x > 0.0F ? 1.0F : 0.0F; }

float relu6::apply(float x) const {
  if (x <= 0.0F) return 0.0F;
  return x < 6.0F ? x : 6.0F;
}
float relu6::derivative(float x) const {
  return (x > 0.0F && x < 6.0F) ? 1.0F : 0.0F;
}

float sigmoid_layer::apply(float x) const {
  return 1.0F / (1.0F + std::exp(-x));
}
float sigmoid_layer::derivative(float x) const {
  const float s = apply(x);
  return s * (1.0F - s);
}

float silu::apply(float x) const { return x / (1.0F + std::exp(-x)); }
float silu::derivative(float x) const {
  const float s = 1.0F / (1.0F + std::exp(-x));
  return s * (1.0F + x * (1.0F - s));
}

float hardswish::apply(float x) const {
  if (x <= -3.0F) return 0.0F;
  if (x >= 3.0F) return x;
  return x * (x + 3.0F) / 6.0F;
}
float hardswish::derivative(float x) const {
  if (x <= -3.0F) return 0.0F;
  if (x >= 3.0F) return 1.0F;
  return (2.0F * x + 3.0F) / 6.0F;
}

}  // namespace appeal::nn
