// Per-thread buffer arena for the inference fast path.
//
// Training allocates freely — every forward produces fresh tensors and
// caches activations for backward. Inference must not: a serving edge
// worker runs the same network geometry thousands of times per second,
// so every layer output and im2col panel it needs has been needed
// before. The workspace keeps those buffers on a thread-local free list:
//
//   - acquire(shape) hands out a pooled tensor (capacity reused, no heap
//     allocation once warm);
//   - recycle(tensor) returns a tensor's storage to the pool (containers
//     recycle each child's input once the next child consumed it);
//   - borrow(n) is RAII float scratch for intra-layer panels (im2col
//     columns, batched GEMM outputs).
//
// Thread-locality makes the pool lock-free and gives every serve::engine
// worker (and every util::thread_pool worker) its own arena — nothing is
// shared, nothing is synchronized. After a warmup pass, steady-state
// inference performs zero heap allocations; the `allocations` counter in
// stats() is how tests pin that down.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace appeal::nn {

class inference_workspace {
 public:
  /// The calling thread's arena.
  static inference_workspace& local();

  /// A pooled tensor of the given shape, contents unspecified (callers
  /// overwrite). Reuses pooled capacity when possible.
  tensor acquire(shape s);

  /// Returns a tensor's storage to the pool. Safe to call with an empty
  /// tensor (no-op).
  void recycle(tensor&& t);

  /// RAII scratch buffer: float storage returned to the pool when the
  /// guard leaves scope.
  class buffer {
   public:
    buffer(inference_workspace& owner, std::vector<float> storage)
        : owner_(&owner), storage_(std::move(storage)) {}
    ~buffer();
    buffer(const buffer&) = delete;
    buffer& operator=(const buffer&) = delete;
    buffer(buffer&& other) noexcept
        : owner_(other.owner_), storage_(std::move(other.storage_)) {
      other.owner_ = nullptr;
    }
    buffer& operator=(buffer&&) = delete;

    float* data() { return storage_.data(); }
    std::size_t size() const { return storage_.size(); }

   private:
    inference_workspace* owner_;
    std::vector<float> storage_;
  };

  /// Borrows scratch of at least `n` floats (sized to exactly `n`).
  buffer borrow(std::size_t n);

  /// Drops all pooled buffers (frees the memory).
  void clear();

  struct usage {
    std::size_t allocations = 0;  // pool misses that hit the heap
    std::size_t reuses = 0;       // pool hits
    std::size_t pooled_bytes = 0; // capacity currently parked in the pool
  };
  usage stats() const;

 private:
  std::vector<float> take(std::size_t n);
  void give_back(std::vector<float>&& storage);

  // Free list, roughly size-sorted by push order; bounded so a one-off
  // giant batch does not pin memory forever.
  static constexpr std::size_t kMaxPooled = 64;
  std::vector<std::vector<float>> pool_;
  std::size_t allocations_ = 0;
  std::size_t reuses_ = 0;
};

}  // namespace appeal::nn
