#include "nn/optimizer.hpp"

#include <cmath>

#include "util/error.hpp"

namespace appeal::nn {

void optimizer::attach(std::vector<parameter*> params) {
  for (parameter* p : params) {
    APPEAL_CHECK(p != nullptr, "optimizer::attach received a null parameter");
  }
  params_ = std::move(params);
  on_attach();
}

void optimizer::zero_grad() {
  for (parameter* p : params_) p->zero_grad();
}

sgd::sgd(double learning_rate, double momentum, double weight_decay,
         bool nesterov)
    : optimizer(learning_rate),
      momentum_(momentum),
      weight_decay_(weight_decay),
      nesterov_(nesterov) {
  APPEAL_CHECK(momentum >= 0.0 && momentum < 1.0,
               "sgd momentum must be in [0, 1)");
  APPEAL_CHECK(weight_decay >= 0.0, "sgd weight decay must be >= 0");
}

void sgd::on_attach() {
  velocity_.clear();
  velocity_.reserve(params_.size());
  for (parameter* p : params_) {
    velocity_.emplace_back(p->value.dims());
  }
}

void sgd::step() {
  const auto lr = static_cast<float>(learning_rate_);
  const auto mu = static_cast<float>(momentum_);
  const auto wd = static_cast<float>(weight_decay_);
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    parameter& p = *params_[pi];
    tensor& vel = velocity_[pi];
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* v = vel.data();
    const std::size_t n = p.value.size();
    for (std::size_t i = 0; i < n; ++i) {
      const float grad = g[i] + wd * w[i];
      v[i] = mu * v[i] + grad;
      const float update = nesterov_ ? grad + mu * v[i] : v[i];
      w[i] -= lr * update;
    }
  }
}

adam::adam(double learning_rate, double beta1, double beta2, double epsilon,
           double weight_decay)
    : optimizer(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  APPEAL_CHECK(beta1 >= 0.0 && beta1 < 1.0, "adam beta1 must be in [0, 1)");
  APPEAL_CHECK(beta2 >= 0.0 && beta2 < 1.0, "adam beta2 must be in [0, 1)");
  APPEAL_CHECK(epsilon > 0.0, "adam epsilon must be > 0");
}

void adam::on_attach() {
  m_.clear();
  v_.clear();
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (parameter* p : params_) {
    m_.emplace_back(p->value.dims());
    v_.emplace_back(p->value.dims());
  }
  step_count_ = 0;
}

void adam::step() {
  ++step_count_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  const auto lr = static_cast<float>(learning_rate_ * std::sqrt(bias2) / bias1);
  const auto b1 = static_cast<float>(beta1_);
  const auto b2 = static_cast<float>(beta2_);
  const auto eps = static_cast<float>(epsilon_);
  const auto wd = static_cast<float>(weight_decay_);

  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    parameter& p = *params_[pi];
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* m = m_[pi].data();
    float* v = v_[pi].data();
    const std::size_t n = p.value.size();
    for (std::size_t i = 0; i < n; ++i) {
      const float grad = g[i] + wd * w[i];
      m[i] = b1 * m[i] + (1.0F - b1) * grad;
      v[i] = b2 * v[i] + (1.0F - b2) * grad * grad;
      w[i] -= lr * m[i] / (std::sqrt(v[i]) + eps);
    }
  }
}

step_lr::step_lr(double base_lr, std::size_t step_size, double gamma)
    : base_lr_(base_lr), step_size_(step_size), gamma_(gamma) {
  APPEAL_CHECK(step_size > 0, "step_lr requires step_size > 0");
}

double step_lr::learning_rate(std::size_t epoch) const {
  return base_lr_ * std::pow(gamma_, static_cast<double>(epoch / step_size_));
}

cosine_lr::cosine_lr(double base_lr, std::size_t total_epochs, double min_lr)
    : base_lr_(base_lr), total_epochs_(total_epochs), min_lr_(min_lr) {
  APPEAL_CHECK(total_epochs > 0, "cosine_lr requires total_epochs > 0");
  APPEAL_CHECK(min_lr <= base_lr, "cosine_lr requires min_lr <= base_lr");
}

double cosine_lr::learning_rate(std::size_t epoch) const {
  const double t =
      std::min(1.0, static_cast<double>(epoch) /
                        static_cast<double>(total_epochs_));
  const double cosine = 0.5 * (1.0 + std::cos(3.14159265358979323846 * t));
  return min_lr_ + (base_lr_ - min_lr_) * cosine;
}

}  // namespace appeal::nn
