// Elementwise activation layers: ReLU, ReLU6, sigmoid, SiLU, hard-swish.
//
// MobileNet-style backbones use ReLU6/hard-swish; EfficientNet-style ones
// use SiLU; the predictor head uses sigmoid.
#pragma once

#include "nn/layer.hpp"

namespace appeal::nn {

/// Shared base for stateless elementwise activations; caches the input.
class elementwise_activation : public layer {
 public:
  tensor forward(const tensor& input, bool training) override;
  tensor backward(const tensor& grad_output) override;
  shape output_shape(const shape& input) const override { return input; }
  std::uint64_t flops(const shape& input) const override {
    return input.element_count();
  }

 protected:
  /// f(x).
  virtual float apply(float x) const = 0;
  /// f'(x).
  virtual float derivative(float x) const = 0;

 private:
  tensor cached_input_;
};

class relu : public elementwise_activation {
 public:
  const char* kind() const override { return "relu"; }

 protected:
  float apply(float x) const override;
  float derivative(float x) const override;
};

class relu6 : public elementwise_activation {
 public:
  const char* kind() const override { return "relu6"; }

 protected:
  float apply(float x) const override;
  float derivative(float x) const override;
};

class sigmoid_layer : public elementwise_activation {
 public:
  const char* kind() const override { return "sigmoid"; }

 protected:
  float apply(float x) const override;
  float derivative(float x) const override;
};

/// SiLU / swish: x * sigmoid(x).
class silu : public elementwise_activation {
 public:
  const char* kind() const override { return "silu"; }

 protected:
  float apply(float x) const override;
  float derivative(float x) const override;
};

/// Hard-swish: x * relu6(x + 3) / 6 (MobileNetV3 form).
class hardswish : public elementwise_activation {
 public:
  const char* kind() const override { return "hardswish"; }

 protected:
  float apply(float x) const override;
  float derivative(float x) const override;
};

}  // namespace appeal::nn
