#include "nn/channel_shuffle.hpp"

#include "nn/inference_workspace.hpp"
#include "util/error.hpp"

namespace appeal::nn {

channel_shuffle::channel_shuffle(std::size_t groups) : groups_(groups) {
  APPEAL_CHECK(groups > 0, "channel_shuffle requires groups > 0");
}

tensor channel_shuffle::permute(const tensor& input, bool inverse,
                                bool training) const {
  const std::size_t n = input.batch();
  const std::size_t c = input.channels();
  const std::size_t hw = input.height() * input.width();
  const std::size_t per_group = c / groups_;

  tensor out = training
                   ? tensor(input.dims())
                   : inference_workspace::local().acquire(input.dims());
  const float* in = input.data();
  float* po = out.data();
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t g = 0; g < groups_; ++g) {
      for (std::size_t k = 0; k < per_group; ++k) {
        // forward: destination channel k*groups + g takes source g*per_group + k
        const std::size_t src_c = inverse ? k * groups_ + g : g * per_group + k;
        const std::size_t dst_c = inverse ? g * per_group + k : k * groups_ + g;
        const float* src = in + (s * c + src_c) * hw;
        float* dst = po + (s * c + dst_c) * hw;
        for (std::size_t i = 0; i < hw; ++i) dst[i] = src[i];
      }
    }
  }
  return out;
}

tensor channel_shuffle::forward(const tensor& input, bool training) {
  APPEAL_CHECK(input.dims().rank() == 4, "channel_shuffle expects NCHW input");
  APPEAL_CHECK(input.channels() % groups_ == 0,
               "channel_shuffle: channels must divide into groups");
  cached_input_shape_ = input.dims();
  return permute(input, /*inverse=*/false, training);
}

tensor channel_shuffle::backward(const tensor& grad_output) {
  APPEAL_CHECK(grad_output.dims() == cached_input_shape_,
               "channel_shuffle backward: grad shape mismatch");
  return permute(grad_output, /*inverse=*/true, /*training=*/true);
}

shape channel_shuffle::output_shape(const shape& input) const {
  APPEAL_CHECK(input.rank() == 4 && input.channels() % groups_ == 0,
               "channel_shuffle output_shape: bad input " + input.to_string());
  return input;
}

}  // namespace appeal::nn
