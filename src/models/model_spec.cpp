#include "models/model_spec.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace appeal::models {

model_family parse_family(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "mobilenet") return model_family::mobilenet;
  if (lower == "shufflenet") return model_family::shufflenet;
  if (lower == "efficientnet") return model_family::efficientnet;
  if (lower == "resnet") return model_family::resnet;
  APPEAL_CHECK(false, "unknown model family: " + name);
  return model_family::mobilenet;
}

std::string family_name(model_family family) {
  switch (family) {
    case model_family::mobilenet:
      return "mobilenet";
    case model_family::shufflenet:
      return "shufflenet";
    case model_family::efficientnet:
      return "efficientnet";
    case model_family::resnet:
      return "resnet";
  }
  return "unknown";
}

std::string model_spec::canonical() const {
  std::ostringstream os;
  os << family_name(family) << "-c" << in_channels << "-s" << image_size
     << "-k" << num_classes << "-w" << util::format_fixed(width, 3) << "-d"
     << depth;
  return os.str();
}

std::size_t scaled_channels(std::size_t base, float width, std::size_t floor,
                            std::size_t round_to) {
  APPEAL_CHECK(width > 0.0F, "width multiplier must be positive");
  APPEAL_CHECK(round_to > 0, "round_to must be positive");
  const auto scaled = static_cast<std::size_t>(
      std::lround(static_cast<double>(base) * static_cast<double>(width)));
  const std::size_t rounded =
      ((scaled + round_to / 2) / round_to) * round_to;
  return std::max(floor, std::max<std::size_t>(rounded, round_to));
}

}  // namespace appeal::models
