// ShuffleNet-style backbone: units of grouped 1x1 conv -> channel shuffle ->
// depthwise 3x3 conv -> grouped 1x1 conv, wrapped in residuals. Stride-2
// units use a 1x1-conv projection skip (an add-style simplification of the
// original concat skip; the family's signature ops — grouped pointwise convs
// and the shuffle — are preserved exactly).
#include <memory>

#include "models/model_zoo.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/channel_shuffle.hpp"
#include "nn/conv2d.hpp"
#include "nn/pooling.hpp"
#include "nn/residual.hpp"
#include "util/error.hpp"

namespace appeal::models {

namespace {

constexpr std::size_t shuffle_groups = 4;

/// Builds one shuffle unit as a residual layer.
std::unique_ptr<nn::residual> make_shuffle_unit(std::size_t in_channels,
                                                std::size_t out_channels,
                                                std::size_t stride) {
  const std::size_t mid = std::max<std::size_t>(shuffle_groups,
                                                out_channels / 4 * 4) /
                          2 * 2;
  // Channel counts must divide into the group count on both grouped convs.
  const std::size_t mid_channels =
      ((mid + shuffle_groups - 1) / shuffle_groups) * shuffle_groups;

  auto body = std::make_unique<nn::sequential>();
  body->emplace<nn::conv2d>(in_channels, mid_channels, 1, 1, 0,
                            shuffle_groups, false);
  body->emplace<nn::batchnorm2d>(mid_channels);
  body->emplace<nn::relu>();
  body->emplace<nn::channel_shuffle>(shuffle_groups);
  body->emplace<nn::conv2d>(mid_channels, mid_channels, 3, stride, 1,
                            mid_channels, false);  // depthwise
  body->emplace<nn::batchnorm2d>(mid_channels);
  body->emplace<nn::conv2d>(mid_channels, out_channels, 1, 1, 0,
                            shuffle_groups, false);
  body->emplace<nn::batchnorm2d>(out_channels);

  std::unique_ptr<nn::sequential> projection;
  if (stride != 1 || in_channels != out_channels) {
    projection = std::make_unique<nn::sequential>();
    projection->emplace<nn::conv2d>(in_channels, out_channels, 1, stride, 0,
                                    1, false);
    projection->emplace<nn::batchnorm2d>(out_channels);
  }
  return std::make_unique<nn::residual>(std::move(body), std::move(projection),
                                        /*final_relu=*/true);
}

}  // namespace

backbone make_shufflenet_backbone(const model_spec& spec) {
  APPEAL_CHECK(spec.image_size >= 8,
               "shufflenet backbone needs image_size >= 8");
  auto net = std::make_unique<nn::sequential>();

  // Group-divisible channel plan.
  const std::size_t c0 = scaled_channels(16, spec.width, shuffle_groups,
                                         shuffle_groups);
  const std::size_t c1 = scaled_channels(32, spec.width, shuffle_groups,
                                         shuffle_groups);
  const std::size_t c2 = scaled_channels(64, spec.width, shuffle_groups,
                                         shuffle_groups);
  const std::size_t c3 = scaled_channels(128, spec.width, shuffle_groups,
                                         shuffle_groups);

  // Stem. Cut points sit on the stage seams — the natural split-computing
  // hand-off boundaries (activation maps shrink at every downsample).
  net->emplace<nn::conv2d>(spec.in_channels, c0, 3, 1, 1, 1, false);
  net->emplace<nn::batchnorm2d>(c0);
  net->emplace<nn::relu>();
  net->mark_cut("stem");

  // Stages of shuffle units.
  net->append(make_shuffle_unit(c0, c1, 2));
  for (std::size_t d = 1; d < spec.depth; ++d) {
    net->append(make_shuffle_unit(c1, c1, 1));
  }
  net->mark_cut("stage1");
  net->append(make_shuffle_unit(c1, c2, 2));
  for (std::size_t d = 1; d < spec.depth; ++d) {
    net->append(make_shuffle_unit(c2, c2, 1));
  }
  net->mark_cut("stage2");
  net->append(make_shuffle_unit(c2, c3, 2));
  net->mark_cut("stage3");

  net->emplace<nn::global_avgpool>();
  net->mark_cut("features");

  backbone out;
  out.features = std::move(net);
  out.feature_dim = c3;
  return out;
}

}  // namespace appeal::models
