// EfficientNet-style backbone: MBConv blocks — 1x1 expansion, depthwise 3x3,
// squeeze-excitation, 1x1 projection — with SiLU activations and residual
// skips on stride-1 shape-preserving blocks.
#include <memory>

#include "models/model_zoo.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/pooling.hpp"
#include "nn/residual.hpp"
#include "nn/squeeze_excite.hpp"
#include "util/error.hpp"

namespace appeal::models {

namespace {

constexpr std::size_t expansion = 4;
constexpr std::size_t se_reduction = 4;

/// Builds the MBConv body (expansion -> depthwise -> SE -> projection).
std::unique_ptr<nn::sequential> make_mbconv_body(std::size_t in_channels,
                                                 std::size_t out_channels,
                                                 std::size_t stride) {
  const std::size_t mid = in_channels * expansion;
  auto body = std::make_unique<nn::sequential>();
  body->emplace<nn::conv2d>(in_channels, mid, 1, 1, 0, 1, false);
  body->emplace<nn::batchnorm2d>(mid);
  body->emplace<nn::silu>();
  body->emplace<nn::conv2d>(mid, mid, 3, stride, 1, mid, false);  // depthwise
  body->emplace<nn::batchnorm2d>(mid);
  body->emplace<nn::silu>();
  body->emplace<nn::squeeze_excite>(mid, se_reduction);
  body->emplace<nn::conv2d>(mid, out_channels, 1, 1, 0, 1, false);
  body->emplace<nn::batchnorm2d>(out_channels);
  return body;
}

/// Appends one MBConv block, residual when the shape is preserved.
void append_mbconv(nn::sequential& net, std::size_t in_channels,
                   std::size_t out_channels, std::size_t stride) {
  auto body = make_mbconv_body(in_channels, out_channels, stride);
  if (stride == 1 && in_channels == out_channels) {
    net.append(std::make_unique<nn::residual>(std::move(body), nullptr,
                                              /*final_relu=*/false));
  } else {
    net.append(std::move(body));
  }
}

}  // namespace

backbone make_efficientnet_backbone(const model_spec& spec) {
  APPEAL_CHECK(spec.image_size >= 8,
               "efficientnet backbone needs image_size >= 8");
  auto net = std::make_unique<nn::sequential>();

  const std::size_t c0 = scaled_channels(12, spec.width);
  const std::size_t c1 = scaled_channels(24, spec.width);
  const std::size_t c2 = scaled_channels(48, spec.width);
  const std::size_t c3 = scaled_channels(96, spec.width);

  // Stem. Cut points sit on the stage seams — the natural split-computing
  // hand-off boundaries (activation maps shrink at every downsample).
  net->emplace<nn::conv2d>(spec.in_channels, c0, 3, 1, 1, 1, false);
  net->emplace<nn::batchnorm2d>(c0);
  net->emplace<nn::silu>();
  net->mark_cut("stem");

  // MBConv stages.
  append_mbconv(*net, c0, c1, 2);
  for (std::size_t d = 1; d < spec.depth; ++d) {
    append_mbconv(*net, c1, c1, 1);
  }
  net->mark_cut("stage1");
  append_mbconv(*net, c1, c2, 2);
  for (std::size_t d = 1; d < spec.depth; ++d) {
    append_mbconv(*net, c2, c2, 1);
  }
  net->mark_cut("stage2");
  append_mbconv(*net, c2, c3, 2);
  net->mark_cut("stage3");

  net->emplace<nn::global_avgpool>();
  net->mark_cut("features");

  backbone out;
  out.features = std::move(net);
  out.feature_dim = c3;
  return out;
}

}  // namespace appeal::models
