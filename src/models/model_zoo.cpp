#include "models/model_zoo.hpp"

#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "util/error.hpp"

namespace appeal::models {

backbone make_backbone(const model_spec& spec) {
  APPEAL_CHECK(spec.in_channels > 0 && spec.num_classes > 0,
               "model_spec must have positive channels/classes");
  switch (spec.family) {
    case model_family::mobilenet:
      return make_mobilenet_backbone(spec);
    case model_family::shufflenet:
      return make_shufflenet_backbone(spec);
    case model_family::efficientnet:
      return make_efficientnet_backbone(spec);
    case model_family::resnet:
      return make_resnet_backbone(spec);
  }
  APPEAL_CHECK(false, "unreachable: bad model family");
  return {};
}

std::unique_ptr<nn::sequential> make_classifier(const model_spec& spec,
                                                util::rng& gen) {
  backbone bb = make_backbone(spec);
  auto net = std::move(bb.features);
  net->emplace<nn::linear>(bb.feature_dim, spec.num_classes);
  nn::initialize_model(*net, gen);
  return net;
}

}  // namespace appeal::models
