// MobileNetV1-style backbone: a stem conv followed by depthwise-separable
// blocks (3x3 depthwise conv + 1x1 pointwise conv, batchnorm + ReLU6 after
// each), scaled for small inputs.
#include <memory>

#include "models/model_zoo.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/pooling.hpp"
#include "util/error.hpp"

namespace appeal::models {

namespace {

/// Appends one depthwise-separable block to `net`.
void append_dw_separable(nn::sequential& net, std::size_t in_channels,
                         std::size_t out_channels, std::size_t stride) {
  // Depthwise 3x3 (one filter per channel).
  net.emplace<nn::conv2d>(in_channels, in_channels, /*kernel=*/3, stride,
                          /*padding=*/1, /*groups=*/in_channels,
                          /*bias=*/false);
  net.emplace<nn::batchnorm2d>(in_channels);
  net.emplace<nn::relu6>();
  // Pointwise 1x1.
  net.emplace<nn::conv2d>(in_channels, out_channels, /*kernel=*/1,
                          /*stride=*/1, /*padding=*/0, /*groups=*/1,
                          /*bias=*/false);
  net.emplace<nn::batchnorm2d>(out_channels);
  net.emplace<nn::relu6>();
}

}  // namespace

backbone make_mobilenet_backbone(const model_spec& spec) {
  APPEAL_CHECK(spec.image_size >= 8,
               "mobilenet backbone needs image_size >= 8");
  auto net = std::make_unique<nn::sequential>();

  const std::size_t c0 = scaled_channels(16, spec.width);
  const std::size_t c1 = scaled_channels(32, spec.width);
  const std::size_t c2 = scaled_channels(64, spec.width);
  const std::size_t c3 = scaled_channels(128, spec.width);

  // Stem. Cut points sit on the stage seams — the natural split-computing
  // hand-off boundaries (activation maps shrink at every downsample).
  net->emplace<nn::conv2d>(spec.in_channels, c0, 3, 1, 1, 1, false);
  net->emplace<nn::batchnorm2d>(c0);
  net->emplace<nn::relu6>();
  net->mark_cut("stem");

  // Body: three downsampling separable blocks with `depth` extra
  // stride-1 blocks interleaved per stage.
  append_dw_separable(*net, c0, c1, 2);
  for (std::size_t d = 1; d < spec.depth; ++d) {
    append_dw_separable(*net, c1, c1, 1);
  }
  net->mark_cut("stage1");
  append_dw_separable(*net, c1, c2, 2);
  for (std::size_t d = 1; d < spec.depth; ++d) {
    append_dw_separable(*net, c2, c2, 1);
  }
  net->mark_cut("stage2");
  append_dw_separable(*net, c2, c3, 2);
  net->mark_cut("stage3");

  net->emplace<nn::global_avgpool>();
  net->mark_cut("features");

  backbone out;
  out.features = std::move(net);
  out.feature_dim = c3;
  return out;
}

}  // namespace appeal::models
