// ResNet-style backbone with basic blocks — the cloud ("big") model.
//
// Structurally a standard pre-pool ResNet: stem conv, four stages of basic
// blocks (two 3x3 convs + identity/projection skip), global average pool.
// `depth` sets the blocks per stage; the defaults used by the experiments
// give a model ~25-80x the FLOPs of the edge nets, matching the paper's
// ResNet-101 / MobileNet cost ratio regime.
#include <memory>

#include "models/model_zoo.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/pooling.hpp"
#include "nn/residual.hpp"
#include "util/error.hpp"

namespace appeal::models {

namespace {

/// One basic block: conv3x3-bn-relu-conv3x3-bn (+skip) -> relu.
std::unique_ptr<nn::residual> make_basic_block(std::size_t in_channels,
                                               std::size_t out_channels,
                                               std::size_t stride) {
  auto body = std::make_unique<nn::sequential>();
  body->emplace<nn::conv2d>(in_channels, out_channels, 3, stride, 1, 1, false);
  body->emplace<nn::batchnorm2d>(out_channels);
  body->emplace<nn::relu>();
  body->emplace<nn::conv2d>(out_channels, out_channels, 3, 1, 1, 1, false);
  body->emplace<nn::batchnorm2d>(out_channels);

  std::unique_ptr<nn::sequential> projection;
  if (stride != 1 || in_channels != out_channels) {
    projection = std::make_unique<nn::sequential>();
    projection->emplace<nn::conv2d>(in_channels, out_channels, 1, stride, 0,
                                    1, false);
    projection->emplace<nn::batchnorm2d>(out_channels);
  }
  return std::make_unique<nn::residual>(std::move(body), std::move(projection),
                                        /*final_relu=*/true);
}

void append_stage(nn::sequential& net, std::size_t in_channels,
                  std::size_t out_channels, std::size_t stride,
                  std::size_t blocks) {
  net.append(make_basic_block(in_channels, out_channels, stride));
  for (std::size_t b = 1; b < blocks; ++b) {
    net.append(make_basic_block(out_channels, out_channels, 1));
  }
}

}  // namespace

backbone make_resnet_backbone(const model_spec& spec) {
  APPEAL_CHECK(spec.image_size >= 8, "resnet backbone needs image_size >= 8");
  auto net = std::make_unique<nn::sequential>();

  const std::size_t c0 = scaled_channels(16, spec.width);
  const std::size_t c1 = scaled_channels(32, spec.width);
  const std::size_t c2 = scaled_channels(64, spec.width);
  const std::size_t c3 = scaled_channels(128, spec.width);
  const std::size_t blocks = std::max<std::size_t>(1, spec.depth);

  // Stem. Cut points sit on the stage seams — the natural split-computing
  // hand-off boundaries (activation maps shrink at every downsample).
  net->emplace<nn::conv2d>(spec.in_channels, c0, 3, 1, 1, 1, false);
  net->emplace<nn::batchnorm2d>(c0);
  net->emplace<nn::relu>();
  net->mark_cut("stem");

  // Stages: full-resolution stage then three downsampling stages.
  append_stage(*net, c0, c0, 1, blocks);
  net->mark_cut("stage1");
  append_stage(*net, c0, c1, 2, blocks);
  net->mark_cut("stage2");
  append_stage(*net, c1, c2, 2, blocks);
  net->mark_cut("stage3");
  append_stage(*net, c2, c3, 2, blocks);
  net->mark_cut("stage4");

  net->emplace<nn::global_avgpool>();
  net->mark_cut("features");

  backbone out;
  out.features = std::move(net);
  out.feature_dim = c3;
  return out;
}

}  // namespace appeal::models
