// Model specification shared by all backbone families.
//
// The paper evaluates three efficient edge families (MobileNet,
// EfficientNet, ShuffleNet) against a ResNet-101 cloud model. This repo
// builds structurally faithful, scaled-down members of each family; `width`
// and `depth` are the scaling knobs the Fig. 3 hardware profiler tunes.
#pragma once

#include <cstddef>
#include <string>

namespace appeal::models {

/// Backbone families available in the zoo.
enum class model_family {
  mobilenet,     // depthwise-separable stacks (MobileNetV1 style)
  shufflenet,    // grouped 1x1 convs + channel shuffle
  efficientnet,  // MBConv with squeeze-excitation
  resnet,        // basic-block residual network (the cloud model)
};

/// Parses "mobilenet" / "shufflenet" / "efficientnet" / "resnet".
model_family parse_family(const std::string& name);

/// Family name for display.
std::string family_name(model_family family);

/// Complete description of one concrete model instance.
struct model_spec {
  model_family family = model_family::mobilenet;
  std::size_t in_channels = 3;
  std::size_t image_size = 16;   // square inputs
  std::size_t num_classes = 10;
  float width = 1.0F;            // channel multiplier
  std::size_t depth = 1;         // blocks per stage (resnet) / extra blocks

  /// Canonical string (stable across runs) for cache keys and logs.
  std::string canonical() const;
};

/// Applies the width multiplier, keeping at least `floor` channels and
/// rounding to the nearest multiple of `round_to` (grouped convs need
/// divisible channel counts).
std::size_t scaled_channels(std::size_t base, float width,
                            std::size_t floor = 4, std::size_t round_to = 4);

}  // namespace appeal::models
