// Model zoo: backbone builders + standalone classifier factory.
#pragma once

#include <memory>

#include "models/model_spec.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace appeal::models {

/// A feature extractor: maps [N, C, H, W] images to [N, feature_dim]
/// embeddings (the stack ends with global average pooling).
struct backbone {
  std::unique_ptr<nn::sequential> features;
  std::size_t feature_dim = 0;
};

/// Builds the family-appropriate feature extractor for `spec`.
/// Weights are NOT initialized; see make_classifier or nn::initialize_model.
backbone make_backbone(const model_spec& spec);

/// Builds a complete initialized classifier: backbone + linear head
/// producing [N, num_classes] logits.
std::unique_ptr<nn::sequential> make_classifier(const model_spec& spec,
                                                util::rng& gen);

/// Per-family builders (exposed for tests; make_backbone dispatches).
backbone make_mobilenet_backbone(const model_spec& spec);
backbone make_shufflenet_backbone(const model_spec& spec);
backbone make_efficientnet_backbone(const model_spec& spec);
backbone make_resnet_backbone(const model_spec& spec);

}  // namespace appeal::models
