#include "obs/exporter.hpp"

#include <cstdio>
#include <fstream>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace appeal::obs {

namespace {

bool is_uds(const std::string& endpoint) {
  return endpoint.find('/') != std::string::npos;
}

std::string http_response(const std::string& status,
                          const std::string& content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 " + status + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

metrics_http_server::metrics_http_server(metrics_registry& registry,
                                         const std::string& endpoint)
    : registry_(registry) {
  if (is_uds(endpoint)) {
    listener_ = net::listen_uds(endpoint);
  } else {
    listener_ = net::listen_tcp(endpoint);
    port_ = net::local_tcp_port(listener_);
  }
  thread_ = std::thread([this] { accept_loop(); });
}

metrics_http_server::~metrics_http_server() { stop(); }

void metrics_http_server::stop() {
  if (!running_.exchange(false)) return;
  listener_.shutdown();
  if (thread_.joinable()) thread_.join();
  listener_.reset();
}

void metrics_http_server::accept_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    net::fd conn = net::accept_connection(listener_);
    if (!conn.valid()) break;  // listener shut down
    try {
      serve_one(std::move(conn));
    } catch (const std::exception& e) {
      // A scraper hanging up mid-response is not our problem.
      APPEAL_LOG_DEBUG("obs") << "scrape failed" << util::kv("error", e.what());
    }
  }
}

void metrics_http_server::serve_one(net::fd conn) {
  // Read until the end of the request headers (or the buffer fills —
  // a scrape request is one short line + a few headers).
  std::string req;
  std::uint8_t buf[1024];
  while (req.size() < 8192 && req.find("\r\n\r\n") == std::string::npos) {
    const std::size_t n = net::read_some(conn, buf, sizeof(buf));
    if (n == 0) break;
    req.append(reinterpret_cast<const char*>(buf), n);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  // Request line: METHOD SP path SP version.
  std::string path;
  const std::size_t sp1 = req.find(' ');
  if (sp1 != std::string::npos) {
    const std::size_t sp2 = req.find(' ', sp1 + 1);
    if (sp2 != std::string::npos) path = req.substr(sp1 + 1, sp2 - sp1 - 1);
  }

  std::string response;
  if (path == "/metrics") {
    response = http_response("200 OK", "text/plain; version=0.0.4",
                             registry_.render_prometheus());
  } else if (path == "/metrics.json") {
    response =
        http_response("200 OK", "application/json", registry_.render_json());
  } else {
    response = http_response("404 Not Found", "text/plain", "not found\n");
  }
  net::write_all(conn, reinterpret_cast<const std::uint8_t*>(response.data()),
                 response.size());
}

json_snapshot_writer::json_snapshot_writer(metrics_registry& registry,
                                           std::string path,
                                           std::chrono::milliseconds interval)
    : registry_(registry),
      path_(std::move(path)),
      interval_(interval.count() > 0 ? interval
                                     : std::chrono::milliseconds(1000)) {
  thread_ = std::thread([this] { loop(); });
}

json_snapshot_writer::~json_snapshot_writer() { stop(); }

void json_snapshot_writer::stop() {
  if (!running_.exchange(false)) return;
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  flush();  // the file ends at the final state
}

void json_snapshot_writer::flush() {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      APPEAL_LOG_WARN("obs") << "metrics snapshot write failed"
                             << util::kv("path", tmp);
      return;
    }
    out << registry_.render_json();
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    APPEAL_LOG_WARN("obs") << "metrics snapshot rename failed"
                           << util::kv("path", path_);
  }
}

void json_snapshot_writer::loop() {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  while (running_.load(std::memory_order_relaxed)) {
    wake_.wait_for(lock, interval_,
                   [this] { return !running_.load(std::memory_order_relaxed); });
    if (!running_.load(std::memory_order_relaxed)) break;
    lock.unlock();
    flush();
    lock.lock();
  }
}

}  // namespace appeal::obs
