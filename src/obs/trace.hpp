// Per-request trace spans: sampled end-to-end latency attribution.
//
// A trace_span is allocated (sampled) at submit time, rides inside the
// serve::request through every stage of the serving path, and is stamped
// with per-stage durations at each boundary:
//
//   queue_wait      enqueue -> pulled off the request_queue
//   batch_form      pulled -> the batch dispatches to the edge backend
//   edge_infer      the batched edge forward
//   decide          forward done -> δ decision applied (complete/appeal)
//   appeal_coalesce channel enqueue -> the coalesced batch is framed
//   wire_tx         frame handed to the transport -> send returns
//   cloud_queue     cloud work-queue wait   (cloud-stamped, wire v3)
//   cloud_score     cloud batched scoring   (cloud-stamped, wire v3)
//   wire_rx         the remainder of the link round trip (response
//                   receive side; computed as the link window minus
//                   tx and the cloud-stamped stages, clamped at 0)
//   complete        demux + stats + promise fulfillment (the residual
//                   between the measured end-to-end latency and the sum
//                   of the stages above)
//
// Edge-kept requests stamp only the first four stages + complete. The
// cloud stages come from cloud-side timestamps carried back in wire-v3
// response records — durations, not absolute times, so no cross-process
// clock sync is assumed; if the two clocks disagree badly the stage sum
// stops reconciling with the measured end-to-end latency, which is
// exactly what tools/trace_report checks.
//
// Completed spans land in a trace_collector: a bounded ring (snapshot /
// JSONL export for tools/trace_report) that also feeds per-stage
// histograms (`appeal_stage_ms{stage=...}`) in a metrics_registry, so
// /metrics carries the per-stage waterfall even between trace dumps.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace appeal::obs {

enum class stage : std::uint8_t {
  queue_wait = 0,
  batch_form,
  edge_infer,
  decide,
  appeal_coalesce,
  wire_tx,
  cloud_queue,
  cloud_score,
  wire_rx,
  complete,
};
inline constexpr std::size_t kNumStages = 10;

/// Stable lowercase name ("queue_wait", ...) used as the `stage` label
/// and the JSONL key.
const char* stage_name(stage s);

struct trace_span {
  std::uint64_t trace_id = 0;
  std::uint64_t key = 0;
  bool appealed = false;
  bool expired = false;  // shed by a deadline (edge- or cloud-side)
  std::chrono::steady_clock::time_point start;  // enqueue time
  std::array<double, kNumStages> stage_ms{};
  double total_ms = 0.0;  // measured enqueue -> promise fulfillment

  void set(stage s, double ms) {
    stage_ms[static_cast<std::size_t>(s)] = ms < 0.0 ? 0.0 : ms;
  }
  double get(stage s) const { return stage_ms[static_cast<std::size_t>(s)]; }
  double stage_sum() const {
    double sum = 0.0;
    for (const double v : stage_ms) sum += v;
    return sum;
  }
};

/// Deterministic every-Nth sampler (period = round(1/rate)): cheap, and
/// an even slice of the traffic rather than a bursty random one. rate
/// <= 0 never samples, rate >= 1 always does. sample() also allocates
/// the span and stamps its start/trace id.
class trace_sampler {
 public:
  explicit trace_sampler(double rate);

  /// Null when this request is not sampled.
  std::unique_ptr<trace_span> sample(
      std::uint64_t key, std::chrono::steady_clock::time_point start);

  double rate() const { return rate_; }

 private:
  double rate_;
  std::uint64_t period_;  // 0 = never
  std::atomic<std::uint64_t> tick_{0};
};

/// Bounded ring of completed spans + per-stage registry histograms.
class trace_collector {
 public:
  explicit trace_collector(std::size_t capacity = 1 << 16);

  /// Routes per-stage durations into `reg` as appeal_stage_ms{stage=...}
  /// summaries plus appeal_trace_total_ms. Call once, before traffic;
  /// nullptr detaches.
  void attach_registry(metrics_registry* reg, double hi_ms = 500.0,
                       std::size_t bins = 1000);

  void record(trace_span&& span);

  /// Copies the ring's current contents (oldest first).
  std::vector<trace_span> snapshot() const;

  /// Spans ever recorded (ring overwrites don't decrement).
  std::uint64_t recorded() const;

  void clear();

  /// One JSON object per line per span in the ring — the format
  /// tools/trace_report consumes.
  std::string render_jsonl() const;
  static std::string span_json(const trace_span& s);

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<trace_span> ring_;
  std::uint64_t recorded_ = 0;
  std::array<histogram*, kNumStages> stage_hist_{};
  histogram* total_hist_ = nullptr;
};

/// The process-wide collector the serving path records into.
trace_collector& default_collector();

/// Process-unique trace id (never 0 — 0 means "unsampled" on the wire).
std::uint64_t next_trace_id();

}  // namespace appeal::obs
