// Lock-cheap metrics registry: named counters, gauges, and fixed-bin
// histograms with label sets, shared by every stage of the serving path.
//
// Design: an instrument is found-or-created once (one mutex hit, at
// registration time — serve_stats, the admission controller, the
// batcher, the cloud channel, and stub_server all resolve their handles
// at construction) and then updated on the hot path with no lock at all.
// Counters and histograms are sharded: each instrument holds kShards
// cache-line-padded atomic slots and a thread hashes onto one, so two
// edge workers bumping the same counter never contend on a cache line.
// snapshot()/render merge the shards — reads pay the cost, writes don't.
//
// The process-global default_registry() is what the serving path and the
// exporters (obs/exporter.hpp: Prometheus text endpoint + JSON snapshot
// writer) share; tests construct private registries.
//
// Naming follows the Prometheus convention: `appeal_<noun>_total` for
// counters, `appeal_<noun>` for gauges, `appeal_<noun>_ms` for latency
// histograms; labels like {deployment="vision", stage="edge_infer"}
// split one family across deployments/stages.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace appeal::obs {

/// Sorted (key, value) pairs identifying one instrument within a family.
using label_set = std::vector<std::pair<std::string, std::string>>;

/// Shards per instrument. 16 covers the worker pools in play (engine
/// edge workers + channel + transport reader threads) without making a
/// snapshot merge expensive.
inline constexpr std::size_t kMetricShards = 16;

/// Index of the calling thread's shard (stable per thread, assigned
/// round-robin on first use so distinct threads spread over shards).
std::size_t shard_index();

namespace detail {
/// One cache line per atomic so shards never false-share.
struct alignas(64) padded_u64 {
  std::atomic<std::uint64_t> v{0};
};
}  // namespace detail

/// Monotonic counter. add() is wait-free (one relaxed fetch_add on the
/// caller's shard); value() merges the shards.
class counter {
 public:
  void add(std::uint64_t n = 1) {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  detail::padded_u64 shards_[kMetricShards];
};

/// Last-write-wins instantaneous value (queue depth, configured
/// δ, gemm threads). Doubles cover every current use; stored as bits so
/// the atomic stays lock-free everywhere.
class gauge {
 public:
  void set(double v) {
    bits_.store(to_bits(v), std::memory_order_relaxed);
  }
  void add(double d) {
    std::uint64_t expected = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(expected, to_bits(from_bits(expected) + d),
                                        std::memory_order_relaxed)) {
    }
  }
  double value() const { return from_bits(bits_.load(std::memory_order_relaxed)); }

 private:
  static std::uint64_t to_bits(double v);
  static double from_bits(std::uint64_t b);
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bin histogram over [lo, hi). Values below lo clamp into bin 0;
/// values at or above hi clamp into the top bin AND count in overflow,
/// so a too-narrow range is visible instead of silently flattening the
/// tail (same contract as serve_stats' latency histogram). observe() is
/// wait-free on the caller's shard.
class histogram {
 public:
  histogram(double lo, double hi, std::size_t bins);

  void observe(double value);

  struct snapshot_data {
    double lo = 0.0;
    double hi = 0.0;
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
    std::uint64_t overflow = 0;  // observations clamped into the top bin
    double sum = 0.0;            // of the raw (unclamped) values

    /// Quantile by bin-center CDF walk; 0 when empty. q outside [0, 1]
    /// clamps.
    double quantile(double q) const;
    double mean() const {
      return total == 0 ? 0.0 : sum / static_cast<double>(total);
    }
  };
  snapshot_data snapshot() const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return bins_; }

 private:
  struct shard {
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<std::uint64_t> overflow{0};
    /// Sum as double bits, CAS-accumulated (cold relative to counts).
    std::atomic<std::uint64_t> sum_bits{0};
    explicit shard(std::size_t bins) : counts(bins) {}
  };

  double lo_;
  double hi_;
  std::size_t bins_;
  double inv_width_;
  std::vector<std::unique_ptr<shard>> shards_;
};

/// The registry: find-or-create instruments by (name, labels). Returned
/// references stay valid for the registry's lifetime (instruments are
/// heap-allocated and never erased). Re-requesting an existing name with
/// the same labels returns the same instrument; a histogram re-request
/// with different binning throws (two writers disagreeing about bins is
/// a bug, not a merge).
class metrics_registry {
 public:
  counter& get_counter(const std::string& name, label_set labels = {},
                       const std::string& help = "");
  gauge& get_gauge(const std::string& name, label_set labels = {},
                   const std::string& help = "");
  histogram& get_histogram(const std::string& name, label_set labels, double lo,
                           double hi, std::size_t bins,
                           const std::string& help = "");

  /// Prometheus text exposition (text/plain; version=0.0.4): counters and
  /// gauges verbatim; histograms as summaries (quantile labels + _sum +
  /// _count) so a scrape stays small regardless of bin count.
  std::string render_prometheus() const;

  /// One JSON object: {"name{labels}": value | {histogram fields}}.
  std::string render_json() const;

 private:
  enum class kind { counter, gauge, histogram };
  struct entry {
    kind type;
    std::string name;
    label_set labels;
    std::string help;
    std::unique_ptr<counter> c;
    std::unique_ptr<gauge> g;
    std::unique_ptr<histogram> h;
  };

  entry* find_locked(const std::string& name, const label_set& labels);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<entry>> entries_;  // registration order
};

/// The process-wide registry the serving path and exporters share.
metrics_registry& default_registry();

}  // namespace appeal::obs
