#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace appeal::obs {

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

std::uint64_t gauge::to_bits(double v) { return std::bit_cast<std::uint64_t>(v); }
double gauge::from_bits(std::uint64_t b) { return std::bit_cast<double>(b); }

// --- histogram --------------------------------------------------------------

histogram::histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins) {
  APPEAL_CHECK(hi > lo, "histogram range must be non-empty");
  APPEAL_CHECK(bins > 0, "histogram needs at least one bin");
  inv_width_ = static_cast<double>(bins) / (hi - lo);
  shards_.reserve(kMetricShards);
  for (std::size_t i = 0; i < kMetricShards; ++i) {
    shards_.push_back(std::make_unique<shard>(bins));
  }
}

void histogram::observe(double value) {
  shard& s = *shards_[shard_index()];
  std::size_t bin = 0;
  if (std::isnan(value)) {
    // NaN would index nowhere; treat it as overflow so it stays visible.
    bin = bins_ - 1;
    s.overflow.fetch_add(1, std::memory_order_relaxed);
  } else if (value >= hi_) {
    bin = bins_ - 1;
    s.overflow.fetch_add(1, std::memory_order_relaxed);
  } else if (value > lo_) {
    bin = std::min(bins_ - 1,
                   static_cast<std::size_t>((value - lo_) * inv_width_));
  }
  s.counts[bin].fetch_add(1, std::memory_order_relaxed);
  if (!std::isnan(value)) {
    std::uint64_t expected = s.sum_bits.load(std::memory_order_relaxed);
    std::uint64_t desired;
    do {
      desired = std::bit_cast<std::uint64_t>(std::bit_cast<double>(expected) +
                                             value);
    } while (!s.sum_bits.compare_exchange_weak(expected, desired,
                                               std::memory_order_relaxed));
  }
}

histogram::snapshot_data histogram::snapshot() const {
  snapshot_data out;
  out.lo = lo_;
  out.hi = hi_;
  out.counts.assign(bins_, 0);
  for (const auto& s : shards_) {
    for (std::size_t i = 0; i < bins_; ++i) {
      out.counts[i] += s->counts[i].load(std::memory_order_relaxed);
    }
    out.overflow += s->overflow.load(std::memory_order_relaxed);
    out.sum += std::bit_cast<double>(s->sum_bits.load(std::memory_order_relaxed));
  }
  for (const std::uint64_t c : out.counts) out.total += c;
  return out;
}

double histogram::snapshot_data::quantile(double q) const {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  const double width = (hi - lo) / static_cast<double>(counts.size());
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += static_cast<double>(counts[i]);
    if (cumulative >= target) return lo + (static_cast<double>(i) + 0.5) * width;
  }
  return lo + (static_cast<double>(counts.size()) - 0.5) * width;
}

// --- registry ---------------------------------------------------------------

namespace {

label_set normalized(label_set labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

void append_labels(std::string& out, const label_set& labels) {
  if (labels.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  out += '}';
}

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

metrics_registry::entry* metrics_registry::find_locked(const std::string& name,
                                                       const label_set& labels) {
  for (auto& e : entries_) {
    if (e->name == name && e->labels == labels) return e.get();
  }
  return nullptr;
}

counter& metrics_registry::get_counter(const std::string& name,
                                       label_set labels,
                                       const std::string& help) {
  const label_set norm = normalized(std::move(labels));
  std::lock_guard<std::mutex> lock(mutex_);
  if (entry* e = find_locked(name, norm)) {
    APPEAL_CHECK(e->type == kind::counter,
                 "metric '" + name + "' already registered with another type");
    return *e->c;
  }
  auto e = std::make_unique<entry>();
  e->type = kind::counter;
  e->name = name;
  e->labels = norm;
  e->help = help;
  e->c = std::make_unique<counter>();
  counter& out = *e->c;
  entries_.push_back(std::move(e));
  return out;
}

gauge& metrics_registry::get_gauge(const std::string& name, label_set labels,
                                   const std::string& help) {
  const label_set norm = normalized(std::move(labels));
  std::lock_guard<std::mutex> lock(mutex_);
  if (entry* e = find_locked(name, norm)) {
    APPEAL_CHECK(e->type == kind::gauge,
                 "metric '" + name + "' already registered with another type");
    return *e->g;
  }
  auto e = std::make_unique<entry>();
  e->type = kind::gauge;
  e->name = name;
  e->labels = norm;
  e->help = help;
  e->g = std::make_unique<gauge>();
  gauge& out = *e->g;
  entries_.push_back(std::move(e));
  return out;
}

histogram& metrics_registry::get_histogram(const std::string& name,
                                           label_set labels, double lo,
                                           double hi, std::size_t bins,
                                           const std::string& help) {
  const label_set norm = normalized(std::move(labels));
  std::lock_guard<std::mutex> lock(mutex_);
  if (entry* e = find_locked(name, norm)) {
    APPEAL_CHECK(e->type == kind::histogram,
                 "metric '" + name + "' already registered with another type");
    APPEAL_CHECK(e->h->lo() == lo && e->h->hi() == hi && e->h->bins() == bins,
                 "metric '" + name + "' re-registered with different binning");
    return *e->h;
  }
  auto e = std::make_unique<entry>();
  e->type = kind::histogram;
  e->name = name;
  e->labels = norm;
  e->help = help;
  e->h = std::make_unique<histogram>(lo, hi, bins);
  histogram& out = *e->h;
  entries_.push_back(std::move(e));
  return out;
}

std::string metrics_registry::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(entries_.size() * 96);
  // One HELP/TYPE block per family, emitted at its first entry only
  // (entries_ keeps registration order, so a family's instruments are
  // grouped by a linear "seen" scan).
  std::vector<const std::string*> seen;
  const auto first_of_family = [&](const std::string& name) {
    for (const std::string* s : seen) {
      if (*s == name) return false;
    }
    seen.push_back(&name);
    return true;
  };
  for (const auto& e : entries_) {
    const bool lead = first_of_family(e->name);
    switch (e->type) {
      case kind::counter: {
        if (lead) {
          if (!e->help.empty()) out += "# HELP " + e->name + " " + e->help + "\n";
          out += "# TYPE " + e->name + " counter\n";
        }
        out += e->name;
        append_labels(out, e->labels);
        out += ' ';
        append_number(out, static_cast<double>(e->c->value()));
        out += '\n';
        break;
      }
      case kind::gauge: {
        if (lead) {
          if (!e->help.empty()) out += "# HELP " + e->name + " " + e->help + "\n";
          out += "# TYPE " + e->name + " gauge\n";
        }
        out += e->name;
        append_labels(out, e->labels);
        out += ' ';
        append_number(out, e->g->value());
        out += '\n';
        break;
      }
      case kind::histogram: {
        if (lead) {
          if (!e->help.empty()) out += "# HELP " + e->name + " " + e->help + "\n";
          out += "# TYPE " + e->name + " summary\n";
        }
        const histogram::snapshot_data s = e->h->snapshot();
        for (const double q : {0.5, 0.95, 0.99}) {
          label_set with_q = e->labels;
          char qbuf[16];
          std::snprintf(qbuf, sizeof(qbuf), "%g", q);
          with_q.emplace_back("quantile", qbuf);
          out += e->name;
          append_labels(out, with_q);
          out += ' ';
          append_number(out, s.quantile(q));
          out += '\n';
        }
        out += e->name + "_sum";
        append_labels(out, e->labels);
        out += ' ';
        append_number(out, s.sum);
        out += '\n';
        out += e->name + "_count";
        append_labels(out, e->labels);
        out += ' ';
        append_number(out, static_cast<double>(s.total));
        out += '\n';
        break;
      }
    }
  }
  return out;
}

std::string metrics_registry::render_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{";
  bool first = true;
  for (const auto& e : entries_) {
    if (!first) out += ",";
    first = false;
    out += "\n  \"";
    out += e->name;
    if (!e->labels.empty()) {
      std::string l;
      append_labels(l, e->labels);
      out += l;
    }
    out += "\": ";
    switch (e->type) {
      case kind::counter:
        append_number(out, static_cast<double>(e->c->value()));
        break;
      case kind::gauge:
        append_number(out, e->g->value());
        break;
      case kind::histogram: {
        const histogram::snapshot_data s = e->h->snapshot();
        out += "{\"count\": ";
        append_number(out, static_cast<double>(s.total));
        out += ", \"sum\": ";
        append_number(out, s.sum);
        out += ", \"overflow\": ";
        append_number(out, static_cast<double>(s.overflow));
        out += ", \"p50\": ";
        append_number(out, s.quantile(0.5));
        out += ", \"p95\": ";
        append_number(out, s.quantile(0.95));
        out += ", \"p99\": ";
        append_number(out, s.quantile(0.99));
        out += "}";
        break;
      }
    }
  }
  out += "\n}\n";
  return out;
}

metrics_registry& default_registry() {
  static metrics_registry* instance = new metrics_registry();  // never dies
  return *instance;
}

}  // namespace appeal::obs
