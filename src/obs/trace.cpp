#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>

namespace appeal::obs {

const char* stage_name(stage s) {
  switch (s) {
    case stage::queue_wait: return "queue_wait";
    case stage::batch_form: return "batch_form";
    case stage::edge_infer: return "edge_infer";
    case stage::decide: return "decide";
    case stage::appeal_coalesce: return "appeal_coalesce";
    case stage::wire_tx: return "wire_tx";
    case stage::cloud_queue: return "cloud_queue";
    case stage::cloud_score: return "cloud_score";
    case stage::wire_rx: return "wire_rx";
    case stage::complete: return "complete";
  }
  return "unknown";
}

// --- sampler -----------------------------------------------------------------

trace_sampler::trace_sampler(double rate) : rate_(rate) {
  if (!(rate > 0.0)) {
    period_ = 0;
  } else if (rate >= 1.0) {
    period_ = 1;
  } else {
    period_ = static_cast<std::uint64_t>(std::llround(1.0 / rate));
    if (period_ == 0) period_ = 1;
  }
}

std::unique_ptr<trace_span> trace_sampler::sample(
    std::uint64_t key, std::chrono::steady_clock::time_point start) {
  if (period_ == 0) return nullptr;
  if (tick_.fetch_add(1, std::memory_order_relaxed) % period_ != 0) {
    return nullptr;
  }
  auto span = std::make_unique<trace_span>();
  span->trace_id = next_trace_id();
  span->key = key;
  span->start = start;
  return span;
}

// --- collector ---------------------------------------------------------------

trace_collector::trace_collector(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void trace_collector::attach_registry(metrics_registry* reg, double hi_ms,
                                      std::size_t bins) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (reg == nullptr) {
    stage_hist_.fill(nullptr);
    total_hist_ = nullptr;
    return;
  }
  for (std::size_t i = 0; i < kNumStages; ++i) {
    stage_hist_[i] = &reg->get_histogram(
        "appeal_stage_ms", {{"stage", stage_name(static_cast<stage>(i))}}, 0.0,
        hi_ms, bins, "per-stage latency from sampled trace spans");
  }
  total_hist_ =
      &reg->get_histogram("appeal_trace_total_ms", {}, 0.0, hi_ms, bins,
                          "end-to-end latency of sampled trace spans");
}

void trace_collector::record(trace_span&& span) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++recorded_;
  if (total_hist_ != nullptr) total_hist_->observe(span.total_ms);
  // Only stages the request actually passed through: stamping a zero for
  // cloud_queue on an edge-kept request would drag that stage's summary
  // toward 0 for no reason.
  const std::size_t last_edge_stage = static_cast<std::size_t>(stage::decide);
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const bool on_path = span.appealed || i <= last_edge_stage ||
                         i == static_cast<std::size_t>(stage::complete);
    if (on_path && stage_hist_[i] != nullptr) {
      stage_hist_[i]->observe(span.stage_ms[i]);
    }
  }
  ring_.push_back(std::move(span));
  if (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<trace_span> trace_collector::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<trace_span>(ring_.begin(), ring_.end());
}

std::uint64_t trace_collector::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

void trace_collector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  recorded_ = 0;
}

std::string trace_collector::span_json(const trace_span& s) {
  char buf[64];
  std::string out = "{\"trace_id\":";
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(s.trace_id));
  out += buf;
  out += ",\"key\":";
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(s.key));
  out += buf;
  out += ",\"appealed\":";
  out += s.appealed ? "true" : "false";
  out += ",\"expired\":";
  out += s.expired ? "true" : "false";
  out += ",\"total_ms\":";
  std::snprintf(buf, sizeof(buf), "%.6f", s.total_ms);
  out += buf;
  out += ",\"stages\":{";
  for (std::size_t i = 0; i < kNumStages; ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += stage_name(static_cast<stage>(i));
    out += "\":";
    std::snprintf(buf, sizeof(buf), "%.6f", s.stage_ms[i]);
    out += buf;
  }
  out += "}}";
  return out;
}

std::string trace_collector::render_jsonl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(ring_.size() * 256);
  for (const trace_span& s : ring_) {
    out += span_json(s);
    out += '\n';
  }
  return out;
}

trace_collector& default_collector() {
  static trace_collector* instance = new trace_collector();  // never dies
  return *instance;
}

std::uint64_t next_trace_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace appeal::obs
