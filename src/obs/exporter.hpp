// Exporters for the metrics registry.
//
//   metrics_http_server  — minimal HTTP/1.1 listener (TCP "host:port" or
//                          a UDS path) serving GET /metrics as Prometheus
//                          text and GET /metrics.json as the JSON render.
//                          One connection at a time, close-after-response:
//                          a scraper hits it once a second, not a fleet.
//   json_snapshot_writer — background thread that rewrites a JSON file
//                          with the registry snapshot every interval
//                          (atomic rename so a reader never sees a torn
//                          file). For runs where nothing scrapes.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "util/net.hpp"

namespace appeal::obs {

class metrics_http_server {
 public:
  /// Binds and starts the accept loop. TCP endpoints are "host:port"
  /// (port 0 picks an ephemeral port — read it back with port()); a
  /// UDS path is anything containing '/'.
  metrics_http_server(metrics_registry& registry, const std::string& endpoint);
  ~metrics_http_server();

  metrics_http_server(const metrics_http_server&) = delete;
  metrics_http_server& operator=(const metrics_http_server&) = delete;

  /// 0 for UDS endpoints.
  std::uint16_t port() const { return port_; }

  /// Requests served (any path, including 404s). Tests poll this.
  std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

  void stop();

 private:
  void accept_loop();
  void serve_one(net::fd conn);

  metrics_registry& registry_;
  net::fd listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{true};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

class json_snapshot_writer {
 public:
  json_snapshot_writer(metrics_registry& registry, std::string path,
                       std::chrono::milliseconds interval);
  ~json_snapshot_writer();

  json_snapshot_writer(const json_snapshot_writer&) = delete;
  json_snapshot_writer& operator=(const json_snapshot_writer&) = delete;

  /// Writes one snapshot immediately (also called on stop, so the file
  /// always ends at the final state).
  void flush();

  void stop();

 private:
  void loop();

  metrics_registry& registry_;
  std::string path_;
  std::chrono::milliseconds interval_;
  std::atomic<bool> running_{true};
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  std::thread thread_;
};

}  // namespace appeal::obs
