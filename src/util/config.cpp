#include "util/config.hpp"

#include <cstdlib>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace appeal::util {

config config::from_args(int argc, const char* const* argv) {
  config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    APPEAL_CHECK(starts_with(arg, "--"),
                 "unrecognized positional argument: " + arg);
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq == std::string::npos) {
      cfg.set(body, "true");
    } else {
      cfg.set(body.substr(0, eq), body.substr(eq + 1));
    }
  }
  return cfg;
}

void config::set(const std::string& key, const std::string& value) {
  if (values_.find(key) == values_.end()) {
    order_.push_back(key);
  }
  values_[key] = value;
}

bool config::has(const std::string& key) const {
  return values_.find(key) != values_.end();
}

std::string config::get_string(const std::string& key) const {
  const auto it = values_.find(key);
  APPEAL_CHECK(it != values_.end(), "missing config key: " + key);
  return it->second;
}

std::string config::get_string_or(const std::string& key,
                                  const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int config::get_int(const std::string& key) const {
  const std::string raw = get_string(key);
  char* end = nullptr;
  const long value = std::strtol(raw.c_str(), &end, 10);
  APPEAL_CHECK(end != raw.c_str() && *end == '\0',
               "config key " + key + " is not an integer: " + raw);
  return static_cast<int>(value);
}

int config::get_int_or(const std::string& key, int fallback) const {
  return has(key) ? get_int(key) : fallback;
}

double config::get_double(const std::string& key) const {
  const std::string raw = get_string(key);
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  APPEAL_CHECK(end != raw.c_str() && *end == '\0',
               "config key " + key + " is not a number: " + raw);
  return value;
}

double config::get_double_or(const std::string& key, double fallback) const {
  return has(key) ? get_double(key) : fallback;
}

bool config::get_bool_or(const std::string& key, bool fallback) const {
  if (!has(key)) return fallback;
  const std::string raw = to_lower(get_string(key));
  if (raw == "true" || raw == "1" || raw == "yes" || raw == "on") return true;
  if (raw == "false" || raw == "0" || raw == "no" || raw == "off") return false;
  APPEAL_CHECK(false, "config key " + key + " is not a boolean: " + raw);
  return fallback;
}

std::vector<std::string> config::keys() const { return order_; }

std::string config::canonical_string() const {
  std::string out;
  for (const auto& [key, value] : values_) {  // std::map iterates sorted
    if (!out.empty()) out += ',';
    out += key + '=' + value;
  }
  return out;
}

}  // namespace appeal::util
