// Fixed-bin histogram with density output and text rendering.
//
// Used to reproduce the Fig. 4 score histograms (MSP vs q(z|x)) as
// terminal-friendly bar charts plus CSV densities.
#pragma once

#include <string>
#include <vector>

namespace appeal::util {

/// Histogram over [lo, hi) with `bins` equal-width buckets.
/// Values outside the range are clamped into the edge buckets so mass is
/// never silently dropped (scores are already in [0, 1] in practice).
class histogram {
 public:
  histogram(double lo, double hi, std::size_t bins);

  /// Adds one observation.
  void add(double value);

  /// Adds many observations.
  void add_all(const std::vector<double>& values);

  /// Raw counts per bucket.
  const std::vector<std::size_t>& counts() const { return counts_; }

  /// Normalized densities (integrate to 1 over [lo, hi]); all-zero when
  /// the histogram is empty.
  std::vector<double> densities() const;

  /// Total number of observations.
  std::size_t total() const { return total_; }

  /// Center of bucket `i`.
  double bin_center(std::size_t i) const;

  /// Renders a horizontal bar chart (one line per bucket), scaled so the
  /// fullest bucket spans `width` characters.
  std::string render(std::size_t width = 50) const;

  /// Overlap coefficient between two histograms with identical binning:
  /// sum over bins of min(density_a, density_b) * bin_width. 0 = perfectly
  /// separated, 1 = identical distributions. This is the quantitative form
  /// of the Fig. 4 visual claim.
  static double overlap_coefficient(const histogram& a, const histogram& b);

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace appeal::util
