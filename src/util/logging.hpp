// Minimal leveled logger.
//
// Experiments and examples use this to narrate progress; the level is a
// process-wide setting so benches can silence training chatter.
#pragma once

#include <sstream>
#include <string>

namespace appeal::util {

enum class log_level { debug = 0, info = 1, warn = 2, err = 3, off = 4 };

/// Sets the global minimum level that will be emitted.
void set_log_level(log_level level);

/// Returns the current global minimum level.
log_level get_log_level();

/// Emits `message` to stderr when `level` passes the global threshold.
void log_message(log_level level, const std::string& message);

namespace detail {

/// Stream-style log line that emits on destruction.
class log_line {
 public:
  explicit log_line(log_level level) : level_(level) {}
  log_line(const log_line&) = delete;
  log_line& operator=(const log_line&) = delete;
  ~log_line() { log_message(level_, stream_.str()); }

  template <typename T>
  log_line& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  log_level level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace appeal::util

#define APPEAL_LOG_DEBUG ::appeal::util::detail::log_line(::appeal::util::log_level::debug)
#define APPEAL_LOG_INFO ::appeal::util::detail::log_line(::appeal::util::log_level::info)
#define APPEAL_LOG_WARN ::appeal::util::detail::log_line(::appeal::util::log_level::warn)
#define APPEAL_LOG_ERROR ::appeal::util::detail::log_line(::appeal::util::log_level::err)
