// Minimal leveled, structured logger.
//
// Lines are key=value structured so serving logs can be grepped and
// post-processed: every line carries ts= (unix seconds), level=, and
// component= tags, then msg="..." from the streamed text, then any
// key=value fields appended with util::kv:
//
//   APPEAL_LOG_WARN("cloud_channel")
//       << "no response before deadline"
//       << util::kv("link", name) << util::kv("waited_ms", waited);
//
//   ts=1754650000.123 level=warn component=cloud_channel
//       msg="no response before deadline" link=wan waited_ms=12.5
//
// The level is a process-wide setting so benches can silence training
// chatter. Values containing spaces/quotes/'=' are quoted.
#pragma once

#include <sstream>
#include <string>

namespace appeal::util {

enum class log_level { debug = 0, info = 1, warn = 2, err = 3, off = 4 };

/// Sets the global minimum level that will be emitted.
void set_log_level(log_level level);

/// Returns the current global minimum level.
log_level get_log_level();

/// Emits one structured line to stderr when `level` passes the global
/// threshold. `fields` is the pre-rendered " key=value ..." suffix.
void log_message(log_level level, const std::string& component,
                 const std::string& message, const std::string& fields);

namespace detail {
/// Quotes `value` if it needs it (spaces, '=', '"'); passthrough otherwise.
std::string field_value(const std::string& value);
}  // namespace detail

/// A key=value field for a log line. The value is stringified via
/// ostream; strings with spaces are quoted on emission.
template <typename T>
struct kv_pair {
  const char* key;
  const T& value;
};

template <typename T>
kv_pair<T> kv(const char* key, const T& value) {
  return kv_pair<T>{key, value};
}

namespace detail {

/// Stream-style log line that emits on destruction. Plain << goes into
/// msg="..."; << util::kv(...) appends a structured field.
class log_line {
 public:
  log_line(log_level level, const char* component)
      : level_(level), component_(component) {}
  log_line(const log_line&) = delete;
  log_line& operator=(const log_line&) = delete;
  ~log_line() { log_message(level_, component_, stream_.str(), fields_.str()); }

  template <typename T>
  log_line& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  template <typename T>
  log_line& operator<<(const kv_pair<T>& field) {
    std::ostringstream v;
    v << field.value;
    fields_ << ' ' << field.key << '=' << field_value(v.str());
    return *this;
  }

 private:
  log_level level_;
  const char* component_;
  std::ostringstream stream_;
  std::ostringstream fields_;
};

}  // namespace detail

}  // namespace appeal::util

#define APPEAL_LOG_DEBUG(component) \
  ::appeal::util::detail::log_line(::appeal::util::log_level::debug, component)
#define APPEAL_LOG_INFO(component) \
  ::appeal::util::detail::log_line(::appeal::util::log_level::info, component)
#define APPEAL_LOG_WARN(component) \
  ::appeal::util::detail::log_line(::appeal::util::log_level::warn, component)
#define APPEAL_LOG_ERROR(component) \
  ::appeal::util::detail::log_line(::appeal::util::log_level::err, component)
