#include "util/thread_pool.hpp"

#include <algorithm>
#include <memory>

namespace appeal::util {

thread_pool::thread_pool(std::size_t threads) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void thread_pool::parallel_for(std::size_t blocks,
                               const std::function<void(std::size_t)>& fn) {
  if (blocks == 0) return;
  if (workers_.empty() || blocks == 1) {
    for (std::size_t b = 0; b < blocks; ++b) fn(b);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &fn;
  job_blocks_ = blocks;
  next_block_ = 0;
  blocks_done_ = 0;
  ++job_id_;
  wake_.notify_all();
  // The caller claims blocks like any worker, then waits for stragglers.
  while (next_block_ < job_blocks_) {
    const std::size_t b = next_block_++;
    lock.unlock();
    fn(b);
    lock.lock();
    ++blocks_done_;
  }
  done_.wait(lock, [&] { return blocks_done_ == job_blocks_; });
  job_ = nullptr;
}

void thread_pool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen = 0;
  for (;;) {
    wake_.wait(lock,
               [&] { return stop_ || (job_ != nullptr && job_id_ != seen); });
    if (stop_) return;
    seen = job_id_;
    const std::function<void(std::size_t)>* fn = job_;
    while (next_block_ < job_blocks_) {
      const std::size_t b = next_block_++;
      lock.unlock();
      (*fn)(b);
      lock.lock();
      if (++blocks_done_ == job_blocks_) done_.notify_all();
    }
  }
}

namespace {

std::size_t& shared_pool_size() {
  static std::size_t size = 1;
  return size;
}

std::unique_ptr<thread_pool>& shared_pool_slot() {
  static std::unique_ptr<thread_pool> pool;
  return pool;
}

}  // namespace

thread_pool& thread_pool::shared() {
  std::unique_ptr<thread_pool>& slot = shared_pool_slot();
  if (slot == nullptr) {
    slot = std::make_unique<thread_pool>(shared_pool_size());
  }
  return *slot;
}

void thread_pool::set_shared_size(std::size_t threads) {
  shared_pool_size() = std::max<std::size_t>(1, threads);
  shared_pool_slot() = std::make_unique<thread_pool>(shared_pool_size());
}

}  // namespace appeal::util
