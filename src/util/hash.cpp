#include "util/hash.hpp"

namespace appeal::util {

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string hash_hex(std::uint64_t hash) {
  static const char digits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

}  // namespace appeal::util
