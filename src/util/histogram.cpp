#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace appeal::util {

histogram::histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  APPEAL_CHECK(hi > lo, "histogram range must be non-empty");
  APPEAL_CHECK(bins > 0, "histogram requires at least one bin");
}

void histogram::add(double value) {
  const double unit = (value - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(
      std::floor(unit * static_cast<double>(counts_.size())));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void histogram::add_all(const std::vector<double>& values) {
  for (const double v : values) add(v);
}

std::vector<double> histogram::densities() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  const double bin_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) /
             (static_cast<double>(total_) * bin_width);
  }
  return out;
}

double histogram::bin_center(std::size_t i) const {
  APPEAL_CHECK(i < counts_.size(), "bin index out of range");
  const double bin_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * bin_width;
}

std::string histogram::render(std::size_t width) const {
  const std::size_t max_count =
      counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        max_count == 0 ? 0 : counts_[i] * width / std::max<std::size_t>(max_count, 1);
    os << format_fixed(bin_center(i), 3) << " | " << std::string(bar, '#')
       << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

double histogram::overlap_coefficient(const histogram& a, const histogram& b) {
  APPEAL_CHECK(a.counts_.size() == b.counts_.size() && a.lo_ == b.lo_ &&
                   a.hi_ == b.hi_,
               "histograms must share binning");
  const auto da = a.densities();
  const auto db = b.densities();
  const double bin_width =
      (a.hi_ - a.lo_) / static_cast<double>(a.counts_.size());
  double overlap = 0.0;
  for (std::size_t i = 0; i < da.size(); ++i) {
    overlap += std::min(da[i], db[i]) * bin_width;
  }
  return overlap;
}

}  // namespace appeal::util
