// Key-value configuration with typed accessors and CLI parsing.
//
// Examples and benches accept `--key=value` overrides; this keeps the
// experiment entry points declarative and the defaults discoverable.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace appeal::util {

/// Ordered key -> string-value map with typed getters.
class config {
 public:
  config() = default;

  /// Parses `--key=value` / `--flag` style arguments (argv[0] is skipped).
  /// Unrecognized positional arguments throw appeal::util::error.
  static config from_args(int argc, const char* const* argv);

  /// Sets (or overwrites) a key.
  void set(const std::string& key, const std::string& value);

  /// True when the key is present.
  bool has(const std::string& key) const;

  /// Typed getters; the `_or` variants return the fallback when the key is
  /// absent, the plain variants throw when it is absent or malformed.
  std::string get_string(const std::string& key) const;
  std::string get_string_or(const std::string& key,
                            const std::string& fallback) const;
  int get_int(const std::string& key) const;
  int get_int_or(const std::string& key, int fallback) const;
  double get_double(const std::string& key) const;
  double get_double_or(const std::string& key, double fallback) const;
  bool get_bool_or(const std::string& key, bool fallback) const;

  /// All keys in insertion order.
  std::vector<std::string> keys() const;

  /// Canonical "k1=v1,k2=v2" rendering (sorted by key) — used as the
  /// artifact-cache hash input so identical configs share cached models.
  std::string canonical_string() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> order_;
};

}  // namespace appeal::util
