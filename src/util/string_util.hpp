// Small string helpers shared by CSV/config/table code.
#pragma once

#include <string>
#include <vector>

namespace appeal::util {

/// Splits `text` on `delimiter`; keeps empty fields.
std::vector<std::string> split(const std::string& text, char delimiter);

/// Removes leading and trailing whitespace.
std::string trim(const std::string& text);

/// True when `text` starts with `prefix`.
bool starts_with(const std::string& text, const std::string& prefix);

/// Joins `parts` with `separator`.
std::string join(const std::vector<std::string>& parts,
                 const std::string& separator);

/// Lower-cases ASCII characters.
std::string to_lower(std::string text);

/// Formats a double with `digits` digits after the decimal point.
std::string format_fixed(double value, int digits);

/// Formats `value` as a percentage string, e.g. 0.356 -> "35.60%".
std::string format_percent(double value, int digits = 2);

}  // namespace appeal::util
