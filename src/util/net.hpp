// Thin POSIX socket helpers shared by the serve transports
// (socket_transport client side, stub_server listener side) and the
// observability exporters (obs/exporter's /metrics HTTP listener) —
// which is why they live in util/, below both.
//
// All helpers throw util::error with errno detail on failure and retry
// EINTR internally. The fd wrapper is move-only RAII; shutdown() is
// separate from close so one thread can unblock another's read().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace appeal::net {

/// Move-only owning file descriptor.
class fd {
 public:
  fd() = default;
  explicit fd(int raw) : raw_(raw) {}
  ~fd() { reset(); }

  fd(fd&& other) noexcept : raw_(std::exchange(other.raw_, -1)) {}
  fd& operator=(fd&& other) noexcept {
    if (this != &other) {
      reset();
      raw_ = std::exchange(other.raw_, -1);
    }
    return *this;
  }
  fd(const fd&) = delete;
  fd& operator=(const fd&) = delete;

  int get() const { return raw_; }
  bool valid() const { return raw_ >= 0; }

  /// SHUT_RDWR: wakes any thread blocked in read()/write() on this fd.
  void shutdown() noexcept;
  void reset() noexcept;

 private:
  int raw_ = -1;
};

/// Client connects. TCP endpoints are "host:port" (numeric host or name);
/// UDS endpoints are filesystem paths. TCP sockets get TCP_NODELAY — the
/// channel's coalescing owns batching; Nagle would only add latency.
fd connect_uds(const std::string& path);
fd connect_tcp(const std::string& endpoint);

/// Bounds blocking writes: after `ms` of a full send buffer (a stalled
/// peer), write_all fails instead of blocking forever. 0 leaves the
/// socket fully blocking.
void set_send_timeout(const fd& socket, double ms);

/// Server side. listen_uds unlinks a stale socket file first; listen_tcp
/// binds "host:port" (port 0 picks an ephemeral port — read it back with
/// local_tcp_port). Both use a small accept backlog.
fd listen_uds(const std::string& path);
fd listen_tcp(const std::string& endpoint);
std::uint16_t local_tcp_port(const fd& listener);

/// Blocking accept; returns an invalid fd when the listener was shut
/// down (instead of throwing — that is the normal stop path).
fd accept_connection(const fd& listener);

/// Writes the whole buffer, retrying short writes and EINTR. Throws on
/// a dead peer.
void write_all(const fd& socket, const std::uint8_t* data, std::size_t n);

/// Reads up to `n` bytes; returns 0 on orderly EOF or local shutdown.
std::size_t read_some(const fd& socket, std::uint8_t* data, std::size_t n);

}  // namespace appeal::net
