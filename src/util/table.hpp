// ASCII table rendering.
//
// The experiment benches print the paper's tables (Table I, Table II) in the
// same row/column layout; this helper keeps the formatting consistent.
#pragma once

#include <string>
#include <vector>

namespace appeal::util {

/// Column-aligned ASCII table with a header row.
class ascii_table {
 public:
  /// Creates a table with the given column headers.
  explicit ascii_table(std::vector<std::string> headers);

  /// Appends a data row; it must have exactly as many fields as headers.
  void add_row(std::vector<std::string> row);

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table with box-drawing separators.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace appeal::util
