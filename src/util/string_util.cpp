#include "util/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace appeal::util {

std::vector<std::string> split(const std::string& text, char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(text);
  while (std::getline(stream, field, delimiter)) {
    fields.push_back(field);
  }
  if (!text.empty() && text.back() == delimiter) {
    fields.emplace_back();
  }
  if (text.empty()) {
    fields.emplace_back();
  }
  return fields;
}

std::string trim(const std::string& text) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  auto begin = text.begin();
  while (begin != text.end() && is_space(*begin)) ++begin;
  auto end = text.end();
  while (end != begin && is_space(*(end - 1))) --end;
  return std::string(begin, end);
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         std::equal(prefix.begin(), prefix.end(), text.begin());
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return text;
}

std::string format_fixed(double value, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  return os.str();
}

std::string format_percent(double value, int digits) {
  return format_fixed(value * 100.0, digits) + "%";
}

}  // namespace appeal::util
