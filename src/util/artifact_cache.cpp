#include "util/artifact_cache.hpp"

#include <cstdlib>
#include <filesystem>

#include "util/hash.hpp"

namespace appeal::util {

namespace fs = std::filesystem;

artifact_cache::artifact_cache(std::string directory)
    : directory_(std::move(directory)) {}

std::string artifact_cache::path_for(const std::string& key) const {
  return directory_ + "/" + hash_hex(fnv1a64(key)) + ".bin";
}

std::optional<std::string> artifact_cache::find(const std::string& key) const {
  const std::string path = path_for(key);
  std::error_code ec;
  if (fs::exists(path, ec) && !ec) return path;
  return std::nullopt;
}

std::string artifact_cache::prepare_write(const std::string& key) const {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  return path_for(key);
}

bool artifact_cache::evict(const std::string& key) const {
  std::error_code ec;
  return fs::remove(path_for(key), ec) && !ec;
}

artifact_cache default_cache() {
  if (const char* env = std::getenv("APPEAL_CACHE_DIR");
      env != nullptr && env[0] != '\0') {
    return artifact_cache(env);
  }
  return artifact_cache(".cache/appealnet");
}

}  // namespace appeal::util
