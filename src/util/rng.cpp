#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace appeal::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

rng::rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : state_) {
    lane = splitmix64(sm);
  }
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

std::uint64_t rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double rng::uniform() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float rng::uniform(float lo, float hi) {
  return lo + static_cast<float>(uniform()) * (hi - lo);
}

std::uint64_t rng::uniform_index(std::uint64_t n) {
  APPEAL_CHECK(n > 0, "uniform_index requires n > 0");
  // Rejection sampling removes modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

int rng::uniform_int(int lo, int hi) {
  APPEAL_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<int>(uniform_index(span));
}

double rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  // Box–Muller; u is kept away from zero so log(u) is finite.
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  const double v = uniform();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * 3.14159265358979323846 * v;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool rng::bernoulli(double p) { return uniform() < p; }

std::size_t rng::categorical(const std::vector<double>& weights) {
  APPEAL_CHECK(!weights.empty(), "categorical requires at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    APPEAL_CHECK(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  APPEAL_CHECK(total > 0.0, "categorical weights must have a positive sum");
  double draw = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: land on the last bucket
}

std::vector<std::size_t> rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  shuffle(perm);
  return perm;
}

rng rng::split() { return rng(next_u64()); }

}  // namespace appeal::util
