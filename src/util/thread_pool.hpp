// Small reusable worker pool for data-parallel kernels.
//
// The pool runs index-based jobs: parallel_for(blocks, fn) invokes
// fn(block) for every block in [0, blocks), the caller thread included.
// Blocks self-schedule over an atomic cursor, so any thread may run any
// block — callers must make blocks independent (disjoint outputs). Because
// each block's computation is self-contained, results are bit-identical
// for every pool size, which is what lets the GEMM keep its determinism
// guarantee while scaling across cores.
//
// Workers park on a condition variable between jobs; a pool with
// `threads <= 1` runs everything inline on the caller with zero
// synchronization cost.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace appeal::util {

class thread_pool {
 public:
  /// Creates `threads - 1` worker threads (the caller participates in
  /// every job, so `threads` is the total parallelism).
  explicit thread_pool(std::size_t threads);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Total parallelism (workers + the calling thread).
  std::size_t size() const { return workers_.size() + 1; }

  /// Runs fn(block) for every block in [0, blocks). Blocks are claimed
  /// dynamically; the call returns when all blocks have finished. Not
  /// reentrant: fn must not call parallel_for on the same pool.
  void parallel_for(std::size_t blocks,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide pool for kernel-level parallelism, sized on first use
  /// from set_shared_size() (default: 1, i.e. inline execution — serving
  /// already parallelizes across engine workers, so intra-kernel threads
  /// are opt-in).
  static thread_pool& shared();

  /// Resizes the shared pool (destroys and rebuilds it). Not thread-safe
  /// against concurrent shared() users — call at startup / from tests.
  static void set_shared_size(std::size_t threads);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<std::thread> workers_;

  // Current job, guarded by mutex_ (claimed blocks use next_block_).
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_blocks_ = 0;
  std::size_t next_block_ = 0;
  std::size_t blocks_done_ = 0;
  std::uint64_t job_id_ = 0;
  bool stop_ = false;
};

}  // namespace appeal::util
