#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>

namespace appeal::util {

namespace {

std::atomic<log_level> g_level{log_level::info};

const char* level_name(log_level level) {
  switch (level) {
    case log_level::debug:
      return "debug";
    case log_level::info:
      return "info";
    case log_level::warn:
      return "warn";
    case log_level::err:
      return "error";
    case log_level::off:
      return "off";
  }
  return "?";
}

}  // namespace

namespace detail {

std::string field_value(const std::string& value) {
  bool needs_quotes = value.empty();
  for (const char c : value) {
    if (c == ' ' || c == '=' || c == '"' || c == '\n' || c == '\t') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return value;
  std::string out = "\"";
  for (const char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace detail

void set_log_level(log_level level) { g_level.store(level); }

log_level get_log_level() { return g_level.load(); }

void log_message(log_level level, const std::string& component,
                 const std::string& message, const std::string& fields) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const double ts =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  char ts_buf[32];
  std::snprintf(ts_buf, sizeof(ts_buf), "%.3f", ts);
  std::string line = "ts=";
  line += ts_buf;
  line += " level=";
  line += level_name(level);
  line += " component=";
  line += detail::field_value(component);
  line += " msg=";
  line += detail::field_value(message);
  line += fields;
  line += '\n';
  // One write so concurrent threads' lines don't interleave.
  std::cerr << line;
}

}  // namespace appeal::util
