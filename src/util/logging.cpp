#include "util/logging.hpp"

#include <atomic>
#include <iostream>

namespace appeal::util {

namespace {

std::atomic<log_level> g_level{log_level::info};

const char* level_tag(log_level level) {
  switch (level) {
    case log_level::debug:
      return "[debug] ";
    case log_level::info:
      return "[info ] ";
    case log_level::warn:
      return "[warn ] ";
    case log_level::err:
      return "[error] ";
    case log_level::off:
      return "";
  }
  return "";
}

}  // namespace

void set_log_level(log_level level) { g_level.store(level); }

log_level get_log_level() { return g_level.load(); }

void log_message(log_level level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::cerr << level_tag(level) << message << '\n';
}

}  // namespace appeal::util
