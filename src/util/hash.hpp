// Stable content hashing for the artifact cache.
#pragma once

#include <cstdint>
#include <string>

namespace appeal::util {

/// 64-bit FNV-1a hash of a byte string (stable across platforms/runs).
std::uint64_t fnv1a64(const std::string& bytes);

/// splitmix64 finalizer: fast full-avalanche mixing of one 64-bit word
/// (shard routing, the synthetic cloud scorer).
std::uint64_t mix64(std::uint64_t x);

/// Hex rendering of a 64-bit hash (16 lowercase hex digits).
std::string hash_hex(std::uint64_t hash);

}  // namespace appeal::util
