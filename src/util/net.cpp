#include "util/net.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace appeal::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw util::error(what + ": " + std::strerror(errno));
}

/// Splits "host:port"; an empty host means loopback.
std::pair<std::string, std::string> split_endpoint(const std::string& ep) {
  const std::size_t colon = ep.rfind(':');
  APPEAL_CHECK(colon != std::string::npos,
               "tcp endpoint must be host:port, got '" + ep + "'");
  std::string host = ep.substr(0, colon);
  if (host.empty()) host = "127.0.0.1";
  return {std::move(host), ep.substr(colon + 1)};
}

sockaddr_un uds_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  APPEAL_CHECK(path.size() < sizeof(addr.sun_path),
               "uds socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

void set_nodelay(int raw) {
  const int one = 1;
  ::setsockopt(raw, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

struct resolved {
  addrinfo* info = nullptr;
  ~resolved() {
    if (info != nullptr) ::freeaddrinfo(info);
  }
};

resolved resolve_tcp(const std::string& endpoint, bool passive) {
  const auto [host, port] = split_endpoint(endpoint);
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  resolved r;
  const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &r.info);
  APPEAL_CHECK(rc == 0, "cannot resolve tcp endpoint '" + endpoint +
                            "': " + ::gai_strerror(rc));
  return r;
}

}  // namespace

void fd::shutdown() noexcept {
  if (raw_ >= 0) ::shutdown(raw_, SHUT_RDWR);
}

void fd::reset() noexcept {
  if (raw_ >= 0) {
    ::close(raw_);
    raw_ = -1;
  }
}

fd connect_uds(const std::string& path) {
  fd sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket(AF_UNIX)");
  const sockaddr_un addr = uds_address(path);
  if (::connect(sock.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw_errno("connect to uds '" + path + "'");
  }
  return sock;
}

fd connect_tcp(const std::string& endpoint) {
  const resolved r = resolve_tcp(endpoint, /*passive=*/false);
  std::string last_error = "no addresses";
  for (const addrinfo* ai = r.info; ai != nullptr; ai = ai->ai_next) {
    fd sock(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!sock.valid()) continue;
    if (::connect(sock.get(), ai->ai_addr, ai->ai_addrlen) == 0) {
      set_nodelay(sock.get());
      return sock;
    }
    last_error = std::strerror(errno);
  }
  throw util::error("connect to tcp '" + endpoint + "': " + last_error);
}

void set_send_timeout(const fd& socket, double ms) {
  if (ms <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  if (::setsockopt(socket.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) !=
      0) {
    throw_errno("setsockopt(SO_SNDTIMEO)");
  }
}

fd listen_uds(const std::string& path) {
  ::unlink(path.c_str());  // a stale socket file would fail the bind
  fd sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket(AF_UNIX)");
  const sockaddr_un addr = uds_address(path);
  if (::bind(sock.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind uds '" + path + "'");
  }
  if (::listen(sock.get(), 16) != 0) throw_errno("listen on '" + path + "'");
  return sock;
}

fd listen_tcp(const std::string& endpoint) {
  const resolved r = resolve_tcp(endpoint, /*passive=*/true);
  std::string last_error = "no addresses";
  for (const addrinfo* ai = r.info; ai != nullptr; ai = ai->ai_next) {
    fd sock(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!sock.valid()) continue;
    const int one = 1;
    ::setsockopt(sock.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(sock.get(), ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(sock.get(), 16) == 0) {
      return sock;
    }
    last_error = std::strerror(errno);
  }
  throw util::error("listen on tcp '" + endpoint + "': " + last_error);
}

std::uint16_t local_tcp_port(const fd& listener) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.get(), reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    throw_errno("getsockname");
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<const sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6*>(&addr)->sin6_port);
  }
  throw util::error("local_tcp_port on a non-TCP socket");
}

fd accept_connection(const fd& listener) {
  for (;;) {
    const int raw = ::accept(listener.get(), nullptr, nullptr);
    if (raw >= 0) {
      set_nodelay(raw);  // no-op on AF_UNIX
      return fd(raw);
    }
    if (errno == EINTR) continue;
    return fd();  // listener shut down: the normal stop path
  }
}

void write_all(const fd& socket, const std::uint8_t* data, std::size_t n) {
  std::size_t written = 0;
  while (written < n) {
    const ssize_t rc =
        ::send(socket.get(), data + written, n - written, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("socket write");
    }
    written += static_cast<std::size_t>(rc);
  }
}

std::size_t read_some(const fd& socket, std::uint8_t* data, std::size_t n) {
  for (;;) {
    const ssize_t rc = ::recv(socket.get(), data, n, 0);
    if (rc >= 0) return static_cast<std::size_t>(rc);
    if (errno == EINTR) continue;
    return 0;  // connection reset and local shutdown both end the stream
  }
}

}  // namespace appeal::net
