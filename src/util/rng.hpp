// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (weight init, data generation,
// augmentation, shuffling, dropout) draws from an explicitly seeded
// appeal::util::rng, so a fixed seed reproduces a run bit-for-bit.
// The generator is xoshiro256** (Blackman & Vigna), seeded via splitmix64.
#pragma once

#include <cstdint>
#include <vector>

namespace appeal::util {

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Not thread-safe; use one instance per thread (or `split()` child
/// generators for independent streams).
class rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` using splitmix64.
  explicit rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// UniformRandomBitGenerator interface (usable with <random> adaptors).
  std::uint64_t operator()() { return next_u64(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Standard normal draw (Box–Muller, cached spare).
  double normal();

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p);

  /// Draws an index in [0, weights.size()) proportionally to `weights`.
  /// Weights must be non-negative with a positive sum.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Returns a shuffled permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child generator; the parent state advances, so
  /// successive splits yield distinct streams.
  rng split();

 private:
  std::uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace appeal::util
