#include "util/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace appeal::util {

struct csv_writer::impl {
  std::ofstream out;
};

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string escape_field(const std::string& field) {
  if (!needs_quoting(field)) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

csv_writer::csv_writer(const std::string& path) : impl_(new impl) {
  impl_->out.open(path, std::ios::trunc);
  if (!impl_->out) {
    delete impl_;
    impl_ = nullptr;
    APPEAL_CHECK(false, "cannot open CSV file for writing: " + path);
  }
}

csv_writer::~csv_writer() { delete impl_; }

void csv_writer::write_row(const std::vector<std::string>& fields) {
  APPEAL_CHECK(impl_ != nullptr && impl_->out.is_open(),
               "write_row on a closed csv_writer");
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) impl_->out << ',';
    impl_->out << escape_field(fields[i]);
  }
  impl_->out << '\n';
}

void csv_writer::write_row(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (const double v : values) {
    std::ostringstream os;
    os.precision(12);
    os << v;
    fields.push_back(os.str());
  }
  write_row(fields);
}

void csv_writer::close() {
  if (impl_ != nullptr) impl_->out.close();
}

csv_document read_csv(const std::string& path) {
  std::ifstream in(path);
  APPEAL_CHECK(in.good(), "cannot open CSV file for reading: " + path);
  csv_document doc;
  std::string line;
  while (std::getline(in, line)) {
    std::vector<std::string> row;
    std::string field;
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (in_quotes) {
        if (c == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            field += '"';
            ++i;
          } else {
            in_quotes = false;
          }
        } else {
          field += c;
        }
      } else if (c == '"') {
        in_quotes = true;
      } else if (c == ',') {
        row.push_back(field);
        field.clear();
      } else {
        field += c;
      }
    }
    row.push_back(field);
    doc.rows.push_back(std::move(row));
  }
  return doc;
}

}  // namespace appeal::util
