// CSV writing/reading for experiment outputs.
//
// Benches emit their table/figure series as CSV next to the pretty-printed
// text so results can be re-plotted without re-running training.
#pragma once

#include <string>
#include <vector>

namespace appeal::util {

/// Streaming CSV writer. Quotes fields containing separators or quotes.
class csv_writer {
 public:
  /// Opens `path` for writing (truncates). Throws appeal::util::error on
  /// failure.
  explicit csv_writer(const std::string& path);
  ~csv_writer();

  csv_writer(const csv_writer&) = delete;
  csv_writer& operator=(const csv_writer&) = delete;

  /// Writes one row; fields are escaped as needed.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: writes a row of doubles with full precision.
  void write_row(const std::vector<double>& values);

  /// Flushes and closes; further writes are invalid.
  void close();

 private:
  struct impl;
  impl* impl_;
};

/// Fully parsed CSV content.
struct csv_document {
  std::vector<std::vector<std::string>> rows;

  std::size_t row_count() const { return rows.size(); }
};

/// Reads a CSV file produced by csv_writer (handles quoted fields).
/// Throws appeal::util::error if the file cannot be opened.
csv_document read_csv(const std::string& path);

}  // namespace appeal::util
