#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace appeal::util {

ascii_table::ascii_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  APPEAL_CHECK(!headers_.empty(), "ascii_table requires at least one column");
}

void ascii_table::add_row(std::vector<std::string> row) {
  APPEAL_CHECK(row.size() == headers_.size(),
               "row width does not match header width");
  rows_.push_back(std::move(row));
}

std::string ascii_table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
    return os.str();
  };

  const auto rule = [&]() {
    std::ostringstream os;
    os << '+';
    for (const std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
    return os.str();
  };

  std::string out = rule() + render_row(headers_) + rule();
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  out += rule();
  return out;
}

}  // namespace appeal::util
