// Monotonic (steady-clock) timing utilities used by benches, the serving
// stats, and training-progress logs.
#pragma once

#include <chrono>

namespace appeal::util {

/// Monotonic stopwatch; starts on construction.
class timer {
 public:
  timer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Monotonic stopwatch with lap support: tracks total elapsed time plus
/// the interval since the last lap(). Unlike `timer` it can be re-anchored
/// mid-run (serve_stats measurement windows) and split into phases
/// (bench warmup vs measured load).
class stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  stopwatch() : start_(clock::now()), lap_(start_) {}

  /// Restarts both the total and the lap interval.
  void reset() { start_ = lap_ = clock::now(); }

  /// Seconds since construction or the last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds since construction or the last reset().
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

  /// Seconds since the last lap() (or construction/reset), and starts the
  /// next lap interval.
  double lap_seconds() {
    const auto now = clock::now();
    const double s = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return s;
  }

 private:
  clock::time_point start_;
  clock::time_point lap_;
};

}  // namespace appeal::util
