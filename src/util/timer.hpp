// Wall-clock stopwatch used by benches and training-progress logs.
#pragma once

#include <chrono>

namespace appeal::util {

/// Monotonic stopwatch; starts on construction.
class timer {
 public:
  timer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace appeal::util
