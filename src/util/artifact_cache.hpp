// Hash-keyed artifact store.
//
// Training the experiment models takes minutes on a laptop core; the four
// paper benches share models (e.g. the MobileNet/cifar10 AppealNet appears
// in Fig 5, Table I and the ablations). The cache maps a canonical config
// string to a file path so the first bench trains and the rest reload.
#pragma once

#include <optional>
#include <string>

namespace appeal::util {

/// Directory-backed cache keyed by the FNV-1a hash of a config string.
class artifact_cache {
 public:
  /// Uses `directory` as the store; created on first put() if missing.
  explicit artifact_cache(std::string directory);

  /// Path an artifact with this key would live at (whether or not present).
  std::string path_for(const std::string& key) const;

  /// Returns the path when an artifact for `key` exists.
  std::optional<std::string> find(const std::string& key) const;

  /// Ensures the cache directory exists and returns the path to write to.
  std::string prepare_write(const std::string& key) const;

  /// Removes a cached artifact if present; returns whether one was removed.
  bool evict(const std::string& key) const;

  const std::string& directory() const { return directory_; }

 private:
  std::string directory_;
};

/// Default cache used by benches/examples: `$APPEAL_CACHE_DIR` when set,
/// otherwise `.cache/appealnet` under the current working directory.
artifact_cache default_cache();

}  // namespace appeal::util
