#include "util/error.hpp"

#include <sstream>

namespace appeal::util {

void throw_check_failure(const char* file, int line, const char* condition,
                         const std::string& detail) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << condition;
  if (!detail.empty()) {
    os << ": " << detail;
  }
  throw error(os.str());
}

}  // namespace appeal::util
