// Error handling for the AppealNet library.
//
// All precondition violations throw appeal::util::error so that callers
// (tests in particular) can assert on failure instead of aborting.
#pragma once

#include <stdexcept>
#include <string>

namespace appeal::util {

/// Exception type thrown on any library precondition violation.
class error : public std::runtime_error {
 public:
  explicit error(const std::string& what) : std::runtime_error(what) {}
};

/// Builds the message "<file>:<line>: check failed: <cond>: <detail>" and
/// throws appeal::util::error. Used by the APPEAL_CHECK macros below.
[[noreturn]] void throw_check_failure(const char* file, int line,
                                      const char* condition,
                                      const std::string& detail);

}  // namespace appeal::util

/// Precondition check: throws appeal::util::error when `cond` is false.
/// `detail` is any expression streamable into std::string via operator+.
#define APPEAL_CHECK(cond, detail)                                       \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::appeal::util::throw_check_failure(__FILE__, __LINE__, #cond,     \
                                          (detail));                     \
    }                                                                    \
  } while (false)

/// Shorthand for checks whose condition is self-explanatory.
#define APPEAL_REQUIRE(cond) APPEAL_CHECK(cond, "")
