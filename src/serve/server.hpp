// The multi-tenant serving front door.
//
// One server hosts many named deployments — a model zoo of (little, big)
// pairs — behind a single submit() call:
//
//   server srv;
//   srv.register_deployment("vision", cfg, edge_factory, cloud_factory);
//   auto fut = srv.submit({.model = "vision", .key = k, ...});
//
// The inference_request names its deployment, carries a priority class
// (interactive / batch) and an optional relative deadline; the deployment
// routes it across its engine shards (key-affine or least-loaded) and its
// admission policy decides what a full queue means (block, shed, or
// degrade to an edge-only answer). Statistics aggregate per deployment;
// stats() reports every deployment's snapshot for one scrape.
//
// Registration is expected at startup, before traffic; submit() takes a
// shared (read) lock only, so concurrent submitters never serialize on
// the registry.
#pragma once

#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "serve/deployment.hpp"

namespace appeal::serve {

class server {
 public:
  server() = default;
  ~server();

  server(const server&) = delete;
  server& operator=(const server&) = delete;

  /// Registers a named deployment and starts its shards. Throws
  /// util::error on a duplicate name or after shutdown().
  deployment& register_deployment(const std::string& name,
                                  const deployment_config& cfg,
                                  edge_backend_factory edge,
                                  cloud_backend_factory cloud);

  /// Routes `req` to the deployment named by `req.model`. Throws
  /// util::error when no such deployment exists.
  std::future<response> submit(inference_request req);

  /// Looks up a deployment (nullptr when absent).
  deployment* find(const std::string& name);

  /// Looks up a deployment; throws util::error when absent.
  deployment& at(const std::string& name);

  std::size_t num_deployments() const;
  std::vector<std::string> deployment_names() const;

  /// One (name, per-deployment snapshot) pair per registered deployment.
  std::vector<std::pair<std::string, stats_snapshot>> stats() const;

  /// Human-readable multi-deployment stats report.
  std::string render_stats() const;

  /// Blocks until every deployment has drained.
  void drain();

  /// Stops every deployment; further register/submit calls throw.
  /// Idempotent; also invoked by the destructor.
  void shutdown();

 private:
  mutable std::shared_mutex mutex_;
  std::vector<std::pair<std::string, std::unique_ptr<deployment>>>
      deployments_;
  bool shut_down_ = false;
};

}  // namespace appeal::serve
