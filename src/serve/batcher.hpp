// Dynamic batch formation: max-batch-size / max-wait coalescing.
//
// The batcher blocks for the first request, then keeps pulling until the
// batch is full (size-triggered flush) or `max_wait` has elapsed since the
// first item arrived (timeout-triggered flush). This is the standard
// latency/throughput trade of online inference servers: larger batches
// amortize the edge model's fixed per-batch cost, the wait bound caps the
// queueing delay added to every request in the batch.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

#include "serve/request_queue.hpp"

namespace appeal::serve {

/// Flush policy of the dynamic batcher.
struct batch_policy {
  std::size_t max_batch_size = 16;
  std::chrono::microseconds max_wait{500};
};

/// Why a batch was emitted (exposed for tests and stats).
enum class flush_reason { batch_full, wait_expired, queue_closed };

/// One formed batch.
struct batch {
  std::vector<request> requests;
  flush_reason reason = flush_reason::queue_closed;
  bool empty() const { return requests.empty(); }
};

/// Pulls dynamic batches off a request_queue. Multiple edge workers may
/// each own a batcher over the same queue; the queue serializes access.
class batcher {
 public:
  batcher(request_queue& queue, const batch_policy& policy);

  /// Blocks for the next batch. An empty batch (reason `queue_closed`)
  /// means the queue is closed and drained — the worker should exit.
  batch next_batch();

  const batch_policy& policy() const { return policy_; }

 private:
  request_queue& queue_;
  batch_policy policy_;
};

}  // namespace appeal::serve
