// Dynamic batch formation: max-batch-size / max-wait coalescing.
//
// The batcher blocks for the first request, then keeps pulling until the
// batch is full (size-triggered flush) or `max_wait` has elapsed since the
// first item arrived (timeout-triggered flush). This is the standard
// latency/throughput trade of online inference servers: larger batches
// amortize the edge model's fixed per-batch cost, the wait bound caps the
// queueing delay added to every request in the batch.
//
// Deadline awareness: the flush timer is capped at the tightest deadline
// of any request already in the forming batch, minus `deadline_margin`
// (a budget for the dequeue + inference that still has to happen), so a
// near-deadline request never waits out a max_wait that would guarantee
// its expiry at the worker — flushing exactly AT the deadline would
// still shed it. (A deadline already inside the margin flushes
// immediately; whether the request is still alive is the worker's call.)
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/request_queue.hpp"

namespace appeal::serve {

/// Flush policy of the dynamic batcher.
struct batch_policy {
  std::size_t max_batch_size = 16;
  std::chrono::microseconds max_wait{500};
  /// How far BEFORE the tightest member deadline the flush fires — the
  /// service-time allowance that lets the capping request actually run
  /// instead of being shed the instant it reaches a worker.
  std::chrono::microseconds deadline_margin{1000};
};

/// Why a batch was emitted (exposed for tests and stats).
enum class flush_reason { batch_full, wait_expired, queue_closed };

/// One formed batch.
struct batch {
  std::vector<request> requests;
  flush_reason reason = flush_reason::queue_closed;
  bool empty() const { return requests.empty(); }
};

/// Pulls dynamic batches off a request_queue. Multiple edge workers may
/// each own a batcher over the same queue; the queue serializes access.
class batcher {
 public:
  batcher(request_queue& queue, const batch_policy& policy);

  /// Blocks for the next batch. An empty batch (reason `queue_closed`)
  /// means the queue is closed and drained — the worker should exit.
  batch next_batch();

  const batch_policy& policy() const { return policy_; }

 private:
  request_queue& queue_;
  batch_policy policy_;
  /// Registry instruments shared by every batcher (one per edge worker):
  /// emitted batch sizes and flush reasons, {reason=full|timeout|closed}.
  obs::histogram& metric_batch_size_;
  obs::counter& metric_flush_full_;
  obs::counter& metric_flush_timeout_;
  obs::counter& metric_flush_closed_;
};

}  // namespace appeal::serve
