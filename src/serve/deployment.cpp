#include "serve/deployment.hpp"

#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace appeal::serve {

namespace {

cloud_backend& require_cloud(const std::unique_ptr<cloud_backend>& cloud) {
  APPEAL_CHECK(cloud != nullptr, "deployment needs a cloud backend factory");
  return *cloud;
}

/// The deployment's name becomes the {deployment=...} label on its
/// registry instruments unless the caller already chose one.
serve_stats_config labeled_stats(serve_stats_config cfg,
                                 const std::string& name) {
  if (cfg.deployment.empty()) cfg.deployment = name;
  return cfg;
}

deployment_config validated(deployment_config cfg) {
  validate(cfg);
  return cfg;
}

}  // namespace

void validate(const deployment_config& cfg) {
  APPEAL_CHECK(cfg.shards > 0, "deployment needs at least one shard");
  APPEAL_CHECK(cfg.shard.num_workers > 0,
               "each shard needs at least one edge worker");
  APPEAL_CHECK(cfg.shard.queue_capacity > 0,
               "request queue capacity must be positive");
  APPEAL_CHECK(cfg.shard.pipeline.batch_queue_depth > 0,
               "pipeline batch_queue_depth must be positive");
  APPEAL_CHECK(cfg.shard.pipeline.decide_queue_depth > 0,
               "pipeline decide_queue_depth must be positive");
  APPEAL_CHECK(cfg.shard.pipeline.appeal_queue_depth > 0,
               "pipeline appeal_queue_depth must be positive");
  APPEAL_CHECK(cfg.shard.batching.max_batch_size > 0,
               "max_batch_size must be positive");
  // Split-computing knobs (shard.channel.split): a mode other than `off`
  // needs the cloud model's cut table, and a fixed cut must name an
  // entry in it. The cloud_channel re-checks these, but a deployment
  // should refuse a bad config before building any resource.
  const split_config& split = cfg.shard.channel.split;
  if (split.mode != split_mode::off) {
    APPEAL_CHECK(!split.cuts.empty(),
                 "split_mode needs the cloud model's cut table "
                 "(serve::enumerate_cloud_cuts)");
    if (split.mode == split_mode::fixed) {
      APPEAL_CHECK(split.cut >= 1 && split.cut <= split.cuts.size(),
                   "split_cut must name an entry of the cut table");
    }
  }
}

edge_precision parse_edge_precision(const std::string& name) {
  if (name == "fp32") return edge_precision::fp32;
  if (name == "int8") return edge_precision::int8;
  if (name == "auto") return edge_precision::autotuned;
  throw util::error("unknown edge precision: " + name +
                    " (expected fp32|int8|auto)");
}

const char* edge_precision_name(edge_precision p) {
  switch (p) {
    case edge_precision::fp32:
      return "fp32";
    case edge_precision::int8:
      return "int8";
    case edge_precision::autotuned:
      return "auto";
  }
  return "fp32";
}

deployment::deployment(std::string name, const deployment_config& cfg,
                       edge_backend_factory edge, cloud_backend_factory cloud)
    : name_(std::move(name)),
      config_(validated(cfg)),
      cloud_(cloud ? cloud() : nullptr),
      stats_(labeled_stats(cfg.shard.stats, name_)),
      controller_(cfg.shard.threshold, &config_.shard.link),
      channel_(require_cloud(cloud_), config_.shard.link,
               config_.shard.channel, name_) {
  APPEAL_CHECK(edge != nullptr, "deployment needs an edge backend factory");
  // Every deployment exports the bit-width of its edge path, so a scrape
  // can tell a quantized deployment from a float one at a glance.
  obs::default_registry()
      .get_gauge("appeal_edge_bits",
                 {{"deployment", labeled_stats(cfg.shard.stats, name_)
                                     .deployment}},
                 "narrowest weight bit-width deployed on the edge path")
      .set(static_cast<double>(config_.edge_weight_bits));
  engines_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    engine_config shard_cfg = config_.shard;
    shard_cfg.shard_id = s;
    // Shard mode ignores shard_cfg.stats for stats creation (the shared
    // sink above is the aggregation point), but its deployment name
    // labels the shard's per-node appeal_node_* ledgers — all shards
    // share one labeled instrument family, so conservation holds at
    // deployment granularity.
    shard_cfg.stats = labeled_stats(config_.shard.stats, name_);
    std::vector<std::unique_ptr<edge_backend>> per_worker;
    per_worker.reserve(shard_cfg.num_workers);
    for (std::size_t w = 0; w < shard_cfg.num_workers; ++w) {
      per_worker.push_back(edge(s, w));
      APPEAL_CHECK(per_worker.back() != nullptr,
                   "edge factory returned null");
    }
    engines_.push_back(std::make_unique<engine>(
        shard_cfg,
        engine_resources::shard(std::move(per_worker), channel_, controller_,
                                stats_)));
  }
}

deployment::~deployment() { shutdown(); }

stats_snapshot deployment::snapshot() const {
  stats_snapshot s = stats_.snapshot();
  apply_link_counters(s, channel_.counters().since(link_baseline_));
  return s;
}

std::size_t deployment::shard_for_key(std::uint64_t key) const {
  // Well-mixed stable hash so consecutive keys spread across shards
  // instead of striping.
  return static_cast<std::size_t>(util::mix64(key) % engines_.size());
}

std::future<response> deployment::submit(inference_request&& req) {
  // The model field's job ended when the server picked this deployment;
  // strip it at the routing boundary so nothing below can depend on it
  // (and a replayed request cannot smuggle a stale model name).
  req.model.clear();
  std::size_t target = 0;
  if (engines_.size() > 1) {
    if (config_.routing == routing_policy::key_affine) {
      target = shard_for_key(req.key);
    } else {
      std::size_t best = std::numeric_limits<std::size_t>::max();
      for (std::size_t s = 0; s < engines_.size(); ++s) {
        const std::size_t depth = engines_[s]->queue_depth();
        if (depth < best) {
          best = depth;
          target = s;
        }
      }
    }
  }
  return engines_[target]->submit(std::move(req));
}

void deployment::drain() {
  for (auto& eng : engines_) eng->drain();
}

void deployment::shutdown() {
  // Each shard closes its queue, joins its workers, and drains the shared
  // channel (drain waits on *all* outstanding appeals, so the order of
  // shards does not matter).
  for (auto& eng : engines_) eng->shutdown();
}

std::size_t deployment::shed_total() const {
  std::size_t total = 0;
  for (const auto& eng : engines_) total += eng->admission().shed();
  return total;
}

}  // namespace appeal::serve
