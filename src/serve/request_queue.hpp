// Bounded thread-safe priority FIFO of in-flight requests.
//
// Two lanes: interactive requests always pop ahead of batch requests
// (FIFO within a lane); capacity covers both lanes together. Producers
// choose their admission semantics — push() blocks while the queue is
// full (the `block` admission policy), try_push() never blocks and
// reports `full` so the admission controller can shed or degrade
// instead. Consumers (the batcher, on behalf of edge workers) pop with a
// deadline so batch formation can time out. close() wakes everyone; pops
// drain remaining items first.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

#include "serve/request.hpp"

namespace appeal::serve {

class request_queue {
 public:
  explicit request_queue(std::size_t capacity);

  /// Outcome of a deadline pop.
  enum class pop_result { item, timed_out, closed };

  /// Outcome of a non-blocking push.
  enum class push_result { ok, full, closed };

  /// Blocks while the queue holds `limit` or more items (0 = the
  /// configured capacity; admission policies pass the batch-class
  /// headroom here). Returns false (request untouched apart from the
  /// move) when the queue is closed.
  bool push(request&& r, std::size_t limit = 0);

  /// Non-blocking push. `limit` overrides the admission bound for this
  /// call (0 = the configured capacity): admission policies use a lower
  /// bound for batch-class traffic and a higher one for degraded
  /// (edge-only) overflow. On `full` or `closed` the request is left
  /// valid in the caller's hands.
  push_result try_push(request&& r, std::size_t limit = 0);

  /// Blocks until an item arrives, the deadline passes, or the queue is
  /// closed *and* drained. On `item`, `out` holds the popped request.
  pop_result pop_until(request& out,
                       std::chrono::steady_clock::time_point deadline);

  /// Non-blocking pop; true when an item was available.
  bool try_pop(request& out);

  /// Closes the queue: future pushes fail, pops drain then report closed.
  void close();

  bool closed() const;
  std::size_t size() const;
  /// Lock-free approximate size — the least-loaded router's load signal;
  /// avoids taking the queue mutex on the submit hot path.
  std::size_t approx_size() const {
    return approx_size_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return capacity_; }

 private:
  // Callers hold mutex_.
  std::size_t size_locked() const {
    return interactive_.size() + batch_.size();
  }
  std::deque<request>& lane(priority_class p) {
    return p == priority_class::interactive ? interactive_ : batch_;
  }
  bool pop_locked(request& out);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<request> interactive_;
  std::deque<request> batch_;
  std::atomic<std::size_t> approx_size_{0};
  bool closed_ = false;
};

}  // namespace appeal::serve
