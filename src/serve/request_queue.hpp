// Bounded thread-safe FIFO of in-flight requests.
//
// Producers (engine::submit) block while the queue is full — the natural
// admission backpressure of a closed-loop server. Consumers (the batcher,
// on behalf of edge workers) pop with a deadline so batch formation can
// time out. close() wakes everyone; pops drain remaining items first.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

#include "serve/request.hpp"

namespace appeal::serve {

class request_queue {
 public:
  explicit request_queue(std::size_t capacity);

  /// Outcome of a deadline pop.
  enum class pop_result { item, timed_out, closed };

  /// Blocks while full. Returns false (request untouched apart from the
  /// move) when the queue is closed.
  bool push(request&& r);

  /// Blocks until an item arrives, the deadline passes, or the queue is
  /// closed *and* drained. On `item`, `out` holds the popped request.
  pop_result pop_until(request& out,
                       std::chrono::steady_clock::time_point deadline);

  /// Non-blocking pop; true when an item was available.
  bool try_pop(request& out);

  /// Closes the queue: future pushes fail, pops drain then report closed.
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<request> items_;
  bool closed_ = false;
};

}  // namespace appeal::serve
