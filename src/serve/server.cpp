#include "serve/server.hpp"

#include <mutex>

#include "util/error.hpp"

namespace appeal::serve {

server::~server() { shutdown(); }

deployment& server::register_deployment(const std::string& name,
                                        const deployment_config& cfg,
                                        edge_backend_factory edge,
                                        cloud_backend_factory cloud) {
  APPEAL_CHECK(!name.empty(), "deployment name must not be empty");
  const auto validate = [&] {
    APPEAL_CHECK(!shut_down_, "register_deployment() on a shut-down server");
    for (const auto& [existing, unused] : deployments_) {
      APPEAL_CHECK(existing != name,
                   "deployment '" + name + "' is already registered");
    }
  };
  {
    // Reject duplicates / post-shutdown registration before spinning up
    // the deployment's worker fleet.
    std::shared_lock lock(mutex_);
    validate();
  }
  auto dep = std::make_unique<deployment>(name, cfg, std::move(edge),
                                          std::move(cloud));
  std::unique_lock lock(mutex_);
  validate();  // re-check: a concurrent register may have raced us
  deployments_.emplace_back(name, std::move(dep));
  return *deployments_.back().second;
}

std::future<response> server::submit(inference_request req) {
  deployment* dep = find(req.model);
  APPEAL_CHECK(dep != nullptr,
               "submit() for unknown deployment '" + req.model + "'");
  return dep->submit(std::move(req));
}

deployment* server::find(const std::string& name) {
  std::shared_lock lock(mutex_);
  for (const auto& [existing, dep] : deployments_) {
    if (existing == name) return dep.get();
  }
  return nullptr;
}

deployment& server::at(const std::string& name) {
  deployment* dep = find(name);
  APPEAL_CHECK(dep != nullptr, "no deployment named '" + name + "'");
  return *dep;
}

std::size_t server::num_deployments() const {
  std::shared_lock lock(mutex_);
  return deployments_.size();
}

std::vector<std::string> server::deployment_names() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(deployments_.size());
  for (const auto& [name, unused] : deployments_) names.push_back(name);
  return names;
}

std::vector<std::pair<std::string, stats_snapshot>> server::stats() const {
  std::shared_lock lock(mutex_);
  std::vector<std::pair<std::string, stats_snapshot>> out;
  out.reserve(deployments_.size());
  for (const auto& [name, dep] : deployments_) {
    out.emplace_back(name, dep->snapshot());
  }
  return out;
}

std::string server::render_stats() const {
  std::string out;
  for (const auto& [name, snap] : stats()) {
    out += "=== deployment '" + name + "' ===\n";
    out += serve_stats::render(snap);
  }
  return out;
}

void server::drain() {
  // Snapshot the registry, then drain unlocked: a drain can block for an
  // unbounded time and must not stall submit()/stats() readers behind a
  // pending writer. Deployments are never destroyed before shutdown, so
  // the pointers stay valid.
  std::vector<deployment*> deps;
  {
    std::shared_lock lock(mutex_);
    deps.reserve(deployments_.size());
    for (const auto& [unused, dep] : deployments_) deps.push_back(dep.get());
  }
  for (deployment* dep : deps) dep->drain();
}

void server::shutdown() {
  std::unique_lock lock(mutex_);
  if (shut_down_) return;
  shut_down_ = true;
  for (const auto& [unused, dep] : deployments_) dep->shutdown();
}

}  // namespace appeal::serve
