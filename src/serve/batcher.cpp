#include "serve/batcher.hpp"

#include "util/error.hpp"

namespace appeal::serve {

batcher::batcher(request_queue& queue, const batch_policy& policy)
    : queue_(queue), policy_(policy) {
  APPEAL_CHECK(policy.max_batch_size > 0, "max_batch_size must be positive");
  APPEAL_CHECK(policy.max_wait.count() >= 0, "max_wait must be non-negative");
}

batch batcher::next_batch() {
  using clock = std::chrono::steady_clock;
  batch out;

  // Block indefinitely for the first request (poll in coarse slices so a
  // close() during the wait is picked up promptly even on platforms with
  // spurious-wakeup-free condvars).
  request first;
  for (;;) {
    const auto result =
        queue_.pop_until(first, clock::now() + std::chrono::milliseconds(50));
    if (result == request_queue::pop_result::item) break;
    if (result == request_queue::pop_result::closed) {
      out.reason = flush_reason::queue_closed;
      return out;
    }
  }
  first.dequeue_time = clock::now();
  const auto deadline = first.dequeue_time + policy_.max_wait;
  out.requests.push_back(std::move(first));

  while (out.requests.size() < policy_.max_batch_size) {
    request next;
    const auto result = queue_.pop_until(next, deadline);
    if (result == request_queue::pop_result::item) {
      next.dequeue_time = clock::now();
      out.requests.push_back(std::move(next));
      continue;
    }
    out.reason = result == request_queue::pop_result::closed
                     ? flush_reason::queue_closed
                     : flush_reason::wait_expired;
    return out;
  }
  out.reason = flush_reason::batch_full;
  return out;
}

}  // namespace appeal::serve
