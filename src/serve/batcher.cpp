#include "serve/batcher.hpp"

#include "util/error.hpp"

namespace appeal::serve {

namespace {

obs::counter& flush_counter(const char* reason) {
  return obs::default_registry().get_counter(
      "appeal_batch_flush_total", {{"reason", reason}},
      "batches emitted, by what triggered the flush");
}

}  // namespace

batcher::batcher(request_queue& queue, const batch_policy& policy)
    : queue_(queue),
      policy_(policy),
      // Fixed binning (1 request per bin) so every batcher, whatever its
      // max_batch_size, shares one instrument; larger batches clamp.
      metric_batch_size_(obs::default_registry().get_histogram(
          "appeal_batch_size", {}, 0.0, 256.0, 256,
          "requests per emitted batch")),
      metric_flush_full_(flush_counter("full")),
      metric_flush_timeout_(flush_counter("timeout")),
      metric_flush_closed_(flush_counter("closed")) {
  APPEAL_CHECK(policy.max_batch_size > 0, "max_batch_size must be positive");
  APPEAL_CHECK(policy.max_wait.count() >= 0, "max_wait must be non-negative");
  APPEAL_CHECK(policy.deadline_margin.count() >= 0,
               "deadline_margin must be non-negative");
}

batch batcher::next_batch() {
  using clock = std::chrono::steady_clock;
  batch out;
  // Instruments only real batches: the empty queue-closed batch is the
  // worker-exit signal, not a flush.
  const auto record = [this](const batch& b) {
    if (b.empty()) return;
    metric_batch_size_.observe(static_cast<double>(b.requests.size()));
    switch (b.reason) {
      case flush_reason::batch_full:
        metric_flush_full_.add(1);
        break;
      case flush_reason::wait_expired:
        metric_flush_timeout_.add(1);
        break;
      case flush_reason::queue_closed:
        metric_flush_closed_.add(1);
        break;
    }
  };

  // Block indefinitely for the first request (poll in coarse slices so a
  // close() during the wait is picked up promptly even on platforms with
  // spurious-wakeup-free condvars).
  request first;
  for (;;) {
    const auto result =
        queue_.pop_until(first, clock::now() + std::chrono::milliseconds(50));
    if (result == request_queue::pop_result::item) break;
    if (result == request_queue::pop_result::closed) {
      out.reason = flush_reason::queue_closed;
      record(out);
      return out;
    }
  }
  first.dequeue_time = clock::now();
  // Flush when max_wait elapses — or sooner, if a request already in the
  // forming batch would expire first. Waiting out the full window past a
  // member's deadline guarantees the worker sheds it; flushing a service
  // margin BEFORE the tightest deadline gives it a chance to run in time
  // (flushing exactly at the deadline would still arrive expired).
  auto flush_at = first.dequeue_time + policy_.max_wait;
  const auto cap_at_deadline = [this, &flush_at](const request& r) {
    if (r.deadline == request::no_deadline) return;
    const auto capped = r.deadline - policy_.deadline_margin;
    if (capped < flush_at) flush_at = capped;
  };
  cap_at_deadline(first);
  out.requests.push_back(std::move(first));

  while (out.requests.size() < policy_.max_batch_size) {
    request next;
    const auto result = queue_.pop_until(next, flush_at);
    if (result == request_queue::pop_result::item) {
      next.dequeue_time = clock::now();
      cap_at_deadline(next);
      out.requests.push_back(std::move(next));
      continue;
    }
    out.reason = result == request_queue::pop_result::closed
                     ? flush_reason::queue_closed
                     : flush_reason::wait_expired;
    record(out);
    return out;
  }
  out.reason = flush_reason::batch_full;
  record(out);
  return out;
}

}  // namespace appeal::serve
