// The cloud-side big network, buildable anywhere on the link.
//
// The edge process (bench_serving, serving_demo) and the cloud process
// (tools/cloud_stub) must construct bit-identical big models from the
// same few knobs: nn/serialize loads by qualified name with exact shape
// checks, so both sides need the same architecture before weights load.
// This header is that shared recipe — a canonical spec (the paper's
// ResNet cloud model at bench geometry), deterministic initialization,
// optional serialized weights, and the conv+BN deployment fold — plus the
// batched scorer the stub's worker pool runs cloud batches through.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "models/model_spec.hpp"
#include "nn/sequential.hpp"
#include "serve/split.hpp"
#include "serve/transport/stub_server.hpp"

namespace appeal::serve {

/// How to build (and optionally restore) one big network.
struct cloud_model_config {
  models::model_spec spec;
  /// Deterministic weight init: the same seed on both ends of the link
  /// yields the same model even with no weights file.
  std::uint64_t init_seed = 0xB16;
  /// Serialized weights (nn/serialize format, e.g. from
  /// tools/train_cloud_model or serving_demo --save_big). Empty keeps the
  /// seeded initialization. Architecture mismatches throw (load_model
  /// matches tensors by name and shape).
  std::string weights_path;
  /// Fold conv+batchnorm pairs after loading (the standard deployment
  /// rewrite; turn off only to save weights in trainable form).
  bool fold = true;

  cloud_model_config() : spec(default_big_spec()) {}

  /// The canonical cloud model of the serving benches: the ResNet family
  /// (the paper's cloud side) at depth 2, 16x16 inputs, 10 classes —
  /// matching bench_serving's workload and serving_demo's big_spec.
  static models::model_spec default_big_spec();
};

/// Builds the big classifier: make_classifier(spec) with seeded init,
/// then weights (if any), then the conv+BN fold. Ready for
/// network_cloud_backend or make_network_scorer_factory.
std::unique_ptr<nn::sequential> make_cloud_model(const cloud_model_config& cfg);

/// The split-computing candidate table of `cfg`'s model: one
/// split_cut_spec per named cut (1-based ids matching wire cut_ids), with
/// the feature shape, wire bytes, and prefix/suffix FLOPs at each. Built
/// from the model exactly as both link ends serve it — after the fold —
/// so the boundaries agree with what prefix_feature/infer_batch_suffix
/// run. This is the single source of truth the channel's cut picker and
/// the stub's suffix scorer share.
std::vector<split_cut_spec> enumerate_cloud_cuts(const cloud_model_config& cfg);

/// Scorer factory for stub_server: each worker gets its own model built
/// from `cfg` (forwards use thread-local workspaces; instances are not
/// shared across workers). Appeals score as ONE stacked batch per
/// (split cut, shape) group — network_cloud_backend's batch paths — so a
/// cloud batch pays one im2col + GEMM per layer; split appeals run only
/// the suffix past their cut. Appeals without a tensor payload answer
/// key % num_classes (replay workloads carry no pixels; the convention
/// the argmax scorer uses). Split appeals whose cut id or feature shape
/// matches no cut of this model answer kRejectedPrediction — the stub
/// turns that into response_status::rejected and the edge falls back to
/// its local copy.
stub_server::scorer_factory make_network_scorer_factory(
    const cloud_model_config& cfg);

}  // namespace appeal::serve
