// Online δ adaptation.
//
// Offline, δ is tuned once on a validation split (core/threshold). Online,
// the score distribution drifts with the traffic mix, so the controller
// re-fits δ continuously from a sliding window of observed scores and
// tracks the achieved skipping rate with an EMA:
//   - mode `fixed`: δ never moves (pure offline calibration);
//   - mode `track_sr`: δ is the target-SR quantile of the score window
//     (core::delta_for_skipping_rate), refit every `recalibrate_every`
//     observations;
//   - mode `latency_slo`: the target SR is derived from a latency SLO by
//     inverting the cost model's linear latency-vs-SR relation
//     (collab::cost_model::overall_latency_ms), then tracked as above.
//     The offload-latency term is not frozen at the model's prediction:
//     observe_cloud_ms() feeds the measured appeal round trip (engine
//     completion callbacks), an EMA replaces the modeled offload cost,
//     and the target SR is re-derived — a cloud_ms spike pushes δ toward
//     edge-only, and it relaxes again when the link recovers.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

#include "collab/cost_model.hpp"

namespace appeal::serve {

struct threshold_config {
  enum class mode { fixed, track_sr, latency_slo };
  mode adapt = mode::track_sr;

  double initial_delta = 0.5;
  double target_sr = 0.9;        // track_sr mode
  double latency_slo_ms = 0.0;   // latency_slo mode (needs a cost model)

  std::size_t window = 4096;            // sliding score window size
  std::size_t recalibrate_every = 256;  // observations between δ refits
  double ema_alpha = 0.05;              // smoothing of the observed SR
};

class threshold_controller {
 public:
  /// `link` is only required in latency_slo mode (to invert latency→SR).
  explicit threshold_controller(const threshold_config& cfg,
                                const collab::cost_model* link = nullptr);

  /// Current threshold; lock-free, safe from any worker thread.
  double delta() const { return delta_.load(std::memory_order_relaxed); }

  /// The SR the controller is steering toward (derived from the SLO in
  /// latency_slo mode, where it moves with the observed cloud latency).
  double target_sr() const {
    return target_sr_.load(std::memory_order_relaxed);
  }

  /// latency_slo mode: one measured offload round trip (appeal link_ms).
  /// Re-derives the target SR from an EMA of these instead of the cost
  /// model's static offload term. No-op in the other modes.
  void observe_cloud_ms(double offload_ms);

  /// latency_slo mode: the offload-latency estimate currently driving
  /// the target SR (the cost model's prediction until a measurement
  /// arrives).
  double offload_estimate_ms() const;

  /// EMA of the per-batch skipping rate observed so far (target_sr before
  /// any observation).
  double observed_sr() const {
    return observed_sr_.load(std::memory_order_relaxed);
  }

  /// Feeds one batch's scores and its skip decision count; refits δ when
  /// the recalibration interval elapses (track_sr / latency_slo modes).
  void observe(const std::vector<double>& scores, std::size_t skipped);

  /// Number of δ refits performed (exposed for tests/stats).
  std::size_t recalibrations() const {
    return recalibrations_.load(std::memory_order_relaxed);
  }

 private:
  threshold_config config_;
  std::atomic<double> target_sr_;
  std::atomic<double> delta_;
  std::atomic<double> observed_sr_;
  std::atomic<std::size_t> recalibrations_{0};
  /// latency_slo mode: the SLO inversion's fixed edge term and the
  /// moving offload estimate (mutex_-guarded EMA).
  double slo_edge_ms_ = 0.0;
  double offload_ema_ms_ = 0.0;

  mutable std::mutex mutex_;        // guards the window state below
  std::vector<double> window_;      // ring buffer of recent scores
  std::size_t window_next_ = 0;     // next write slot
  std::size_t window_count_ = 0;    // filled entries (<= config.window)
  std::size_t since_recalibrate_ = 0;
  bool seen_observation_ = false;
};

/// Inverts overall_latency_ms(sr) for the target SR achieving `slo_ms`
/// (clamped to [0, 1]; 1 when the SLO is unreachably tight, the controller
/// then keeps everything on the edge — the best it can do).
double target_sr_for_latency_slo(const collab::cost_model& link,
                                 double slo_ms);

}  // namespace appeal::serve
