#include "serve/backends.hpp"

#include <cstring>

#include "nn/inference_workspace.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace appeal::serve {

namespace {

/// Stacks per-request [C, H, W] inputs into one [N, C, H, W] batch drawn
/// from the edge worker's thread-local inference workspace (each engine
/// worker is its own thread, so each has its own arena).
tensor stack_inputs(const std::vector<request>& batch) {
  APPEAL_CHECK(!batch.empty(), "cannot stack an empty batch");
  const tensor& first = batch.front().input;
  APPEAL_CHECK(!first.empty(), "network backend requires request inputs");
  const std::size_t per_item = first.size();
  std::vector<std::size_t> dims{batch.size()};
  for (std::size_t d = 0; d < first.dims().rank(); ++d) {
    dims.push_back(first.dims().dim(d));
  }
  tensor out = nn::inference_workspace::local().acquire(shape(dims));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const tensor& item = batch[i].input;
    APPEAL_CHECK(item.size() == per_item,
                 "all batch inputs must share one shape");
    std::memcpy(out.data() + i * per_item, item.data(),
                per_item * sizeof(float));
  }
  return out;
}

}  // namespace

tensor cloud_backend::prefix_feature(const tensor& /*input*/,
                                     std::uint32_t /*cut_id*/) {
  return {};
}

replay_edge_backend::replay_edge_backend(std::vector<std::size_t> predictions,
                                         std::vector<double> scores)
    : predictions_(std::move(predictions)), scores_(std::move(scores)) {
  APPEAL_CHECK(predictions_.size() == scores_.size(),
               "replay predictions/scores must be parallel");
  APPEAL_CHECK(!predictions_.empty(), "replay backend requires data");
}

edge_inference replay_edge_backend::infer(const std::vector<request>& batch) {
  edge_inference out;
  out.predictions.reserve(batch.size());
  out.scores.reserve(batch.size());
  for (const request& r : batch) {
    APPEAL_CHECK(r.key < predictions_.size(),
                 "request key outside the replay table");
    out.predictions.push_back(predictions_[r.key]);
    out.scores.push_back(scores_[r.key]);
  }
  return out;
}

replay_cloud_backend::replay_cloud_backend(std::vector<std::size_t> predictions)
    : predictions_(std::move(predictions)) {
  APPEAL_CHECK(!predictions_.empty(), "replay backend requires data");
}

std::size_t replay_cloud_backend::infer(const request& r) {
  APPEAL_CHECK(r.key < predictions_.size(),
               "request key outside the replay table");
  return predictions_[r.key];
}

std::size_t oracle_cloud_backend::infer(const request& r) {
  APPEAL_CHECK(r.label != request::no_label,
               "oracle cloud requires ground-truth labels");
  return r.label;
}

network_edge_backend::network_edge_backend(core::two_head_network& network,
                                           core::score_method method)
    : network_(network), method_(method) {}

namespace {

core::two_head_network& checked_deref(
    const std::unique_ptr<core::two_head_network>& p) {
  APPEAL_CHECK(p != nullptr, "network_edge_backend requires a network");
  return *p;
}

}  // namespace

network_edge_backend::network_edge_backend(
    std::unique_ptr<core::two_head_network> network, core::score_method method)
    : owned_(std::move(network)),
      network_(checked_deref(owned_)),
      method_(method) {}

edge_inference network_edge_backend::infer(const std::vector<request>& batch) {
  nn::inference_workspace& ws = nn::inference_workspace::local();
  tensor inputs = stack_inputs(batch);
  core::two_head_output fwd = network_.forward(inputs, /*training=*/false);
  ws.recycle(std::move(inputs));
  edge_inference out;
  out.predictions = ops::argmax_rows(fwd.logits);
  if (method_ == core::score_method::appealnet_q) {
    out.scores = core::q_to_scores(fwd.q);
  } else {
    out.scores =
        core::confidence_scores(method_, ops::softmax_rows(fwd.logits));
  }
  ws.recycle(std::move(fwd.logits));
  ws.recycle(std::move(fwd.q_logits));
  return out;
}

namespace {

nn::sequential& checked_deref_sequential(
    const std::unique_ptr<nn::sequential>& p) {
  APPEAL_CHECK(p != nullptr, "network_cloud_backend requires a network");
  return *p;
}

}  // namespace

network_cloud_backend::network_cloud_backend(nn::sequential& network)
    : network_(network) {}

network_cloud_backend::network_cloud_backend(
    std::unique_ptr<nn::sequential> network)
    : owned_(std::move(network)), network_(checked_deref_sequential(owned_)) {}

std::vector<std::size_t> network_cloud_backend::infer_batch(
    const std::vector<const tensor*>& inputs) {
  APPEAL_CHECK(!inputs.empty(), "cannot infer an empty batch");
  const tensor& first = *inputs.front();
  APPEAL_CHECK(!first.empty(), "network backend requires request inputs");
  std::vector<std::size_t> dims{inputs.size()};
  for (std::size_t d = 0; d < first.dims().rank(); ++d) {
    dims.push_back(first.dims().dim(d));
  }
  nn::inference_workspace& ws = nn::inference_workspace::local();
  tensor batch = ws.acquire(shape(dims));
  const std::size_t per_item = first.size();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    APPEAL_CHECK(inputs[i]->size() == per_item,
                 "all batch inputs must share one shape");
    std::memcpy(batch.data() + i * per_item, inputs[i]->data(),
                per_item * sizeof(float));
  }
  tensor logits = network_.forward(batch, /*training=*/false);
  ws.recycle(std::move(batch));
  std::vector<std::size_t> predictions = ops::argmax_rows(logits);
  ws.recycle(std::move(logits));
  return predictions;
}

std::vector<std::size_t> network_cloud_backend::infer_batch_suffix(
    const std::vector<const tensor*>& features, std::uint32_t cut_id) {
  APPEAL_CHECK(!features.empty(), "cannot infer an empty batch");
  const std::vector<nn::cut_point>& cuts = network_.cuts();
  APPEAL_CHECK(cut_id >= 1 && cut_id <= cuts.size(),
               "infer_batch_suffix: unknown split cut id");
  const std::size_t boundary = cuts[cut_id - 1].boundary;
  const tensor& first = *features.front();
  APPEAL_CHECK(!first.empty(), "split appeal shipped an empty feature map");
  std::vector<std::size_t> dims{features.size()};
  for (std::size_t d = 0; d < first.dims().rank(); ++d) {
    dims.push_back(first.dims().dim(d));
  }
  nn::inference_workspace& ws = nn::inference_workspace::local();
  tensor batch = ws.acquire(shape(dims));
  const std::size_t per_item = first.size();
  for (std::size_t i = 0; i < features.size(); ++i) {
    APPEAL_CHECK(features[i]->size() == per_item,
                 "all batch features must share one shape");
    std::memcpy(batch.data() + i * per_item, features[i]->data(),
                per_item * sizeof(float));
  }
  tensor logits = network_.forward_suffix(batch, boundary);
  ws.recycle(std::move(batch));
  std::vector<std::size_t> predictions = ops::argmax_rows(logits);
  ws.recycle(std::move(logits));
  return predictions;
}

tensor network_cloud_backend::prefix_feature(const tensor& input,
                                             std::uint32_t cut_id) {
  APPEAL_CHECK(!input.empty(), "network backend requires request inputs");
  const std::vector<nn::cut_point>& cuts = network_.cuts();
  APPEAL_CHECK(cut_id >= 1 && cut_id <= cuts.size(),
               "prefix_feature: unknown split cut id");
  const std::size_t boundary = cuts[cut_id - 1].boundary;
  std::vector<std::size_t> dims{1};
  for (std::size_t d = 0; d < input.dims().rank(); ++d) {
    dims.push_back(input.dims().dim(d));
  }
  nn::inference_workspace& ws = nn::inference_workspace::local();
  tensor batched = ws.acquire(shape(dims));
  std::memcpy(batched.data(), input.data(), input.size() * sizeof(float));
  tensor out = network_.forward_prefix(batched, boundary);
  ws.recycle(std::move(batched));
  // The feature outlives this call (it rides the in-flight request across
  // threads), so copy it out of the workspace arena, dropping the [1, ...]
  // batch dimension.
  std::vector<std::size_t> feature_dims;
  for (std::size_t d = 1; d < out.dims().rank(); ++d) {
    feature_dims.push_back(out.dims().dim(d));
  }
  tensor feature(shape(std::move(feature_dims)),
                 std::vector<float>(out.values().begin(), out.values().end()));
  ws.recycle(std::move(out));
  return feature;
}

std::size_t network_cloud_backend::infer(const request& r) {
  APPEAL_CHECK(!r.input.empty(), "network backend requires request inputs");
  std::vector<std::size_t> dims{1};
  for (std::size_t d = 0; d < r.input.dims().rank(); ++d) {
    dims.push_back(r.input.dims().dim(d));
  }
  nn::inference_workspace& ws = nn::inference_workspace::local();
  tensor input = ws.acquire(shape(dims));
  std::memcpy(input.data(), r.input.data(), r.input.size() * sizeof(float));
  tensor logits = network_.forward(input, /*training=*/false);
  ws.recycle(std::move(input));
  const std::size_t prediction = ops::argmax_rows(logits).front();
  ws.recycle(std::move(logits));
  return prediction;
}

}  // namespace appeal::serve
