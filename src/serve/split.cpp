#include "serve/split.hpp"

#include "util/error.hpp"

namespace appeal::serve {

split_mode parse_split_mode(const std::string& name) {
  if (name == "off") return split_mode::off;
  if (name == "fixed") return split_mode::fixed;
  if (name == "auto") return split_mode::autosel;
  throw util::error("unknown split mode: " + name +
                    " (expected off|fixed|auto)");
}

const char* split_mode_name(split_mode m) {
  switch (m) {
    case split_mode::off:
      return "off";
    case split_mode::fixed:
      return "fixed";
    case split_mode::autosel:
      return "auto";
  }
  return "off";
}

}  // namespace appeal::serve
