// The online edge/cloud collaborative inference engine.
//
// Request lifecycle:
//   submit() -> request_queue -> batcher (dynamic batch) -> edge worker
//     -> edge_backend (two-head little network / replay)
//     -> score >= δ ?  complete on the edge
//                   :  cloud_channel appeal -> cloud_backend -> complete
// Every completion fulfills the request's promise and feeds serve_stats;
// the threshold_controller watches per-batch scores and steers δ toward
// the configured skipping-rate target (or latency SLO).
//
// Threading: `num_workers` edge workers pull batches concurrently (give
// each its own edge_backend via the factory overload when the backend is
// stateful, e.g. network_edge_backend); one background thread inside
// cloud_channel simulates the uplink and completes appeals.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "collab/cost_model.hpp"
#include "serve/backends.hpp"
#include "serve/batcher.hpp"
#include "serve/cloud_channel.hpp"
#include "serve/request_queue.hpp"
#include "serve/serve_stats.hpp"
#include "serve/threshold_controller.hpp"

namespace appeal::serve {

struct engine_config {
  batch_policy batching;
  std::size_t num_workers = 2;
  std::size_t queue_capacity = 1024;
  threshold_config threshold;
  collab::cost_model link;        // simulated uplink + edge/cloud compute
  link_config channel;            // time_scale for the simulation
  serve_stats_config stats;
  /// When true, each batch also pays the modeled edge compute time
  /// (edge_mflops / edge_gflops, scaled by channel.time_scale) — the batch
  /// runs as one parallel pass on the edge accelerator.
  bool simulate_edge_compute = false;
};

class engine {
 public:
  /// Single shared edge backend (must be thread-safe or num_workers == 1).
  engine(const engine_config& cfg, edge_backend& edge, cloud_backend& cloud);

  /// Per-worker edge backends (index-aligned with the worker pool).
  engine(const engine_config& cfg,
         std::vector<edge_backend*> per_worker_edge, cloud_backend& cloud);

  ~engine();

  /// Enqueues one request; blocks while the queue is full (admission
  /// backpressure). The future resolves at completion.
  std::future<response> submit(tensor input, std::uint64_t key,
                               std::size_t label = request::no_label);

  /// Blocks until every submitted request has completed.
  void drain();

  /// Stops accepting work, drains, and joins all threads. Idempotent;
  /// also invoked by the destructor.
  void shutdown();

  const serve_stats& stats() const { return stats_; }

  /// Discards all stats so far (counters, latency histogram, clock) —
  /// call after a warmup phase, with no requests in flight, to open a
  /// clean measurement window. The threshold controller keeps its state.
  void reset_stats() { stats_.reset(); }
  threshold_controller& controller() { return controller_; }
  const engine_config& config() const { return config_; }

 private:
  void worker_loop(edge_backend& edge);
  void complete(request&& r, response&& resp);

  engine_config config_;
  std::vector<edge_backend*> edge_backends_;
  request_queue queue_;
  threshold_controller controller_;
  serve_stats stats_;
  cloud_channel channel_;

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::size_t> outstanding_{0};
  std::mutex drain_mutex_;
  std::condition_variable drained_;
  std::vector<std::thread> workers_;
  bool shut_down_ = false;
  std::mutex shutdown_mutex_;
};

}  // namespace appeal::serve
