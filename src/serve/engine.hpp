// The online edge/cloud collaborative inference engine (one shard).
//
// The engine is a pipeline graph of five bounded, backpressured stages
// (src/serve/pipeline/):
//
//   submit() -> [ingress]       admission verdict (block / shed / degrade)
//            -> [batch_former]  request_queue -> dynamic batch
//            -> [edge_infer]    worker pool, one edge_backend per thread
//            -> [appeal_decide] deadline check + score >= δ
//            -> [cloud_appeal]  cloud_channel -> cloud_backend
//
// Requests leave the graph (promise fulfilled, serve_stats fed) at three
// egress points: ingress (admission shed), appeal_decide (edge-kept,
// degraded, and expired), and cloud_appeal (appeals, including
// cloud-expired ones). Every stage hand-off is a bounded node_queue, so
// overload backs up hop by hop until admission sheds at the front door;
// per-node in/out/egress ledgers (appeal_node_* metrics) let a scrape
// pinpoint the stage where traffic queues or leaks. The engine itself is
// graph assembly + config + the completion path; the threshold_controller
// watches per-batch scores and steers δ toward the configured
// skipping-rate target (or latency SLO).
//
// Ownership: engine_resources says what the engine owns vs shares. A
// standalone engine owns its channel/controller/stats; a serve::deployment
// shard shares the deployment's cloud_channel, threshold_controller (the
// per-deployment δ), and serve_stats (the per-deployment aggregation
// point).
//
// Threading: `num_workers` edge-infer threads pull batches concurrently
// (one backend per worker so stateful backends such as
// network_edge_backend stay single-threaded, each with its thread-local
// nn::inference_workspace arena); one batch-former thread, one decide
// thread, one appeal hand-off thread, and the channel's transport threads
// complete the picture.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "collab/cost_model.hpp"
#include "obs/trace.hpp"
#include "serve/admission.hpp"
#include "serve/backends.hpp"
#include "serve/batcher.hpp"
#include "serve/cloud_channel.hpp"
#include "serve/pipeline/pipeline_node.hpp"
#include "serve/pipeline/stage_nodes.hpp"
#include "serve/request_queue.hpp"
#include "serve/serve_stats.hpp"
#include "serve/threshold_controller.hpp"

namespace appeal::serve {

/// Builds the edge backend for one worker (`worker` indexes the pool).
using worker_edge_factory =
    std::function<std::unique_ptr<edge_backend>(std::size_t worker)>;

/// Capacities of the bounded queues between pipeline stages, in items of
/// the stage's own granularity (formed batches, scored batches, single
/// appeals). Small on purpose: the queues are hand-off points, not
/// buffers — the request_queue (engine_config::queue_capacity) is where
/// work waits, and a deep internal queue would only hide backpressure
/// from admission.
struct pipeline_config {
  /// Formed batches awaiting an edge worker.
  std::size_t batch_queue_depth = 4;
  /// Scored batches awaiting the δ decision.
  std::size_t decide_queue_depth = 8;
  /// Decided appeals awaiting hand-off to the cloud_channel.
  std::size_t appeal_queue_depth = 256;
};

struct engine_config {
  batch_policy batching;
  std::size_t num_workers = 2;
  std::size_t queue_capacity = 1024;
  admission_config admission;     // full-queue policy at submit()
  /// Bounded hand-off queues between the pipeline stages.
  pipeline_config pipeline;
  threshold_config threshold;
  collab::cost_model link;        // cost model: edge/cloud compute + uplink
  /// Cloud-link setup: transport (sim | uds | tcp), endpoint, coalescing
  /// window/cap, and the simulator's time_scale.
  link_config channel;
  serve_stats_config stats;
  /// When true, each batch also pays the modeled edge compute time
  /// (edge_mflops / edge_gflops, scaled by channel.time_scale) — the batch
  /// runs as one parallel pass on the edge accelerator.
  bool simulate_edge_compute = false;
  /// Stamped into response::shard; set by the owning deployment.
  std::size_t shard_id = 0;
  /// Fraction of requests that get a trace span (0 = tracing off,
  /// 1 = every request; 0.01 traces every 100th). Sampled spans are
  /// stamped at each stage boundary and land in obs::default_collector().
  double trace_sample_rate = 0.0;
  /// When > 0, sets ops::set_gemm_threads at engine construction — the
  /// intra-GEMM parallelism of this engine's edge forwards. The setting
  /// is PROCESS-GLOBAL (one shared pool under every backend), so the
  /// last-constructed engine wins; conflicting values are logged and the
  /// winner is exported as the appeal_gemm_threads gauge so a scrape
  /// shows what is in force.
  std::size_t gemm_threads = 0;
};

/// Everything an engine runs on, bundled so one constructor covers the
/// owned-vs-shared matrix the three legacy constructors hardwired.
/// Members left unset are built by the engine from its engine_config:
///
///   edge   — either `shared_edge` (one thread-safe backend used by every
///            worker; must be thread-safe or num_workers == 1) or
///            `owned_edge` (exactly one backend per worker, engine-owned);
///   cloud  — when `shared_channel` is set the backends here are ignored
///            (the channel already has one); otherwise the engine builds
///            its own cloud_channel over `shared_cloud` or `owned_cloud`;
///   shared_controller / shared_stats — deployment mode: the engine
///            records into the deployment's shared instances and
///            cfg.threshold / cfg.stats are not used to build anything.
///
/// Use the named factories below rather than filling fields by hand.
struct engine_resources {
  std::vector<std::unique_ptr<edge_backend>> owned_edge;
  edge_backend* shared_edge = nullptr;
  std::unique_ptr<cloud_backend> owned_cloud;
  cloud_backend* shared_cloud = nullptr;
  cloud_channel* shared_channel = nullptr;
  threshold_controller* shared_controller = nullptr;
  serve_stats* shared_stats = nullptr;

  /// Single shared edge backend + shared cloud backend, nothing owned —
  /// the minimal single-model test setup.
  static engine_resources standalone(edge_backend& edge, cloud_backend& cloud);

  /// Invokes the factories (edge once per worker, cloud once); the
  /// engine keeps the backends alive for its lifetime.
  static engine_resources owning(
      const engine_config& cfg, const worker_edge_factory& edge_factory,
      const std::function<std::unique_ptr<cloud_backend>()>& cloud_factory);

  /// Deployment shard: owns its per-worker edge backends, shares the
  /// deployment's channel, δ controller, and stats sink.
  static engine_resources shard(
      std::vector<std::unique_ptr<edge_backend>> per_worker_edge,
      cloud_channel& channel, threshold_controller& controller,
      serve_stats& stats);
};

class engine {
 public:
  /// The one constructor: cfg describes the graph, res supplies (or
  /// names) what it runs on. See engine_resources for the resolution
  /// rules.
  engine(const engine_config& cfg, engine_resources&& res);

  ~engine();

  /// Convenience wrapper over submit(inference_request&&): interactive
  /// priority, no deadline, no model (this engine IS the routing target).
  std::future<response> submit(tensor input, std::uint64_t key,
                               std::size_t label = request::no_label) {
    inference_request req;
    req.input = std::move(input);
    req.key = key;
    req.label = label;
    return submit(std::move(req));
  }

  /// Full-control submission (priority class, relative deadline) under
  /// the configured admission policy. `block` waits for queue space;
  /// `shed` and `edge_only` never block — a refused request resolves its
  /// future immediately with request_status::shed. The `model` field is
  /// ignored here: routing happened above (serve::server picked the
  /// deployment, the deployment picked this shard and strips the field).
  /// Throws util::error after shutdown.
  std::future<response> submit(inference_request&& req);

  /// Blocks until every submitted request has completed.
  void drain();

  /// Stops accepting work, drains the pipeline graph in topological
  /// order, and joins all threads. Idempotent; also invoked by the
  /// destructor.
  void shutdown();

  const serve_stats& stats() const { return *stats_; }

  /// Stats snapshot with the cloud link's wire counters overlaid (bytes,
  /// batches, appeals/batch, local fallbacks).
  stats_snapshot snapshot() const;

  /// Per-node conservation ledgers (in/out/egress per pipeline stage),
  /// in topological order. Once drained: in == out + egress at every
  /// node and the egress sum equals the submitted count.
  std::vector<pipeline::node_stats> node_stats() const {
    return graph_.stats();
  }

  /// The cloud link this engine appeals over (shared across shards when
  /// the engine belongs to a deployment).
  const cloud_channel& channel() const { return *channel_; }

  /// Discards all stats so far (counters, latency histogram, clock, and
  /// the snapshot's wire-counter window) — call after a warmup phase,
  /// with no requests in flight, to open a clean measurement window.
  /// The threshold controller keeps its state.
  void reset_stats() {
    stats_->reset();
    link_baseline_ = channel_->counters();
  }
  threshold_controller& controller() { return *controller_; }
  const admission_controller& admission() const { return admission_; }
  const engine_config& config() const { return config_; }

  /// Approximate instantaneous queue depth (the least-loaded router's
  /// load signal; lock-free so routing never touches the queue mutex).
  std::size_t queue_depth() const { return queue_.approx_size(); }

 private:
  void complete(request&& r, response&& resp);
  pipeline::complete_fn completion();

  engine_config config_;
  obs::trace_sampler sampler_;  // every-Nth from config_.trace_sample_rate
  std::vector<std::unique_ptr<edge_backend>> owned_edge_;
  std::unique_ptr<cloud_backend> owned_cloud_;
  std::vector<edge_backend*> edge_backends_;
  request_queue queue_;
  std::unique_ptr<threshold_controller> owned_controller_;
  std::unique_ptr<serve_stats> owned_stats_;
  std::unique_ptr<cloud_channel> owned_channel_;
  threshold_controller* controller_;
  serve_stats* stats_;
  cloud_channel* channel_;
  /// Channel counters at the last reset_stats(); snapshot() reports the
  /// delta so wire statistics cover the same window as everything else.
  link_counters link_baseline_;
  admission_controller admission_;

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::size_t> outstanding_{0};
  std::mutex drain_mutex_;
  std::condition_variable drained_;
  bool shut_down_ = false;
  std::mutex shutdown_mutex_;

  // The graph, downstream stages first so each upstream node can take a
  // reference to its successor's input queue at construction.
  pipeline::cloud_appeal_node cloud_node_;
  pipeline::appeal_decide_node decide_node_;
  pipeline::edge_infer_node edge_node_;
  pipeline::batch_former_node batch_node_;
  pipeline::ingress_node ingress_node_;
  pipeline::pipeline_graph graph_;
};

}  // namespace appeal::serve
