// The online edge/cloud collaborative inference engine (one shard).
//
// Request lifecycle:
//   submit() -> admission_controller (block / shed / edge_only degrade)
//     -> request_queue (priority lanes) -> batcher (dynamic batch)
//     -> edge worker -> edge_backend (two-head little network / replay)
//     -> deadline check -> score >= δ (or degraded) ? complete on the edge
//                                                   : cloud_channel appeal
//                                                     -> cloud_backend
//                                                     -> complete
// Every completion fulfills the request's promise and feeds serve_stats;
// the threshold_controller watches per-batch scores and steers δ toward
// the configured skipping-rate target (or latency SLO).
//
// Ownership: an engine built from factories owns its backends; an engine
// built inside a serve::deployment is one shard of it and shares the
// deployment's cloud_channel, threshold_controller (the per-deployment δ),
// and serve_stats (the per-deployment aggregation point). The standalone
// reference constructor keeps single-model tests minimal.
//
// Threading: `num_workers` edge workers pull batches concurrently (the
// factory is invoked once per worker so stateful backends such as
// network_edge_backend stay single-threaded); one background thread
// inside cloud_channel simulates the uplink and completes appeals.
// Each worker thread owns a thread-local nn::inference_workspace, so a
// network edge backend runs its whole batch as one NCHW forward — one
// im2col + packed GEMM per layer — out of that worker's arena with zero
// steady-state allocations and zero sharing between workers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "collab/cost_model.hpp"
#include "obs/trace.hpp"
#include "serve/admission.hpp"
#include "serve/backends.hpp"
#include "serve/batcher.hpp"
#include "serve/cloud_channel.hpp"
#include "serve/request_queue.hpp"
#include "serve/serve_stats.hpp"
#include "serve/threshold_controller.hpp"

namespace appeal::serve {

/// Builds the edge backend for one worker (`worker` indexes the pool).
using worker_edge_factory =
    std::function<std::unique_ptr<edge_backend>(std::size_t worker)>;

struct engine_config {
  batch_policy batching;
  std::size_t num_workers = 2;
  std::size_t queue_capacity = 1024;
  admission_config admission;     // full-queue policy at submit()
  threshold_config threshold;
  collab::cost_model link;        // cost model: edge/cloud compute + uplink
  /// Cloud-link setup: transport (sim | uds | tcp), endpoint, coalescing
  /// window/cap, and the simulator's time_scale.
  link_config channel;
  serve_stats_config stats;
  /// When true, each batch also pays the modeled edge compute time
  /// (edge_mflops / edge_gflops, scaled by channel.time_scale) — the batch
  /// runs as one parallel pass on the edge accelerator.
  bool simulate_edge_compute = false;
  /// Stamped into response::shard; set by the owning deployment.
  std::size_t shard_id = 0;
  /// Fraction of requests that get a trace span (0 = tracing off,
  /// 1 = every request; 0.01 traces every 100th). Sampled spans are
  /// stamped at each stage boundary and land in obs::default_collector().
  double trace_sample_rate = 0.0;
  /// When > 0, sets ops::set_gemm_threads at engine construction — the
  /// intra-GEMM parallelism of this engine's edge forwards. The setting
  /// is PROCESS-GLOBAL (one shared pool under every backend), so the
  /// last-constructed engine wins; it is exported as the
  /// appeal_gemm_threads gauge so a scrape shows what is in force.
  std::size_t gemm_threads = 0;
};

class engine {
 public:
  /// Single shared edge backend (must be thread-safe or num_workers == 1);
  /// neither backend is owned.
  engine(const engine_config& cfg, edge_backend& edge, cloud_backend& cloud);

  /// Owning constructor: the factories are invoked (once per worker /
  /// once) and the engine keeps the backends alive for its lifetime.
  engine(const engine_config& cfg, worker_edge_factory edge_factory,
         std::function<std::unique_ptr<cloud_backend>()> cloud_factory);

  /// Shard constructor (used by serve::deployment): owns its per-worker
  /// edge backends but shares the deployment's channel, δ controller, and
  /// stats sink. cfg.threshold / cfg.stats are ignored in this mode (the
  /// shared objects already embody them); cfg.link still drives the
  /// simulated edge compute, so pass the same cost model the shared
  /// channel was built from (deployment does).
  engine(const engine_config& cfg,
         std::vector<std::unique_ptr<edge_backend>> per_worker_edge,
         cloud_channel& channel, threshold_controller& controller,
         serve_stats& stats);

  ~engine();

  /// Enqueues one request under the configured admission policy. `block`
  /// waits for queue space (PR 1 behavior); `shed` and `edge_only` never
  /// block — a refused request resolves its future immediately with
  /// request_status::shed. Throws util::error after shutdown.
  std::future<response> submit(tensor input, std::uint64_t key,
                               std::size_t label = request::no_label);

  /// Full-control submission (priority class, relative deadline). The
  /// `model` field is ignored at engine level — routing happened above.
  std::future<response> submit(inference_request&& req);

  /// Blocks until every submitted request has completed.
  void drain();

  /// Stops accepting work, drains, and joins all threads. Idempotent;
  /// also invoked by the destructor.
  void shutdown();

  const serve_stats& stats() const { return *stats_; }

  /// Stats snapshot with the cloud link's wire counters overlaid (bytes,
  /// batches, appeals/batch, local fallbacks).
  stats_snapshot snapshot() const;

  /// The cloud link this engine appeals over (shared across shards when
  /// the engine belongs to a deployment).
  const cloud_channel& channel() const { return *channel_; }

  /// Discards all stats so far (counters, latency histogram, clock, and
  /// the snapshot's wire-counter window) — call after a warmup phase,
  /// with no requests in flight, to open a clean measurement window.
  /// The threshold controller keeps its state.
  void reset_stats() {
    stats_->reset();
    link_baseline_ = channel_->counters();
  }
  threshold_controller& controller() { return *controller_; }
  const admission_controller& admission() const { return admission_; }
  const engine_config& config() const { return config_; }

  /// Approximate instantaneous queue depth (the least-loaded router's
  /// load signal; lock-free so routing never touches the queue mutex).
  std::size_t queue_depth() const { return queue_.approx_size(); }

 private:
  void start_workers();
  void worker_loop(edge_backend& edge);
  void complete(request&& r, response&& resp);

  engine_config config_;
  obs::trace_sampler sampler_;  // every-Nth from config_.trace_sample_rate
  std::vector<std::unique_ptr<edge_backend>> owned_edge_;
  std::unique_ptr<cloud_backend> owned_cloud_;
  std::vector<edge_backend*> edge_backends_;
  request_queue queue_;
  std::unique_ptr<threshold_controller> owned_controller_;
  std::unique_ptr<serve_stats> owned_stats_;
  std::unique_ptr<cloud_channel> owned_channel_;
  threshold_controller* controller_;
  serve_stats* stats_;
  cloud_channel* channel_;
  /// Channel counters at the last reset_stats(); snapshot() reports the
  /// delta so wire statistics cover the same window as everything else.
  link_counters link_baseline_;
  admission_controller admission_;

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::size_t> outstanding_{0};
  std::mutex drain_mutex_;
  std::condition_variable drained_;
  std::vector<std::thread> workers_;
  bool shut_down_ = false;
  std::mutex shutdown_mutex_;
};

}  // namespace appeal::serve
