// Split-computing appeal configuration (Neurosurgeon-style partitioning).
//
// An appeal normally re-uploads the raw input and the cloud recomputes the
// big model from scratch. In split mode the edge runs the *cloud model's*
// prefix locally (the channel's fallback backend is a bit-identical copy —
// both ends build serve::make_cloud_model from the same canonical spec)
// and ships the intermediate feature map plus a cut id; the cloud scores
// only the suffix. Because prefix-then-suffix is forward_range over the
// same folded weights, split predictions are bit-exact with full
// recompute — the mode changes bytes and cloud compute, never answers.
//
// Cut ids are 1-based indices into the canonical model's cut table
// (nn::sequential::cuts(), enumerated by serve::enumerate_cloud_cuts);
// id 0 means "raw input" and stays a candidate — when the measured link
// is fast and the cloud queue deep, shipping the input can still win.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace appeal::serve {

/// off: every appeal ships the raw input (the pre-split behavior).
/// fixed: every appeal ships the feature map at `split_config::cut`.
/// autosel ("auto" on the command line): the channel picks the cut per
/// batch from the cost model + measured link bandwidth + cloud wait.
enum class split_mode { off, fixed, autosel };

/// Parses "off" | "fixed" | "auto"; throws util::error on anything else.
split_mode parse_split_mode(const std::string& name);
const char* split_mode_name(split_mode m);

/// One candidate partition point of the canonical cloud model, as both
/// link ends derive it from the shared spec (serve::enumerate_cloud_cuts).
struct split_cut_spec {
  std::uint32_t id = 0;  // wire cut id (1-based; 0 = raw input)
  std::string name;      // the builder's cut name ("stem", "stage2", ...)
  std::vector<std::size_t> feature_dims;  // per-sample feature shape
  std::size_t wire_bytes = 0;             // float payload bytes at this cut
  std::uint64_t prefix_flops = 0;         // compute the edge pays
  std::uint64_t suffix_flops = 0;         // compute the cloud still owes
};

/// Threaded through link_config as `channel.split`.
struct split_config {
  split_mode mode = split_mode::off;
  /// Fixed mode: the wire cut id every appeal ships.
  std::uint32_t cut = 0;
  /// Candidate cuts of the deployment's cloud model (required for both
  /// split modes; bench_serving fills it from enumerate_cloud_cuts).
  std::vector<split_cut_spec> cuts;
};

}  // namespace appeal::serve
