#include "serve/request_queue.hpp"

#include "util/error.hpp"

namespace appeal::serve {

request_queue::request_queue(std::size_t capacity) : capacity_(capacity) {
  APPEAL_CHECK(capacity > 0, "request_queue capacity must be positive");
}

bool request_queue::push(request&& r, std::size_t limit) {
  if (limit == 0) limit = capacity_;
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock,
                 [&] { return closed_ || size_locked() < limit; });
  if (closed_) return false;
  lane(r.priority).push_back(std::move(r));
  approx_size_.fetch_add(1, std::memory_order_relaxed);
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

request_queue::push_result request_queue::try_push(request&& r,
                                                   std::size_t limit) {
  if (limit == 0) limit = capacity_;
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) return push_result::closed;
  if (size_locked() >= limit) return push_result::full;
  lane(r.priority).push_back(std::move(r));
  approx_size_.fetch_add(1, std::memory_order_relaxed);
  lock.unlock();
  not_empty_.notify_one();
  return push_result::ok;
}

bool request_queue::pop_locked(request& out) {
  if (!interactive_.empty()) {
    out = std::move(interactive_.front());
    interactive_.pop_front();
  } else if (!batch_.empty()) {
    out = std::move(batch_.front());
    batch_.pop_front();
  } else {
    return false;
  }
  approx_size_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

request_queue::pop_result request_queue::pop_until(
    request& out, std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait_until(lock, deadline,
                        [&] { return closed_ || size_locked() > 0; });
  if (pop_locked(out)) {
    lock.unlock();
    // Producers wait on heterogeneous limits (batch headroom vs full
    // capacity), so notify_one could wake a waiter whose predicate is
    // still false and strand another whose predicate just became true.
    not_full_.notify_all();
    return pop_result::item;
  }
  return closed_ ? pop_result::closed : pop_result::timed_out;
}

bool request_queue::try_pop(request& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!pop_locked(out)) return false;
  lock.unlock();
  not_full_.notify_all();  // heterogeneous producer limits; see pop_until
  return true;
}

void request_queue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool request_queue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t request_queue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return size_locked();
}

}  // namespace appeal::serve
