#include "serve/request_queue.hpp"

#include "util/error.hpp"

namespace appeal::serve {

request_queue::request_queue(std::size_t capacity) : capacity_(capacity) {
  APPEAL_CHECK(capacity > 0, "request_queue capacity must be positive");
}

bool request_queue::push(request&& r) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock,
                 [&] { return closed_ || items_.size() < capacity_; });
  if (closed_) return false;
  items_.push_back(std::move(r));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

request_queue::pop_result request_queue::pop_until(
    request& out, std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait_until(lock, deadline,
                        [&] { return closed_ || !items_.empty(); });
  if (!items_.empty()) {
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return pop_result::item;
  }
  return closed_ ? pop_result::closed : pop_result::timed_out;
}

bool request_queue::try_pop(request& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (items_.empty()) return false;
  out = std::move(items_.front());
  items_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return true;
}

void request_queue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool request_queue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t request_queue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

}  // namespace appeal::serve
