// Model backends the serving engine routes between.
//
// The engine is model-agnostic: an edge_backend turns a batch of requests
// into (prediction, score) pairs, a cloud_backend answers single appealed
// requests. Three families are provided:
//   - replay backends serve precomputed predictions/scores keyed by
//     request.key — the workhorse for load tests and benches (no training
//     in the serving hot path);
//   - network_edge_backend wraps the two-head little network and extracts
//     appeal scores via core/scores (q(1|x) or the softmax baselines);
//   - oracle_cloud_backend implements the paper's black-box Table II
//     protocol (the cloud always answers correctly).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/scores.hpp"
#include "core/two_head_network.hpp"
#include "nn/sequential.hpp"
#include "serve/request.hpp"

namespace appeal::serve {

/// Edge results for one batch, index-aligned with the input requests.
struct edge_inference {
  std::vector<std::size_t> predictions;
  std::vector<double> scores;  // higher = easier (keep on the edge)
};

/// The little network's serving interface.
class edge_backend {
 public:
  virtual ~edge_backend() = default;
  /// Must return one prediction and one score per request.
  virtual edge_inference infer(const std::vector<request>& batch) = 0;
};

/// The big network's serving interface (one appealed request at a time;
/// the cloud_channel owns batching/pipelining of the link).
class cloud_backend {
 public:
  virtual ~cloud_backend() = default;
  virtual std::size_t infer(const request& r) = 0;

  /// Split-computing support: runs this backend's model prefix up to cut
  /// `cut_id` (1-based index into its nn::sequential cut table) on one
  /// [C, H, W] input and returns the per-sample feature map an appeal
  /// ships instead of the input. The default returns an empty tensor —
  /// "this backend cannot split" (replay/oracle clouds have no layers to
  /// partition) — and the channel then falls back to raw-input appeals.
  virtual tensor prefix_feature(const tensor& input, std::uint32_t cut_id);
};

/// Serves precomputed edge predictions/scores indexed by request.key.
class replay_edge_backend : public edge_backend {
 public:
  replay_edge_backend(std::vector<std::size_t> predictions,
                      std::vector<double> scores);
  edge_inference infer(const std::vector<request>& batch) override;

 private:
  std::vector<std::size_t> predictions_;
  std::vector<double> scores_;
};

/// Serves precomputed cloud predictions indexed by request.key.
class replay_cloud_backend : public cloud_backend {
 public:
  explicit replay_cloud_backend(std::vector<std::size_t> predictions);
  std::size_t infer(const request& r) override;

 private:
  std::vector<std::size_t> predictions_;
};

/// Always-correct cloud (paper Section IV-B / collab::oracle): answers
/// with the request's ground-truth label. Requests must carry labels.
class oracle_cloud_backend : public cloud_backend {
 public:
  std::size_t infer(const request& r) override;
};

/// Runs the two-head little network on the stacked batch inputs and
/// extracts scores with the configured method. Not thread-safe: give each
/// edge worker its own backend instance (or serve with one worker). The
/// whole batch runs as one NCHW forward from the worker thread's
/// inference_workspace, so batches formed by the batcher amortize into
/// one im2col + GEMM per layer.
class network_edge_backend : public edge_backend {
 public:
  /// Non-owning: the caller keeps `network` alive (serving_demo shares a
  /// freshly trained system with the offline evaluation).
  network_edge_backend(core::two_head_network& network,
                       core::score_method method);
  /// Owning: per-worker backend factories hand each worker its own
  /// network instance.
  network_edge_backend(std::unique_ptr<core::two_head_network> network,
                       core::score_method method);
  edge_inference infer(const std::vector<request>& batch) override;

 private:
  std::unique_ptr<core::two_head_network> owned_;
  core::two_head_network& network_;
  core::score_method method_;
};

/// Runs the big network on a single appealed input. Not thread-safe
/// (inference forwards touch per-layer state): give each thread that
/// scores — a channel's coalescing thread, a transport's failure path, a
/// stub worker — its own backend + network instance.
class network_cloud_backend : public cloud_backend {
 public:
  /// Non-owning: the caller keeps `network` alive.
  explicit network_cloud_backend(nn::sequential& network);
  /// Owning: factories hand the backend its own network instance.
  explicit network_cloud_backend(std::unique_ptr<nn::sequential> network);
  std::size_t infer(const request& r) override;

  /// Batched scoring for the cloud-side scheduler (stub_server's worker
  /// pool): stacks the inputs — which must all share one shape — into a
  /// single [N, ...] forward and returns one argmax per input. Because
  /// each row's accumulation order is independent of the batch around
  /// it, the predictions are bit-identical to N infer() calls; the batch
  /// just pays one im2col + GEMM per layer instead of N.
  std::vector<std::size_t> infer_batch(const std::vector<const tensor*>& inputs);

  /// Suffix-only batched scoring of split-computing appeals: stacks the
  /// feature maps shipped at cut `cut_id` and runs only the layers past
  /// that cut's boundary. Prefix (on the sender's bit-identical model
  /// copy) plus this suffix is forward_range over the same weights, so
  /// the predictions equal full-recompute bit for bit.
  std::vector<std::size_t> infer_batch_suffix(
      const std::vector<const tensor*>& features, std::uint32_t cut_id);

  tensor prefix_feature(const tensor& input, std::uint32_t cut_id) override;

  nn::sequential& network() { return network_; }

 private:
  std::unique_ptr<nn::sequential> owned_;
  nn::sequential& network_;
};

}  // namespace appeal::serve
